package repro

// Full-stack integration: a sequential design is scan-inserted, its
// BIST profiles are measured with real fault simulation and ATPG, the
// profiles become optional diagnostic tasks of an E/E-architecture
// specification, and the design space exploration trades them off —
// the complete pipeline of the paper's Fig. 2 with no canned data.

import (
	"testing"

	"repro/internal/atpg"
	"repro/internal/bistgen"
	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/faultsim"
	"repro/internal/moea"
	"repro/internal/netlist"
	"repro/internal/reseed"
	"repro/internal/simulate"
	"repro/internal/stumps"
)

func TestFullStackSequentialToDSE(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline")
	}
	// 1. Sequential design → full-scan core. A 30-bit counter plus its
	//    enable pin lands on 31 cells; 4 chains of 8 with one pad cell.
	c, layout, err := netlist.Counter(30).BuildFullScan(4)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumInputs() != layout.Chains*layout.ChainLen {
		t.Fatalf("scan shape %d != %dx%d", c.NumInputs(), layout.Chains, layout.ChainLen)
	}

	// 2. Measure BIST profiles on the scan core (LFSR + PODEM +
	//    reseeding encoder).
	cfg := stumps.Config{
		Chains: layout.Chains, ChainLen: layout.ChainLen, Seed: 11,
		WindowPatterns: 32, RestoreCycles: 100, TestClockHz: 40e6,
	}
	gen, err := bistgen.New(c, bistgen.Options{Scan: cfg, MaxBacktracks: 200, ReseedWidth: 64})
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := gen.Characterize([]int{32, 128, 512}, bistgen.DefaultTargets())
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 12 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	for _, p := range profiles {
		if p.Coverage <= 0.5 {
			t.Fatalf("profile %d coverage %.2f implausibly low", p.Number, p.Coverage)
		}
	}

	// 3. Build a subnet whose ECUs offer the measured (not embedded)
	//    profiles, scaled to automotive data magnitudes so the storage
	//    tradeoff is non-trivial.
	from := bistgen.CUTDims{ScanCells: c.NumInputs(), ChainLen: layout.ChainLen, Faults: gen.TotalFaults()}
	scaled := make([]bistgen.Profile, len(profiles))
	for i, p := range profiles {
		scaled[i] = bistgen.ScaleToCUT(p, from, bistgen.PaperCUT)
		scaled[i].Number = i + 1
	}
	spec, err := casestudy.Build(casestudy.Options{Profiles: scaled, ProfilesPerECU: len(scaled)})
	if err != nil {
		t.Fatal(err)
	}

	// 4. Explore and sanity-check the outcome.
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	ex := core.NewExplorer(spec, dec)
	ex.Verify = true
	res, err := ex.Run(moea.Options{PopSize: 48, Generations: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Solutions) < 5 {
		t.Fatalf("front = %d", len(res.Solutions))
	}
	maxQ := 0.0
	for _, s := range res.Solutions {
		if s.Objectives.TestQuality > maxQ {
			maxQ = s.Objectives.TestQuality
		}
	}
	if maxQ <= 0.4 {
		t.Fatalf("max quality %.2f — measured profiles never selected", maxQ)
	}

	// 5. Cross-validate one solution's shut-off analytically vs the
	//    discrete-event simulation.
	for _, s := range res.Solutions {
		if s.Objectives.TestQuality == 0 {
			continue
		}
		rep, err := simulate.ShutOff(s.Impl)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Traces) == 0 {
			continue
		}
		for _, tr := range rep.Traces {
			if tr.TransferMS > 0 && (tr.CompleteMS < 0.4*tr.AnalyticMS || tr.CompleteMS > 2*tr.AnalyticMS+500) {
				t.Fatalf("ECU %s: simulated %.1f ms far from analytic %.1f ms", tr.ECU, tr.CompleteMS, tr.AnalyticMS)
			}
		}
		break
	}
}

// TestReseedingRoundTripOnScanCore: encode a PODEM cube for the scan
// core and confirm the decompressed pattern detects the targeted fault
// — the encoded deterministic test data is genuinely executable.
func TestReseedingRoundTripOnScanCore(t *testing.T) {
	c, layout, err := netlist.Counter(20).BuildFullScan(3)
	if err != nil {
		t.Fatal(err)
	}
	faults := layout.TestableFaults(c, netlist.CollapsedFaults(c))
	if len(faults) == 0 {
		t.Fatal("no testable faults")
	}
	enc, err := reseed.NewEncoder(96, layout.Chains, layout.ChainLen)
	if err != nil {
		t.Fatal(err)
	}
	gen := atpg.NewGenerator(c, 200)
	encodedAny := false
	limit := 10
	if len(faults) < limit {
		limit = len(faults)
	}
	for _, f := range faults[:limit] {
		cube, status := gen.Generate(f)
		if status != atpg.Detected {
			continue
		}
		seed, err := enc.EncodeCube(cube)
		if err != nil {
			continue // too many care bits for this width
		}
		encodedAny = true
		if !enc.Verify(cube, seed) {
			t.Fatalf("seed for %v does not reproduce the cube", f)
		}
		// The decompressed pattern must actually detect the fault.
		pattern := enc.D.Expand(seed)
		fs := faultsim.NewFaultSim(c, []netlist.Fault{f})
		batch, err := faultsim.BatchFromBools([][]bool{pattern})
		if err != nil {
			t.Fatal(err)
		}
		dets, err := fs.SimulateBatch(batch)
		if err != nil {
			t.Fatal(err)
		}
		if len(dets) != 1 {
			t.Fatalf("decompressed pattern misses fault %v", f)
		}
	}
	if !encodedAny {
		t.Fatal("no cube encodable at width 96")
	}
}
