// Command fleetd runs the fleet-scale diagnosis service: a long-lived
// HTTP server ingesting BIST fail-data sessions from a simulated
// vehicle population over the gateway package's reliable chunked
// transfer, and serving fleet-level statistics — failing-ECU
// histograms, DTC-vs-structural repair rollups — as JSON.
//
// Modes:
//
//	fleetd                          serve, stream the seeded population, drain on SIGTERM
//	fleetd -oneshot                 stream the population, print the summary JSON, exit
//	fleetd -get URL                 HTTP GET a URL and print the body (smoke-test client)
//
// The population is fully determined by -seed (and the population
// shape flags), so two -oneshot runs with equal flags print identical
// bytes regardless of -shards and -workers — and regardless of whether
// tracing is on: the obs layer is purely observational.
//
// The server mounts the shared diagnostic surface next to /fleet/:
// Prometheus text on /metrics, expvar JSON on /debug/vars (map "fleet"
// carries the summary), and pprof on /debug/pprof. -trace-out records
// ingest spans (chunk accepts, session assembly, gateway transfers)
// plus periodic metric snapshots as JSONL for cmd/obsdump.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/dtc"
	"repro/internal/fleet"
	"repro/internal/gateway"
	"repro/internal/obs"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("fleetd: ")
	var (
		addr     = flag.String("addr", "127.0.0.1:8373", "listen address (use :0 for an ephemeral port)")
		addrFile = flag.String("addr-file", "", "write the bound address to this file (port discovery)")
		get      = flag.String("get", "", "client mode: GET this URL, print the body, exit")
		oneshot  = flag.Bool("oneshot", false, "stream the population, print the summary JSON, exit")

		shards      = flag.Int("shards", 8, "lock-striped shards")
		records     = flag.Int("records", 4096, "fail-memory records per shard (ring capacity)")
		sessionsCap = flag.Int("sessions-cap", 1024, "open reassembly sessions per shard")
		vehiclesCap = flag.Int("vehicles-cap", 0, "tracked vehicles per shard (0 = unbounded)")

		vehicles   = flag.Int("vehicles", 200, "population size")
		ecus       = flag.Int("ecus", 4, "BIST-reporting ECUs per vehicle")
		sessions   = flag.Int("sessions-per-ecu", 2, "BIST sessions per (vehicle, ECU) stream")
		failProb   = flag.Float64("fail-prob", 0.1, "probability a session carries fail data")
		errorRate  = flag.Float64("error-rate", 1e-5, "CAN bit error rate of each vehicle's segment")
		seed       = flag.Uint64("seed", 1, "population seed")
		workers    = flag.Int("workers", runtime.NumCPU(), "concurrent ingest workers")
		chunkBytes = flag.Int("chunk-bytes", 64, "payload bytes per transfer chunk")
		noArch     = flag.Bool("no-arch", false, "skip the case-study DTC context (no repair rollup)")

		traceOut = flag.String("trace-out", "", "stream ingest trace events and metric snapshots as JSONL to this file (flight recorder; inspect with cmd/obsdump)")

		dataDir      = flag.String("data-dir", "", "durable storage directory (WAL + snapshots); empty keeps the service in-RAM only")
		snapEvery    = flag.Int("snapshot-every", 0, "snapshot after this many WAL commits (0 = durable package default)")
		snapInterval = flag.Duration("snapshot-interval", 0, "also snapshot on this wall-clock period (0 = off)")
		killAfter    = flag.Uint64("kill-after-commits", 0, "crash-test hook: SIGKILL this process at the Nth durable commit")
	)
	flag.Parse()

	if *get != "" {
		if err := client(*get); err != nil {
			log.Fatal(err)
		}
		return
	}

	srv := fleet.New(fleet.Config{
		Shards:           *shards,
		PerShardRecords:  *records,
		PerShardSessions: *sessionsCap,
		PerShardVehicles: *vehiclesCap,
	})

	// Observability: one registry backs /metrics, the expvar bridge and
	// the flight recorder; the tracer meters ingest stages and buffers
	// events only when -trace-out asks for them.
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg, obs.TracerConfig{Record: *traceOut != ""})
	srv.SetObs(tracer)

	// Durable storage: recover whatever a previous process committed,
	// then WAL every further session commit. Must precede
	// RegisterMetrics so the store's series are exported too.
	if *dataDir != "" {
		dcfg := fleet.DurableConfig{
			Dir:              *dataDir,
			SnapshotEvery:    *snapEvery,
			SnapshotInterval: *snapInterval,
			Obs:              tracer,
		}
		if n := *killAfter; n > 0 {
			dcfg.OnCommit = func(lsn uint64) {
				if lsn == n {
					syscall.Kill(os.Getpid(), syscall.SIGKILL)
				}
			}
		}
		rec, err := srv.OpenDurable(dcfg)
		if err != nil {
			log.Fatalf("data-dir: %v", err)
		}
		log.Printf("recovered %s: snapshot lsn %d + %d wal entries -> lsn %d (%d bytes truncated, %d segments dropped, %d snapshots skipped) in %s",
			*dataDir, rec.SnapshotLSN, rec.Entries, rec.LastLSN,
			rec.TruncatedBytes, rec.RemovedSegments, rec.SkippedSnapshots, rec.Elapsed.Round(time.Microsecond))
	}
	fleet.RegisterMetrics(reg, srv)
	var rec *obs.Recorder
	if *traceOut != "" {
		var err error
		if rec, err = obs.NewRecorder(*traceOut, tracer, reg, 0); err != nil {
			log.Fatalf("trace-out: %v", err)
		}
	}
	closeTrace := func() {
		if err := rec.Close(); err != nil { // nil-safe without -trace-out
			log.Fatalf("trace-out: %v", err)
		}
	}

	if !*noArch {
		arch, err := buildArch(*ecus)
		if err != nil {
			log.Fatalf("case-study arch: %v", err)
		}
		srv.SetArch(arch)
	}

	names := make([]string, *ecus)
	for i := range names {
		names[i] = fmt.Sprintf("ecu%02d", i+1)
	}
	pcfg := fleet.PopulationConfig{
		Vehicles:       *vehicles,
		ECUs:           names,
		SessionsPerECU: *sessions,
		FailProb:       *failProb,
		Seed:           *seed,
		ErrorRate:      *errorRate,
		Session:        gateway.SessionConfig{ChunkBytes: *chunkBytes},
		Workers:        *workers,
		Obs:            tracer,
		// With durable storage, the senders resume: sessions the recovered
		// state already committed are skipped, the rest are re-sent with
		// their per-session seeds — identical bytes to the first attempt.
		Resume: *dataDir != "",
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *oneshot {
		res, err := fleet.RunPopulation(ctx, srv, pcfg)
		if err != nil {
			log.Fatalf("population: %v", err)
		}
		log.Printf("population: %d sessions, %d delivered, %d degraded, %d skipped, %.1f bus-ms",
			res.Sessions, res.Delivered, res.Degraded, res.Skipped, res.BusMS)
		js, err := srv.SummaryJSON()
		if err != nil {
			log.Fatal(err)
		}
		os.Stdout.Write(append(js, '\n'))
		closeDurable(srv)
		closeTrace()
		return
	}

	mux := obs.NewMux(reg)
	mux.Handle("/fleet/", srv.Handler())
	obs.PublishExpvar("fleet", func() any { return srv.Summary() })
	hs, err := obs.Serve(*addr, mux)
	if err != nil {
		log.Fatal(err)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(hs.Addr()), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	log.Printf("listening on %s", hs.Addr())

	// Stream the population in the background; keep serving after it
	// finishes so the endpoints stay queryable.
	popDone := make(chan struct{})
	go func() {
		defer close(popDone)
		res, err := fleet.RunPopulation(ctx, srv, pcfg)
		if err != nil {
			log.Printf("population stopped: %v", err)
		}
		log.Printf("population: %d sessions, %d delivered, %d degraded, %.1f bus-ms",
			res.Sessions, res.Delivered, res.Degraded, res.BusMS)
	}()

	<-ctx.Done()
	stop()
	log.Print("signal received; draining")
	<-popDone // the population context is cancelled; it stops at a session boundary
	if err := hs.Shutdown(5 * time.Second); err != nil {
		log.Printf("shutdown: %v", err)
	}
	js, err := srv.SummaryJSON()
	if err != nil {
		log.Fatal(err)
	}
	os.Stdout.Write(append(js, '\n'))
	closeDurable(srv)
	closeTrace()
	log.Print("drained")
}

// closeDurable snapshots and closes the store, reporting (but
// surviving) a degraded disk: the summary was already printed from the
// in-RAM state, which stays authoritative for this process.
func closeDurable(srv *fleet.Server) {
	if err := srv.CloseDurable(); err != nil {
		log.Printf("durable close: %v", err)
	}
}

// client GETs url and streams the body to stdout — the smoke test's
// curl replacement. Bounded: a per-request timeout instead of the
// default client's unbounded wait, and three attempts with doubling
// backoff so a just-restarting server doesn't fail the smoke test.
func client(url string) error {
	hc := &http.Client{Timeout: 10 * time.Second}
	backoff := 100 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			backoff *= 2
		}
		resp, err := hc.Get(url)
		if err != nil {
			lastErr = err
			continue
		}
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			lastErr = fmt.Errorf("GET %s: %s", url, resp.Status)
			continue
		}
		_, err = io.Copy(os.Stdout, resp.Body)
		resp.Body.Close()
		if err != nil {
			return err // partial body already written; retrying would duplicate it
		}
		return nil
	}
	return fmt.Errorf("after 3 attempts: %w", lastErr)
}

// buildArch derives the DTC context from the case-study subnet with
// nECUs ECUs (named ecu01… like the population), bound by the greedy
// decoder at the all-0.9 genotype — the BIST-everywhere corner used
// across the experiments.
func buildArch(nECUs int) (*fleet.Arch, error) {
	if nECUs < 2 {
		nECUs = 2
	}
	spec, err := casestudy.Small(nECUs, 4, 7)
	if err != nil {
		return nil, err
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		return nil, err
	}
	g := make([]float64, dec.GenotypeLen())
	for i := range g {
		g[i] = 0.9
	}
	x, err := dec.Decode(g)
	if err != nil {
		return nil, err
	}
	return &fleet.Arch{Codes: dtc.DeriveCodes(x)}, nil
}
