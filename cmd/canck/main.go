// Command canck checks the non-intrusiveness claim of Section III-B on
// a CAN bus: it compares message mirroring against burst transfer via
// worst-case response-time analysis, and prints the Eq. (1) transfer
// times of every Table I profile over a typical ECU message set.
//
// Usage:
//
//	canck [-bitrate 500000] [-own 3] [-others 8] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/can"
	"repro/internal/casestudy"
	"repro/internal/report"
)

func main() {
	var (
		bitrate = flag.Float64("bitrate", 500_000, "bus bit rate [bit/s]")
		nOwn    = flag.Int("own", 3, "functional messages of the ECU under test")
		nOthers = flag.Int("others", 8, "functional messages of other ECUs on the bus")
		seed    = flag.Int64("seed", 1, "message set seed")
	)
	flag.Parse()
	bus := can.Bus{Name: "can0", BitRate: *bitrate}
	rng := rand.New(rand.NewSource(*seed))
	periods := []float64{10, 20, 50, 100}
	mk := func(prefix string, n, prioBase int) []can.Frame {
		frames := make([]can.Frame, n)
		for i := range frames {
			frames[i] = can.Frame{
				ID:       fmt.Sprintf("%s%d", prefix, i),
				Priority: prioBase + 2*i,
				Payload:  8,
				PeriodMS: periods[rng.Intn(len(periods))],
			}
		}
		return frames
	}
	own := mk("own", *nOwn, 1)
	others := mk("oth", *nOthers, 2)

	fmt.Printf("bus: %.0f kbit/s, %d own + %d third-party frames, utilization %.1f%%\n\n",
		*bitrate/1000, len(own), len(others),
		can.Utilization(bus, append(append([]can.Frame(nil), own...), others...))*100)

	rep, err := can.VerifyNonIntrusive(bus, own, others)
	if err != nil {
		fatal(err)
	}
	if rep.OK() {
		fmt.Println("mirroring: NON-INTRUSIVE — no third-party WCRT changed")
	} else {
		fmt.Printf("mirroring: INTRUSIVE?! frames %v changed by up to %.3f ms\n", rep.Intrusive, rep.MaxDeltaMS)
	}

	const demoBytes = 994_156 // Table I profile 3
	burst, err := can.SimulateBurst(bus, others, demoBytes, 0)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("burst transfer of %d bytes at top priority: %d deadline violations, burst lasts %.1f s\n\n",
		demoBytes, len(burst.ViolatedDeadlines), burst.BurstDurationMS/1000)

	fmt.Println("Eq. (1) transfer times over the mirrored own-message bandwidth,")
	fmt.Println("classic CAN vs a CAN FD migration (64-byte slots, same periods):")
	var rows [][]string
	for _, p := range casestudy.TableI() {
		st := can.StudyFDMigration(p.DataBytes, own, 64)
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Number),
			fmt.Sprintf("%d", p.DataBytes),
			fmt.Sprintf("%.1f", st.ClassicMS/1000),
			fmt.Sprintf("%.1f", st.FDMS/1000),
			fmt.Sprintf("%.1fx", st.Speedup),
		})
	}
	report.Table(os.Stdout, []string{"profile", "s(b^D) [Bytes]", "q CAN [s]", "q CAN FD [s]", "speedup"}, rows)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "canck:", err)
	os.Exit(1)
}
