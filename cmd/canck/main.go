// Command canck checks the non-intrusiveness claim of Section III-B on
// a CAN bus: it compares message mirroring against burst transfer via
// worst-case response-time analysis, and prints the Eq. (1) transfer
// times of every Table I profile over a typical ECU message set.
//
// Usage:
//
//	canck [-bitrate 500000] [-own 3] [-others 8] [-seed 1]
//	      [-sweep] [-error-rate 0]
//
// -sweep replays the analysis across a bit-error-rate range
// (1e-7…1e-4): per rate it reports the degraded Eq. (1) transfer time,
// the worst third-party WCRT under the Tindell/Burns error-recovery
// term, and whether the certified schedule (and the non-intrusiveness
// of mirroring) still holds. -error-rate applies one fixed rate to the
// single-shot analysis instead.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"repro/internal/can"
	"repro/internal/casestudy"
	"repro/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "canck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		bitrate = flag.Float64("bitrate", 500_000, "bus bit rate [bit/s]")
		nOwn    = flag.Int("own", 3, "functional messages of the ECU under test")
		nOthers = flag.Int("others", 8, "functional messages of other ECUs on the bus")
		seed    = flag.Int64("seed", 1, "message set seed")
		errRate = flag.Float64("error-rate", 0, "bit-error rate for the fault-aware analysis (0 = ideal bus)")
		sweep   = flag.Bool("sweep", false, "sweep the analysis over bit-error rates 1e-7..1e-4")
	)
	flag.Parse()
	if *bitrate <= 0 {
		return fmt.Errorf("-bitrate must be positive, got %g", *bitrate)
	}
	if *nOwn <= 0 {
		return fmt.Errorf("-own must be positive, got %d", *nOwn)
	}
	if *nOthers <= 0 {
		return fmt.Errorf("-others must be positive, got %d", *nOthers)
	}
	if *errRate < 0 || *errRate >= 1 {
		return fmt.Errorf("-error-rate must be in [0,1), got %g", *errRate)
	}
	bus := can.Bus{Name: "can0", BitRate: *bitrate}
	rng := rand.New(rand.NewSource(*seed))
	periods := []float64{10, 20, 50, 100}
	mk := func(prefix string, n, prioBase int) []can.Frame {
		frames := make([]can.Frame, n)
		for i := range frames {
			frames[i] = can.Frame{
				ID:       fmt.Sprintf("%s%d", prefix, i),
				Priority: prioBase + 2*i,
				Payload:  8,
				PeriodMS: periods[rng.Intn(len(periods))],
			}
		}
		return frames
	}
	own := mk("own", *nOwn, 1)
	others := mk("oth", *nOthers, 2)

	fmt.Printf("bus: %.0f kbit/s, %d own + %d third-party frames, utilization %.1f%%\n\n",
		*bitrate/1000, len(own), len(others),
		can.Utilization(bus, append(append([]can.Frame(nil), own...), others...))*100)

	if *sweep {
		return faultSweep(os.Stdout, bus, own, others)
	}

	model := can.ErrorModel{BitErrorRate: *errRate}
	rep, err := can.VerifyNonIntrusiveUnderErrors(bus, own, others, model)
	if err != nil {
		return err
	}
	if rep.OK() {
		label := "NON-INTRUSIVE — no third-party WCRT changed"
		if model.Enabled() {
			label = fmt.Sprintf("NON-INTRUSIVE under BER %g — no third-party WCRT changed", *errRate)
		}
		fmt.Println("mirroring:", label)
	} else {
		fmt.Printf("mirroring: INTRUSIVE?! frames %v changed by up to %.3f ms\n", rep.Intrusive, rep.MaxDeltaMS)
	}
	if model.Enabled() && len(rep.DeadlineMisses) > 0 {
		fmt.Printf("error load: third-party deadlines broken at BER %g: %v\n", *errRate, rep.DeadlineMisses)
	}

	const demoBytes = 994_156 // Table I profile 3
	burst, err := can.SimulateBurst(bus, others, demoBytes, 0)
	if err != nil {
		return err
	}
	fmt.Printf("burst transfer of %d bytes at top priority: %d deadline violations, burst lasts %.1f s\n\n",
		demoBytes, len(burst.ViolatedDeadlines), burst.BurstDurationMS/1000)

	fmt.Println("Eq. (1) transfer times over the mirrored own-message bandwidth,")
	fmt.Println("classic CAN vs a CAN FD migration (64-byte slots, same periods):")
	var rows [][]string
	for _, p := range casestudy.TableI() {
		st := can.StudyFDMigration(p.DataBytes, own, 64)
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Number),
			fmt.Sprintf("%d", p.DataBytes),
			fmt.Sprintf("%.1f", st.ClassicMS/1000),
			fmt.Sprintf("%.1f", st.FDMS/1000),
			fmt.Sprintf("%.1fx", st.Speedup),
		})
	}
	report.Table(os.Stdout, []string{"profile", "s(b^D) [Bytes]", "q CAN [s]", "q CAN FD [s]", "speedup"}, rows)
	return nil
}

// faultSweep replays the fault-aware analysis over a BER range: the
// degraded Eq. (1) transfer time of the Table I profile-3 payload, the
// worst third-party WCRT with the error-recovery term, and the combined
// verdict (non-intrusive AND schedulable).
func faultSweep(w *os.File, bus can.Bus, own, others []can.Frame) error {
	const demoBytes = 994_156 // Table I profile 3
	fmt.Fprintf(w, "fault sweep: %d-byte transfer (Table I profile 3) over the mirrored own-message slots\n", demoBytes)
	var rows [][]string
	for _, ber := range []float64{0, 1e-7, 1e-6, 1e-5, 1e-4, 1e-2} {
		m := can.ErrorModel{BitErrorRate: ber}
		q := can.TransferTimeMSFaulty(bus, demoBytes, own, m)
		rep, err := can.VerifyNonIntrusiveUnderErrors(bus, own, others, m)
		if err != nil {
			return err
		}
		all := append(append([]can.Frame(nil), own...), others...)
		rts, err := can.AnalyzeBusUnderErrors(bus, all, m)
		if err != nil {
			return err
		}
		worst := 0.0
		for _, rt := range rts {
			if rt.WCRTms > worst {
				worst = rt.WCRTms
			}
		}
		wcrt := "inf"
		if !math.IsInf(worst, 1) {
			wcrt = fmt.Sprintf("%.3f", worst)
		}
		verdict := "HOLDS"
		if !rep.Holds() {
			verdict = "BROKEN"
			if rep.OK() {
				verdict = fmt.Sprintf("DEADLINES MISSED (%d)", len(rep.DeadlineMisses))
			}
		}
		rows = append(rows, []string{
			fmt.Sprintf("%g", ber),
			fmt.Sprintf("%.1f", q/1000),
			wcrt,
			verdict,
		})
	}
	report.Table(w, []string{"BER", "q(b^D) [s]", "worst WCRT [ms]", "certified schedule"}, rows)
	return nil
}
