// Command bistprof regenerates the paper's Table I: it characterizes
// mixed-mode BIST profiles (pseudo-random phase + PODEM deterministic
// top-off) on a synthetic full-scan CUT, optionally scaling the
// measured costs to the dimensions of the paper's Infineon processor.
//
// Usage:
//
//	bistprof [-chains 10] [-chainlen 12] [-gates-per-ff 4] [-seed 5]
//	         [-levels 64,256,1024,4096] [-scale] [-paper] [-workers N]
//
// -paper skips measurement and prints the embedded Table I instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"

	"repro/internal/bistgen"
	"repro/internal/casestudy"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/stumps"
)

func main() {
	var (
		chains     = flag.Int("chains", 10, "scan chains")
		chainLen   = flag.Int("chainlen", 12, "cells per chain")
		gatesPerFF = flag.Int("gates-per-ff", 4, "random logic gates per scan cell")
		seed       = flag.Int64("seed", 5, "circuit generation seed")
		levels     = flag.String("levels", "64,256,1024,4096", "comma-separated PRP levels")
		scale      = flag.Bool("scale", false, "scale measured profiles to the paper's CUT dimensions")
		paper      = flag.Bool("paper", false, "print the embedded paper Table I and exit")
		reseedW    = flag.Int("reseed", 0, "size deterministic data with an LFSR-reseeding encoder of this seed width (0 = heuristic)")
		transition = flag.Bool("transition", false, "additionally measure broadside transition-fault coverage")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "goroutines sharding each grading fault simulation; profiles are identical for any value (default: all cores)")
	)
	flag.Parse()

	if *paper {
		report.WriteTableI(os.Stdout, casestudy.TableI())
		return
	}

	prpLevels, err := parseLevels(*levels)
	if err != nil {
		fatal(err)
	}
	cfg := stumps.Config{
		Chains: *chains, ChainLen: *chainLen, Seed: 17,
		WindowPatterns: 32, RestoreCycles: 200, TestClockHz: 40e6,
	}
	cut := netlist.ScanCUT(*seed, *chains, *chainLen, *gatesPerFF)
	stats := cut.Stats()
	fmt.Printf("synthetic CUT: %d gates, %d scan cells (%d chains x %d), %d collapsed faults\n\n",
		stats.Gates, cut.NumInputs(), *chains, *chainLen, stats.Faults)

	gen, err := bistgen.New(cut, bistgen.Options{Scan: cfg, MaxBacktracks: 150, ReseedWidth: *reseedW, MeasureTransition: *transition, Workers: *workers})
	if err != nil {
		fatal(err)
	}
	profiles, err := gen.Characterize(prpLevels, bistgen.DefaultTargets())
	if err != nil {
		fatal(err)
	}
	if *scale {
		from := bistgen.CUTDims{ScanCells: cut.NumInputs(), ChainLen: *chainLen, Faults: stats.Faults}
		for i := range profiles {
			profiles[i] = bistgen.ScaleToCUT(profiles[i], from, bistgen.PaperCUT)
		}
		fmt.Printf("profiles scaled to the paper CUT (%d faults, chain length %d):\n\n",
			bistgen.PaperCUT.Faults, bistgen.PaperCUT.ChainLen)
	}
	report.WriteTableI(os.Stdout, profiles)
	if *transition {
		fmt.Println()
		for _, p := range profiles {
			fmt.Printf("profile %2d: stuck-at %.2f%%  transition %.2f%%\n", p.Number, p.Coverage*100, p.TransitionCov*100)
		}
	}
}

func parseLevels(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad PRP level %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bistprof:", err)
	os.Exit(1)
}
