// Command eedse runs the paper's design space exploration on the
// Section IV case study and prints the Fig. 5 Pareto front, the Fig. 6
// memory split, and the headline summary.
//
// Usage:
//
//	eedse [-evals 100000] [-pop 128] [-seed 1] [-profiles 36]
//	      [-decoder greedy|sat] [-threshold 20] [-fig5] [-fig6] [-summary]
//	      [-workers N] [-measured] [-cpuprofile dse.pprof] [-memprofile heap.pprof]
//
// Without -fig5/-fig6/-summary all three reports are printed.
//
// -workers defaults to runtime.GOMAXPROCS(0) so candidate evaluation
// (and, with -measured, fault-simulation grading) uses every core;
// results are deterministic and identical for any worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/moea"
	"repro/internal/report"
)

func main() {
	var (
		evals     = flag.Int("evals", 20000, "number of implementations to evaluate (paper: 100000)")
		pop       = flag.Int("pop", 128, "MOEA population size")
		seed      = flag.Int64("seed", 1, "optimization seed")
		profiles  = flag.Int("profiles", 36, "BIST profiles per ECU (1..36)")
		decoder   = flag.String("decoder", "greedy", "genotype decoder: greedy or sat")
		threshold = flag.Float64("threshold", 20, "Fig. 5 shut-off marker threshold in seconds")
		fig5      = flag.Bool("fig5", false, "print the Fig. 5 scatter")
		fig6      = flag.Bool("fig6", false, "print the Fig. 6 memory split")
		summary   = flag.Bool("summary", false, "print the headline summary")
		small     = flag.Bool("small", false, "use the reduced 3-ECU subnet instead of the full case study")
		specPath  = flag.String("spec", "", "load the specification from this JSON file instead of the built-in case study")
		dumpSpec  = flag.String("dump-spec", "", "write the built specification as JSON to this file and exit")
		storage   = flag.String("storage", "free", "pattern storage ablation: free, local, gateway")
		optimizer = flag.String("optimizer", "nsga2", "optimizer: nsga2 or random (ablation)")
		sbst      = flag.String("sbst", "off", "SBST alternative: off, add (BIST+SBST) or only")
		fd        = flag.Int("fd", 0, "future-architecture variant: CAN FD buses with this container payload (e.g. 64; 0 = classic CAN)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel evaluation goroutines for MOEA candidate evaluation and (with -measured) fault-simulation grading; results are identical for any value (default: all cores)")
		measured  = flag.Bool("measured", false, "characterize BIST profiles on a synthetic CUT with real fault simulation instead of the embedded Table I")
		csvPath   = flag.String("csv", "", "write the Pareto front as CSV to this file")
		epsilon   = flag.String("epsilon", "", "comma-separated \u03b5-archive box sizes per objective (cost,-quality,shutoff_ms)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the exploration to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (taken after the exploration) to this file")
	)
	flag.Parse()
	if !*fig5 && !*fig6 && !*summary {
		*fig5, *fig6, *summary = true, true, true
	}

	var spec *model.Specification
	var err error
	if *specPath != "" {
		f, ferr := os.Open(*specPath)
		if ferr != nil {
			fatal(ferr)
		}
		spec, err = model.ReadJSON(f)
		f.Close()
	} else {
		spec, err = buildSpec(*small, *profiles, *sbst, *fd, *measured, *workers)
	}
	if err != nil {
		fatal(err)
	}
	if *dumpSpec != "" {
		f, ferr := os.Create(*dumpSpec)
		if ferr != nil {
			fatal(ferr)
		}
		if err := spec.WriteJSON(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote specification to %s\n", *dumpSpec)
		return
	}
	var dec core.Decoder
	switch *decoder {
	case "greedy":
		gd, gerr := core.NewGreedyDecoder(spec)
		if gerr == nil {
			switch *storage {
			case "free":
			case "local":
				gd.StorageChoice = 1
			case "gateway":
				gd.StorageChoice = -1
			default:
				gerr = fmt.Errorf("unknown storage mode %q", *storage)
			}
		}
		dec, err = gd, gerr
	case "sat":
		if *storage != "free" {
			fatal(fmt.Errorf("-storage ablation requires the greedy decoder"))
		}
		dec, err = core.NewSATDecoder(spec, 0)
	default:
		err = fmt.Errorf("unknown decoder %q", *decoder)
	}
	if err != nil {
		fatal(err)
	}

	gens := *evals / *pop
	if gens < 1 {
		gens = 1
	}
	name := specName(*small)
	if *specPath != "" {
		name = *specPath
	}
	fmt.Printf("exploring %s with %s decoder (%s, storage=%s, sbst=%s): pop=%d generations=%d (~%d evaluations)\n\n",
		name, *decoder, *optimizer, *storage, *sbst, *pop, gens, *pop+*pop*gens)
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}
	ex := core.NewExplorer(spec, dec)
	var res *core.Result
	switch *optimizer {
	case "nsga2":
		var eps []float64
		if *epsilon != "" {
			eps, err = parseEpsilon(*epsilon)
			if err != nil {
				fatal(err)
			}
		}
		res, err = ex.Run(moea.Options{PopSize: *pop, Generations: gens, Seed: *seed, Workers: *workers, ArchiveEpsilon: eps})
	case "random":
		res, err = ex.RunRandom(*pop+*pop*gens, *seed)
	default:
		err = fmt.Errorf("unknown optimizer %q", *optimizer)
	}
	if err != nil {
		fatal(err)
	}
	if *memProf != "" {
		f, ferr := os.Create(*memProf)
		if ferr != nil {
			fatal(ferr)
		}
		runtime.GC() // capture the steady state, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			fatal(err)
		}
		if err := report.WriteCSV(f, res); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d solutions to %s\n\n", len(res.Solutions), *csvPath)
	}
	if *summary {
		report.WriteSummary(os.Stdout, res)
		report.WriteFrontStats(os.Stdout, res)
		fmt.Println()
	}
	if *fig5 {
		report.WriteFig5(os.Stdout, res, *threshold*1000)
		fmt.Println()
	}
	if *fig6 {
		report.WriteFig6(os.Stdout, report.PickFig6(res, 7))
	}
}

func buildSpec(small bool, profiles int, sbst string, fd int, measured bool, workers int) (*model.Specification, error) {
	if small {
		if sbst != "off" || fd != 0 || measured {
			return nil, fmt.Errorf("-sbst/-fd/-measured require the full case study")
		}
		return casestudy.Small(3, profiles, 7)
	}
	opts := casestudy.Options{ProfilesPerECU: profiles, FDPayload: fd}
	if measured {
		opts.Measured = &casestudy.MeasuredOptions{Workers: workers}
	}
	switch sbst {
	case "off":
	case "add":
		opts.IncludeSBST = true
	case "only":
		opts.IncludeSBST = true
		opts.ExcludeBIST = true
	default:
		return nil, fmt.Errorf("unknown sbst mode %q", sbst)
	}
	return casestudy.Build(opts)
}

func parseEpsilon(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad epsilon %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "eedse:", err)
	os.Exit(1)
}

func specName(small bool) string {
	if small {
		return "reduced 3-ECU subnet"
	}
	return "DATE'14 case study (15 ECUs, 3 CAN buses)"
}
