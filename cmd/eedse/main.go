// Command eedse runs the paper's design space exploration on the
// Section IV case study and prints the Fig. 5 Pareto front, the Fig. 6
// memory split, and the headline summary.
//
// Usage:
//
//	eedse [-evals 100000] [-pop 128] [-seed 1] [-profiles 36]
//	      [-decoder greedy|sat] [-threshold 20] [-fig5] [-fig6] [-summary]
//	      [-workers N] [-measured] [-cpuprofile dse.pprof] [-memprofile heap.pprof]
//	      [-checkpoint cp.json] [-checkpoint-every 10] [-resume cp.json]
//	      [-progress] [-progress-addr 127.0.0.1:6060]
//	      [-robust] [-error-rate 1e-5]
//	      [-islands N] [-migrate-every 10] [-migrants 4]
//
// -islands N (N ≥ 1) switches NSGA-II to the island model: N
// independent populations on derived seed streams, coupled by ring
// migration every -migrate-every generations (-migrants archive
// representatives per epoch). -islands 1 is the classic run under the
// island driver; for a fixed (seed, islands, migration) tuple the
// merged front is byte-identical at any -workers count. Checkpoints
// written with -islands use the island checkpoint format and must be
// resumed with the same -islands/-migrate-every/-migrants values.
//
// -procs P shards the island campaign across P worker processes: each
// migration epoch the orchestrator re-execs itself P times in worker
// mode (one contiguous island subset per worker), merges the partial
// shard checkpoints, performs the ring migration centrally, writes the
// full campaign checkpoint (-checkpoint, the recovery point — killing
// the orchestrator mid-epoch loses at most the epoch in flight) and
// loops. The front is byte-identical to the in-process -islands run at
// any -procs and any -workers; -max-epochs N stops deterministically
// after N merged epochs (continue with -resume). Total evaluation
// goroutines are -procs × -workers.
//
// -epoch-step is the worker mode -procs spawns internally: advance the
// islands of shard -island-shard k/P by exactly one migration epoch
// from the -resume campaign checkpoint (without -resume, bootstrap
// epoch 0), write the partial shard checkpoint to -shard-out, print
// nothing, exit.
//
// -robust adds the degraded-mode transfer score (expected BIST transfer
// completion plus deadline-miss penalty under a CAN bit-error rate) as
// a fourth minimized objective; -error-rate sets the bit-error rate and
// implies -robust when positive. With the objective disabled (or the
// rate at 0) results are bit-identical to pre-robustness runs.
//
// Without -fig5/-fig6/-summary all three reports are printed.
//
// -workers defaults to runtime.GOMAXPROCS(0) so candidate evaluation
// (and, with -measured, fault-simulation grading) uses every core;
// results are deterministic and identical for any worker count.
//
// Long campaigns are survivable: -checkpoint periodically snapshots the
// optimizer state (atomically) to a versioned file, SIGINT/SIGTERM stop
// the run at the next generation boundary, write a final checkpoint,
// and still emit the partial Pareto front, and -resume continues a
// checkpointed run to a byte-identical front. -progress streams one
// structured line per generation to stderr; -progress-addr additionally
// serves the same counters as JSON over HTTP (expvar, /debug/vars),
// Prometheus text on /metrics, and the pprof handlers on /debug/pprof.
// -trace-out records per-stage spans (SAT decode, objective evaluation,
// generation steps, migration epochs, shard spawns/merges) plus
// periodic metric snapshots as JSONL — a flight recorder for post-hoc
// analysis with cmd/obsdump. Tracing is purely observational: fronts
// are byte-identical with it on or off.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/moea"
	"repro/internal/objective"
	"repro/internal/obs"
	"repro/internal/report"
	"repro/internal/shard"
)

// errInterrupted marks a run stopped by SIGINT/SIGTERM after its
// partial results were written; main exits 130 without re-printing it.
var errInterrupted = errors.New("interrupted")

func main() {
	err := run()
	switch {
	case err == nil:
	case errors.Is(err, errInterrupted):
		os.Exit(130)
	default:
		fmt.Fprintln(os.Stderr, "eedse:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		evals     = flag.Int("evals", 20000, "number of implementations to evaluate (paper: 100000)")
		pop       = flag.Int("pop", 128, "MOEA population size")
		seed      = flag.Int64("seed", 1, "optimization seed")
		profiles  = flag.Int("profiles", 36, "BIST profiles per ECU (1..36)")
		decoder   = flag.String("decoder", "greedy", "genotype decoder: greedy or sat")
		threshold = flag.Float64("threshold", 20, "Fig. 5 shut-off marker threshold in seconds")
		fig5      = flag.Bool("fig5", false, "print the Fig. 5 scatter")
		fig6      = flag.Bool("fig6", false, "print the Fig. 6 memory split")
		summary   = flag.Bool("summary", false, "print the headline summary")
		small     = flag.Bool("small", false, "use the reduced 3-ECU subnet instead of the full case study")
		specPath  = flag.String("spec", "", "load the specification from this JSON file instead of the built-in case study")
		dumpSpec  = flag.String("dump-spec", "", "write the built specification as JSON to this file and exit")
		storage   = flag.String("storage", "free", "pattern storage ablation: free, local, gateway")
		optimizer = flag.String("optimizer", "nsga2", "optimizer: nsga2 or random (ablation)")
		sbst      = flag.String("sbst", "off", "SBST alternative: off, add (BIST+SBST) or only")
		fd        = flag.Int("fd", 0, "future-architecture variant: CAN FD buses with this container payload (e.g. 64; 0 = classic CAN)")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel evaluation goroutines for MOEA candidate evaluation and (with -measured) fault-simulation grading; results are identical for any value (default: all cores)")
		measured  = flag.Bool("measured", false, "characterize BIST profiles on a synthetic CUT with real fault simulation instead of the embedded Table I")
		csvPath   = flag.String("csv", "", "write the Pareto front as CSV to this file")
		epsilon   = flag.String("epsilon", "", "comma-separated ε-archive box sizes per objective (cost,-quality,shutoff_ms)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile of the exploration to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile (taken after the exploration) to this file")

		robust  = flag.Bool("robust", false, "add the degraded-mode transfer score as a 4th objective (CAN error model, default -error-rate 1e-5)")
		errRate = flag.Float64("error-rate", 0, "CAN bit-error rate for the robustness objective; > 0 implies -robust")

		islands      = flag.Int("islands", 0, "island-model NSGA-II: number of independent populations coupled by ring migration (0 = classic single-population run)")
		migrateEvery = flag.Int("migrate-every", 10, "island migration period in generations (with -islands)")
		migrants     = flag.Int("migrants", 4, "archive representatives exchanged per island per migration epoch (with -islands)")

		procs     = flag.Int("procs", 0, "shard the island campaign across this many worker processes, merging at migration-epoch boundaries (requires -islands; front byte-identical at any value)")
		maxEpochs = flag.Int("max-epochs", 0, "with -procs: stop after this many merged migration epochs and keep the checkpoint (0 = run to completion)")

		epochStep   = flag.Bool("epoch-step", false, "worker mode: advance the -island-shard island subset exactly one migration epoch from -resume (or bootstrap epoch 0), write -shard-out, exit")
		islandShard = flag.String("island-shard", "", "worker mode: contiguous island subset to step, as k/P (shard k of P, requires -epoch-step)")
		shardOut    = flag.String("shard-out", "", "worker mode: write the partial island shard checkpoint to this file (requires -epoch-step)")

		checkpoint      = flag.String("checkpoint", "", "periodically write optimizer state to this file (atomically); SIGINT writes a final checkpoint before exiting")
		checkpointEvery = flag.Int("checkpoint-every", 0, "checkpoint period: generations for nsga2 (default 10), evaluations for random (default 2560)")
		resumePath      = flag.String("resume", "", "resume the run from this checkpoint file (same spec, decoder, seed and budget flags required)")
		progress        = flag.Bool("progress", false, "stream one structured progress line per generation to stderr")
		progressAddr    = flag.String("progress-addr", "", "serve live run telemetry on this address: Prometheus text on /metrics, expvar JSON on /debug/vars, pprof on /debug/pprof")
		traceOut        = flag.String("trace-out", "", "stream per-stage trace events and periodic metric snapshots as JSONL to this file (flight recorder; inspect with cmd/obsdump)")
	)
	flag.Parse()
	if !*fig5 && !*fig6 && !*summary {
		*fig5, *fig6, *summary = true, true, true
	}
	if *errRate < 0 {
		return fmt.Errorf("-error-rate must be non-negative, got %g", *errRate)
	}
	if *errRate > 0 {
		*robust = true
	} else if *robust {
		*errRate = 1e-5
	}
	if *islands < 0 {
		return fmt.Errorf("-islands must be non-negative, got %d", *islands)
	}
	if *islands > 0 && *optimizer != "nsga2" {
		return fmt.Errorf("-islands requires -optimizer nsga2")
	}
	if *islands > 0 {
		if *migrateEvery <= 0 {
			return fmt.Errorf("-migrate-every must be positive, got %d", *migrateEvery)
		}
		if *migrants < 0 {
			return fmt.Errorf("-migrants must be non-negative, got %d", *migrants)
		}
	}
	if *procs < 0 {
		return fmt.Errorf("-procs must be non-negative, got %d", *procs)
	}
	if *procs > 0 && *islands == 0 {
		return fmt.Errorf("-procs requires -islands")
	}
	if *maxEpochs < 0 {
		return fmt.Errorf("-max-epochs must be non-negative, got %d", *maxEpochs)
	}
	if *maxEpochs > 0 && *procs == 0 {
		return fmt.Errorf("-max-epochs requires -procs")
	}
	if *maxEpochs > 0 && *checkpoint == "" {
		return fmt.Errorf("-max-epochs requires -checkpoint (the stop point is the checkpoint you resume from)")
	}
	if *epochStep != (*islandShard != "") {
		return fmt.Errorf("-epoch-step and -island-shard must be used together")
	}
	if *epochStep {
		if *islands == 0 {
			return fmt.Errorf("-epoch-step requires -islands")
		}
		if *shardOut == "" {
			return fmt.Errorf("-epoch-step requires -shard-out")
		}
		if *procs > 0 {
			return fmt.Errorf("-epoch-step (worker mode) conflicts with -procs (orchestrator mode)")
		}
	} else if *shardOut != "" {
		return fmt.Errorf("-shard-out requires -epoch-step")
	}

	// SIGINT/SIGTERM cancel the run context: the exploration stops at the
	// next generation (or fault-simulation batch) boundary, the final
	// checkpoint is written, and the partial front still goes out below.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// All stdout reporting goes through one buffered writer so every exit
	// path can flush it and surface write errors (a redirected-to-full-disk
	// run must not pretend it succeeded).
	out := bufio.NewWriter(os.Stdout)

	var spec *model.Specification
	if *specPath != "" {
		f, ferr := os.Open(*specPath)
		if ferr != nil {
			return ferr
		}
		spec, err = model.ReadJSON(f)
		f.Close()
	} else {
		spec, err = buildSpec(ctx, *small, *profiles, *sbst, *fd, *measured, *workers)
	}
	if err != nil {
		return err
	}
	if *dumpSpec != "" {
		f, ferr := os.Create(*dumpSpec)
		if ferr != nil {
			return ferr
		}
		if err := spec.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote specification to %s\n", *dumpSpec)
		return out.Flush()
	}
	var dec core.Decoder
	switch *decoder {
	case "greedy":
		gd, gerr := core.NewGreedyDecoder(spec)
		if gerr == nil {
			switch *storage {
			case "free":
			case "local":
				gd.StorageChoice = 1
			case "gateway":
				gd.StorageChoice = -1
			default:
				gerr = fmt.Errorf("unknown storage mode %q", *storage)
			}
		}
		dec, err = gd, gerr
	case "sat":
		if *storage != "free" {
			return fmt.Errorf("-storage ablation requires the greedy decoder")
		}
		dec, err = core.NewSATDecoder(spec, 0)
	default:
		err = fmt.Errorf("unknown decoder %q", *decoder)
	}
	if err != nil {
		return err
	}

	gens := *evals / *pop
	if gens < 1 {
		gens = 1
	}
	var eps []float64
	if *epsilon != "" {
		if eps, err = parseEpsilon(*epsilon); err != nil {
			return err
		}
	}

	// Observability. The registry/tracer/recorder trio only exists when
	// something consumes it (-progress-addr or -trace-out); plain runs
	// keep nil handles and the zero-cost no-op fast path everywhere.
	// Event recording (the flight-recorder ring buffers) is enabled only
	// with -trace-out; a bare -progress-addr still meters stage latency
	// histograms but buffers no events.
	var (
		reg    *obs.Registry
		tracer *obs.Tracer
	)
	if *progressAddr != "" || *traceOut != "" {
		reg = obs.NewRegistry()
		tracer = obs.NewTracer(reg, obs.TracerConfig{Record: *traceOut != ""})
	}
	if *traceOut != "" {
		rec, rerr := obs.NewRecorder(*traceOut, tracer, reg, 0)
		if rerr != nil {
			return fmt.Errorf("trace-out: %w", rerr)
		}
		defer func() {
			if cerr := rec.Close(); cerr != nil && err == nil {
				err = fmt.Errorf("trace-out: %w", cerr)
			}
		}()
	}

	if *epochStep {
		// Worker mode: step one shard one epoch, write it, say nothing.
		ex := core.NewExplorer(spec, dec)
		ex.Obs = tracer
		if *robust {
			ex.Robust = objective.RobustConfig{ErrorRate: *errRate}
		}
		mopt := moea.Options{PopSize: *pop, Generations: gens, Seed: *seed, Workers: *workers, ArchiveEpsilon: eps}
		ic := core.IslandConfig{Islands: *islands, MigrateEvery: *migrateEvery, Migrants: *migrants}
		return runEpochStep(ctx, ex, mopt, ic, *islandShard, *resumePath, *shardOut)
	}
	name := specName(*small)
	if *specPath != "" {
		name = *specPath
	}
	robustNote := ""
	if *robust {
		robustNote = fmt.Sprintf(", robust@BER=%g", *errRate)
	}
	if *islands > 0 {
		robustNote += fmt.Sprintf(", islands=%d/migrate=%d", *islands, *migrateEvery)
	}
	if *procs > 0 {
		robustNote += fmt.Sprintf(", procs=%d", *procs)
	}
	evalBudget := *pop + *pop*gens
	if *islands > 1 {
		evalBudget *= *islands // every island runs its own population
	}
	fmt.Fprintf(out, "exploring %s with %s decoder (%s, storage=%s, sbst=%s%s): pop=%d generations=%d (~%d evaluations)\n\n",
		name, *decoder, *optimizer, *storage, *sbst, robustNote, *pop, gens, evalBudget)
	if err := out.Flush(); err != nil {
		return err
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		defer f.Close()
		defer pprof.StopCPUProfile()
	}

	rc := &core.RunControl{
		CheckpointPath:  *checkpoint,
		CheckpointEvery: *checkpointEvery,
	}
	if *resumePath != "" {
		if *islands > 0 {
			icp, err := moea.ReadIslandCheckpointFile(*resumePath)
			if err != nil {
				return err
			}
			rc.ResumeIslands = icp
		} else {
			cp, err := moea.ReadCheckpointFile(*resumePath)
			if err != nil {
				return err
			}
			if cp.Algorithm != *optimizer {
				return fmt.Errorf("resume: checkpoint is for optimizer %q, run uses -optimizer %s", cp.Algorithm, *optimizer)
			}
			rc.Resume = cp
		}
	}
	tel := newTelemetry(*optimizer, reg)
	if *progress {
		rc.OnProgress = tel.observe(func(p core.Progress) { tel.printLine(os.Stderr, p) })
	}
	if reg != nil && rc.OnProgress == nil {
		// Something scrapes or records telemetry: keep the snapshot fresh
		// even without -progress.
		rc.OnProgress = tel.observe(nil)
	}
	if *progressAddr != "" {
		srv, serr := obs.Serve(*progressAddr, obs.NewMux(reg))
		if serr != nil {
			return fmt.Errorf("progress endpoint: %w", serr)
		}
		fmt.Fprintf(os.Stderr, "eedse: progress endpoint on http://%s/debug/vars (Prometheus on /metrics)\n", srv.Addr())
		defer srv.Shutdown(2 * time.Second)
	}

	ex := core.NewExplorer(spec, dec)
	ex.Obs = tracer
	if *robust {
		ex.Robust = objective.RobustConfig{ErrorRate: *errRate}
	}
	// workerArgs reconstructs the campaign flags every epoch-step worker
	// must share with the orchestrator. The spec-construction flags are
	// passed through rather than a serialized spec: both builders are
	// deterministic, so each worker rebuilds the identical specification.
	var workerArgs []string
	if *procs > 0 {
		workerArgs = []string{
			"-evals", strconv.Itoa(*evals),
			"-pop", strconv.Itoa(*pop),
			"-seed", strconv.FormatInt(*seed, 10),
			"-profiles", strconv.Itoa(*profiles),
			"-decoder", *decoder,
			"-storage", *storage,
			"-sbst", *sbst,
			"-fd", strconv.Itoa(*fd),
			"-workers", strconv.Itoa(*workers),
			"-islands", strconv.Itoa(*islands),
			"-migrate-every", strconv.Itoa(*migrateEvery),
			"-migrants", strconv.Itoa(*migrants),
		}
		if *small {
			workerArgs = append(workerArgs, "-small")
		}
		if *specPath != "" {
			workerArgs = append(workerArgs, "-spec", *specPath)
		}
		if *measured {
			workerArgs = append(workerArgs, "-measured")
		}
		if *epsilon != "" {
			workerArgs = append(workerArgs, "-epsilon", *epsilon)
		}
		if *robust {
			workerArgs = append(workerArgs, "-robust", "-error-rate", strconv.FormatFloat(*errRate, 'g', -1, 64))
		}
	}

	var res *core.Result
	var runErr error
	switch *optimizer {
	case "nsga2":
		mopt := moea.Options{PopSize: *pop, Generations: gens, Seed: *seed, Workers: *workers, ArchiveEpsilon: eps}
		switch {
		case *procs > 0:
			ic := core.IslandConfig{Islands: *islands, MigrateEvery: *migrateEvery, Migrants: *migrants}
			res, runErr = runSharded(ctx, ex, mopt, ic, rc, *procs, *maxEpochs, workerArgs, *progress, tracer)
		case *islands > 0:
			ic := core.IslandConfig{Islands: *islands, MigrateEvery: *migrateEvery, Migrants: *migrants}
			res, runErr = ex.RunIslandsContext(ctx, mopt, ic, rc)
		default:
			res, runErr = ex.RunContext(ctx, mopt, rc)
		}
	case "random":
		res, runErr = ex.RunRandomContext(ctx, *pop+*pop*gens, *seed, *workers, rc)
	default:
		runErr = fmt.Errorf("unknown optimizer %q", *optimizer)
	}
	interrupted := runErr != nil && errors.Is(runErr, context.Canceled)
	if runErr != nil && !interrupted {
		return runErr
	}
	if res == nil {
		return runErr
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "eedse: interrupted — emitting the partial Pareto front")
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "eedse: checkpoint written to %s (continue with -resume %s)\n", *checkpoint, *checkpoint)
		}
	}

	if *memProf != "" {
		f, ferr := os.Create(*memProf)
		if ferr != nil {
			return ferr
		}
		runtime.GC() // capture the steady state, not transient garbage
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *csvPath != "" {
		f, err := os.Create(*csvPath)
		if err != nil {
			return err
		}
		if err := report.WriteCSV(f, res); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d solutions to %s\n\n", len(res.Solutions), *csvPath)
	}
	if *summary {
		report.WriteSummary(out, res)
		report.WriteFrontStats(out, res)
		fmt.Fprintln(out)
	}
	if *fig5 {
		report.WriteFig5(out, res, *threshold*1000)
		fmt.Fprintln(out)
	}
	if *fig6 {
		report.WriteFig6(out, report.PickFig6(res, 7))
	}
	if err := out.Flush(); err != nil {
		return err
	}
	if interrupted {
		return errInterrupted
	}
	return nil
}

// runEpochStep is the -epoch-step worker body: advance one contiguous
// island shard exactly one migration epoch from the full campaign
// checkpoint (or bootstrap epoch 0) and write the partial shard
// checkpoint. It prints nothing on success — the orchestrator owns all
// reporting.
func runEpochStep(ctx context.Context, ex *core.Explorer, mopt moea.Options, ic core.IslandConfig, shardSpec, resumePath, outPath string) error {
	k, p, err := parseShardSpec(shardSpec)
	if err != nil {
		return err
	}
	if p > ic.Islands {
		return fmt.Errorf("-island-shard %s: %d shards for only %d islands", shardSpec, p, ic.Islands)
	}
	first, count := moea.ShardRange(ic.Islands, p, k)
	var full *moea.IslandCheckpoint
	if resumePath != "" {
		if full, err = moea.ReadIslandCheckpointFile(resumePath); err != nil {
			return err
		}
	}
	sh, err := ex.EpochStep(ctx, mopt, ic, full, first, count)
	if err != nil {
		return err
	}
	return sh.WriteFile(outPath)
}

// parseShardSpec parses the -island-shard "k/P" argument.
func parseShardSpec(s string) (k, p int, err error) {
	bad := func() (int, int, error) {
		return 0, 0, fmt.Errorf("-island-shard must be k/P with 0 <= k < P, got %q", s)
	}
	i := strings.IndexByte(s, '/')
	if i <= 0 {
		return bad()
	}
	k, err = strconv.Atoi(s[:i])
	if err != nil {
		return bad()
	}
	p, err = strconv.Atoi(s[i+1:])
	if err != nil || p < 1 || k < 0 || k >= p {
		return bad()
	}
	return k, p, nil
}

// runSharded is the -procs orchestrator body: drive the campaign
// through internal/shard (spawning this same binary in -epoch-step
// mode), then rebuild the merged result from the final full checkpoint.
func runSharded(ctx context.Context, ex *core.Explorer, mopt moea.Options, ic core.IslandConfig, rc *core.RunControl, procs, maxEpochs int, args []string, progress bool, tracer *obs.Tracer) (*core.Result, error) {
	exe, err := os.Executable()
	if err != nil {
		return nil, err
	}
	cfg := shard.Config{
		Binary:         exe,
		Args:           args,
		Procs:          procs,
		Islands:        ic.Islands,
		MigrateEvery:   ic.MigrateEvery,
		Migrants:       ic.Migrants,
		CheckpointPath: rc.CheckpointPath,
		Resume:         rc.ResumeIslands,
		MaxEpochs:      maxEpochs,
		Stderr:         os.Stderr,
		Obs:            tracer,
	}
	cfg, cleanup, err := shard.Bootstrap(cfg)
	if err != nil {
		return nil, err
	}
	defer cleanup()
	if cfg.CheckpointPath == "" {
		// No -checkpoint: keep the recovery point in the (temporary)
		// work directory so the epoch loop still has one.
		cfg.CheckpointPath = filepath.Join(cfg.WorkDir, "campaign-checkpoint.json")
	}
	if progress {
		cfg.OnEpoch = func(ep shard.Epoch) {
			fmt.Fprintf(os.Stderr, "eedse: epoch=%d gen=%d/%d evals=%d procs=%d elapsed=%s\n",
				ep.Index, ep.Boundary, ep.Generations, ep.Evaluations, ep.Procs, ep.Elapsed.Round(10_000_000))
		}
	}
	final, done, runErr := shard.Run(ctx, cfg)
	if runErr != nil && !errors.Is(runErr, context.Canceled) {
		return nil, runErr
	}
	if final == nil {
		// Cancelled before the first epoch merged: nothing to report.
		return nil, runErr
	}
	if !done && runErr == nil {
		fmt.Fprintf(os.Stderr, "eedse: stopped after %d epoch(s) at -max-epochs; continue with -resume %s\n",
			maxEpochs, rc.CheckpointPath)
	}
	// Rebuild the merged front from the checkpoint. Collection must not
	// be cancelled by the same SIGINT that stopped the campaign — the
	// partial front is the point of a graceful stop.
	res, err := ex.CollectIslands(context.Background(), mopt, ic, final)
	if err != nil {
		return nil, err
	}
	return res, runErr
}

func buildSpec(ctx context.Context, small bool, profiles int, sbst string, fd int, measured bool, workers int) (*model.Specification, error) {
	if small {
		if sbst != "off" || fd != 0 || measured {
			return nil, fmt.Errorf("-sbst/-fd/-measured require the full case study")
		}
		return casestudy.Small(3, profiles, 7)
	}
	opts := casestudy.Options{ProfilesPerECU: profiles, FDPayload: fd}
	if measured {
		opts.Measured = &casestudy.MeasuredOptions{Workers: workers, Context: ctx}
	}
	switch sbst {
	case "off":
	case "add":
		opts.IncludeSBST = true
	case "only":
		opts.IncludeSBST = true
		opts.ExcludeBIST = true
	default:
		return nil, fmt.Errorf("unknown sbst mode %q", sbst)
	}
	return casestudy.Build(opts)
}

func parseEpsilon(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad epsilon %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

func specName(small bool) string {
	if small {
		return "reduced 3-ECU subnet"
	}
	return "DATE'14 case study (15 ECUs, 3 CAN buses)"
}

// telemetry publishes the latest explorer progress sample as
// structured stderr lines, through the process-wide expvar map "dse"
// (served on -progress-addr as /debug/vars, same shape as before the
// obs registry existed), and as pull-style registry series on
// /metrics. Both HTTP views read the same mutex-guarded sample, so
// they never disagree.
type telemetry struct {
	optimizer string

	mu   sync.Mutex
	last core.Progress
	seen bool
}

func newTelemetry(optimizer string, reg *obs.Registry) *telemetry {
	t := &telemetry{optimizer: optimizer}
	obs.PublishExpvar("dse", func() any { return t.snapshot() })
	if reg == nil {
		return t
	}
	sample := func(f func(core.Progress) float64) func() float64 {
		return func() float64 {
			t.mu.Lock()
			defer t.mu.Unlock()
			if !t.seen {
				return 0
			}
			return f(t.last)
		}
	}
	reg.GaugeFunc("dse_generation", "current MOEA generation",
		sample(func(p core.Progress) float64 { return float64(p.Generation) }))
	reg.GaugeFunc("dse_generations", "configured generation budget",
		sample(func(p core.Progress) float64 { return float64(p.Generations) }))
	reg.CounterFunc("dse_evaluations_total", "implementations evaluated",
		sample(func(p core.Progress) float64 { return float64(p.Evaluations) }))
	reg.GaugeFunc("dse_evals_per_sec", "evaluation throughput over the run so far",
		sample(func(p core.Progress) float64 { return p.EvalsPerSec }))
	reg.GaugeFunc("dse_archive_size", "non-dominated archive size",
		sample(func(p core.Progress) float64 { return float64(p.ArchiveSize) }))
	reg.GaugeFunc("dse_hypervolume", "archive hypervolume indicator",
		sample(func(p core.Progress) float64 { return p.Hypervolume }))
	reg.CounterFunc("dse_decode_failures_total", "genotypes the decoder rejected",
		sample(func(p core.Progress) float64 { return float64(p.DecodeFailures) }))
	reg.CounterFunc("dse_solver_conflicts_total", "SAT decoder conflicts",
		sample(func(p core.Progress) float64 { return float64(p.SolverConflicts) }))
	reg.CounterFunc("dse_solver_propagations_total", "SAT decoder propagations",
		sample(func(p core.Progress) float64 { return float64(p.SolverPropagations) }))
	reg.GaugeFunc("dse_elapsed_seconds", "wall-clock time since the run started",
		sample(func(p core.Progress) float64 { return p.Elapsed.Seconds() }))
	return t
}

// observe wraps a progress consumer so every sample also updates the
// expvar snapshot. next may be nil.
func (t *telemetry) observe(next func(core.Progress)) func(core.Progress) {
	return func(p core.Progress) {
		t.mu.Lock()
		t.last = p
		t.seen = true
		t.mu.Unlock()
		if next != nil {
			next(p)
		}
	}
}

// snapshot returns the latest sample as a flat map for expvar.
func (t *telemetry) snapshot() map[string]any {
	t.mu.Lock()
	defer t.mu.Unlock()
	m := map[string]any{"optimizer": t.optimizer, "running": t.seen}
	if !t.seen {
		return m
	}
	p := t.last
	m["generation"] = p.Generation
	m["generations"] = p.Generations
	m["evaluations"] = p.Evaluations
	m["evals_per_sec"] = p.EvalsPerSec
	m["archive_size"] = p.ArchiveSize
	m["hypervolume"] = p.Hypervolume
	m["decode_failures"] = p.DecodeFailures
	m["solver_conflicts"] = p.SolverConflicts
	m["solver_propagations"] = p.SolverPropagations
	m["elapsed_ms"] = p.Elapsed.Milliseconds()
	return m
}

// printLine writes one structured key=value progress line.
func (t *telemetry) printLine(w *os.File, p core.Progress) {
	total := ""
	if p.Generations > 0 {
		total = fmt.Sprintf("/%d", p.Generations)
	}
	fmt.Fprintf(w, "eedse: progress gen=%d%s evals=%d evals_s=%.0f archive=%d hv=%.4g decode_fail=%d conflicts=%d props=%d elapsed=%s\n",
		p.Generation, total, p.Evaluations, p.EvalsPerSec, p.ArchiveSize, p.Hypervolume,
		p.DecodeFailures, p.SolverConflicts, p.SolverPropagations, p.Elapsed.Round(10_000_000)) // 10 ms
}
