package main

import (
	"strings"
	"testing"
)

const goodTrace = `{"type":"meta","format":"eedse-obs-trace","version":1,"wall":"2026-01-01T00:00:00Z"}
{"type":"span","stage":"decode","worker":0,"start_us":10,"dur_us":100}
{"type":"span","stage":"decode","worker":1,"start_us":20,"dur_us":300}
{"type":"span","stage":"objective","worker":0,"start_us":120,"dur_us":50}
{"type":"mark","stage":"backpressure","start_us":130}
{"type":"dropped","count":3}
{"type":"metrics","start_us":500,"metrics":{"rt_ops_total":9,"dse_hypervolume":1.25}}
{"type":"metrics","start_us":900,"metrics":{"rt_ops_total":12,"dse_hypervolume":1.5}}
`

func TestParseTrace(t *testing.T) {
	tr, err := parseTrace(strings.NewReader(goodTrace))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 4 {
		t.Fatalf("events = %d, want 4", len(tr.Events))
	}
	if tr.Dropped != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped)
	}
	// The last snapshot wins.
	if got := tr.Metrics["rt_ops_total"]; got != float64(12) {
		t.Fatalf("rt_ops_total = %v, want 12", got)
	}
}

func TestParseTraceRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"empty":         "",
		"no meta":       `{"type":"span","stage":"decode","start_us":1,"dur_us":1}` + "\n",
		"bad format":    `{"type":"meta","format":"other","version":1}` + "\n",
		"bad version":   `{"type":"meta","format":"eedse-obs-trace","version":99}` + "\n",
		"malformed":     "{\"type\":\"meta\",\"format\":\"eedse-obs-trace\",\"version\":1}\nnot json\n",
		"unknown type":  "{\"type\":\"meta\",\"format\":\"eedse-obs-trace\",\"version\":1}\n{\"type\":\"bogus\"}\n",
		"span no stage": "{\"type\":\"meta\",\"format\":\"eedse-obs-trace\",\"version\":1}\n{\"type\":\"span\",\"dur_us\":1}\n",
		"double meta":   "{\"type\":\"meta\",\"format\":\"eedse-obs-trace\",\"version\":1}\n{\"type\":\"meta\",\"format\":\"eedse-obs-trace\",\"version\":1}\n",
	}
	for name, in := range cases {
		if _, err := parseTrace(strings.NewReader(in)); err == nil {
			t.Errorf("%s: parse accepted invalid input", name)
		}
	}
}

func TestAggregateOrdersByTotal(t *testing.T) {
	tr, err := parseTrace(strings.NewReader(goodTrace))
	if err != nil {
		t.Fatal(err)
	}
	stats := aggregate(tr.Events)
	if len(stats) != 3 {
		t.Fatalf("stages = %d, want 3", len(stats))
	}
	if stats[0].Stage != "decode" || stats[1].Stage != "objective" {
		t.Fatalf("order = %s, %s; want decode, objective first", stats[0].Stage, stats[1].Stage)
	}
	if stats[0].Spans != 2 || stats[0].TotalUS != 400 {
		t.Fatalf("decode: spans=%d total=%d, want 2/400", stats[0].Spans, stats[0].TotalUS)
	}
	last := stats[2]
	if last.Stage != "backpressure" || last.Marks != 1 || last.Spans != 0 {
		t.Fatalf("mark-only stage mishandled: %+v", last)
	}
}

func TestPercentileNearestRank(t *testing.T) {
	durs := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    float64
		want int64
	}{{50, 50}, {90, 90}, {99, 100}, {100, 100}, {1, 10}}
	for _, c := range cases {
		if got := percentile(durs, c.p); got != c.want {
			t.Errorf("p%g = %d, want %d", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("p50 of empty = %d, want 0", got)
	}
}

func TestWritersSmoke(t *testing.T) {
	tr, err := parseTrace(strings.NewReader(goodTrace))
	if err != nil {
		t.Fatal(err)
	}
	var table, timeline, metrics strings.Builder
	writeStageTable(&table, tr)
	writeTimeline(&timeline, tr)
	writeMetrics(&metrics, tr)
	if !strings.Contains(table.String(), "decode") || !strings.Contains(table.String(), "p99") {
		t.Errorf("stage table missing content:\n%s", table.String())
	}
	if !strings.Contains(timeline.String(), "worker=1") || !strings.Contains(timeline.String(), "mark") {
		t.Errorf("timeline missing content:\n%s", timeline.String())
	}
	if !strings.Contains(metrics.String(), "dse_hypervolume=1.5") {
		t.Errorf("metrics missing content:\n%s", metrics.String())
	}
}
