// Command obsdump renders a flight-recorder file written by eedse or
// fleetd (-trace-out): a JSONL stream of stage spans, marks, dropped
// counts, and periodic metric snapshots (see internal/obs).
//
// Usage:
//
//	obsdump trace.jsonl             per-stage latency table (count, p50/p90/p99/max, total)
//	obsdump -timeline trace.jsonl   chronological span/mark listing (campaign timeline)
//	obsdump -metrics trace.jsonl    final metric snapshot as sorted key=value lines
//
// obsdump validates as it parses — a malformed line, a missing or
// mismatched meta header, or an unknown record type is a hard error —
// so it doubles as the smoke test's trace-file checker.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
)

func main() {
	var (
		timeline = flag.Bool("timeline", false, "print every span and mark in chronological order instead of the per-stage table")
		metrics  = flag.Bool("metrics", false, "print the final metric snapshot instead of the per-stage table")
	)
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: obsdump [-timeline|-metrics] trace.jsonl")
		os.Exit(2)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsdump:", err)
		os.Exit(1)
	}
	tr, err := parseTrace(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "obsdump:", err)
		os.Exit(1)
	}
	out := bufio.NewWriter(os.Stdout)
	switch {
	case *timeline:
		writeTimeline(out, tr)
	case *metrics:
		writeMetrics(out, tr)
	default:
		writeStageTable(out, tr)
	}
	if err := out.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "obsdump:", err)
		os.Exit(1)
	}
}

// trace is a fully parsed flight-recorder file.
type trace struct {
	Meta    obs.TraceLine
	Events  []obs.TraceLine // spans and marks, file order
	Metrics map[string]any  // last snapshot seen (nil if none)
	Dropped uint64          // summed dropped counts
}

// parseTrace reads and validates a flight-recorder JSONL stream. Every
// line must parse, the first line must be the meta header with the
// expected format and version, and every record type must be known.
func parseTrace(r io.Reader) (*trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024) // metric snapshots can be wide
	tr := &trace{}
	n := 0
	for sc.Scan() {
		n++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line obs.TraceLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("line %d: %v", n, err)
		}
		if n == 1 {
			if line.Type != "meta" {
				return nil, fmt.Errorf("line 1: expected meta header, got type %q", line.Type)
			}
			if line.Format != obs.TraceFormat {
				return nil, fmt.Errorf("line 1: format %q, want %q", line.Format, obs.TraceFormat)
			}
			if line.Version != obs.TraceVersion {
				return nil, fmt.Errorf("line 1: version %d, want %d", line.Version, obs.TraceVersion)
			}
			tr.Meta = line
			continue
		}
		switch line.Type {
		case "span", "mark":
			if line.Stage == "" {
				return nil, fmt.Errorf("line %d: %s without stage", n, line.Type)
			}
			tr.Events = append(tr.Events, line)
		case "metrics":
			tr.Metrics = line.Metrics
		case "dropped":
			tr.Dropped += line.Count
		case "meta":
			return nil, fmt.Errorf("line %d: duplicate meta header", n)
		default:
			return nil, fmt.Errorf("line %d: unknown record type %q", n, line.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, fmt.Errorf("empty trace file")
	}
	return tr, nil
}

// stageStats aggregates one stage's spans and marks.
type stageStats struct {
	Stage   string
	Spans   int
	Marks   int
	TotalUS int64
	durs    []int64 // span durations, sorted by aggregate()
}

// aggregate folds the events into per-stage stats, ordered by total
// time descending (mark-only stages last, by count).
func aggregate(events []obs.TraceLine) []*stageStats {
	byStage := map[string]*stageStats{}
	var order []*stageStats
	for i := range events {
		e := &events[i]
		st := byStage[e.Stage]
		if st == nil {
			st = &stageStats{Stage: e.Stage}
			byStage[e.Stage] = st
			order = append(order, st)
		}
		if e.Type == "span" {
			st.Spans++
			st.TotalUS += e.DurUS
			st.durs = append(st.durs, e.DurUS)
		} else {
			st.Marks++
		}
	}
	for _, st := range order {
		sort.Slice(st.durs, func(i, j int) bool { return st.durs[i] < st.durs[j] })
	}
	sort.SliceStable(order, func(i, j int) bool {
		if order[i].TotalUS != order[j].TotalUS {
			return order[i].TotalUS > order[j].TotalUS
		}
		return order[i].Marks > order[j].Marks
	})
	return order
}

// percentile returns the nearest-rank p-th percentile (0 < p <= 100)
// of the sorted microsecond durations, or 0 when empty.
func percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(float64(len(sorted))*p/100 + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// fmtUS renders a microsecond quantity as a rounded duration.
func fmtUS(us int64) string {
	d := time.Duration(us) * time.Microsecond
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.String()
	}
}

func writeStageTable(w io.Writer, tr *trace) {
	fmt.Fprintf(w, "trace %s v%d, started %s: %d events", tr.Meta.Format, tr.Meta.Version, tr.Meta.Wall, len(tr.Events))
	if tr.Dropped > 0 {
		fmt.Fprintf(w, " (+%d dropped)", tr.Dropped)
	}
	fmt.Fprintln(w)
	stats := aggregate(tr.Events)
	if len(stats) == 0 {
		fmt.Fprintln(w, "no spans recorded (was the producer run with -trace-out?)")
		return
	}
	fmt.Fprintf(w, "%-18s %8s %8s  %10s %10s %10s %10s  %12s\n",
		"stage", "spans", "marks", "p50", "p90", "p99", "max", "total")
	for _, st := range stats {
		if st.Spans == 0 {
			fmt.Fprintf(w, "%-18s %8d %8d  %10s %10s %10s %10s  %12s\n",
				st.Stage, 0, st.Marks, "-", "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "%-18s %8d %8d  %10s %10s %10s %10s  %12s\n",
			st.Stage, st.Spans, st.Marks,
			fmtUS(percentile(st.durs, 50)),
			fmtUS(percentile(st.durs, 90)),
			fmtUS(percentile(st.durs, 99)),
			fmtUS(st.durs[len(st.durs)-1]),
			fmtUS(st.TotalUS))
	}
}

func writeTimeline(w io.Writer, tr *trace) {
	events := make([]obs.TraceLine, len(tr.Events))
	copy(events, tr.Events)
	sort.SliceStable(events, func(i, j int) bool { return events[i].StartUS < events[j].StartUS })
	for i := range events {
		e := &events[i]
		worker := ""
		if e.Worker != nil && *e.Worker >= 0 {
			worker = fmt.Sprintf(" worker=%d", *e.Worker)
		}
		if e.Type == "mark" {
			fmt.Fprintf(w, "%12s  %-18s mark%s\n", "+"+fmtUS(e.StartUS), e.Stage, worker)
			continue
		}
		fmt.Fprintf(w, "%12s  %-18s %s%s\n", "+"+fmtUS(e.StartUS), e.Stage, fmtUS(e.DurUS), worker)
	}
}

func writeMetrics(w io.Writer, tr *trace) {
	if tr.Metrics == nil {
		fmt.Fprintln(w, "no metric snapshots in trace")
		return
	}
	keys := make([]string, 0, len(tr.Metrics))
	for k := range tr.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		b, err := json.Marshal(tr.Metrics[k])
		if err != nil {
			b = []byte(fmt.Sprintf("%v", tr.Metrics[k]))
		}
		fmt.Fprintf(w, "%s=%s\n", k, b)
	}
}
