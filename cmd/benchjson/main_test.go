package main

import "testing"

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkDecodeEvaluate-8   	     100	  11221911 ns/op	 1322868 B/op	   23290 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "BenchmarkDecodeEvaluate" || b.Procs != 8 || b.Iterations != 100 {
		t.Fatalf("parsed %+v", b)
	}
	if b.NsPerOp != 11221911 {
		t.Fatalf("ns/op = %v", b.NsPerOp)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 1322868 || b.AllocsPerOp == nil || *b.AllocsPerOp != 23290 {
		t.Fatalf("mem stats %+v", b)
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	b, ok := parseLine("BenchmarkDSEParallel/workers=4-8	       2	 512000000 ns/op	     9321 evals/s")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "BenchmarkDSEParallel/workers=4" {
		t.Fatalf("name %q", b.Name)
	}
	if b.Custom["evals/s"] != 9321 {
		t.Fatalf("custom = %v", b.Custom)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkDecodeEvaluate-8",        // -v echo, no fields
		"Benchmark bogus text",             // non-numeric iteration count
		"ok  	repro	1.2s",                  // summary line
		"BenchmarkX-8 12 notanumber ns/op", // bad value
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("line %q accepted", line)
		}
	}
}
