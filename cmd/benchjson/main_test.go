package main

import (
	"strings"
	"testing"
)

func TestParseLine(t *testing.T) {
	b, ok := parseLine("BenchmarkDecodeEvaluate-8   	     100	  11221911 ns/op	 1322868 B/op	   23290 allocs/op")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "BenchmarkDecodeEvaluate" || b.Procs != 8 || b.Iterations != 100 {
		t.Fatalf("parsed %+v", b)
	}
	if b.NsPerOp != 11221911 {
		t.Fatalf("ns/op = %v", b.NsPerOp)
	}
	if b.BytesPerOp == nil || *b.BytesPerOp != 1322868 || b.AllocsPerOp == nil || *b.AllocsPerOp != 23290 {
		t.Fatalf("mem stats %+v", b)
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	b, ok := parseLine("BenchmarkDSEParallel/workers=4-8	       2	 512000000 ns/op	     9321 evals/s")
	if !ok {
		t.Fatal("line rejected")
	}
	if b.Name != "BenchmarkDSEParallel/workers=4" {
		t.Fatalf("name %q", b.Name)
	}
	if b.Custom["evals/s"] != 9321 {
		t.Fatalf("custom = %v", b.Custom)
	}
}

func TestParseLineRejectsNonResults(t *testing.T) {
	for _, line := range []string{
		"BenchmarkDecodeEvaluate-8",        // -v echo, no fields
		"Benchmark bogus text",             // non-numeric iteration count
		"ok  	repro	1.2s",                  // summary line
		"BenchmarkX-8 12 notanumber ns/op", // bad value
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("line %q accepted", line)
		}
	}
}

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Test CPU
BenchmarkDecodeEvaluate-8   	     512	   2100000 ns/op	   90000 B/op	     309 allocs/op
BenchmarkDSEParallel/workers=1-8         	       8	 140000000 ns/op	      2674 evals/s	 1000000 B/op	   30000 allocs/op
BenchmarkDSEParallel/workers=4-8         	       8	 120000000 ns/op	      3100 evals/s	 1000000 B/op	   30000 allocs/op
`

func sampleReport(t *testing.T) *Report {
	t.Helper()
	rep := parseBench(strings.NewReader(sampleBench))
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	return &rep
}

func TestParseBenchHeaders(t *testing.T) {
	rep := sampleReport(t)
	if rep.GoOS != "linux" || rep.CPU != "Test CPU" || rep.Package != "repro" {
		t.Fatalf("header = %q/%q/%q", rep.GoOS, rep.CPU, rep.Package)
	}
	b := rep.Benchmarks[1]
	if b.Name != "BenchmarkDSEParallel/workers=1" || b.Custom["evals/s"] != 2674 {
		t.Fatalf("parsed %+v", b)
	}
}

func TestParseMaxRegress(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want float64
		ok   bool
	}{
		{"15%", 0.15, true},
		{"15", 0.15, true},
		{" 7.5% ", 0.075, true},
		{"0%", 0, true},
		{"-3%", 0, false},
		{"abc", 0, false},
	} {
		got, err := parseMaxRegress(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Fatalf("parseMaxRegress(%q) = %v, %v; want %v ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestCompareNoRegression(t *testing.T) {
	base := sampleReport(t)
	cur := sampleReport(t)
	// Within tolerance: 10% slower on a 15% gate passes.
	cur.Benchmarks[0].NsPerOp *= 1.10
	regs, _ := compareReports(base, cur, 0.15)
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}
}

// TestCompareSyntheticRegression is the acceptance check for the gate:
// a synthetic 20% throughput regression must fail a 15% gate.
func TestCompareSyntheticRegression(t *testing.T) {
	base := sampleReport(t)
	cur := sampleReport(t)
	cur.Benchmarks[1].Custom["evals/s"] *= 0.80 // 20% throughput loss
	regs, _ := compareReports(base, cur, 0.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "evals/s") {
		t.Fatalf("regressions = %v, want one evals/s entry", regs)
	}
}

func TestCompareNsAndAllocRegression(t *testing.T) {
	base := sampleReport(t)
	cur := sampleReport(t)
	cur.Benchmarks[0].NsPerOp *= 1.30 // 30% slower
	blownUp := *cur.Benchmarks[0].AllocsPerOp * 2
	cur.Benchmarks[0].AllocsPerOp = &blownUp // alloc-count blowup
	regs, _ := compareReports(base, cur, 0.15)
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want ns/op and allocs/op entries", regs)
	}
}

func TestCompareDisjointBenchmarksOnlyNote(t *testing.T) {
	base := sampleReport(t)
	cur := sampleReport(t)
	cur.Benchmarks[2].Name = "BenchmarkBrandNew"
	regs, notes := compareReports(base, cur, 0.15)
	if len(regs) != 0 {
		t.Fatalf("renamed benchmark failed the gate: %v", regs)
	}
	if len(notes) != 2 {
		t.Fatalf("notes = %v, want baseline-only + new-benchmark", notes)
	}
}
