// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON benchmark report, so CI can archive throughput numbers
// (evals/sec, ns/decode, allocs/decode) as a machine-readable artifact
// and regressions show up as diffs instead of buried log lines.
//
// Usage:
//
//	go test -run=NONE -bench 'Decode|DSE' -benchmem . | benchjson -out BENCH_2.json
//
// Non-benchmark lines are ignored, so the full `go test` output can be
// piped through unfiltered.
//
// Compare mode turns the report into a CI regression gate:
//
//	go test -run=NONE -bench 'Decode|DSE' -benchmem . |
//	    benchjson -out current.json -compare BENCH_BASELINE.json -max-regress 15%
//
// compares the freshly parsed report against the baseline and exits
// non-zero when any benchmark present in both regressed by more than
// the tolerance: ns/op or allocs/op grew, or a throughput metric
// (any `.../s` unit, e.g. evals/s) shrank. A positional argument
// (`benchjson -compare old.json new.json`) compares two existing
// report files instead of parsing stdin. Benchmarks present in only
// one report are listed but never fail the gate, so adding or
// removing benchmarks does not break CI.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present only with -benchmem.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Custom holds b.ReportMetric values, e.g. "evals/s".
	Custom map[string]float64 `json:"custom,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	compare := flag.String("compare", "", "baseline report to gate against; exits non-zero on regression")
	maxRegress := flag.String("max-regress", "10%", "regression tolerance for -compare, e.g. 15% (a bare number is also read as percent)")
	flag.Parse()

	var rep Report
	if *compare != "" && flag.NArg() == 1 {
		// Pure compare mode: the current report is an existing file.
		cur, err := readReport(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		rep = *cur
	} else {
		if flag.NArg() != 0 {
			fatal(fmt.Errorf("unexpected arguments %v (a report file argument requires -compare)", flag.Args()))
		}
		rep = parseBench(os.Stdin)
		w := os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	}

	if *compare == "" {
		return
	}
	tol, err := parseMaxRegress(*maxRegress)
	if err != nil {
		fatal(err)
	}
	base, err := readReport(*compare)
	if err != nil {
		fatal(err)
	}
	regressions, notes := compareReports(base, &rep, tol)
	for _, n := range notes {
		fmt.Fprintln(os.Stderr, "benchjson:", n)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", r)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) beyond %.1f%% vs %s\n",
			len(regressions), tol*100, *compare)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: no regressions beyond %.1f%% vs %s\n", tol*100, *compare)
}

// parseBench parses `go test -bench` output into a report.
func parseBench(r io.Reader) Report {
	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	return rep
}

// readReport loads a JSON report written by this tool.
func readReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// parseMaxRegress parses a tolerance like "15%" (or "15") into the
// fraction 0.15.
func parseMaxRegress(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad -max-regress %q (want e.g. 15%%)", s)
	}
	return v / 100, nil
}

// compareReports gates cur against base: for every benchmark name in
// both reports it checks the lower-is-better metrics (ns/op,
// allocs/op) for growth and the throughput metrics (custom units
// ending in "/s", e.g. evals/s) for shrinkage beyond tol. Benchmarks
// in only one report produce informational notes, never failures.
func compareReports(base, cur *Report, tol float64) (regressions, notes []string) {
	curByName := map[string]*Benchmark{}
	for i := range cur.Benchmarks {
		curByName[cur.Benchmarks[i].Name] = &cur.Benchmarks[i]
	}
	seen := map[string]bool{}
	for i := range base.Benchmarks {
		b := &base.Benchmarks[i]
		seen[b.Name] = true
		c, ok := curByName[b.Name]
		if !ok {
			notes = append(notes, fmt.Sprintf("%s: in baseline only (skipped)", b.Name))
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+tol) {
			regressions = append(regressions, fmt.Sprintf("%s: ns/op %.0f -> %.0f (+%.1f%%)",
				b.Name, b.NsPerOp, c.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1)))
		}
		if b.AllocsPerOp != nil && c.AllocsPerOp != nil && *b.AllocsPerOp > 0 &&
			float64(*c.AllocsPerOp) > float64(*b.AllocsPerOp)*(1+tol) {
			regressions = append(regressions, fmt.Sprintf("%s: allocs/op %d -> %d (+%.1f%%)",
				b.Name, *b.AllocsPerOp, *c.AllocsPerOp, 100*(float64(*c.AllocsPerOp)/float64(*b.AllocsPerOp)-1)))
		}
		for unit, bv := range b.Custom {
			if !strings.HasSuffix(unit, "/s") || bv <= 0 {
				continue
			}
			if cv, ok := c.Custom[unit]; ok && cv < bv*(1-tol) {
				regressions = append(regressions, fmt.Sprintf("%s: %s %.0f -> %.0f (-%.1f%%)",
					b.Name, unit, bv, cv, 100*(1-cv/bv)))
			}
		}
	}
	for name := range curByName {
		if !seen[name] {
			notes = append(notes, fmt.Sprintf("%s: new benchmark (no baseline)", name))
		}
	}
	sort.Strings(regressions)
	sort.Strings(notes)
	return regressions, notes
}

// parseLine parses one result line of the standard benchmark format,
//
//	BenchmarkName-8  100  123456 ns/op  42 B/op  7 allocs/op  987 evals/s
//
// returning ok=false for lines that do not parse (e.g. bare benchmark
// names echoed with -v).
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			v := int64(val)
			b.BytesPerOp = &v
		case "allocs/op":
			v := int64(val)
			b.AllocsPerOp = &v
		default:
			if b.Custom == nil {
				b.Custom = make(map[string]float64)
			}
			b.Custom[unit] = val
		}
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
