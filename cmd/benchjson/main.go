// Command benchjson converts `go test -bench -benchmem` output on stdin
// into a JSON benchmark report, so CI can archive throughput numbers
// (evals/sec, ns/decode, allocs/decode) as a machine-readable artifact
// and regressions show up as diffs instead of buried log lines.
//
// Usage:
//
//	go test -run=NONE -bench 'Decode|DSE' -benchmem . | benchjson -out BENCH_2.json
//
// Non-benchmark lines are ignored, so the full `go test` output can be
// piped through unfiltered.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	Name       string  `json:"name"`
	Procs      int     `json:"procs"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp/AllocsPerOp are present only with -benchmem.
	BytesPerOp  *int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64 `json:"allocs_per_op,omitempty"`
	// Custom holds b.ReportMetric values, e.g. "evals/s".
	Custom map[string]float64 `json:"custom,omitempty"`
}

// Report is the top-level JSON document.
type Report struct {
	GoOS       string      `json:"goos,omitempty"`
	GoArch     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	flag.Parse()

	rep := Report{Benchmarks: []Benchmark{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.GoOS = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.GoArch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}
}

// parseLine parses one result line of the standard benchmark format,
//
//	BenchmarkName-8  100  123456 ns/op  42 B/op  7 allocs/op  987 evals/s
//
// returning ok=false for lines that do not parse (e.g. bare benchmark
// names echoed with -v).
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Procs: 1}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if p, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Procs = p
			b.Name = b.Name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// The remainder is value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
		case "B/op":
			v := int64(val)
			b.BytesPerOp = &v
		case "allocs/op":
			v := int64(val)
			b.AllocsPerOp = &v
		default:
			if b.Custom == nil {
				b.Custom = make(map[string]float64)
			}
			b.Custom[unit] = val
		}
	}
	return b, true
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
