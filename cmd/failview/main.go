// Command failview is the workshop/failure-analysis read-out tool: it
// decodes a gateway fail-memory export (gateway.Export blob) and prints
// the stored sessions, the ECUs to replace, and per-record details.
//
// Usage:
//
//	failview -in failmem.bin        # inspect an export
//	failview -demo -out failmem.bin # generate a demo export and inspect it
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/diagnosis"
	"repro/internal/faultsim"
	"repro/internal/gateway"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/stumps"
)

func main() {
	var (
		in   = flag.String("in", "", "fail-memory export to inspect")
		out  = flag.String("out", "", "with -demo: also write the generated export here")
		demo = flag.Bool("demo", false, "generate a demo fleet export (one faulty ECU) instead of reading -in")
	)
	flag.Parse()

	var blob []byte
	switch {
	case *demo:
		b, err := buildDemo()
		if err != nil {
			fatal(err)
		}
		blob = b
		if *out != "" {
			if err := os.WriteFile(*out, blob, 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote demo export (%d bytes) to %s\n\n", len(blob), *out)
		}
	case *in != "":
		b, err := os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		blob = b
	default:
		fmt.Fprintln(os.Stderr, "failview: need -in FILE or -demo")
		os.Exit(2)
	}

	records, err := gateway.Import(blob)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fail memory: %d session record(s)\n\n", len(records))
	var rows [][]string
	var reports []diagnosis.ECUReport
	for _, r := range records {
		verdict := "pass"
		if !r.Fail.Pass() {
			verdict = "FAIL"
		}
		rows = append(rows, []string{
			r.ECU,
			fmt.Sprintf("%d", r.Session),
			fmt.Sprintf("%d", r.Fail.Windows),
			fmt.Sprintf("%d", len(r.Fail.Entries)),
			verdict,
		})
		reports = append(reports, diagnosis.ECUReport{ECU: r.ECU, Fail: r.Fail})
	}
	report.Table(os.Stdout, []string{"ecu", "session", "windows", "failing", "verdict"}, rows)

	located := diagnosis.LocateFaultyECUs(reports)
	if len(located) == 0 {
		fmt.Println("\nworkshop verdict: no unit to replace")
		return
	}
	fmt.Printf("\nworkshop verdict: replace %v\n", located)
	for _, r := range records {
		if r.Fail.Pass() {
			continue
		}
		fmt.Printf("\n%s failing windows (for failure analysis):\n", r.ECU)
		for _, e := range r.Fail.Entries {
			fmt.Printf("  window %3d: got %08x, want %08x\n", e.Window, e.Got, e.Want)
		}
	}
}

// buildDemo runs a small fleet with one injected fault and exports the
// gateway fail memory.
func buildDemo() ([]byte, error) {
	cfg := stumps.Config{Chains: 6, ChainLen: 8, Seed: 9, WindowPatterns: 16}
	const nPatterns = 128
	var collector gateway.Collector
	for i := 0; i < 4; i++ {
		cut := netlist.ScanCUT(int64(40+i), cfg.Chains, cfg.ChainLen, 4)
		session, err := stumps.NewSession(cut, cfg)
		if err != nil {
			return nil, err
		}
		fd := stumps.FailData{Windows: nPatterns / cfg.WindowPatterns}
		if i == 2 {
			fs := faultsim.NewFaultSim(cut, netlist.CollapsedFaults(cut))
			prpg, err := stumps.NewPRPG(cfg)
			if err != nil {
				return nil, err
			}
			if _, err := fs.RunCoverage(prpg, nPatterns); err != nil {
				return nil, err
			}
			dets := fs.Detections()
			if len(dets) == 0 {
				return nil, fmt.Errorf("demo CUT has no detectable fault")
			}
			fd, err = session.RunDiagnostic(nPatterns, dets[0].Fault)
			if err != nil {
				return nil, err
			}
		}
		collector.Ingest(fmt.Sprintf("ecu%02d", i+1), fd)
	}
	return collector.Export()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "failview:", err)
	os.Exit(1)
}
