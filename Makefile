# Mirrors .github/workflows/ci.yml exactly, so the pipeline is
# reproducible locally: `make ci` runs what the PR gates run.

GO ?= go

.PHONY: ci build fmt-check vet test race bench-smoke bench

ci: build fmt-check vet test race bench-smoke

build:
	$(GO) build ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrent packages: sharded fault simulation, the MOEA worker
# pool, and the explorer that drives it.
race:
	$(GO) test -race ./internal/faultsim/ ./internal/moea/ ./internal/core/

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Full benchmark sweep (not part of ci; slow).
bench:
	$(GO) test -run=NONE -bench=. ./...
