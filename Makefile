# Mirrors .github/workflows/ci.yml exactly, so the pipeline is
# reproducible locally: `make ci` runs what the PR gates run.

GO ?= go

.PHONY: ci build fmt-check vet test race bench-smoke bench bench-json \
	bench-gate island-smoke resume-smoke sigint-smoke robust-smoke shard-smoke \
	fleet-smoke obs-smoke crash-smoke

ci: build fmt-check vet test race bench-smoke resume-smoke sigint-smoke robust-smoke island-smoke shard-smoke fleet-smoke obs-smoke crash-smoke

build:
	$(GO) build ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrent packages: sharded fault simulation, the MOEA worker
# pool, the explorer that drives it, the shared decode/propagation
# state behind the pooled per-worker decoder, the fault-injection
# layer feeding the robustness objective, and the lock-free
# observability layer.
race:
	$(GO) test -race ./internal/faultsim/ ./internal/moea/ ./internal/core/ ./internal/pbsat/ ./internal/encode/ ./internal/objective/ ./internal/bistgen/ ./internal/can/ ./internal/gateway/ ./internal/shard/ ./internal/fleet/ ./internal/obs/ ./internal/durable/

# Fault-injection determinism through the CLI: a robust exploration
# (4th objective from the seeded CAN error model) must produce
# byte-identical Pareto fronts across runs and worker counts, and with
# the error model disabled the front must match the classic run byte
# for byte.
robust-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/eedse -small -evals 2000 -pop 32 -workers 4 \
		-summary -robust -error-rate 1e-5 -csv $$tmp/robust-w4.csv >/dev/null || exit 1; \
	$(GO) run ./cmd/eedse -small -evals 2000 -pop 32 -workers 2 \
		-summary -robust -error-rate 1e-5 -csv $$tmp/robust-w2.csv >/dev/null || exit 1; \
	cmp $$tmp/robust-w4.csv $$tmp/robust-w2.csv || { echo "robust front differs across worker counts" >&2; exit 1; }; \
	echo "robust-smoke: robust front byte-identical at workers 4 vs 2"; \
	$(GO) run ./cmd/eedse -small -evals 2000 -pop 32 -workers 4 \
		-summary -csv $$tmp/classic.csv >/dev/null || exit 1; \
	$(GO) run ./cmd/eedse -small -evals 2000 -pop 32 -workers 4 \
		-summary -error-rate 0 -csv $$tmp/zero.csv >/dev/null || exit 1; \
	cmp $$tmp/classic.csv $$tmp/zero.csv || { echo "-error-rate 0 front differs from classic run" >&2; exit 1; }; \
	echo "robust-smoke: -error-rate 0 front identical to classic run"

# Checkpoint/resume determinism through the CLI: a run that checkpoints
# periodically, resumed from its last on-disk snapshot, must reproduce
# the uninterrupted run's Pareto front byte for byte — for both
# optimizers and across worker counts.
resume-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	for o in nsga2 random; do \
		$(GO) run ./cmd/eedse -small -evals 2000 -pop 32 -optimizer $$o -workers 4 \
			-summary -csv $$tmp/full-$$o.csv >/dev/null || exit 1; \
		$(GO) run ./cmd/eedse -small -evals 2000 -pop 32 -optimizer $$o -workers 4 \
			-summary -csv /dev/null -checkpoint $$tmp/cp-$$o.json -checkpoint-every 20 >/dev/null || exit 1; \
		$(GO) run ./cmd/eedse -small -evals 2000 -pop 32 -optimizer $$o -workers 2 \
			-summary -csv $$tmp/resumed-$$o.csv -resume $$tmp/cp-$$o.json >/dev/null || exit 1; \
		cmp $$tmp/full-$$o.csv $$tmp/resumed-$$o.csv || { echo "resume front differs ($$o)" >&2; exit 1; }; \
		echo "resume-smoke: $$o front byte-identical after resume"; \
	done

# SIGINT survivability: interrupting a long campaign must exit 130 after
# writing a final checkpoint and the partial Pareto front.
sigint-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/eedse ./cmd/eedse || exit 1; \
	timeout --preserve-status -s INT 5 $$tmp/eedse -small -evals 100000000 -pop 32 \
		-summary -csv $$tmp/partial.csv -checkpoint $$tmp/cp.json >/dev/null 2>$$tmp/err; \
	rc=$$?; \
	[ $$rc -eq 130 ] || { echo "expected exit 130 on SIGINT, got $$rc" >&2; cat $$tmp/err >&2; exit 1; }; \
	[ -s $$tmp/cp.json ] || { echo "no checkpoint written on SIGINT" >&2; exit 1; }; \
	[ -s $$tmp/partial.csv ] || { echo "no partial front written on SIGINT" >&2; exit 1; }; \
	echo "sigint-smoke: exit 130, checkpoint + partial front written"

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Full benchmark sweep (not part of ci; slow).
bench:
	$(GO) test -run=NONE -bench=. ./...

# Machine-readable throughput report: the evaluation-pipeline benchmarks
# (decode+evaluate, DSE worker sweep, end-to-end Fig. 5 run) plus the
# fault-tolerant transfer path as JSON. CI uploads $(BENCH_OUT) as an
# artifact; locally, raise BENCHTIME for stable numbers (e.g.
# `make bench-json BENCHTIME=2s`) and override the output file with
# BENCH_OUT=my-report.json.
BENCHTIME ?= 1x
BENCH_OUT ?= BENCH_9.json
bench-json:
	$(GO) test -run=NONE -bench 'DecodeEvaluate|DSEParallel|EvalThroughput|Fig5_DSE|TransferUnderErrors|IslandEpoch|FleetIngest|FleetRecovery' \
		-benchmem -benchtime=$(BENCHTIME) . | $(GO) run ./cmd/benchjson -out $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

# Benchmark-regression gate: run the gated benchmarks (the per-candidate
# decode+evaluate hot loop and the DSE worker sweep) and compare against
# the committed baseline. Fails on >$(MAX_REGRESS) growth in ns/op or
# allocs/op, or loss in evals/s, for any benchmark present in both
# reports. allocs/op is machine-independent and gates exactly; the
# throughput gate assumes the runner class is no slower than the one
# that produced BENCH_BASELINE.json (refresh the baseline when the CI
# runner class changes: `make bench-json BENCH_OUT=BENCH_BASELINE.json
# BENCHTIME=2s`).
MAX_REGRESS ?= 15%
# The gate needs multi-iteration samples: a 1x benchtime measures the
# first iteration, which pays one-time warm-up (solver construction,
# decoder state) and reads ~2x the steady state.
GATE_BENCHTIME ?= 1s
bench-gate:
	$(GO) test -run=NONE -bench 'DecodeEvaluate$$|DSEParallel|IslandEpoch|FleetIngest' \
		-benchmem -benchtime=$(GATE_BENCHTIME) . | \
		$(GO) run ./cmd/benchjson -out bench-current.json \
			-compare BENCH_BASELINE.json -max-regress $(MAX_REGRESS)

# Island-model determinism through the CLI: for a fixed (seed, islands,
# migration) tuple the merged front must be byte-identical at any
# worker count, and -islands 1 must reproduce the classic
# single-population run exactly.
island-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) run ./cmd/eedse -small -evals 2000 -pop 32 -islands 4 -migrate-every 5 \
		-workers 4 -summary -csv $$tmp/islands-w4.csv >/dev/null || exit 1; \
	$(GO) run ./cmd/eedse -small -evals 2000 -pop 32 -islands 4 -migrate-every 5 \
		-workers 1 -summary -csv $$tmp/islands-w1.csv >/dev/null || exit 1; \
	cmp $$tmp/islands-w4.csv $$tmp/islands-w1.csv || { echo "island front differs across worker counts" >&2; exit 1; }; \
	echo "island-smoke: islands=4 front byte-identical at workers 4 vs 1"; \
	$(GO) run ./cmd/eedse -small -evals 2000 -pop 32 -islands 1 \
		-workers 2 -summary -csv $$tmp/islands-1.csv >/dev/null || exit 1; \
	$(GO) run ./cmd/eedse -small -evals 2000 -pop 32 \
		-workers 2 -summary -csv $$tmp/classic.csv >/dev/null || exit 1; \
	cmp $$tmp/islands-1.csv $$tmp/classic.csv || { echo "-islands 1 front differs from classic run" >&2; exit 1; }; \
	echo "island-smoke: -islands 1 front identical to classic run"; \
	$(GO) run ./cmd/eedse -small -evals 2000 -pop 32 -islands 3 -migrate-every 4 \
		-workers 4 -summary -csv /dev/null -checkpoint $$tmp/icp.json >/dev/null || exit 1; \
	$(GO) run ./cmd/eedse -small -evals 2000 -pop 32 -islands 3 -migrate-every 4 \
		-workers 2 -summary -csv $$tmp/resumed.csv -resume $$tmp/icp.json >/dev/null || exit 1; \
	$(GO) run ./cmd/eedse -small -evals 2000 -pop 32 -islands 3 -migrate-every 4 \
		-workers 4 -summary -csv $$tmp/ifull.csv >/dev/null || exit 1; \
	cmp $$tmp/ifull.csv $$tmp/resumed.csv || { echo "island resume front differs" >&2; exit 1; }; \
	echo "island-smoke: island campaign resumes byte-identically"

# Process-sharding determinism through the CLI: the multi-process
# orchestrator (-procs) must reproduce the in-process island front byte
# for byte at any process count, a campaign chunked with -max-epochs
# must resume — at a different process count — to the identical front,
# and killing the orchestrator mid-epoch must leave a consistent
# recovery checkpoint that one more epoch can be stepped from.
shard-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/eedse ./cmd/eedse || exit 1; \
	$$tmp/eedse -small -evals 2000 -pop 32 -islands 4 -migrate-every 5 -workers 2 \
		-summary -csv $$tmp/inproc.csv >/dev/null || exit 1; \
	$$tmp/eedse -small -evals 2000 -pop 32 -islands 4 -migrate-every 5 -workers 2 \
		-procs 1 -summary -csv $$tmp/p1.csv >/dev/null || exit 1; \
	$$tmp/eedse -small -evals 2000 -pop 32 -islands 4 -migrate-every 5 -workers 1 \
		-procs 4 -summary -csv $$tmp/p4.csv >/dev/null || exit 1; \
	cmp $$tmp/inproc.csv $$tmp/p1.csv || { echo "-procs 1 front differs from in-process run" >&2; exit 1; }; \
	cmp $$tmp/inproc.csv $$tmp/p4.csv || { echo "-procs 4 front differs from in-process run" >&2; exit 1; }; \
	echo "shard-smoke: front byte-identical in-process vs -procs 1 vs -procs 4"; \
	$$tmp/eedse -small -evals 2000 -pop 32 -islands 4 -migrate-every 5 -workers 2 \
		-procs 2 -max-epochs 3 -checkpoint $$tmp/cp.json -summary >/dev/null 2>&1 || exit 1; \
	$$tmp/eedse -small -evals 2000 -pop 32 -islands 4 -migrate-every 5 -workers 2 \
		-procs 3 -resume $$tmp/cp.json -checkpoint $$tmp/cp.json \
		-summary -csv $$tmp/resumed.csv >/dev/null || exit 1; \
	cmp $$tmp/inproc.csv $$tmp/resumed.csv || { echo "resumed sharded front differs" >&2; exit 1; }; \
	echo "shard-smoke: -max-epochs stop + resume at different -procs byte-identical"; \
	timeout --preserve-status -s INT 2 $$tmp/eedse -small -evals 100000000 -pop 32 \
		-islands 4 -migrate-every 2 -procs 2 -workers 1 \
		-checkpoint $$tmp/kcp.json -summary >/dev/null 2>&1; \
	rc=$$?; [ $$rc -eq 130 ] || [ $$rc -eq 0 ] || { echo "SIGINT orchestrator exited $$rc" >&2; exit 1; }; \
	[ -s $$tmp/kcp.json ] || { echo "no recovery checkpoint after SIGINT" >&2; exit 1; }; \
	$$tmp/eedse -small -evals 100000000 -pop 32 -islands 4 -migrate-every 2 -procs 2 -workers 1 \
		-max-epochs 1 -resume $$tmp/kcp.json -checkpoint $$tmp/kcp2.json -summary >/dev/null 2>&1 || \
		{ echo "recovery checkpoint did not resume" >&2; exit 1; }; \
	echo "shard-smoke: mid-epoch kill left a consistent, resumable recovery checkpoint"

# Fleet-service smoke through the CLI: the seeded population summary
# must be byte-identical at any shard/worker count, the live HTTP
# endpoints must serve, and SIGTERM must drain gracefully with a final
# summary on stdout.
fleet-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/fleetd ./cmd/fleetd || exit 1; \
	$$tmp/fleetd -oneshot -vehicles 60 -ecus 3 -sessions-per-ecu 2 -fail-prob 0.3 \
		-seed 5 -shards 1 -workers 1 2>/dev/null > $$tmp/sum1.json || exit 1; \
	$$tmp/fleetd -oneshot -vehicles 60 -ecus 3 -sessions-per-ecu 2 -fail-prob 0.3 \
		-seed 5 -shards 7 -workers 8 2>/dev/null > $$tmp/sum2.json || exit 1; \
	cmp $$tmp/sum1.json $$tmp/sum2.json || { echo "fleet summary differs across shard/worker counts" >&2; exit 1; }; \
	echo "fleet-smoke: seeded summary byte-identical at shards=1/workers=1 vs shards=7/workers=8"; \
	$$tmp/fleetd -addr 127.0.0.1:0 -addr-file $$tmp/addr -vehicles 200 -ecus 4 -seed 3 \
		> $$tmp/final.json 2> $$tmp/log & pid=$$!; \
	for i in $$(seq 1 50); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "fleetd never bound" >&2; cat $$tmp/log >&2; exit 1; }; \
	addr=$$(cat $$tmp/addr); \
	$$tmp/fleetd -get "http://$$addr/fleet/summary" > $$tmp/live.json || { kill $$pid; exit 1; }; \
	grep -q '"vehicles"' $$tmp/live.json || { echo "summary endpoint malformed" >&2; kill $$pid; exit 1; }; \
	$$tmp/fleetd -get "http://$$addr/fleet/failing" >/dev/null || { kill $$pid; exit 1; }; \
	$$tmp/fleetd -get "http://$$addr/debug/vars" | grep -q '"fleet"' || { echo "expvar endpoint missing fleet" >&2; kill $$pid; exit 1; }; \
	kill -TERM $$pid; wait $$pid || { echo "fleetd exited nonzero on SIGTERM" >&2; cat $$tmp/log >&2; exit 1; }; \
	grep -q '"sessions_completed"' $$tmp/final.json || { echo "no final summary on drain" >&2; exit 1; }; \
	echo "fleet-smoke: live endpoints served, SIGTERM drained with final summary"

# Crash-safety smoke through the CLI: SIGKILL fleetd (via its own
# -kill-after-commits hook) at three seeded points mid-ingest, restart
# on the same -data-dir, and require the recovered summary to be
# byte-identical to an uninterrupted oneshot run — no acked session
# lost, no unacked session double-counted.
CRASH_FLAGS = -vehicles 40 -ecus 3 -sessions-per-ecu 2 -fail-prob 0.3 -seed 5 -workers 4
crash-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/fleetd ./cmd/fleetd || exit 1; \
	$$tmp/fleetd -oneshot $(CRASH_FLAGS) 2>/dev/null > $$tmp/ref.json || exit 1; \
	for n in 15 120 235; do \
		d=$$tmp/data-$$n; \
		$$tmp/fleetd -oneshot $(CRASH_FLAGS) -data-dir $$d -kill-after-commits $$n \
			>/dev/null 2>&1; \
		rc=$$?; [ $$rc -eq 137 ] || { echo "kill at commit $$n: expected SIGKILL (137), got $$rc" >&2; exit 1; }; \
		$$tmp/fleetd -oneshot $(CRASH_FLAGS) -data-dir $$d 2> $$tmp/log-$$n > $$tmp/rec-$$n.json || \
			{ echo "restart after kill at commit $$n failed" >&2; cat $$tmp/log-$$n >&2; exit 1; }; \
		grep -q "recovered" $$tmp/log-$$n || { echo "restart did not report recovery" >&2; exit 1; }; \
		cmp $$tmp/ref.json $$tmp/rec-$$n.json || \
			{ echo "summary differs after crash at commit $$n" >&2; exit 1; }; \
		echo "crash-smoke: kill -9 at commit $$n -> recovered summary byte-identical"; \
	done

# Observability smoke through the CLI: a traced campaign must produce
# the identical front to the untraced one, both flight-recorder files
# must validate through cmd/obsdump with the expected stages and metric
# series, and the live /metrics endpoint must serve the unified
# registry (fleet ingest counters and per-stage latency histograms
# from one scrape).
obs-smoke:
	@tmp=$$(mktemp -d); trap 'rm -rf "$$tmp"' EXIT; \
	$(GO) build -o $$tmp/eedse ./cmd/eedse || exit 1; \
	$(GO) build -o $$tmp/fleetd ./cmd/fleetd || exit 1; \
	$(GO) build -o $$tmp/obsdump ./cmd/obsdump || exit 1; \
	$$tmp/eedse -small -evals 2000 -pop 32 -workers 4 -summary \
		-csv $$tmp/plain.csv >/dev/null || exit 1; \
	$$tmp/eedse -small -evals 2000 -pop 32 -workers 4 -summary \
		-csv $$tmp/traced.csv -trace-out $$tmp/dse.jsonl >/dev/null || exit 1; \
	cmp $$tmp/plain.csv $$tmp/traced.csv || { echo "-trace-out changed the Pareto front" >&2; exit 1; }; \
	$$tmp/obsdump $$tmp/dse.jsonl > $$tmp/dse.txt || { echo "obsdump rejected the campaign trace" >&2; exit 1; }; \
	for s in generation decode objective; do \
		grep -q "$$s" $$tmp/dse.txt || { echo "campaign trace missing $$s spans" >&2; cat $$tmp/dse.txt >&2; exit 1; }; \
	done; \
	$$tmp/obsdump -metrics $$tmp/dse.jsonl | grep -q '^dse_evaluations_total=' || \
		{ echo "campaign trace missing dse metric snapshots" >&2; exit 1; }; \
	echo "obs-smoke: traced campaign front identical, flight recorder validated"; \
	$$tmp/fleetd -oneshot -vehicles 40 -ecus 3 -seed 5 -trace-out $$tmp/fleet.jsonl >/dev/null 2>&1 || exit 1; \
	$$tmp/obsdump $$tmp/fleet.jsonl > $$tmp/fleet.txt || { echo "obsdump rejected the fleet trace" >&2; exit 1; }; \
	for s in chunk_accept session_assembly gateway_session; do \
		grep -q "$$s" $$tmp/fleet.txt || { echo "fleet trace missing $$s spans" >&2; cat $$tmp/fleet.txt >&2; exit 1; }; \
	done; \
	echo "obs-smoke: fleet ingest flight recorder validated"; \
	$$tmp/fleetd -addr 127.0.0.1:0 -addr-file $$tmp/addr -vehicles 50 -ecus 3 -seed 3 \
		>/dev/null 2> $$tmp/log & pid=$$!; \
	for i in $$(seq 1 50); do [ -s $$tmp/addr ] && break; sleep 0.1; done; \
	[ -s $$tmp/addr ] || { echo "fleetd never bound" >&2; cat $$tmp/log >&2; exit 1; }; \
	addr=$$(cat $$tmp/addr); \
	$$tmp/fleetd -get "http://$$addr/metrics" > $$tmp/metrics.txt || { kill $$pid; exit 1; }; \
	for s in fleet_chunks_total fleet_sessions_completed_total fleet_sessions_rejected_total \
			obs_stage_duration_seconds_bucket obs_stage_events_total; do \
		grep -q "^$$s" $$tmp/metrics.txt || { echo "/metrics missing $$s" >&2; kill $$pid; exit 1; }; \
	done; \
	kill -TERM $$pid; wait $$pid >/dev/null 2>&1 || true; \
	echo "obs-smoke: /metrics served the unified registry series"
