# Mirrors .github/workflows/ci.yml exactly, so the pipeline is
# reproducible locally: `make ci` runs what the PR gates run.

GO ?= go

.PHONY: ci build fmt-check vet test race bench-smoke bench bench-json

ci: build fmt-check vet test race bench-smoke

build:
	$(GO) build ./...

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:" >&2; echo "$$out" >&2; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The concurrent packages: sharded fault simulation, the MOEA worker
# pool, the explorer that drives it, and the shared decode/propagation
# state behind the pooled per-worker decoder.
race:
	$(GO) test -race ./internal/faultsim/ ./internal/moea/ ./internal/core/ ./internal/pbsat/ ./internal/encode/

bench-smoke:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./...

# Full benchmark sweep (not part of ci; slow).
bench:
	$(GO) test -run=NONE -bench=. ./...

# Machine-readable throughput report: the evaluation-pipeline benchmarks
# (decode+evaluate, DSE worker sweep, end-to-end Fig. 5 run) as JSON.
# CI uploads BENCH_2.json as an artifact; locally, raise BENCHTIME for
# stable numbers (e.g. `make bench-json BENCHTIME=2s`).
BENCHTIME ?= 1x
bench-json:
	$(GO) test -run=NONE -bench 'DecodeEvaluate|DSEParallel|EvalThroughput|Fig5_DSE' \
		-benchmem -benchtime=$(BENCHTIME) . | $(GO) run ./cmd/benchjson -out BENCH_2.json
	@echo "wrote BENCH_2.json"
