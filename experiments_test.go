package repro

// Experiment regression tests: each test regenerates one table/figure
// of the paper (at reduced evaluation budgets) and asserts its
// qualitative claims — who wins, by roughly what factor, where the
// crossovers fall. EXPERIMENTS.md records the paper-vs-measured
// comparison these tests enforce.

import (
	"math"
	"testing"

	"repro/internal/bistgen"
	"repro/internal/can"
	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/diagnosis"
	"repro/internal/dtc"
	"repro/internal/gateway"
	"repro/internal/moea"
	"repro/internal/netlist"
	"repro/internal/objective"
	"repro/internal/report"
	"repro/internal/stumps"
)

// runCaseStudy performs the Fig. 5 exploration at a reduced budget.
func runCaseStudy(t *testing.T, evals int, seed int64) *core.Result {
	t.Helper()
	spec, err := casestudy.Build(casestudy.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	pop := 128
	gens := evals / pop
	res, err := core.NewExplorer(spec, dec).Run(moea.Options{PopSize: pop, Generations: gens, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestExperimentFig5 regenerates the Pareto front of Fig. 5 and checks
// its structure: a substantial non-dominated set, and the paper's key
// observation that the high-quality low-cost implementations are
// exactly the ones with shut-off times above 20 s (their patterns live
// at the gateway).
func TestExperimentFig5(t *testing.T) {
	if testing.Short() {
		t.Skip("full case study exploration")
	}
	res := runCaseStudy(t, 10_000, 1)
	if len(res.Solutions) < 50 {
		t.Fatalf("Pareto set has only %d points (paper: 176)", len(res.Solutions))
	}
	fast, slow := res.SplitByShutOff(20_000)
	if len(fast) == 0 || len(slow) == 0 {
		t.Fatalf("split degenerate: %d fast, %d slow", len(fast), len(slow))
	}
	// The paper: ▲ (slow) implementations achieve high coverage with
	// only minor cost increase. Check: the cheapest solution reaching
	// ≥75 % quality is a slow (gateway-storage) one.
	cheapHigh := core.Solution{}
	found := false
	for _, s := range res.Solutions {
		if s.Objectives.TestQuality >= 0.75 {
			if !found || s.Objectives.CostTotal < cheapHigh.Objectives.CostTotal {
				cheapHigh = s
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no solution reaches 75% test quality")
	}
	if cheapHigh.Objectives.ShutOffMS <= 20_000 {
		t.Fatalf("cheapest high-quality solution is fast (%.1f s) — gateway-storage economics broken",
			cheapHigh.Objectives.ShutOffMS/1000)
	}
}

// TestExperimentHeadline checks Section IV-B's headline: a feasible
// implementation with roughly 80 % test quality for less than 3.7 %
// extra cost over the no-BIST baseline.
func TestExperimentHeadline(t *testing.T) {
	if testing.Short() {
		t.Skip("full case study exploration")
	}
	res := runCaseStudy(t, 15_000, 2)
	base := res.BaselineCost()
	if math.IsInf(base, 1) || base <= 0 {
		t.Fatalf("baseline = %v", base)
	}
	sol, ok := res.BestQualityWithin(base, 0.037)
	if !ok {
		t.Fatal("no solution within 3.7% of baseline")
	}
	if sol.Objectives.TestQuality < 0.75 {
		t.Fatalf("quality within 3.7%% budget = %.1f%%, paper reports 80.7%%",
			sol.Objectives.TestQuality*100)
	}
}

// TestExperimentFig6 regenerates the memory-split view: among the
// representative implementations, shifting diagnostic memory to the
// gateway trades shut-off time for cost.
func TestExperimentFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("full case study exploration")
	}
	res := runCaseStudy(t, 8_000, 3)
	picks := report.PickFig6(res, 7)
	if len(picks) < 4 {
		t.Fatalf("only %d representative implementations", len(picks))
	}
	// At least one implementation stores mostly at the gateway and one
	// mostly distributed; the gateway-heavy one must shut off slower.
	var maxGW, maxDist core.MemorySplit
	for _, s := range picks {
		ms := core.MemorySplitOf(s)
		if ms.GatewayBytes > maxGW.GatewayBytes {
			maxGW = ms
		}
		if ms.DistributedBytes > maxDist.DistributedBytes {
			maxDist = ms
		}
	}
	if maxGW.GatewayBytes == 0 {
		t.Skip("no gateway-storage implementation among picks (front too small)")
	}
	if maxGW.ShutOffMS <= maxDist.ShutOffMS && maxGW.GatewayBytes > maxDist.GatewayBytes {
		t.Fatalf("gateway-heavy (%d B gw, %.1f s) not slower than distributed-heavy (%d B gw, %.1f s)",
			maxGW.GatewayBytes, maxGW.ShutOffMS/1000, maxDist.GatewayBytes, maxDist.ShutOffMS/1000)
	}
}

// TestExperimentTableI regenerates the Table I characterization on the
// synthetic CUT, scales it to the paper's processor dimensions, and
// checks that the scaled data volumes land in the paper's order of
// magnitude (hundreds of kB to a few MB).
func TestExperimentTableI(t *testing.T) {
	if testing.Short() {
		t.Skip("fault simulation + ATPG")
	}
	cfg := stumps.Config{Chains: 8, ChainLen: 10, Seed: 17, WindowPatterns: 32, RestoreCycles: 200, TestClockHz: 40e6}
	cut := netlist.ScanCUT(5, cfg.Chains, cfg.ChainLen, 4)
	gen, err := bistgen.New(cut, bistgen.Options{Scan: cfg, MaxBacktracks: 150})
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := gen.Characterize([]int{64, 256, 1024}, bistgen.DefaultTargets())
	if err != nil {
		t.Fatal(err)
	}
	from := bistgen.CUTDims{ScanCells: cut.NumInputs(), ChainLen: cfg.ChainLen, Faults: gen.TotalFaults()}
	for _, p := range profiles {
		scaled := bistgen.ScaleToCUT(p, from, bistgen.PaperCUT)
		if p.DetPatterns == 0 {
			continue // random phase alone reached the target
		}
		if scaled.DataBytes < 10_000 || scaled.DataBytes > 50_000_000 {
			t.Fatalf("scaled profile %d data = %d B, outside the paper's magnitude", p.Number, scaled.DataBytes)
		}
	}
	// Table I shape: the 95% profile of the first level needs at most
	// the max profile's data, and strictly less whenever the max run
	// actually exceeds the 95% target (prefix property of the top-off).
	if profiles[3].CareBits > profiles[0].CareBits {
		t.Fatalf("95%% profile (%d care bits) above max (%d)", profiles[3].CareBits, profiles[0].CareBits)
	}
	if profiles[0].Coverage > profiles[3].Coverage && profiles[3].CareBits == profiles[0].CareBits {
		t.Fatalf("95%% target met below max coverage but with identical data (%d care bits)", profiles[0].CareBits)
	}
}

// TestExperimentE5 checks Section III-B end to end: mirroring preserves
// every third-party worst-case response time while a burst transfer of
// one profile's pattern data breaks deadlines.
func TestExperimentE5(t *testing.T) {
	bus := can.Bus{BitRate: 500_000}
	own := []can.Frame{
		{ID: "c1", Priority: 2, Payload: 8, PeriodMS: 10},
		{ID: "c2", Priority: 6, Payload: 8, PeriodMS: 20},
		{ID: "c3", Priority: 9, Payload: 8, PeriodMS: 100},
	}
	var others []can.Frame
	for i := 0; i < 10; i++ {
		others = append(others, can.Frame{
			ID: string(rune('A' + i)), Priority: 3 + 2*i, Payload: 8, PeriodMS: 5,
		})
	}
	rep, err := can.VerifyNonIntrusive(bus, own, others)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("mirroring intrusive: %+v", rep)
	}
	burst, err := can.SimulateBurst(bus, others, casestudy.TableI()[2].DataBytes, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(burst.ViolatedDeadlines) == 0 {
		t.Fatal("burst transfer violated no deadline — the intrusive baseline should fail")
	}
}

// TestExperimentE6 reproduces the Section I motivation numbers:
// functional-style tests reach structural coverage in the vicinity of
// the cited 47 % [2], while the BIST session clearly exceeds them.
func TestExperimentE6(t *testing.T) {
	if testing.Short() {
		t.Skip("fault simulation")
	}
	cfg := stumps.Config{Chains: 8, ChainLen: 10, Seed: 42, WindowPatterns: 16}
	cut := netlist.ScanCUT(100, cfg.Chains, cfg.ChainLen, 4)
	cmp, err := diagnosis.CompareFunctionalVsStructural(cut, cfg, 256, 256, 7)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.FunctionalCoverage < 0.25 || cmp.FunctionalCoverage > 0.70 {
		t.Fatalf("functional coverage = %.1f%%, expected in the vicinity of the cited 47%%",
			cmp.FunctionalCoverage*100)
	}
	if cmp.StructuralCoverage < cmp.FunctionalCoverage+0.15 {
		t.Fatalf("structural %.1f%% does not clearly beat functional %.1f%%",
			cmp.StructuralCoverage*100, cmp.FunctionalCoverage*100)
	}
}

// TestExperimentA1 is the storage-placement ablation: forcing all
// pattern data to the gateway must reduce cost and inflate shut-off
// relative to forcing local storage, over whole exploration runs.
func TestExperimentA1(t *testing.T) {
	if testing.Short() {
		t.Skip("three exploration runs")
	}
	spec, err := casestudy.Build(casestudy.Options{ProfilesPerECU: 8})
	if err != nil {
		t.Fatal(err)
	}
	run := func(choice int) *core.Result {
		dec, err := core.NewGreedyDecoder(spec)
		if err != nil {
			t.Fatal(err)
		}
		dec.StorageChoice = choice
		res, err := core.NewExplorer(spec, dec).Run(moea.Options{PopSize: 64, Generations: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	local := run(1)
	gateway := run(-1)
	// Compare the cheapest solutions reaching 70% quality.
	cheapest := func(res *core.Result) (core.Solution, bool) {
		var best core.Solution
		found := false
		for _, s := range res.Solutions {
			if s.Objectives.TestQuality >= 0.7 && (!found || s.Objectives.CostTotal < best.Objectives.CostTotal) {
				best, found = s, true
			}
		}
		return best, found
	}
	lb, lok := cheapest(local)
	gb, gok := cheapest(gateway)
	if !lok || !gok {
		t.Skipf("missing 70%%-quality solutions: local=%v gateway=%v", lok, gok)
	}
	// Hardware allocations drift between independent runs, so compare
	// the storage-driven quantities: the diagnostic memory cost (shared
	// gateway patterns are far cheaper) and the shut-off time (pattern
	// transfer over Eq. (1) is far slower).
	lmem := objective.MonetaryCosts(lb.Impl).Memory
	gmem := objective.MonetaryCosts(gb.Impl).Memory
	if gmem >= lmem {
		t.Fatalf("gateway-only memory cost (%.2f) not below local-only (%.2f) at 70%% quality", gmem, lmem)
	}
	if gb.Objectives.ShutOffMS <= lb.Objectives.ShutOffMS {
		t.Fatalf("gateway-only (%.1f s) not slower than local-only (%.1f s)",
			gb.Objectives.ShutOffMS/1000, lb.Objectives.ShutOffMS/1000)
	}
}

// TestExperimentA2 is the decoder ablation: SAT-decoding and the greedy
// decoder both deliver only feasible implementations; the SAT decoder
// honors the paper's constraint system exactly (verified through the
// independent model checker inside core tests), the greedy decoder
// trades decode fidelity for two orders of magnitude more throughput.
func TestExperimentA2(t *testing.T) {
	spec, err := casestudy.Small(3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	sat, err := core.NewSATDecoder(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := core.NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	for name, dec := range map[string]core.Decoder{"sat": sat, "greedy": greedy} {
		ex := core.NewExplorer(spec, dec)
		ex.Verify = true
		res, err := ex.Run(moea.Options{PopSize: 8, Generations: 4, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.DecodeFailures != 0 {
			t.Fatalf("%s: %d decode failures", name, res.DecodeFailures)
		}
		if len(res.Solutions) == 0 {
			t.Fatalf("%s: empty front", name)
		}
	}
}

// TestExperimentA4 compares hardware BIST against the software-based
// self-test baseline ([14], DESIGN.md A4): with equal exploration
// budgets, the SBST-only front cannot reach the BIST front's test
// quality — the motivation for the paper's BIST integration.
func TestExperimentA4(t *testing.T) {
	if testing.Short() {
		t.Skip("two exploration runs")
	}
	run := func(opts casestudy.Options) float64 {
		spec, err := casestudy.Build(opts)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := core.NewGreedyDecoder(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.NewExplorer(spec, dec).Run(moea.Options{PopSize: 64, Generations: 40, Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		maxQ := 0.0
		for _, s := range res.Solutions {
			if s.Objectives.TestQuality > maxQ {
				maxQ = s.Objectives.TestQuality
			}
		}
		return maxQ
	}
	bist := run(casestudy.Options{ProfilesPerECU: 8})
	sbst := run(casestudy.Options{ProfilesPerECU: 8, IncludeSBST: true, ExcludeBIST: true})
	if sbst <= 0 {
		t.Fatal("SBST-only exploration found no diagnosis at all")
	}
	if bist <= sbst+0.1 {
		t.Fatalf("BIST max quality %.2f does not clearly beat SBST %.2f", bist, sbst)
	}
}

// TestExperimentE7 quantifies the workshop-repair motivation of
// Section I via the DTC baseline: with structural BIST the faulty ECU
// is named directly, collapsing the ambiguity sets of functional
// diagnosis.
func TestExperimentE7(t *testing.T) {
	if testing.Short() {
		t.Skip("case study decode")
	}
	spec, err := casestudy.Build(casestudy.Options{ProfilesPerECU: 4})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := make([]float64, dec.GenotypeLen())
	for i := range g {
		g[i] = 0.9
	}
	x, err := dec.Decode(g)
	if err != nil {
		t.Fatal(err)
	}
	functional := dtc.FunctionalRepairStudy(x, 0.47)
	bist := dtc.BISTRepairStudy(x, 0.47)
	if bist.FirstTryRate < 2*functional.FirstTryRate {
		t.Fatalf("BIST first-try %.2f not 2x functional %.2f", bist.FirstTryRate, functional.FirstTryRate)
	}
	if bist.AvgFaultFreeDiscarded > functional.AvgFaultFreeDiscarded/2 {
		t.Fatalf("BIST discards %.2f, functional %.2f — reduction too small",
			bist.AvgFaultFreeDiscarded, functional.AvgFaultFreeDiscarded)
	}
}

// TestExperimentE10 is the future-architecture study the paper alludes
// to ("existing and future automotive architectures"): migrating the
// buses to CAN FD with 64-byte container PDUs multiplies the mirrored
// Eq. (1) bandwidth, so gateway-stored patterns transfer ~8x faster and
// the high-quality region of the front shifts to far lower shut-off
// times at comparable quality.
func TestExperimentE10(t *testing.T) {
	if testing.Short() {
		t.Skip("two exploration runs")
	}
	run := func(fd int) *core.Result {
		spec, err := casestudy.Build(casestudy.Options{ProfilesPerECU: 8, FDPayload: fd})
		if err != nil {
			t.Fatal(err)
		}
		dec, err := core.NewGreedyDecoder(spec)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.NewExplorer(spec, dec).Run(moea.Options{PopSize: 64, Generations: 40, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	classic := run(0)
	fd := run(64)
	// Minimum shut-off among gateway-storage (>1 s) solutions reaching
	// 80% quality.
	minShut := func(res *core.Result) float64 {
		best := math.Inf(1)
		for _, s := range res.Solutions {
			if s.Objectives.TestQuality >= 0.8 && s.Objectives.ShutOffMS > 1000 &&
				s.Objectives.ShutOffMS < best {
				best = s.Objectives.ShutOffMS
			}
		}
		return best
	}
	cs, fs := minShut(classic), minShut(fd)
	if math.IsInf(cs, 1) || math.IsInf(fs, 1) {
		t.Skipf("no gateway-storage high-quality points: classic=%v fd=%v", cs, fs)
	}
	if fs >= cs/3 {
		t.Fatalf("FD architecture shut-off %.1f s not clearly below classic %.1f s", fs/1000, cs/1000)
	}
}

// TestExperimentE12 regenerates the fault-injection study: the Eq. (1)
// transfer time degrades gracefully over the BER sweep while the
// certified schedule holds through 1e-4 and collapses at 1e-2; the
// reliable gateway session survives a lossy bus, falls back to local
// b^D storage under a harsh burst, and resumes without re-sending
// delivered chunks; and the degraded-mode DSE objective penalizes
// gateway-stored pattern data over local storage.
func TestExperimentE12(t *testing.T) {
	bus := can.Bus{Name: "can0", BitRate: 500_000}
	own := []can.Frame{
		{ID: "own0", Priority: 1, Payload: 8, PeriodMS: 10},
		{ID: "own1", Priority: 3, Payload: 8, PeriodMS: 20},
		{ID: "own2", Priority: 5, Payload: 8, PeriodMS: 50},
	}
	var others []can.Frame
	for i := 0; i < 8; i++ {
		others = append(others, can.Frame{
			ID: string(rune('m' + i)), Priority: 2 + 2*i, Payload: 8, PeriodMS: 50,
		})
	}
	const demoBytes = 994_156 // Table I profile 3

	// Sweep: transfer time is monotone in the BER, the schedule holds
	// through 1e-4, and 1e-2 drives the WCRT past the deadlines.
	prev := 0.0
	for _, ber := range []float64{0, 1e-7, 1e-6, 1e-5, 1e-4} {
		m := can.ErrorModel{BitErrorRate: ber}
		q := can.TransferTimeMSFaulty(bus, demoBytes, own, m)
		if q < prev {
			t.Fatalf("transfer time shrank at BER %g: %.1f < %.1f", ber, q, prev)
		}
		prev = q
		rep, err := can.VerifyNonIntrusiveUnderErrors(bus, own, others, m)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Holds() {
			t.Fatalf("certified schedule broken at BER %g: %+v", ber, rep)
		}
	}
	harshRep, err := can.VerifyNonIntrusiveUnderErrors(bus, own, others, can.ErrorModel{BitErrorRate: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if harshRep.Holds() || len(harshRep.DeadlineMisses) == 0 {
		t.Fatalf("BER 1e-2 should break third-party deadlines: %+v", harshRep)
	}

	// Reliable session: delivery at BER 1e-3, local fallback under a
	// harsh burst, then a resume that re-sends nothing.
	fd := stumps.FailData{Windows: 16, Entries: []stumps.FailEntry{{Window: 3, Got: 0xdead, Want: 0xbeef}}}
	var collector gateway.Collector
	scfg := gateway.SessionConfig{ChunkBytes: 32, MaxRetries: 8, BackoffMS: 1}
	res, err := collector.IngestReliable("ecu03", fd, bus, can.ErrorModel{BitErrorRate: 1e-3, Seed: 7}, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered || res.Retries == 0 {
		t.Fatalf("lossy delivery: %+v (want delivered with retries)", res)
	}
	snd, err := gateway.NewSession("ecu03", 77, fd, scfg)
	if err != nil {
		t.Fatal(err)
	}
	sink, err := gateway.NewAssembler(snd.SessionID(), snd.NumChunks())
	if err != nil {
		t.Fatal(err)
	}
	harsh := gateway.NewFaultyChannel(bus, can.ErrorModel{BitErrorRate: 2e-2, Seed: 9}, sink)
	first := snd.Run(harsh)
	if first.Delivered || !first.LocalFallback {
		t.Fatalf("harsh burst: %+v (want local fallback)", first)
	}
	clean := gateway.NewFaultyChannel(bus, can.ErrorModel{}, sink)
	second := snd.Run(clean)
	want := int(snd.NumChunks() - first.ResumeSeq)
	if !second.Delivered || second.ChunksSent != want {
		t.Fatalf("resume: %+v (want delivery in exactly %d sends)", second, want)
	}
	blob, err := sink.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := gateway.Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if rec.ECU != "ecu03" || len(rec.Fail.Entries) != 1 {
		t.Fatalf("reassembled record corrupted: %+v", rec)
	}

	// Degraded-mode objective: gateway-storage solutions carry a robust
	// score above their ideal shut-off time; purely local ones do not.
	if testing.Short() {
		t.Skip("robust exploration")
	}
	spec, err := casestudy.Small(4, 6, 7)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	ex := core.NewExplorer(spec, dec)
	ex.Robust = objective.RobustConfig{ErrorRate: 1e-5}
	front, err := ex.Run(moea.Options{PopSize: 32, Generations: 16, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sawGateway := false
	for _, s := range front.Solutions {
		if !s.Objectives.RobustOn {
			t.Fatalf("solution without robust objective: %+v", s.Objectives)
		}
		if math.IsInf(s.Objectives.ShutOffMS, 1) {
			continue
		}
		if s.Objectives.RobustMS+1e-9 < s.Objectives.ShutOffMS {
			t.Fatalf("robust score %.3f below ideal shut-off %.3f",
				s.Objectives.RobustMS, s.Objectives.ShutOffMS)
		}
		ms := core.MemorySplitOf(s)
		if ms.GatewayBytes > 0 && s.Objectives.RobustMS > s.Objectives.ShutOffMS {
			sawGateway = true
		}
	}
	if !sawGateway {
		t.Skip("front holds no gateway-storage solution to exhibit the penalty")
	}
}
