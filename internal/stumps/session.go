package stumps

import (
	"fmt"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// Config parameterizes a STUMPS BIST session.
type Config struct {
	Chains   int // number of scan chains
	ChainLen int // cells per chain (the longest chain dominates timing)

	LFSRWidth int // TPG width; default 32
	MISRWidth int // TRE width; default 32
	Seed      uint64

	// WindowPatterns is the number of patterns per diagnostic window: an
	// intermediate signature is read out (and the MISR reset) after each
	// window, following the strong-windows self-diagnosis scheme the
	// paper builds on. Default 32.
	WindowPatterns int

	// TestClockHz is the scan clock (the paper's CUT runs at 40 MHz).
	TestClockHz float64

	// RestoreCycles models the state-restore procedure after test
	// application, before the ECU can resume functional operation.
	RestoreCycles int
}

func (c Config) withDefaults() Config {
	if c.LFSRWidth == 0 {
		c.LFSRWidth = 32
	}
	if c.MISRWidth == 0 {
		c.MISRWidth = 32
	}
	if c.WindowPatterns == 0 {
		c.WindowPatterns = 32
	}
	if c.TestClockHz == 0 {
		c.TestClockHz = 40e6
	}
	return c
}

// PRPG is the pseudo-random pattern generator of the session: LFSR plus
// phase shifter expanded through the scan chains. It implements
// faultsim.PatternSource. The same Config and Seed always replay the
// same sequence.
type PRPG struct {
	lfsr      *LFSR
	ps        *PhaseShifter
	chains    int
	chainLen  int
	nInputs   int
	chainBits []bool
	generated int
}

// NewPRPG builds the pattern generator for a circuit with
// cfg.Chains*cfg.ChainLen scan cells.
func NewPRPG(cfg Config) (*PRPG, error) {
	cfg = cfg.withDefaults()
	if cfg.Chains < 1 || cfg.ChainLen < 1 {
		return nil, fmt.Errorf("stumps: need positive Chains and ChainLen")
	}
	l, err := NewMaximalLFSR(cfg.LFSRWidth, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &PRPG{
		lfsr:      l,
		ps:        NewPhaseShifter(cfg.Chains, cfg.LFSRWidth),
		chains:    cfg.Chains,
		chainLen:  cfg.ChainLen,
		nInputs:   cfg.Chains * cfg.ChainLen,
		chainBits: make([]bool, cfg.Chains),
	}, nil
}

// NumInputs returns the scan cell count the generator fills.
func (p *PRPG) NumInputs() int { return p.nInputs }

// Generated returns the number of patterns produced so far.
func (p *PRPG) Generated() int { return p.generated }

// NextPattern shifts one full pattern into the chains: scan cell
// (chain i, position s) receives the phase-shifter output of chain i at
// shift cycle s. The pattern is indexed input = chain*chainLen + pos.
func (p *PRPG) NextPattern() []bool {
	pat := make([]bool, p.nInputs)
	for s := 0; s < p.chainLen; s++ {
		p.lfsr.Step()
		p.ps.Outputs(p.lfsr.State(), p.chainBits)
		for c := 0; c < p.chains; c++ {
			pat[c*p.chainLen+s] = p.chainBits[c]
		}
	}
	p.generated++
	return pat
}

// Skip fast-forwards the generator past n patterns without expanding
// them into the chains: only the LFSR is clocked (chainLen steps per
// pattern), so skipping is cheap. Because the CUT is combinational
// full-scan, a diagnostic window depends only on the LFSR state at its
// start — Skip is what lets a transfer session resume at the window of
// a single lost chunk instead of replaying the whole test.
func (p *PRPG) Skip(n int) {
	for i := 0; i < n*p.chainLen; i++ {
		p.lfsr.Step()
	}
	if n > 0 {
		p.generated += n
	}
}

// NextBatch implements faultsim.PatternSource.
func (p *PRPG) NextBatch(n int) faultsim.Batch {
	if n > 64 {
		n = 64
	}
	if n < 1 {
		n = 1
	}
	words := make([]uint64, p.nInputs)
	for b := 0; b < n; b++ {
		pat := p.NextPattern()
		for i, v := range pat {
			if v {
				words[i] |= 1 << uint(b)
			}
		}
	}
	return faultsim.Batch{Words: words, N: n}
}

// Session runs STUMPS BIST over a full-scan circuit.
type Session struct {
	Circuit *netlist.Circuit
	Cfg     Config
}

// NewSession validates that the circuit's input count matches the scan
// configuration and returns the session.
func NewSession(c *netlist.Circuit, cfg Config) (*Session, error) {
	cfg = cfg.withDefaults()
	if got, want := c.NumInputs(), cfg.Chains*cfg.ChainLen; got != want {
		return nil, fmt.Errorf("stumps: circuit has %d inputs, scan config supplies %d", got, want)
	}
	return &Session{Circuit: c, Cfg: cfg}, nil
}

// Signatures runs nPatterns pseudo-random patterns and returns the
// per-window MISR signatures. If fault is non-nil the faulty machine is
// observed instead of the good one.
func (s *Session) Signatures(nPatterns int, fault *netlist.Fault) ([]uint64, error) {
	prpg, err := NewPRPG(s.Cfg)
	if err != nil {
		return nil, err
	}
	misr, err := NewMISR(s.Cfg.MISRWidth)
	if err != nil {
		return nil, err
	}
	good := faultsim.NewLogicSim(s.Circuit)
	var fsim *faultsim.FaultSim
	if fault != nil {
		fsim = faultsim.NewFaultSim(s.Circuit, nil)
	}
	var sigs []uint64
	done := 0
	for done < nPatterns {
		window := s.Cfg.WindowPatterns
		if rest := nPatterns - done; window > rest {
			window = rest
		}
		sig, err := s.runWindow(prpg, misr, good, fsim, fault, window)
		if err != nil {
			return nil, err
		}
		sigs = append(sigs, sig)
		done += window
	}
	return sigs, nil
}

// runWindow resets the MISR, compacts `window` patterns, and returns
// the intermediate signature.
func (s *Session) runWindow(prpg *PRPG, misr *MISR, good *faultsim.LogicSim, fsim *faultsim.FaultSim, fault *netlist.Fault, window int) (uint64, error) {
	misr.Reset()
	wdone := 0
	for wdone < window {
		n := window - wdone
		if n > 64 {
			n = 64
		}
		batch := prpg.NextBatch(n)
		if err := good.Apply(batch); err != nil {
			return 0, err
		}
		out := good.OutputWords()
		if fault != nil {
			diff, err := fsim.OutputResponse(*fault, batch)
			if err != nil {
				return 0, err
			}
			for i := range out {
				out[i] ^= diff[i]
			}
		}
		words, err := FoldWords(out, s.Cfg.MISRWidth, n)
		if err != nil {
			return 0, err
		}
		for _, w := range words {
			misr.CompactWord(w)
		}
		wdone += n
	}
	return misr.Signature(), nil
}

// SignatureWindow recomputes the intermediate signature of a single
// diagnostic window of a session with nPatterns patterns, without
// running the windows before it: the PRPG is fast-forwarded with Skip
// and the MISR starts from its per-window reset state. Valid because
// the CUT is combinational full-scan, so windows are independent given
// the LFSR state. This is the resume primitive of the reliable fail-data
// transfer: when one window's chunk is lost, only that window is
// regenerated.
func (s *Session) SignatureWindow(nPatterns, window int, fault *netlist.Fault) (uint64, error) {
	wp := s.Cfg.withDefaults().WindowPatterns
	start := window * wp
	if window < 0 || start >= nPatterns {
		return 0, fmt.Errorf("stumps: window %d outside session of %d patterns", window, nPatterns)
	}
	count := wp
	if rest := nPatterns - start; count > rest {
		count = rest
	}
	prpg, err := NewPRPG(s.Cfg)
	if err != nil {
		return 0, err
	}
	prpg.Skip(start)
	misr, err := NewMISR(s.Cfg.withDefaults().MISRWidth)
	if err != nil {
		return 0, err
	}
	good := faultsim.NewLogicSim(s.Circuit)
	var fsim *faultsim.FaultSim
	if fault != nil {
		fsim = faultsim.NewFaultSim(s.Circuit, nil)
	}
	return s.runWindow(prpg, misr, good, fsim, fault, count)
}

// FailEntry is one mismatching intermediate signature: the window index
// identifying the position in the test sequence plus the faulty
// signature observed.
type FailEntry struct {
	Window int
	Got    uint64
	Want   uint64
}

// FailData is the diagnostic payload shipped to the central gateway
// after a BIST session.
type FailData struct {
	Windows int // total windows in the session
	Entries []FailEntry
}

// Pass reports a fault-free session.
func (d FailData) Pass() bool { return len(d.Entries) == 0 }

// SizeBytes returns the transport size of the fail data: two bytes of
// window index plus the signature per entry.
func (d FailData) SizeBytes(misrWidth int) int {
	return len(d.Entries) * (2 + (misrWidth+7)/8)
}

// RunDiagnostic executes the session against an injected fault and
// returns the fail data relative to the golden signatures.
func (s *Session) RunDiagnostic(nPatterns int, fault netlist.Fault) (FailData, error) {
	golden, err := s.Signatures(nPatterns, nil)
	if err != nil {
		return FailData{}, err
	}
	faulty, err := s.Signatures(nPatterns, &fault)
	if err != nil {
		return FailData{}, err
	}
	d := FailData{Windows: len(golden)}
	for i := range golden {
		if golden[i] != faulty[i] {
			d.Entries = append(d.Entries, FailEntry{Window: i, Got: faulty[i], Want: golden[i]})
		}
	}
	return d, nil
}

// SessionCycles returns the scan clock cycles to apply nPatterns
// patterns: each pattern needs ChainLen shift cycles plus one capture
// cycle, plus the state-restore procedure at the end.
func (s *Session) SessionCycles(nPatterns int) int {
	return nPatterns*(s.Cfg.ChainLen+1) + s.Cfg.RestoreCycles
}

// SessionTimeMS returns the session runtime in milliseconds.
func (s *Session) SessionTimeMS(nPatterns int) float64 {
	return float64(s.SessionCycles(nPatterns)) / s.Cfg.TestClockHz * 1000
}

// ResponseDataBytes returns the size of the expected response data
// (golden intermediate signatures) for a session of nPatterns patterns.
func (s *Session) ResponseDataBytes(nPatterns int) int {
	windows := (nPatterns + s.Cfg.WindowPatterns - 1) / s.Cfg.WindowPatterns
	return windows * ((s.Cfg.MISRWidth + 7) / 8)
}
