package stumps

import "fmt"

// Phase enumerates the BIST controller's session states. The paper's
// Section II: "The application of a BIST session requires that a chip
// enters a special test mode ... the state of the chip has to be
// restored to a known state before the enclosing ECU can make use of
// the chip."
type Phase int

const (
	// PhaseIdle is functional operation, before or after a session.
	PhaseIdle Phase = iota
	// PhaseEnterTest isolates the chip from its functional environment.
	PhaseEnterTest
	// PhaseApply shifts and captures the patterns of one diagnostic
	// window.
	PhaseApply
	// PhaseReadSignature unloads the MISR after a window.
	PhaseReadSignature
	// PhaseRestore replays the state-restore procedure.
	PhaseRestore
	// PhaseDone terminates the session.
	PhaseDone
)

// String returns the phase mnemonic.
func (p Phase) String() string {
	switch p {
	case PhaseIdle:
		return "idle"
	case PhaseEnterTest:
		return "enter-test"
	case PhaseApply:
		return "apply"
	case PhaseReadSignature:
		return "read-signature"
	case PhaseRestore:
		return "restore"
	case PhaseDone:
		return "done"
	default:
		return fmt.Sprintf("Phase(%d)", int(p))
	}
}

// PhaseStep is one controller transition with its cycle cost.
type PhaseStep struct {
	Phase  Phase
	Window int // window index for Apply/ReadSignature, -1 otherwise
	Cycles int
}

// enterTestCycles and readSignatureCycles model the fixed controller
// overheads (mode switch and MISR unload).
const (
	enterTestCycles     = 16
	readSignatureCycles = 2
)

// Controller generates the phase trace of a session: the explicit state
// machine behind Session.SessionCycles. It exists so that timing
// claims (Eq. 5 session runtimes) trace back to an executable model
// rather than a closed-form count alone.
type Controller struct {
	Cfg Config
}

// Trace returns the full phase sequence for a session of nPatterns.
func (c Controller) Trace(nPatterns int) []PhaseStep {
	cfg := c.Cfg.withDefaults()
	steps := []PhaseStep{
		{Phase: PhaseEnterTest, Window: -1, Cycles: enterTestCycles},
	}
	done := 0
	window := 0
	for done < nPatterns {
		n := cfg.WindowPatterns
		if rest := nPatterns - done; n > rest {
			n = rest
		}
		steps = append(steps,
			PhaseStep{Phase: PhaseApply, Window: window, Cycles: n * (cfg.ChainLen + 1)},
			PhaseStep{Phase: PhaseReadSignature, Window: window, Cycles: readSignatureCycles},
		)
		done += n
		window++
	}
	steps = append(steps,
		PhaseStep{Phase: PhaseRestore, Window: -1, Cycles: cfg.RestoreCycles},
		PhaseStep{Phase: PhaseDone, Window: -1, Cycles: 0},
	)
	return steps
}

// TotalCycles sums the trace.
func (c Controller) TotalCycles(nPatterns int) int {
	total := 0
	for _, s := range c.Trace(nPatterns) {
		total += s.Cycles
	}
	return total
}

// OverheadCycles returns the controller cycles beyond the raw pattern
// application counted by Session.SessionCycles (test-mode entry plus
// per-window signature unloads).
func (c Controller) OverheadCycles(nPatterns int) int {
	cfg := c.Cfg.withDefaults()
	windows := (nPatterns + cfg.WindowPatterns - 1) / cfg.WindowPatterns
	return enterTestCycles + windows*readSignatureCycles
}
