package stumps

import (
	"testing"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

// Skip must leave the PRPG in exactly the state a full NextPattern
// replay would.
func TestPRPGSkipMatchesReplay(t *testing.T) {
	cfg := Config{Chains: 6, ChainLen: 8, Seed: 3}
	full, err := NewPRPG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 37; i++ {
		full.NextPattern()
	}
	want := full.NextPattern()

	skipped, err := NewPRPG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	skipped.Skip(37)
	if skipped.Generated() != 37 {
		t.Fatalf("Generated = %d after Skip(37)", skipped.Generated())
	}
	got := skipped.NextPattern()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pattern 38 diverges at input %d after Skip", i)
		}
	}
}

// SignatureWindow must reproduce every window of a full Signatures run
// — good machine and faulty machine — without replaying the windows
// before it. This is the resume path after a lost transfer chunk.
func TestSignatureWindowMatchesFullRun(t *testing.T) {
	c, cfg := sessionCircuit(t)
	s, err := NewSession(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	const nPatterns = 64
	// Pick a detectable fault via the fault simulator, as the diagnostic
	// tests do.
	fs := faultsim.NewFaultSim(c, netlist.CollapsedFaults(c))
	prpg, _ := NewPRPG(cfg)
	if _, err := fs.RunCoverage(prpg, nPatterns); err != nil {
		t.Fatal(err)
	}
	dets := fs.Detections()
	if len(dets) == 0 {
		t.Fatal("no detectable fault found")
	}
	fault := dets[0].Fault
	windows := 0
	for _, f := range []*netlist.Fault{nil, &fault} {
		full, err := s.Signatures(nPatterns, f)
		if err != nil {
			t.Fatal(err)
		}
		windows = len(full)
		for w := range full {
			got, err := s.SignatureWindow(nPatterns, w, f)
			if err != nil {
				t.Fatal(err)
			}
			if got != full[w] {
				t.Fatalf("fault=%v window %d: resume signature %#x != full-run %#x", f != nil, w, got, full[w])
			}
		}
	}
	if _, err := s.SignatureWindow(nPatterns, windows, nil); err == nil {
		t.Fatal("out-of-range window accepted")
	}
}
