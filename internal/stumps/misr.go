package stumps

import (
	"fmt"
	"math/bits"
)

// MISR is a multiple-input signature register: a linear compactor that
// folds one response word per scan cycle into its state. After a test
// (interval) the state is the signature.
type MISR struct {
	width int
	taps  uint64
	mask  uint64
	state uint64
}

// NewMISR returns a MISR of the given width using the built-in
// primitive polynomial.
func NewMISR(width int) (*MISR, error) {
	taps, err := PrimitiveTaps(width)
	if err != nil {
		return nil, err
	}
	mask := ^uint64(0)
	if width < 64 {
		mask = (uint64(1) << uint(width)) - 1
	}
	return &MISR{width: width, taps: taps, mask: mask}, nil
}

// Reset clears the register to the all-zero state.
func (m *MISR) Reset() { m.state = 0 }

// Width returns the register width.
func (m *MISR) Width() int { return m.width }

// Signature returns the current compacted state.
func (m *MISR) Signature() uint64 { return m.state }

// CompactWord folds one response word (already width-aligned) into the
// register: the state advances by one LFSR step and XORs the inputs in.
func (m *MISR) CompactWord(word uint64) {
	fb := uint64(bits.OnesCount64(m.state&m.taps) & 1)
	m.state = ((m.state >> 1) | (fb << uint(m.width-1))) & m.mask
	m.state ^= word & m.mask
}

// CompactBits folds an arbitrary-length response bit vector into the
// register by first XOR-folding it to the register width — the spatial
// compaction in front of the MISR.
func (m *MISR) CompactBits(resp []bool) {
	var word uint64
	for i, b := range resp {
		if b {
			word ^= 1 << uint(i%m.width)
		}
	}
	m.CompactWord(word)
}

// FoldWords XOR-folds per-output 64-pattern words into per-pattern MISR
// input words: result[p] packs the response bits of pattern p.
func FoldWords(outputs []uint64, width, nPatterns int) ([]uint64, error) {
	if width < 1 || width > 64 {
		return nil, fmt.Errorf("stumps: fold width %d outside [1,64]", width)
	}
	res := make([]uint64, nPatterns)
	for i, w := range outputs {
		pos := uint(i % width)
		for p := 0; p < nPatterns; p++ {
			res[p] ^= (w >> uint(p) & 1) << pos
		}
	}
	return res, nil
}
