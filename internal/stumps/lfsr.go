// Package stumps implements the STUMPS BIST architecture of the paper's
// Fig. 1 (Self-Testing Unit using MISR and Parallel Shift register
// sequence generator, Bardell & McAnney, ITC'82): an LFSR test pattern
// generator feeding scan chains through a phase shifter, a MISR test
// response evaluator, intermediate diagnostic signatures, and the fail
// data collection the paper's diagnosis flow relies on.
package stumps

import (
	"fmt"
	"math/bits"
)

// primitiveTaps maps register widths to Galois feedback masks derived
// from maximal-length tap tables (Xilinx XAPP052): Fibonacci taps
// [w, a, b, c] correspond to the primitive characteristic polynomial
// x^w + x^a + x^b + x^c + 1, whose Galois left-shift feedback mask sets
// bits a, b, c and 0.
var primitiveTaps = map[int]uint64{
	8:  1<<6 | 1<<5 | 1<<4 | 1,    // [8,6,5,4]
	16: 1<<15 | 1<<13 | 1<<4 | 1,  // [16,15,13,4]
	24: 1<<23 | 1<<22 | 1<<17 | 1, // [24,23,22,17]
	32: 1<<22 | 1<<2 | 1<<1 | 1,   // [32,22,2,1]
	48: 1<<47 | 1<<21 | 1<<20 | 1, // [48,47,21,20]
	64: 1<<63 | 1<<61 | 1<<60 | 1, // [64,63,61,60]
}

// PrimitiveTaps returns the maximal-length tap mask for a supported
// width (8, 16, 24, 32, 48, 64).
func PrimitiveTaps(width int) (uint64, error) {
	t, ok := primitiveTaps[width]
	if !ok {
		return 0, fmt.Errorf("stumps: no primitive polynomial for width %d", width)
	}
	return t, nil
}

// LFSR is a Galois (internal-XOR) linear feedback shift register.
type LFSR struct {
	width int
	taps  uint64
	mask  uint64
	state uint64
}

// NewLFSR returns an LFSR of the given width with the given taps and
// seed. A zero seed is mapped to 1 (the all-zero state is a fixed
// point).
func NewLFSR(width int, taps, seed uint64) (*LFSR, error) {
	if width < 2 || width > 64 {
		return nil, fmt.Errorf("stumps: LFSR width %d outside [2,64]", width)
	}
	mask := ^uint64(0)
	if width < 64 {
		mask = (uint64(1) << uint(width)) - 1
	}
	if taps&mask == 0 {
		return nil, fmt.Errorf("stumps: LFSR taps empty within width %d", width)
	}
	s := seed & mask
	if s == 0 {
		s = 1
	}
	return &LFSR{width: width, taps: taps & mask, mask: mask, state: s}, nil
}

// NewMaximalLFSR returns an LFSR with the built-in primitive polynomial
// for the width.
func NewMaximalLFSR(width int, seed uint64) (*LFSR, error) {
	taps, err := PrimitiveTaps(width)
	if err != nil {
		return nil, err
	}
	return NewLFSR(width, taps, seed)
}

// State returns the current register contents.
func (l *LFSR) State() uint64 { return l.state }

// Width returns the register width in bits.
func (l *LFSR) Width() int { return l.width }

// Step advances the register one clock in Galois (internal-XOR) form
// and returns the serial output bit (the bit shifted out at the MSB).
func (l *LFSR) Step() bool {
	out := l.state>>uint(l.width-1)&1 == 1
	l.state = (l.state << 1) & l.mask
	if out {
		l.state ^= l.taps
	}
	return out
}

// PhaseShifter spreads the LFSR state over many scan chains, breaking
// the shift correlation between neighboring chains. Chain i receives the
// parity of the state ANDed with a per-chain spread mask.
type PhaseShifter struct {
	masks []uint64
}

// NewPhaseShifter builds a phase shifter for nChains chains over an
// LFSR of the given width. The spread masks are dense pseudo-random
// constants derived from the chain index; they are deterministic so a
// session can be replayed exactly.
func NewPhaseShifter(nChains, width int) *PhaseShifter {
	mask := ^uint64(0)
	if width < 64 {
		mask = (uint64(1) << uint(width)) - 1
	}
	masks := make([]uint64, nChains)
	x := uint64(0x9E3779B97F4A7C15)
	for i := range masks {
		// splitmix64 step per chain.
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		m := z & mask
		if m == 0 {
			m = 1
		}
		masks[i] = m
	}
	return &PhaseShifter{masks: masks}
}

// Outputs returns the per-chain bits for the given LFSR state.
func (p *PhaseShifter) Outputs(state uint64, dst []bool) {
	for i, m := range p.masks {
		dst[i] = bits.OnesCount64(state&m)&1 == 1
	}
}

// NumChains returns the number of chains served.
func (p *PhaseShifter) NumChains() int { return len(p.masks) }
