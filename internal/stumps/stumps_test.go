package stumps

import (
	"testing"

	"repro/internal/faultsim"
	"repro/internal/netlist"
)

func TestLFSRMaximalPeriod(t *testing.T) {
	l, err := NewMaximalLFSR(8, 1)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	start := l.State()
	period := 0
	for {
		l.Step()
		period++
		if l.State() == start {
			break
		}
		if seen[l.State()] {
			t.Fatalf("LFSR entered a sub-cycle after %d steps", period)
		}
		seen[l.State()] = true
		if period > 1<<9 {
			t.Fatal("period exceeds 2^9, loop error")
		}
	}
	if period != 255 {
		t.Fatalf("period = %d, want 255 (maximal for width 8)", period)
	}
}

func TestLFSRZeroSeedMapped(t *testing.T) {
	l, err := NewMaximalLFSR(16, 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.State() == 0 {
		t.Fatal("zero state accepted")
	}
}

func TestLFSRValidation(t *testing.T) {
	if _, err := NewLFSR(1, 1, 1); err == nil {
		t.Fatal("width 1 accepted")
	}
	if _, err := NewLFSR(16, 0, 1); err == nil {
		t.Fatal("empty taps accepted")
	}
	if _, err := PrimitiveTaps(13); err == nil {
		t.Fatal("unsupported width accepted")
	}
}

func TestPhaseShifterDecorrelates(t *testing.T) {
	ps := NewPhaseShifter(16, 32)
	if ps.NumChains() != 16 {
		t.Fatal("chain count wrong")
	}
	l, _ := NewMaximalLFSR(32, 12345)
	// Count agreements between chain 0 and chain 1 over many cycles —
	// they must not be perfectly correlated or anti-correlated.
	agree := 0
	bitsOut := make([]bool, 16)
	const n = 2048
	for i := 0; i < n; i++ {
		l.Step()
		ps.Outputs(l.State(), bitsOut)
		if bitsOut[0] == bitsOut[1] {
			agree++
		}
	}
	if agree < n/4 || agree > 3*n/4 {
		t.Fatalf("chains 0/1 agree %d of %d — correlated phase shifter", agree, n)
	}
}

func TestMISRDistinguishesResponses(t *testing.T) {
	m, err := NewMISR(32)
	if err != nil {
		t.Fatal(err)
	}
	m.CompactBits([]bool{true, false, true})
	a := m.Signature()
	m.Reset()
	if m.Signature() != 0 {
		t.Fatal("Reset did not clear")
	}
	m.CompactBits([]bool{true, false, false})
	b := m.Signature()
	if a == b {
		t.Fatal("different responses produced equal signatures")
	}
}

func TestMISRLinearity(t *testing.T) {
	// MISR is linear: compacting x then y from reset equals compacting
	// (x, y) — and the signature of equal streams is equal.
	m1, _ := NewMISR(16)
	m2, _ := NewMISR(16)
	stream := []uint64{0xDEAD, 0xBEEF, 0x1234, 0x0, 0xFFFF}
	for _, w := range stream {
		m1.CompactWord(w)
		m2.CompactWord(w)
	}
	if m1.Signature() != m2.Signature() {
		t.Fatal("equal streams, different signatures")
	}
}

func TestFoldWords(t *testing.T) {
	// Two outputs, 3 patterns: output0 = 0b101, output1 = 0b011.
	words, err := FoldWords([]uint64{0b101, 0b011}, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Pattern 0: out0=1,out1=1 -> bits 0,1 set = 0b11.
	// Pattern 1: out0=0,out1=1 -> 0b10. Pattern 2: out0=1 -> 0b01.
	want := []uint64{0b11, 0b10, 0b01}
	for i := range want {
		if words[i] != want[i] {
			t.Fatalf("FoldWords = %b, want %b", words, want)
		}
	}
	if _, err := FoldWords(nil, 0, 1); err == nil {
		t.Fatal("bad width accepted")
	}
}

func TestPRPGDeterministic(t *testing.T) {
	cfg := Config{Chains: 4, ChainLen: 5, Seed: 99}
	a, err := NewPRPG(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewPRPG(cfg)
	for i := 0; i < 10; i++ {
		pa, pb := a.NextPattern(), b.NextPattern()
		for j := range pa {
			if pa[j] != pb[j] {
				t.Fatalf("pattern %d differs at bit %d", i, j)
			}
		}
	}
	if a.Generated() != 10 || a.NumInputs() != 20 {
		t.Fatalf("bookkeeping: generated=%d inputs=%d", a.Generated(), a.NumInputs())
	}
}

func TestPRPGBatchMatchesPatterns(t *testing.T) {
	cfg := Config{Chains: 3, ChainLen: 4, Seed: 7}
	a, _ := NewPRPG(cfg)
	b, _ := NewPRPG(cfg)
	batch := a.NextBatch(5)
	if batch.N != 5 {
		t.Fatalf("batch N = %d", batch.N)
	}
	for p := 0; p < 5; p++ {
		pat := b.NextPattern()
		for i, v := range pat {
			if (batch.Words[i]>>uint(p)&1 == 1) != v {
				t.Fatalf("batch bit (%d,%d) mismatch", p, i)
			}
		}
	}
}

func TestPRPGValidation(t *testing.T) {
	if _, err := NewPRPG(Config{Chains: 0, ChainLen: 5}); err == nil {
		t.Fatal("zero chains accepted")
	}
}

func sessionCircuit(t *testing.T) (*netlist.Circuit, Config) {
	t.Helper()
	cfg := Config{Chains: 6, ChainLen: 8, Seed: 3, WindowPatterns: 16, RestoreCycles: 100}
	c := netlist.ScanCUT(21, cfg.Chains, cfg.ChainLen, 4)
	return c, cfg
}

func TestSessionGoldenReproducible(t *testing.T) {
	c, cfg := sessionCircuit(t)
	s, err := NewSession(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Signatures(64, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := s.Signatures(64, nil)
	if len(a) != 4 {
		t.Fatalf("windows = %d, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("golden signatures not reproducible")
		}
	}
}

func TestSessionRejectsWrongShape(t *testing.T) {
	c := netlist.C17()
	if _, err := NewSession(c, Config{Chains: 10, ChainLen: 10}); err == nil {
		t.Fatal("mismatched scan config accepted")
	}
}

func TestRunDiagnosticDetectsFault(t *testing.T) {
	c, cfg := sessionCircuit(t)
	s, err := NewSession(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Find a fault that random patterns detect, using the fault
	// simulator as ground truth.
	faults := netlist.CollapsedFaults(c)
	fs := faultsim.NewFaultSim(c, faults)
	prpg, _ := NewPRPG(cfg)
	if _, err := fs.RunCoverage(prpg, 128); err != nil {
		t.Fatal(err)
	}
	dets := fs.Detections()
	if len(dets) == 0 {
		t.Fatal("no detectable fault found")
	}
	fault := dets[0].Fault

	fd, err := s.RunDiagnostic(128, fault)
	if err != nil {
		t.Fatal(err)
	}
	if fd.Pass() {
		t.Fatalf("fault %v invisible in fail data", fault)
	}
	if fd.Windows != 8 {
		t.Fatalf("windows = %d, want 8", fd.Windows)
	}
	for _, e := range fd.Entries {
		if e.Got == e.Want {
			t.Fatal("entry without difference")
		}
		if e.Window < 0 || e.Window >= fd.Windows {
			t.Fatalf("window index %d out of range", e.Window)
		}
	}
	if fd.SizeBytes(s.Cfg.MISRWidth) != len(fd.Entries)*6 {
		t.Fatalf("SizeBytes = %d with %d entries", fd.SizeBytes(s.Cfg.MISRWidth), len(fd.Entries))
	}
}

func TestFaultFreeSessionPasses(t *testing.T) {
	c, cfg := sessionCircuit(t)
	s, _ := NewSession(c, cfg)
	golden, err := s.Signatures(96, nil)
	if err != nil {
		t.Fatal(err)
	}
	again, _ := s.Signatures(96, nil)
	for i := range golden {
		if golden[i] != again[i] {
			t.Fatal("fault-free run mismatches golden")
		}
	}
}

func TestSessionTiming(t *testing.T) {
	c, cfg := sessionCircuit(t)
	cfg.TestClockHz = 40e6
	s, _ := NewSession(c, cfg)
	// 1000 patterns * (8+1) cycles + 100 restore = 9100 cycles at 40 MHz.
	if got := s.SessionCycles(1000); got != 9100 {
		t.Fatalf("cycles = %d", got)
	}
	ms := s.SessionTimeMS(1000)
	want := 9100.0 / 40e6 * 1000
	if diff := ms - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("time = %v, want %v", ms, want)
	}
	// 96 patterns in windows of 16 -> 6 windows * 4 bytes.
	if got := s.ResponseDataBytes(96); got != 24 {
		t.Fatalf("ResponseDataBytes = %d", got)
	}
}

// TestSignatureAliasingRare estimates the MISR aliasing rate: over many
// detectable faults, the share whose fail data is empty (signature
// aliasing) must be small — the property that makes signature-based
// diagnosis viable.
func TestSignatureAliasingRare(t *testing.T) {
	c, cfg := sessionCircuit(t)
	s, _ := NewSession(c, cfg)
	faults := netlist.CollapsedFaults(c)
	fs := faultsim.NewFaultSim(c, faults)
	prpg, _ := NewPRPG(cfg)
	if _, err := fs.RunCoverage(prpg, 128); err != nil {
		t.Fatal(err)
	}
	dets := fs.Detections()
	if len(dets) < 20 {
		t.Skipf("only %d detected faults", len(dets))
	}
	aliased := 0
	for _, d := range dets {
		fd, err := s.RunDiagnostic(128, d.Fault)
		if err != nil {
			t.Fatal(err)
		}
		if fd.Pass() {
			aliased++
		}
	}
	if rate := float64(aliased) / float64(len(dets)); rate > 0.05 {
		t.Fatalf("aliasing rate %.3f over %d faults", rate, len(dets))
	}
}

func TestControllerTraceConsistentWithSession(t *testing.T) {
	c, cfg := sessionCircuit(t)
	s, err := NewSession(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := Controller{Cfg: cfg}
	for _, n := range []int{1, 16, 64, 100} {
		// The explicit FSM equals the closed-form count plus its declared
		// overheads.
		want := s.SessionCycles(n) + ctrl.OverheadCycles(n)
		if got := ctrl.TotalCycles(n); got != want {
			t.Fatalf("n=%d: trace %d cycles, closed form + overhead %d", n, got, want)
		}
	}
}

func TestControllerTraceShape(t *testing.T) {
	cfg := Config{Chains: 4, ChainLen: 8, WindowPatterns: 16, RestoreCycles: 50}
	trace := Controller{Cfg: cfg}.Trace(40) // windows of 16,16,8
	if trace[0].Phase != PhaseEnterTest {
		t.Fatalf("first phase %v", trace[0].Phase)
	}
	applies, reads := 0, 0
	for i, s := range trace {
		switch s.Phase {
		case PhaseApply:
			applies++
			if trace[i+1].Phase != PhaseReadSignature || trace[i+1].Window != s.Window {
				t.Fatalf("apply %d not followed by its signature read", s.Window)
			}
		case PhaseReadSignature:
			reads++
		}
	}
	if applies != 3 || reads != 3 {
		t.Fatalf("applies=%d reads=%d, want 3 windows", applies, reads)
	}
	if trace[len(trace)-2].Phase != PhaseRestore || trace[len(trace)-1].Phase != PhaseDone {
		t.Fatalf("tail phases wrong: %v %v", trace[len(trace)-2].Phase, trace[len(trace)-1].Phase)
	}
	// The last window applies only 8 patterns.
	if trace[5].Cycles != 8*(cfg.ChainLen+1) {
		t.Fatalf("last window cycles = %d", trace[5].Cycles)
	}
	if PhaseApply.String() != "apply" || PhaseIdle.String() != "idle" {
		t.Fatal("phase strings wrong")
	}
}

// TestLFSRMaximalPeriod16 exhaustively verifies the width-16 primitive
// polynomial: period 2^16 − 1.
func TestLFSRMaximalPeriod16(t *testing.T) {
	l, err := NewMaximalLFSR(16, 1)
	if err != nil {
		t.Fatal(err)
	}
	start := l.State()
	period := 0
	for {
		l.Step()
		period++
		if l.State() == start {
			break
		}
		if period > 1<<17 {
			t.Fatal("runaway period")
		}
	}
	if period != 1<<16-1 {
		t.Fatalf("period = %d, want %d", period, 1<<16-1)
	}
}
