package can

import (
	"math"
	"testing"
	"testing/quick"
)

var testBus = Bus{Name: "bus1", BitRate: 500_000, Format: Standard}

func TestFrameBits(t *testing.T) {
	// Known worst-case sizes for the standard format (Davis et al. 2007):
	// an 8-byte frame occupies 135 bits including stuffing and IFS.
	cases := []struct {
		payload int
		format  FrameFormat
		want    int
	}{
		{0, Standard, 34 + 13 + 33/4},
		{8, Standard, 135},
		{8, Extended, 54 + 64 + 13 + (54+64-1)/4},
		{-1, Standard, 34 + 13 + 33/4}, // clamped to 0
		{9, Standard, 135},             // clamped to 8
	}
	for _, c := range cases {
		if got := FrameBits(c.payload, c.format); got != c.want {
			t.Errorf("FrameBits(%d,%v) = %d, want %d", c.payload, c.format, got, c.want)
		}
	}
}

func TestTxTimeMS(t *testing.T) {
	// 135 bits at 500 kbit/s = 0.27 ms.
	got := testBus.TxTimeMS(8)
	if math.Abs(got-0.27) > 1e-9 {
		t.Fatalf("TxTimeMS(8) = %v, want 0.27", got)
	}
	dead := Bus{BitRate: 0}
	if !math.IsInf(dead.TxTimeMS(8), 1) || !math.IsInf(dead.BitTimeMS(), 1) {
		t.Fatal("zero bitrate must yield +Inf times")
	}
}

func TestFrameValidate(t *testing.T) {
	good := Frame{ID: "m", Payload: 8, PeriodMS: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("Validate(good) = %v", err)
	}
	bad := []Frame{
		{Payload: 8, PeriodMS: 10},                        // no ID
		{ID: "m", Payload: 9, PeriodMS: 10},               // payload too big
		{ID: "m", Payload: -1, PeriodMS: 10},              // negative payload
		{ID: "m", Payload: 8},                             // no period
		{ID: "m", Payload: 8, PeriodMS: 10, JitterMS: -1}, // negative jitter
	}
	for i, f := range bad {
		if err := f.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, f)
		}
	}
}

func TestUtilization(t *testing.T) {
	frames := []Frame{
		{ID: "a", Priority: 1, Payload: 8, PeriodMS: 10},
		{ID: "b", Priority: 2, Payload: 8, PeriodMS: 10},
	}
	u := Utilization(testBus, frames)
	want := 2 * 0.27 / 10
	if math.Abs(u-want) > 1e-9 {
		t.Fatalf("Utilization = %v, want %v", u, want)
	}
}

func TestAnalyzeBusSimple(t *testing.T) {
	frames := []Frame{
		{ID: "hi", Priority: 1, Payload: 8, PeriodMS: 10},
		{ID: "lo", Priority: 2, Payload: 8, PeriodMS: 20},
	}
	rts, err := AnalyzeBus(testBus, frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(rts) != 2 || rts[0].Frame != "hi" || rts[1].Frame != "lo" {
		t.Fatalf("order = %v", rts)
	}
	// hi: blocked by lo (0.27), then its own tx: 0.54.
	if math.Abs(rts[0].WCRTms-0.54) > 1e-9 {
		t.Fatalf("WCRT(hi) = %v, want 0.54", rts[0].WCRTms)
	}
	// lo: no blocking, one hi interference + own tx: 0.54.
	if math.Abs(rts[1].WCRTms-0.54) > 1e-9 {
		t.Fatalf("WCRT(lo) = %v, want 0.54", rts[1].WCRTms)
	}
	for _, rt := range rts {
		if !rt.Schedulable {
			t.Fatalf("frame %s unschedulable: %+v", rt.Frame, rt)
		}
	}
}

func TestAnalyzeBusOverload(t *testing.T) {
	// 10 frames each needing 0.27 ms every 1 ms: utilization 2.7 — the
	// lowest-priority frames must be unschedulable.
	var frames []Frame
	for i := 0; i < 10; i++ {
		frames = append(frames, Frame{ID: string(rune('a' + i)), Priority: i, Payload: 8, PeriodMS: 1})
	}
	ok, err := Schedulable(testBus, frames)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("overloaded bus reported schedulable")
	}
}

func TestAnalyzeBusRejectsInvalid(t *testing.T) {
	if _, err := AnalyzeBus(testBus, []Frame{{ID: "x", Payload: 8}}); err == nil {
		t.Fatal("invalid frame accepted")
	}
}

func TestResponseTimesByIDDuplicate(t *testing.T) {
	frames := []Frame{
		{ID: "a", Priority: 1, Payload: 8, PeriodMS: 10},
		{ID: "a", Priority: 2, Payload: 8, PeriodMS: 10},
	}
	if _, err := ResponseTimesByID(testBus, frames); err == nil {
		t.Fatal("duplicate IDs accepted")
	}
}

func TestMirrorKeepsTiming(t *testing.T) {
	own := []Frame{
		{ID: "c1", Priority: 3, Payload: 8, PeriodMS: 10},
		{ID: "c2", Priority: 7, Payload: 4, PeriodMS: 50},
	}
	m := Mirror(own, "'")
	if len(m) != 2 {
		t.Fatalf("len = %d", len(m))
	}
	for i := range own {
		if m[i].ID == own[i].ID {
			t.Fatalf("mirror %d kept same ID %q", i, m[i].ID)
		}
		if m[i].Payload != own[i].Payload || m[i].PeriodMS != own[i].PeriodMS || m[i].Priority != own[i].Priority {
			t.Fatalf("mirror %d changed timing: %+v vs %+v", i, m[i], own[i])
		}
	}
}

func TestVerifyNonIntrusive(t *testing.T) {
	own := []Frame{
		{ID: "c1", Priority: 2, Payload: 8, PeriodMS: 10},
		{ID: "c2", Priority: 5, Payload: 8, PeriodMS: 20},
	}
	others := []Frame{
		{ID: "o1", Priority: 1, Payload: 8, PeriodMS: 10},
		{ID: "o2", Priority: 3, Payload: 8, PeriodMS: 20},
		{ID: "o3", Priority: 9, Payload: 8, PeriodMS: 100},
	}
	rep, err := VerifyNonIntrusive(testBus, own, others)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("mirroring intrusive: %+v", rep)
	}
}

// TestVerifyNonIntrusiveProperty checks over random frame sets that
// mirroring never perturbs third-party response times.
func TestVerifyNonIntrusiveProperty(t *testing.T) {
	f := func(seed uint8, nOwn, nOthers uint8) bool {
		periods := []float64{5, 10, 20, 50, 100}
		mkFrames := func(prefix string, n int, prioBase int) []Frame {
			frames := make([]Frame, n)
			for i := range frames {
				frames[i] = Frame{
					ID:       prefix + string(rune('a'+i)),
					Priority: prioBase + i*2,
					Payload:  1 + (int(seed)+i)%8,
					PeriodMS: periods[(int(seed)*7+i)%len(periods)],
				}
			}
			return frames
		}
		own := mkFrames("own", 1+int(nOwn)%4, 1)
		others := mkFrames("oth", 1+int(nOthers)%5, 2)
		rep, err := VerifyNonIntrusive(testBus, own, others)
		return err == nil && rep.OK()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTransferTimeMS(t *testing.T) {
	frames := []Frame{
		{ID: "c1", Payload: 8, PeriodMS: 10}, // 0.8 B/ms
		{ID: "c2", Payload: 4, PeriodMS: 20}, // 0.2 B/ms
	}
	// 1 MB over 1 B/ms = 1,000,000 ms.
	got := TransferTimeMS(1_000_000, frames)
	if math.Abs(got-1_000_000) > 1e-6 {
		t.Fatalf("TransferTimeMS = %v, want 1e6", got)
	}
	if !math.IsInf(TransferTimeMS(100, nil), 1) {
		t.Fatal("no bandwidth must yield +Inf")
	}
}

// TestTransferTimePaperScale sanity-checks Eq. (1) at the paper's
// magnitudes: ~2.4 MB of profile-1 pattern data over a handful of
// typical CAN messages takes tens of seconds — matching the > 20 s
// shut-off times of the gateway-storage implementations in Fig. 5.
func TestTransferTimePaperScale(t *testing.T) {
	frames := []Frame{
		{ID: "c1", Payload: 8, PeriodMS: 10},
		{ID: "c2", Payload: 8, PeriodMS: 20},
		{ID: "c3", Payload: 8, PeriodMS: 100},
	}
	q := TransferTimeMS(2_399_185, frames) // profile 1, Table I
	if q < 20_000 || q > 10_000_000 {
		t.Fatalf("q = %v ms, expected tens of seconds to minutes", q)
	}
}

func TestSimulateBurstIsIntrusive(t *testing.T) {
	others := []Frame{
		{ID: "o1", Priority: 10, Payload: 8, PeriodMS: 5},
		{ID: "o2", Priority: 20, Payload: 8, PeriodMS: 10},
	}
	// Highest-priority burst: must hurt everyone.
	rep, err := SimulateBurst(testBus, others, 1<<20, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.ViolatedDeadlines) == 0 {
		t.Fatalf("high-priority burst violated no deadlines: %+v", rep)
	}
	if rep.BurstDurationMS <= 0 {
		t.Fatal("burst duration must be positive")
	}
}

func TestSimulateBurstLowPriorityStillBlocks(t *testing.T) {
	// Even a lowest-priority burst adds non-preemptive blocking to
	// frames that previously had none.
	others := []Frame{
		{ID: "only", Priority: 1, Payload: 8, PeriodMS: 10},
	}
	rep, err := SimulateBurst(testBus, others, 1024, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DeltaWCRTms["only"] <= 0 {
		t.Fatalf("low-priority burst added no blocking: %+v", rep)
	}
}

func TestFDPayloadSize(t *testing.T) {
	cases := map[int]int{0: 0, 1: 1, 8: 8, 9: 12, 13: 16, 33: 48, 64: 64, 100: 64}
	for in, want := range cases {
		if got := FDPayloadSize(in); got != want {
			t.Errorf("FDPayloadSize(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFDBusTxTime(t *testing.T) {
	fd := FDBus{NomBitRate: 500_000, DataBitRate: 2_000_000}
	classic := testBus.TxTimeMS(8)
	// An 8-byte FD frame at 4x data rate beats the classic frame.
	if got := fd.TxTimeMS(8); got >= classic {
		t.Fatalf("FD 8B frame %.4f ms not below classic %.4f ms", got, classic)
	}
	// A 64-byte FD frame carries 8x the payload in far less than 8x the
	// classic frame time.
	if got := fd.TxTimeMS(64); got >= 8*classic {
		t.Fatalf("FD 64B frame %.4f ms not below 8 classic frames", got)
	}
	if !math.IsInf(FDBus{}.TxTimeMS(8), 1) {
		t.Fatal("zero rates must give +Inf")
	}
}

// TestStudyFDMigration: migrating the mirrored slots to 64-byte FD
// frames must cut Eq. (1) transfer times by the payload ratio.
func TestStudyFDMigration(t *testing.T) {
	frames := []Frame{
		{ID: "c1", Payload: 8, PeriodMS: 10},
		{ID: "c2", Payload: 8, PeriodMS: 20},
	}
	st := StudyFDMigration(994_156, frames, 64) // Table I profile 3
	if st.Speedup < 7.9 || st.Speedup > 8.1 {
		t.Fatalf("speedup = %.2f, want ~8", st.Speedup)
	}
	if st.FDMS >= st.ClassicMS {
		t.Fatal("FD not faster")
	}
	if st := StudyFDMigration(100, nil, 64); !math.IsInf(st.FDMS, 1) {
		t.Fatal("no slots must stay infinite")
	}
}

func TestAnalyzeBusWithJitter(t *testing.T) {
	// Release jitter on a high-priority frame inflates the interference
	// term of lower-priority frames.
	frames := []Frame{
		{ID: "hi", Priority: 1, Payload: 8, PeriodMS: 10, JitterMS: 0},
		{ID: "lo", Priority: 2, Payload: 8, PeriodMS: 30},
	}
	base, err := ResponseTimesByID(testBus, frames)
	if err != nil {
		t.Fatal(err)
	}
	frames[0].JitterMS = 9.8 // almost a full period of slack
	jittered, err := ResponseTimesByID(testBus, frames)
	if err != nil {
		t.Fatal(err)
	}
	if jittered["lo"].WCRTms <= base["lo"].WCRTms {
		t.Fatalf("jitter did not inflate lo's WCRT: %v vs %v", jittered["lo"].WCRTms, base["lo"].WCRTms)
	}
}
