package can

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"
)

func testFrames() []Frame {
	return []Frame{
		{ID: "c1", Priority: 2, Payload: 8, PeriodMS: 10},
		{ID: "c2", Priority: 5, Payload: 4, PeriodMS: 20},
		{ID: "c3", Priority: 9, Payload: 8, PeriodMS: 100},
	}
}

// A disabled error model must take the identical code path: results are
// bit-identical to the error-free analyses, not merely close.
func TestFaultyZeroRateBitIdentical(t *testing.T) {
	frames := testFrames()
	for _, data := range []int64{1, 1000, 994_156} {
		a := TransferTimeMS(data, frames)
		b := TransferTimeMSFaulty(testBus, data, frames, ErrorModel{})
		if a != b {
			t.Fatalf("data=%d: faulty path %v != ideal %v at rate 0", data, b, a)
		}
	}
	ideal, err := AnalyzeBus(testBus, frames)
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := AnalyzeBusUnderErrors(testBus, frames, ErrorModel{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ideal, faulty) {
		t.Fatalf("WCRT at rate 0 differs:\nideal  %+v\nfaulty %+v", ideal, faulty)
	}
}

// Transfer times must grow monotonically with the bit-error rate.
func TestTransferTimeFaultyMonotone(t *testing.T) {
	frames := testFrames()
	prev := 0.0
	for _, ber := range []float64{0, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3} {
		q := TransferTimeMSFaulty(testBus, 100_000, frames, ErrorModel{BitErrorRate: ber})
		if q < prev {
			t.Fatalf("transfer time shrank at BER %g: %v < %v", ber, q, prev)
		}
		prev = q
	}
	if ideal := TransferTimeMS(100_000, frames); prev <= ideal {
		t.Fatalf("transfer at BER 1e-3 (%v) not above ideal (%v)", prev, ideal)
	}
}

// The error-recovery term inflates every WCRT and eventually sinks
// deadlines; at moderate rates the set stays schedulable.
func TestAnalyzeBusUnderErrorsInflates(t *testing.T) {
	frames := testFrames()
	ideal, err := AnalyzeBus(testBus, frames)
	if err != nil {
		t.Fatal(err)
	}
	moderate, err := AnalyzeBusUnderErrors(testBus, frames, ErrorModel{BitErrorRate: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ideal {
		if moderate[i].WCRTms < ideal[i].WCRTms {
			t.Fatalf("%s: WCRT under errors %v below ideal %v", ideal[i].Frame, moderate[i].WCRTms, ideal[i].WCRTms)
		}
		if !moderate[i].Schedulable {
			t.Fatalf("%s unschedulable at BER 1e-6", moderate[i].Frame)
		}
	}
	harsh, err := AnalyzeBusUnderErrors(testBus, frames, ErrorModel{BitErrorRate: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for _, rt := range harsh {
		if !rt.Schedulable {
			misses++
		}
	}
	if misses == 0 {
		t.Fatal("BER 1e-2 (error recovery alone overloads the bus) broke no deadline")
	}
}

// Mirroring must stay non-intrusive under the error load: the swap
// keeps payloads, so the recovery term is unchanged for third parties.
func TestVerifyNonIntrusiveUnderErrors(t *testing.T) {
	own := testFrames()
	others := []Frame{
		{ID: "o1", Priority: 1, Payload: 8, PeriodMS: 10},
		{ID: "o2", Priority: 3, Payload: 8, PeriodMS: 20},
		{ID: "o3", Priority: 11, Payload: 8, PeriodMS: 100},
	}
	rep, err := VerifyNonIntrusiveUnderErrors(testBus, own, others, ErrorModel{BitErrorRate: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("mirroring intrusive under errors: %+v", rep)
	}
	if !rep.Holds() {
		t.Fatalf("deadlines broken at BER 1e-6: %v", rep.DeadlineMisses)
	}
	harsh, err := VerifyNonIntrusiveUnderErrors(testBus, own, others, ErrorModel{BitErrorRate: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	if harsh.Holds() {
		t.Fatal("BER 1e-2 reported as holding — the robustness bound lost its teeth")
	}
	if !harsh.OK() {
		t.Fatalf("error load made mirroring itself intrusive: %+v", harsh.Intrusive)
	}
}

// Identical seeds replay identical transfers; different seeds shift the
// error positions.
func TestSimulateTransferDeterministic(t *testing.T) {
	frames := testFrames()
	m := ErrorModel{BitErrorRate: 1e-3, Seed: 42}
	a := SimulateTransfer(testBus, frames, 8000, m)
	b := SimulateTransfer(testBus, frames, 8000, m)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
	if a.Errors == 0 {
		t.Fatal("BER 1e-3 over 1000+ slots produced no error")
	}
	c := SimulateTransfer(testBus, frames, 8000, ErrorModel{BitErrorRate: 1e-3, Seed: 43})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds replayed the identical error pattern")
	}
}

func TestSimulateTransferErrorFree(t *testing.T) {
	frames := testFrames()
	st := SimulateTransfer(testBus, frames, 10_000, ErrorModel{})
	if st.Errors != 0 || st.Attempts != st.Slots {
		t.Fatalf("error-free run reported errors: %+v", st)
	}
	if st.DeliveredBytes < 10_000 || math.IsInf(st.CompletionMS, 1) {
		t.Fatalf("error-free transfer incomplete: %+v", st)
	}
	if st.FinalState != ErrorActive {
		t.Fatalf("state = %v", st.FinalState)
	}
	// The slot process can't beat the fluid Eq. (1) bound by more than
	// one period's worth of rounding.
	if ideal := TransferTimeMS(10_000, frames); st.CompletionMS < ideal/2 {
		t.Fatalf("simulated completion %v implausibly below Eq.(1) %v", st.CompletionMS, ideal)
	}
}

// A harsh error rate must walk the controller through error-passive
// into bus-off, leaving the transfer incomplete — the trigger of the
// degraded-mode fallback.
func TestSimulateTransferBusOff(t *testing.T) {
	frames := testFrames()
	st := SimulateTransfer(testBus, frames, 100_000, ErrorModel{BitErrorRate: 0.02, Seed: 7})
	if !st.BusOff() {
		t.Fatalf("BER 0.02 did not reach bus-off: %+v", st)
	}
	if !math.IsInf(st.CompletionMS, 1) || st.DeliveredBytes >= 100_000 {
		t.Fatalf("bus-off transfer claims completion: %+v", st)
	}
	if st.ErrorPassiveAtMS > st.BusOffAtMS {
		t.Fatalf("error-passive (%v) after bus-off (%v)", st.ErrorPassiveAtMS, st.BusOffAtMS)
	}
	if st.PeakTEC < 256 {
		t.Fatalf("bus-off with TEC %d", st.PeakTEC)
	}
}

// Mirroring must never emit a CAN-ID already present in the functional
// set, even for adversarial ID choices that pre-contain the suffix.
func TestMirrorCollisionProperty(t *testing.T) {
	f := func(seed uint16, n uint8) bool {
		count := 1 + int(n)%6
		frames := make([]Frame, count)
		for i := range frames {
			id := "m" + string(rune('0'+(int(seed)+i)%10))
			// Adversarial: some functional IDs already carry the suffix.
			if (int(seed)+i)%3 == 0 {
				id += "'"
			}
			if (int(seed)+i)%5 == 0 {
				id += "'"
			}
			frames[i] = Frame{ID: id, Priority: 1 + i, Payload: 8, PeriodMS: 10}
		}
		mirrored := Mirror(frames, "'")
		seen := make(map[string]bool)
		for _, fr := range frames {
			seen[fr.ID] = true
		}
		for _, mfr := range mirrored {
			if seen[mfr.ID] {
				return false // collision with functional or earlier mirror
			}
			seen[mfr.ID] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestValidateFrameSet(t *testing.T) {
	ok := testFrames()
	if err := ValidateFrameSet(ok); err != nil {
		t.Fatal(err)
	}
	dup := append(ok, Frame{ID: "c1", Priority: 12, Payload: 8, PeriodMS: 10})
	if err := ValidateFrameSet(dup); err == nil {
		t.Fatal("duplicate ID accepted")
	}
	if _, err := AnalyzeBus(testBus, dup); err == nil {
		t.Fatal("AnalyzeBus accepted duplicate IDs")
	}
}

func TestErrorCountersConfinement(t *testing.T) {
	var c ErrorCounters
	if c.State() != ErrorActive {
		t.Fatalf("fresh controller not error-active: %v", c.State())
	}
	for i := 0; i < 16; i++ {
		c.OnTxError()
	}
	if c.TEC != 128 || c.State() != ErrorPassive {
		t.Fatalf("TEC=%d state=%v, want 128/error-passive", c.TEC, c.State())
	}
	for i := 0; i < 16; i++ {
		c.OnTxError()
	}
	if c.State() != BusOff {
		t.Fatalf("TEC=%d state=%v, want bus-off", c.TEC, c.State())
	}
	c = ErrorCounters{TEC: 1}
	c.OnTxSuccess()
	c.OnTxSuccess() // must floor at 0
	if c.TEC != 0 {
		t.Fatalf("TEC = %d after flooring", c.TEC)
	}
}
