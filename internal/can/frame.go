// Package can models the Controller Area Network field bus used as the
// test access mechanism (TAM) of the paper: frame timing with worst-case
// bit stuffing, fixed-priority non-preemptive response-time analysis,
// utilization, and the non-intrusive message mirroring of Section III-B
// including the test-data transfer time of Eq. (1).
package can

import (
	"fmt"
	"math"
)

// FrameFormat selects the CAN identifier format.
type FrameFormat int

const (
	// Standard is the 11-bit identifier base frame format.
	Standard FrameFormat = iota
	// Extended is the 29-bit identifier extended frame format.
	Extended
)

// MaxPayload is the maximum payload of a classic CAN frame in bytes.
const MaxPayload = 8

// FrameBits returns the worst-case number of bits on the wire for a
// frame with n payload bytes, including the inter-frame space and the
// maximum number of stuff bits (Davis, Burns, Bril, Lukkien, "Controller
// Area Network (CAN) schedulability analysis", RTS 2007).
//
// For the standard format the exposed-to-stuffing portion is g = 34
// control bits plus the 8n data bits; 13 further bits (CRC delimiter,
// ACK, EOF, intermission) are never stuffed.
func FrameBits(payload int, format FrameFormat) int {
	if payload < 0 {
		payload = 0
	}
	if payload > MaxPayload {
		payload = MaxPayload
	}
	g := 34
	if format == Extended {
		g = 54
	}
	stuffable := g + 8*payload
	return stuffable + 13 + (stuffable-1)/4
}

// Bus describes one CAN segment.
type Bus struct {
	Name    string
	BitRate float64 // bit/s
	Format  FrameFormat
}

// TxTimeMS returns the worst-case transmission time of a frame with the
// given payload on this bus, in milliseconds.
func (b Bus) TxTimeMS(payload int) float64 {
	if b.BitRate <= 0 {
		return math.Inf(1)
	}
	return float64(FrameBits(payload, b.Format)) / b.BitRate * 1000
}

// BitTimeMS returns the duration of a single bit in milliseconds.
func (b Bus) BitTimeMS() float64 {
	if b.BitRate <= 0 {
		return math.Inf(1)
	}
	return 1000 / b.BitRate
}

// Frame is one periodic message on a bus. Frames are scheduled by fixed
// priority, non-preemptively; a lower Priority value wins arbitration.
type Frame struct {
	ID       string
	Priority int
	Payload  int     // bytes, ≤ MaxPayload per frame
	PeriodMS float64 // activation period
	JitterMS float64 // release jitter
}

// Validate reports parameter errors of the frame.
func (f Frame) Validate() error {
	if f.ID == "" {
		return fmt.Errorf("can: frame must have an ID")
	}
	if f.Payload < 0 || f.Payload > MaxPayload {
		return fmt.Errorf("can: frame %s: payload %d outside [0,%d]", f.ID, f.Payload, MaxPayload)
	}
	if f.PeriodMS <= 0 {
		return fmt.Errorf("can: frame %s: period must be positive", f.ID)
	}
	if f.JitterMS < 0 {
		return fmt.Errorf("can: frame %s: negative jitter", f.ID)
	}
	return nil
}

// ValidateFrameSet checks every frame of one bus and rejects duplicate
// CAN-IDs: two nodes sending the same identifier can win arbitration
// simultaneously, which neither real CAN nor the response-time analysis
// admits. This is the per-bus companion of the per-frame Validate.
func ValidateFrameSet(frames []Frame) error {
	seen := make(map[string]bool, len(frames))
	for _, f := range frames {
		if err := f.Validate(); err != nil {
			return err
		}
		if seen[f.ID] {
			return fmt.Errorf("can: duplicate frame ID %q on one bus", f.ID)
		}
		seen[f.ID] = true
	}
	return nil
}

// BandwidthBytesPerMS returns the long-run payload bandwidth s(c)/p(c)
// of the frame in bytes per millisecond.
func (f Frame) BandwidthBytesPerMS() float64 {
	if f.PeriodMS <= 0 {
		return 0
	}
	return float64(f.Payload) / f.PeriodMS
}

// Utilization returns the bus utilization of the frame set: the sum of
// worst-case transmission times divided by periods.
func Utilization(bus Bus, frames []Frame) float64 {
	u := 0.0
	for _, f := range frames {
		u += bus.TxTimeMS(f.Payload) / f.PeriodMS
	}
	return u
}
