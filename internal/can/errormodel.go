package can

import "math"

// The paper evaluates the non-intrusive transfer of Section III-B on an
// ideal, error-free bus. Real CAN links suffer bit errors; ISO 11898
// reacts with an error frame (17–31 bits of recovery overhead),
// automatic retransmission, and the error-confinement state machine
// driven by the transmit/receive error counters (TEC/REC):
//
//	error-active  —TEC≥128∨REC≥128→  error-passive  —TEC>255→  bus-off
//
// ErrorModel describes one such deterministic error process. The error
// positions are drawn from a seeded stream (ErrorStream), so every
// simulation is byte-identical run-to-run and independent of worker
// count — the same discipline as the rest of the repository.

// ControllerState is the ISO 11898 error-confinement state of a CAN
// controller.
type ControllerState int

const (
	// ErrorActive is the normal state: errors are signalled with active
	// (dominant) error flags.
	ErrorActive ControllerState = iota
	// ErrorPassive is entered at TEC ≥ 128 or REC ≥ 128: the node may
	// still transmit but signals errors recessively and must respect the
	// suspend-transmission time. The degraded-mode policy of the gateway
	// falls back to local b^D storage here.
	ErrorPassive
	// BusOff is entered at TEC > 255: the node is disconnected from the
	// bus and the transfer cannot complete.
	BusOff
)

// String returns the conventional name of the state.
func (s ControllerState) String() string {
	switch s {
	case ErrorActive:
		return "error-active"
	case ErrorPassive:
		return "error-passive"
	case BusOff:
		return "bus-off"
	}
	return "unknown"
}

// Error-confinement thresholds of ISO 11898-1.
const (
	errorPassiveTEC = 128
	busOffTEC       = 256
)

// ErrorCounters is the TEC/REC pair of one controller with the ISO
// 11898 counting rules for a transmitting node: +8 per transmit error,
// −1 per successful transmission (floored at 0).
type ErrorCounters struct {
	TEC int
	REC int
}

// OnTxError applies the transmit-error increment.
func (c *ErrorCounters) OnTxError() { c.TEC += 8 }

// OnTxSuccess applies the successful-transmission decrement.
func (c *ErrorCounters) OnTxSuccess() {
	if c.TEC > 0 {
		c.TEC--
	}
}

// State returns the error-confinement state implied by the counters.
func (c ErrorCounters) State() ControllerState {
	switch {
	case c.TEC >= busOffTEC:
		return BusOff
	case c.TEC >= errorPassiveTEC || c.REC >= errorPassiveTEC:
		return ErrorPassive
	}
	return ErrorActive
}

// Error-frame overhead bounds of ISO 11898: 6-bit error flag, up to 6
// echoed flag bits, 8-bit delimiter and 3-bit intermission — 17 bits
// minimum, 31 bits worst case.
const (
	MinErrorFrameBits = 17
	MaxErrorFrameBits = 31
)

// ErrorModel is a deterministic, seeded CAN error process: every
// transmitted bit is corrupted independently with probability
// BitErrorRate, each corruption costs an error frame plus the automatic
// retransmission of the victim frame.
type ErrorModel struct {
	// BitErrorRate is the independent per-bit corruption probability
	// (typical automotive links: 1e-7 … 1e-4). 0 disables the model:
	// every fault-aware function then takes the identical code path as
	// its error-free counterpart.
	BitErrorRate float64
	// Seed selects the deterministic error stream for simulation.
	Seed uint64
	// ErrorFrameBits is the recovery overhead per error occurrence
	// (default MaxErrorFrameBits; clamped to [17,31]).
	ErrorFrameBits int
}

// Enabled reports whether the model injects any errors.
func (m ErrorModel) Enabled() bool { return m.BitErrorRate > 0 }

// errorFrameBits returns the configured per-error overhead with the
// default and the ISO bounds applied.
func (m ErrorModel) errorFrameBits() int {
	switch {
	case m.ErrorFrameBits == 0:
		return MaxErrorFrameBits
	case m.ErrorFrameBits < MinErrorFrameBits:
		return MinErrorFrameBits
	case m.ErrorFrameBits > MaxErrorFrameBits:
		return MaxErrorFrameBits
	}
	return m.ErrorFrameBits
}

// FrameErrorProb returns the probability that a frame of the given
// wire length is corrupted: 1 − (1−BER)^bits.
func (m ErrorModel) FrameErrorProb(bits int) float64 {
	if m.BitErrorRate <= 0 || bits <= 0 {
		return 0
	}
	if m.BitErrorRate >= 1 {
		return 1
	}
	return 1 - math.Pow(1-m.BitErrorRate, float64(bits))
}

// MeanErrorGapMS returns the mean time between bit errors on the bus in
// milliseconds — the sporadic error inter-arrival the fault-aware
// response-time analysis charges (cf. Tindell/Burns' error-recovery
// term). +Inf when the model is disabled.
func (m ErrorModel) MeanErrorGapMS(bus Bus) float64 {
	if m.BitErrorRate <= 0 || bus.BitRate <= 0 {
		return math.Inf(1)
	}
	return 1000 / (m.BitErrorRate * bus.BitRate)
}

// ErrorStream is the deterministic random source of the error process:
// splitmix64, whose whole state is one word, so simulations replay
// exactly from a seed.
type ErrorStream struct {
	x uint64
}

// NewErrorStream returns a stream for the given seed.
func NewErrorStream(seed uint64) *ErrorStream { return &ErrorStream{x: seed} }

// Uint64 returns the next raw 64-bit draw.
func (s *ErrorStream) Uint64() uint64 {
	s.x += 0x9e3779b97f4a7c15
	z := s.x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns the next draw in [0,1).
func (s *ErrorStream) Float64() float64 {
	return float64(s.Uint64()>>11) / (1 << 53)
}
