package can

import (
	"fmt"
	"math"
)

// Mirror implements the non-intrusive test access mechanism of Section
// III-B: while an ECU's functional tasks are shut off, its functional
// messages c_i fall silent, and the freed bandwidth slots are reused by
// test-data messages c'_i that mirror the communication properties of
// the originals — same payload size, period, and relative priority —
// under fresh, distinguishable CAN-IDs.
//
// Because c'_i is timing-indistinguishable from c_i for every other bus
// subscriber, the certified bus schedule is retained unchanged.
//
// Mirrored IDs must be fresh: a c'_i colliding with a functional CAN-ID
// would let two nodes win arbitration simultaneously. When f.ID+suffix
// already names a functional frame (or an earlier mirror), the suffix
// is repeated until the ID is unique within functional ∪ mirrored. An
// empty suffix defaults to "'".
func Mirror(functional []Frame, suffix string) []Frame {
	if suffix == "" {
		suffix = "'"
	}
	used := make(map[string]bool, 2*len(functional))
	for _, f := range functional {
		used[f.ID] = true
	}
	out := make([]Frame, len(functional))
	for i, f := range functional {
		m := f
		id := f.ID + suffix
		for used[id] {
			id += suffix
		}
		used[id] = true
		m.ID = id
		out[i] = m
	}
	return out
}

// TransferTimeMS evaluates Eq. (1) of the paper: the time q(b^T) needed
// to ship s(b^D) bytes of encoded test patterns from the BIST data task
// to the CUT, given that the transfer may only reuse the bandwidth of
// the ECU's own (now silent) functional messages I:
//
//	q(b_r^T) = s(b_r^D) / Σ_{c ∈ I} s(c)/p(c)
//
// dataBytes is s(b^D); frames are the ECU's functional message set I.
// The result is in milliseconds. With zero mirrored bandwidth the
// transfer never completes and +Inf is returned.
func TransferTimeMS(dataBytes int64, frames []Frame) float64 {
	bw := 0.0 // bytes per millisecond
	for _, f := range frames {
		bw += f.BandwidthBytesPerMS()
	}
	if bw <= 0 {
		return math.Inf(1)
	}
	return float64(dataBytes) / bw
}

// NonIntrusiveReport compares the worst-case response times of all
// third-party frames on a bus before and after swapping one ECU's
// functional messages for their mirrored test-data twins.
type NonIntrusiveReport struct {
	// MaxDeltaMS is the largest absolute WCRT change observed on any
	// frame not owned by the ECU under test. Non-intrusiveness demands
	// zero.
	MaxDeltaMS float64
	// Intrusive lists third-party frame IDs whose WCRT changed.
	Intrusive []string
}

// OK reports whether the mirror swap left every third-party response
// time untouched.
func (r NonIntrusiveReport) OK() bool { return len(r.Intrusive) == 0 }

// VerifyNonIntrusive checks the central claim of Section III-B on a
// concrete bus: replacing the functional frames `own` of the ECU under
// test by Mirror(own) must not change the worst-case response time of
// any other frame in `others`. It returns the comparison report.
func VerifyNonIntrusive(bus Bus, own, others []Frame) (NonIntrusiveReport, error) {
	before, err := ResponseTimesByID(bus, append(append([]Frame(nil), own...), others...))
	if err != nil {
		return NonIntrusiveReport{}, fmt.Errorf("can: baseline analysis: %w", err)
	}
	mirrored := Mirror(own, "'")
	after, err := ResponseTimesByID(bus, append(append([]Frame(nil), mirrored...), others...))
	if err != nil {
		return NonIntrusiveReport{}, fmt.Errorf("can: mirrored analysis: %w", err)
	}
	var rep NonIntrusiveReport
	for _, f := range others {
		b, a := before[f.ID], after[f.ID]
		d := math.Abs(a.WCRTms - b.WCRTms)
		if d > 0 {
			rep.Intrusive = append(rep.Intrusive, f.ID)
			if d > rep.MaxDeltaMS {
				rep.MaxDeltaMS = d
			}
		}
	}
	return rep, nil
}

// BurstReport quantifies the damage of the naive alternative to
// mirroring: transmitting the test patterns as a dedicated lowest- or
// highest-priority burst stream while the functional messages of the
// other ECUs keep running.
type BurstReport struct {
	// DeltaWCRTms maps third-party frame IDs to the WCRT increase caused
	// by the burst frame.
	DeltaWCRTms map[string]float64
	// ViolatedDeadlines lists third-party frames pushed past their
	// period.
	ViolatedDeadlines []string
	// BurstDurationMS is how long the burst needs to ship dataBytes.
	BurstDurationMS float64
}

// SimulateBurst models shipping dataBytes over the bus as a back-to-back
// stream of 8-byte frames at the given priority and reports the effect
// on the other ECUs' frames. It is the intrusive baseline to compare
// Mirror against (DESIGN.md experiment E5).
func SimulateBurst(bus Bus, others []Frame, dataBytes int64, priority int) (BurstReport, error) {
	before, err := ResponseTimesByID(bus, others)
	if err != nil {
		return BurstReport{}, err
	}
	nFrames := (dataBytes + MaxPayload - 1) / MaxPayload
	txOne := bus.TxTimeMS(MaxPayload)
	// A back-to-back stream is modeled as a frame whose period equals its
	// own transmission time: the bus sees a new burst frame the moment
	// the previous one completes.
	burst := Frame{ID: "burst", Priority: priority, Payload: MaxPayload, PeriodMS: txOne}
	after, err := ResponseTimesByID(bus, append(append([]Frame(nil), others...), burst))
	if err != nil {
		return BurstReport{}, err
	}
	rep := BurstReport{
		DeltaWCRTms:     make(map[string]float64, len(others)),
		BurstDurationMS: float64(nFrames) * txOne,
	}
	for _, f := range others {
		d := after[f.ID].WCRTms - before[f.ID].WCRTms
		rep.DeltaWCRTms[f.ID] = d
		if before[f.ID].Schedulable && !after[f.ID].Schedulable {
			rep.ViolatedDeadlines = append(rep.ViolatedDeadlines, f.ID)
		}
	}
	return rep, nil
}
