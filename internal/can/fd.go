package can

import "math"

// CAN FD support: flexible data-rate frames carry up to 64 payload
// bytes and switch to a faster bit rate for the data phase. Migrating
// an E/E-architecture's buses to CAN FD is the natural follow-up to the
// paper's CAN-based TAM: the mirrored slots carry 8× the payload, and
// Eq. (1)'s transfer times shrink accordingly.

// FDBus describes a CAN FD segment: arbitration (nominal) bit rate and
// the switched data-phase bit rate.
type FDBus struct {
	Name        string
	NomBitRate  float64 // bit/s during arbitration and control
	DataBitRate float64 // bit/s during the data phase (≥ NomBitRate)
}

// fdDLCSteps are the valid CAN FD payload sizes in bytes.
var fdDLCSteps = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64}

// FDPayloadSize rounds a payload up to the next valid CAN FD DLC step
// (values above 64 clamp to 64).
func FDPayloadSize(bytes int) int {
	for _, s := range fdDLCSteps {
		if bytes <= s {
			return s
		}
	}
	return 64
}

// TxTimeMS returns the worst-case transmission time of an FD frame
// with the given payload: the arbitration/control portion (~30 bits
// with stuffing) at the nominal rate plus data, CRC and stuff bits at
// the data rate (CRC 17/21 bits for ≤16/>16 payload bytes).
func (b FDBus) TxTimeMS(payload int) float64 {
	if b.NomBitRate <= 0 || b.DataBitRate <= 0 {
		return math.Inf(1)
	}
	payload = FDPayloadSize(payload)
	// Arbitration + control + ACK/EOF at nominal rate, incl. worst-case
	// stuffing of the stuffable ~27 bits.
	nomBits := 30 + (27-1)/4 + 10
	crc := 17
	if payload > 16 {
		crc = 21
	}
	dataBits := 8*payload + crc
	dataBits += (dataBits - 1) / 4 // worst-case stuffing (fixed stuff bits in real FD)
	return float64(nomBits)/b.NomBitRate*1000 + float64(dataBits)/b.DataBitRate*1000
}

// FDMigrationStudy compares the Eq. (1) transfer time of a pattern
// volume over classic CAN mirrored slots versus the same slots migrated
// to CAN FD (same periods, payloads grown to the FD step factor).
type FDMigrationStudy struct {
	ClassicMS float64
	FDMS      float64
	Speedup   float64
}

// StudyFDMigration evaluates the future-work scenario: every mirrored
// functional message keeps its period but carries fdPayload bytes
// (default 64) instead of its classic payload.
func StudyFDMigration(dataBytes int64, frames []Frame, fdPayload int) FDMigrationStudy {
	if fdPayload <= 0 {
		fdPayload = 64
	}
	fdPayload = FDPayloadSize(fdPayload)
	classic := TransferTimeMS(dataBytes, frames)
	fd := make([]Frame, len(frames))
	for i, f := range frames {
		fd[i] = f
		fd[i].Payload = fdPayload
	}
	// TransferTimeMS only uses payload/period, so the same fluid model
	// applies; FD frames just carry more per slot.
	fdTime := transferTimeAnyPayload(dataBytes, fd)
	st := FDMigrationStudy{ClassicMS: classic, FDMS: fdTime}
	if fdTime > 0 && !math.IsInf(fdTime, 1) {
		st.Speedup = classic / fdTime
	}
	return st
}

// transferTimeAnyPayload is TransferTimeMS without the classic-CAN
// 8-byte clamp implied by Frame validation (FD payloads reach 64).
func transferTimeAnyPayload(dataBytes int64, frames []Frame) float64 {
	bw := 0.0
	for _, f := range frames {
		if f.PeriodMS > 0 {
			bw += float64(f.Payload) / f.PeriodMS
		}
	}
	if bw <= 0 {
		return math.Inf(1)
	}
	return float64(dataBytes) / bw
}
