package can

import (
	"math"
	"sort"
)

// This file extends the ideal-bus analyses of mirror.go and rta.go with
// the ErrorModel: Eq. (1) transfer times inflated by retransmission
// load, worst-case response times charged with the sporadic
// error-recovery term, the non-intrusiveness verdict under errors, and
// a deterministic slot-level simulation of a mirrored transfer
// including the TEC-driven error-confinement transitions.
//
// Every function takes the identical code path as its error-free
// counterpart when the model is disabled (BitErrorRate == 0), so
// results at rate 0 are bit-identical to TransferTimeMS / AnalyzeBus.

// TransferTimeMSFaulty evaluates Eq. (1) under the error model: a
// mirrored slot whose frame is corrupted delivers nothing (the
// automatic retransmission consumes the following slot), so the
// effective bandwidth of message c shrinks to (s(c)/p(c))·(1−P_err(c))
// with P_err(c) the frame error probability at the wire length of the
// segmented slot:
//
//	q_err(b_r^T) = s(b_r^D) / Σ_{c ∈ I} s(c)/p(c) · (1−P_err(c))
//
// With a disabled model this is exactly TransferTimeMS.
func TransferTimeMSFaulty(bus Bus, dataBytes int64, frames []Frame, m ErrorModel) float64 {
	if !m.Enabled() {
		return TransferTimeMS(dataBytes, frames)
	}
	bw := 0.0 // effective bytes per millisecond
	for _, f := range frames {
		bw += f.BandwidthBytesPerMS() * (1 - m.FrameErrorProb(slotWireBits(bus, f)))
	}
	if bw <= 0 {
		return math.Inf(1)
	}
	return float64(dataBytes) / bw
}

// slotWireBits returns the worst-case wire length of one mirrored slot
// of the frame: long payloads are segmented into MaxPayload frames, and
// the per-slot exposure to bit errors is one such frame.
func slotWireBits(bus Bus, f Frame) int {
	payload := f.Payload
	if payload > MaxPayload {
		payload = MaxPayload
	}
	return FrameBits(payload, bus.Format)
}

// AnalyzeBusUnderErrors performs the AnalyzeBus response-time analysis
// with the sporadic error-recovery term of Tindell & Burns: errors
// arrive with a minimum inter-arrival equal to the model's mean error
// gap, and each costs an error frame plus the retransmission of the
// longest frame of the set:
//
//	E(t) = ⌈t / T_err⌉ · (errorFrameBits·τ_bit + max_k C_k)
//
// added to every busy-period and response-time recurrence. With a
// disabled model the result is bit-identical to AnalyzeBus.
func AnalyzeBusUnderErrors(bus Bus, frames []Frame, m ErrorModel) ([]ResponseTime, error) {
	if !m.Enabled() {
		return AnalyzeBus(bus, frames)
	}
	gap := m.MeanErrorGapMS(bus)
	if math.IsInf(gap, 1) {
		return AnalyzeBus(bus, frames)
	}
	cMax := 0.0
	for _, f := range frames {
		if c := bus.TxTimeMS(f.Payload); c > cMax {
			cMax = c
		}
	}
	cErr := float64(m.errorFrameBits())*bus.BitTimeMS() + cMax
	return analyzeBus(bus, frames, func(t float64) float64 {
		if t <= 0 {
			return 0
		}
		return math.Ceil(t/gap) * cErr
	})
}

// ErrorRobustReport is the verdict of VerifyNonIntrusiveUnderErrors:
// whether mirroring stays non-intrusive when the bus carries the
// configured error load, and which third-party deadlines the
// retransmission load breaks either way.
type ErrorRobustReport struct {
	NonIntrusiveReport
	// DeadlineMisses lists third-party frames whose WCRT exceeds their
	// period under the error load with the mirrored set active. These
	// frames miss independent of mirroring — the error load alone sinks
	// them — but they bound the error rate up to which the certified
	// schedule holds.
	DeadlineMisses []string
}

// Holds reports whether mirroring stays non-intrusive AND every
// third-party deadline survives the error load.
func (r ErrorRobustReport) Holds() bool {
	return r.OK() && len(r.DeadlineMisses) == 0
}

// VerifyNonIntrusiveUnderErrors re-checks the Section III-B claim on a
// faulty bus: swapping the functional frames `own` for Mirror(own) must
// not change any third-party worst-case response time computed under
// the error model, and the third-party deadlines must still hold at the
// given error rate. With a disabled model this reduces to
// VerifyNonIntrusive plus a schedulability check.
func VerifyNonIntrusiveUnderErrors(bus Bus, own, others []Frame, m ErrorModel) (ErrorRobustReport, error) {
	before, err := AnalyzeBusUnderErrors(bus, append(append([]Frame(nil), own...), others...), m)
	if err != nil {
		return ErrorRobustReport{}, err
	}
	mirrored := Mirror(own, "'")
	after, err := AnalyzeBusUnderErrors(bus, append(append([]Frame(nil), mirrored...), others...), m)
	if err != nil {
		return ErrorRobustReport{}, err
	}
	byID := func(rts []ResponseTime) map[string]ResponseTime {
		out := make(map[string]ResponseTime, len(rts))
		for _, rt := range rts {
			out[rt.Frame] = rt
		}
		return out
	}
	b, a := byID(before), byID(after)
	var rep ErrorRobustReport
	for _, f := range others {
		d := math.Abs(a[f.ID].WCRTms - b[f.ID].WCRTms)
		if d > 0 {
			rep.Intrusive = append(rep.Intrusive, f.ID)
			if d > rep.MaxDeltaMS {
				rep.MaxDeltaMS = d
			}
		}
		if !a[f.ID].Schedulable {
			rep.DeadlineMisses = append(rep.DeadlineMisses, f.ID)
		}
	}
	sort.Strings(rep.DeadlineMisses)
	return rep, nil
}

// TransferStats is the outcome of one simulated mirrored transfer under
// the error model.
type TransferStats struct {
	// CompletionMS is when the last byte was delivered; +Inf when the
	// transfer cannot complete (no bandwidth, or bus-off struck first).
	CompletionMS float64
	// DeliveredBytes counts payload bytes that arrived intact.
	DeliveredBytes int64
	// Slots counts mirrored slot activations used; Attempts counts frame
	// transmissions including automatic retransmissions; Errors counts
	// corrupted transmissions (= retransmissions triggered).
	Slots    int
	Attempts int
	Errors   int
	// PeakTEC is the highest transmit error counter value reached.
	PeakTEC int
	// FinalState is the controller's error-confinement state at the end.
	FinalState ControllerState
	// ErrorPassiveAtMS is when the controller first went error-passive
	// (+Inf if never) — the trigger of the gateway's degraded-mode
	// fallback to local storage. BusOffAtMS likewise for bus-off.
	ErrorPassiveAtMS float64
	BusOffAtMS       float64
}

// BusOff reports whether the transfer died in bus-off.
func (s TransferStats) BusOff() bool { return s.FinalState == BusOff }

// SimulateTransfer replays a mirrored transfer of dataBytes over the
// (now silent) functional slots of `frames` under the error model: slot
// activations follow each frame's period, every transmission is
// corrupted with the frame's wire-length error probability drawn from
// the model's seeded stream, corrupted frames cost an error frame and
// are retransmitted immediately, and the TEC walks the ISO 11898
// error-confinement states. The simulation is deterministic: the same
// model seed replays the identical error pattern.
func SimulateTransfer(bus Bus, frames []Frame, dataBytes int64, m ErrorModel) TransferStats {
	st := TransferStats{
		CompletionMS:     math.Inf(1),
		ErrorPassiveAtMS: math.Inf(1),
		BusOffAtMS:       math.Inf(1),
	}
	type slotSrc struct {
		f       Frame
		payload int
		pErr    float64
		txMS    float64
		next    float64 // next activation time
	}
	var srcs []slotSrc
	for _, f := range frames {
		if f.Payload <= 0 || f.PeriodMS <= 0 {
			continue
		}
		payload := f.Payload
		if payload > MaxPayload {
			payload = MaxPayload
		}
		srcs = append(srcs, slotSrc{
			f:       f,
			payload: payload,
			pErr:    m.FrameErrorProb(slotWireBits(bus, f)),
			txMS:    bus.TxTimeMS(payload),
			next:    f.PeriodMS, // first mirrored slot after one period
		})
	}
	if len(srcs) == 0 || dataBytes <= 0 || bus.BitRate <= 0 {
		if dataBytes <= 0 {
			st.CompletionMS = 0
		}
		return st
	}
	// Deterministic slot order: earliest activation first, ties broken by
	// priority then ID.
	sort.Slice(srcs, func(i, j int) bool {
		if srcs[i].f.Priority != srcs[j].f.Priority {
			return srcs[i].f.Priority < srcs[j].f.Priority
		}
		return srcs[i].f.ID < srcs[j].f.ID
	})
	stream := NewErrorStream(m.Seed)
	var ctr ErrorCounters
	errFrameMS := float64(m.errorFrameBits()) * bus.BitTimeMS()
	now := 0.0
	for st.DeliveredBytes < dataBytes {
		// Pick the earliest pending slot (first in slice order on ties).
		best := 0
		for i := 1; i < len(srcs); i++ {
			if srcs[i].next < srcs[best].next {
				best = i
			}
		}
		s := &srcs[best]
		if s.next > now {
			now = s.next
		}
		s.next += s.f.PeriodMS
		st.Slots++
		// Transmit with automatic retransmission until success or bus-off.
		for {
			st.Attempts++
			now += s.txMS
			if m.Enabled() && stream.Float64() < s.pErr {
				st.Errors++
				ctr.OnTxError()
				now += errFrameMS
				if ctr.TEC > st.PeakTEC {
					st.PeakTEC = ctr.TEC
				}
				if ctr.State() == ErrorPassive && math.IsInf(st.ErrorPassiveAtMS, 1) {
					st.ErrorPassiveAtMS = now
				}
				if ctr.State() == BusOff {
					st.BusOffAtMS = now
					st.FinalState = BusOff
					return st
				}
				continue
			}
			ctr.OnTxSuccess()
			break
		}
		st.DeliveredBytes += int64(s.payload)
	}
	st.CompletionMS = now
	st.FinalState = ctr.State()
	return st
}
