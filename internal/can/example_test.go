package can_test

import (
	"fmt"

	"repro/internal/can"
)

// The Eq. (1) transfer time of the paper: shipping profile 4's 455,061
// bytes of encoded test data over the mirrored bandwidth of two typical
// functional messages.
func ExampleTransferTimeMS() {
	frames := []can.Frame{
		{ID: "c1", Priority: 1, Payload: 8, PeriodMS: 10},
		{ID: "c2", Priority: 2, Payload: 8, PeriodMS: 20},
	}
	q := can.TransferTimeMS(455_061, frames)
	fmt.Printf("q = %.1f s\n", q/1000)
	// Output: q = 379.2 s
}

// Mirroring keeps every third-party worst-case response time untouched.
func ExampleVerifyNonIntrusive() {
	bus := can.Bus{BitRate: 500_000}
	own := []can.Frame{{ID: "c1", Priority: 2, Payload: 8, PeriodMS: 10}}
	others := []can.Frame{{ID: "o1", Priority: 1, Payload: 8, PeriodMS: 10}}
	rep, err := can.VerifyNonIntrusive(bus, own, others)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("non-intrusive:", rep.OK())
	// Output: non-intrusive: true
}
