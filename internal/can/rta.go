package can

import (
	"fmt"
	"math"
	"sort"
)

// ResponseTime holds the worst-case response-time analysis result of one
// frame.
type ResponseTime struct {
	Frame       string
	WCRTms      float64 // worst-case response time
	BlockingMS  float64 // blocking by at most one lower-priority frame
	Schedulable bool    // WCRT ≤ period (implicit deadline)
}

// AnalyzeBus performs the exact fixed-priority non-preemptive
// response-time analysis for CAN (Davis, Burns, Bril, Lukkien, RTS
// 2007) including multi-instance priority-level busy periods, so the
// bound is valid even when a frame's response time exceeds its period:
//
//	t_m        = B_m + Σ_{k ∈ hep(m)} ⌈(t_m + J_k) / T_k⌉ · C_k   (busy period)
//	Q_m        = ⌈(t_m + J_m) / T_m⌉                              (instances)
//	w_m(q)     = B_m + q·C_m + Σ_{k ∈ hp(m)} ⌈(w_m(q) + J_k + τ_bit)/T_k⌉·C_k
//	R_m        = max_q ( J_m + w_m(q) − q·T_m + C_m )
//
// The returned slice is ordered by descending priority (ascending
// Priority value, ties broken by ID). Frames whose busy period does not
// converge (level utilization ≥ 1) report an infinite WCRT and are
// unschedulable.
func AnalyzeBus(bus Bus, frames []Frame) ([]ResponseTime, error) {
	return analyzeBus(bus, frames, nil)
}

// analyzeBus is the shared busy-period analysis. errOverhead, when
// non-nil, returns the error-recovery time charged to a window of
// length t (the Tindell/Burns error term of AnalyzeBusUnderErrors); a
// nil errOverhead leaves every recurrence arithmetically untouched, so
// AnalyzeBus results stay bit-identical to the pre-fault-model code.
func analyzeBus(bus Bus, frames []Frame, errOverhead func(t float64) float64) ([]ResponseTime, error) {
	if err := ValidateFrameSet(frames); err != nil {
		return nil, err
	}
	sorted := append([]Frame(nil), frames...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Priority != sorted[j].Priority {
			return sorted[i].Priority < sorted[j].Priority
		}
		return sorted[i].ID < sorted[j].ID
	})
	tauBit := bus.BitTimeMS()
	out := make([]ResponseTime, 0, len(sorted))
	for i, f := range sorted {
		c := bus.TxTimeMS(f.Payload)
		// Blocking: longest lower-priority frame already in arbitration.
		blocking := 0.0
		for _, lp := range sorted[i+1:] {
			if t := bus.TxTimeMS(lp.Payload); t > blocking {
				blocking = t
			}
		}
		// Level-m busy period over hp(m) ∪ {m}.
		busyLimit := 1000 * f.PeriodMS
		busy := blocking + c
		busyConverged := false
		for iter := 0; iter < 100000; iter++ {
			next := blocking
			for k := 0; k <= i; k++ {
				next += math.Ceil((busy+sorted[k].JitterMS)/sorted[k].PeriodMS) * bus.TxTimeMS(sorted[k].Payload)
			}
			if errOverhead != nil {
				next += errOverhead(busy)
			}
			if next == busy {
				busyConverged = true
				break
			}
			busy = next
			if busy > busyLimit {
				break
			}
		}
		if !busyConverged {
			out = append(out, ResponseTime{
				Frame: f.ID, WCRTms: math.Inf(1), BlockingMS: blocking, Schedulable: false,
			})
			continue
		}
		instances := int(math.Ceil((busy + f.JitterMS) / f.PeriodMS))
		if instances < 1 {
			instances = 1
		}
		worst := 0.0
		ok := true
		for q := 0; q < instances; q++ {
			w := blocking + float64(q)*c
			converged := false
			for iter := 0; iter < 100000; iter++ {
				next := blocking + float64(q)*c
				for _, hp := range sorted[:i] {
					next += math.Ceil((w+hp.JitterMS+tauBit)/hp.PeriodMS) * bus.TxTimeMS(hp.Payload)
				}
				if errOverhead != nil {
					next += errOverhead(w + c)
				}
				if next == w {
					converged = true
					break
				}
				w = next
				if w > busyLimit {
					break
				}
			}
			if !converged {
				ok = false
				break
			}
			r := f.JitterMS + w - float64(q)*f.PeriodMS + c
			if r > worst {
				worst = r
			}
		}
		if !ok {
			out = append(out, ResponseTime{
				Frame: f.ID, WCRTms: math.Inf(1), BlockingMS: blocking, Schedulable: false,
			})
			continue
		}
		out = append(out, ResponseTime{
			Frame:       f.ID,
			WCRTms:      worst,
			BlockingMS:  blocking,
			Schedulable: worst <= f.PeriodMS,
		})
	}
	return out, nil
}

// Schedulable reports whether every frame of the set meets its implicit
// deadline under worst-case arbitration.
func Schedulable(bus Bus, frames []Frame) (bool, error) {
	rts, err := AnalyzeBus(bus, frames)
	if err != nil {
		return false, err
	}
	for _, rt := range rts {
		if !rt.Schedulable {
			return false, nil
		}
	}
	return true, nil
}

// ResponseTimesByID returns the analysis results keyed by frame ID.
func ResponseTimesByID(bus Bus, frames []Frame) (map[string]ResponseTime, error) {
	rts, err := AnalyzeBus(bus, frames)
	if err != nil {
		return nil, err
	}
	m := make(map[string]ResponseTime, len(rts))
	for _, rt := range rts {
		if _, dup := m[rt.Frame]; dup {
			return nil, fmt.Errorf("can: duplicate frame ID %q", rt.Frame)
		}
		m[rt.Frame] = rt
	}
	return m, nil
}
