package dtc

import (
	"math"
	"testing"

	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/model"
)

// fixture decodes the full case study with every ECU tested (gene 0.9)
// or untested (gene 0).
func fixture(t *testing.T, withBIST bool) *model.Implementation {
	t.Helper()
	spec, err := casestudy.Build(casestudy.Options{ProfilesPerECU: 4})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := make([]float64, dec.GenotypeLen())
	if withBIST {
		for i := range g {
			g[i] = 0.9
		}
	}
	x, err := dec.Decode(g)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestDeriveCodesOnePerApplication(t *testing.T) {
	x := fixture(t, false)
	codes := DeriveCodes(x)
	// The case study has four applications.
	if len(codes) != 4 {
		t.Fatalf("codes = %d, want 4", len(codes))
	}
	seen := make(map[string]bool)
	for _, c := range codes {
		if seen[c.Code] {
			t.Fatalf("duplicate code %s", c.Code)
		}
		seen[c.Code] = true
		if len(c.Suspects) < 2 {
			t.Fatalf("code %s has trivial ambiguity set %v", c.Code, c.Suspects)
		}
		for _, s := range c.Suspects {
			if x.Spec.Arch.Resource(s).Kind != model.KindECU {
				t.Fatalf("suspect %s is not an ECU", s)
			}
		}
	}
}

func TestTriggeredByAndCandidates(t *testing.T) {
	x := fixture(t, false)
	codes := DeriveCodes(x)
	// Pick an ECU from the first code's suspects.
	e := codes[0].Suspects[0]
	triggered := TriggeredBy(codes, e)
	if len(triggered) == 0 {
		t.Fatalf("fault in %s triggers nothing", e)
	}
	cands := Candidates(codes, triggered)
	found := false
	for _, c := range cands {
		if c == e {
			found = true
		}
	}
	if !found {
		t.Fatalf("faulty ECU %s not among candidates %v", e, cands)
	}
	if got := Candidates(codes, nil); got != nil {
		t.Fatalf("no symptoms produced candidates %v", got)
	}
}

func TestCandidatesIntersectionShrinks(t *testing.T) {
	codes := []TroubleCode{
		{Code: "A", Suspects: []model.ResourceID{"e1", "e2", "e3"}},
		{Code: "B", Suspects: []model.ResourceID{"e2", "e3", "e4"}},
	}
	got := Candidates(codes, []string{"A", "B"})
	if len(got) != 2 || got[0] != "e2" || got[1] != "e3" {
		t.Fatalf("intersection = %v", got)
	}
	// Contradictory symptoms fall back to the union.
	codes[1].Suspects = []model.ResourceID{"e9"}
	got = Candidates(codes, []string{"A", "B"})
	if len(got) != 4 {
		t.Fatalf("union fallback = %v", got)
	}
}

func TestFunctionalRepairStudy(t *testing.T) {
	x := fixture(t, false)
	stats := FunctionalRepairStudy(x, 0.47)
	if stats.Trials == 0 {
		t.Fatal("no trials")
	}
	// Functional diagnosis points at whole applications: several
	// candidates on average, fault-free units regularly discarded.
	if stats.AvgCandidates < 2 {
		t.Fatalf("AvgCandidates = %v, ambiguity too small to be realistic", stats.AvgCandidates)
	}
	if stats.AvgFaultFreeDiscarded <= 0 {
		t.Fatalf("AvgFaultFreeDiscarded = %v", stats.AvgFaultFreeDiscarded)
	}
	if stats.FirstTryRate > 0.5 {
		t.Fatalf("FirstTryRate = %v, functional diagnosis too precise", stats.FirstTryRate)
	}
	// With 47% detection, over half the hardware faults raise no DTC.
	if stats.UndetectedRate < 0.4 {
		t.Fatalf("UndetectedRate = %v", stats.UndetectedRate)
	}
}

// TestBISTBeatsFunctionalRepair quantifies the paper's workshop-repair
// claim: structural BIST identifies the faulty ECU directly, slashing
// discarded fault-free units and the no-trouble-found rate.
func TestBISTBeatsFunctionalRepair(t *testing.T) {
	x := fixture(t, true)
	functional := FunctionalRepairStudy(x, 0.47)
	bist := BISTRepairStudy(x, 0.47)
	if bist.Trials != functional.Trials {
		t.Fatalf("trial mismatch: %d vs %d", bist.Trials, functional.Trials)
	}
	if bist.FirstTryRate <= functional.FirstTryRate*1.5 {
		t.Fatalf("BIST first-try %v not clearly above functional %v", bist.FirstTryRate, functional.FirstTryRate)
	}
	if bist.AvgFaultFreeDiscarded >= functional.AvgFaultFreeDiscarded {
		t.Fatalf("BIST discards %v ≥ functional %v", bist.AvgFaultFreeDiscarded, functional.AvgFaultFreeDiscarded)
	}
	if bist.UndetectedRate >= functional.UndetectedRate {
		t.Fatalf("BIST undetected %v ≥ functional %v", bist.UndetectedRate, functional.UndetectedRate)
	}
	// With ~85% shares and >95% profile coverage, first-try repair
	// should approach the Eq. (4)-style average.
	if bist.FirstTryRate < 0.6 {
		t.Fatalf("BIST first-try rate = %v", bist.FirstTryRate)
	}
}

// TestBISTWithoutSelectionEqualsFunctional: an implementation without
// any BIST degenerates to the functional baseline.
func TestBISTWithoutSelectionEqualsFunctional(t *testing.T) {
	x := fixture(t, false)
	functional := FunctionalRepairStudy(x, 0.47)
	bist := BISTRepairStudy(x, 0.47)
	if math.Abs(bist.FirstTryRate-functional.FirstTryRate) > 1e-9 {
		t.Fatalf("first-try rates differ without BIST: %v vs %v", bist.FirstTryRate, functional.FirstTryRate)
	}
	if math.Abs(bist.AvgFaultFreeDiscarded-functional.AvgFaultFreeDiscarded) > 1e-9 {
		t.Fatalf("discard rates differ without BIST: %v vs %v", bist.AvgFaultFreeDiscarded, functional.AvgFaultFreeDiscarded)
	}
}

func TestNormalizeEmptyStats(t *testing.T) {
	var s RepairStats
	if got := s.normalize(); got.Trials != 0 || got.AvgCandidates != 0 {
		t.Fatalf("normalize(empty) = %+v", got)
	}
}
