package dtc

import (
	"sort"

	"repro/internal/model"
)

// RepairStats aggregates a workshop-repair study over every possible
// faulty ECU of an implementation.
type RepairStats struct {
	// Trials is the number of faulty-ECU scenarios evaluated.
	Trials int
	// AvgCandidates is the mean ambiguity-set size presented to the
	// workshop.
	AvgCandidates float64
	// AvgFaultFreeDiscarded is the expected number of fault-free units
	// replaced per repair (replace-until-clear over a uniformly random
	// candidate order).
	AvgFaultFreeDiscarded float64
	// FirstTryRate is the probability the first replaced unit is the
	// faulty one.
	FirstTryRate float64
	// UndetectedRate is the fraction of scenarios in which no symptom
	// is raised at all ("no trouble found" at system level).
	UndetectedRate float64
}

// FunctionalRepairStudy evaluates the DTC baseline: for each ECU
// hosting functional tasks, the triggered codes are intersected into a
// candidate set; functional tests detect the underlying hardware fault
// only with probability funcCoverage (the paper cites ~47 % structural
// coverage [2]).
//
// Expected values under replace-until-clear with uniformly random
// order over k candidates containing the faulty unit: candidates
// replaced before the faulty one = (k−1)/2, first-try rate = 1/k.
func FunctionalRepairStudy(x *model.Implementation, funcCoverage float64) RepairStats {
	codes := DeriveCodes(x)
	var stats RepairStats
	for _, e := range ecusWithFunctionalTasks(x) {
		stats.Trials++
		triggered := TriggeredBy(codes, e)
		cands := Candidates(codes, triggered)
		k := len(cands)
		if k == 0 {
			stats.UndetectedRate++
			continue
		}
		// The symptom only appears if a functional test exercises the
		// fault.
		stats.UndetectedRate += 1 - funcCoverage
		stats.AvgCandidates += float64(k)
		stats.AvgFaultFreeDiscarded += funcCoverage * float64(k-1) / 2
		stats.FirstTryRate += funcCoverage / float64(k)
	}
	return stats.normalize()
}

// BISTRepairStudy evaluates the paper's structural alternative: the
// fail data of the selected BIST session names the faulty ECU directly
// with probability c(b^T); otherwise the workshop falls back to the
// functional candidate set.
func BISTRepairStudy(x *model.Implementation, funcCoverage float64) RepairStats {
	codes := DeriveCodes(x)
	selected := x.SelectedBIST()
	var stats RepairStats
	for _, e := range ecusWithFunctionalTasks(x) {
		stats.Trials++
		cov := 0.0
		if bT, ok := selected[e]; ok {
			cov = bT.Coverage
		}
		triggered := TriggeredBy(codes, e)
		cands := Candidates(codes, triggered)
		k := len(cands)

		// BIST hit: exactly one unit replaced.
		stats.AvgCandidates += cov*1 + (1-cov)*float64(k)
		stats.FirstTryRate += cov
		if k > 0 {
			stats.AvgFaultFreeDiscarded += (1 - cov) * funcCoverage * float64(k-1) / 2
			stats.FirstTryRate += (1 - cov) * funcCoverage / float64(k)
			stats.UndetectedRate += (1 - cov) * (1 - funcCoverage)
		} else {
			stats.UndetectedRate += 1 - cov
		}
	}
	return stats.normalize()
}

func (s RepairStats) normalize() RepairStats {
	if s.Trials == 0 {
		return s
	}
	n := float64(s.Trials)
	s.AvgCandidates /= n
	s.AvgFaultFreeDiscarded /= n
	s.FirstTryRate /= n
	s.UndetectedRate /= n
	return s
}

func ecusWithFunctionalTasks(x *model.Implementation) []model.ResourceID {
	set := make(map[model.ResourceID]bool)
	for tid, r := range x.Binding {
		t := x.Spec.App.Task(tid)
		if t == nil || t.Kind != model.KindFunctional {
			continue
		}
		if res := x.Spec.Arch.Resource(r); res != nil && res.Kind == model.KindECU {
			set[r] = true
		}
	}
	out := make([]model.ResourceID, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
