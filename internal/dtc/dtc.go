// Package dtc models today's functional diagnosis baseline that the
// paper's Section I argues against: functional tests yield pass/fail
// diagnostic trouble codes (DTCs, SAE J1979) per application, each with
// an ambiguity set of suspect ECUs. A workshop replaces candidates from
// that set until the symptom clears, discarding fault-free units along
// the way — the repair-cost problem structural BIST removes by naming
// the faulty ECU directly.
package dtc

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// TroubleCode is one functional-test observable: an end-to-end check
// of a functional application with the set of ECUs that can make it
// fail.
type TroubleCode struct {
	Code     string
	Suspects []model.ResourceID // ECUs hosting tasks of the application
}

// DeriveCodes derives one trouble code per functional application of
// the implementation. Applications are the connected components of the
// functional task graph; the suspects of a code are the ECUs its tasks
// are bound to (sensors and actuators are assumed individually
// testable and excluded).
func DeriveCodes(x *model.Implementation) []TroubleCode {
	spec := x.Spec
	// Union-find over functional tasks connected by messages.
	parent := make(map[model.TaskID]model.TaskID)
	var find func(t model.TaskID) model.TaskID
	find = func(t model.TaskID) model.TaskID {
		if parent[t] == t {
			return t
		}
		parent[t] = find(parent[t])
		return parent[t]
	}
	union := func(a, b model.TaskID) {
		ra, rb := find(a), find(b)
		if ra != rb {
			if ra < rb {
				parent[rb] = ra
			} else {
				parent[ra] = rb
			}
		}
	}
	isFunctional := func(t model.TaskID) bool {
		task := spec.App.Task(t)
		return task != nil && task.Kind == model.KindFunctional
	}
	for _, t := range spec.App.TasksOfKind(model.KindFunctional) {
		parent[t.ID] = t.ID
	}
	for _, m := range spec.App.Messages() {
		if !isFunctional(m.Src) {
			continue
		}
		for _, d := range m.Dst {
			if isFunctional(d) {
				union(m.Src, d)
			}
		}
	}
	// Collect component -> ECU suspects.
	suspects := make(map[model.TaskID]map[model.ResourceID]bool)
	for _, t := range spec.App.TasksOfKind(model.KindFunctional) {
		r, bound := x.Binding[t.ID]
		if !bound {
			continue
		}
		res := spec.Arch.Resource(r)
		if res == nil || res.Kind != model.KindECU {
			continue
		}
		root := find(t.ID)
		if suspects[root] == nil {
			suspects[root] = make(map[model.ResourceID]bool)
		}
		suspects[root][r] = true
	}
	roots := make([]model.TaskID, 0, len(suspects))
	for root := range suspects {
		roots = append(roots, root)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	var out []TroubleCode
	for i, root := range roots {
		set := suspects[root]
		ecus := make([]model.ResourceID, 0, len(set))
		for r := range set {
			ecus = append(ecus, r)
		}
		sort.Slice(ecus, func(a, b int) bool { return ecus[a] < ecus[b] })
		out = append(out, TroubleCode{Code: fmt.Sprintf("P%04d", i+1), Suspects: ecus})
	}
	return out
}

// Candidates intersects the ambiguity sets of the triggered codes: the
// ECUs consistent with every observed symptom. An empty intersection
// degrades to the union (contradictory symptoms — replace everything
// suspected).
func Candidates(codes []TroubleCode, triggered []string) []model.ResourceID {
	trig := make(map[string]bool, len(triggered))
	for _, c := range triggered {
		trig[c] = true
	}
	var sets [][]model.ResourceID
	for _, code := range codes {
		if trig[code.Code] {
			sets = append(sets, code.Suspects)
		}
	}
	if len(sets) == 0 {
		return nil
	}
	count := make(map[model.ResourceID]int)
	for _, s := range sets {
		for _, r := range s {
			count[r]++
		}
	}
	var inter, union []model.ResourceID
	for r, n := range count {
		union = append(union, r)
		if n == len(sets) {
			inter = append(inter, r)
		}
	}
	out := inter
	if len(out) == 0 {
		out = union
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TriggeredBy returns the codes a fault in ECU e would raise: every
// application with a task on e. Detection of the symptom itself is
// further gated by the functional tests' limited structural coverage —
// callers apply that separately.
func TriggeredBy(codes []TroubleCode, e model.ResourceID) []string {
	var out []string
	for _, c := range codes {
		for _, s := range c.Suspects {
			if s == e {
				out = append(out, c.Code)
				break
			}
		}
	}
	return out
}
