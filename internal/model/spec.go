package model

import (
	"fmt"
	"sort"
)

// Specification is the complete design space exploration problem
// g_S(g_T, g_A, M): application graph, architecture graph, and the set
// of mapping edges.
type Specification struct {
	App  *ApplicationGraph
	Arch *ArchitectureGraph

	mappings []Mapping
	// byTask indexes the mapping options of each task, byResource the
	// tasks mappable onto each resource.
	byTask     map[TaskID][]ResourceID
	byResource map[ResourceID][]TaskID
	mapSet     map[Mapping]bool

	// Gateway is the resource that hosts the mandatory collection task
	// b^R and optionally centralized BIST data.
	Gateway ResourceID
}

// NewSpecification returns a specification over the given graphs.
func NewSpecification(app *ApplicationGraph, arch *ArchitectureGraph) *Specification {
	return &Specification{
		App:        app,
		Arch:       arch,
		byTask:     make(map[TaskID][]ResourceID),
		byResource: make(map[ResourceID][]TaskID),
		mapSet:     make(map[Mapping]bool),
	}
}

// AddMapping inserts the mapping edge m = (t, r) ∈ M. Both endpoints
// must exist; duplicates are rejected.
func (s *Specification) AddMapping(t TaskID, r ResourceID) error {
	if s.App.Task(t) == nil {
		return fmt.Errorf("model: mapping: unknown task %q", t)
	}
	if s.Arch.Resource(r) == nil {
		return fmt.Errorf("model: mapping: unknown resource %q", r)
	}
	m := Mapping{Task: t, Resource: r}
	if s.mapSet[m] {
		return fmt.Errorf("model: duplicate mapping %v", m)
	}
	s.mapSet[m] = true
	s.mappings = append(s.mappings, m)
	s.byTask[t] = append(s.byTask[t], r)
	s.byResource[r] = append(s.byResource[r], t)
	return nil
}

// Mappings returns all mapping edges in insertion order.
func (s *Specification) Mappings() []Mapping { return s.mappings }

// MappingTargets returns the resources task t may be bound to, sorted.
func (s *Specification) MappingTargets(t TaskID) []ResourceID {
	out := append([]ResourceID(nil), s.byTask[t]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// MappableTasks returns the tasks that may be bound to resource r,
// sorted.
func (s *Specification) MappableTasks(r ResourceID) []TaskID {
	out := append([]TaskID(nil), s.byResource[r]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// HasMapping reports whether (t, r) ∈ M.
func (s *Specification) HasMapping(t TaskID, r ResourceID) bool {
	return s.mapSet[Mapping{Task: t, Resource: r}]
}

// Validate checks structural consistency of the specification:
//   - every mandatory (functional/collect) task has at least one mapping
//     option;
//   - every BIST test task b^T has exactly one mapping option (its own
//     ECU, the CUT it exercises);
//   - every BIST data task b^D has at least one option, and every option
//     is either the tested ECU or the gateway;
//   - message senders and receivers have mapping options whose resources
//     can be connected in g_A;
//   - the gateway is set and exists.
func (s *Specification) Validate() error {
	if s.Gateway == "" {
		return fmt.Errorf("model: specification has no gateway")
	}
	gw := s.Arch.Resource(s.Gateway)
	if gw == nil {
		return fmt.Errorf("model: gateway %q not in architecture", s.Gateway)
	}
	if gw.Kind != KindGateway {
		return fmt.Errorf("model: gateway %q has kind %v", s.Gateway, gw.Kind)
	}
	for _, t := range s.App.Tasks() {
		opts := s.byTask[t.ID]
		switch t.Kind {
		case KindFunctional, KindCollect:
			if len(opts) == 0 {
				return fmt.Errorf("model: mandatory task %q has no mapping option", t.ID)
			}
		case KindBISTTest:
			if len(opts) != 1 {
				return fmt.Errorf("model: BIST test task %q must have exactly one mapping option, has %d", t.ID, len(opts))
			}
			if opts[0] != t.TestedECU {
				return fmt.Errorf("model: BIST test task %q maps to %q but tests %q", t.ID, opts[0], t.TestedECU)
			}
		case KindBISTData:
			if len(opts) == 0 {
				return fmt.Errorf("model: BIST data task %q has no mapping option", t.ID)
			}
			for _, r := range opts {
				if r != t.TestedECU && r != s.Gateway {
					return fmt.Errorf("model: BIST data task %q may only map to its ECU %q or the gateway, not %q", t.ID, t.TestedECU, r)
				}
			}
		}
	}
	// Every message endpoint pair must be connectable for at least one
	// combination of mapping options.
	for _, m := range s.App.Messages() {
		srcOpts := s.byTask[m.Src]
		if len(srcOpts) == 0 {
			return fmt.Errorf("model: message %q: sender %q has no mapping option", m.ID, m.Src)
		}
		for _, dst := range m.Dst {
			dstOpts := s.byTask[dst]
			if len(dstOpts) == 0 {
				return fmt.Errorf("model: message %q: receiver %q has no mapping option", m.ID, dst)
			}
			reachable := false
		search:
			for _, sr := range srcOpts {
				for _, dr := range dstOpts {
					if _, ok := s.Arch.ShortestPath(sr, dr, nil); ok {
						reachable = true
						break search
					}
				}
			}
			if !reachable {
				return fmt.Errorf("model: message %q: no mapping combination connects %q to %q", m.ID, m.Src, dst)
			}
		}
	}
	return nil
}

// WarmCaches materializes every lazily memoized view (sorted task,
// message, resource and neighbor lists). Call it once before sharing
// the specification across goroutines: the views are built on first
// use, which would otherwise race.
func (s *Specification) WarmCaches() {
	s.App.Tasks()
	s.App.Messages()
	for _, r := range s.Arch.Resources() {
		s.Arch.Neighbors(r.ID)
	}
}

// BISTTasksForECU returns the BIST test tasks available for ECU r,
// sorted by profile number then ID.
func (s *Specification) BISTTasksForECU(r ResourceID) []*Task {
	var out []*Task
	for _, t := range s.App.TasksOfKind(KindBISTTest) {
		if t.TestedECU == r {
			out = append(out, t)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Profile != out[j].Profile {
			return out[i].Profile < out[j].Profile
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// DataTaskFor returns the BIST data task b^D paired with the given BIST
// test task b^T, i.e. the data task whose outgoing message is received
// by bT. Returns nil if none exists.
func (s *Specification) DataTaskFor(bT *Task) *Task {
	if bT == nil || bT.Kind != KindBISTTest {
		return nil
	}
	for _, mid := range s.App.Incoming(bT.ID) {
		m := s.App.Message(mid)
		src := s.App.Task(m.Src)
		if src != nil && src.Kind == KindBISTData {
			return src
		}
	}
	return nil
}

// TestTaskFor returns the BIST test task b^T paired with the given data
// task b^D. Returns nil if none exists.
func (s *Specification) TestTaskFor(bD *Task) *Task {
	if bD == nil || bD.Kind != KindBISTData {
		return nil
	}
	for _, mid := range s.App.Outgoing(bD.ID) {
		m := s.App.Message(mid)
		for _, d := range m.Dst {
			t := s.App.Task(d)
			if t != nil && t.Kind == KindBISTTest {
				return t
			}
		}
	}
	return nil
}
