package model

import (
	"fmt"
	"sort"
)

// ApplicationGraph is the bipartite graph g_T = (T ∪ C, E_T). Tasks and
// messages alternate along every edge: a task sends a message, a message
// is received by tasks.
type ApplicationGraph struct {
	tasks    map[TaskID]*Task
	messages map[MessageID]*Message

	// outgoing maps a task to the messages it sends, incoming maps a task
	// to the messages it receives.
	outgoing map[TaskID][]MessageID
	incoming map[TaskID][]MessageID

	// Memoized sorted views; rebuilt lazily after mutation. They are
	// load-bearing for exploration throughput: objective evaluation
	// iterates the message list once per selected BIST session.
	tasksSorted    []*Task
	messagesSorted []*Message
}

// NewApplicationGraph returns an empty application graph.
func NewApplicationGraph() *ApplicationGraph {
	return &ApplicationGraph{
		tasks:    make(map[TaskID]*Task),
		messages: make(map[MessageID]*Message),
		outgoing: make(map[TaskID][]MessageID),
		incoming: make(map[TaskID][]MessageID),
	}
}

// AddTask inserts a task vertex. It returns an error on duplicate IDs.
func (g *ApplicationGraph) AddTask(t *Task) error {
	if t == nil || t.ID == "" {
		return fmt.Errorf("model: task must have a non-empty ID")
	}
	if _, dup := g.tasks[t.ID]; dup {
		return fmt.Errorf("model: duplicate task %q", t.ID)
	}
	g.tasks[t.ID] = t
	g.tasksSorted = nil
	return nil
}

// AddMessage inserts a message vertex and wires the dependency edges
// (src, c) and (c, dst_i). Source and all destinations must already
// exist.
func (g *ApplicationGraph) AddMessage(m *Message) error {
	if m == nil || m.ID == "" {
		return fmt.Errorf("model: message must have a non-empty ID")
	}
	if _, dup := g.messages[m.ID]; dup {
		return fmt.Errorf("model: duplicate message %q", m.ID)
	}
	if _, ok := g.tasks[m.Src]; !ok {
		return fmt.Errorf("model: message %q: unknown source task %q", m.ID, m.Src)
	}
	if len(m.Dst) == 0 {
		return fmt.Errorf("model: message %q has no receivers", m.ID)
	}
	for _, d := range m.Dst {
		if _, ok := g.tasks[d]; !ok {
			return fmt.Errorf("model: message %q: unknown destination task %q", m.ID, d)
		}
	}
	g.messages[m.ID] = m
	g.messagesSorted = nil
	g.outgoing[m.Src] = append(g.outgoing[m.Src], m.ID)
	for _, d := range m.Dst {
		g.incoming[d] = append(g.incoming[d], m.ID)
	}
	return nil
}

// Task returns the task with the given ID, or nil.
func (g *ApplicationGraph) Task(id TaskID) *Task { return g.tasks[id] }

// Message returns the message with the given ID, or nil.
func (g *ApplicationGraph) Message(id MessageID) *Message { return g.messages[id] }

// Tasks returns all tasks sorted by ID for deterministic iteration.
// The returned slice is shared; callers must not modify it.
func (g *ApplicationGraph) Tasks() []*Task {
	if g.tasksSorted == nil {
		out := make([]*Task, 0, len(g.tasks))
		for _, t := range g.tasks {
			out = append(out, t)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		g.tasksSorted = out
	}
	return g.tasksSorted
}

// Messages returns all messages sorted by ID for deterministic
// iteration. The returned slice is shared; callers must not modify it.
func (g *ApplicationGraph) Messages() []*Message {
	if g.messagesSorted == nil {
		out := make([]*Message, 0, len(g.messages))
		for _, m := range g.messages {
			out = append(out, m)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		g.messagesSorted = out
	}
	return g.messagesSorted
}

// Outgoing returns the messages sent by task id, sorted by message ID.
func (g *ApplicationGraph) Outgoing(id TaskID) []MessageID {
	out := append([]MessageID(nil), g.outgoing[id]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Incoming returns the messages received by task id, sorted by message ID.
func (g *ApplicationGraph) Incoming(id TaskID) []MessageID {
	out := append([]MessageID(nil), g.incoming[id]...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NumTasks returns |T|.
func (g *ApplicationGraph) NumTasks() int { return len(g.tasks) }

// NumMessages returns |C|.
func (g *ApplicationGraph) NumMessages() int { return len(g.messages) }

// TasksOfKind returns all tasks of the given kind, sorted by ID.
func (g *ApplicationGraph) TasksOfKind(k TaskKind) []*Task {
	var out []*Task
	for _, t := range g.Tasks() {
		if t.Kind == k {
			out = append(out, t)
		}
	}
	return out
}

// ArchitectureGraph is g_A = (R, E_A): resources and the bidirectional
// connections between them.
type ArchitectureGraph struct {
	resources map[ResourceID]*Resource
	adj       map[ResourceID]map[ResourceID]bool

	// Memoized sorted views, rebuilt lazily after mutation.
	resourcesSorted []*Resource
	neighborsSorted map[ResourceID][]ResourceID
}

// NewArchitectureGraph returns an empty architecture graph.
func NewArchitectureGraph() *ArchitectureGraph {
	return &ArchitectureGraph{
		resources: make(map[ResourceID]*Resource),
		adj:       make(map[ResourceID]map[ResourceID]bool),
	}
}

// AddResource inserts a resource vertex. It returns an error on
// duplicate IDs.
func (g *ArchitectureGraph) AddResource(r *Resource) error {
	if r == nil || r.ID == "" {
		return fmt.Errorf("model: resource must have a non-empty ID")
	}
	if _, dup := g.resources[r.ID]; dup {
		return fmt.Errorf("model: duplicate resource %q", r.ID)
	}
	g.resources[r.ID] = r
	g.adj[r.ID] = make(map[ResourceID]bool)
	g.resourcesSorted = nil
	g.neighborsSorted = nil
	return nil
}

// Connect adds the undirected edge {a, b} ∈ E_A.
func (g *ArchitectureGraph) Connect(a, b ResourceID) error {
	if _, ok := g.resources[a]; !ok {
		return fmt.Errorf("model: connect: unknown resource %q", a)
	}
	if _, ok := g.resources[b]; !ok {
		return fmt.Errorf("model: connect: unknown resource %q", b)
	}
	if a == b {
		return fmt.Errorf("model: connect: self-loop on %q", a)
	}
	g.adj[a][b] = true
	g.adj[b][a] = true
	g.neighborsSorted = nil
	return nil
}

// Resource returns the resource with the given ID, or nil.
func (g *ArchitectureGraph) Resource(id ResourceID) *Resource { return g.resources[id] }

// Resources returns all resources sorted by ID. The returned slice is
// shared; callers must not modify it.
func (g *ArchitectureGraph) Resources() []*Resource {
	if g.resourcesSorted == nil {
		out := make([]*Resource, 0, len(g.resources))
		for _, r := range g.resources {
			out = append(out, r)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
		g.resourcesSorted = out
	}
	return g.resourcesSorted
}

// ResourcesOfKind returns all resources of the given kind, sorted by ID.
func (g *ArchitectureGraph) ResourcesOfKind(k ResourceKind) []*Resource {
	var out []*Resource
	for _, r := range g.Resources() {
		if r.Kind == k {
			out = append(out, r)
		}
	}
	return out
}

// Neighbors returns the resources adjacent to id, sorted by ID. The
// returned slice is shared; callers must not modify it.
func (g *ArchitectureGraph) Neighbors(id ResourceID) []ResourceID {
	if g.neighborsSorted == nil {
		g.neighborsSorted = make(map[ResourceID][]ResourceID, len(g.adj))
	}
	if out, ok := g.neighborsSorted[id]; ok {
		return out
	}
	out := make([]ResourceID, 0, len(g.adj[id]))
	for n := range g.adj[id] {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	g.neighborsSorted[id] = out
	return out
}

// Adjacent reports whether {a, b} ∈ E_A.
func (g *ArchitectureGraph) Adjacent(a, b ResourceID) bool { return g.adj[a][b] }

// NumResources returns |R|.
func (g *ArchitectureGraph) NumResources() int { return len(g.resources) }

// ShortestPath returns the shortest hop path from src to dst over the
// architecture graph, restricted to the resources accepted by the allow
// predicate (nil allows everything). The returned path includes both
// endpoints; ok is false if no path exists.
func (g *ArchitectureGraph) ShortestPath(src, dst ResourceID, allow func(ResourceID) bool) (path []ResourceID, ok bool) {
	if _, have := g.resources[src]; !have {
		return nil, false
	}
	if _, have := g.resources[dst]; !have {
		return nil, false
	}
	if allow != nil && (!allow(src) || !allow(dst)) {
		return nil, false
	}
	if src == dst {
		return []ResourceID{src}, true
	}
	prev := map[ResourceID]ResourceID{src: src}
	queue := []ResourceID{src}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range g.Neighbors(cur) {
			if _, seen := prev[n]; seen {
				continue
			}
			if allow != nil && !allow(n) {
				continue
			}
			prev[n] = cur
			if n == dst {
				// Reconstruct.
				var rev []ResourceID
				for at := dst; ; at = prev[at] {
					rev = append(rev, at)
					if at == src {
						break
					}
				}
				for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
					rev[i], rev[j] = rev[j], rev[i]
				}
				return rev, true
			}
			queue = append(queue, n)
		}
	}
	return nil, false
}
