package model

import (
	"strings"
	"testing"
)

// buildTinySpec constructs a minimal specification with two ECUs on one
// bus plus a gateway, one functional chain t1 -c1-> t2, one BIST
// test/data pair for ecu1, and the collection task on the gateway.
func buildTinySpec(t *testing.T) *Specification {
	t.Helper()
	app := NewApplicationGraph()
	mustAddTask := func(task *Task) {
		if err := app.AddTask(task); err != nil {
			t.Fatalf("AddTask(%v): %v", task.ID, err)
		}
	}
	mustAddTask(&Task{ID: "t1", Kind: KindFunctional, WCETms: 1})
	mustAddTask(&Task{ID: "t2", Kind: KindFunctional, WCETms: 1})
	mustAddTask(&Task{ID: "bR", Kind: KindCollect})
	mustAddTask(&Task{ID: "bT1", Kind: KindBISTTest, TestedECU: "ecu1", Coverage: 0.99, WCETms: 5, Profile: 1})
	mustAddTask(&Task{ID: "bD1", Kind: KindBISTData, TestedECU: "ecu1", MemBytes: 1 << 20})
	mustAddMsg := func(m *Message) {
		if err := app.AddMessage(m); err != nil {
			t.Fatalf("AddMessage(%v): %v", m.ID, err)
		}
	}
	mustAddMsg(&Message{ID: "c1", Src: "t1", Dst: []TaskID{"t2"}, SizeBytes: 8, PeriodMS: 10})
	mustAddMsg(&Message{ID: "cD1", Src: "bD1", Dst: []TaskID{"bT1"}, SizeBytes: 8, PeriodMS: 10})
	mustAddMsg(&Message{ID: "cR1", Src: "bT1", Dst: []TaskID{"bR"}, SizeBytes: 8, PeriodMS: 100})

	arch := NewArchitectureGraph()
	mustAddRes := func(r *Resource) {
		if err := arch.AddResource(r); err != nil {
			t.Fatalf("AddResource(%v): %v", r.ID, err)
		}
	}
	mustAddRes(&Resource{ID: "ecu1", Kind: KindECU, Cost: 10, BISTCapable: true, BISTCost: 1, MemCostPerKB: 0.01})
	mustAddRes(&Resource{ID: "ecu2", Kind: KindECU, Cost: 10})
	mustAddRes(&Resource{ID: "bus1", Kind: KindBus, Cost: 2, BitRate: 500_000})
	mustAddRes(&Resource{ID: "gw", Kind: KindGateway, Cost: 20, MemCostPerKB: 0.005})
	for _, pair := range [][2]ResourceID{{"ecu1", "bus1"}, {"ecu2", "bus1"}, {"gw", "bus1"}} {
		if err := arch.Connect(pair[0], pair[1]); err != nil {
			t.Fatalf("Connect(%v): %v", pair, err)
		}
	}

	spec := NewSpecification(app, arch)
	spec.Gateway = "gw"
	mustMap := func(task TaskID, r ResourceID) {
		if err := spec.AddMapping(task, r); err != nil {
			t.Fatalf("AddMapping(%v,%v): %v", task, r, err)
		}
	}
	mustMap("t1", "ecu1")
	mustMap("t2", "ecu2")
	mustMap("t2", "ecu1")
	mustMap("bR", "gw")
	mustMap("bT1", "ecu1")
	mustMap("bD1", "ecu1")
	mustMap("bD1", "gw")
	return spec
}

func bindTiny(spec *Specification) *Implementation {
	x := NewImplementation(spec)
	x.Bind("t1", "ecu1")
	x.Bind("t2", "ecu2")
	x.Bind("bR", "gw")
	x.Bind("bT1", "ecu1")
	x.Bind("bD1", "gw")
	x.SetRoute("c1", "t2", Route{Hops: []ResourceID{"ecu1", "bus1", "ecu2"}})
	x.SetRoute("cD1", "bT1", Route{Hops: []ResourceID{"gw", "bus1", "ecu1"}})
	x.SetRoute("cR1", "bR", Route{Hops: []ResourceID{"ecu1", "bus1", "gw"}})
	return x
}

func TestSpecificationValidate(t *testing.T) {
	spec := buildTinySpec(t)
	if err := spec.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejectsMissingGateway(t *testing.T) {
	spec := buildTinySpec(t)
	spec.Gateway = ""
	if err := spec.Validate(); err == nil {
		t.Fatal("Validate accepted empty gateway")
	}
}

func TestValidateRejectsBadDataTaskMapping(t *testing.T) {
	spec := buildTinySpec(t)
	if err := spec.AddMapping("bD1", "ecu2"); err != nil {
		t.Fatalf("AddMapping: %v", err)
	}
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), "bD1") {
		t.Fatalf("Validate = %v, want bD1 mapping error", err)
	}
}

func TestDuplicateTaskRejected(t *testing.T) {
	app := NewApplicationGraph()
	if err := app.AddTask(&Task{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := app.AddTask(&Task{ID: "a"}); err == nil {
		t.Fatal("duplicate task accepted")
	}
}

func TestMessageRequiresEndpoints(t *testing.T) {
	app := NewApplicationGraph()
	if err := app.AddTask(&Task{ID: "a"}); err != nil {
		t.Fatal(err)
	}
	if err := app.AddMessage(&Message{ID: "m", Src: "a", Dst: []TaskID{"missing"}}); err == nil {
		t.Fatal("message to unknown task accepted")
	}
	if err := app.AddMessage(&Message{ID: "m", Src: "a"}); err == nil {
		t.Fatal("message without receivers accepted")
	}
}

func TestShortestPath(t *testing.T) {
	spec := buildTinySpec(t)
	path, ok := spec.Arch.ShortestPath("ecu1", "gw", nil)
	if !ok {
		t.Fatal("no path ecu1->gw")
	}
	want := []ResourceID{"ecu1", "bus1", "gw"}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	if p, ok := spec.Arch.ShortestPath("ecu1", "ecu1", nil); !ok || len(p) != 1 {
		t.Fatalf("self path = %v, %v", p, ok)
	}
}

func TestShortestPathRespectsAllow(t *testing.T) {
	spec := buildTinySpec(t)
	_, ok := spec.Arch.ShortestPath("ecu1", "gw", func(r ResourceID) bool { return r != "bus1" })
	if ok {
		t.Fatal("path found despite blocked bus")
	}
}

func TestImplementationCheckFeasible(t *testing.T) {
	spec := buildTinySpec(t)
	x := bindTiny(spec)
	if errs := x.Check(); len(errs) != 0 {
		t.Fatalf("Check = %v, want feasible", errs)
	}
	if !x.Feasible() {
		t.Fatal("Feasible = false")
	}
}

func TestCheckDetectsUnboundMandatory(t *testing.T) {
	spec := buildTinySpec(t)
	x := bindTiny(spec)
	delete(x.Binding, "t2")
	wantRuleViolated(t, x, "binding")
}

func TestCheckDetectsEq3b(t *testing.T) {
	spec := buildTinySpec(t)
	x := bindTiny(spec)
	delete(x.Binding, "bD1")
	delete(x.Routing, "cD1")
	wantRuleViolated(t, x, "3b")
}

func TestCheckDetectsEq2h(t *testing.T) {
	spec := buildTinySpec(t)
	x := bindTiny(spec)
	// Move t1 away so ecu1 hosts only diagnosis tasks.
	x.Bind("t1", "ecu2")
	x.SetRoute("c1", "t2", Route{Hops: []ResourceID{"ecu2"}})
	wantRuleViolated(t, x, "2h")
}

func TestCheckDetectsBrokenRoute(t *testing.T) {
	spec := buildTinySpec(t)
	x := bindTiny(spec)
	x.SetRoute("c1", "t2", Route{Hops: []ResourceID{"ecu1", "ecu2"}}) // not adjacent
	wantRuleViolated(t, x, "2g")
}

func TestCheckDetectsCycle(t *testing.T) {
	spec := buildTinySpec(t)
	x := bindTiny(spec)
	x.SetRoute("c1", "t2", Route{Hops: []ResourceID{"ecu1", "bus1", "ecu1", "bus1", "ecu2"}})
	wantRuleViolated(t, x, "2d")
}

func TestCheckDetectsMemoryOverflow(t *testing.T) {
	spec := buildTinySpec(t)
	spec.Arch.Resource("gw").MemCapBytes = 10
	x := bindTiny(spec)
	wantRuleViolated(t, x, "memory")
}

func wantRuleViolated(t *testing.T, x *Implementation, rule string) {
	t.Helper()
	errs := x.Check()
	for _, e := range errs {
		var ce *CheckError
		if ok := errorsAs(e, &ce); ok && ce.Rule == rule {
			return
		}
	}
	t.Fatalf("Check = %v, want violation of rule %q", errs, rule)
}

// errorsAs is a tiny local stand-in to avoid importing errors for one
// type assertion.
func errorsAs(err error, target **CheckError) bool {
	ce, ok := err.(*CheckError)
	if ok {
		*target = ce
	}
	return ok
}

func TestSelectedBISTAndMemoryUse(t *testing.T) {
	spec := buildTinySpec(t)
	x := bindTiny(spec)
	sel := x.SelectedBIST()
	if len(sel) != 1 || sel["ecu1"] == nil || sel["ecu1"].ID != "bT1" {
		t.Fatalf("SelectedBIST = %v", sel)
	}
	mem := x.MemoryUse()
	if mem["gw"] != 1<<20 {
		t.Fatalf("gateway memory = %d, want %d", mem["gw"], 1<<20)
	}
}

func TestCloneIsDeep(t *testing.T) {
	spec := buildTinySpec(t)
	x := bindTiny(spec)
	c := x.Clone()
	c.Bind("t2", "ecu1")
	c.Routing["c1"]["t2"] = Route{Hops: []ResourceID{"ecu1"}}
	if x.Binding["t2"] != "ecu2" {
		t.Fatal("clone shares binding map")
	}
	if len(x.Routing["c1"]["t2"].Hops) != 3 {
		t.Fatal("clone shares routing map")
	}
}

func TestRouteHelpers(t *testing.T) {
	spec := buildTinySpec(t)
	rt := Route{Hops: []ResourceID{"ecu1", "bus1", "gw"}}
	if !rt.Contains("bus1") || rt.Contains("ecu2") {
		t.Fatal("Contains wrong")
	}
	buses := rt.Buses(spec.Arch)
	if len(buses) != 1 || buses[0] != "bus1" {
		t.Fatalf("Buses = %v", buses)
	}
	if rt.String() != "ecu1->bus1->gw" {
		t.Fatalf("String = %q", rt.String())
	}
}

func TestTaskAndResourceKindStrings(t *testing.T) {
	kinds := map[string]string{
		KindFunctional.String(): "functional",
		KindBISTTest.String():   "bist-test",
		KindBISTData.String():   "bist-data",
		KindCollect.String():    "collect",
	}
	for got, want := range kinds {
		if got != want {
			t.Fatalf("TaskKind.String() = %q, want %q", got, want)
		}
	}
	if KindBus.String() != "bus" || KindGateway.String() != "gateway" {
		t.Fatal("ResourceKind.String wrong")
	}
	if !KindBISTTest.Diagnostic() || KindCollect.Diagnostic() {
		t.Fatal("Diagnostic classification wrong")
	}
}

func TestPairingHelpers(t *testing.T) {
	spec := buildTinySpec(t)
	bT := spec.App.Task("bT1")
	bD := spec.App.Task("bD1")
	if got := spec.DataTaskFor(bT); got == nil || got.ID != "bD1" {
		t.Fatalf("DataTaskFor = %v", got)
	}
	if got := spec.TestTaskFor(bD); got == nil || got.ID != "bT1" {
		t.Fatalf("TestTaskFor = %v", got)
	}
	if spec.DataTaskFor(bD) != nil || spec.TestTaskFor(bT) != nil {
		t.Fatal("pairing helpers accept wrong kinds")
	}
	tasks := spec.BISTTasksForECU("ecu1")
	if len(tasks) != 1 || tasks[0].ID != "bT1" {
		t.Fatalf("BISTTasksForECU = %v", tasks)
	}
}

// TestJSONRoundTrip serializes the tiny spec and parses it back: the
// result must validate and preserve every entity.
func TestJSONRoundTrip(t *testing.T) {
	spec := buildTinySpec(t)
	var buf strings.Builder
	if err := spec.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatalf("%v\n%s", err, buf.String())
	}
	if back.Gateway != spec.Gateway {
		t.Fatalf("gateway %q vs %q", back.Gateway, spec.Gateway)
	}
	if back.App.NumTasks() != spec.App.NumTasks() || back.App.NumMessages() != spec.App.NumMessages() {
		t.Fatal("task/message counts changed")
	}
	if back.Arch.NumResources() != spec.Arch.NumResources() {
		t.Fatal("resource count changed")
	}
	if len(back.Mappings()) != len(spec.Mappings()) {
		t.Fatal("mapping count changed")
	}
	// Spot-check attributes survived.
	bt := back.App.Task("bT1")
	if bt == nil || bt.Coverage != 0.99 || bt.TestedECU != "ecu1" || bt.Kind != KindBISTTest {
		t.Fatalf("bT1 = %+v", bt)
	}
	if r := back.Arch.Resource("bus1"); r == nil || r.BitRate != 500_000 || r.Kind != KindBus {
		t.Fatalf("bus1 = %+v", r)
	}
	if !back.Arch.Adjacent("ecu1", "bus1") {
		t.Fatal("link lost")
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	bad := []string{
		"{",
		`{"unknownField": 1}`,
		`{"gateway":"gw","resources":[{"id":"r","kind":"alien"}]}`,
		`{"gateway":"gw","resources":[{"id":"gw","kind":"gateway"}],"tasks":[{"id":"t","kind":"weird"}]}`,
	}
	for i, src := range bad {
		if _, err := ReadJSON(strings.NewReader(src)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
