package model

import (
	"fmt"
	"sort"
	"strings"
)

// Route is the ordered resource path W_c over which a message is
// routed, starting at the resource of the sending task and ending at the
// resource of (each) receiving task. On a bus topology the path
// typically reads ECU → bus → ECU or ECU → bus → gateway → bus → ECU.
type Route struct {
	Hops []ResourceID
}

// Contains reports whether the route crosses resource r.
func (rt Route) Contains(r ResourceID) bool {
	for _, h := range rt.Hops {
		if h == r {
			return true
		}
	}
	return false
}

// Buses returns the bus resources the route crosses, in order, using the
// architecture graph to classify hops.
func (rt Route) Buses(arch *ArchitectureGraph) []ResourceID {
	var out []ResourceID
	for _, h := range rt.Hops {
		if res := arch.Resource(h); res != nil && res.Kind == KindBus {
			out = append(out, h)
		}
	}
	return out
}

// String renders the route as "a->b->c".
func (rt Route) String() string {
	parts := make([]string, len(rt.Hops))
	for i, h := range rt.Hops {
		parts[i] = string(h)
	}
	return strings.Join(parts, "->")
}

// Implementation is one solution x = (A, B, W) of the design space
// exploration problem: the allocation A ⊆ R, the binding B ⊆ M, and for
// each bound communication c the routing W_c.
type Implementation struct {
	Spec *Specification

	// Allocation is the set of allocated resources A.
	Allocation map[ResourceID]bool

	// Binding assigns each bound task to exactly one resource. Optional
	// diagnosis tasks that are not selected are absent.
	Binding map[TaskID]ResourceID

	// Routing holds, per active message, one route per destination task.
	Routing map[MessageID]map[TaskID]Route
}

// NewImplementation returns an empty implementation for the given
// specification.
func NewImplementation(spec *Specification) *Implementation {
	return &Implementation{
		Spec:       spec,
		Allocation: make(map[ResourceID]bool),
		Binding:    make(map[TaskID]ResourceID),
		Routing:    make(map[MessageID]map[TaskID]Route),
	}
}

// Bind binds task t to resource r and allocates r.
func (x *Implementation) Bind(t TaskID, r ResourceID) {
	x.Binding[t] = r
	x.Allocation[r] = true
}

// SetRoute records the route of message m towards destination task dst
// and allocates every hop.
func (x *Implementation) SetRoute(m MessageID, dst TaskID, route Route) {
	per := x.Routing[m]
	if per == nil {
		per = make(map[TaskID]Route)
		x.Routing[m] = per
	}
	per[dst] = route
	for _, h := range route.Hops {
		x.Allocation[h] = true
	}
}

// Bound reports whether task t is bound.
func (x *Implementation) Bound(t TaskID) bool {
	_, ok := x.Binding[t]
	return ok
}

// Active reports whether message m is active, i.e. its sender is bound.
func (x *Implementation) Active(m MessageID) bool {
	msg := x.Spec.App.Message(m)
	if msg == nil {
		return false
	}
	return x.Bound(msg.Src)
}

// AllocatedResources returns the allocated resources sorted by ID.
func (x *Implementation) AllocatedResources() []ResourceID {
	out := make([]ResourceID, 0, len(x.Allocation))
	for r, on := range x.Allocation {
		if on {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// SelectedBIST returns, per ECU, the selected BIST test task, sorted by
// ECU ID. ECUs without a selected test are absent.
func (x *Implementation) SelectedBIST() map[ResourceID]*Task {
	out := make(map[ResourceID]*Task)
	for tid, r := range x.Binding {
		t := x.Spec.App.Task(tid)
		if t != nil && t.Kind == KindBISTTest {
			out[r] = t
		}
	}
	return out
}

// MemoryUse returns the permanent memory in bytes occupied on each
// allocated resource by the bound tasks.
func (x *Implementation) MemoryUse() map[ResourceID]int64 {
	out := make(map[ResourceID]int64)
	for tid, r := range x.Binding {
		t := x.Spec.App.Task(tid)
		if t != nil {
			out[r] += t.MemBytes
		}
	}
	return out
}

// CheckError describes a structural violation found by Check.
type CheckError struct {
	Rule string // short rule identifier, e.g. "binding", "route-adjacency"
	Msg  string
}

func (e *CheckError) Error() string { return "model: " + e.Rule + ": " + e.Msg }

// Check verifies the structural feasibility of the implementation
// against its specification:
//
//   - every mandatory task is bound, to a resource of one of its mapping
//     edges; optional diagnostic tasks are bound at most once (Eq. 2a);
//   - every active message has a route per bound receiver, the route
//     starts at the sender's resource (Eq. 2b), ends at the receiver's
//     resource (Eq. 2c), is cycle-free (Eq. 2d), and follows adjacent
//     resources (Eq. 2g);
//   - a diagnosis task is only bound to a resource that also hosts a
//     mandatory task (Eq. 2h);
//   - per ECU at most one BIST test task is selected (Eq. 3a);
//   - b^D is bound iff its b^T is bound (Eq. 3b);
//   - memory capacities are respected.
func (x *Implementation) Check() []error {
	var errs []error
	fail := func(rule, format string, args ...interface{}) {
		errs = append(errs, &CheckError{Rule: rule, Msg: fmt.Sprintf(format, args...)})
	}
	spec := x.Spec

	for _, t := range spec.App.Tasks() {
		r, bound := x.Binding[t.ID]
		if !bound {
			if !t.Kind.Diagnostic() {
				fail("binding", "mandatory task %q is unbound", t.ID)
			}
			continue
		}
		if !spec.HasMapping(t.ID, r) {
			fail("binding", "task %q bound to %q without mapping edge", t.ID, r)
		}
		if !x.Allocation[r] {
			fail("allocation", "task %q bound to unallocated resource %q", t.ID, r)
		}
	}

	// Eq. 2h: no resource allocated solely for diagnosis.
	hostsMandatory := make(map[ResourceID]bool)
	for tid, r := range x.Binding {
		if t := spec.App.Task(tid); t != nil && !t.Kind.Diagnostic() {
			hostsMandatory[r] = true
		}
	}
	for tid, r := range x.Binding {
		t := spec.App.Task(tid)
		if t != nil && t.Kind.Diagnostic() && !hostsMandatory[r] {
			fail("2h", "diagnosis task %q bound to %q which hosts no mandatory task", tid, r)
		}
	}

	// Eq. 3a: at most one BIST test task per ECU.
	testsPerECU := make(map[ResourceID]int)
	for tid, r := range x.Binding {
		if t := spec.App.Task(tid); t != nil && t.Kind == KindBISTTest {
			testsPerECU[r]++
		}
	}
	for r, n := range testsPerECU {
		if n > 1 {
			fail("3a", "resource %q has %d BIST test tasks selected", r, n)
		}
	}

	// Eq. 3b: b^D bound iff b^T bound.
	for _, bD := range spec.App.TasksOfKind(KindBISTData) {
		bT := spec.TestTaskFor(bD)
		if bT == nil {
			fail("3b", "data task %q has no paired test task", bD.ID)
			continue
		}
		if x.Bound(bD.ID) != x.Bound(bT.ID) {
			fail("3b", "data task %q bound=%v but test task %q bound=%v",
				bD.ID, x.Bound(bD.ID), bT.ID, x.Bound(bT.ID))
		}
	}

	// Routing checks.
	for _, m := range spec.App.Messages() {
		if !x.Active(m.ID) {
			if len(x.Routing[m.ID]) != 0 {
				fail("routing", "inactive message %q has routes", m.ID)
			}
			continue
		}
		srcRes := x.Binding[m.Src]
		for _, dst := range m.Dst {
			dstRes, bound := x.Binding[dst]
			if !bound {
				// A receiver that is an unbound optional task needs no route.
				if t := spec.App.Task(dst); t != nil && t.Kind.Diagnostic() {
					continue
				}
				fail("routing", "message %q: receiver %q unbound", m.ID, dst)
				continue
			}
			rt, ok := x.Routing[m.ID][dst]
			if !ok {
				fail("routing", "active message %q has no route to %q", m.ID, dst)
				continue
			}
			if len(rt.Hops) == 0 {
				fail("routing", "message %q: empty route to %q", m.ID, dst)
				continue
			}
			if rt.Hops[0] != srcRes {
				fail("2b", "message %q: route starts at %q, sender bound to %q", m.ID, rt.Hops[0], srcRes)
			}
			if rt.Hops[len(rt.Hops)-1] != dstRes {
				fail("2c", "message %q: route ends at %q, receiver bound to %q", m.ID, rt.Hops[len(rt.Hops)-1], dstRes)
			}
			seen := make(map[ResourceID]bool, len(rt.Hops))
			for _, h := range rt.Hops {
				if seen[h] {
					fail("2d", "message %q: route to %q revisits %q", m.ID, dst, h)
				}
				seen[h] = true
				if !x.Allocation[h] {
					fail("allocation", "message %q routed over unallocated %q", m.ID, h)
				}
			}
			for i := 1; i < len(rt.Hops); i++ {
				if !spec.Arch.Adjacent(rt.Hops[i-1], rt.Hops[i]) {
					fail("2g", "message %q: hops %q and %q not adjacent", m.ID, rt.Hops[i-1], rt.Hops[i])
				}
			}
		}
	}

	// Memory capacities.
	for r, used := range x.MemoryUse() {
		res := spec.Arch.Resource(r)
		if res != nil && res.MemCapBytes > 0 && used > res.MemCapBytes {
			fail("memory", "resource %q uses %d bytes of %d capacity", r, used, res.MemCapBytes)
		}
	}
	return errs
}

// Feasible reports whether Check finds no violation.
func (x *Implementation) Feasible() bool { return len(x.Check()) == 0 }

// Clone returns a deep copy of the implementation (sharing the
// specification).
func (x *Implementation) Clone() *Implementation {
	c := NewImplementation(x.Spec)
	for r, on := range x.Allocation {
		c.Allocation[r] = on
	}
	for t, r := range x.Binding {
		c.Binding[t] = r
	}
	for m, per := range x.Routing {
		cp := make(map[TaskID]Route, len(per))
		for d, rt := range per {
			cp[d] = Route{Hops: append([]ResourceID(nil), rt.Hops...)}
		}
		c.Routing[m] = cp
	}
	return c
}
