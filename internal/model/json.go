package model

import (
	"encoding/json"
	"fmt"
	"io"
)

// specJSON is the on-disk representation of a Specification. It is the
// interchange format of cmd/eedse's -spec flag, letting users define
// their own E/E-architecture without touching Go code.
type specJSON struct {
	Gateway   string         `json:"gateway"`
	Resources []resourceJSON `json:"resources"`
	Links     [][2]string    `json:"links"`
	Tasks     []taskJSON     `json:"tasks"`
	Messages  []messageJSON  `json:"messages"`
	Mappings  []mappingJSON  `json:"mappings"`
}

type resourceJSON struct {
	ID           string  `json:"id"`
	Kind         string  `json:"kind"` // ecu, sensor, actuator, bus, gateway
	Cost         float64 `json:"cost"`
	MemCostPerKB float64 `json:"memCostPerKB,omitempty"`
	MemCapBytes  int64   `json:"memCapBytes,omitempty"`
	BISTCost     float64 `json:"bistCost,omitempty"`
	BISTCapable  bool    `json:"bistCapable,omitempty"`
	BitRate      float64 `json:"bitRate,omitempty"`
}

type taskJSON struct {
	ID        string  `json:"id"`
	Kind      string  `json:"kind"` // functional, bist-test, bist-data, collect
	MemBytes  int64   `json:"memBytes,omitempty"`
	WCETms    float64 `json:"wcetMS,omitempty"`
	Coverage  float64 `json:"coverage,omitempty"`
	TestedECU string  `json:"testedECU,omitempty"`
	Profile   int     `json:"profile,omitempty"`
}

type messageJSON struct {
	ID        string   `json:"id"`
	Src       string   `json:"src"`
	Dst       []string `json:"dst"`
	SizeBytes int64    `json:"sizeBytes"`
	PeriodMS  float64  `json:"periodMS"`
	Priority  int      `json:"priority,omitempty"`
}

type mappingJSON struct {
	Task     string `json:"task"`
	Resource string `json:"resource"`
}

var resourceKindNames = map[string]ResourceKind{
	"ecu": KindECU, "sensor": KindSensor, "actuator": KindActuator,
	"bus": KindBus, "gateway": KindGateway,
}

var taskKindNames = map[string]TaskKind{
	"functional": KindFunctional, "bist-test": KindBISTTest,
	"bist-data": KindBISTData, "collect": KindCollect,
}

// WriteJSON serializes the specification.
func (s *Specification) WriteJSON(w io.Writer) error {
	out := specJSON{Gateway: string(s.Gateway)}
	for _, r := range s.Arch.Resources() {
		out.Resources = append(out.Resources, resourceJSON{
			ID: string(r.ID), Kind: r.Kind.String(), Cost: r.Cost,
			MemCostPerKB: r.MemCostPerKB, MemCapBytes: r.MemCapBytes,
			BISTCost: r.BISTCost, BISTCapable: r.BISTCapable, BitRate: r.BitRate,
		})
		for _, n := range s.Arch.Neighbors(r.ID) {
			if r.ID < n { // emit each undirected edge once
				out.Links = append(out.Links, [2]string{string(r.ID), string(n)})
			}
		}
	}
	for _, t := range s.App.Tasks() {
		out.Tasks = append(out.Tasks, taskJSON{
			ID: string(t.ID), Kind: t.Kind.String(), MemBytes: t.MemBytes,
			WCETms: t.WCETms, Coverage: t.Coverage,
			TestedECU: string(t.TestedECU), Profile: t.Profile,
		})
	}
	for _, m := range s.App.Messages() {
		dst := make([]string, len(m.Dst))
		for i, d := range m.Dst {
			dst[i] = string(d)
		}
		out.Messages = append(out.Messages, messageJSON{
			ID: string(m.ID), Src: string(m.Src), Dst: dst,
			SizeBytes: m.SizeBytes, PeriodMS: m.PeriodMS, Priority: m.Priority,
		})
	}
	for _, m := range s.Mappings() {
		out.Mappings = append(out.Mappings, mappingJSON{Task: string(m.Task), Resource: string(m.Resource)})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadJSON parses a specification and validates it.
func ReadJSON(r io.Reader) (*Specification, error) {
	var in specJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("model: parse spec: %w", err)
	}
	arch := NewArchitectureGraph()
	for _, rj := range in.Resources {
		kind, ok := resourceKindNames[rj.Kind]
		if !ok {
			return nil, fmt.Errorf("model: resource %q: unknown kind %q", rj.ID, rj.Kind)
		}
		if err := arch.AddResource(&Resource{
			ID: ResourceID(rj.ID), Kind: kind, Cost: rj.Cost,
			MemCostPerKB: rj.MemCostPerKB, MemCapBytes: rj.MemCapBytes,
			BISTCost: rj.BISTCost, BISTCapable: rj.BISTCapable, BitRate: rj.BitRate,
		}); err != nil {
			return nil, err
		}
	}
	for _, l := range in.Links {
		if err := arch.Connect(ResourceID(l[0]), ResourceID(l[1])); err != nil {
			return nil, err
		}
	}
	app := NewApplicationGraph()
	for _, tj := range in.Tasks {
		kind, ok := taskKindNames[tj.Kind]
		if !ok {
			return nil, fmt.Errorf("model: task %q: unknown kind %q", tj.ID, tj.Kind)
		}
		if err := app.AddTask(&Task{
			ID: TaskID(tj.ID), Kind: kind, MemBytes: tj.MemBytes, WCETms: tj.WCETms,
			Coverage: tj.Coverage, TestedECU: ResourceID(tj.TestedECU), Profile: tj.Profile,
		}); err != nil {
			return nil, err
		}
	}
	for _, mj := range in.Messages {
		dst := make([]TaskID, len(mj.Dst))
		for i, d := range mj.Dst {
			dst[i] = TaskID(d)
		}
		if err := app.AddMessage(&Message{
			ID: MessageID(mj.ID), Src: TaskID(mj.Src), Dst: dst,
			SizeBytes: mj.SizeBytes, PeriodMS: mj.PeriodMS, Priority: mj.Priority,
		}); err != nil {
			return nil, err
		}
	}
	spec := NewSpecification(app, arch)
	spec.Gateway = ResourceID(in.Gateway)
	for _, mj := range in.Mappings {
		if err := spec.AddMapping(TaskID(mj.Task), ResourceID(mj.Resource)); err != nil {
			return nil, err
		}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return spec, nil
}
