// Package model defines the holistic system model of the paper
// (Section III-A): a bipartite application graph g_T of tasks and
// messages, an architecture graph g_A of resources, and a set M of
// mapping edges. An Implementation x = (A, B, W) — allocation, binding,
// routing — is one point of the design space.
//
// The model follows the graph-based specification g_S(g_T, g_A, M) of
// Lukasiewycz et al. (DATE'09), extended with diagnostic tasks: per-ECU
// BIST test tasks b^T, BIST data tasks b^D, the mandatory fail-data
// collection task b^R on the gateway, and the messages c^D, c^R between
// them.
package model

import "fmt"

// TaskID identifies a task vertex t in T.
type TaskID string

// MessageID identifies a communication vertex c in C.
type MessageID string

// ResourceID identifies a resource vertex r in R.
type ResourceID string

// TaskKind distinguishes functional tasks F and the three diagnostic
// task roles D introduced by the paper.
type TaskKind int

const (
	// KindFunctional marks a regular application task t in F.
	KindFunctional TaskKind = iota
	// KindBISTTest marks a BIST test application task b^T in B ⊂ D.
	KindBISTTest
	// KindBISTData marks a BIST data storage task b^D in D holding the
	// encoded deterministic test data and the response data.
	KindBISTData
	// KindCollect marks the mandatory fail-data collection task b^R in F
	// that gathers the reported failures of all ECUs at the gateway.
	KindCollect
)

// String returns a short mnemonic for the task kind.
func (k TaskKind) String() string {
	switch k {
	case KindFunctional:
		return "functional"
	case KindBISTTest:
		return "bist-test"
	case KindBISTData:
		return "bist-data"
	case KindCollect:
		return "collect"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// Diagnostic reports whether the kind belongs to the diagnostic task set
// D ⊂ T. The collection task b^R is mandatory and therefore part of F.
func (k TaskKind) Diagnostic() bool {
	return k == KindBISTTest || k == KindBISTData
}

// Task is a vertex t ∈ T of the application graph.
type Task struct {
	ID   TaskID
	Kind TaskKind

	// MemBytes is the permanent memory footprint of the task on the
	// resource it is bound to. For a BIST data task b^D this is the size
	// s(b^D) of the encoded deterministic test data plus response data.
	MemBytes int64

	// WCETms is the worst-case execution time of the task in
	// milliseconds. For a BIST test task b^T this is the session runtime
	// l(b^T) including the state-restore procedure.
	WCETms float64

	// Coverage is the stuck-at fault coverage c(b^T) in [0,1] achieved by
	// a BIST test task. Zero for non-test tasks.
	Coverage float64

	// TestedECU names the ECU whose CUT a BIST test task b^T exercises
	// (also set on the matching b^D). Empty for functional tasks.
	TestedECU ResourceID

	// Profile is the BIST profile number (1-based, per paper Table I)
	// this task was derived from. Zero for non-diagnostic tasks.
	Profile int
}

// Message is a communication vertex c ∈ C of the bipartite application
// graph. Each message has exactly one sending task and one or more
// receiving tasks.
type Message struct {
	ID        MessageID
	Src       TaskID
	Dst       []TaskID
	SizeBytes int64   // payload size s(c)
	PeriodMS  float64 // period p(c)
	Priority  int     // relative bus priority; lower value = higher priority
}

// ResourceKind partitions the architecture graph vertices.
type ResourceKind int

const (
	// KindECU is an electronic control unit with a processor and memory.
	KindECU ResourceKind = iota
	// KindSensor is a smart sensor node.
	KindSensor
	// KindActuator is a smart actuator node.
	KindActuator
	// KindBus is a broadcast field bus (CAN in the case study).
	KindBus
	// KindGateway is the central gateway storing fail data and optionally
	// centralized test patterns.
	KindGateway
)

// String returns a short mnemonic for the resource kind.
func (k ResourceKind) String() string {
	switch k {
	case KindECU:
		return "ecu"
	case KindSensor:
		return "sensor"
	case KindActuator:
		return "actuator"
	case KindBus:
		return "bus"
	case KindGateway:
		return "gateway"
	default:
		return fmt.Sprintf("ResourceKind(%d)", int(k))
	}
}

// Resource is a vertex r ∈ R of the architecture graph.
type Resource struct {
	ID   ResourceID
	Kind ResourceKind

	// Cost is the monetary cost of allocating the resource.
	Cost float64

	// MemCostPerKB is the monetary cost of one kibibyte of permanent
	// memory on this resource, used to price stored BIST data.
	MemCostPerKB float64

	// MemCapBytes bounds the permanent memory available for mapped
	// tasks. Zero means unbounded.
	MemCapBytes int64

	// BISTCost is the additional cost of choosing the BIST-capable
	// variant of the resource. Charged once iff a BIST test task is
	// bound to the resource.
	BISTCost float64

	// BISTCapable reports whether a BIST-capable variant of this
	// resource exists at all.
	BISTCapable bool

	// BitRate is the bus bit rate in bit/s. Only meaningful for buses.
	BitRate float64
}

// Mapping is a mapping edge m = (t, r) ∈ M indicating that task t may be
// bound to resource r.
type Mapping struct {
	Task     TaskID
	Resource ResourceID
}

// String renders the mapping edge as "t->r".
func (m Mapping) String() string { return string(m.Task) + "->" + string(m.Resource) }
