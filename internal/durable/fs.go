// Package durable gives the fleet service crash-safe persistence: a
// length-prefixed CRC-32-framed write-ahead log of committed sessions
// plus periodic atomic snapshots of the aggregated shard state, behind
// an injectable filesystem so the recovery paths — torn final frame,
// short write, fsync error, disk full — are driven deterministically
// by tests instead of waiting for real disks to fail.
//
// The contract is ack-durability: an Append that returns a nil error
// has fsynced the frame, so a record acknowledged to its sender
// survives any subsequent crash. Recovery loads the newest valid
// snapshot and replays the WAL tail above it, truncating the log at
// the first torn or corrupt frame — everything acked is replayed,
// everything after the tear was never acked and the sender re-delivers
// it over the gateway's retry path. A persistent write failure flips
// the store into a sticky degraded read-only mode (ErrStorageDegraded)
// instead of crashing the process.
package durable

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// File is the subset of *os.File the store needs. Writes are
// append-only; Sync makes everything written so far crash-durable.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	Sync() error
}

// FS abstracts the filesystem under the store. OSFS is the production
// implementation; MemFS is the in-memory fault-injection double used
// by the recovery tests.
type FS interface {
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// ReadDir lists the base names in dir, sorted.
	ReadDir(dir string) ([]string, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	// Truncate cuts name to size bytes — the torn-frame repair.
	Truncate(name string, size int64) error
	// SyncDir makes directory-level operations (create, rename, remove)
	// in dir crash-durable.
	SyncDir(dir string) error
}

// OSFS is the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (OSFS) Create(name string) (File, error) { return os.Create(name) }

func (OSFS) Open(name string) (File, error) { return os.Open(name) }

func (OSFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (OSFS) Remove(name string) error { return os.Remove(name) }

func (OSFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (OSFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// ShortWrite, returned from a MemFS fault hook, makes the faulted
// write persist only N bytes before failing with Err — a torn write.
type ShortWrite struct {
	N   int
	Err error
}

func (e *ShortWrite) Error() string { return fmt.Sprintf("short write (%d bytes): %v", e.N, e.Err) }

func (e *ShortWrite) Unwrap() error { return e.Err }

// MemFS is an in-memory FS with fault injection and crash simulation.
// Files remember how much of their content has been fsynced, so Crash
// can revert each file to its durable prefix plus a seeded partial
// tail — the state a real disk may expose after power loss.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile

	// Fault, when non-nil, is consulted before every mutating
	// operation with the operation name ("write", "sync", "create",
	// "rename", "remove", "truncate", "syncdir") and the file name.
	// Returning a non-nil error fails the operation; a *ShortWrite
	// error on "write" persists a prefix first.
	Fault func(op, name string) error
}

type memFile struct {
	data   []byte
	synced int // bytes guaranteed to survive Crash
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS { return &MemFS{files: make(map[string]*memFile)} }

func (m *MemFS) fault(op, name string) error {
	if m.Fault != nil {
		return m.Fault(op, name)
	}
	return nil
}

func (m *MemFS) MkdirAll(dir string) error { return nil }

func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.fault("create", name); err != nil {
		return nil, err
	}
	m.files[name] = &memFile{}
	return &memHandle{fs: m, name: name}, nil
}

func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return &memHandle{fs: m, name: name}, nil
}

func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.fault("create", name); err != nil {
		return nil, err
	}
	if m.files[name] == nil {
		m.files[name] = &memFile{}
	}
	return &memHandle{fs: m, name: name}, nil
}

func (m *MemFS) ReadDir(dir string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	prefix := dir + string(filepath.Separator)
	var names []string
	for name := range m.files {
		if filepath.Dir(name) == dir || (dir == "." && filepath.Dir(name) == ".") {
			names = append(names, filepath.Base(name))
		} else if len(name) > len(prefix) && name[:len(prefix)] == prefix {
			names = append(names, name[len(prefix):])
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.fault("rename", oldname); err != nil {
		return err
	}
	f := m.files[oldname]
	if f == nil {
		return &os.PathError{Op: "rename", Path: oldname, Err: os.ErrNotExist}
	}
	delete(m.files, oldname)
	m.files[newname] = f
	return nil
}

func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.fault("remove", name); err != nil {
		return err
	}
	if m.files[name] == nil {
		return &os.PathError{Op: "remove", Path: name, Err: os.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.fault("truncate", name); err != nil {
		return err
	}
	f := m.files[name]
	if f == nil {
		return &os.PathError{Op: "truncate", Path: name, Err: os.ErrNotExist}
	}
	if int(size) < len(f.data) {
		f.data = f.data[:size]
	}
	if f.synced > len(f.data) {
		f.synced = len(f.data)
	}
	return nil
}

func (m *MemFS) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.fault("syncdir", dir)
}

// Crash simulates a process kill plus power cut: every file reverts to
// its fsynced prefix plus a seed-chosen prefix of the unsynced tail —
// the torn-write state recovery must cope with. Handles stay usable
// (tests reopen through the FS anyway).
func (m *MemFS) Crash(seed uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	z := seed
	for _, name := range m.sortedNames() {
		f := m.files[name]
		unsynced := len(f.data) - f.synced
		if unsynced <= 0 {
			continue
		}
		keep := f.synced + int(splitmix(&z)%uint64(unsynced+1))
		f.data = f.data[:keep]
		f.synced = keep
	}
}

// ReadFile returns a copy of name's current content.
func (m *MemFS) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f := m.files[name]
	if f == nil {
		return nil, &os.PathError{Op: "open", Path: name, Err: os.ErrNotExist}
	}
	return append([]byte(nil), f.data...), nil
}

// WriteFile replaces name's content, fully synced — the hook for tests
// that hand-craft corrupt segments and snapshots.
func (m *MemFS) WriteFile(name string, data []byte) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memFile{data: append([]byte(nil), data...), synced: len(data)}
}

func (m *MemFS) sortedNames() []string {
	names := make([]string, 0, len(m.files))
	for n := range m.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func splitmix(z *uint64) uint64 {
	*z += 0x9E3779B97F4A7C15
	x := *z
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

type memHandle struct {
	fs   *MemFS
	name string
	pos  int
}

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f := h.fs.files[h.name]
	if f == nil {
		return 0, &os.PathError{Op: "read", Path: h.name, Err: os.ErrNotExist}
	}
	if h.pos >= len(f.data) {
		return 0, io.EOF
	}
	n := copy(p, f.data[h.pos:])
	h.pos += n
	return n, nil
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	f := h.fs.files[h.name]
	if f == nil {
		return 0, &os.PathError{Op: "write", Path: h.name, Err: os.ErrNotExist}
	}
	if err := h.fs.fault("write", h.name); err != nil {
		if sw, ok := err.(*ShortWrite); ok {
			n := sw.N
			if n > len(p) {
				n = len(p)
			}
			f.data = append(f.data, p[:n]...)
			return n, sw.Err
		}
		return 0, err
	}
	f.data = append(f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.fs.fault("sync", h.name); err != nil {
		return err
	}
	if f := h.fs.files[h.name]; f != nil {
		f.synced = len(f.data)
	}
	return nil
}

func (h *memHandle) Close() error { return nil }
