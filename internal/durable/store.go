package durable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrStorageDegraded marks a store whose WAL can no longer accept
// writes (fsync failure, disk full). The condition is sticky: every
// Append fails with it until the process restarts, turning the owning
// service read-only — senders see it as backpressure and fall back to
// their degraded local storage instead of losing acknowledged data to
// a lying log.
var ErrStorageDegraded = errors.New("durable: storage degraded, log is read-only")

// Options configures a Store. FS, State, Restore and Apply are the
// integration seam to the owning service.
type Options struct {
	// FS is the filesystem (default OSFS).
	FS FS

	// SnapshotEvery triggers a snapshot after that many appends since
	// the last one (default 4096; negative disables snapshots entirely,
	// including the one on Close — recovery then replays the whole WAL).
	SnapshotEvery int
	// SnapshotInterval additionally snapshots on a timer when positive.
	SnapshotInterval time.Duration
	// KeepSnapshots retains that many newest snapshots (default 2). WAL
	// segments are pruned only once the OLDEST retained snapshot covers
	// them, so a corrupt newest snapshot never strands the log.
	KeepSnapshots int

	// State captures the owner's committed state for a snapshot,
	// returning the serialized bytes and the highest LSN the capture
	// covers. It must freeze appends for the duration of the call (the
	// fleet server takes every shard lock).
	State func() ([]byte, uint64, error)
	// Restore resets the owner to a snapshot's state.
	Restore func(data []byte) error
	// Apply folds one WAL entry into the owner's state during recovery.
	Apply func(lsn uint64, entry []byte) error

	// OnCommit, when set, runs after each durable append with its LSN —
	// the chaos harness's crash-injection point.
	OnCommit func(lsn uint64)

	// Obs, when non-nil, times wal_append, snapshot and recover stages.
	Obs *obs.Tracer
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SnapshotEvery == 0 {
		o.SnapshotEvery = 4096
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	return o
}

// Recovery describes what Open reconstructed.
type Recovery struct {
	// SnapshotLSN is the LSN covered by the snapshot that seeded the
	// state (0 when recovery started empty).
	SnapshotLSN uint64
	// Entries is the number of WAL entries replayed on top.
	Entries int
	// LastLSN is the highest LSN recovered.
	LastLSN uint64
	// TruncatedBytes counts bytes cut from the log at a torn or corrupt
	// frame; RemovedSegments counts whole segments discarded beyond it.
	TruncatedBytes  int64
	RemovedSegments int
	// SkippedSnapshots counts corrupt snapshots bypassed for an older
	// valid one.
	SkippedSnapshots int
	// Elapsed is the wall time recovery took.
	Elapsed time.Duration
}

// Store is a WAL + snapshot persistence engine. Append is safe for
// concurrent use; concurrent appends share fsyncs (group commit).
type Store struct {
	opts Options
	dir  string

	walMu   sync.Mutex
	bw      *bufio.Writer
	seg     File
	segBase uint64
	nextLSN uint64 // next LSN to assign (walMu)
	syncing bool   // an fsync is in flight (walMu)
	synced  *sync.Cond

	frameBuf []byte // scratch for appendFrame (walMu)

	lastLSN  atomic.Uint64 // highest durably committed LSN
	snapLSN  atomic.Uint64 // LSN covered by the newest installed snapshot
	degraded atomic.Bool
	walErr   error // first fatal WAL error (walMu)

	snapMu sync.Mutex // serializes snapshot writers

	appends   atomic.Uint64
	syncs     atomic.Uint64
	snapshots atomic.Uint64
	snapFails atomic.Uint64

	snapCh    chan struct{}
	stopCh    chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once
	done      sync.WaitGroup
}

// Stats is a point-in-time view of the store's activity counters.
type Stats struct {
	Appends          uint64
	Syncs            uint64
	Snapshots        uint64
	SnapshotFailures uint64
	LastLSN          uint64
	SnapshotLSN      uint64
	Degraded         bool
}

// Open recovers the store in dir (creating it if needed) and leaves it
// ready for appends: the newest valid snapshot is handed to
// opts.Restore, the WAL tail above it is replayed through opts.Apply,
// and the log is truncated at the first torn frame.
func Open(dir string, opts Options) (*Store, Recovery, error) {
	opts = opts.withDefaults()
	s := &Store{
		opts:   opts,
		dir:    dir,
		snapCh: make(chan struct{}, 1),
		stopCh: make(chan struct{}),
	}
	s.synced = sync.NewCond(&s.walMu)
	start := time.Now()
	sp := opts.Obs.Start(obs.StageRecover)
	rec, err := s.recover()
	sp.End()
	if err != nil {
		return nil, rec, err
	}
	rec.Elapsed = time.Since(start)
	return s, rec, nil
}

// Start launches the background snapshot loop. Separate from Open so
// the owner can finish wiring itself (the State callback may read the
// store) before the first asynchronous snapshot can fire. Idempotent.
func (s *Store) Start() {
	s.startOnce.Do(func() {
		s.done.Add(1)
		go s.loop()
	})
}

func (s *Store) path(name string) string { return filepath.Join(s.dir, name) }

// recover scans dir, restores the newest valid snapshot, replays the
// WAL tail, repairs tears, and positions the writer.
func (s *Store) recover() (Recovery, error) {
	var rec Recovery
	fs := s.opts.FS
	if err := fs.MkdirAll(s.dir); err != nil {
		return rec, fmt.Errorf("durable: create dir: %w", err)
	}
	names, err := fs.ReadDir(s.dir)
	if err != nil {
		return rec, fmt.Errorf("durable: list dir: %w", err)
	}
	var segs, snaps []uint64
	for _, name := range names {
		if base, ok := parseSeq(name, segPrefix, segSuffix); ok {
			segs = append(segs, base)
		} else if lsn, ok := parseSeq(name, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, lsn)
		} else {
			// Tmp leftovers from an interrupted snapshot are garbage.
			fs.Remove(s.path(name))
		}
	}

	// Newest valid snapshot wins; corrupt ones fall through to older
	// ones (and ultimately to a full WAL replay from LSN 0).
	for i := len(snaps) - 1; i >= 0; i-- {
		lsn := snaps[i]
		data, err := s.loadSnapshot(lsn)
		if err != nil {
			rec.SkippedSnapshots++
			continue
		}
		if s.opts.Restore != nil {
			if err := s.opts.Restore(data); err != nil {
				return rec, fmt.Errorf("durable: restore snapshot LSN %d: %w", lsn, err)
			}
		}
		rec.SnapshotLSN = lsn
		break
	}
	s.snapLSN.Store(rec.SnapshotLSN)

	// Replay segments in base-LSN order, stopping at the first tear.
	last := rec.SnapshotLSN
	highest := rec.SnapshotLSN
	for i, base := range segs {
		f, err := fs.Open(s.path(segName(base)))
		if err != nil {
			return rec, fmt.Errorf("durable: open segment %d: %w", base, err)
		}
		res, err := replaySegment(f, base, last, func(lsn uint64, entry []byte) error {
			rec.Entries++
			if s.opts.Apply != nil {
				return s.opts.Apply(lsn, entry)
			}
			return nil
		})
		f.Close()
		if err != nil {
			return rec, err
		}
		if res.lastLSN > highest {
			highest = res.lastLSN
		}
		if res.torn {
			rec.TruncatedBytes += res.tornBytes
			name := s.path(segName(base))
			if res.validBytes == 0 {
				if err := fs.Remove(name); err != nil {
					return rec, fmt.Errorf("durable: drop torn segment %d: %w", base, err)
				}
				rec.RemovedSegments++
			} else if err := fs.Truncate(name, res.validBytes); err != nil {
				return rec, fmt.Errorf("durable: truncate torn segment %d: %w", base, err)
			}
			for _, later := range segs[i+1:] {
				if err := fs.Remove(s.path(segName(later))); err != nil {
					return rec, fmt.Errorf("durable: drop segment %d past tear: %w", later, err)
				}
				rec.RemovedSegments++
			}
			break
		}
		if res.lastLSN > last {
			last = res.lastLSN
		}
	}
	rec.LastLSN = highest
	if rec.SnapshotLSN > rec.LastLSN {
		rec.LastLSN = rec.SnapshotLSN
	}
	s.lastLSN.Store(rec.LastLSN)
	s.nextLSN = rec.LastLSN + 1

	// Open a fresh segment for the tail. Appending to a repaired
	// segment would be fine too, but a clean cut keeps the
	// base-LSN-names-the-first-frame invariant trivially true.
	if err := s.openSegment(s.nextLSN); err != nil {
		return rec, err
	}
	if err := fs.SyncDir(s.dir); err != nil {
		return rec, fmt.Errorf("durable: sync dir: %w", err)
	}
	return rec, nil
}

// openSegment creates and syncs a new WAL segment (walMu not required:
// only recovery and rotation call it, both serialized).
func (s *Store) openSegment(base uint64) error {
	f, err := s.opts.FS.Create(s.path(segName(base)))
	if err != nil {
		return fmt.Errorf("durable: create segment %d: %w", base, err)
	}
	if _, err := f.Write(segmentHeader(base)); err != nil {
		f.Close()
		return fmt.Errorf("durable: write segment header %d: %w", base, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: sync segment header %d: %w", base, err)
	}
	if s.seg != nil {
		s.seg.Close()
	}
	s.seg = f
	s.segBase = base
	s.bw = bufio.NewWriterSize(f, 1<<16)
	return nil
}

// Append assigns the next LSN to entry, writes its frame, and returns
// once the frame is fsynced — the ack-durability point. Concurrent
// appenders coalesce onto one fsync (group commit). On a degraded
// store it fails fast with ErrStorageDegraded.
func (s *Store) Append(entry []byte) (uint64, error) {
	if s.degraded.Load() {
		return 0, s.degradedErr()
	}
	sp := s.opts.Obs.Start(obs.StageWALAppend)
	defer sp.End()

	s.walMu.Lock()
	if s.walErr != nil {
		err := s.degradedErrLocked()
		s.walMu.Unlock()
		return 0, err
	}
	lsn := s.nextLSN
	s.nextLSN++
	s.frameBuf = appendFrame(s.frameBuf[:0], lsn, entry)
	if _, err := s.bw.Write(s.frameBuf); err != nil {
		s.failLocked(err)
		err = s.degradedErrLocked()
		s.walMu.Unlock()
		return 0, err
	}
	s.appends.Add(1)

	// Group commit: wait for an in-flight fsync to finish (it may not
	// cover our frame), then either our frame is already durable or we
	// run the fsync for everything buffered so far.
	for s.syncing {
		s.synced.Wait()
		if s.walErr != nil {
			err := s.degradedErrLocked()
			s.walMu.Unlock()
			return 0, err
		}
		if s.lastLSN.Load() >= lsn {
			s.walMu.Unlock()
			s.finishCommit(lsn)
			return lsn, nil
		}
	}
	s.syncing = true
	syncTo := s.nextLSN - 1
	if err := s.bw.Flush(); err != nil {
		s.failLocked(err)
		s.syncing = false
		s.synced.Broadcast()
		err = s.degradedErrLocked()
		s.walMu.Unlock()
		return 0, err
	}
	seg := s.seg
	s.walMu.Unlock()

	serr := seg.Sync()

	s.walMu.Lock()
	s.syncing = false
	if serr != nil {
		s.failLocked(serr)
		s.synced.Broadcast()
		err := s.degradedErrLocked()
		s.walMu.Unlock()
		return 0, err
	}
	s.syncs.Add(1)
	if syncTo > s.lastLSN.Load() {
		s.lastLSN.Store(syncTo)
	}
	s.synced.Broadcast()
	s.walMu.Unlock()
	s.finishCommit(lsn)
	return lsn, nil
}

// finishCommit runs the post-durability hooks for one committed LSN.
func (s *Store) finishCommit(lsn uint64) {
	if s.opts.OnCommit != nil {
		s.opts.OnCommit(lsn)
	}
	if s.opts.SnapshotEvery > 0 && lsn-s.snapLSN.Load() >= uint64(s.opts.SnapshotEvery) {
		select {
		case s.snapCh <- struct{}{}:
		default:
		}
	}
}

// failLocked records the first fatal WAL error and flips the store
// into sticky degraded mode. Callers hold walMu.
func (s *Store) failLocked(err error) {
	if s.walErr == nil {
		s.walErr = err
	}
	s.degraded.Store(true)
}

func (s *Store) degradedErr() error {
	s.walMu.Lock()
	cause := s.walErr
	s.walMu.Unlock()
	if cause != nil {
		return fmt.Errorf("%w: %v", ErrStorageDegraded, cause)
	}
	return ErrStorageDegraded
}

// Degraded reports whether the store has turned read-only.
func (s *Store) Degraded() bool { return s.degraded.Load() }

// LastLSN returns the highest durably committed LSN.
func (s *Store) LastLSN() uint64 { return s.lastLSN.Load() }

// StatsSnapshot returns the activity counters.
func (s *Store) StatsSnapshot() Stats {
	return Stats{
		Appends:          s.appends.Load(),
		Syncs:            s.syncs.Load(),
		Snapshots:        s.snapshots.Load(),
		SnapshotFailures: s.snapFails.Load(),
		LastLSN:          s.lastLSN.Load(),
		SnapshotLSN:      s.snapLSN.Load(),
		Degraded:         s.degraded.Load(),
	}
}

// RegisterMetrics exposes the store on reg.
func (s *Store) RegisterMetrics(reg *obs.Registry) {
	reg.CounterFunc("durable_wal_appends_total", "WAL entries appended",
		func() float64 { return float64(s.appends.Load()) })
	reg.CounterFunc("durable_wal_syncs_total", "WAL fsyncs (group commits)",
		func() float64 { return float64(s.syncs.Load()) })
	reg.CounterFunc("durable_snapshots_total", "state snapshots installed",
		func() float64 { return float64(s.snapshots.Load()) })
	reg.CounterFunc("durable_snapshot_failures_total", "snapshot attempts that failed",
		func() float64 { return float64(s.snapFails.Load()) })
	reg.GaugeFunc("durable_wal_last_lsn", "highest durably committed LSN",
		func() float64 { return float64(s.lastLSN.Load()) })
	reg.GaugeFunc("durable_snapshot_lsn", "LSN covered by the newest snapshot",
		func() float64 { return float64(s.snapLSN.Load()) })
}

// loop services snapshot triggers until Close.
func (s *Store) loop() {
	defer s.done.Done()
	var tick <-chan time.Time
	if s.opts.SnapshotInterval > 0 {
		t := time.NewTicker(s.opts.SnapshotInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.stopCh:
			return
		case <-s.snapCh:
		case <-tick:
		}
		s.Snapshot()
	}
}

// Snapshot captures the owner's state and installs it atomically
// (write temp, fsync, rename, sync dir), then rotates the WAL and
// prunes segments the oldest retained snapshot covers. Failures are
// counted but non-fatal: the WAL alone still recovers everything.
func (s *Store) Snapshot() error {
	if s.opts.SnapshotEvery < 0 || s.opts.State == nil {
		return nil
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	sp := s.opts.Obs.Start(obs.StageSnapshot)
	defer sp.End()

	data, lsn, err := s.opts.State()
	if err != nil {
		s.snapFails.Add(1)
		return fmt.Errorf("durable: capture state: %w", err)
	}
	if lsn <= s.snapLSN.Load() && s.snapLSN.Load() > 0 {
		return nil // nothing committed since the last snapshot
	}
	fs := s.opts.FS
	tmp := s.path(snapName(lsn) + tmpSuffix)
	if err := s.writeSnapshot(tmp, lsn, data); err != nil {
		s.snapFails.Add(1)
		fs.Remove(tmp)
		return err
	}
	if err := fs.Rename(tmp, s.path(snapName(lsn))); err != nil {
		s.snapFails.Add(1)
		return fmt.Errorf("durable: install snapshot: %w", err)
	}
	if err := fs.SyncDir(s.dir); err != nil {
		s.snapFails.Add(1)
		return fmt.Errorf("durable: sync dir: %w", err)
	}
	s.snapLSN.Store(lsn)
	s.snapshots.Add(1)
	s.gc()
	return nil
}

func (s *Store) writeSnapshot(name string, lsn uint64, data []byte) error {
	f, err := s.opts.FS.Create(name)
	if err != nil {
		return fmt.Errorf("durable: create snapshot: %w", err)
	}
	hdr := make([]byte, 0, len(snapMagic)+16)
	hdr = append(hdr, snapMagic...)
	hdr = binary.LittleEndian.AppendUint64(hdr, lsn)
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(data)))
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(data))
	if _, err := f.Write(hdr); err == nil {
		_, err = f.Write(data)
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("durable: write snapshot: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("durable: sync snapshot: %w", err)
	}
	return f.Close()
}

// loadSnapshot reads and validates one snapshot file.
func (s *Store) loadSnapshot(lsn uint64) ([]byte, error) {
	f, err := s.opts.FS.Open(s.path(snapName(lsn)))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	raw, err := io.ReadAll(f)
	if err != nil {
		return nil, err
	}
	hlen := len(snapMagic) + 16
	if len(raw) < hlen || string(raw[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("durable: snapshot %d: bad header", lsn)
	}
	if got := binary.LittleEndian.Uint64(raw[len(snapMagic):]); got != lsn {
		return nil, fmt.Errorf("durable: snapshot %d: header names LSN %d", lsn, got)
	}
	n := binary.LittleEndian.Uint32(raw[len(snapMagic)+8:])
	crc := binary.LittleEndian.Uint32(raw[len(snapMagic)+12:])
	data := raw[hlen:]
	if uint32(len(data)) != n || crc32.ChecksumIEEE(data) != crc {
		return nil, fmt.Errorf("durable: snapshot %d: truncated or corrupt body", lsn)
	}
	return data, nil
}

// gc rotates the WAL onto a fresh segment and removes snapshots and
// segments made redundant by the retention policy. Best-effort.
func (s *Store) gc() {
	fs := s.opts.FS

	// Rotate so the just-snapshotted history can be pruned out from
	// under an otherwise ever-growing active segment.
	s.walMu.Lock()
	if s.seg != nil && s.walErr == nil && s.nextLSN > s.segBase {
		if err := s.bw.Flush(); err == nil {
			if err := s.seg.Sync(); err == nil {
				if err := s.openSegment(s.nextLSN); err != nil {
					s.failLocked(err)
				}
			} else {
				s.failLocked(err)
			}
		} else {
			s.failLocked(err)
		}
	}
	s.walMu.Unlock()

	names, err := fs.ReadDir(s.dir)
	if err != nil {
		return
	}
	var segs, snaps []uint64
	for _, name := range names {
		if base, ok := parseSeq(name, segPrefix, segSuffix); ok {
			segs = append(segs, base)
		} else if lsn, ok := parseSeq(name, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, lsn)
		}
	}
	for len(snaps) > s.opts.KeepSnapshots {
		fs.Remove(s.path(snapName(snaps[0])))
		snaps = snaps[1:]
	}
	if len(snaps) == 0 {
		return
	}
	// A segment is dead once the next segment starts at or below the
	// oldest retained snapshot's cover — every frame in it is then
	// reflected in all snapshots we may fall back to.
	cover := snaps[0]
	for len(segs) >= 2 && segs[1] <= cover+1 {
		fs.Remove(s.path(segName(segs[0])))
		segs = segs[1:]
	}
	fs.SyncDir(s.dir)
}

// Kill abandons the store without flushing, syncing, or snapshotting —
// the crash-simulation hook for tests (a real SIGKILL needs no call at
// all). Unsynced buffered frames are lost, exactly as they would be to
// the page cache.
func (s *Store) Kill() {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.done.Wait()
	s.walMu.Lock()
	s.failLocked(errors.New("durable: store killed"))
	if s.seg != nil {
		s.seg.Close()
		s.seg = nil
	}
	s.walMu.Unlock()
}

// Close stops the snapshot loop, writes a final snapshot (unless
// disabled), flushes and closes the WAL. The store is unusable after.
func (s *Store) Close() error {
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.done.Wait()
	var first error
	if !s.degraded.Load() {
		if err := s.Snapshot(); err != nil {
			first = err
		}
	}
	s.walMu.Lock()
	if s.seg != nil && s.walErr == nil {
		err := s.bw.Flush()
		if err == nil {
			err = s.seg.Sync()
		}
		if err != nil && first == nil {
			first = err
		}
	}
	if s.seg != nil {
		s.seg.Close()
		s.seg = nil
		s.bw = nil
	}
	if first == nil && s.walErr != nil {
		first = s.degradedErrLocked()
	}
	// Reject any straggler Append cleanly instead of panicking on the
	// closed writer.
	if s.walErr == nil {
		s.walErr = errors.New("durable: store closed")
	}
	s.degraded.Store(true)
	s.walMu.Unlock()
	return first
}

func (s *Store) degradedErrLocked() error {
	if s.walErr != nil {
		return fmt.Errorf("%w: %v", ErrStorageDegraded, s.walErr)
	}
	return ErrStorageDegraded
}
