package durable

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"strconv"
	"strings"
)

// WAL layout. A segment file is
//
//	magic "EEDWAL1\n" | u64 base LSN | frame*
//
// and each frame is
//
//	u32 payload length | u32 CRC-32 (IEEE) of payload | payload
//	payload = u64 LSN | entry bytes
//
// all little-endian. LSNs are assigned densely from 1; a segment's
// base LSN is the LSN its first frame will carry, and segment files
// are named wal-<base LSN, %020d>.log so a lexicographic directory
// listing is LSN order. A frame whose length prefix runs past EOF or
// whose CRC mismatches is torn: recovery truncates the segment there
// and discards any later segments — by the ack-durability contract
// nothing at or beyond a tear was ever acknowledged.
const (
	walMagic  = "EEDWAL1\n"
	snapMagic = "EEDSNP1\n"

	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
	tmpSuffix  = ".tmp"

	frameHeader = 8        // u32 len + u32 crc
	maxFrame    = 64 << 20 // sanity bound on one frame's payload
)

func segName(base uint64) string { return fmt.Sprintf("%s%020d%s", segPrefix, base, segSuffix) }

func snapName(lsn uint64) string { return fmt.Sprintf("%s%020d%s", snapPrefix, lsn, snapSuffix) }

// parseSeq extracts the LSN from a segment or snapshot base name, or
// ok=false for names that are neither (tmp leftovers, stray files).
func parseSeq(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	mid := name[len(prefix) : len(name)-len(suffix)]
	n, err := strconv.ParseUint(mid, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// appendFrame appends one framed payload (LSN + entry) to buf.
func appendFrame(buf []byte, lsn uint64, entry []byte) []byte {
	payload := 8 + len(entry)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(payload))
	crcAt := len(buf)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // CRC placeholder
	start := len(buf)
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	buf = append(buf, entry...)
	binary.LittleEndian.PutUint32(buf[crcAt:], crc32.ChecksumIEEE(buf[start:]))
	return buf
}

// segmentHeader renders a fresh segment's header.
func segmentHeader(base uint64) []byte {
	buf := make([]byte, 0, len(walMagic)+8)
	buf = append(buf, walMagic...)
	return binary.LittleEndian.AppendUint64(buf, base)
}

// replayResult describes one segment's replay.
type replayResult struct {
	lastLSN    uint64 // highest LSN seen (0 if none)
	validBytes int64  // prefix length holding only whole valid frames
	torn       bool   // a torn/corrupt frame ended the scan before EOF
	tornBytes  int64  // bytes beyond validBytes when torn
}

// replaySegment scans one segment, calling apply(lsn, entry) for every
// valid frame with lsn > fromLSN. Frames must carry densely increasing
// LSNs starting at the segment's base; any violation, CRC mismatch, or
// short read is treated as a tear at that frame's offset. A corrupt
// header is a tear at offset 0. Only apply's errors are returned as
// errors — media-level tears come back in the result.
func replaySegment(f File, base, fromLSN uint64, apply func(lsn uint64, entry []byte) error) (replayResult, error) {
	res := replayResult{}
	br := bufio.NewReaderSize(f, 1<<16)
	var consumed int64
	tear := func() (replayResult, error) {
		rest, _ := io.Copy(io.Discard, br)
		res.torn = true
		res.tornBytes = consumed + rest - res.validBytes
		return res, nil
	}
	head := make([]byte, len(walMagic)+8)
	n, err := io.ReadFull(br, head)
	consumed += int64(n)
	if err != nil || string(head[:len(walMagic)]) != walMagic ||
		binary.LittleEndian.Uint64(head[len(walMagic):]) != base {
		return tear()
	}
	res.validBytes = consumed
	next := base
	var hdr [frameHeader]byte
	payload := make([]byte, 0, 4096)
	for {
		n, err = io.ReadFull(br, hdr[:])
		consumed += int64(n)
		if err == io.EOF {
			return res, nil
		}
		if err != nil {
			return tear()
		}
		plen := binary.LittleEndian.Uint32(hdr[:4])
		if plen < 8 || plen > maxFrame {
			return tear()
		}
		if cap(payload) < int(plen) {
			payload = make([]byte, plen)
		}
		payload = payload[:plen]
		n, err = io.ReadFull(br, payload)
		consumed += int64(n)
		if err != nil {
			return tear()
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:]) {
			return tear()
		}
		lsn := binary.LittleEndian.Uint64(payload[:8])
		if lsn != next {
			return tear()
		}
		if lsn > fromLSN {
			if err := apply(lsn, payload[8:]); err != nil {
				return res, fmt.Errorf("durable: replay LSN %d: %w", lsn, err)
			}
		}
		next = lsn + 1
		res.lastLSN = lsn
		res.validBytes = consumed
	}
}
