package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
)

// logOwner is the minimal state machine the tests persist: an ordered
// list of committed strings, mirroring how the fleet server folds
// committed sessions. Commit (after a successful Append) and Apply
// (replay) must land in the same state.
type logOwner struct {
	mu      sync.Mutex
	entries []string
	lastLSN uint64
}

func (o *logOwner) commit(lsn uint64, entry string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.entries = append(o.entries, entry)
	if lsn > o.lastLSN {
		o.lastLSN = lsn
	}
}

func (o *logOwner) state() ([]byte, uint64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return []byte(strings.Join(o.entries, "\n")), o.lastLSN, nil
}

func (o *logOwner) restore(data []byte) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.entries = nil
	o.lastLSN = 0
	if len(data) > 0 {
		o.entries = strings.Split(string(data), "\n")
	}
	return nil
}

func (o *logOwner) apply(lsn uint64, entry []byte) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.entries = append(o.entries, string(entry))
	o.lastLSN = lsn
	return nil
}

func (o *logOwner) snapshot() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.entries...)
}

func openOwner(t *testing.T, fs FS, dir string, opts Options) (*Store, *logOwner, Recovery) {
	t.Helper()
	o := &logOwner{}
	opts.FS = fs
	opts.State = o.state
	opts.Restore = o.restore
	opts.Apply = o.apply
	st, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st.Start()
	return st, o, rec
}

func wantEntries(t *testing.T, o *logOwner, want []string) {
	t.Helper()
	got := o.snapshot()
	if len(got) != len(want) {
		t.Fatalf("recovered %d entries, want %d\ngot:  %v\nwant: %v", len(got), len(want), got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("entry %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func appendN(t *testing.T, st *Store, o *logOwner, from, n int) []string {
	t.Helper()
	var all []string
	for i := from; i < from+n; i++ {
		e := fmt.Sprintf("entry-%04d", i)
		lsn, err := st.Append([]byte(e))
		if err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
		o.commit(lsn, e)
		all = append(all, e)
	}
	return all
}

func TestRoundTrip(t *testing.T) {
	fs := NewMemFS()
	st, o, rec := openOwner(t, fs, "d", Options{})
	if rec.LastLSN != 0 || rec.Entries != 0 {
		t.Fatalf("fresh open recovered %+v", rec)
	}
	want := appendN(t, st, o, 0, 25)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, o2, rec2 := openOwner(t, fs, "d", Options{})
	defer st2.Close()
	if rec2.LastLSN != 25 {
		t.Fatalf("LastLSN = %d, want 25", rec2.LastLSN)
	}
	// Close wrote a snapshot, so replay should have been cheap.
	if rec2.SnapshotLSN != 25 || rec2.Entries != 0 {
		t.Fatalf("recovery = %+v, want snapshot at 25 with no replay", rec2)
	}
	wantEntries(t, o2, want)
}

func TestWALOnlyRecovery(t *testing.T) {
	fs := NewMemFS()
	st, o, _ := openOwner(t, fs, "d", Options{SnapshotEvery: -1})
	want := appendN(t, st, o, 0, 40)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	st2, o2, rec := openOwner(t, fs, "d", Options{SnapshotEvery: -1})
	defer st2.Close()
	if rec.SnapshotLSN != 0 || rec.Entries != 40 {
		t.Fatalf("recovery = %+v, want 40 replayed from LSN 0", rec)
	}
	wantEntries(t, o2, want)
}

func TestSnapshotPlusTail(t *testing.T) {
	fs := NewMemFS()
	st, o, _ := openOwner(t, fs, "d", Options{SnapshotEvery: 1 << 30})
	want := appendN(t, st, o, 0, 10)
	if err := st.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	appendN(t, st, o, 10, 15)
	want = append(want, o.snapshot()[10:]...)
	// No Close (no final snapshot): simulate a plain kill after the
	// last append's fsync. Recovery = snapshot at 10 + WAL tail.
	st.Kill()
	fs.Crash(1)

	st2, o2, rec := openOwner(t, fs, "d", Options{SnapshotEvery: 1 << 30})
	defer st2.Close()
	if rec.SnapshotLSN != 10 {
		t.Fatalf("SnapshotLSN = %d, want 10 (recovery %+v)", rec.SnapshotLSN, rec)
	}
	if rec.LastLSN != 25 {
		t.Fatalf("LastLSN = %d, want 25 (every append was acked)", rec.LastLSN)
	}
	if rec.Entries != 15 {
		t.Fatalf("replayed %d entries above the snapshot, want 15", rec.Entries)
	}
	wantEntries(t, o2, want)
}

// segmentFiles returns the current segment names, oldest first.
func segmentFiles(t *testing.T, fs *MemFS, dir string) []string {
	t.Helper()
	names, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, n := range names {
		if _, ok := parseSeq(n, segPrefix, segSuffix); ok {
			segs = append(segs, n)
		}
	}
	return segs
}

func TestTornFinalFrame(t *testing.T) {
	for cut := 1; cut <= 12; cut++ {
		t.Run(fmt.Sprintf("cut%d", cut), func(t *testing.T) {
			fs := NewMemFS()
			st, o, _ := openOwner(t, fs, "d", Options{SnapshotEvery: -1})
			want := appendN(t, st, o, 0, 10)
			st.Kill()
			// Tear the final frame: chop `cut` bytes off the active
			// segment — a write that died partway to the platter.
			segs := segmentFiles(t, fs, "d")
			name := "d/" + segs[len(segs)-1]
			raw, err := fs.ReadFile(name)
			if err != nil {
				t.Fatal(err)
			}
			fs.WriteFile(name, raw[:len(raw)-cut])

			st2, o2, rec := openOwner(t, fs, "d", Options{SnapshotEvery: -1})
			defer st2.Close()
			if rec.TruncatedBytes == 0 {
				t.Fatalf("recovery = %+v, want a truncation", rec)
			}
			if rec.LastLSN != 9 || rec.Entries != 9 {
				t.Fatalf("recovery = %+v, want the 9 whole frames", rec)
			}
			wantEntries(t, o2, want[:9])

			// The repaired log accepts appends and survives another cycle.
			lsn, err := st2.Append([]byte("after-tear"))
			if err != nil {
				t.Fatalf("Append after repair: %v", err)
			}
			o2.commit(lsn, "after-tear")
			if lsn != 10 {
				t.Fatalf("append after repair got LSN %d, want 10", lsn)
			}
		})
	}
}

func TestMidLogCorruption(t *testing.T) {
	fs := NewMemFS()
	st, o, _ := openOwner(t, fs, "d", Options{SnapshotEvery: -1})
	want := appendN(t, st, o, 0, 20)
	st.Close()

	// Flip one byte inside an early frame's payload: everything from
	// that frame on is untrusted and must be discarded.
	segs := segmentFiles(t, fs, "d")
	name := "d/" + segs[0]
	raw, _ := fs.ReadFile(name)
	off := len(walMagic) + 8 + frameHeader + 10 // inside frame 1's payload
	raw2 := append([]byte(nil), raw...)
	raw2[off] ^= 0xFF
	fs.WriteFile(name, raw2)

	st2, o2, rec := openOwner(t, fs, "d", Options{SnapshotEvery: -1})
	defer st2.Close()
	if !strings.HasPrefix(want[0], "entry-") {
		t.Fatal("test invariant")
	}
	if rec.LastLSN != 0 || rec.Entries != 0 {
		t.Fatalf("recovery = %+v, want nothing recovered past a first-frame tear", rec)
	}
	wantEntries(t, o2, nil)
	if rec.TruncatedBytes == 0 {
		t.Fatalf("recovery = %+v, want truncated bytes", rec)
	}
}

func TestCorruptNewestSnapshotFallsBack(t *testing.T) {
	fs := NewMemFS()
	st, o, _ := openOwner(t, fs, "d", Options{SnapshotEvery: 1 << 30, KeepSnapshots: 2})
	want := appendN(t, st, o, 0, 10)
	if err := st.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	appendN(t, st, o, 10, 8)
	want = append(want[:10:10], o.snapshot()[10:]...)
	if err := st.Snapshot(); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	st.Kill()
	// Two snapshots should be retained now; corrupt the newest.
	names, _ := fs.ReadDir("d")
	var snaps []string
	for _, n := range names {
		if _, ok := parseSeq(n, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, n)
		}
	}
	if len(snaps) < 2 {
		t.Fatalf("want ≥2 retained snapshots, got %v", snaps)
	}
	newest := "d/" + snaps[len(snaps)-1]
	raw, _ := fs.ReadFile(newest)
	raw[len(raw)-1] ^= 0xFF
	fs.WriteFile(newest, raw)

	st2, o2, rec := openOwner(t, fs, "d", Options{SnapshotEvery: 1 << 30, KeepSnapshots: 2})
	defer st2.Close()
	if rec.SkippedSnapshots != 1 {
		t.Fatalf("SkippedSnapshots = %d, want 1 (recovery %+v)", rec.SkippedSnapshots, rec)
	}
	if rec.LastLSN != 18 {
		t.Fatalf("LastLSN = %d, want 18: the WAL tail must cover the corrupt snapshot", rec.LastLSN)
	}
	wantEntries(t, o2, want)
}

func TestFsyncErrorDegrades(t *testing.T) {
	fs := NewMemFS()
	st, o, _ := openOwner(t, fs, "d", Options{SnapshotEvery: -1})
	appendN(t, st, o, 0, 3)

	fail := errors.New("simulated EIO")
	fs.Fault = func(op, name string) error {
		if op == "sync" && strings.Contains(name, segPrefix) {
			return fail
		}
		return nil
	}
	if _, err := st.Append([]byte("doomed")); !errors.Is(err, ErrStorageDegraded) {
		t.Fatalf("Append under fsync failure = %v, want ErrStorageDegraded", err)
	}
	fs.Fault = nil
	// Sticky: the fault is gone but the store stays read-only.
	if _, err := st.Append([]byte("still-doomed")); !errors.Is(err, ErrStorageDegraded) {
		t.Fatalf("Append after fault cleared = %v, want sticky ErrStorageDegraded", err)
	}
	if !st.Degraded() {
		t.Fatal("Degraded() = false after fsync failure")
	}
	if err := st.Close(); !errors.Is(err, ErrStorageDegraded) {
		t.Fatalf("Close on degraded store = %v, want ErrStorageDegraded", err)
	}

	// Recovery keeps at least the 3 acked entries. The nacked frame's
	// bytes did reach the file (only its fsync failed), so recovery may
	// legitimately replay it too — durable-but-unacknowledged is fine,
	// the resume path then treats it as committed. What it must never
	// do is lose an acked entry or invent one.
	st2, o2, rec := openOwner(t, fs, "d", Options{SnapshotEvery: -1})
	defer st2.Close()
	got := o2.snapshot()
	if len(got) < 3 || len(got) > 4 {
		t.Fatalf("recovered %v, want the 3 acked entries (± the nacked 4th)", got)
	}
	for i, want := range []string{"entry-0000", "entry-0001", "entry-0002"} {
		if got[i] != want {
			t.Fatalf("entry %d = %q, want %q", i, got[i], want)
		}
	}
	if len(got) == 4 && got[3] != "doomed" {
		t.Fatalf("recovered 4th entry %q, want the nacked frame", got[3])
	}
	if rec.LastLSN != uint64(len(got)) {
		t.Fatalf("LastLSN = %d with %d entries", rec.LastLSN, len(got))
	}
}

func TestENOSPCDegradesWithShortWrite(t *testing.T) {
	fs := NewMemFS()
	st, o, _ := openOwner(t, fs, "d", Options{SnapshotEvery: -1})
	appendN(t, st, o, 0, 5)

	// The next flush dies mid-write with 7 bytes on disk — ENOSPC with
	// a torn tail.
	enospc := errors.New("no space left on device")
	fs.Fault = func(op, name string) error {
		if op == "write" && strings.Contains(name, segPrefix) {
			return &ShortWrite{N: 7, Err: enospc}
		}
		return nil
	}
	if _, err := st.Append([]byte("torn")); !errors.Is(err, ErrStorageDegraded) {
		t.Fatalf("Append under ENOSPC = %v, want ErrStorageDegraded", err)
	}
	fs.Fault = nil
	st.Close()

	// Recovery truncates the torn tail and keeps every acked entry.
	st2, o2, rec := openOwner(t, fs, "d", Options{SnapshotEvery: -1})
	defer st2.Close()
	if rec.LastLSN != 5 {
		t.Fatalf("LastLSN = %d, want 5 (recovery %+v)", rec.LastLSN, rec)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatalf("recovery = %+v, want the torn tail truncated", rec)
	}
	wantEntries(t, o2, appendWant(5))
}

func appendWant(n int) []string {
	var w []string
	for i := 0; i < n; i++ {
		w = append(w, fmt.Sprintf("entry-%04d", i))
	}
	return w
}

func TestSeededCrashPoints(t *testing.T) {
	// Crash at seeded points: MemFS.Crash reverts each file to its
	// synced prefix plus a seeded slice of the unsynced tail. Since
	// every Append fsyncs before acking, all acked entries must
	// survive every seed.
	for seed := uint64(1); seed <= 20; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fs := NewMemFS()
			st, o, _ := openOwner(t, fs, "d", Options{SnapshotEvery: 7})
			n := 3 + int(seed*5)%23
			want := appendN(t, st, o, 0, n)
			st.Kill()
			fs.Crash(seed)

			st2, o2, rec := openOwner(t, fs, "d", Options{SnapshotEvery: 7})
			defer st2.Close()
			if rec.LastLSN != uint64(n) {
				t.Fatalf("seed %d: LastLSN = %d, want %d (recovery %+v)", seed, rec.LastLSN, n, rec)
			}
			wantEntries(t, o2, want)
		})
	}
}

func TestSegmentPruning(t *testing.T) {
	fs := NewMemFS()
	st, o, _ := openOwner(t, fs, "d", Options{SnapshotEvery: 4, KeepSnapshots: 2})
	want := appendN(t, st, o, 0, 60)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	names, _ := fs.ReadDir("d")
	var nSnaps, nSegs int
	for _, n := range names {
		if _, ok := parseSeq(n, snapPrefix, snapSuffix); ok {
			nSnaps++
		}
		if _, ok := parseSeq(n, segPrefix, segSuffix); ok {
			nSegs++
		}
	}
	if nSnaps > 2 {
		t.Fatalf("%d snapshots retained, want ≤2 (%v)", nSnaps, names)
	}
	// Every segment below the oldest retained snapshot's cover is gone:
	// with snapshots every ~4 commits over 60, old segments must have
	// been pruned well below the naive count.
	if nSegs > 4 {
		t.Fatalf("%d segments retained, want aggressive pruning (%v)", nSegs, names)
	}

	st2, o2, _ := openOwner(t, fs, "d", Options{SnapshotEvery: 4, KeepSnapshots: 2})
	defer st2.Close()
	wantEntries(t, o2, want)
}

func TestConcurrentAppends(t *testing.T) {
	fs := NewMemFS()
	st, o, _ := openOwner(t, fs, "d", Options{SnapshotEvery: 32})
	const (
		workers = 8
		each    = 40
	)
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				e := fmt.Sprintf("w%d-%03d", w, i)
				lsn, err := st.Append([]byte(e))
				if err != nil {
					errs[w] = err
					return
				}
				o.commit(lsn, e)
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
	}
	if got := st.LastLSN(); got != workers*each {
		t.Fatalf("LastLSN = %d, want %d", got, workers*each)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, o2, rec := openOwner(t, fs, "d", Options{SnapshotEvery: 32})
	defer st2.Close()
	if rec.LastLSN != workers*each {
		t.Fatalf("recovered LastLSN = %d, want %d", rec.LastLSN, workers*each)
	}
	// Commit order is racy across workers but replay must match the
	// multiset the owner committed (it folds in LSN order).
	got := o2.snapshot()
	committed := o.snapshot()
	if len(got) != len(committed) {
		t.Fatalf("recovered %d entries, committed %d", len(got), len(committed))
	}
	seen := map[string]int{}
	for _, e := range committed {
		seen[e]++
	}
	for _, e := range got {
		seen[e]--
		if seen[e] < 0 {
			t.Fatalf("recovered entry %q not committed (or double-counted)", e)
		}
	}
}

func TestOnCommitHook(t *testing.T) {
	fs := NewMemFS()
	o := &logOwner{}
	var hooked []uint64
	st, _, err := Open("d", Options{
		FS: fs, State: o.state, Restore: o.restore, Apply: o.apply,
		SnapshotEvery: -1,
		OnCommit:      func(lsn uint64) { hooked = append(hooked, lsn) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 4; i++ {
		if _, err := st.Append([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if len(hooked) != 4 || hooked[3] != 4 {
		t.Fatalf("OnCommit saw %v, want [1 2 3 4]", hooked)
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir() + "/data"
	o := &logOwner{}
	st, _, err := Open(dir, Options{State: o.state, Restore: o.restore, Apply: o.apply, SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, st, o, 0, 20)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	o2 := &logOwner{}
	st2, rec, err := Open(dir, Options{State: o2.state, Restore: o2.restore, Apply: o2.apply, SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if rec.LastLSN != 20 {
		t.Fatalf("LastLSN = %d, want 20", rec.LastLSN)
	}
	wantEntries(t, o2, want)

	// A hand-torn tail on the real filesystem heals the same way.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	st2.Close()
	var seg string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), segPrefix) && strings.HasSuffix(e.Name(), segSuffix) {
			seg = dir + "/" + e.Name()
		}
	}
	if seg == "" {
		t.Fatal("no segment file found")
	}
	raw, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, append(raw, 0xDE, 0xAD), 0o644); err != nil {
		t.Fatal(err)
	}
	o3 := &logOwner{}
	st3, rec3, err := Open(dir, Options{State: o3.state, Restore: o3.restore, Apply: o3.apply, SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if rec3.TruncatedBytes == 0 {
		t.Fatalf("recovery = %+v, want the garbage tail truncated", rec3)
	}
	wantEntries(t, o3, want)
}

func TestFrameCodec(t *testing.T) {
	buf := appendFrame(nil, 7, []byte("payload"))
	if len(buf) != frameHeader+8+7 {
		t.Fatalf("frame length %d", len(buf))
	}
	// Any single-byte flip must be rejected by the CRC.
	for i := frameHeader; i < len(buf); i++ {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0x01
		if bytes.Equal(mut, buf) {
			t.Fatal("mutation did nothing")
		}
	}
}
