package obs

import (
	"context"
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// NewMux returns a mux with the shared diagnostic surface mounted:
// GET /metrics (Prometheus text), /debug/vars (expvar JSON), and the
// /debug/pprof handlers. Callers add their own routes on top.
func NewMux(reg *Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// HTTPServer is a listening HTTP server with the serve/drain lifecycle
// both eedse's progress endpoint and fleetd's API server need: bind,
// serve in the background, shut down with a bounded drain.
type HTTPServer struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}

	mu       sync.Mutex
	serveErr error
}

// Serve binds addr (":0" picks an ephemeral port) and starts serving h
// in a background goroutine.
func Serve(addr string, h http.Handler) (*HTTPServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &HTTPServer{
		ln:   ln,
		srv:  &http.Server{Handler: h},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.mu.Lock()
			s.serveErr = err
			s.mu.Unlock()
		}
	}()
	return s, nil
}

// Addr returns the bound address (with the resolved port).
func (s *HTTPServer) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Shutdown drains in-flight requests for at most timeout, then forces
// the server closed. It returns the drain error or any earlier serve
// error. Safe on a nil receiver and safe to call more than once.
func (s *HTTPServer) Shutdown(timeout time.Duration) error {
	if s == nil {
		return nil
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	err := s.srv.Shutdown(ctx)
	if err != nil {
		s.srv.Close()
	}
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.serveErr != nil {
		return s.serveErr
	}
	return err
}
