package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage identifies one instrumented region of the DSE or fleet
// pipeline.
type Stage uint8

const (
	// DSE pipeline.
	StageDecode     Stage = iota // SAT/greedy decode of one genotype
	StageObjective               // objective evaluation of one decoded architecture
	StageGeneration              // one NSGA-II generation step
	StageMigration               // one island migration epoch (ring exchange)
	StageShardSpawn              // one worker-process spawn within a shard epoch
	StageShardMerge              // read + merge + checkpoint of shard outputs

	// Fleet ingest path.
	StageChunkAccept     // one chunk through Server.IngestChunk
	StageSessionAssembly // session open → record stored
	StageGatewaySession  // one gateway transfer session end to end
	StageBackpressure    // mark: chunk rejected by a capacity limit
	StageDegraded        // mark: session fell back to degraded local storage

	// Durable storage path.
	StageWALAppend // one WAL append through its (group-committed) fsync
	StageSnapshot  // one atomic state snapshot written and installed
	StageRecover   // startup recovery: snapshot load + WAL tail replay

	numStages
)

var stageNames = [numStages]string{
	"decode", "objective", "generation", "migration", "shard_spawn", "shard_merge",
	"chunk_accept", "session_assembly", "gateway_session", "backpressure", "degraded",
	"wal_append", "snapshot", "recover",
}

func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Event is one recorded span or mark, timed against the tracer epoch.
// Dur is zero for marks.
type Event struct {
	Stage  Stage
	Worker int32 // -1 when the caller has no stable worker index
	Start  time.Duration
	Dur    time.Duration
}

// TracerConfig tunes the event buffers. The zero value gives 8 stripes
// of 4096 events with recording off (histograms only).
type TracerConfig struct {
	Stripes   int  // independent event rings (reduce contention across workers)
	BufferCap int  // events per stripe; overflow increments the dropped counter
	Record    bool // buffer events for a flight recorder; metrics are always on
}

type eventStripe struct {
	mu  sync.Mutex
	buf []Event
	_   [32]byte // keep stripes off each other's cache lines
}

// Tracer hands out Spans for the instrumented stages. Ending a span
// feeds a per-stage latency histogram and, when recording, pushes an
// event into a bounded stripe ring. All methods are nil-receiver
// no-ops, so disabled call sites cost one nil check.
type Tracer struct {
	epoch   time.Time
	hist    [numStages]*Histogram
	marks   [numStages]*Counter
	record  bool
	stripes []eventStripe
	cap     int
	rr      atomic.Uint32
	dropped atomic.Uint64
}

// NewTracer builds a tracer registering one duration histogram and one
// event counter per stage on reg (label stage="...").
func NewTracer(reg *Registry, cfg TracerConfig) *Tracer {
	if cfg.Stripes <= 0 {
		cfg.Stripes = 8
	}
	if cfg.BufferCap <= 0 {
		cfg.BufferCap = 4096
	}
	t := &Tracer{
		epoch:   time.Now(),
		record:  cfg.Record,
		stripes: make([]eventStripe, cfg.Stripes),
		cap:     cfg.BufferCap,
	}
	for s := Stage(0); s < numStages; s++ {
		t.hist[s] = reg.HistogramL("obs_stage_duration_seconds", `stage="`+s.String()+`"`,
			"latency distribution of each instrumented pipeline stage", DurationBuckets)
		t.marks[s] = reg.CounterL("obs_stage_events_total", `stage="`+s.String()+`"`,
			"instantaneous events marked per stage")
	}
	reg.CounterFunc("obs_trace_dropped_total", "trace events dropped on ring overflow",
		func() float64 { return float64(t.dropped.Load()) })
	return t
}

// Span is an open timed region. The zero Span (from a nil tracer) is
// inert; End on it does nothing. Spans are plain values — starting and
// ending one allocates nothing.
type Span struct {
	t      *Tracer
	start  time.Time
	worker int32
	stage  Stage
}

// Start opens a span with no worker affinity.
func (t *Tracer) Start(stage Stage) Span {
	return t.StartW(-1, stage)
}

// StartW opens a span attributed to a stable worker index. The index
// only labels the event and picks the buffer stripe — it never affects
// scheduling.
func (t *Tracer) StartW(worker int, stage Stage) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, start: time.Now(), worker: int32(worker), stage: stage}
}

// End closes the span: one histogram observation, plus an event push
// when recording.
func (sp Span) End() {
	if sp.t == nil {
		return
	}
	d := time.Since(sp.start)
	sp.t.hist[sp.stage].Observe(d.Seconds())
	if sp.t.record {
		sp.t.push(Event{Stage: sp.stage, Worker: sp.worker, Start: sp.start.Sub(sp.t.epoch), Dur: d})
	}
}

// ObserveSince records a span for a region whose start was captured
// earlier (e.g. session assembly spanning many chunk calls).
func (t *Tracer) ObserveSince(stage Stage, start time.Time) {
	if t == nil {
		return
	}
	d := time.Since(start)
	t.hist[stage].Observe(d.Seconds())
	if t.record {
		t.push(Event{Stage: stage, Worker: -1, Start: start.Sub(t.epoch), Dur: d})
	}
}

// Mark records an instantaneous event (backpressure, degraded-mode
// transition): one counter bump, plus a zero-duration event when
// recording.
func (t *Tracer) Mark(stage Stage) {
	if t == nil {
		return
	}
	t.marks[stage].Inc()
	if t.record {
		t.push(Event{Stage: stage, Worker: -1, Start: time.Since(t.epoch)})
	}
}

// push appends e to its stripe, dropping the event (and counting the
// drop) when the ring is full between recorder drains. Oldest events
// win: a full buffer means the recorder is behind, and keeping the
// head preserves the earliest unseen history.
func (t *Tracer) push(e Event) {
	idx := e.Worker
	if idx < 0 {
		idx = int32(t.rr.Add(1))
	}
	st := &t.stripes[int(uint32(idx))%len(t.stripes)]
	st.mu.Lock()
	if len(st.buf) >= t.cap {
		st.mu.Unlock()
		t.dropped.Add(1)
		return
	}
	st.buf = append(st.buf, e)
	st.mu.Unlock()
}

// Drain appends all buffered events to dst (clearing the buffers) and
// returns it. Events within one stripe are in completion order; across
// stripes they interleave — consumers sort by Start.
func (t *Tracer) Drain(dst []Event) []Event {
	if t == nil {
		return dst
	}
	for i := range t.stripes {
		st := &t.stripes[i]
		st.mu.Lock()
		dst = append(dst, st.buf...)
		st.buf = st.buf[:0]
		st.mu.Unlock()
	}
	return dst
}

// Dropped returns the total events lost to ring overflow.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Recording reports whether events are buffered for a recorder.
func (t *Tracer) Recording() bool { return t != nil && t.record }
