package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"
)

// TraceFormat and TraceVersion identify the flight-recorder JSONL
// schema; the meta line carries both so cmd/obsdump can validate files.
const (
	TraceFormat  = "eedse-obs-trace"
	TraceVersion = 1
)

// TraceLine is one JSONL record in a flight-recorder file. Type is
// one of "meta", "span", "mark", "metrics", "dropped".
type TraceLine struct {
	Type    string `json:"type"`
	Format  string `json:"format,omitempty"`  // meta
	Version int    `json:"version,omitempty"` // meta
	Wall    string `json:"wall,omitempty"`    // meta: RFC3339Nano wall-clock start

	Stage   string `json:"stage,omitempty"`  // span, mark
	Worker  *int32 `json:"worker,omitempty"` // span
	StartUS int64  `json:"start_us,omitempty"`
	DurUS   int64  `json:"dur_us,omitempty"` // span

	Metrics map[string]any `json:"metrics,omitempty"` // metrics
	Count   uint64         `json:"count,omitempty"`   // dropped
}

// Recorder streams trace events and periodic metric snapshots to a
// JSONL file from a background goroutine. The hot path only ever
// touches the tracer's stripe rings; file IO happens here.
type Recorder struct {
	t        *Tracer
	reg      *Registry
	interval time.Duration
	start    time.Time

	f  *os.File
	bw *bufio.Writer

	mu            sync.Mutex
	scratch       []Event
	err           error
	droppedWrites uint64
	lastDropped   uint64

	stop chan struct{}
	done chan struct{}
}

// NewRecorder opens path, writes the meta line, and starts flushing
// every interval (default 250ms). The tracer should have been built
// with Record: true, otherwise only metric snapshots are written.
func NewRecorder(path string, t *Tracer, reg *Registry, interval time.Duration) (*Recorder, error) {
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	r := &Recorder{
		t:        t,
		reg:      reg,
		interval: interval,
		start:    time.Now(),
		f:        f,
		bw:       bufio.NewWriterSize(f, 1<<16),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	r.writeLine(TraceLine{
		Type:    "meta",
		Format:  TraceFormat,
		Version: TraceVersion,
		Wall:    r.start.Format(time.RFC3339Nano),
	})
	go r.loop()
	return r, nil
}

func (r *Recorder) loop() {
	defer close(r.done)
	tick := time.NewTicker(r.interval)
	defer tick.Stop()
	for {
		select {
		case <-tick.C:
			r.flush()
		case <-r.stop:
			r.flush()
			return
		}
	}
}

// flush drains the tracer rings, appends a metrics line, and spills
// the buffer to disk.
func (r *Recorder) flush() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.scratch = r.t.Drain(r.scratch[:0])
	for i := range r.scratch {
		e := &r.scratch[i]
		line := TraceLine{
			Stage:   e.Stage.String(),
			StartUS: e.Start.Microseconds(),
		}
		if e.Dur > 0 || e.Worker >= 0 {
			line.Type = "span"
			w := e.Worker
			line.Worker = &w
			line.DurUS = e.Dur.Microseconds()
		} else {
			line.Type = "mark"
		}
		r.writeLine(line)
	}
	if d := r.t.Dropped(); d != r.lastDropped {
		r.writeLine(TraceLine{Type: "dropped", Count: d - r.lastDropped})
		r.lastDropped = d
	}
	if r.reg != nil {
		r.writeLine(TraceLine{
			Type:    "metrics",
			StartUS: time.Since(r.start).Microseconds(),
			Metrics: r.reg.Snapshot(),
		})
	}
	// Flush every cycle, not just the final one: a sick disk surfaces
	// as an error within one interval instead of whenever the 64 KiB
	// buffer happens to spill.
	if err := r.bw.Flush(); err != nil && r.err == nil {
		r.err = err
	}
}

// writeLine is called with r.mu held (or before the loop starts). Once
// the stream has failed, further lines are counted as dropped instead
// of written — the trace file ends at the first error rather than
// continuing with holes.
func (r *Recorder) writeLine(l TraceLine) {
	if r.err != nil {
		r.droppedWrites++
		return
	}
	b, err := json.Marshal(l)
	if err == nil {
		_, err = r.bw.Write(append(b, '\n'))
	}
	if err != nil {
		r.err = err
		r.droppedWrites++
	}
}

// DroppedWrites returns the trace lines lost to write failures.
func (r *Recorder) DroppedWrites() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.droppedWrites
}

// Close stops the flush loop, performs a final drain, and closes the
// file. The returned error is terminal: the first failure seen
// anywhere in the stream, annotated with how many trace lines it cost.
func (r *Recorder) Close() error {
	if r == nil {
		return nil
	}
	close(r.stop)
	<-r.done
	r.mu.Lock()
	err := r.err
	dropped := r.droppedWrites
	r.mu.Unlock()
	if cerr := r.f.Close(); err == nil {
		err = cerr
	}
	if err != nil && dropped > 0 {
		return fmt.Errorf("%w (%d trace lines dropped)", err, dropped)
	}
	return err
}
