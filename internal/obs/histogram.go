package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DurationBuckets is the default latency bucket ladder: roughly
// exponential from 1µs to 10s, in seconds. It brackets everything from
// a single SAT decode (~tens of µs) to a full shard epoch (~seconds).
var DurationBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram with lock-free recording:
// per-bucket atomic counts plus a CAS-updated float sum. Snapshots are
// monotone — every bucket count and the total only ever grow. A nil
// *Histogram is a no-op.
type Histogram struct {
	upper  []float64       // ascending upper bounds; +Inf is implicit
	counts []atomic.Uint64 // len(upper)+1; last is the +Inf bucket
	sum    atomic.Uint64   // float64 bits
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic("obs: histogram buckets must be strictly ascending")
		}
	}
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper)+1)}
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: bucket counts are small (~22) and the common values
	// land early; a branch-predicted scan beats binary search here.
	i := 0
	for i < len(h.upper) && v > h.upper[i] {
		i++
	}
	h.counts[i].Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.Observe(d.Seconds())
}

// HistSnapshot is a point-in-time copy of a histogram. Counts are
// per-bucket (not cumulative), with the final entry the +Inf bucket.
type HistSnapshot struct {
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies the current state. Concurrent observers may land
// between bucket reads, so Count can briefly lag the true total, but
// successive snapshots never decrease.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{Counts: make([]uint64, len(h.counts))}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Sum = math.Float64frombits(h.sum.Load())
	return s
}
