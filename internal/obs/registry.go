// Package obs is the unified observability layer: a dependency-free
// metrics registry (atomic counters, gauges, fixed-bucket histograms)
// exposed as Prometheus text and JSON snapshots, span-style stage
// tracing with bounded per-worker event buffers, and a JSONL flight
// recorder for post-mortem analysis.
//
// The package is strictly non-intrusive: nothing here touches RNG
// state or evaluation order, every handle is nil-receiver safe so a
// disabled path costs one nil check, and reads are snapshot-on-read so
// the hot path never takes a lock.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. The zero value is
// ready to use; a nil *Counter is a no-op.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, stored as bits in an
// atomic word. The zero value is ready; a nil *Gauge is a no-op.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

type metricKind uint8

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

func (k metricKind) promType() string {
	switch k {
	case kindCounter, kindCounterFunc:
		return "counter"
	case kindHistogram:
		return "histogram"
	default:
		return "gauge"
	}
}

// metric is one registered sample series: a family name, an optional
// rendered label set, and exactly one backing store.
type metric struct {
	name   string // family name, e.g. obs_stage_duration_seconds
	labels string // rendered labels without braces, e.g. `stage="decode"`; "" for none
	help   string
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // kindCounterFunc / kindGaugeFunc
}

func (m *metric) key() string { return m.name + "{" + m.labels + "}" }

// Registry holds registered metrics. Registration takes a lock;
// recording on the returned handles is lock-free. A nil *Registry
// accepts registrations as no-ops and returns nil handles, so callers
// can thread one pointer through and never branch.
type Registry struct {
	mu       sync.Mutex
	metrics  []*metric
	byKey    map[string]*metric
	families map[string]metricKind
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		byKey:    make(map[string]*metric),
		families: make(map[string]metricKind),
	}
}

// register adds m unless the key already exists, in which case the
// existing metric is returned (callers re-registering the same series
// share the handle). Registering the same family under two different
// kinds is a programming error.
func (r *Registry) register(m *metric) *metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if prev, ok := r.byKey[m.key()]; ok {
		if prev.kind != m.kind {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s (was %s)",
				m.key(), m.kind.promType(), prev.kind.promType()))
		}
		// Func metrics swap the closure so tests and restarts can
		// re-point a series; stored metrics share the handle.
		if m.fn != nil {
			prev.fn = m.fn
		}
		return prev
	}
	if k, ok := r.families[m.name]; ok && k.promType() != m.kind.promType() {
		panic(fmt.Sprintf("obs: family %s mixes %s and %s", m.name, k.promType(), m.kind.promType()))
	}
	r.families[m.name] = m.kind
	r.byKey[m.key()] = m
	r.metrics = append(r.metrics, m)
	return m
}

// Counter registers (or returns the existing) counter series.
func (r *Registry) Counter(name, help string) *Counter {
	return r.CounterL(name, "", help)
}

// CounterL is Counter with a rendered label set (e.g. `stage="decode"`).
func (r *Registry) CounterL(name, labels, help string) *Counter {
	if r == nil {
		return nil
	}
	m := r.register(&metric{name: name, labels: labels, help: help, kind: kindCounter, counter: &Counter{}})
	return m.counter
}

// Gauge registers (or returns the existing) gauge series.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	m := r.register(&metric{name: name, help: help, kind: kindGauge, gauge: &Gauge{}})
	return m.gauge
}

// CounterFunc registers a pull-style counter: fn is called at
// snapshot/scrape time. Use for totals already accounted elsewhere
// (e.g. summed shard counters) to avoid double bookkeeping on the hot
// path.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, kind: kindCounterFunc, fn: fn})
}

// GaugeFunc registers a pull-style gauge.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	if r == nil {
		return
	}
	r.register(&metric{name: name, help: help, kind: kindGaugeFunc, fn: fn})
}

// Histogram registers (or returns the existing) histogram series with
// the given ascending upper bucket bounds (+Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	return r.HistogramL(name, "", help, buckets)
}

// HistogramL is Histogram with a rendered label set.
func (r *Registry) HistogramL(name, labels, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	m := r.register(&metric{name: name, labels: labels, help: help, kind: kindHistogram, hist: newHistogram(buckets)})
	return m.hist
}

// snapshotLocked returns the registered metrics in registration order.
func (r *Registry) snapshot() []*metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*metric, len(r.metrics))
	copy(out, r.metrics)
	return out
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered series in the Prometheus
// text exposition format, families in registration order with one
// HELP/TYPE header each.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	seen := make(map[string]bool)
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, m := range r.snapshot() {
		if !seen[m.name] {
			seen[m.name] = true
			if m.help != "" {
				p("# HELP %s %s\n", m.name, m.help)
			}
			p("# TYPE %s %s\n", m.name, m.kind.promType())
		}
		suffix := ""
		if m.labels != "" {
			suffix = "{" + m.labels + "}"
		}
		switch m.kind {
		case kindCounter:
			p("%s%s %d\n", m.name, suffix, m.counter.Value())
		case kindGauge:
			p("%s%s %s\n", m.name, suffix, formatFloat(m.gauge.Value()))
		case kindCounterFunc, kindGaugeFunc:
			p("%s%s %s\n", m.name, suffix, formatFloat(m.fn()))
		case kindHistogram:
			s := m.hist.Snapshot()
			cum := uint64(0)
			for i, ub := range m.hist.upper {
				cum += s.Counts[i]
				p("%s_bucket%s %d\n", m.name, mergeLabels(m.labels, `le="`+formatFloat(ub)+`"`), cum)
			}
			p("%s_bucket%s %d\n", m.name, mergeLabels(m.labels, `le="+Inf"`), s.Count)
			p("%s_sum%s %s\n", m.name, suffix, formatFloat(s.Sum))
			p("%s_count%s %d\n", m.name, suffix, s.Count)
		}
	}
	return err
}

func mergeLabels(base, extra string) string {
	if base == "" {
		return "{" + extra + "}"
	}
	return "{" + base + "," + extra + "}"
}

// Snapshot returns every series as a JSON-marshalable map keyed by
// name (plus "{labels}" when labeled). Counters render as uint64,
// gauges as float64, histograms as {count, sum, buckets}. Keys are
// sorted by encoding/json on marshal, so snapshots of the same
// registry state are byte-stable.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	out := make(map[string]any)
	for _, m := range r.snapshot() {
		key := m.name
		if m.labels != "" {
			key += "{" + m.labels + "}"
		}
		switch m.kind {
		case kindCounter:
			out[key] = m.counter.Value()
		case kindGauge:
			out[key] = m.gauge.Value()
		case kindCounterFunc, kindGaugeFunc:
			out[key] = m.fn()
		case kindHistogram:
			s := m.hist.Snapshot()
			buckets := make(map[string]uint64, len(s.Counts))
			cum := uint64(0)
			for i, ub := range m.hist.upper {
				cum += s.Counts[i]
				buckets[formatFloat(ub)] = cum
			}
			buckets["+Inf"] = s.Count
			out[key] = map[string]any{"count": s.Count, "sum": s.Sum, "buckets": buckets}
		}
	}
	return out
}

// Names returns the sorted family names — handy for smoke checks.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// expvar.Publish panics on duplicate names, which breaks re-runs
// inside one process (tests, -oneshot loops). PublishExpvar registers
// each name once and swaps the target function on later calls — the
// same pattern cmd/eedse used for its "dse" map.
var (
	expvarMu  sync.Mutex
	expvarFns = map[string]*func() any{}
)

// PublishExpvar exposes fn() under name in the process-wide expvar
// namespace (/debug/vars), replacing any previous target for name.
func PublishExpvar(name string, fn func() any) {
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if p, ok := expvarFns[name]; ok {
		*p = fn
		return
	}
	p := new(func() any)
	*p = fn
	expvarFns[name] = p
	expvar.Publish(name, expvar.Func(func() any {
		expvarMu.Lock()
		f := *p
		expvarMu.Unlock()
		return f()
	}))
}
