package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	// A value equal to an upper bound lands in that bucket (le is
	// inclusive, as in Prometheus).
	for _, v := range []float64{0.5, 1} {
		h.Observe(v)
	}
	h.Observe(1.5)
	h.Observe(4)
	h.Observe(100) // +Inf bucket
	s := h.Snapshot()
	want := []uint64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Errorf("count: got %d want 5", s.Count)
	}
	if got, want := s.Sum, 0.5+1+1.5+4+100; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum: got %v want %v", got, want)
	}
}

func TestHistogramAscendingRequired(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-ascending buckets")
		}
	}()
	newHistogram([]float64{1, 1})
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// (run under -race in CI) and checks nothing is lost.
func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram(DurationBuckets)
	const goroutines, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(g*per+i) * 1e-7)
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Fatalf("count: got %d want %d", s.Count, goroutines*per)
	}
	// Sum of 0..n-1 scaled: n(n-1)/2 * 1e-7.
	n := float64(goroutines * per)
	want := n * (n - 1) / 2 * 1e-7
	if math.Abs(s.Sum-want) > want*1e-9 {
		t.Fatalf("sum: got %v want %v", s.Sum, want)
	}
}

// TestHistogramSnapshotMonotonic interleaves snapshots with a writer:
// per-bucket counts and the total must never decrease.
func TestHistogramSnapshotMonotonic(t *testing.T) {
	h := newHistogram([]float64{1e-6, 1e-3, 1})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 20000; i++ {
			h.Observe(float64(i%3) * 1e-4)
		}
	}()
	var prev HistSnapshot
	for {
		s := h.Snapshot()
		if s.Count < prev.Count {
			t.Fatalf("count went backwards: %d -> %d", prev.Count, s.Count)
		}
		for i := range s.Counts {
			if prev.Counts != nil && s.Counts[i] < prev.Counts[i] {
				t.Fatalf("bucket %d went backwards: %d -> %d", i, prev.Counts[i], s.Counts[i])
			}
		}
		prev = s
		select {
		case <-done:
			return
		default:
		}
	}
}

func TestRegistryPrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_ops_total", "ops so far")
	c.Add(3)
	g := reg.Gauge("test_depth", "queue depth")
	g.Set(2.5)
	reg.GaugeFunc("test_pull", "pulled at scrape", func() float64 { return 7 })
	h := reg.Histogram("test_latency_seconds", "latency", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_ops_total counter",
		"test_ops_total 3",
		"# TYPE test_depth gauge",
		"test_depth 2.5",
		"test_pull 7",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_sum 5.55",
		"test_latency_seconds_count 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistryLabeledFamilies(t *testing.T) {
	reg := NewRegistry()
	a := reg.CounterL("jobs_total", `kind="a"`, "jobs")
	b := reg.CounterL("jobs_total", `kind="b"`, "jobs")
	a.Inc()
	b.Add(2)
	// Re-registering the same series returns the same handle.
	if reg.CounterL("jobs_total", `kind="a"`, "jobs") != a {
		t.Fatal("re-registration returned a new handle")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE jobs_total counter") != 1 {
		t.Errorf("family header should appear once:\n%s", out)
	}
	for _, want := range []string{`jobs_total{kind="a"} 1`, `jobs_total{kind="b"} 2`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total", "").Add(4)
	reg.Gauge("b", "").Set(1.5)
	reg.Histogram("h_seconds", "", []float64{1}).Observe(0.5)
	snap := reg.Snapshot()
	js1, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	js2, _ := json.Marshal(reg.Snapshot())
	if !bytes.Equal(js1, js2) {
		t.Fatalf("snapshot not byte-stable:\n%s\n%s", js1, js2)
	}
	var back map[string]any
	if err := json.Unmarshal(js1, &back); err != nil {
		t.Fatal(err)
	}
	if back["a_total"].(float64) != 4 {
		t.Errorf("a_total: %v", back["a_total"])
	}
}

func TestNilHandlesAreNoOps(t *testing.T) {
	var reg *Registry
	c := reg.Counter("x", "")
	c.Inc()
	reg.Gauge("y", "").Set(1)
	reg.CounterFunc("z", "", nil)
	reg.Histogram("h", "", DurationBuckets).Observe(1)
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Fatal(err)
	}
	if reg.Snapshot() != nil {
		t.Fatal("nil registry snapshot should be nil")
	}

	var tr *Tracer
	sp := tr.StartW(3, StageDecode)
	sp.End()
	tr.Start(StageGeneration).End()
	tr.Mark(StageBackpressure)
	tr.ObserveSince(StageSessionAssembly, time.Now())
	if got := tr.Drain(nil); got != nil {
		t.Fatalf("nil tracer drain: %v", got)
	}
	if tr.Dropped() != 0 || tr.Recording() {
		t.Fatal("nil tracer state")
	}
}

func TestTracerSpansAndDrain(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, TracerConfig{Record: true, Stripes: 2, BufferCap: 16})
	sp := tr.StartW(1, StageDecode)
	sp.End()
	tr.Mark(StageDegraded)
	evs := tr.Drain(nil)
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2: %+v", len(evs), evs)
	}
	var span, mark bool
	for _, e := range evs {
		switch e.Stage {
		case StageDecode:
			span = true
			if e.Worker != 1 {
				t.Errorf("worker: %d", e.Worker)
			}
		case StageDegraded:
			mark = true
			if e.Dur != 0 {
				t.Errorf("mark has duration %v", e.Dur)
			}
		}
	}
	if !span || !mark {
		t.Fatalf("missing events: %+v", evs)
	}
	if evs := tr.Drain(nil); len(evs) != 0 {
		t.Fatalf("drain not empty after drain: %+v", evs)
	}
	// Histogram fed regardless of drain state.
	s := tr.hist[StageDecode].Snapshot()
	if s.Count != 1 {
		t.Fatalf("decode histogram count: %d", s.Count)
	}
}

func TestTracerRingBounded(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, TracerConfig{Record: true, Stripes: 1, BufferCap: 8})
	for i := 0; i < 20; i++ {
		tr.StartW(0, StageDecode).End()
	}
	evs := tr.Drain(nil)
	if len(evs) != 8 {
		t.Fatalf("ring should cap at 8, got %d", len(evs))
	}
	if tr.Dropped() != 12 {
		t.Fatalf("dropped: got %d want 12", tr.Dropped())
	}
}

func TestTracerDisabledRecordingStillMeters(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, TracerConfig{})
	tr.StartW(0, StageObjective).End()
	if evs := tr.Drain(nil); len(evs) != 0 {
		t.Fatalf("recording off but events buffered: %+v", evs)
	}
	if s := tr.hist[StageObjective].Snapshot(); s.Count != 1 {
		t.Fatalf("histogram count: %d", s.Count)
	}
}

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for s := Stage(0); s < numStages; s++ {
		n := s.String()
		if n == "" || n == "unknown" || seen[n] {
			t.Fatalf("stage %d has bad/duplicate name %q", s, n)
		}
		seen[n] = true
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	reg := NewRegistry()
	tr := NewTracer(reg, TracerConfig{Record: true})
	reg.Counter("rt_ops_total", "").Add(9)
	rec, err := NewRecorder(path, tr, reg, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	tr.StartW(2, StageGeneration).End()
	tr.Mark(StageBackpressure)
	time.Sleep(30 * time.Millisecond)
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var types []string
	var meta, span, mark, metrics bool
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		var l TraceLine
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		types = append(types, l.Type)
		switch l.Type {
		case "meta":
			meta = true
			if l.Format != TraceFormat || l.Version != TraceVersion {
				t.Fatalf("meta: %+v", l)
			}
		case "span":
			span = true
			if l.Stage != "generation" || l.Worker == nil || *l.Worker != 2 {
				t.Fatalf("span: %+v", l)
			}
		case "mark":
			mark = true
			if l.Stage != "backpressure" {
				t.Fatalf("mark: %+v", l)
			}
		case "metrics":
			metrics = true
			if l.Metrics["rt_ops_total"].(float64) != 9 {
				t.Fatalf("metrics: %+v", l.Metrics)
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !meta || !span || !mark || !metrics {
		t.Fatalf("missing line types, saw %v", types)
	}
	if types[0] != "meta" {
		t.Fatalf("meta must come first, saw %v", types)
	}
}

func TestServeMuxAndShutdown(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("mux_hits_total", "hits").Add(5)
	PublishExpvar("obs_test_mux", func() any { return map[string]int{"v": 1} })
	mux := NewMux(reg)
	mux.HandleFunc("GET /extra", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "extra-ok")
	})
	srv, err := Serve("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	get := func(path string) string {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: %s", path, resp.Status)
		}
		b, _ := io.ReadAll(resp.Body)
		return string(b)
	}
	if out := get("/metrics"); !strings.Contains(out, "mux_hits_total 5") {
		t.Errorf("/metrics missing counter:\n%s", out)
	}
	if out := get("/debug/vars"); !strings.Contains(out, "obs_test_mux") {
		t.Errorf("/debug/vars missing bridge var:\n%s", out)
	}
	if out := get("/debug/pprof/cmdline"); out == "" {
		t.Error("/debug/pprof/cmdline empty")
	}
	if out := get("/extra"); out != "extra-ok" {
		t.Errorf("extra route: %q", out)
	}
	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Idempotent.
	if err := srv.Shutdown(time.Second); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

func TestPublishExpvarSwapsTarget(t *testing.T) {
	PublishExpvar("obs_test_swap", func() any { return 1 })
	PublishExpvar("obs_test_swap", func() any { return 2 }) // must not panic
}

// TestRecorderWriteFailure: a dying trace file must surface as a
// terminal Close error carrying the dropped-line count, never as a
// silently truncated stream.
func TestRecorderWriteFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	reg := NewRegistry()
	tr := NewTracer(reg, TracerConfig{Record: true})
	rec, err := NewRecorder(path, tr, reg, 5*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	rec.f.Close() // the disk dies under the recorder
	tr.Mark(StageBackpressure)
	time.Sleep(20 * time.Millisecond) // first flush fails, sets the terminal error
	tr.Mark(StageBackpressure)
	time.Sleep(20 * time.Millisecond) // later lines are counted as dropped

	err = rec.Close()
	if err == nil {
		t.Fatal("Close returned nil after write failures")
	}
	if rec.DroppedWrites() == 0 {
		t.Fatal("no dropped writes counted")
	}
	if !strings.Contains(err.Error(), "dropped") {
		t.Fatalf("terminal error does not carry the dropped count: %v", err)
	}
}
