package reseed

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/atpg"
)

func TestBitVecBasics(t *testing.T) {
	v := NewBitVec(130)
	if len(v) != 3 {
		t.Fatalf("words = %d", len(v))
	}
	v.Set(0, true)
	v.Set(64, true)
	v.Set(129, true)
	if !v.Get(0) || !v.Get(64) || !v.Get(129) || v.Get(1) {
		t.Fatal("Get/Set wrong")
	}
	if v.OnesCount() != 3 {
		t.Fatalf("OnesCount = %d", v.OnesCount())
	}
	if v.FirstSet() != 0 {
		t.Fatalf("FirstSet = %d", v.FirstSet())
	}
	v.Set(0, false)
	if v.FirstSet() != 64 {
		t.Fatalf("FirstSet = %d", v.FirstSet())
	}
	c := v.Clone()
	c.Xor(v)
	if !c.IsZero() {
		t.Fatal("x^x != 0")
	}
	if v.IsZero() {
		t.Fatal("clone aliased")
	}
}

func TestDotIsParityOfAnd(t *testing.T) {
	f := func(a, b uint64) bool {
		va := BitVec{a}
		vb := BitVec{b}
		want := false
		for i := 0; i < 64; i++ {
			if va.Get(i) && vb.Get(i) {
				want = !want
			}
		}
		return va.Dot(vb) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGF2SystemSolve(t *testing.T) {
	// x0 ^ x1 = 1; x1 = 1 -> x0 = 0, x1 = 1.
	s := newGF2System(4)
	e1 := NewBitVec(4)
	e1.Set(0, true)
	e1.Set(1, true)
	if !s.add(e1, true) {
		t.Fatal("e1 rejected")
	}
	e2 := NewBitVec(4)
	e2.Set(1, true)
	if !s.add(e2, true) {
		t.Fatal("e2 rejected")
	}
	x := s.solve()
	if x.Get(0) || !x.Get(1) {
		t.Fatalf("x = %v", x)
	}
	if s.rank() != 2 {
		t.Fatalf("rank = %d", s.rank())
	}
	// Redundant consistent equation accepted.
	if !s.add(e2.Clone(), true) {
		t.Fatal("redundant rejected")
	}
	// Inconsistent equation rejected: x1 = 0 contradicts x1 = 1.
	if s.add(e2.Clone(), false) {
		t.Fatal("inconsistency accepted")
	}
}

// TestGF2SystemRandomSolvable builds random consistent systems (from a
// known solution) and checks the solver reproduces a valid solution.
func TestGF2SystemRandomSolvable(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for round := 0; round < 100; round++ {
		width := 8 + rng.Intn(120)
		secret := NewBitVec(width)
		for i := 0; i < width; i++ {
			secret.Set(i, rng.Intn(2) == 1)
		}
		s := newGF2System(width)
		var eqs []row
		for k := 0; k < width*2; k++ {
			c := NewBitVec(width)
			for w := range c {
				c[w] = rng.Uint64()
			}
			if r := width % 64; r != 0 {
				c[len(c)-1] &= (uint64(1) << uint(r)) - 1
			}
			rhs := c.Dot(secret)
			if !s.add(c, rhs) {
				t.Fatalf("round %d: consistent equation rejected", round)
			}
			eqs = append(eqs, row{coeffs: c, rhs: rhs})
		}
		x := s.solve()
		for i, e := range eqs {
			if e.coeffs.Dot(x) != e.rhs {
				t.Fatalf("round %d: equation %d violated by solution", round, i)
			}
		}
	}
}

func TestDecompressorValidation(t *testing.T) {
	if _, err := NewDecompressor(1, 4, 4); err == nil {
		t.Fatal("width 1 accepted")
	}
	if _, err := NewDecompressor(32, 0, 4); err == nil {
		t.Fatal("zero chains accepted")
	}
}

func TestDecompressorExpandMatchesCoefficients(t *testing.T) {
	d, err := NewDecompressor(48, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumCells() != 35 {
		t.Fatalf("cells = %d", d.NumCells())
	}
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 20; round++ {
		seed := NewBitVec(48)
		for i := 0; i < 48; i++ {
			seed.Set(i, rng.Intn(2) == 1)
		}
		pattern := d.Expand(seed)
		for i := range pattern {
			if pattern[i] != d.CellCoefficients(i).Dot(seed) {
				t.Fatalf("cell %d mismatch", i)
			}
		}
	}
}

// TestDecompressorLinearity: expanding seed a XOR seed b equals the
// XOR of the expansions — the property the whole encoding rests on.
func TestDecompressorLinearity(t *testing.T) {
	d, err := NewDecompressor(64, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint64) bool {
		sa, sb, sab := BitVec{a}, BitVec{b}, BitVec{a ^ b}
		pa, pb, pab := d.Expand(sa), d.Expand(sb), d.Expand(sab)
		for i := range pa {
			if pab[i] != (pa[i] != pb[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeCubeRoundTrip(t *testing.T) {
	enc, err := NewEncoder(96, 6, 8) // 48 cells, plenty of width
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for round := 0; round < 50; round++ {
		cube := make(atpg.Cube, 48)
		for i := range cube {
			switch rng.Intn(3) {
			case 0:
				cube[i] = atpg.Zero
			case 1:
				cube[i] = atpg.One
			default:
				cube[i] = atpg.X
			}
		}
		seed, err := enc.EncodeCube(cube)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if !enc.Verify(cube, seed) {
			t.Fatalf("round %d: expansion does not match cube", round)
		}
	}
}

func TestEncodeCubeWrongLength(t *testing.T) {
	enc, err := NewEncoder(64, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := enc.EncodeCube(make(atpg.Cube, 3)); err == nil {
		t.Fatal("wrong-length cube accepted")
	}
}

// TestNarrowWidthFallsBackToRaw: a fully specified cube over more cells
// than the seed width is (almost surely) unsolvable and must land in
// the raw fallback of EncodeSet.
func TestNarrowWidthFallsBackToRaw(t *testing.T) {
	enc, err := NewEncoder(8, 8, 8) // 64 cells, 8-bit seed
	if err != nil {
		t.Fatal(err)
	}
	dense := make(atpg.Cube, 64)
	rng := rand.New(rand.NewSource(5))
	for i := range dense {
		dense[i] = atpg.FromBool(rng.Intn(2) == 1)
	}
	sparse := make(atpg.Cube, 64)
	for i := range sparse {
		sparse[i] = atpg.X
	}
	sparse[3] = atpg.One

	out, err := enc.EncodeSet([]atpg.Cube{dense, sparse})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Unsolvable) != 1 || out.Unsolvable[0] != 0 {
		t.Fatalf("unsolvable = %v", out.Unsolvable)
	}
	if len(out.Seeds) != 1 || out.SeedBits != 8 || out.RawBits != 64 {
		t.Fatalf("encoded = %+v", out)
	}
	if out.TotalBytes() != 1+8 {
		t.Fatalf("TotalBytes = %d", out.TotalBytes())
	}
}

// TestCompressionBeatsRawForSparseCubes: lightly specified cubes (the
// typical late-top-off case) compress far below one bit per cell.
func TestCompressionBeatsRawForSparseCubes(t *testing.T) {
	const cells = 400
	enc, err := NewEncoder(64, 20, 20)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	var cubes []atpg.Cube
	for k := 0; k < 30; k++ {
		c := make(atpg.Cube, cells)
		for i := range c {
			c[i] = atpg.X
		}
		for b := 0; b < 20; b++ { // 20 care bits ≪ 64-bit seed
			c[rng.Intn(cells)] = atpg.FromBool(rng.Intn(2) == 1)
		}
		cubes = append(cubes, c)
	}
	out, err := enc.EncodeSet(cubes)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Unsolvable) != 0 {
		t.Fatalf("unsolvable sparse cubes: %v", out.Unsolvable)
	}
	ratio := enc.CompressionRatio(out, len(cubes))
	if ratio < 5 {
		t.Fatalf("compression ratio = %.1f, want > 5x", ratio)
	}
	// Every seed must verify.
	for i, seed := range out.Seeds {
		if !enc.Verify(cubes[i], seed) {
			t.Fatalf("seed %d does not reproduce its cube", i)
		}
	}
}

func TestErrUnsolvableMessage(t *testing.T) {
	e := &ErrUnsolvable{CareBits: 70, Width: 8}
	if e.Error() == "" {
		t.Fatal("empty error")
	}
}
