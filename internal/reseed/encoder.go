package reseed

import (
	"fmt"

	"repro/internal/atpg"
)

// Encoder turns test cubes into LFSR seeds for a fixed decompressor.
type Encoder struct {
	D *Decompressor
}

// NewEncoder builds an encoder over a decompressor of the given width
// for a chains×chainLen scan structure. Rule of thumb (Könemann): the
// width should exceed the maximum care-bit count of the cube set by
// ~20 bits for near-certain solvability.
func NewEncoder(width, chains, chainLen int) (*Encoder, error) {
	d, err := NewDecompressor(width, chains, chainLen)
	if err != nil {
		return nil, err
	}
	return &Encoder{D: d}, nil
}

// EncodeCube solves for a seed whose expansion matches every care bit
// of the cube. The cube length must equal the scan cell count.
func (e *Encoder) EncodeCube(cube atpg.Cube) (BitVec, error) {
	if len(cube) != e.D.NumCells() {
		return nil, fmt.Errorf("reseed: cube has %d cells, decompressor %d", len(cube), e.D.NumCells())
	}
	sys := newGF2System(e.D.Width)
	care := 0
	for i, v := range cube {
		if v == atpg.X {
			continue
		}
		care++
		if !sys.add(e.D.CellCoefficients(i), v == atpg.One) {
			return nil, &ErrUnsolvable{CareBits: care, Width: e.D.Width}
		}
	}
	return sys.solve(), nil
}

// Verify expands the seed and checks it against the cube's care bits.
func (e *Encoder) Verify(cube atpg.Cube, seed BitVec) bool {
	pattern := e.D.Expand(seed)
	for i, v := range cube {
		if v == atpg.X {
			continue
		}
		if pattern[i] != (v == atpg.One) {
			return false
		}
	}
	return true
}

// Encoded is the outcome of encoding a cube set.
type Encoded struct {
	Seeds []BitVec
	// Unsolvable lists indices of cubes the seed width could not cover;
	// a production flow stores those as explicit (raw) patterns.
	Unsolvable []int
	// SeedBits is the storage for the seeds alone.
	SeedBits int
	// RawBits is the storage for the unsolvable cubes at one bit per
	// scan cell.
	RawBits int
}

// TotalBytes returns the combined storage in bytes.
func (enc Encoded) TotalBytes() int {
	return (enc.SeedBits+7)/8 + (enc.RawBits+7)/8
}

// EncodeSet encodes every cube, falling back to raw storage for cubes
// the width cannot express.
func (e *Encoder) EncodeSet(cubes []atpg.Cube) (Encoded, error) {
	out := Encoded{}
	for i, c := range cubes {
		seed, err := e.EncodeCube(c)
		if err != nil {
			var uns *ErrUnsolvable
			if asUnsolvable(err, &uns) {
				out.Unsolvable = append(out.Unsolvable, i)
				out.RawBits += e.D.NumCells()
				continue
			}
			return Encoded{}, err
		}
		out.Seeds = append(out.Seeds, seed)
		out.SeedBits += e.D.Width
	}
	return out, nil
}

func asUnsolvable(err error, target **ErrUnsolvable) bool {
	u, ok := err.(*ErrUnsolvable)
	if ok {
		*target = u
	}
	return ok
}

// CompressionRatio returns raw-pattern bits divided by encoded bits for
// n cubes over the encoder's scan structure (the figure of merit quoted
// for test data compression schemes).
func (e *Encoder) CompressionRatio(enc Encoded, nCubes int) float64 {
	encodedBits := enc.SeedBits + enc.RawBits
	if encodedBits == 0 {
		return 0
	}
	return float64(nCubes*e.D.NumCells()) / float64(encodedBits)
}
