package reseed

import "fmt"

// gf2System is an incremental GF(2) linear system in row-echelon form:
// each stored row has a unique pivot column.
type gf2System struct {
	width  int
	pivots map[int]row // pivot column -> row
}

type row struct {
	coeffs BitVec
	rhs    bool
}

func newGF2System(width int) *gf2System {
	return &gf2System{width: width, pivots: make(map[int]row)}
}

// add reduces the equation (coeffs · x = rhs) against the basis and
// inserts it. It returns false on inconsistency (0 = 1); a reduced
// all-zero row with rhs 0 is redundant and accepted.
func (s *gf2System) add(coeffs BitVec, rhs bool) bool {
	c := coeffs.Clone()
	for {
		p := c.FirstSet()
		if p == -1 {
			return !rhs // 0 = rhs
		}
		r, exists := s.pivots[p]
		if !exists {
			s.pivots[p] = row{coeffs: c, rhs: rhs}
			return true
		}
		c.Xor(r.coeffs)
		rhs = rhs != r.rhs
	}
}

// solve returns one particular solution (free variables zero).
// Back-substitution runs from the highest pivot down.
func (s *gf2System) solve() BitVec {
	x := NewBitVec(s.width)
	// Process pivots in descending order so lower-pivot rows see the
	// already-fixed higher bits.
	order := make([]int, 0, len(s.pivots))
	for p := range s.pivots {
		order = append(order, p)
	}
	// Insertion sort descending (pivot counts are small).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j] > order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, p := range order {
		r := s.pivots[p]
		// x_p = rhs XOR Σ_{q>p, coeff q set} x_q.
		v := r.rhs
		// Clear the pivot bit, dot the rest with the partial solution.
		c := r.coeffs.Clone()
		c.Set(p, false)
		if c.Dot(x) {
			v = !v
		}
		x.Set(p, v)
	}
	return x
}

// rank returns the number of independent equations absorbed.
func (s *gf2System) rank() int { return len(s.pivots) }

// ErrUnsolvable reports a cube whose care bits exceed the decompressor
// seed's expressive power.
type ErrUnsolvable struct {
	CareBits int
	Width    int
}

func (e *ErrUnsolvable) Error() string {
	return fmt.Sprintf("reseed: cube with %d care bits unsolvable for seed width %d", e.CareBits, e.Width)
}
