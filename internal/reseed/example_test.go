package reseed_test

import (
	"fmt"

	"repro/internal/atpg"
	"repro/internal/reseed"
)

// Encoding one deterministic test cube into an LFSR seed: the
// decompressor regenerates every care bit on chip, so only the seed is
// stored — the paper's "encoded deterministic test data".
func ExampleEncoder_EncodeCube() {
	enc, err := reseed.NewEncoder(32, 2, 4) // 32-bit seed, 8 scan cells
	if err != nil {
		fmt.Println(err)
		return
	}
	cube := atpg.Cube{atpg.One, atpg.X, atpg.Zero, atpg.X, atpg.X, atpg.One, atpg.X, atpg.X}
	seed, err := enc.EncodeCube(cube)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("cube:", cube)
	fmt.Println("verified:", enc.Verify(cube, seed))
	fmt.Printf("stored: %d bits instead of %d\n", enc.D.Width, len(cube))
	// Output:
	// cube: 1X0XX1XX
	// verified: true
	// stored: 32 bits instead of 8
}
