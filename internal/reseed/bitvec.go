// Package reseed implements LFSR reseeding — the classic encoding of
// deterministic test cubes referenced by the paper's STUMPS
// architecture ("encoded deterministic test data ... reconstructed
// during test application", Section II): every scan cell receives a
// GF(2)-linear function of the decompressor LFSR's seed, so a cube with
// k care bits becomes a system of k linear equations whose solution is
// a seed of |LFSR| bits. Storing seeds instead of full patterns is what
// shrinks s(b^D).
package reseed

import "math/bits"

// BitVec is a little-endian bit vector over GF(2).
type BitVec []uint64

// NewBitVec returns an all-zero vector holding n bits.
func NewBitVec(n int) BitVec {
	return make(BitVec, (n+63)/64)
}

// Get returns bit i.
func (v BitVec) Get(i int) bool {
	return v[i/64]>>(uint(i)%64)&1 == 1
}

// Set sets bit i to b.
func (v BitVec) Set(i int, b bool) {
	if b {
		v[i/64] |= 1 << (uint(i) % 64)
	} else {
		v[i/64] &^= 1 << (uint(i) % 64)
	}
}

// Xor adds (XORs) other into v. Both must have equal length.
func (v BitVec) Xor(other BitVec) {
	for i := range v {
		v[i] ^= other[i]
	}
}

// And returns the parity of v AND other — the GF(2) inner product.
func (v BitVec) Dot(other BitVec) bool {
	var acc uint64
	for i := range v {
		acc ^= v[i] & other[i]
	}
	return bits.OnesCount64(acc)&1 == 1
}

// IsZero reports whether every bit is zero.
func (v BitVec) IsZero() bool {
	for _, w := range v {
		if w != 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy.
func (v BitVec) Clone() BitVec {
	return append(BitVec(nil), v...)
}

// FirstSet returns the index of the lowest set bit, or -1.
func (v BitVec) FirstSet() int {
	for i, w := range v {
		if w != 0 {
			return i*64 + bits.TrailingZeros64(w)
		}
	}
	return -1
}

// OnesCount returns the number of set bits.
func (v BitVec) OnesCount() int {
	n := 0
	for _, w := range v {
		n += bits.OnesCount64(w)
	}
	return n
}
