package reseed

import (
	"fmt"
)

// Decompressor is a wide Galois LFSR feeding scan chains through a
// phase shifter, described symbolically: the value of every scan cell
// is a GF(2)-linear function of the seed, captured as one coefficient
// vector per cell.
type Decompressor struct {
	Width    int // LFSR width in bits (the seed size)
	Chains   int
	ChainLen int

	// taps is the Galois feedback mask (bit i set = state bit i XORs the
	// shifted-out bit).
	taps BitVec

	// coeff[chain*ChainLen+pos] is the seed-coefficient vector of scan
	// cell (chain, pos).
	coeff []BitVec
}

// defaultTaps builds a dense feedback polynomial for the given width:
// x^W + x^(W/2+1) + x^(W/3+1) + x + 1. It is not guaranteed primitive,
// but maximal period is not required for reseeding — only that the
// cell coefficient vectors are rich enough to make the equation systems
// solvable, which the dense tap spread provides.
func defaultTaps(width int) BitVec {
	t := NewBitVec(width)
	t.Set(0, true)
	t.Set(1, true)
	if p := width/2 + 1; p < width {
		t.Set(p, true)
	}
	if p := width/3 + 1; p < width {
		t.Set(p, true)
	}
	return t
}

// phaseMasks derives one dense pseudo-random mask per chain over the
// LFSR width (splitmix64 stream, mirroring stumps.NewPhaseShifter).
func phaseMasks(chains, width int) []BitVec {
	masks := make([]BitVec, chains)
	x := uint64(0x9E3779B97F4A7C15)
	next := func() uint64 {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return z ^ (z >> 31)
	}
	for c := range masks {
		m := NewBitVec(width)
		for w := range m {
			m[w] = next()
		}
		// Trim bits beyond width.
		if r := width % 64; r != 0 {
			m[len(m)-1] &= (uint64(1) << uint(r)) - 1
		}
		if m.IsZero() {
			m.Set(0, true)
		}
		masks[c] = m
	}
	return masks
}

// NewDecompressor symbolically simulates the decompressor for one full
// pattern load (ChainLen shift cycles) and records the seed-coefficient
// vector of every scan cell. Scan cell indexing matches stumps.PRPG:
// cell (chain, pos) is input chain*ChainLen+pos and is filled at shift
// cycle pos.
func NewDecompressor(width, chains, chainLen int) (*Decompressor, error) {
	if width < 2 {
		return nil, fmt.Errorf("reseed: width %d too small", width)
	}
	if chains < 1 || chainLen < 1 {
		return nil, fmt.Errorf("reseed: need positive chains and chain length")
	}
	d := &Decompressor{
		Width:    width,
		Chains:   chains,
		ChainLen: chainLen,
		taps:     defaultTaps(width),
		coeff:    make([]BitVec, chains*chainLen),
	}
	masks := phaseMasks(chains, width)

	// state[j] is the coefficient vector of LFSR bit j over the seed.
	state := make([]BitVec, width)
	for j := range state {
		state[j] = NewBitVec(width)
		state[j].Set(j, true)
	}
	tmp := make([]BitVec, width)
	for s := 0; s < chainLen; s++ {
		// One Galois step: out = state[W-1]; state' = (state << 1) with
		// state'[j] = state[j-1] ^ (taps[j] ? out : 0), state'[0] =
		// taps[0] ? out : 0.
		out := state[width-1]
		for j := width - 1; j >= 1; j-- {
			nv := state[j-1].Clone()
			if d.taps.Get(j) {
				nv.Xor(out)
			}
			tmp[j] = nv
		}
		nv := NewBitVec(width)
		if d.taps.Get(0) {
			nv.Xor(out)
		}
		tmp[0] = nv
		copy(state, tmp)

		// Phase shifter: chain c gets parity(state & mask_c).
		for c := 0; c < chains; c++ {
			cell := NewBitVec(width)
			for j := 0; j < width; j++ {
				if masks[c].Get(j) {
					cell.Xor(state[j])
				}
			}
			d.coeff[c*chainLen+s] = cell
		}
	}
	return d, nil
}

// CellCoefficients returns the seed-coefficient vector of scan cell i
// (read-only).
func (d *Decompressor) CellCoefficients(i int) BitVec { return d.coeff[i] }

// NumCells returns Chains*ChainLen.
func (d *Decompressor) NumCells() int { return len(d.coeff) }

// Expand computes the full scan load produced by the given seed.
func (d *Decompressor) Expand(seed BitVec) []bool {
	out := make([]bool, len(d.coeff))
	for i, cv := range d.coeff {
		out[i] = cv.Dot(seed)
	}
	return out
}
