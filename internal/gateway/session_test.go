package gateway

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/can"
)

var sessionBus = can.Bus{Name: "bus1", BitRate: 500_000, Format: can.Standard}

// mustAssembler arms an assembler or fails the test.
func mustAssembler(t *testing.T, session uint32, total uint16) *Assembler {
	t.Helper()
	a, err := NewAssembler(session, total)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestSessionLosslessDelivery(t *testing.T) {
	fd := sampleFail(5)
	sess, err := NewSession("ecu01", 7, fd, SessionConfig{ChunkBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	asm := mustAssembler(t, 7, sess.NumChunks())
	res := sess.Run(NewFaultyChannel(sessionBus, can.ErrorModel{}, asm))
	if !res.Delivered || res.LocalFallback || res.Retries != 0 {
		t.Fatalf("lossless transfer degraded: %+v", res)
	}
	blob, err := asm.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	want := Record{ECU: "ecu01", Session: 7, Fail: fd}
	if !reflect.DeepEqual(rec, want) {
		t.Fatalf("reassembled %+v, want %+v", rec, want)
	}
}

func TestSessionRetriesThroughErrors(t *testing.T) {
	fd := sampleFail(8)
	sess, err := NewSession("ecu02", 1, fd, SessionConfig{ChunkBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	m := can.ErrorModel{BitErrorRate: 1e-3, Seed: 11}
	asm := mustAssembler(t, 1, sess.NumChunks())
	ch := NewFaultyChannel(sessionBus, m, asm)
	res := sess.Run(ch)
	if !res.Delivered {
		t.Fatalf("transfer at BER 1e-3 failed: %+v (channel errors %d)", res, ch.Errors)
	}
	if ch.Errors == 0 || res.Retries == 0 {
		t.Fatalf("expected retransmissions at BER 1e-3, got errors=%d retries=%d", ch.Errors, res.Retries)
	}
	blob, err := asm.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Unmarshal(blob)
	if err != nil {
		t.Fatalf("record torn despite ARQ: %v", err)
	}
	if !reflect.DeepEqual(rec.Fail, fd) {
		t.Fatal("fail data corrupted in transit")
	}
}

func TestSessionDeterministic(t *testing.T) {
	fd := sampleFail(8)
	m := can.ErrorModel{BitErrorRate: 1e-4, Seed: 5}
	run := func() TransferResult {
		sess, err := NewSession("ecu03", 2, fd, SessionConfig{ChunkBytes: 16})
		if err != nil {
			t.Fatal(err)
		}
		asm := mustAssembler(t, 2, sess.NumChunks())
		return sess.Run(NewFaultyChannel(sessionBus, m, asm))
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", a, b)
	}
}

// busOffChannel reports a degraded controller after n deliveries.
type busOffChannel struct {
	inner *FaultyChannel
	after int
	n     int
	state can.ControllerState
}

func (b *busOffChannel) Deliver(c Chunk) (bool, float64) {
	if b.n >= b.after {
		b.state = can.ErrorPassive
		return false, 0
	}
	b.n++
	return b.inner.Deliver(c)
}

func (b *busOffChannel) State() can.ControllerState { return b.state }

// The degraded-mode policy: when the controller leaves error-active the
// session falls back to local storage, and a later Run on a recovered
// channel resumes from the first undelivered chunk — no chunk is sent
// twice, no gap is torn into the record.
func TestSessionDegradedFallbackAndResume(t *testing.T) {
	fd := sampleFail(8)
	sess, err := NewSession("ecu04", 3, fd, SessionConfig{ChunkBytes: 16, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sess.NumChunks() < 3 {
		t.Fatalf("test needs ≥3 chunks, got %d", sess.NumChunks())
	}
	asm := mustAssembler(t, 3, sess.NumChunks())
	first := &busOffChannel{inner: NewFaultyChannel(sessionBus, can.ErrorModel{}, asm), after: 2}
	res := sess.Run(first)
	if res.Delivered || !res.LocalFallback {
		t.Fatalf("degraded bus not detected: %+v", res)
	}
	if res.ResumeSeq != 2 {
		t.Fatalf("resume point %d, want 2", res.ResumeSeq)
	}
	if asm.Complete() {
		t.Fatal("assembler complete despite aborted session")
	}
	// Bus recovered: resume on a clean channel.
	res2 := sess.Run(NewFaultyChannel(sessionBus, can.ErrorModel{}, asm))
	if !res2.Delivered {
		t.Fatalf("resume failed: %+v", res2)
	}
	if got, want := int(res2.ResumeSeq)-2, int(sess.NumChunks())-2; res2.ChunksSent != want || got != want {
		t.Fatalf("resume re-sent chunks: sent %d, want %d", res2.ChunksSent, want)
	}
	blob, err := asm.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Unmarshal(blob)
	if err != nil {
		t.Fatalf("resumed record torn: %v", err)
	}
	if !reflect.DeepEqual(rec.Fail, fd) {
		t.Fatal("resumed fail data corrupted")
	}
}

func TestAssemblerTypedErrors(t *testing.T) {
	mk := func(seq uint16) Chunk {
		c := Chunk{Session: 1, Seq: seq, Total: 3, Data: []byte{byte(seq), 0xAB}}
		c.CRC = c.Checksum()
		return c
	}
	a := mustAssembler(t, 1, 3)
	bad := mk(0)
	bad.Data[1] ^= 0x01
	if err := a.Accept(bad); !errors.Is(err, ErrChunkCRC) {
		t.Fatalf("corrupt chunk: got %v, want ErrChunkCRC", err)
	}
	if err := a.Accept(mk(1)); !errors.Is(err, ErrChunkGap) {
		t.Fatalf("out-of-order chunk: got %v, want ErrChunkGap", err)
	}
	if err := a.Accept(mk(0)); err != nil {
		t.Fatal(err)
	}
	if err := a.Accept(mk(0)); !errors.Is(err, ErrChunkDuplicate) {
		t.Fatalf("replayed chunk: got %v, want ErrChunkDuplicate", err)
	}
	if _, err := a.Bytes(); err == nil {
		t.Fatal("incomplete assembler handed out bytes")
	}
}

// TestAssemblerZeroChunks pins the Total == 0 edge: such an assembler
// used to be born Complete() with an empty, unvalidated buffer.
func TestAssemblerZeroChunks(t *testing.T) {
	if _, err := NewAssembler(5, 0); !errors.Is(err, ErrZeroChunks) {
		t.Fatalf("NewAssembler(5, 0): got %v, want ErrZeroChunks", err)
	}
	a := mustAssembler(t, 5, 2)
	if err := a.Reset(6, 0); !errors.Is(err, ErrZeroChunks) {
		t.Fatalf("Reset(6, 0): got %v, want ErrZeroChunks", err)
	}
	// A zero-value Assembler (bypassing the constructor) must neither
	// accept chunks nor report completion.
	var zero Assembler
	if zero.Complete() {
		t.Fatal("zero-value assembler reports Complete")
	}
	c := Chunk{Session: 0, Seq: 0, Total: 0}
	c.CRC = c.Checksum()
	if err := zero.Accept(c); !errors.Is(err, ErrZeroChunks) {
		t.Fatalf("zero-value Accept: got %v, want ErrZeroChunks", err)
	}
	if _, err := zero.Bytes(); err == nil {
		t.Fatal("zero-value assembler handed out bytes")
	}
}

// TestAssemblerReset: a recycled assembler keeps its buffer capacity
// but none of the previous session's bytes.
func TestAssemblerReset(t *testing.T) {
	fd := sampleFail(5)
	sess, err := NewSession("ecu09", 1, fd, SessionConfig{ChunkBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	asm := mustAssembler(t, 1, sess.NumChunks())
	if res := sess.Run(NewFaultyChannel(sessionBus, can.ErrorModel{}, asm)); !res.Delivered {
		t.Fatalf("first session not delivered: %+v", res)
	}
	if err := asm.Reset(2, sess.NumChunks()); err != nil {
		t.Fatal(err)
	}
	if asm.Complete() {
		t.Fatal("reset assembler still complete")
	}
	sess2, err := NewSession("ecu09", 2, fd, SessionConfig{ChunkBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res := sess2.Run(NewFaultyChannel(sessionBus, can.ErrorModel{}, asm)); !res.Delivered {
		t.Fatalf("session into recycled assembler not delivered: %+v", res)
	}
	blob, err := asm.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Session != 2 || !reflect.DeepEqual(rec.Fail, fd) {
		t.Fatalf("recycled assembler produced %+v", rec)
	}
}

// TestSessionRecordTooLarge: a record that would need more than 0xFFFF
// chunks is rejected sender-side with the typed error instead of
// overflowing the uint16 sequence space.
func TestSessionRecordTooLarge(t *testing.T) {
	big := sampleFail(4000) // 4000 entries × 18 B ≫ 0xFFFF 1-byte chunks
	_, err := NewSession("ecu10", 1, big, SessionConfig{ChunkBytes: 1})
	if !errors.Is(err, ErrRecordTooLarge) {
		t.Fatalf("oversized record: got %v, want ErrRecordTooLarge", err)
	}
	// The same record is fine at a sane chunk size.
	if _, err := NewSession("ecu10", 1, big, SessionConfig{ChunkBytes: 64}); err != nil {
		t.Fatalf("record rejected at 64-byte chunks: %v", err)
	}
}

func TestIngestReliable(t *testing.T) {
	var c Collector
	res, err := c.IngestReliable("ecu05", sampleFail(4), sessionBus, can.ErrorModel{BitErrorRate: 1e-5, Seed: 9}, SessionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Fatalf("reliable ingest failed: %+v", res)
	}
	recs := c.ByECU("ecu05")
	if len(recs) != 1 || recs[0].Session != 1 || !reflect.DeepEqual(recs[0].Fail, sampleFail(4)) {
		t.Fatalf("stored records wrong: %+v", recs)
	}
}

func TestImportTypedErrors(t *testing.T) {
	var c Collector
	c.Ingest("a", sampleFail(1))
	c.Ingest("b", sampleFail(2))
	blob, err := c.Export()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Import(blob); err != nil {
		t.Fatal(err)
	}
	if _, err := Import(append(blob, 0xDE, 0xAD)); !errors.Is(err, ErrTrailingGarbage) {
		t.Fatalf("garbage-appended blob: got %v, want ErrTrailingGarbage", err)
	}
	one, err := Marshal(Record{ECU: "a", Session: 1, Fail: sampleFail(1)})
	if err != nil {
		t.Fatal(err)
	}
	dup := append([]byte(nil), blob...)
	dup = append(dup, byte(len(one)), 0, 0, 0)
	dup = append(dup, one...)
	if _, err := Import(dup); !errors.Is(err, ErrDuplicateSequence) {
		t.Fatalf("duplicate-session blob: got %v, want ErrDuplicateSequence", err)
	}
	rec, err := Marshal(Record{ECU: "x", Session: 1, Fail: sampleFail(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(append(rec, 0x00)); !errors.Is(err, ErrTrailingGarbage) {
		t.Fatalf("garbage-appended record: got %v, want ErrTrailingGarbage", err)
	}
}

// TestSessionRewindAfterReceiverRestart models the crash-recovery
// redelivery path: the receiver dies mid-session (its partial
// assembler is lost), so the sender rewinds and redelivers the whole
// session to a fresh assembler — byte-identical to the first attempt.
func TestSessionRewindAfterReceiverRestart(t *testing.T) {
	fd := sampleFail(8)
	sess, err := NewSession("ecu04", 3, fd, SessionConfig{ChunkBytes: 16, MaxRetries: 2})
	if err != nil {
		t.Fatal(err)
	}
	asm := mustAssembler(t, 3, sess.NumChunks())
	first := &busOffChannel{inner: NewFaultyChannel(sessionBus, can.ErrorModel{}, asm), after: 2}
	if res := sess.Run(first); res.Delivered || res.ResumeSeq != 2 {
		t.Fatalf("setup: %+v", res)
	}

	// Receiver restarts: partial reassembly is gone. Without Rewind the
	// session would resume at chunk 2 and the fresh assembler would
	// reject the gap forever.
	sess.Rewind()
	fresh := mustAssembler(t, 3, sess.NumChunks())
	res := sess.Run(NewFaultyChannel(sessionBus, can.ErrorModel{}, fresh))
	if !res.Delivered {
		t.Fatalf("redelivery failed: %+v", res)
	}
	if res.ChunksSent != int(sess.NumChunks()) {
		t.Fatalf("redelivery sent %d chunks, want all %d", res.ChunksSent, sess.NumChunks())
	}
	blob, err := fresh.Bytes()
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Unmarshal(blob)
	if err != nil || !reflect.DeepEqual(rec.Fail, fd) {
		t.Fatalf("redelivered record differs: %v", err)
	}
}
