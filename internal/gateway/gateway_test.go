package gateway

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/stumps"
)

func sampleFail(n int) stumps.FailData {
	fd := stumps.FailData{Windows: 8}
	for i := 0; i < n; i++ {
		fd.Entries = append(fd.Entries, stumps.FailEntry{Window: i, Got: uint64(100 + i), Want: uint64(200 + i)})
	}
	return fd
}

func TestIngestAndQueries(t *testing.T) {
	var c Collector
	s1 := c.Ingest("ecu01", stumps.FailData{Windows: 8})
	s2 := c.Ingest("ecu01", sampleFail(2))
	s3 := c.Ingest("ecu02", stumps.FailData{Windows: 8})
	if s1 != 1 || s2 != 2 || s3 != 1 {
		t.Fatalf("session numbers: %d %d %d", s1, s2, s3)
	}
	if len(c.Records()) != 3 {
		t.Fatalf("records = %d", len(c.Records()))
	}
	if got := c.ByECU("ecu01"); len(got) != 2 {
		t.Fatalf("ByECU = %d", len(got))
	}
	failing := c.FailingECUs()
	if len(failing) != 1 || failing[0] != "ecu01" {
		t.Fatalf("failing = %v", failing)
	}
	if c.StorageBytes() <= 0 {
		t.Fatal("no storage accounted")
	}
	c.Clear()
	if len(c.Records()) != 0 || len(c.FailingECUs()) != 0 {
		t.Fatal("Clear incomplete")
	}
}

func TestCapacityEvictsOldest(t *testing.T) {
	c := Collector{Capacity: 2}
	c.Ingest("a", sampleFail(1))
	c.Ingest("b", sampleFail(1))
	c.Ingest("c", sampleFail(1))
	recs := c.Records()
	if len(recs) != 2 || recs[0].ECU != "b" || recs[1].ECU != "c" {
		t.Fatalf("records = %+v", recs)
	}
}

// TestCapacityBackingArrayBounded pins the eviction fix: sustained
// ingest through a bounded collector must keep the live backing array
// at O(Capacity) slots. The old re-slicing eviction
// (records[len-Capacity:]) kept appending into an ever-growing array
// and pinned all of it.
func TestCapacityBackingArrayBounded(t *testing.T) {
	c := Collector{Capacity: 16}
	for i := 0; i < 10_000; i++ {
		c.Ingest(fmt.Sprintf("ecu%02d", i%37), sampleFail(4))
	}
	if got := cap(c.records); got > 16 {
		t.Fatalf("backing array grew to %d slots, want ≤ Capacity (16)", got)
	}
	recs := c.Records()
	if len(recs) != 16 {
		t.Fatalf("records = %d, want 16", len(recs))
	}
	// Newest 16 in ingestion order: the last ingested ECU closes the list.
	if want := fmt.Sprintf("ecu%02d", 9_999%37); recs[15].ECU != want {
		t.Fatalf("newest record %q, want %q", recs[15].ECU, want)
	}
	for i := 1; i < len(recs); i++ {
		if prev, cur := recs[i-1], recs[i]; prev.ECU == cur.ECU && prev.Session >= cur.Session {
			t.Fatalf("ingestion order lost at %d: %+v then %+v", i, prev, cur)
		}
	}
	// Queries and export still see the ring in order after wrapping.
	blob, err := c.Export()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Import(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 16 || back[0].ECU != recs[0].ECU || back[15].ECU != recs[15].ECU {
		t.Fatalf("export/import of wrapped ring differs: %+v", back)
	}
}

// TestCapacityLoweredBetweenIngests: shrinking Capacity on a live
// collector must drop the oldest records and release the oversized
// backing array on the next ingest.
func TestCapacityLoweredBetweenIngests(t *testing.T) {
	c := Collector{Capacity: 8}
	for i := 0; i < 8; i++ {
		c.Ingest("a", sampleFail(1))
	}
	c.Capacity = 3
	c.Ingest("b", sampleFail(1))
	recs := c.Records()
	if len(recs) != 3 || cap(c.records) > 3 {
		t.Fatalf("len=%d cap=%d after lowering Capacity, want 3/≤3", len(recs), cap(c.records))
	}
	if recs[2].ECU != "b" || recs[0].ECU != "a" {
		t.Fatalf("wrong survivors: %+v", recs)
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := Record{ECU: "ecu07", Session: 42, Fail: sampleFail(3)}
	b, err := Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ECU != r.ECU || got.Session != r.Session || got.Fail.Windows != r.Fail.Windows {
		t.Fatalf("header mismatch: %+v", got)
	}
	if len(got.Fail.Entries) != 3 {
		t.Fatalf("entries = %d", len(got.Fail.Entries))
	}
	for i := range r.Fail.Entries {
		if got.Fail.Entries[i] != r.Fail.Entries[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, got.Fail.Entries[i], r.Fail.Entries[i])
		}
	}
}

// TestMarshalRoundTripProperty fuzzes the wire format.
func TestMarshalRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := Record{
			ECU:     string(rune('a'+rng.Intn(26))) + "unit",
			Session: rng.Uint32(),
			Fail:    stumps.FailData{Windows: rng.Intn(100)},
		}
		for i := 0; i < rng.Intn(6); i++ {
			r.Fail.Entries = append(r.Fail.Entries, stumps.FailEntry{
				Window: rng.Intn(100), Got: rng.Uint64(), Want: rng.Uint64(),
			})
		}
		b, err := Marshal(r)
		if err != nil {
			return false
		}
		got, err := Unmarshal(b)
		if err != nil || got.ECU != r.ECU || got.Session != r.Session {
			return false
		}
		if len(got.Fail.Entries) != len(r.Fail.Entries) {
			return false
		}
		for i := range r.Fail.Entries {
			if got.Fail.Entries[i] != r.Fail.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestUnmarshalTruncatedName pins the io.ReadFull fix: a blob whose
// declared ECU name runs past the end of the data is a truncated
// record, reported with ErrTruncated — regardless of how many bytes
// happen to follow the short name.
func TestUnmarshalTruncatedName(t *testing.T) {
	good, err := Marshal(Record{ECU: "ecu-zero-seven", Session: 9, Fail: sampleFail(2)})
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-name: 4 B session + 2 B name length + part of the name.
	cut := good[:4+2+5]
	if _, err := Unmarshal(cut); !errors.Is(err, ErrTruncated) {
		t.Fatalf("mid-name cut: got %v, want ErrTruncated", err)
	}
	// The old parser's special trap: a short name with ≥ 4 bytes of data
	// left after it (name length says 14, only 5 name bytes plus the
	// windows+entries fields survive). buf.Read would have swallowed the
	// later fields into the name.
	short := append([]byte(nil), good[:4+2+5]...)
	short = append(short, 0x08, 0x00, 0x00, 0x00) // plausible windows+entries
	got, err := Unmarshal(short)
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("short name with trailing fields: got (%+v, %v), want ErrTruncated", got, err)
	}
	// Every strict prefix of a valid blob is truncated.
	for _, k := range []int{0, 3, 4, 5, len(good) / 2, len(good) - 1} {
		if _, err := Unmarshal(good[:k]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("prefix of %d bytes: got %v, want ErrTruncated", k, err)
		}
	}
}

func TestUnmarshalRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		nil,
		{1, 2},
		{1, 2, 3, 4, 5},
	}
	for i, b := range bad {
		if _, err := Unmarshal(b); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	// Trailing bytes rejected.
	good, err := Marshal(Record{ECU: "x", Session: 1, Fail: sampleFail(1)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(append(good, 0xFF)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestMarshalRejectsOversized(t *testing.T) {
	if _, err := Marshal(Record{ECU: "x", Fail: stumps.FailData{Windows: 1 << 17}}); err == nil {
		t.Fatal("oversized windows accepted")
	}
	fd := stumps.FailData{Windows: 4, Entries: []stumps.FailEntry{{Window: 1 << 17}}}
	if _, err := Marshal(Record{ECU: "x", Fail: fd}); err == nil {
		t.Fatal("oversized window index accepted")
	}
}

func TestExportImport(t *testing.T) {
	var c Collector
	c.Ingest("ecu01", sampleFail(2))
	c.Ingest("ecu02", stumps.FailData{Windows: 8})
	blob, err := c.Export()
	if err != nil {
		t.Fatal(err)
	}
	recs, err := Import(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ECU != "ecu01" || recs[1].ECU != "ecu02" {
		t.Fatalf("imported = %+v", recs)
	}
	if _, err := Import(blob[:len(blob)-1]); err == nil {
		t.Fatal("truncated blob accepted")
	}
	if _, err := Import([]byte{1, 0, 0}); err == nil {
		t.Fatal("short prefix accepted")
	}
}

// TestPerSessionFootprintMatchesPaper: a session's stored fail data
// stays in the paper's "a few bytes ... roughly 638 bytes" regime even
// when every window fails.
func TestPerSessionFootprintMatchesPaper(t *testing.T) {
	var c Collector
	// 64 windows all failing: 64 entries * 6 B + header ≈ 400 B.
	c.Ingest("ecu01", sampleFail(64))
	if n := c.StorageBytes(); n > 638 {
		t.Fatalf("session footprint %d B exceeds the paper's 638 B", n)
	}
}
