package gateway

import (
	"errors"
	"testing"
)

// FuzzUnmarshal feeds arbitrary bytes through the wire-format parser:
// no panics, anything accepted must survive a Marshal round trip,
// appending garbage to an accepted blob must be rejected with the typed
// trailing-garbage error, and truncating one must be rejected as
// ErrTruncated — including cuts inside the ECU name, where a
// short-read-tolerant parser would silently misparse.
func FuzzUnmarshal(f *testing.F) {
	good, err := Marshal(Record{ECU: "ecu01", Session: 3, Fail: sampleFail(2)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	// Short-name seeds: declared name length exceeds the remaining data.
	f.Add([]byte{1, 0, 0, 0, 0xFF, 0xFF, 'a', 'b', 'c'})
	f.Add(good[:4+2+3]) // cut inside "ecu01"
	shortName := append([]byte(nil), good[:4+2+3]...)
	f.Add(append(shortName, 8, 0, 0, 0)) // short name, ≥4 plausible trailing bytes
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Unmarshal(data)
		if err != nil {
			return
		}
		b, err := Marshal(r)
		if err != nil {
			t.Fatalf("accepted record failed to marshal: %v", err)
		}
		back, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.ECU != r.ECU || back.Session != r.Session || len(back.Fail.Entries) != len(r.Fail.Entries) {
			t.Fatal("round trip changed the record")
		}
		if _, err := Unmarshal(append(b, 0xEE)); !errors.Is(err, ErrTrailingGarbage) {
			t.Fatalf("garbage-appended record accepted: %v", err)
		}
		// Any strict prefix is a truncation: the format has no optional
		// tail. Cut once mid-name (when there is a name) and once before
		// the final byte.
		if _, err := Unmarshal(b[:len(b)-1]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("one-byte truncation accepted: %v", err)
		}
		if len(r.ECU) > 0 {
			cut := 4 + 2 + len(r.ECU)/2
			if _, err := Unmarshal(b[:cut]); !errors.Is(err, ErrTruncated) {
				t.Fatalf("mid-name truncation accepted: %v", err)
			}
		}
	})
}

// FuzzImport checks the length-prefixed container parser: no panics,
// accepted blobs must re-export to an importable blob, and a blob with
// a record repeated must be rejected as a duplicate sequence.
func FuzzImport(f *testing.F) {
	var c Collector
	c.Ingest("a", sampleFail(1))
	blob, err := c.Export()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := Import(data)
		if err != nil {
			return
		}
		if len(recs) == 0 {
			return
		}
		// Re-exporting what Import accepted must round-trip.
		var c2 Collector
		c2.records = recs
		blob2, err := c2.Export()
		if err != nil {
			t.Fatalf("accepted records failed to export: %v", err)
		}
		if _, err := Import(blob2); err != nil {
			t.Fatalf("re-exported blob rejected: %v", err)
		}
		// Doubling the blob repeats every (ECU, session) pair.
		if _, err := Import(append(append([]byte(nil), data...), data...)); !errors.Is(err, ErrDuplicateSequence) {
			t.Fatalf("doubled blob accepted: %v", err)
		}
	})
}
