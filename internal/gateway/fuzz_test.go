package gateway

import "testing"

// FuzzUnmarshal feeds arbitrary bytes through the wire-format parser:
// no panics, and anything accepted must survive a Marshal round trip.
func FuzzUnmarshal(f *testing.F) {
	good, err := Marshal(Record{ECU: "ecu01", Session: 3, Fail: sampleFail(2)})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := Unmarshal(data)
		if err != nil {
			return
		}
		b, err := Marshal(r)
		if err != nil {
			t.Fatalf("accepted record failed to marshal: %v", err)
		}
		back, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.ECU != r.ECU || back.Session != r.Session || len(back.Fail.Entries) != len(r.Fail.Entries) {
			t.Fatal("round trip changed the record")
		}
	})
}

// FuzzImport checks the length-prefixed container parser.
func FuzzImport(f *testing.F) {
	var c Collector
	c.Ingest("a", sampleFail(1))
	blob, err := c.Export()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(blob)
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = Import(data) // must not panic
	})
}
