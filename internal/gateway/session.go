package gateway

import (
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"repro/internal/can"
	"repro/internal/obs"
	"repro/internal/stumps"
)

// This file adds the reliable transfer session between an ECU's BIST
// data task b^D and the gateway's result task b^R. The plain Ingest
// path assumes a perfect bus; on a faulty one a single corrupted c^R
// chunk would tear the stored record. The session layer makes the
// transfer safe: sequence-numbered, CRC-checked chunks, bounded retry
// with exponential backoff, a per-session timeout, and a degraded-mode
// policy — when the CAN controller leaves error-active, the ECU keeps
// the fail data in local b^D storage and resumes the session from the
// first undelivered chunk once the bus recovers.

// Chunk is one sequence-numbered segment of a marshaled Record on the
// wire.
type Chunk struct {
	Session uint32 // sender's session number
	Seq     uint16 // position of this chunk, 0-based
	Total   uint16 // chunk count of the whole record
	Data    []byte
	CRC     uint32 // crc32-IEEE over Data
}

// Checksum computes the chunk's payload CRC.
func (c Chunk) Checksum() uint32 { return crc32.ChecksumIEEE(c.Data) }

// Valid reports whether the carried CRC matches the payload.
func (c Chunk) Valid() bool { return c.CRC == c.Checksum() }

// chunkHeaderBytes is the wire overhead per chunk: session, seq, total,
// CRC.
const chunkHeaderBytes = 4 + 2 + 2 + 4

// Typed reassembly errors, distinguishable with errors.Is.
var (
	// ErrChunkCRC marks a chunk whose payload does not match its CRC.
	ErrChunkCRC = errors.New("gateway: chunk CRC mismatch")
	// ErrChunkGap marks a chunk arriving ahead of the expected sequence
	// number — accepting it would tear the record.
	ErrChunkGap = errors.New("gateway: chunk sequence gap")
	// ErrChunkDuplicate marks a chunk already assembled.
	ErrChunkDuplicate = errors.New("gateway: duplicate chunk")
	// ErrZeroChunks marks a session announcing zero chunks: such an
	// assembler would be born Complete with an empty buffer and no
	// validation at all, so it is rejected outright.
	ErrZeroChunks = errors.New("gateway: session with zero chunks")
	// ErrRecordTooLarge marks a record whose chunk count overflows the
	// uint16 sequence space of the wire format.
	ErrRecordTooLarge = errors.New("gateway: record too large for uint16 chunk count")
)

// Assembler is the gateway-side reassembly buffer of one session. It
// only ever appends in sequence order, so a completed buffer can never
// contain a torn record.
type Assembler struct {
	Session uint32
	Total   uint16

	next uint16
	buf  []byte
}

// NewAssembler prepares reassembly of a session split into total
// chunks. A zero-chunk session is rejected with ErrZeroChunks.
func NewAssembler(session uint32, total uint16) (*Assembler, error) {
	if total == 0 {
		return nil, fmt.Errorf("%w: session %d", ErrZeroChunks, session)
	}
	return &Assembler{Session: session, Total: total}, nil
}

// Reset re-arms the assembler for a new session, retaining the
// reassembly buffer's capacity — the pool discipline of the fleet
// ingest path.
func (a *Assembler) Reset(session uint32, total uint16) error {
	if total == 0 {
		return fmt.Errorf("%w: session %d", ErrZeroChunks, session)
	}
	a.Session, a.Total, a.next = session, total, 0
	a.buf = a.buf[:0]
	return nil
}

// Accept validates and appends one chunk. Chunks must arrive in
// sequence order with intact CRCs; anything else is rejected with a
// typed error and leaves the buffer untouched.
func (a *Assembler) Accept(c Chunk) error {
	if a.Total == 0 {
		// A zero-value Assembler constructed around NewAssembler.
		return fmt.Errorf("%w: assembler not armed", ErrZeroChunks)
	}
	if c.Session != a.Session {
		return fmt.Errorf("gateway: chunk for session %d, assembling %d", c.Session, a.Session)
	}
	if !c.Valid() {
		return fmt.Errorf("%w: seq %d", ErrChunkCRC, c.Seq)
	}
	if c.Seq < a.next {
		return fmt.Errorf("%w: seq %d already assembled", ErrChunkDuplicate, c.Seq)
	}
	if c.Seq > a.next {
		return fmt.Errorf("%w: want seq %d, got %d", ErrChunkGap, a.next, c.Seq)
	}
	a.buf = append(a.buf, c.Data...)
	a.next++
	return nil
}

// Complete reports whether every chunk has arrived. A zero-chunk
// assembler is never complete — an empty buffer has validated nothing.
func (a *Assembler) Complete() bool { return a.Total > 0 && a.next == a.Total }

// Bytes returns the reassembled record; an error if chunks are missing.
func (a *Assembler) Bytes() ([]byte, error) {
	if !a.Complete() {
		return nil, fmt.Errorf("gateway: session %d incomplete: %d/%d chunks", a.Session, a.next, a.Total)
	}
	return a.buf, nil
}

// Channel abstracts the bus leg between ECU and gateway. Deliver
// attempts to transmit one chunk end to end (data frame out,
// acknowledgement back) and reports whether it was acknowledged plus
// the bus time the attempt consumed in milliseconds.
type Channel interface {
	Deliver(c Chunk) (ok bool, elapsedMS float64)
}

// StateReporter is optionally implemented by channels that track the
// sender controller's CAN error-confinement state. The session polls it
// to trigger the degraded-mode fallback.
type StateReporter interface {
	State() can.ControllerState
}

// ChunkSink is the receiving end of a chunk transfer: an *Assembler
// for a point-to-point session, or a fleet shard routing many vehicles'
// sessions into sharded assemblers.
type ChunkSink interface {
	Accept(c Chunk) error
}

// FaultyChannel carries chunks over a CAN segment under a can.ErrorModel:
// every attempt is corrupted with the chunk's wire-length error
// probability drawn from the model's seeded stream, errors cost an
// error frame and walk the ISO 11898 TEC, and one in eight corruptions
// slips through as a delivered-but-damaged chunk so the receiver-side
// CRC check earns its keep. A disabled model delivers losslessly.
type FaultyChannel struct {
	Bus   can.Bus
	Model can.ErrorModel
	Sink  ChunkSink

	stream *can.ErrorStream
	ctr    can.ErrorCounters
	// Errors counts corrupted attempts, Delivered accepted chunks.
	Errors    int
	Delivered int
}

// NewFaultyChannel wires a channel over bus into sink.
func NewFaultyChannel(bus can.Bus, m can.ErrorModel, sink ChunkSink) *FaultyChannel {
	return &FaultyChannel{Bus: bus, Model: m, Sink: sink, stream: can.NewErrorStream(m.Seed)}
}

// State exposes the sender controller's error-confinement state.
func (fc *FaultyChannel) State() can.ControllerState { return fc.ctr.State() }

// wireMS returns the bus time of one chunk as back-to-back 8-byte
// frames, and its total wire bit count.
func (fc *FaultyChannel) wire(c Chunk) (ms float64, bits int) {
	n := len(c.Data) + chunkHeaderBytes
	frames := (n + can.MaxPayload - 1) / can.MaxPayload
	if frames < 1 {
		frames = 1
	}
	perFrame := can.FrameBits(can.MaxPayload, fc.Bus.Format)
	bits = frames * perFrame
	return float64(bits) * fc.Bus.BitTimeMS(), bits
}

func (fc *FaultyChannel) Deliver(c Chunk) (bool, float64) {
	if fc.ctr.State() == can.BusOff {
		return false, 0
	}
	ms, bits := fc.wire(c)
	if !fc.Model.Enabled() {
		if err := fc.Sink.Accept(c); err != nil {
			return false, ms
		}
		fc.Delivered++
		return true, ms
	}
	if fc.stream.Float64() < fc.Model.FrameErrorProb(bits) {
		fc.Errors++
		fc.ctr.OnTxError()
		ms += float64(can.MaxErrorFrameBits) * fc.Bus.BitTimeMS()
		if fc.stream.Float64() < 0.125 {
			// Undetected-on-the-wire corruption: the chunk arrives with a
			// damaged payload and must be caught by the application CRC.
			bad := c
			bad.Data = append([]byte(nil), c.Data...)
			if len(bad.Data) > 0 {
				bad.Data[0] ^= 0xFF
			}
			fc.Sink.Accept(bad) // rejected with ErrChunkCRC
		}
		return false, ms
	}
	if err := fc.Sink.Accept(c); err != nil {
		return false, ms
	}
	fc.ctr.OnTxSuccess()
	fc.Delivered++
	return true, ms
}

// SessionConfig tunes the sender's retry behaviour. Zero values select
// the defaults.
type SessionConfig struct {
	ChunkBytes int     // payload bytes per chunk (default 64)
	MaxRetries int     // retransmissions per chunk before giving up (default 8)
	BackoffMS  float64 // first retry backoff, doubled per retry (default 1)
	TimeoutMS  float64 // per-session budget, 0 = unbounded
	// Obs, when non-nil, times each Run as a gateway_session span and
	// marks degraded-mode fallbacks. Purely observational: transfer time
	// stays simulated and deterministic.
	Obs *obs.Tracer
}

func (c SessionConfig) chunkBytes() int {
	if c.ChunkBytes <= 0 {
		return 64
	}
	return c.ChunkBytes
}

func (c SessionConfig) maxRetries() int {
	if c.MaxRetries <= 0 {
		return 8
	}
	return c.MaxRetries
}

func (c SessionConfig) backoffMS() float64 {
	if c.BackoffMS <= 0 {
		return 1
	}
	return c.BackoffMS
}

// TransferResult is the outcome of one Session.Run.
type TransferResult struct {
	// Delivered is true when every chunk was acknowledged.
	Delivered bool
	// LocalFallback is true when the session aborted into degraded mode:
	// the controller left error-active (or retries/timeout ran out) and
	// the fail data stays in local b^D storage until resumed.
	LocalFallback bool
	ElapsedMS     float64
	ChunksSent    int
	Retries       int
	// ResumeSeq is the first undelivered chunk — where a later Run picks
	// up.
	ResumeSeq uint16
}

// Session is the sender side of one reliable record transfer. A Session
// whose Run aborted into degraded mode can Run again on a recovered
// channel; it resumes from the first undelivered chunk.
type Session struct {
	cfg    SessionConfig
	sid    uint32
	chunks []Chunk
	next   uint16
}

// NewSession chunks the marshaled record of one BIST session for
// reliable transfer.
func NewSession(ecu string, session uint32, fd stumps.FailData, cfg SessionConfig) (*Session, error) {
	blob, err := Marshal(Record{ECU: ecu, Session: session, Fail: fd})
	if err != nil {
		return nil, err
	}
	size := cfg.chunkBytes()
	total := (len(blob) + size - 1) / size
	if total < 1 {
		total = 1
	}
	if total > 0xFFFF {
		return nil, fmt.Errorf("%w: %d chunks of %d bytes", ErrRecordTooLarge, total, size)
	}
	s := &Session{cfg: cfg, sid: session}
	for i := 0; i < total; i++ {
		lo, hi := i*size, (i+1)*size
		if hi > len(blob) {
			hi = len(blob)
		}
		c := Chunk{Session: session, Seq: uint16(i), Total: uint16(total), Data: blob[lo:hi]}
		c.CRC = c.Checksum()
		s.chunks = append(s.chunks, c)
	}
	return s, nil
}

// NumChunks returns the chunk count of the session.
func (s *Session) NumChunks() uint16 { return uint16(len(s.chunks)) }

// SessionID returns the sender's session number.
func (s *Session) SessionID() uint32 { return s.sid }

// Done reports whether every chunk has been acknowledged.
func (s *Session) Done() bool { return int(s.next) == len(s.chunks) }

// Rewind resets the resume position to the first chunk. A Session
// normally resumes a degraded Run from the first undelivered chunk —
// correct while the receiver keeps its partial reassembly. After a
// receiver restart that state is gone (a recovering server only keeps
// durably committed sessions), so the sender must redeliver from the
// top: Rewind, then Run again. The chunks are immutable, so the retry
// is byte-identical to the first attempt.
func (s *Session) Rewind() { s.next = 0 }

// degraded reports whether the channel state demands the local-storage
// fallback.
func degraded(ch Channel) bool {
	sr, ok := ch.(StateReporter)
	return ok && sr.State() != can.ErrorActive
}

// Run drives the transfer over ch until completion, timeout, retry
// exhaustion, or a degraded bus. Time is simulated: elapsed milliseconds
// accumulate from the channel's per-attempt cost and the retry
// backoffs, so runs are deterministic.
func (s *Session) Run(ch Channel) TransferResult {
	sp := s.cfg.Obs.Start(obs.StageGatewaySession)
	res := s.run(ch)
	sp.End()
	if res.LocalFallback {
		s.cfg.Obs.Mark(obs.StageDegraded)
	}
	return res
}

func (s *Session) run(ch Channel) TransferResult {
	var res TransferResult
	for !s.Done() {
		if degraded(ch) {
			res.LocalFallback = true
			res.ResumeSeq = s.next
			return res
		}
		c := s.chunks[s.next]
		backoff := s.cfg.backoffMS()
		sent := false
		for attempt := 0; attempt <= s.cfg.maxRetries(); attempt++ {
			if s.cfg.TimeoutMS > 0 && res.ElapsedMS > s.cfg.TimeoutMS {
				break
			}
			if attempt > 0 {
				res.Retries++
				res.ElapsedMS += backoff
				if backoff < 64 {
					backoff *= 2
				}
				if degraded(ch) {
					break
				}
			}
			ok, ms := ch.Deliver(c)
			res.ChunksSent++
			res.ElapsedMS += ms
			if ok {
				sent = true
				break
			}
		}
		if !sent {
			res.LocalFallback = true
			res.ResumeSeq = s.next
			return res
		}
		s.next++
	}
	res.Delivered = true
	res.ResumeSeq = s.next
	return res
}

// IngestReliable transfers one ECU's fail data to the collector over a
// faulty CAN segment using the full session machinery and stores the
// record only when it arrived completely. On a degraded bus the result
// reports the local fallback and nothing is stored — the ECU keeps the
// data and a later session (with the bumped counter) retries.
func (c *Collector) IngestReliable(ecu string, fd stumps.FailData, bus can.Bus, m can.ErrorModel, cfg SessionConfig) (TransferResult, error) {
	if c.counter == nil {
		c.counter = make(map[string]uint32)
	}
	c.counter[ecu]++
	sid := c.counter[ecu]
	sess, err := NewSession(ecu, sid, fd, cfg)
	if err != nil {
		return TransferResult{}, err
	}
	asm, err := NewAssembler(sid, sess.NumChunks())
	if err != nil {
		return TransferResult{}, err
	}
	res := sess.Run(NewFaultyChannel(bus, m, asm))
	if !res.Delivered {
		return res, nil
	}
	blob, err := asm.Bytes()
	if err != nil {
		return res, err
	}
	rec, err := Unmarshal(blob)
	if err != nil {
		return res, fmt.Errorf("gateway: reassembled record corrupt: %w", err)
	}
	c.push(rec)
	return res, nil
}

// ExpectedTransferMS estimates the mean bus time of delivering a
// marshaled record of n bytes over a channel with the given error
// model: per-chunk geometric retransmission at the chunk error
// probability. It is the analytic cousin of Session.Run used by the
// robustness objective.
func ExpectedTransferMS(bus can.Bus, m can.ErrorModel, recordBytes int, cfg SessionConfig) float64 {
	size := cfg.chunkBytes()
	chunks := (recordBytes + size - 1) / size
	if chunks < 1 {
		chunks = 1
	}
	frames := (size + chunkHeaderBytes + can.MaxPayload - 1) / can.MaxPayload
	bits := frames * can.FrameBits(can.MaxPayload, bus.Format)
	perChunk := float64(bits) * bus.BitTimeMS()
	p := m.FrameErrorProb(bits)
	if p >= 1 {
		return math.Inf(1)
	}
	// Mean attempts per chunk: 1/(1−p); each failed attempt adds an error
	// frame.
	mean := perChunk/(1-p) + p/(1-p)*float64(can.MaxErrorFrameBits)*bus.BitTimeMS()
	return float64(chunks) * mean
}
