// Package gateway implements the central collection point of the
// paper's diagnosis architecture: the mandatory task b^R that stores
// the fail data of every ECU's BIST session. Contrary to functional
// DTCs, which are scattered across ECUs, all structural results live
// here — a few bytes per session — so system-level countermeasures and
// workshop read-out have a single source of truth (Section III).
package gateway

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sort"

	"repro/internal/stumps"
)

// Typed wire-format errors, distinguishable with errors.Is. A parser
// that cannot tell "garbage appended" from "field truncated" cannot be
// trusted as the single source of diagnostic truth.
var (
	// ErrTrailingGarbage marks extra bytes after a structurally complete
	// record, or a dangling partial length prefix in an Export blob.
	ErrTrailingGarbage = errors.New("gateway: trailing garbage")
	// ErrDuplicateSequence marks two records in one Export blob claiming
	// the same (ECU, session) pair — a replay or a torn write, never a
	// legal fail memory.
	ErrDuplicateSequence = errors.New("gateway: duplicate sequence number")
	// ErrTruncated marks a record blob that ends before a declared field —
	// as opposed to ErrTrailingGarbage, which marks bytes left over after
	// a complete one.
	ErrTruncated = errors.New("gateway: truncated record")
)

// Record is one stored BIST session result.
type Record struct {
	ECU     string
	Session uint32 // session counter of the reporting ECU
	Fail    stumps.FailData
}

// Collector is the gateway-side fail memory. The zero value is ready
// to use; Capacity bounds the stored records (oldest evicted first,
// 0 = unbounded).
//
// Bounded collectors store their records in a ring whose backing array
// never exceeds Capacity slots: eviction overwrites the oldest slot in
// place, so a long-running collector — a fleet shard ingesting for
// days — holds O(Capacity) memory, and the evicted records' fail-data
// payloads become garbage immediately instead of staying pinned by a
// re-sliced append buffer.
type Collector struct {
	Capacity int

	records []Record
	head    int // index of the oldest record once the ring has wrapped
	counter map[string]uint32
}

// push appends one record, evicting the oldest when Capacity is
// exceeded.
func (c *Collector) push(rec Record) {
	switch {
	case c.Capacity <= 0:
		c.records = append(c.records, rec)
	case len(c.records) < c.Capacity:
		// Still filling: head stays 0, the slice is in ingestion order.
		// Growth is doubled manually and clamped to Capacity — append's
		// size-class rounding would otherwise overshoot the bound.
		if cap(c.records) == len(c.records) {
			grown := 2 * cap(c.records)
			if grown == 0 {
				grown = 8
			}
			if grown > c.Capacity {
				grown = c.Capacity
			}
			fresh := make([]Record, len(c.records), grown)
			copy(fresh, c.records)
			c.records = fresh
		}
		c.records = append(c.records, rec)
	default:
		if len(c.records) > c.Capacity {
			// Capacity was lowered between ingests: move the newest
			// records into a right-sized buffer, releasing the oversized
			// backing array.
			all := c.Records()
			c.records = make([]Record, c.Capacity)
			copy(c.records, all[len(all)-c.Capacity:])
			c.head = 0
		}
		c.records[c.head] = rec
		c.head = (c.head + 1) % len(c.records)
	}
}

// forEach visits the stored records oldest first.
func (c *Collector) forEach(fn func(r *Record)) {
	n := len(c.records)
	for i := 0; i < n; i++ {
		fn(&c.records[(c.head+i)%n])
	}
}

// Len returns the number of stored records.
func (c *Collector) Len() int { return len(c.records) }

// Ingest stores the fail data of one completed session and returns the
// assigned session number.
func (c *Collector) Ingest(ecu string, fd stumps.FailData) uint32 {
	if c.counter == nil {
		c.counter = make(map[string]uint32)
	}
	c.counter[ecu]++
	rec := Record{ECU: ecu, Session: c.counter[ecu], Fail: fd}
	c.push(rec)
	return rec.Session
}

// Store stores an externally sequenced record verbatim, without
// touching the collector's own session counters — the fleet ingest
// path, where the reporting vehicle assigns the session numbers.
func (c *Collector) Store(rec Record) {
	c.push(rec)
}

// Records returns all stored records in ingestion order.
func (c *Collector) Records() []Record {
	out := make([]Record, 0, len(c.records))
	c.forEach(func(r *Record) { out = append(out, *r) })
	return out
}

// ByECU returns the stored records of one ECU.
func (c *Collector) ByECU(ecu string) []Record {
	var out []Record
	c.forEach(func(r *Record) {
		if r.ECU == ecu {
			out = append(out, *r)
		}
	})
	return out
}

// FailingECUs lists ECUs with at least one failing session, sorted —
// the workshop-repair answer.
func (c *Collector) FailingECUs() []string {
	set := make(map[string]bool)
	c.forEach(func(r *Record) {
		if !r.Fail.Pass() {
			set[r.ECU] = true
		}
	})
	out := make([]string, 0, len(set))
	for e := range set {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// Clear erases the fail memory (workshop "clear DTCs" analogue).
func (c *Collector) Clear() {
	c.records = nil
	c.head = 0
}

// StorageBytes returns the current memory footprint of the stored fail
// data at 32-bit signatures — the quantity the paper bounds at roughly
// 638 bytes per session.
func (c *Collector) StorageBytes() int {
	n := 0
	c.forEach(func(r *Record) {
		n += recordHeaderBytes + len(r.ECU) + r.Fail.SizeBytes(32)
	})
	return n
}

const recordHeaderBytes = 4 /* session */ + 2 /* ecu len */ + 2 /* windows */ + 2 /* entries */

// wire format: all integers little-endian.
//
//	u32 session | u16 len(ecu) | ecu bytes | u16 windows | u16 nEntries
//	then per entry: u16 window | u64 got | u64 want

// Marshal serializes a record for off-board transfer (failure
// analysis export).
func Marshal(r Record) ([]byte, error) {
	if len(r.ECU) > 0xFFFF {
		return nil, fmt.Errorf("gateway: ECU name too long")
	}
	if r.Fail.Windows > 0xFFFF || len(r.Fail.Entries) > 0xFFFF {
		return nil, fmt.Errorf("gateway: fail data too large to marshal")
	}
	var buf bytes.Buffer
	binary.Write(&buf, binary.LittleEndian, r.Session)
	binary.Write(&buf, binary.LittleEndian, uint16(len(r.ECU)))
	buf.WriteString(r.ECU)
	binary.Write(&buf, binary.LittleEndian, uint16(r.Fail.Windows))
	binary.Write(&buf, binary.LittleEndian, uint16(len(r.Fail.Entries)))
	for _, e := range r.Fail.Entries {
		if e.Window < 0 || e.Window > 0xFFFF {
			return nil, fmt.Errorf("gateway: window index %d out of range", e.Window)
		}
		binary.Write(&buf, binary.LittleEndian, uint16(e.Window))
		binary.Write(&buf, binary.LittleEndian, e.Got)
		binary.Write(&buf, binary.LittleEndian, e.Want)
	}
	return buf.Bytes(), nil
}

// Unmarshal parses a record produced by Marshal.
func Unmarshal(data []byte) (Record, error) {
	buf := bytes.NewReader(data)
	var r Record
	var ecuLen, windows, nEntries uint16
	if err := binary.Read(buf, binary.LittleEndian, &r.Session); err != nil {
		return Record{}, fmt.Errorf("%w: session: %v", ErrTruncated, err)
	}
	if err := binary.Read(buf, binary.LittleEndian, &ecuLen); err != nil {
		return Record{}, fmt.Errorf("%w: name length: %v", ErrTruncated, err)
	}
	name := make([]byte, ecuLen)
	if _, err := io.ReadFull(buf, name); err != nil {
		// io.ReadFull never tolerates a short read the way buf.Read does:
		// a blob ending inside the declared name is truncated, full stop,
		// regardless of what (if anything) follows.
		return Record{}, fmt.Errorf("%w: ECU name: %v", ErrTruncated, err)
	}
	r.ECU = string(name)
	if err := binary.Read(buf, binary.LittleEndian, &windows); err != nil {
		return Record{}, fmt.Errorf("%w: windows: %v", ErrTruncated, err)
	}
	if err := binary.Read(buf, binary.LittleEndian, &nEntries); err != nil {
		return Record{}, fmt.Errorf("%w: entry count: %v", ErrTruncated, err)
	}
	r.Fail.Windows = int(windows)
	for i := 0; i < int(nEntries); i++ {
		var w uint16
		var e stumps.FailEntry
		if err := binary.Read(buf, binary.LittleEndian, &w); err != nil {
			return Record{}, fmt.Errorf("%w: entry %d: %v", ErrTruncated, i, err)
		}
		if err := binary.Read(buf, binary.LittleEndian, &e.Got); err != nil {
			return Record{}, fmt.Errorf("%w: entry %d: %v", ErrTruncated, i, err)
		}
		if err := binary.Read(buf, binary.LittleEndian, &e.Want); err != nil {
			return Record{}, fmt.Errorf("%w: entry %d: %v", ErrTruncated, i, err)
		}
		e.Window = int(w)
		r.Fail.Entries = append(r.Fail.Entries, e)
	}
	if buf.Len() != 0 {
		return Record{}, fmt.Errorf("%w: %d trailing bytes", ErrTrailingGarbage, buf.Len())
	}
	return r, nil
}

// Export serializes the whole fail memory, length-prefixing each
// record.
func (c *Collector) Export() ([]byte, error) {
	var buf bytes.Buffer
	var exportErr error
	c.forEach(func(r *Record) {
		if exportErr != nil {
			return
		}
		b, err := Marshal(*r)
		if err != nil {
			exportErr = err
			return
		}
		binary.Write(&buf, binary.LittleEndian, uint32(len(b)))
		buf.Write(b)
	})
	if exportErr != nil {
		return nil, exportErr
	}
	return buf.Bytes(), nil
}

// Import parses an Export blob into a fresh record list. It rejects
// dangling bytes after the last complete record (ErrTrailingGarbage)
// and two records with the same (ECU, session) pair
// (ErrDuplicateSequence).
func Import(data []byte) ([]Record, error) {
	var out []Record
	seen := make(map[string]bool)
	for off := 0; off < len(data); {
		if off+4 > len(data) {
			return nil, fmt.Errorf("%w: %d-byte partial length prefix at offset %d", ErrTrailingGarbage, len(data)-off, off)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if off+n > len(data) {
			return nil, fmt.Errorf("gateway: truncated record at %d", off)
		}
		r, err := Unmarshal(data[off : off+n])
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("%s#%d", r.ECU, r.Session)
		if seen[key] {
			return nil, fmt.Errorf("%w: ECU %q session %d", ErrDuplicateSequence, r.ECU, r.Session)
		}
		seen[key] = true
		out = append(out, r)
		off += n
	}
	return out, nil
}
