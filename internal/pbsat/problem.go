// Package pbsat implements a small pseudo-Boolean constraint solver:
// linear 0/1 constraints (the ILP of the paper's Section III-C) solved
// by DPLL search with slack-based unit propagation and an externally
// supplied decision order.
//
// The external decision order is the heart of SAT-decoding
// (Lukasiewycz et al.): the evolutionary optimizer evolves variable
// priorities and preferred polarities; the solver turns every genotype
// into a *feasible* implementation by construction, searching near the
// genotype first.
package pbsat

import "fmt"

// Var is a 1-based Boolean variable index.
type Var int

// Lit is a possibly negated variable.
type Lit struct {
	Var Var
	Neg bool
}

// Pos returns the positive literal of v.
func Pos(v Var) Lit { return Lit{Var: v} }

// Not returns the negated literal of v.
func Not(v Var) Lit { return Lit{Var: v, Neg: true} }

// Negated returns the complement literal.
func (l Lit) Negated() Lit { return Lit{Var: l.Var, Neg: !l.Neg} }

// String renders the literal like "x3" or "~x3".
func (l Lit) String() string {
	if l.Neg {
		return fmt.Sprintf("~x%d", int(l.Var))
	}
	return fmt.Sprintf("x%d", int(l.Var))
}

// Term is one weighted literal of a constraint.
type Term struct {
	Coef int
	Lit  Lit
}

// Constraint is a normalized pseudo-Boolean constraint
// Σ Coef_i · Lit_i ≥ Bound with all coefficients positive.
type Constraint struct {
	Terms []Term
	Bound int
	Tag   string // optional origin label for diagnostics
}

// maxSum returns the sum of all coefficients.
func (c *Constraint) maxSum() int {
	s := 0
	for _, t := range c.Terms {
		s += t.Coef
	}
	return s
}

// Problem is a conjunction of pseudo-Boolean constraints over numbered
// variables.
type Problem struct {
	names       []string
	constraints []Constraint
}

// NewProblem returns an empty problem.
func NewProblem() *Problem { return &Problem{} }

// NewVar allocates a fresh variable with a debugging name.
func (p *Problem) NewVar(name string) Var {
	p.names = append(p.names, name)
	return Var(len(p.names))
}

// NumVars returns the number of allocated variables.
func (p *Problem) NumVars() int { return len(p.names) }

// Name returns the debugging name of v.
func (p *Problem) Name(v Var) string {
	if v < 1 || int(v) > len(p.names) {
		return fmt.Sprintf("x%d", int(v))
	}
	return p.names[v-1]
}

// NumConstraints returns the number of stored (normalized) constraints.
func (p *Problem) NumConstraints() int { return len(p.constraints) }

// Constraints exposes the normalized constraint slice (read-only use).
func (p *Problem) Constraints() []Constraint { return p.constraints }

// AddGE adds Σ coef_i·lit_i ≥ bound. Coefficients may be negative or
// zero; the constraint is normalized to positive coefficients by
// flipping literals (a·l ≡ a − a·¬l). Trivially true constraints are
// dropped; trivially false ones are kept and will make the problem
// unsatisfiable.
func (p *Problem) AddGE(terms []Term, bound int, tag string) {
	var norm []Term
	for _, t := range terms {
		switch {
		case t.Coef == 0:
			// drop
		case t.Coef > 0:
			norm = append(norm, t)
		default:
			// a·l with a<0: substitute l = 1 − ¬l.
			norm = append(norm, Term{Coef: -t.Coef, Lit: t.Lit.Negated()})
			bound -= t.Coef // bound − a (a negative → bound grows)
		}
	}
	c := Constraint{Terms: norm, Bound: bound, Tag: tag}
	if bound <= 0 {
		return // always satisfied
	}
	p.constraints = append(p.constraints, c)
}

// AddLE adds Σ coef_i·lit_i ≤ bound via negation.
func (p *Problem) AddLE(terms []Term, bound int, tag string) {
	neg := make([]Term, len(terms))
	for i, t := range terms {
		neg[i] = Term{Coef: -t.Coef, Lit: t.Lit}
	}
	p.AddGE(neg, -bound, tag)
}

// AddEQ adds Σ coef_i·lit_i = bound as a GE/LE pair.
func (p *Problem) AddEQ(terms []Term, bound int, tag string) {
	p.AddGE(terms, bound, tag)
	p.AddLE(terms, bound, tag)
}

// AddClause adds the disjunction of the literals (at least one true).
func (p *Problem) AddClause(tag string, lits ...Lit) {
	terms := make([]Term, len(lits))
	for i, l := range lits {
		terms[i] = Term{Coef: 1, Lit: l}
	}
	p.AddGE(terms, 1, tag)
}

// AtMostOne constrains at most one of the literals to be true.
func (p *Problem) AtMostOne(tag string, lits ...Lit) {
	terms := make([]Term, len(lits))
	for i, l := range lits {
		terms[i] = Term{Coef: 1, Lit: l}
	}
	p.AddLE(terms, 1, tag)
}

// ExactlyOne constrains exactly one of the literals to be true.
func (p *Problem) ExactlyOne(tag string, lits ...Lit) {
	terms := make([]Term, len(lits))
	for i, l := range lits {
		terms[i] = Term{Coef: 1, Lit: l}
	}
	p.AddEQ(terms, 1, tag)
}

// Implies adds a → b.
func (p *Problem) Implies(a, b Lit, tag string) {
	p.AddClause(tag, a.Negated(), b)
}

// Equiv adds a ↔ b.
func (p *Problem) Equiv(a, b Lit, tag string) {
	p.Implies(a, b, tag)
	p.Implies(b, a, tag)
}
