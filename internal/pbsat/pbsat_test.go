package pbsat

import (
	"math/rand"
	"testing"
)

func TestLitBasics(t *testing.T) {
	l := Pos(3)
	if l.String() != "x3" || l.Negated().String() != "~x3" {
		t.Fatalf("lit rendering: %v %v", l, l.Negated())
	}
	if Not(3) != (Lit{Var: 3, Neg: true}) {
		t.Fatal("Not wrong")
	}
}

func TestSimpleSAT(t *testing.T) {
	p := NewProblem()
	a := p.NewVar("a")
	b := p.NewVar("b")
	p.AddClause("a|b", Pos(a), Pos(b))
	p.AddClause("~a", Not(a))
	res := NewSolver(p).Solve(nil)
	if !res.SAT {
		t.Fatal("unsat")
	}
	if res.Model.Get(a) || !res.Model.Get(b) {
		t.Fatalf("model = %v", res.Model)
	}
	if bad := p.Verify(res.Model); len(bad) != 0 {
		t.Fatalf("verify = %v", bad)
	}
}

func TestSimpleUNSAT(t *testing.T) {
	p := NewProblem()
	a := p.NewVar("a")
	p.AddClause("a", Pos(a))
	p.AddClause("~a", Not(a))
	res := NewSolver(p).Solve(nil)
	if res.SAT || res.Aborted {
		t.Fatalf("res = %+v, want clean UNSAT", res)
	}
}

func TestExactlyOne(t *testing.T) {
	p := NewProblem()
	vars := make([]Var, 5)
	lits := make([]Lit, 5)
	for i := range vars {
		vars[i] = p.NewVar("v")
		lits[i] = Pos(vars[i])
	}
	p.ExactlyOne("eo", lits...)
	res := NewSolver(p).Solve(nil)
	if !res.SAT {
		t.Fatal("unsat")
	}
	count := 0
	for _, v := range vars {
		if res.Model.Get(v) {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("exactly-one violated: %d true", count)
	}
}

func TestPBBound(t *testing.T) {
	// 2a + 3b + 4c >= 6 with a forced false: needs b and c.
	p := NewProblem()
	a, b, c := p.NewVar("a"), p.NewVar("b"), p.NewVar("c")
	p.AddGE([]Term{{2, Pos(a)}, {3, Pos(b)}, {4, Pos(c)}}, 6, "ge6")
	p.AddClause("~a", Not(a))
	res := NewSolver(p).Solve(nil)
	if !res.SAT {
		t.Fatal("unsat")
	}
	if !res.Model.Get(b) || !res.Model.Get(c) {
		t.Fatalf("model = %v, want b,c true", res.Model)
	}
}

func TestNegativeCoefficientNormalization(t *testing.T) {
	// a - b >= 0 means b → a.
	p := NewProblem()
	a, b := p.NewVar("a"), p.NewVar("b")
	p.AddGE([]Term{{1, Pos(a)}, {-1, Pos(b)}}, 0, "a-b>=0")
	p.AddClause("b", Pos(b))
	res := NewSolver(p).Solve(nil)
	if !res.SAT || !res.Model.Get(a) {
		t.Fatalf("res = %+v", res)
	}
}

func TestAddLEAndEQ(t *testing.T) {
	p := NewProblem()
	vars := make([]Var, 4)
	terms := make([]Term, 4)
	for i := range vars {
		vars[i] = p.NewVar("v")
		terms[i] = Term{Coef: 1, Lit: Pos(vars[i])}
	}
	p.AddEQ(terms, 2, "eq2")
	res := NewSolver(p).Solve(nil)
	if !res.SAT {
		t.Fatal("unsat")
	}
	n := 0
	for _, v := range vars {
		if res.Model.Get(v) {
			n++
		}
	}
	if n != 2 {
		t.Fatalf("eq2 violated: %d", n)
	}
}

func TestImpliesEquiv(t *testing.T) {
	p := NewProblem()
	a, b, c := p.NewVar("a"), p.NewVar("b"), p.NewVar("c")
	p.Implies(Pos(a), Pos(b), "a->b")
	p.Equiv(Pos(b), Pos(c), "b<->c")
	p.AddClause("a", Pos(a))
	res := NewSolver(p).Solve(nil)
	if !res.SAT || !res.Model.Get(b) || !res.Model.Get(c) {
		t.Fatalf("res = %+v", res)
	}
}

func TestPriorityBranchingSteersModel(t *testing.T) {
	// a|b with no other constraints: whichever variable gets priority
	// and polarity true must be chosen.
	for _, prefer := range []int{1, 2} {
		p := NewProblem()
		a := p.NewVar("a")
		b := p.NewVar("b")
		p.AddClause("a|b", Pos(a), Pos(b))
		prio := map[Var]float64{a: 0, b: 0}
		pref := map[Var]bool{a: false, b: false}
		chosen := Var(prefer)
		prio[chosen] = 10
		pref[chosen] = true
		res := NewSolver(p).Solve(NewPriorityBranching(prio, pref))
		if !res.SAT {
			t.Fatal("unsat")
		}
		if !res.Model.Get(chosen) {
			t.Fatalf("prefer %v: model %v did not honor priority", chosen, res.Model)
		}
	}
}

func TestPriorityBranchingReusable(t *testing.T) {
	p := NewProblem()
	a := p.NewVar("a")
	p.AddClause("a", Pos(a))
	br := NewPriorityBranching(map[Var]float64{a: 1}, map[Var]bool{a: true})
	s := NewSolver(p)
	for i := 0; i < 3; i++ {
		if res := s.Solve(br); !res.SAT {
			t.Fatalf("round %d unsat", i)
		}
	}
}

// TestAgainstBruteForce compares SAT/UNSAT verdicts with exhaustive
// enumeration on random small PB problems.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for round := 0; round < 200; round++ {
		nVars := 3 + rng.Intn(6)
		p := NewProblem()
		vars := make([]Var, nVars)
		for i := range vars {
			vars[i] = p.NewVar("v")
		}
		nCons := 1 + rng.Intn(6)
		for c := 0; c < nCons; c++ {
			nTerms := 1 + rng.Intn(nVars)
			terms := make([]Term, nTerms)
			maxSum := 0
			for i := range terms {
				coef := 1 + rng.Intn(4)
				if rng.Intn(4) == 0 {
					coef = -coef
				}
				terms[i] = Term{Coef: coef, Lit: Lit{Var: vars[rng.Intn(nVars)], Neg: rng.Intn(2) == 0}}
				if coef > 0 {
					maxSum += coef
				}
			}
			bound := rng.Intn(maxSum + 2)
			switch rng.Intn(3) {
			case 0:
				p.AddGE(terms, bound, "ge")
			case 1:
				p.AddLE(terms, bound, "le")
			default:
				p.AddEQ(terms, bound, "eq")
			}
		}
		res := NewSolver(p).Solve(nil)
		want := bruteForceSAT(p, nVars)
		if res.Aborted {
			t.Fatalf("round %d aborted", round)
		}
		if res.SAT != want {
			t.Fatalf("round %d: solver %v, brute force %v", round, res.SAT, want)
		}
		if res.SAT {
			if bad := p.Verify(res.Model); len(bad) != 0 {
				t.Fatalf("round %d: model violates %v", round, bad)
			}
		}
	}
}

func bruteForceSAT(p *Problem, nVars int) bool {
	a := make(Assignment, nVars)
	for m := 0; m < 1<<uint(nVars); m++ {
		for i := 0; i < nVars; i++ {
			a[i] = m>>uint(i)&1 == 1
		}
		if len(p.Verify(a)) == 0 {
			return true
		}
	}
	return false
}

func TestVerifyReportsTags(t *testing.T) {
	p := NewProblem()
	a := p.NewVar("a")
	p.AddClause("needsA", Pos(a))
	bad := p.Verify(Assignment{false})
	if len(bad) != 1 || bad[0] != "needsA" {
		t.Fatalf("bad = %v", bad)
	}
}

func TestConflictLimitAborts(t *testing.T) {
	// Pigeonhole PHP(5,4): 5 pigeons in 4 holes — hard for DPLL without
	// learning; with a tiny conflict budget it must abort, not hang.
	p := NewProblem()
	n, m := 5, 4
	holeVars := make([][]Var, n)
	for i := range holeVars {
		holeVars[i] = make([]Var, m)
		lits := make([]Lit, m)
		for j := range holeVars[i] {
			holeVars[i][j] = p.NewVar("p")
			lits[j] = Pos(holeVars[i][j])
		}
		p.AddClause("pigeon", lits...)
	}
	for j := 0; j < m; j++ {
		lits := make([]Lit, n)
		for i := 0; i < n; i++ {
			lits[i] = Pos(holeVars[i][j])
		}
		p.AtMostOne("hole", lits...)
	}
	s := NewSolver(p)
	s.MaxConflicts = 10
	res := s.Solve(nil)
	if res.SAT {
		t.Fatal("pigeonhole satisfied")
	}
	// Either proven UNSAT within 10 conflicts or aborted — both fine,
	// but it must terminate (this test hanging is the failure mode).
}

func TestProblemNames(t *testing.T) {
	p := NewProblem()
	v := p.NewVar("hello")
	if p.Name(v) != "hello" || p.Name(Var(99)) == "hello" {
		t.Fatal("names wrong")
	}
	if p.NumVars() != 1 {
		t.Fatal("NumVars wrong")
	}
}
