package pbsat

import (
	"math/rand"
	"testing"
)

// refSolver is the pre-counter propagation engine kept verbatim as a
// test oracle: propagate recomputes every touched constraint's
// maxPossible from its terms, and every constraint mentioning a freshly
// assigned variable is re-queued. The counter-based Solver must agree
// with it verdict-for-verdict, model-for-model and count-for-count —
// that equivalence is what makes the optimization invisible to the
// deterministic decode pipeline.
type refSolver struct {
	p            *Problem
	maxConflicts int

	assign  []int8
	trail   []Var
	occurs  [][]int32
	inQueue []bool
	queue   []int32
}

func newRefSolver(p *Problem) *refSolver {
	s := &refSolver{
		p:            p,
		maxConflicts: 1_000_000,
		assign:       make([]int8, p.NumVars()),
		occurs:       make([][]int32, p.NumVars()),
		inQueue:      make([]bool, len(p.constraints)),
	}
	for ci := range p.constraints {
		for _, t := range p.constraints[ci].Terms {
			v := int(t.Lit.Var) - 1
			s.occurs[v] = append(s.occurs[v], int32(ci))
		}
	}
	return s
}

func (s *refSolver) value(l Lit) int8 {
	v := s.assign[l.Var-1]
	if l.Neg {
		return -v
	}
	return v
}

func (s *refSolver) assignLit(l Lit) {
	val := int8(1)
	if l.Neg {
		val = -1
	}
	s.assign[l.Var-1] = val
	s.trail = append(s.trail, l.Var)
	for _, ci := range s.occurs[l.Var-1] {
		if !s.inQueue[ci] {
			s.inQueue[ci] = true
			s.queue = append(s.queue, ci)
		}
	}
}

func (s *refSolver) enqueueAll() {
	s.queue = s.queue[:0]
	for ci := range s.p.constraints {
		s.inQueue[ci] = true
		s.queue = append(s.queue, int32(ci))
	}
}

func (s *refSolver) propagate(res *Result) bool {
	for len(s.queue) > 0 {
		ci := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.inQueue[ci] = false
		c := &s.p.constraints[ci]
		maxPossible := 0
		for _, t := range c.Terms {
			if s.value(t.Lit) >= 0 {
				maxPossible += t.Coef
			}
		}
		if maxPossible < c.Bound {
			for _, qi := range s.queue {
				s.inQueue[qi] = false
			}
			s.queue = s.queue[:0]
			s.inQueue[ci] = false
			return false
		}
		slack := maxPossible - c.Bound
		for _, t := range c.Terms {
			if s.value(t.Lit) == 0 && t.Coef > slack {
				s.assignLit(t.Lit)
				res.Propagated++
			}
		}
	}
	return true
}

func (s *refSolver) solve(branch Branching) Result {
	res := Result{}
	for i := range s.assign {
		s.assign[i] = 0
	}
	s.trail = s.trail[:0]
	s.enqueueAll()
	if pb, ok := branch.(*PriorityBranching); ok {
		pb.Reset()
	}
	isAssigned := func(v Var) bool { return s.assign[v-1] != 0 }

	var stack []decision
	for {
		ok := s.propagate(&res)
		if ok {
			l, any := s.nextDecision(branch, isAssigned)
			if !any {
				res.SAT = true
				res.Model = make(Assignment, len(s.assign))
				for i, v := range s.assign {
					res.Model[i] = v > 0
				}
				return res
			}
			stack = append(stack, decision{trailLen: len(s.trail), lit: l})
			s.assignLit(l)
			res.Decisions++
			continue
		}
		res.Conflicts++
		if res.Conflicts > s.maxConflicts {
			res.Aborted = true
			return res
		}
		flipped := false
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			for len(s.trail) > top.trailLen {
				v := s.trail[len(s.trail)-1]
				s.trail = s.trail[:len(s.trail)-1]
				s.assign[v-1] = 0
			}
			if !top.flipped {
				top.flipped = true
				top.lit = top.lit.Negated()
				s.assignLit(top.lit)
				flipped = true
				break
			}
			stack = stack[:len(stack)-1]
		}
		if !flipped {
			return res
		}
	}
}

func (s *refSolver) nextDecision(branch Branching, isAssigned func(Var) bool) (Lit, bool) {
	if branch != nil {
		if l, ok := branch.Next(isAssigned); ok {
			return l, true
		}
	}
	for i, v := range s.assign {
		if v == 0 {
			return Lit{Var: Var(i + 1), Neg: true}, true
		}
	}
	return Lit{}, false
}

// randomProblem builds a random small PB problem plus a random priority
// branching over its variables, mirroring the brute-force test's
// generator but with more terms so counters actually matter.
func randomProblem(rng *rand.Rand) (*Problem, *PriorityBranching) {
	nVars := 3 + rng.Intn(10)
	p := NewProblem()
	vars := make([]Var, nVars)
	for i := range vars {
		vars[i] = p.NewVar("v")
	}
	nCons := 1 + rng.Intn(8)
	for c := 0; c < nCons; c++ {
		nTerms := 1 + rng.Intn(nVars)
		terms := make([]Term, nTerms)
		maxSum := 0
		for i := range terms {
			coef := 1 + rng.Intn(6)
			if rng.Intn(4) == 0 {
				coef = -coef
			}
			terms[i] = Term{Coef: coef, Lit: Lit{Var: vars[rng.Intn(nVars)], Neg: rng.Intn(2) == 0}}
			if coef > 0 {
				maxSum += coef
			}
		}
		bound := rng.Intn(maxSum + 2)
		switch rng.Intn(3) {
		case 0:
			p.AddGE(terms, bound, "ge")
		case 1:
			p.AddLE(terms, bound, "le")
		default:
			p.AddEQ(terms, bound, "eq")
		}
	}
	var br *PriorityBranching
	if rng.Intn(2) == 0 {
		prio := make(map[Var]float64, nVars)
		pref := make(map[Var]bool, nVars)
		for _, v := range vars {
			prio[v] = rng.Float64()
			pref[v] = rng.Intn(2) == 0
		}
		br = NewPriorityBranching(prio, pref)
	}
	return p, br
}

// TestCounterPropagationMatchesReference is the differential test: the
// counter-based solver and the recompute-from-scratch oracle must agree
// on verdict, model, and search statistics across randomized problems,
// with and without priority branching.
func TestCounterPropagationMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for round := 0; round < 500; round++ {
		p, br := randomProblem(rng)
		// Avoid a typed-nil Branching interface when no branching rolled.
		var branch Branching
		if br != nil {
			branch = br
		}
		got := NewSolver(p).Solve(branch)
		want := newRefSolver(p).solve(branch)
		if got.SAT != want.SAT || got.Aborted != want.Aborted {
			t.Fatalf("round %d: verdict (SAT=%v aborted=%v), oracle (SAT=%v aborted=%v)",
				round, got.SAT, got.Aborted, want.SAT, want.Aborted)
		}
		// Propagated is not compared: how many literals a conflicting
		// cascade assigns before the conflict is detected depends on the
		// queue order (and is rewound anyway); the search trajectory —
		// decisions and conflicts — is the deterministic invariant.
		if got.Decisions != want.Decisions || got.Conflicts != want.Conflicts {
			t.Fatalf("round %d: stats (d=%d c=%d), oracle (d=%d c=%d)",
				round, got.Decisions, got.Conflicts, want.Decisions, want.Conflicts)
		}
		if got.SAT {
			for i := range got.Model {
				if got.Model[i] != want.Model[i] {
					t.Fatalf("round %d: model differs at x%d", round, i+1)
				}
			}
			if bad := p.Verify(got.Model); len(bad) != 0 {
				t.Fatalf("round %d: model violates %v", round, bad)
			}
		}
	}
}

// TestSolverReuseMatchesFresh pins the state-reset contract: a single
// Solver solving a sequence of problems-with-branchings must return
// exactly what a fresh Solver returns at every step.
func TestSolverReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 50; round++ {
		p, _ := randomProblem(rng)
		reused := NewSolver(p)
		for i := 0; i < 4; i++ {
			var br Branching
			if i%2 == 1 {
				prio := make(map[Var]float64)
				pref := make(map[Var]bool)
				for v := 1; v <= p.NumVars(); v++ {
					prio[Var(v)] = rng.Float64()
					pref[Var(v)] = rng.Intn(2) == 0
				}
				br = NewPriorityBranching(prio, pref)
			}
			got := reused.Solve(br)
			want := NewSolver(p).Solve(br)
			if got.SAT != want.SAT || got.Decisions != want.Decisions || got.Conflicts != want.Conflicts {
				t.Fatalf("round %d call %d: reused (SAT=%v d=%d c=%d), fresh (SAT=%v d=%d c=%d)",
					round, i, got.SAT, got.Decisions, got.Conflicts, want.SAT, want.Decisions, want.Conflicts)
			}
			if got.SAT {
				for j := range got.Model {
					if got.Model[j] != want.Model[j] {
						t.Fatalf("round %d call %d: model differs at x%d", round, i, j+1)
					}
				}
			}
		}
	}
}

// TestSetDenseMatchesMapConstructor pins the dense-branching rebuild
// against the map-based constructor on random priorities.
func TestSetDenseMatchesMapConstructor(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	dense := NewDensePriorityBranching(0)
	for round := 0; round < 100; round++ {
		n := 1 + rng.Intn(20)
		prio := make([]float64, n)
		pref := make([]bool, n)
		mp := make(map[Var]float64, n)
		mb := make(map[Var]bool, n)
		for i := 0; i < n; i++ {
			prio[i] = float64(rng.Intn(4)) // coarse: force ties
			pref[i] = rng.Intn(2) == 0
			mp[Var(i+1)] = prio[i]
			mb[Var(i+1)] = pref[i]
		}
		dense.SetDense(prio, pref)
		ref := NewPriorityBranching(mp, mb)
		if len(dense.order) != len(ref.order) {
			t.Fatalf("round %d: order lengths %d vs %d", round, len(dense.order), len(ref.order))
		}
		for i := range dense.order {
			if dense.order[i] != ref.order[i] {
				t.Fatalf("round %d: order[%d] = %v vs %v", round, i, dense.order[i], ref.order[i])
			}
		}
	}
}
