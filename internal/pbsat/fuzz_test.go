package pbsat

import (
	"testing"
)

// FuzzSolveVerify decodes an arbitrary byte string into a PB problem
// and cross-checks the solver against the problem's own Verify: every
// model returned as SAT must satisfy every constraint, and the
// counter-based propagator must agree with the recompute-from-scratch
// oracle on the verdict. Runs as a regression test over the seed corpus
// under plain `go test`.
func FuzzSolveVerify(f *testing.F) {
	f.Add([]byte{3, 2, 1, 0, 5, 2, 1, 1, 6, 2})
	f.Add([]byte{5, 10, 200, 3, 7, 9, 11, 13, 0, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{1, 1, 0, 255})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		p, ok := problemFromBytes(data)
		if !ok {
			return
		}
		s := NewSolver(p)
		s.MaxConflicts = 10_000
		res := s.Solve(nil)
		if res.SAT {
			if bad := p.Verify(res.Model); len(bad) != 0 {
				t.Fatalf("SAT model violates %v", bad)
			}
		}
		ref := newRefSolver(p)
		ref.maxConflicts = 10_000
		want := ref.solve(nil)
		if res.SAT != want.SAT || res.Aborted != want.Aborted || res.Conflicts != want.Conflicts {
			t.Fatalf("solver (SAT=%v aborted=%v c=%d) disagrees with oracle (SAT=%v aborted=%v c=%d)",
				res.SAT, res.Aborted, res.Conflicts, want.SAT, want.Aborted, want.Conflicts)
		}
	})
}

// problemFromBytes deterministically builds a small PB problem from a
// fuzz byte stream: byte 0 picks the variable count, then groups of
// bytes become weighted literals and bounds. Returns ok=false for
// streams too short to describe a problem.
func problemFromBytes(data []byte) (*Problem, bool) {
	if len(data) < 4 {
		return nil, false
	}
	nVars := 1 + int(data[0]%12)
	p := NewProblem()
	for i := 0; i < nVars; i++ {
		p.NewVar("v")
	}
	i := 1
	for i+2 < len(data) && p.NumConstraints() < 16 {
		nTerms := 1 + int(data[i]%uint8(nVars))
		i++
		var terms []Term
		for t := 0; t < nTerms && i+1 < len(data); t++ {
			coef := int(data[i]%9) - 4 // [-4, 4], zeros dropped by AddGE
			v := Var(int(data[i+1])%nVars + 1)
			neg := data[i+1]&0x80 != 0
			terms = append(terms, Term{Coef: coef, Lit: Lit{Var: v, Neg: neg}})
			i += 2
		}
		if len(terms) == 0 || i >= len(data) {
			break
		}
		bound := int(data[i] % 16)
		kind := data[i] / 16 % 3
		i++
		switch kind {
		case 0:
			p.AddGE(terms, bound, "ge")
		case 1:
			p.AddLE(terms, bound, "le")
		default:
			p.AddEQ(terms, bound, "eq")
		}
	}
	if p.NumConstraints() == 0 {
		return nil, false
	}
	return p, true
}
