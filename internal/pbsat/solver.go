package pbsat

import (
	"fmt"
	"sort"
)

// Assignment is a model: value per variable, indexed 1..NumVars.
type Assignment []bool

// Get returns the value of v.
func (a Assignment) Get(v Var) bool { return a[v-1] }

// Branching supplies the decision order of the DPLL search. It is how
// SAT-decoding injects the genotype: decisions follow the evolved
// priorities, so the first model found lies near the genotype.
type Branching interface {
	// Next returns the literal to decide next among unassigned
	// variables; ok=false means "no preference left" and lets the solver
	// fall back to the first unassigned variable (preferring false, the
	// cheaper polarity for allocation-style problems).
	Next(isAssigned func(Var) bool) (Lit, bool)
}

// PriorityBranching decides variables in descending priority with the
// stored preferred polarity. A zero PriorityBranching is empty; (re)fill
// it with SetDense to reuse its buffers across decodes.
type PriorityBranching struct {
	order []Lit     // sorted by priority desc, then variable asc
	prio  []float64 // priority per order entry, co-sorted with order
	pos   int
}

// NewPriorityBranching builds a branching from per-variable priorities
// and preferred values. Variables missing from the maps are left to the
// solver's fallback.
func NewPriorityBranching(priority map[Var]float64, preferTrue map[Var]bool) *PriorityBranching {
	b := &PriorityBranching{
		order: make([]Lit, 0, len(priority)),
		prio:  make([]float64, 0, len(priority)),
	}
	for v := range priority {
		b.order = append(b.order, Lit{Var: v, Neg: !preferTrue[v]})
		b.prio = append(b.prio, priority[v])
	}
	b.sortOrder()
	return b
}

// NewDensePriorityBranching returns an empty branching with buffers
// sized for n variables, ready for SetDense.
func NewDensePriorityBranching(n int) *PriorityBranching {
	return &PriorityBranching{
		order: make([]Lit, 0, n),
		prio:  make([]float64, 0, n),
	}
}

// SetDense rebuilds the decision order in place from dense per-variable
// slices: entry i holds the priority and preferred polarity of variable
// i+1. It reuses the branching's buffers, so steady-state calls do not
// allocate. The resulting order matches NewPriorityBranching on maps
// with the same contents: priority descending, ties by variable index.
func (b *PriorityBranching) SetDense(priority []float64, preferTrue []bool) {
	b.order = b.order[:0]
	b.prio = b.prio[:0]
	for i, p := range priority {
		b.order = append(b.order, Lit{Var: Var(i + 1), Neg: !preferTrue[i]})
		b.prio = append(b.prio, p)
	}
	b.sortOrder()
	b.pos = 0
}

// sortOrder establishes the deterministic decision order: priority
// descending, ties broken by ascending variable index.
func (b *PriorityBranching) sortOrder() {
	sort.Sort((*byPriority)(b))
}

// byPriority sorts order/prio together; it aliases PriorityBranching so
// the sorter interface value never allocates per call.
type byPriority PriorityBranching

func (s *byPriority) Len() int { return len(s.order) }
func (s *byPriority) Less(i, j int) bool {
	if s.prio[i] != s.prio[j] {
		return s.prio[i] > s.prio[j]
	}
	return s.order[i].Var < s.order[j].Var
}
func (s *byPriority) Swap(i, j int) {
	s.order[i], s.order[j] = s.order[j], s.order[i]
	s.prio[i], s.prio[j] = s.prio[j], s.prio[i]
}

// Next implements Branching.
func (b *PriorityBranching) Next(isAssigned func(Var) bool) (Lit, bool) {
	for b.pos < len(b.order) {
		l := b.order[b.pos]
		if !isAssigned(l.Var) {
			return l, true
		}
		b.pos++
	}
	return Lit{}, false
}

// Reset rewinds the branching for a fresh Solve call.
func (b *PriorityBranching) Reset() { b.pos = 0 }

// Result reports the outcome of a Solve call.
type Result struct {
	SAT bool
	// Model is the satisfying assignment. It aliases a buffer owned by
	// the solver and is only valid until the next Solve call on the same
	// Solver; copy it to retain it longer.
	Model      Assignment
	Conflicts  int
	Decisions  int
	Propagated int
	// Aborted is set when the conflict limit was exceeded before a
	// verdict; SAT is false in that case but unsatisfiability is NOT
	// proven.
	Aborted bool
}

// occurrence is one (constraint, term) incidence of a variable, carrying
// everything the counter update needs: which constraint to touch, the
// term's weight, and the assignment sign under which the term's literal
// becomes false (-1 for a positive literal, +1 for a negated one).
type occurrence struct {
	ci        int32
	coef      int32
	falseWhen int8
}

// Solver runs chronological DPLL with counter-based pseudo-Boolean unit
// propagation: each constraint's maximum achievable sum is maintained
// incrementally on assign/unassign instead of being recomputed from its
// terms on every visit. A Solver is reusable: Solve resets all search
// state, so one Solver amortizes its index structures over many calls
// (the SAT-decoding hot loop). It is not safe for concurrent use.
type Solver struct {
	p *Problem
	// MaxConflicts bounds the search (0 = 1,000,000).
	MaxConflicts int

	assign []int8 // 1=true, -1=false, 0=unassigned; index var-1
	trail  []Var

	// occs maps each variable to its (constraint, coef, polarity)
	// incidences, so an assignment updates exactly the counters it
	// affects — and wakes only constraints whose slack shrank.
	occs [][]occurrence

	// maxPossible[ci] is the current Σ coef over terms whose literal is
	// not yet false; initMax is its all-unassigned reset template.
	maxPossible []int64
	initMax     []int64
	bounds      []int64 // per-constraint bound, densely packed
	maxCoef     []int64 // largest term weight, to skip no-op scans

	inQueue []bool  // constraint index -> queued for recheck
	queue   []int32 // recheck worklist

	stack    []decision // reusable decision stack
	modelBuf Assignment // backs Result.Model across calls
}

// NewSolver prepares a solver for the problem.
func NewSolver(p *Problem) *Solver {
	n := len(p.constraints)
	s := &Solver{
		p:            p,
		MaxConflicts: 1_000_000,
		assign:       make([]int8, p.NumVars()),
		occs:         make([][]occurrence, p.NumVars()),
		maxPossible:  make([]int64, n),
		initMax:      make([]int64, n),
		bounds:       make([]int64, n),
		maxCoef:      make([]int64, n),
		inQueue:      make([]bool, n),
	}
	for ci := range p.constraints {
		c := &p.constraints[ci]
		s.bounds[ci] = int64(c.Bound)
		for _, t := range c.Terms {
			if t.Coef > 1<<31-1 {
				panic(fmt.Sprintf("pbsat: coefficient %d exceeds solver range", t.Coef))
			}
			v := int(t.Lit.Var) - 1
			falseWhen := int8(-1)
			if t.Lit.Neg {
				falseWhen = 1
			}
			s.occs[v] = append(s.occs[v], occurrence{ci: int32(ci), coef: int32(t.Coef), falseWhen: falseWhen})
			s.initMax[ci] += int64(t.Coef)
			if int64(t.Coef) > s.maxCoef[ci] {
				s.maxCoef[ci] = int64(t.Coef)
			}
		}
	}
	copy(s.maxPossible, s.initMax)
	return s
}

func (s *Solver) value(l Lit) int8 {
	v := s.assign[l.Var-1]
	if l.Neg {
		return -v
	}
	return v
}

// assignLit records the assignment, updates the slack counters of every
// constraint a falsified term belongs to, and wakes those constraints.
// Constraints where the literal became true are not queued: their slack
// is unchanged, so no new propagation or conflict can arise from them.
func (s *Solver) assignLit(l Lit) {
	val := int8(1)
	if l.Neg {
		val = -1
	}
	s.assign[l.Var-1] = val
	s.trail = append(s.trail, l.Var)
	for _, o := range s.occs[l.Var-1] {
		if o.falseWhen != val {
			continue
		}
		s.maxPossible[o.ci] -= int64(o.coef)
		if !s.inQueue[o.ci] {
			s.inQueue[o.ci] = true
			s.queue = append(s.queue, o.ci)
		}
	}
}

// unassign undoes one trail entry, restoring the slack counters.
func (s *Solver) unassign(v Var) {
	val := s.assign[v-1]
	s.assign[v-1] = 0
	for _, o := range s.occs[v-1] {
		if o.falseWhen == val {
			s.maxPossible[o.ci] += int64(o.coef)
		}
	}
}

// enqueueAll schedules every constraint for one initial check.
func (s *Solver) enqueueAll() {
	s.queue = s.queue[:0]
	for ci := range s.inQueue {
		s.inQueue[ci] = true
		s.queue = append(s.queue, int32(ci))
	}
}

// propagate runs slack-based unit propagation over the recheck
// worklist: only constraints whose slack shrank are revisited, and a
// constraint's terms are scanned only when its largest weight exceeds
// the current slack (otherwise nothing can be forced). It returns false
// on conflict; the queue is drained either way (a conflict clears it,
// since backtracking re-seeds from the flipped decision's occurrences).
func (s *Solver) propagate(res *Result) bool {
	for len(s.queue) > 0 {
		ci := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.inQueue[ci] = false
		slack := s.maxPossible[ci] - s.bounds[ci]
		if slack < 0 {
			// Conflict: clear the queue; the caller backtracks and
			// re-seeds via assignLit of the flipped decision.
			for _, qi := range s.queue {
				s.inQueue[qi] = false
			}
			s.queue = s.queue[:0]
			return false
		}
		if s.maxCoef[ci] <= slack {
			continue // no term outweighs the slack; nothing to force
		}
		for _, t := range s.p.constraints[ci].Terms {
			if int64(t.Coef) > slack && s.value(t.Lit) == 0 {
				s.assignLit(t.Lit)
				res.Propagated++
			}
		}
	}
	return true
}

// decision is one entry of the chronological decision stack.
type decision struct {
	trailLen int
	lit      Lit
	flipped  bool
}

// Solve searches for a model, deciding variables in the order supplied
// by branch (nil uses plain first-unassigned/false-first). All search
// state is rewound first, so the same Solver can serve many Solve calls
// without reallocating its indexes.
func (s *Solver) Solve(branch Branching) Result {
	res := Result{}
	for len(s.trail) > 0 {
		v := s.trail[len(s.trail)-1]
		s.trail = s.trail[:len(s.trail)-1]
		s.unassign(v)
	}
	s.enqueueAll()
	if pb, ok := branch.(*PriorityBranching); ok {
		pb.Reset()
	}
	isAssigned := func(v Var) bool { return s.assign[v-1] != 0 }

	s.stack = s.stack[:0]
	maxConf := s.MaxConflicts
	if maxConf <= 0 {
		maxConf = 1_000_000
	}

	for {
		ok := s.propagate(&res)
		if ok {
			l, any := s.nextDecision(branch, isAssigned)
			if !any {
				// All variables assigned (or none left to decide): model.
				res.SAT = true
				if s.modelBuf == nil {
					s.modelBuf = make(Assignment, len(s.assign))
				}
				for i, v := range s.assign {
					s.modelBuf[i] = v > 0
				}
				res.Model = s.modelBuf
				return res
			}
			s.stack = append(s.stack, decision{trailLen: len(s.trail), lit: l})
			s.assignLit(l)
			res.Decisions++
			continue
		}
		// Conflict: chronological backtracking.
		res.Conflicts++
		if res.Conflicts > maxConf {
			res.Aborted = true
			return res
		}
		flipped := false
		for len(s.stack) > 0 {
			top := &s.stack[len(s.stack)-1]
			// Undo trail past this decision.
			for len(s.trail) > top.trailLen {
				v := s.trail[len(s.trail)-1]
				s.trail = s.trail[:len(s.trail)-1]
				s.unassign(v)
			}
			if !top.flipped {
				top.flipped = true
				top.lit = top.lit.Negated()
				s.assignLit(top.lit)
				flipped = true
				break
			}
			s.stack = s.stack[:len(s.stack)-1]
		}
		if !flipped {
			return res // UNSAT
		}
	}
}

// nextDecision consults the branching, falling back to the first
// unassigned variable with negative polarity.
func (s *Solver) nextDecision(branch Branching, isAssigned func(Var) bool) (Lit, bool) {
	if branch != nil {
		if l, ok := branch.Next(isAssigned); ok {
			if s.assign[l.Var-1] != 0 {
				// Branching returned an assigned var despite the filter;
				// defensive fallback below.
				panic(fmt.Sprintf("pbsat: branching returned assigned variable x%d", int(l.Var)))
			}
			return l, true
		}
	}
	for i, v := range s.assign {
		if v == 0 {
			return Lit{Var: Var(i + 1), Neg: true}, true
		}
	}
	return Lit{}, false
}

// Verify checks a full assignment against every constraint and returns
// the tags of violated constraints (empty means satisfied).
func (p *Problem) Verify(a Assignment) []string {
	var bad []string
	for i := range p.constraints {
		c := &p.constraints[i]
		sum := 0
		for _, t := range c.Terms {
			val := a.Get(t.Lit.Var)
			if t.Lit.Neg {
				val = !val
			}
			if val {
				sum += t.Coef
			}
		}
		if sum < c.Bound {
			tag := c.Tag
			if tag == "" {
				tag = fmt.Sprintf("constraint#%d", i)
			}
			bad = append(bad, tag)
		}
	}
	return bad
}
