package pbsat

import (
	"fmt"
	"sort"
)

// Assignment is a model: value per variable, indexed 1..NumVars.
type Assignment []bool

// Get returns the value of v.
func (a Assignment) Get(v Var) bool { return a[v-1] }

// Branching supplies the decision order of the DPLL search. It is how
// SAT-decoding injects the genotype: decisions follow the evolved
// priorities, so the first model found lies near the genotype.
type Branching interface {
	// Next returns the literal to decide next among unassigned
	// variables; ok=false means "no preference left" and lets the solver
	// fall back to the first unassigned variable (preferring false, the
	// cheaper polarity for allocation-style problems).
	Next(isAssigned func(Var) bool) (Lit, bool)
}

// PriorityBranching decides variables in descending priority with the
// stored preferred polarity.
type PriorityBranching struct {
	order []Lit // pre-sorted by priority
	pos   int
}

// NewPriorityBranching builds a branching from per-variable priorities
// and preferred values. Variables missing from the maps are left to the
// solver's fallback.
func NewPriorityBranching(priority map[Var]float64, preferTrue map[Var]bool) *PriorityBranching {
	vars := make([]Var, 0, len(priority))
	for v := range priority {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool {
		if priority[vars[i]] != priority[vars[j]] {
			return priority[vars[i]] > priority[vars[j]]
		}
		return vars[i] < vars[j]
	})
	order := make([]Lit, len(vars))
	for i, v := range vars {
		order[i] = Lit{Var: v, Neg: !preferTrue[v]}
	}
	return &PriorityBranching{order: order}
}

// Next implements Branching.
func (b *PriorityBranching) Next(isAssigned func(Var) bool) (Lit, bool) {
	for b.pos < len(b.order) {
		l := b.order[b.pos]
		if !isAssigned(l.Var) {
			return l, true
		}
		b.pos++
	}
	return Lit{}, false
}

// Reset rewinds the branching for a fresh Solve call.
func (b *PriorityBranching) Reset() { b.pos = 0 }

// Result reports the outcome of a Solve call.
type Result struct {
	SAT        bool
	Model      Assignment
	Conflicts  int
	Decisions  int
	Propagated int
	// Aborted is set when the conflict limit was exceeded before a
	// verdict; SAT is false in that case but unsatisfiability is NOT
	// proven.
	Aborted bool
}

// Solver runs chronological DPLL with slack-based pseudo-Boolean unit
// propagation.
type Solver struct {
	p *Problem
	// MaxConflicts bounds the search (0 = 1,000,000).
	MaxConflicts int

	assign []int8 // 1=true, -1=false, 0=unassigned; index var-1
	trail  []Var

	// occurs maps each variable to the constraints mentioning it, so
	// propagation only revisits constraints a new assignment can affect.
	occurs  [][]int32
	inQueue []bool  // constraint index -> queued for recheck
	queue   []int32 // recheck worklist
}

// NewSolver prepares a solver for the problem.
func NewSolver(p *Problem) *Solver {
	s := &Solver{
		p:            p,
		MaxConflicts: 1_000_000,
		assign:       make([]int8, p.NumVars()),
		occurs:       make([][]int32, p.NumVars()),
		inQueue:      make([]bool, len(p.constraints)),
	}
	for ci := range p.constraints {
		for _, t := range p.constraints[ci].Terms {
			v := int(t.Lit.Var) - 1
			s.occurs[v] = append(s.occurs[v], int32(ci))
		}
	}
	return s
}

func (s *Solver) value(l Lit) int8 {
	v := s.assign[l.Var-1]
	if l.Neg {
		return -v
	}
	return v
}

func (s *Solver) assignLit(l Lit) {
	val := int8(1)
	if l.Neg {
		val = -1
	}
	s.assign[l.Var-1] = val
	s.trail = append(s.trail, l.Var)
	// Wake every constraint that mentions the variable.
	for _, ci := range s.occurs[l.Var-1] {
		if !s.inQueue[ci] {
			s.inQueue[ci] = true
			s.queue = append(s.queue, ci)
		}
	}
}

// enqueueAll schedules every constraint for one initial check.
func (s *Solver) enqueueAll() {
	s.queue = s.queue[:0]
	for ci := range s.p.constraints {
		s.inQueue[ci] = true
		s.queue = append(s.queue, int32(ci))
	}
}

// propagate runs slack-based unit propagation over the recheck
// worklist: only constraints touched by fresh assignments are
// revisited. It returns false on conflict; the queue is drained either
// way (a conflict clears it, since backtracking re-seeds from the
// flipped decision's occurrences).
func (s *Solver) propagate(res *Result) bool {
	for len(s.queue) > 0 {
		ci := s.queue[len(s.queue)-1]
		s.queue = s.queue[:len(s.queue)-1]
		s.inQueue[ci] = false
		c := &s.p.constraints[ci]
		// maxPossible: contribution of all literals not yet false.
		maxPossible := 0
		for _, t := range c.Terms {
			if s.value(t.Lit) >= 0 {
				maxPossible += t.Coef
			}
		}
		if maxPossible < c.Bound {
			// Conflict: clear the queue; the caller backtracks and
			// re-seeds via assignLit of the flipped decision.
			for _, qi := range s.queue {
				s.inQueue[qi] = false
			}
			s.queue = s.queue[:0]
			s.inQueue[ci] = false
			return false
		}
		slack := maxPossible - c.Bound
		for _, t := range c.Terms {
			if s.value(t.Lit) == 0 && t.Coef > slack {
				s.assignLit(t.Lit)
				res.Propagated++
			}
		}
	}
	return true
}

// decision is one entry of the chronological decision stack.
type decision struct {
	trailLen int
	lit      Lit
	flipped  bool
}

// Solve searches for a model, deciding variables in the order supplied
// by branch (nil uses plain first-unassigned/false-first).
func (s *Solver) Solve(branch Branching) Result {
	res := Result{}
	for i := range s.assign {
		s.assign[i] = 0
	}
	s.trail = s.trail[:0]
	s.enqueueAll()
	if pb, ok := branch.(*PriorityBranching); ok {
		pb.Reset()
	}
	isAssigned := func(v Var) bool { return s.assign[v-1] != 0 }

	var stack []decision
	maxConf := s.MaxConflicts
	if maxConf <= 0 {
		maxConf = 1_000_000
	}

	for {
		ok := s.propagate(&res)
		if ok {
			l, any := s.nextDecision(branch, isAssigned)
			if !any {
				// All variables assigned (or none left to decide): model.
				res.SAT = true
				res.Model = make(Assignment, len(s.assign))
				for i, v := range s.assign {
					res.Model[i] = v > 0
				}
				return res
			}
			stack = append(stack, decision{trailLen: len(s.trail), lit: l})
			s.assignLit(l)
			res.Decisions++
			continue
		}
		// Conflict: chronological backtracking.
		res.Conflicts++
		if res.Conflicts > maxConf {
			res.Aborted = true
			return res
		}
		flipped := false
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			// Undo trail past this decision.
			for len(s.trail) > top.trailLen {
				v := s.trail[len(s.trail)-1]
				s.trail = s.trail[:len(s.trail)-1]
				s.assign[v-1] = 0
			}
			if !top.flipped {
				top.flipped = true
				top.lit = top.lit.Negated()
				s.assignLit(top.lit)
				flipped = true
				break
			}
			stack = stack[:len(stack)-1]
		}
		if !flipped {
			return res // UNSAT
		}
	}
}

// nextDecision consults the branching, falling back to the first
// unassigned variable with negative polarity.
func (s *Solver) nextDecision(branch Branching, isAssigned func(Var) bool) (Lit, bool) {
	if branch != nil {
		if l, ok := branch.Next(isAssigned); ok {
			if s.assign[l.Var-1] != 0 {
				// Branching returned an assigned var despite the filter;
				// defensive fallback below.
				panic(fmt.Sprintf("pbsat: branching returned assigned variable x%d", int(l.Var)))
			}
			return l, true
		}
	}
	for i, v := range s.assign {
		if v == 0 {
			return Lit{Var: Var(i + 1), Neg: true}, true
		}
	}
	return Lit{}, false
}

// Verify checks a full assignment against every constraint and returns
// the tags of violated constraints (empty means satisfied).
func (p *Problem) Verify(a Assignment) []string {
	var bad []string
	for i := range p.constraints {
		c := &p.constraints[i]
		sum := 0
		for _, t := range c.Terms {
			val := a.Get(t.Lit.Var)
			if t.Lit.Neg {
				val = !val
			}
			if val {
				sum += t.Coef
			}
		}
		if sum < c.Bound {
			tag := c.Tag
			if tag == "" {
				tag = fmt.Sprintf("constraint#%d", i)
			}
			bad = append(bad, tag)
		}
	}
	return bad
}
