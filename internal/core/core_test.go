package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/casestudy"
	"repro/internal/model"
	"repro/internal/moea"
)

func smallSpec(t *testing.T) *model.Specification {
	t.Helper()
	spec, err := casestudy.Small(3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

func TestGreedyDecoderFeasibleForRandomGenotypes(t *testing.T) {
	spec, err := casestudy.Build(casestudy.Options{ProfilesPerECU: 36})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for round := 0; round < 200; round++ {
		g := make([]float64, dec.GenotypeLen())
		for i := range g {
			g[i] = rng.Float64()
		}
		x, err := dec.Decode(g)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if errs := x.Check(); len(errs) != 0 {
			t.Fatalf("round %d: infeasible: %v", round, errs)
		}
	}
}

func TestGreedyDecoderDeterministic(t *testing.T) {
	spec := smallSpec(t)
	dec, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := make([]float64, dec.GenotypeLen())
	for i := range g {
		g[i] = float64(i) / float64(len(g))
	}
	a, err := dec.Decode(g)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := dec.Decode(g)
	for tid, r := range a.Binding {
		if b.Binding[tid] != r {
			t.Fatalf("binding of %s differs", tid)
		}
	}
}

func TestGreedyDecoderRejectsWrongLength(t *testing.T) {
	dec, err := NewGreedyDecoder(smallSpec(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode([]float64{0.5}); err == nil {
		t.Fatal("wrong-length genotype accepted")
	}
}

func TestGreedyStorageOverride(t *testing.T) {
	spec := smallSpec(t)
	for _, mode := range []int{1, -1} {
		dec, err := NewGreedyDecoder(spec)
		if err != nil {
			t.Fatal(err)
		}
		dec.StorageChoice = mode
		// Force BIST on everywhere: profile genes high.
		g := make([]float64, dec.GenotypeLen())
		for i := range g {
			g[i] = 0.99
		}
		x, err := dec.Decode(g)
		if err != nil {
			t.Fatal(err)
		}
		for tid, r := range x.Binding {
			task := spec.App.Task(tid)
			if task == nil || task.Kind != model.KindBISTData {
				continue
			}
			if mode == 1 && r == spec.Gateway {
				t.Fatal("local override stored at gateway")
			}
			if mode == -1 && r != spec.Gateway {
				t.Fatalf("gateway override stored at %s", r)
			}
		}
	}
}

func TestSATDecoderOnSmallSpec(t *testing.T) {
	spec := smallSpec(t)
	dec, err := NewSATDecoder(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 10; round++ {
		g := make([]float64, dec.GenotypeLen())
		for i := range g {
			g[i] = rng.Float64()
		}
		x, err := dec.Decode(g)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if errs := x.Check(); len(errs) != 0 {
			t.Fatalf("round %d: infeasible: %v", round, errs)
		}
	}
}

func TestExplorerRunProducesPareto(t *testing.T) {
	spec := smallSpec(t)
	dec, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplorer(spec, dec)
	ex.Verify = true
	res, err := ex.Run(moea.Options{PopSize: 24, Generations: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 24+24*20 {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
	if res.DecodeFailures != 0 {
		t.Fatalf("decode failures = %d", res.DecodeFailures)
	}
	if len(res.Solutions) < 3 {
		t.Fatalf("only %d Pareto solutions", len(res.Solutions))
	}
	// Mutually non-dominated in the three objectives.
	for i, a := range res.Solutions {
		for j, b := range res.Solutions {
			if i == j {
				continue
			}
			if moea.Dominates(moea.Objectives(a.Objectives.Minimized()), moea.Objectives(b.Objectives.Minimized())) {
				t.Fatalf("solution %d dominates %d", i, j)
			}
		}
	}
	// Sorted by cost.
	for i := 1; i < len(res.Solutions); i++ {
		if res.Solutions[i].Objectives.CostTotal < res.Solutions[i-1].Objectives.CostTotal {
			t.Fatal("solutions not sorted by cost")
		}
	}
	// The front must span the quality axis: a no-BIST (or near-zero
	// quality) point and a high-quality point.
	minQ, maxQ := 1.0, 0.0
	for _, s := range res.Solutions {
		if s.Objectives.TestQuality < minQ {
			minQ = s.Objectives.TestQuality
		}
		if s.Objectives.TestQuality > maxQ {
			maxQ = s.Objectives.TestQuality
		}
	}
	if maxQ < 0.5 {
		t.Fatalf("no high-quality solution found (max %v)", maxQ)
	}
}

func TestSplitByShutOff(t *testing.T) {
	spec := smallSpec(t)
	dec, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplorer(spec, dec)
	res, err := ex.Run(moea.Options{PopSize: 24, Generations: 15, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	fast, slow := res.SplitByShutOff(20_000)
	if len(fast)+len(slow) != len(res.Solutions) {
		t.Fatal("split lost solutions")
	}
	for _, s := range fast {
		if s.Objectives.ShutOffMS > 20_000 {
			t.Fatal("fast bucket contains slow solution")
		}
	}
	for _, s := range slow {
		if s.Objectives.ShutOffMS <= 20_000 {
			t.Fatal("slow bucket contains fast solution")
		}
	}
}

func TestBestQualityWithinAndBaseline(t *testing.T) {
	spec := smallSpec(t)
	dec, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplorer(spec, dec)
	res, err := ex.Run(moea.Options{PopSize: 32, Generations: 25, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	base := res.BaselineCost()
	if base <= 0 || math.IsInf(base, 1) {
		t.Fatalf("baseline = %v", base)
	}
	sol, ok := res.BestQualityWithin(base, 0.10)
	if !ok {
		t.Fatal("no solution within 10% of baseline")
	}
	if sol.Objectives.CostTotal > base*1.10 {
		t.Fatalf("cost %v exceeds budget", sol.Objectives.CostTotal)
	}
}

func TestMemorySplitOf(t *testing.T) {
	spec := smallSpec(t)
	dec, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	// All BIST on, all storage at gateway.
	dec.StorageChoice = -1
	g := make([]float64, dec.GenotypeLen())
	for i := range g {
		g[i] = 0.99
	}
	x, err := dec.Decode(g)
	if err != nil {
		t.Fatal(err)
	}
	sol := Solution{Impl: x}
	ms := MemorySplitOf(sol)
	if ms.GatewayBytes == 0 || ms.DistributedBytes != 0 {
		t.Fatalf("split = %+v, want all gateway", ms)
	}
	// Flip to local.
	dec.StorageChoice = 1
	x, err = dec.Decode(g)
	if err != nil {
		t.Fatal(err)
	}
	ms = MemorySplitOf(Solution{Impl: x})
	if ms.DistributedBytes == 0 || ms.GatewayBytes != 0 {
		t.Fatalf("split = %+v, want all distributed", ms)
	}
}

// TestStorageAblation reproduces the design insight of Fig. 6: with the
// same BIST profiles, gateway storage is cheaper but slower to shut
// off; local storage costs more memory money but shuts off fast.
func TestStorageAblation(t *testing.T) {
	spec := smallSpec(t)
	decode := func(storage int) Solution {
		dec, err := NewGreedyDecoder(spec)
		if err != nil {
			t.Fatal(err)
		}
		dec.StorageChoice = storage
		g := make([]float64, dec.GenotypeLen())
		for i := range g {
			g[i] = 0.99
		}
		x, err := dec.Decode(g)
		if err != nil {
			t.Fatal(err)
		}
		ex := NewExplorer(spec, dec)
		obj, payload := ex.Evaluate(g)
		_ = obj
		sol := payload.(Solution)
		if sol.Impl == nil {
			sol.Impl = x
		}
		return sol
	}
	local := decode(1)
	gateway := decode(-1)
	if gateway.Objectives.CostTotal >= local.Objectives.CostTotal {
		t.Fatalf("gateway storage not cheaper: %v vs %v", gateway.Objectives.CostTotal, local.Objectives.CostTotal)
	}
	if gateway.Objectives.ShutOffMS <= local.Objectives.ShutOffMS {
		t.Fatalf("gateway storage not slower: %v vs %v", gateway.Objectives.ShutOffMS, local.Objectives.ShutOffMS)
	}
}

// TestSATvsGreedyAgreeOnFeasibility is ablation A2's foundation: both
// decoders produce implementations the model checker accepts.
func TestSATvsGreedyAgreeOnFeasibility(t *testing.T) {
	spec := smallSpec(t)
	sat, err := NewSATDecoder(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for round := 0; round < 5; round++ {
		gs := make([]float64, sat.GenotypeLen())
		for i := range gs {
			gs[i] = rng.Float64()
		}
		xs, err := sat.Decode(gs)
		if err != nil {
			t.Fatal(err)
		}
		gg := make([]float64, greedy.GenotypeLen())
		for i := range gg {
			gg[i] = rng.Float64()
		}
		xg, err := greedy.Decode(gg)
		if err != nil {
			t.Fatal(err)
		}
		if errs := xs.Check(); len(errs) != 0 {
			t.Fatalf("SAT decode infeasible: %v", errs)
		}
		if errs := xg.Check(); len(errs) != 0 {
			t.Fatalf("greedy decode infeasible: %v", errs)
		}
	}
}

// TestRunRandomBaseline: the random-search ablation produces a valid
// (smaller or equal quality) front with the same evaluation budget.
func TestRunRandomBaseline(t *testing.T) {
	spec := smallSpec(t)
	dec, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplorer(spec, dec)
	rnd, err := ex.RunRandom(500, 3)
	if err != nil {
		t.Fatal(err)
	}
	if rnd.Evaluations != 500 || len(rnd.Solutions) == 0 {
		t.Fatalf("random result: %d evals, %d solutions", rnd.Evaluations, len(rnd.Solutions))
	}
	nsga, err := ex.Run(moea.Options{PopSize: 20, Generations: 24, Seed: 3}) // 500 evals
	if err != nil {
		t.Fatal(err)
	}
	// NSGA-II should reach at least the quality random search finds.
	maxQ := func(r *Result) float64 {
		q := 0.0
		for _, s := range r.Solutions {
			if s.Objectives.TestQuality > q {
				q = s.Objectives.TestQuality
			}
		}
		return q
	}
	if maxQ(nsga) < maxQ(rnd)-0.05 {
		t.Fatalf("NSGA-II quality %.3f clearly below random %.3f", maxQ(nsga), maxQ(rnd))
	}
}

// TestParallelExplorationRaceFree runs the full case study with
// concurrent evaluation; `go test -race` guards the decoder and
// objective paths.
func TestParallelExplorationRaceFree(t *testing.T) {
	spec, err := casestudy.Build(casestudy.Options{ProfilesPerECU: 8})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplorer(spec, dec)
	ex.Verify = true
	seq, err := ex.Run(moea.Options{PopSize: 16, Generations: 6, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ex.Run(moea.Options{PopSize: 16, Generations: 6, Seed: 2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Solutions) != len(par.Solutions) {
		t.Fatalf("fronts differ: %d vs %d", len(seq.Solutions), len(par.Solutions))
	}
	for i := range seq.Solutions {
		if seq.Solutions[i].Objectives != par.Solutions[i].Objectives {
			t.Fatalf("solution %d differs between sequential and parallel run", i)
		}
	}
}

// TestExplorerWorkerSweepDeterministic is the acceptance gate for the
// pooled SAT decoder states: the same seed must produce the identical
// Pareto front at every worker count. Each worker checks a DecoderState
// out of the pool, so this sweep exercises reuse across distinct
// genotype streams.
func TestExplorerWorkerSweepDeterministic(t *testing.T) {
	spec, err := casestudy.Small(3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewSATDecoder(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplorer(spec, dec)
	ex.Verify = true
	var ref *Result
	for _, w := range []int{1, 2, 4} {
		res, err := ex.Run(moea.Options{PopSize: 16, Generations: 8, Seed: 11, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if res.EvalsPerSec() <= 0 {
			t.Fatalf("workers=%d: throughput accounting missing (%v evals in %v)", w, res.Evaluations, res.Elapsed)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.Solutions) != len(ref.Solutions) {
			t.Fatalf("workers=%d: front size %d, want %d", w, len(res.Solutions), len(ref.Solutions))
		}
		for i := range res.Solutions {
			if res.Solutions[i].Objectives != ref.Solutions[i].Objectives {
				t.Fatalf("workers=%d: solution %d = %+v, want %+v",
					w, i, res.Solutions[i].Objectives, ref.Solutions[i].Objectives)
			}
		}
	}
}

// TestSATDecoderFullCaseStudy builds the complete constraint system of
// the paper's case study (reduced to 4 profiles per ECU) and decodes a
// few genotypes through the PB solver — the paper's own evaluation
// path, validated by the independent structural checker.
func TestSATDecoderFullCaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("large PB encoding")
	}
	spec, err := casestudy.Build(casestudy.Options{ProfilesPerECU: 4})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewSATDecoder(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	st := dec.Enc.Stats()
	t.Logf("encoding: %d mapping vars, %d route vars, %d step vars, %d constraints (TMax %d)",
		st.MappingVars, st.RouteVars, st.StepVars, st.Constraints, st.TMax)
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 3; round++ {
		g := make([]float64, dec.GenotypeLen())
		for i := range g {
			g[i] = rng.Float64()
		}
		x, err := dec.Decode(g)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if errs := x.Check(); len(errs) != 0 {
			t.Fatalf("round %d: infeasible: %v", round, errs)
		}
	}
}
