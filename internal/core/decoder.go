// Package core ties the reproduction together: it couples the MOEA with
// a genotype decoder (SAT-decoding via the pseudo-Boolean encoding, or
// the fast greedy constructive decoder) and the three design objectives,
// forming the design space exploration of the paper's Fig. 2.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/encode"
	"repro/internal/model"
)

// Decoder turns a genotype into a feasible implementation. Decoders
// must be deterministic: the same genotype always yields the same
// implementation.
type Decoder interface {
	GenotypeLen() int
	Decode(genotype []float64) (*model.Implementation, error)
}

// SATDecoder is the paper's SAT-decoding: the genotype orders the
// pseudo-Boolean solver's decisions over the mapping variables and the
// solver completes them into a model of Eqs. (2a)–(2h), (3a), (3b) plus
// the functional constraints.
type SATDecoder struct {
	Enc *encode.Encoding
	// MaxConflicts bounds the per-decode search (0 = solver default).
	MaxConflicts int

	// states pools one DecoderState (solver + branching + scratch) per
	// concurrently decoding MOEA worker, so steady-state decodes neither
	// allocate solver indexes nor contend on shared state.
	states sync.Pool

	// Cumulative pseudo-Boolean solver work across all decodes, for the
	// explorer's telemetry stream (SolverStatsReporter).
	conflicts    atomic.Int64
	propagations atomic.Int64
}

// NewSATDecoder builds the encoding for the specification.
func NewSATDecoder(spec *model.Specification, tmax int) (*SATDecoder, error) {
	enc, err := encode.Build(spec, tmax)
	if err != nil {
		return nil, err
	}
	return &SATDecoder{Enc: enc}, nil
}

// GenotypeLen implements Decoder.
func (d *SATDecoder) GenotypeLen() int { return d.Enc.GenotypeLen() }

// Decode implements Decoder. It is safe for concurrent use: each
// concurrent caller checks a DecoderState out of the pool for the
// duration of the decode.
func (d *SATDecoder) Decode(genotype []float64) (*model.Implementation, error) {
	st, _ := d.states.Get().(*encode.DecoderState)
	if st == nil {
		// Lazy so that struct-literal construction (without NewSATDecoder)
		// still gets pooling.
		st = d.Enc.NewDecoderState()
	}
	x, res, err := st.Decode(genotype, d.MaxConflicts)
	d.states.Put(st)
	if res != nil {
		d.conflicts.Add(int64(res.Conflicts))
		d.propagations.Add(int64(res.Propagated))
	}
	if err != nil {
		return nil, fmt.Errorf("core: SAT decode: %w", err)
	}
	return x, nil
}

// SolverStats implements SolverStatsReporter: the cumulative conflict
// and propagation counts over every decode performed so far.
func (d *SATDecoder) SolverStats() (conflicts, propagations int64) {
	return d.conflicts.Load(), d.propagations.Load()
}
