// Package core ties the reproduction together: it couples the MOEA with
// a genotype decoder (SAT-decoding via the pseudo-Boolean encoding, or
// the fast greedy constructive decoder) and the three design objectives,
// forming the design space exploration of the paper's Fig. 2.
package core

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/encode"
	"repro/internal/model"
)

// Decoder turns a genotype into a feasible implementation. Decoders
// must be deterministic: the same genotype always yields the same
// implementation.
type Decoder interface {
	GenotypeLen() int
	Decode(genotype []float64) (*model.Implementation, error)
}

// WorkerDecoder is an optional Decoder extension for per-worker decode
// state. The explorer calls DecodeWorker with the evaluation pool's
// stable worker index, letting the decoder pin expensive scratch (a
// solver, branching arrays) to the worker for the whole run instead of
// checking it out of a sync.Pool per decode — a pool the GC may empty
// mid-campaign, silently re-allocating solver state on every cycle.
// DecodeWorker must return the same implementation as Decode for the
// same genotype.
type WorkerDecoder interface {
	Decoder
	DecodeWorker(worker int, genotype []float64) (*model.Implementation, error)
}

// SATDecoder is the paper's SAT-decoding: the genotype orders the
// pseudo-Boolean solver's decisions over the mapping variables and the
// solver completes them into a model of Eqs. (2a)–(2h), (3a), (3b) plus
// the functional constraints.
type SATDecoder struct {
	Enc *encode.Encoding
	// MaxConflicts bounds the per-decode search (0 = solver default).
	MaxConflicts int

	// states pools DecoderStates for callers of the plain Decode path
	// (tools, tests, ad-hoc decodes). The MOEA evaluation path goes
	// through DecodeWorker and the pinned per-worker states instead.
	states sync.Pool

	// workerStates pins one DecoderState per evaluation-pool worker
	// index. The slice is grown copy-on-write under growMu and published
	// through the atomic pointer, so the steady-state path is one atomic
	// load with no locking; unlike the sync.Pool, pinned states survive
	// GC cycles, keeping the campaign's allocation profile flat.
	workerStates atomic.Pointer[[]*encode.DecoderState]
	growMu       sync.Mutex

	// Cumulative pseudo-Boolean solver work across all decodes, for the
	// explorer's telemetry stream (SolverStatsReporter).
	conflicts    atomic.Int64
	propagations atomic.Int64
}

// NewSATDecoder builds the encoding for the specification.
func NewSATDecoder(spec *model.Specification, tmax int) (*SATDecoder, error) {
	enc, err := encode.Build(spec, tmax)
	if err != nil {
		return nil, err
	}
	return &SATDecoder{Enc: enc}, nil
}

// GenotypeLen implements Decoder.
func (d *SATDecoder) GenotypeLen() int { return d.Enc.GenotypeLen() }

// Decode implements Decoder. It is safe for concurrent use: each
// concurrent caller checks a DecoderState out of the pool for the
// duration of the decode.
func (d *SATDecoder) Decode(genotype []float64) (*model.Implementation, error) {
	st, _ := d.states.Get().(*encode.DecoderState)
	if st == nil {
		// Lazy so that struct-literal construction (without NewSATDecoder)
		// still gets pooling.
		st = d.Enc.NewDecoderState()
	}
	x, res, err := st.Decode(genotype, d.MaxConflicts)
	d.states.Put(st)
	if res != nil {
		d.conflicts.Add(int64(res.Conflicts))
		d.propagations.Add(int64(res.Propagated))
	}
	if err != nil {
		return nil, fmt.Errorf("core: SAT decode: %w", err)
	}
	return x, nil
}

// DecodeWorker implements WorkerDecoder: it decodes on the DecoderState
// pinned to the worker index. Each worker index is driven by exactly
// one pool goroutine at a time, so the state needs no per-decode
// locking. Decoding is deterministic per genotype regardless of which
// state performs it, so the result is identical to Decode's.
func (d *SATDecoder) DecodeWorker(worker int, genotype []float64) (*model.Implementation, error) {
	st := d.workerState(worker)
	x, res, err := st.Decode(genotype, d.MaxConflicts)
	if res != nil {
		d.conflicts.Add(int64(res.Conflicts))
		d.propagations.Add(int64(res.Propagated))
	}
	if err != nil {
		return nil, fmt.Errorf("core: SAT decode: %w", err)
	}
	return x, nil
}

// workerState returns the DecoderState pinned to the worker index,
// growing the pinned slice on first sight of a new index. The grow path
// copies under growMu and republishes, never mutating a published
// slice, so concurrent readers of other indices are unaffected.
func (d *SATDecoder) workerState(worker int) *encode.DecoderState {
	if sp := d.workerStates.Load(); sp != nil && worker < len(*sp) && (*sp)[worker] != nil {
		return (*sp)[worker]
	}
	d.growMu.Lock()
	defer d.growMu.Unlock()
	var cur []*encode.DecoderState
	if sp := d.workerStates.Load(); sp != nil {
		cur = *sp
	}
	if worker < len(cur) && cur[worker] != nil {
		return cur[worker]
	}
	n := len(cur)
	if worker >= n {
		n = worker + 1
	}
	next := make([]*encode.DecoderState, n)
	copy(next, cur)
	next[worker] = d.Enc.NewDecoderState()
	d.workerStates.Store(&next)
	return next[worker]
}

// SolverStats implements SolverStatsReporter: the cumulative conflict
// and propagation counts over every decode performed so far.
func (d *SATDecoder) SolverStats() (conflicts, propagations int64) {
	return d.conflicts.Load(), d.propagations.Load()
}
