package core

import (
	"context"
	"errors"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/moea"
	"repro/internal/objective"
)

// breakingDecoder wraps a real decoder and corrupts every Nth
// implementation by unbinding a mandatory task — the regression trigger
// for the Verify-mode worker panic.
type breakingDecoder struct {
	inner Decoder
	every int64
	n     atomic.Int64
}

func (d *breakingDecoder) GenotypeLen() int { return d.inner.GenotypeLen() }

func (d *breakingDecoder) Decode(g []float64) (*model.Implementation, error) {
	x, err := d.inner.Decode(g)
	if err != nil {
		return nil, err
	}
	if d.every > 0 && d.n.Add(1)%d.every == 0 {
		for tid := range x.Binding {
			if t := x.Spec.App.Task(tid); t != nil && !t.Kind.Diagnostic() {
				delete(x.Binding, tid)
				break
			}
		}
	}
	return x, nil
}

// failingDecoder rejects genotypes whose first gene is below the
// threshold, exercising the decode-failure penalty path.
type failingDecoder struct {
	inner     Decoder
	threshold float64
}

func (d *failingDecoder) GenotypeLen() int { return d.inner.GenotypeLen() }

func (d *failingDecoder) Decode(g []float64) (*model.Implementation, error) {
	if g[0] < d.threshold {
		return nil, errors.New("synthetic decode failure")
	}
	return d.inner.Decode(g)
}

// TestVerifyFailureIsErrorNotPanic is the regression test for the
// worker-goroutine panic: a decoder that produces an infeasible
// implementation must surface as an error from Run, not tear down the
// process.
func TestVerifyFailureIsErrorNotPanic(t *testing.T) {
	spec := smallSpec(t)
	gd, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplorer(spec, &breakingDecoder{inner: gd, every: 10})
	ex.Verify = true
	res, err := ex.Run(moea.Options{PopSize: 16, Generations: 10, Seed: 1, Workers: 4})
	if err == nil {
		t.Fatal("broken decoder not reported")
	}
	if !strings.Contains(err.Error(), "infeasible") {
		t.Fatalf("unexpected error: %v", err)
	}
	if res != nil {
		t.Fatal("failed run returned a result")
	}
	// The explorer must be reusable after a failed run.
	ex2 := NewExplorer(spec, gd)
	ex2.Verify = true
	if _, err := ex2.Run(moea.Options{PopSize: 16, Generations: 2, Seed: 1}); err != nil {
		t.Fatalf("explorer not reusable: %v", err)
	}
}

// TestDecodeFailurePenaltyFinite: decode failures get the finite
// worst-case penalty (not ±Inf), real solutions still dominate them,
// and nothing NaN-poisons the run.
func TestDecodeFailurePenaltyFinite(t *testing.T) {
	spec := smallSpec(t)
	w := objective.WorstCase(spec)
	for _, v := range []float64{w.CostTotal, w.TestQuality, w.ShutOffMS} {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("worst-case penalty not finite: %+v", w)
		}
	}
	gd, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplorer(spec, &failingDecoder{inner: gd, threshold: 0.5})
	res, err := ex.Run(moea.Options{PopSize: 16, Generations: 8, Seed: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.DecodeFailures == 0 {
		t.Fatal("synthetic failures not counted")
	}
	if len(res.Solutions) == 0 {
		t.Fatal("no real solutions survived alongside penalized failures")
	}
	for _, s := range res.Solutions {
		if s.Impl == nil {
			t.Fatal("penalty individual leaked into the solution set")
		}
		if math.IsNaN(s.Objectives.CostTotal) || math.IsNaN(s.Objectives.TestQuality) {
			t.Fatalf("NaN objectives: %+v", s.Objectives)
		}
		// Any decoded solution costs less than the all-worst penalty bound.
		if s.Objectives.CostTotal > w.CostTotal {
			t.Fatalf("solution cost %v exceeds worst-case bound %v", s.Objectives.CostTotal, w.CostTotal)
		}
	}
}

// solutionKey flattens a solution for byte-exact front comparison.
func solutionKey(s Solution) [3]float64 {
	return [3]float64{s.Objectives.CostTotal, s.Objectives.TestQuality, s.Objectives.ShutOffMS}
}

func fronts(res *Result) [][3]float64 {
	out := make([][3]float64, len(res.Solutions))
	for i, s := range res.Solutions {
		out[i] = solutionKey(s)
	}
	return out
}

// TestExplorerCheckpointResume drives the whole stack the way cmd/eedse
// does: periodic checkpoints to a file, resume from the last one, and a
// byte-identical final front versus the uninterrupted run.
func TestExplorerCheckpointResume(t *testing.T) {
	spec := smallSpec(t)
	gd, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := moea.Options{PopSize: 16, Generations: 6, Seed: 5, Workers: 4}

	ref, err := NewExplorer(spec, gd).Run(opt)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "cp.json")
	if _, err := NewExplorer(spec, gd).RunContext(context.Background(), opt,
		&RunControl{CheckpointPath: path, CheckpointEvery: 2}); err != nil {
		t.Fatal(err)
	}
	cp, err := moea.ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if cp.NextGeneration != 4 {
		t.Fatalf("last periodic checkpoint at generation %d, want 4", cp.NextGeneration)
	}
	got, err := NewExplorer(spec, gd).RunContext(context.Background(), opt, &RunControl{Resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fronts(got), fronts(ref)) {
		t.Fatal("resumed front differs from uninterrupted run")
	}
	if got.Evaluations != ref.Evaluations {
		t.Fatalf("resumed evaluations = %d, want %d", got.Evaluations, ref.Evaluations)
	}
}

func TestExplorerRandomCheckpointResume(t *testing.T) {
	spec := smallSpec(t)
	gd, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	const evals, seed = 700, 9

	ref, err := NewExplorer(spec, gd).RunRandom(evals, seed)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cp.json")
	if _, err := NewExplorer(spec, gd).RunRandomContext(context.Background(), evals, seed, 4,
		&RunControl{CheckpointPath: path, CheckpointEvery: 256}); err != nil {
		t.Fatal(err)
	}
	cp, err := moea.ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got, err := NewExplorer(spec, gd).RunRandomContext(context.Background(), evals, seed, 2, &RunControl{Resume: cp})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fronts(got), fronts(ref)) {
		t.Fatal("resumed random-search front differs from uninterrupted run")
	}
}

// TestExplorerCancellation: a cancelled exploration returns the partial
// front with context.Canceled and writes a final checkpoint.
func TestExplorerCancellation(t *testing.T) {
	spec := smallSpec(t)
	gd, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	path := filepath.Join(t.TempDir(), "cp.json")
	n := 0
	rc := &RunControl{
		CheckpointPath: path,
		OnProgress: func(Progress) {
			if n++; n == 2 {
				cancel()
			}
		},
	}
	res, err := NewExplorer(spec, gd).RunContext(ctx,
		moea.Options{PopSize: 16, Generations: 1000, Seed: 1, Workers: 4}, rc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Solutions) == 0 {
		t.Fatal("no partial front on cancellation")
	}
	cp, err := moea.ReadCheckpointFile(path)
	if err != nil {
		t.Fatalf("no final checkpoint on cancellation: %v", err)
	}
	if cp.NextGeneration != 2 {
		t.Fatalf("final checkpoint resumes at generation %d, want 2", cp.NextGeneration)
	}
}

// TestProgressTelemetrySample checks the explorer-level sample fields,
// including the solver counters of the SAT decoder.
func TestProgressTelemetrySample(t *testing.T) {
	spec := smallSpec(t)
	sd, err := NewSATDecoder(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplorer(spec, sd)
	var samples []Progress
	rc := &RunControl{OnProgress: func(p Progress) { samples = append(samples, p) }}
	if _, err := ex.RunContext(context.Background(), moea.Options{PopSize: 8, Generations: 3, Seed: 2}, rc); err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("got %d samples, want 3", len(samples))
	}
	last := samples[len(samples)-1]
	if last.Evaluations != 8+8*3 {
		t.Fatalf("evaluations = %d", last.Evaluations)
	}
	if last.ArchiveSize == 0 {
		t.Fatal("empty archive in telemetry")
	}
	if math.IsNaN(last.Hypervolume) || last.Hypervolume <= 0 {
		t.Fatalf("hypervolume = %v", last.Hypervolume)
	}
	if last.SolverPropagations == 0 {
		t.Fatal("SAT decoder reported no solver propagations")
	}
	if last.EvalsPerSec < 0 || last.Elapsed <= 0 {
		t.Fatalf("throughput sample: %v evals/s over %v", last.EvalsPerSec, last.Elapsed)
	}
}
