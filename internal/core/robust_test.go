package core

import (
	"testing"

	"repro/internal/casestudy"
	"repro/internal/moea"
	"repro/internal/objective"
)

// A zero-rate robust config must reproduce the classic three-objective
// front bit for bit — the robustness path is strictly additive.
func TestExplorerZeroErrorRateBitIdentical(t *testing.T) {
	spec := smallSpec(t)
	dec, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := moea.Options{PopSize: 16, Generations: 8, Seed: 7, Workers: 2}
	base, err := NewExplorer(spec, dec).Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	exZero := NewExplorer(spec, dec)
	exZero.Robust = objective.RobustConfig{ErrorRate: 0}
	zero, err := exZero.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Solutions) != len(zero.Solutions) {
		t.Fatalf("front sizes differ: %d vs %d", len(base.Solutions), len(zero.Solutions))
	}
	for i := range base.Solutions {
		if base.Solutions[i].Objectives != zero.Solutions[i].Objectives {
			t.Fatalf("solution %d differs at rate 0:\n%+v\n%+v",
				i, base.Solutions[i].Objectives, zero.Solutions[i].Objectives)
		}
	}
}

// A robust exploration with a fixed seed must produce byte-identical
// Pareto fronts at any worker count — the determinism guarantee the
// fault-injection CI smoke job relies on.
func TestExplorerRobustWorkerSweepDeterministic(t *testing.T) {
	spec, err := casestudy.Small(3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplorer(spec, dec)
	ex.Verify = true
	ex.Robust = objective.RobustConfig{ErrorRate: 1e-5}
	var ref *Result
	for _, w := range []int{1, 2, 4} {
		res, err := ex.Run(moea.Options{PopSize: 16, Generations: 8, Seed: 11, Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		robustSeen := false
		for _, s := range res.Solutions {
			if !s.Objectives.RobustOn {
				t.Fatalf("workers=%d: solution missing robust objective", w)
			}
			if s.Objectives.RobustMS > 0 {
				robustSeen = true
			}
		}
		if !robustSeen {
			t.Fatalf("workers=%d: no solution with a positive robust score", w)
		}
		if ref == nil {
			ref = res
			continue
		}
		if len(res.Solutions) != len(ref.Solutions) {
			t.Fatalf("workers=%d: front size %d, want %d", w, len(res.Solutions), len(ref.Solutions))
		}
		for i := range res.Solutions {
			if res.Solutions[i].Objectives != ref.Solutions[i].Objectives {
				t.Fatalf("workers=%d: solution %d = %+v, want %+v",
					w, i, res.Solutions[i].Objectives, ref.Solutions[i].Objectives)
			}
		}
	}
}
