package core

import (
	"testing"

	"repro/internal/moea"
)

// TestExplorerRunSteadyStateAllocs pins the dispatch overhead of the
// exploration loop: Explorer.Run must not construct a worker pool per
// batch (the pre-pool design spawned `workers` goroutines per
// generation and pushed every genotype through an unbuffered channel).
// With the greedy decoder on a small spec, the per-evaluation
// allocation budget is dominated by the decode itself; per-generation
// orchestration must stay a small constant on top. A per-batch pool
// rebuild or per-item channel dispatch blows past the bound
// immediately.
func TestExplorerRunSteadyStateAllocs(t *testing.T) {
	spec := smallSpec(t)
	dec, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplorer(spec, dec)
	const pop, gens = 16, 12

	run := func(workers int) float64 {
		// One full Run per sample; AllocsPerRun averages over runs.
		return testing.AllocsPerRun(3, func() {
			if _, err := ex.Run(moea.Options{PopSize: pop, Generations: gens, Seed: 4, Workers: workers}); err != nil {
				t.Fatal(err)
			}
		})
	}

	serial := run(1)
	parallel := run(4)
	// The parallel run may cost a constant extra (pool construction,
	// four goroutine stacks, one job header per batch) but must not pay
	// a per-generation pool rebuild: allow the constant, reject a
	// per-generation term. 4 goroutines ≈ 10 allocs once; a rebuild
	// would add ≥ gens × that. Budget: constant 600 over serial (decoder
	// scratch for extra workers included), which a per-batch rebuild
	// (~12 gens × ~20 allocs for spawn+waitgroup+channels plus per-item
	// channel ops) exceeds.
	if parallel > serial+600 {
		t.Fatalf("parallel run allocates %.0f vs serial %.0f — per-batch pool construction is back", parallel, serial)
	}
}
