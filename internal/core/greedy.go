package core

import (
	"fmt"

	"repro/internal/model"
)

// GreedyDecoder is the high-throughput constructive decoder: instead of
// running the PB solver it interprets the genotype directly —
//
//   - one gene per mandatory task with several mapping options, selecting
//     the option index;
//   - one gene per ECU selecting "no BIST" or one of the available
//     profiles (Eq. 3a holds by construction);
//   - one gene per ECU selecting local vs gateway pattern storage
//     (Eq. 3b holds by construction);
//
// and routes every active message along the shortest architecture path.
// BIST is suppressed on ECUs that end up hosting no mandatory task,
// enforcing Eq. (2h). Every decode is feasible by construction; the
// ablation experiment A2 (DESIGN.md) compares it against SAT-decoding.
type GreedyDecoder struct {
	Spec *model.Specification

	// StorageChoice overrides the storage gene when non-zero:
	// +1 forces local storage, -1 forces gateway storage (ablation A1).
	StorageChoice int

	choiceTasks []model.TaskID // mandatory tasks with ≥2 options
	fixedTasks  []model.TaskID // mandatory tasks with exactly 1 option
	ecus        []model.ResourceID

	// pathCache memoizes shortest paths between resource pairs; the
	// architecture graph is immutable, so entries never invalidate.
	pathCache map[[2]model.ResourceID][]model.ResourceID
}

// NewGreedyDecoder prepares the gene layout for the specification and
// pre-warms every cache, making Decode safe for concurrent use.
func NewGreedyDecoder(spec *model.Specification) (*GreedyDecoder, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	spec.WarmCaches()
	d := &GreedyDecoder{Spec: spec, pathCache: make(map[[2]model.ResourceID][]model.ResourceID)}
	for _, t := range spec.App.Tasks() {
		if t.Kind.Diagnostic() {
			continue
		}
		if len(spec.MappingTargets(t.ID)) > 1 {
			d.choiceTasks = append(d.choiceTasks, t.ID)
		} else {
			d.fixedTasks = append(d.fixedTasks, t.ID)
		}
	}
	for _, r := range spec.Arch.ResourcesOfKind(model.KindECU) {
		if len(spec.BISTTasksForECU(r.ID)) > 0 {
			d.ecus = append(d.ecus, r.ID)
		}
	}
	// Fill the path cache for every resource pair up front; Decode then
	// only reads it, so concurrent decodes are safe.
	for _, a := range spec.Arch.Resources() {
		for _, b := range spec.Arch.Resources() {
			d.shortestPath(a.ID, b.ID)
		}
	}
	return d, nil
}

// GenotypeLen implements Decoder: task-choice genes, then one profile
// gene and one storage gene per ECU.
func (d *GreedyDecoder) GenotypeLen() int {
	return len(d.choiceTasks) + 2*len(d.ecus)
}

// shortestPath memoizes Spec.Arch.ShortestPath. Callers must not
// mutate the returned slice.
func (d *GreedyDecoder) shortestPath(src, dst model.ResourceID) ([]model.ResourceID, bool) {
	key := [2]model.ResourceID{src, dst}
	if p, hit := d.pathCache[key]; hit {
		return p, p != nil
	}
	p, ok := d.Spec.Arch.ShortestPath(src, dst, nil)
	if !ok {
		p = nil
	}
	d.pathCache[key] = p
	return p, ok
}

// pick maps a gene in [0,1] onto {0, …, n−1}.
func pick(g float64, n int) int {
	if n <= 1 {
		return 0
	}
	i := int(g * float64(n))
	if i >= n {
		i = n - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// Decode implements Decoder.
func (d *GreedyDecoder) Decode(genotype []float64) (*model.Implementation, error) {
	if len(genotype) != d.GenotypeLen() {
		return nil, fmt.Errorf("core: genotype length %d, want %d", len(genotype), d.GenotypeLen())
	}
	spec := d.Spec
	x := model.NewImplementation(spec)

	// Mandatory bindings.
	for _, t := range d.fixedTasks {
		x.Bind(t, spec.MappingTargets(t)[0])
	}
	for i, t := range d.choiceTasks {
		opts := spec.MappingTargets(t)
		x.Bind(t, opts[pick(genotype[i], len(opts))])
	}

	// Eq. 2h precondition: which ECUs host mandatory tasks.
	hostsMandatory := make(map[model.ResourceID]bool)
	for tid, r := range x.Binding {
		if task := spec.App.Task(tid); task != nil && !task.Kind.Diagnostic() {
			hostsMandatory[r] = true
		}
	}

	// BIST selection per ECU.
	base := len(d.choiceTasks)
	for k, ecu := range d.ecus {
		profiles := spec.BISTTasksForECU(ecu)
		sel := pick(genotype[base+2*k], len(profiles)+1) // 0 = off
		if sel == 0 || !hostsMandatory[ecu] {
			continue
		}
		bT := profiles[sel-1]
		bD := spec.DataTaskFor(bT)
		if bD == nil {
			return nil, fmt.Errorf("core: BIST task %s has no data task", bT.ID)
		}
		x.Bind(bT.ID, ecu)
		storage := ecu
		storeLocal := genotype[base+2*k+1] < 0.5
		switch d.StorageChoice {
		case 1:
			storeLocal = true
		case -1:
			storeLocal = false
		}
		if !storeLocal {
			storage = spec.Gateway
		}
		// The data task must actually be mappable to the chosen target.
		if !spec.HasMapping(bD.ID, storage) {
			storage = spec.MappingTargets(bD.ID)[0]
		}
		x.Bind(bD.ID, storage)
	}

	// Routing: shortest path per active message.
	for _, msg := range spec.App.Messages() {
		if !x.Bound(msg.Src) {
			continue
		}
		srcRes := x.Binding[msg.Src]
		for _, dst := range msg.Dst {
			dstRes, bound := x.Binding[dst]
			if !bound {
				continue
			}
			path, ok := d.shortestPath(srcRes, dstRes)
			if !ok {
				return nil, fmt.Errorf("core: no route for %s from %s to %s", msg.ID, srcRes, dstRes)
			}
			x.SetRoute(msg.ID, dst, model.Route{Hops: path})
		}
	}
	return x, nil
}
