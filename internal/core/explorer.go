package core

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/moea"
	"repro/internal/objective"
)

// Solution is one evaluated implementation in the result set.
type Solution struct {
	Impl       *model.Implementation
	Objectives objective.Vector
}

// Result is the outcome of an exploration run.
type Result struct {
	// Solutions is the Pareto-optimal set over (cost, −quality,
	// shut-off), sorted by ascending cost.
	Solutions []Solution
	// Evaluations counts decoded and evaluated implementations.
	Evaluations int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// DecodeFailures counts genotypes the decoder could not turn into an
	// implementation (zero for the construct-by-design decoders).
	DecodeFailures int
}

// Explorer couples a decoder with the MOEA.
type Explorer struct {
	Spec    *model.Specification
	Decoder Decoder
	// Verify re-checks every decoded implementation against the model's
	// structural rules and fails loudly on violation. Enable in tests;
	// costs ~30 % throughput.
	Verify bool

	decodeFailures atomic.Int64
}

// NewExplorer returns an explorer over the specification.
func NewExplorer(spec *model.Specification, dec Decoder) *Explorer {
	return &Explorer{Spec: spec, Decoder: dec}
}

// GenotypeLen implements moea.Problem.
func (e *Explorer) GenotypeLen() int { return e.Decoder.GenotypeLen() }

// Evaluate implements moea.Problem: decode, verify (optionally), and
// score. Decode failures are punished with an all-worst objective
// vector so the MOEA steers away from them. Evaluate is safe for
// concurrent use when the decoder is (both built-in decoders are).
func (e *Explorer) Evaluate(genotype []float64) (moea.Objectives, any) {
	x, err := e.Decoder.Decode(genotype)
	if err != nil {
		e.decodeFailures.Add(1)
		return moea.Objectives{math.Inf(1), 0, math.Inf(1)}, nil
	}
	if e.Verify {
		if errs := x.Check(); len(errs) != 0 {
			panic(fmt.Sprintf("core: decoder produced infeasible implementation: %v", errs))
		}
	}
	v := objective.Evaluate(x)
	return moea.Objectives(v.Minimized()), Solution{Impl: x, Objectives: v}
}

// Run executes the exploration with the given MOEA options.
func (e *Explorer) Run(opt moea.Options) (*Result, error) {
	e.decodeFailures.Store(0)
	start := time.Now()
	mres, err := moea.Run(e, opt)
	if err != nil {
		return nil, err
	}
	return e.collect(mres, start), nil
}

// RunRandom explores with uniform random sampling instead of NSGA-II —
// the optimizer ablation baseline (DESIGN.md A2 family).
func (e *Explorer) RunRandom(evals int, seed int64) (*Result, error) {
	e.decodeFailures.Store(0)
	start := time.Now()
	mres, err := moea.RandomSearch(e, evals, seed)
	if err != nil {
		return nil, err
	}
	return e.collect(mres, start), nil
}

// collect turns an optimizer result into the exploration Result: it
// extracts the Solution payloads from the archive, sorts them by
// ascending cost, and stamps the throughput accounting. Both entry
// points (NSGA-II and random search) report through here so evaluation
// counts and timings mean the same thing everywhere.
func (e *Explorer) collect(mres *moea.Result, start time.Time) *Result {
	res := &Result{
		Evaluations:    mres.Evaluations,
		Elapsed:        time.Since(start),
		DecodeFailures: int(e.decodeFailures.Load()),
	}
	for _, ind := range mres.Archive {
		if sol, ok := ind.Payload.(Solution); ok {
			res.Solutions = append(res.Solutions, sol)
		}
	}
	sort.Slice(res.Solutions, func(i, j int) bool {
		return res.Solutions[i].Objectives.CostTotal < res.Solutions[j].Objectives.CostTotal
	})
	return res
}

// EvalsPerSec returns the evaluation throughput of the run, or 0 for an
// empty or unmeasured run.
func (r *Result) EvalsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Evaluations) / r.Elapsed.Seconds()
}

// SplitByShutOff partitions the solutions at the given shut-off
// threshold in milliseconds — the ●/▲ marker split of the paper's
// Fig. 5 (20 s).
func (r *Result) SplitByShutOff(thresholdMS float64) (fast, slow []Solution) {
	for _, s := range r.Solutions {
		if s.Objectives.ShutOffMS <= thresholdMS {
			fast = append(fast, s)
		} else {
			slow = append(slow, s)
		}
	}
	return fast, slow
}

// BestQualityWithin returns the highest-test-quality solution whose
// cost stays within (1+maxCostOverhead)·baselineCost — the paper's
// headline query ("80.7 % test quality for <3.7 % extra cost").
func (r *Result) BestQualityWithin(baselineCost, maxCostOverhead float64) (Solution, bool) {
	var best Solution
	found := false
	limit := baselineCost * (1 + maxCostOverhead)
	for _, s := range r.Solutions {
		if s.Objectives.CostTotal <= limit && (!found || s.Objectives.TestQuality > best.Objectives.TestQuality) {
			best = s
			found = true
		}
	}
	return best, found
}

// BaselineCost returns the monetary cost of the cheapest exploration
// solution without any BIST, or, if the archive holds none, the
// cheapest solution's hardware cost (its BIST increment removed).
func (r *Result) BaselineCost() float64 {
	best := math.Inf(1)
	for _, s := range r.Solutions {
		if s.Objectives.TestQuality == 0 && s.Objectives.CostTotal < best {
			best = s.Objectives.CostTotal
		}
	}
	if !math.IsInf(best, 1) {
		return best
	}
	for _, s := range r.Solutions {
		c := objective.MonetaryCosts(s.Impl)
		hw := c.Hardware
		if hw < best {
			best = hw
		}
	}
	return best
}

// MemorySplit reports, for one solution, the diagnostic memory stored
// at the gateway versus distributed into the ECUs — the quantities of
// the paper's Fig. 6.
type MemorySplit struct {
	GatewayBytes     int64
	DistributedBytes int64
	ShutOffMS        float64
	CostTotal        float64
	TestQuality      float64
}

// MemorySplitOf computes the Fig. 6 quantities of a solution. Gateway
// entries of the same profile are stored once (the shared-pattern model
// of Section III-D), distributed entries once per ECU.
func MemorySplitOf(s Solution) MemorySplit {
	ms := MemorySplit{
		ShutOffMS:   s.Objectives.ShutOffMS,
		CostTotal:   s.Objectives.CostTotal,
		TestQuality: s.Objectives.TestQuality,
	}
	x := s.Impl
	gwShared := make(map[int]int64)
	for tid, r := range x.Binding {
		t := x.Spec.App.Task(tid)
		if t == nil || t.Kind != model.KindBISTData {
			continue
		}
		if r == x.Spec.Gateway {
			gwShared[t.Profile] = t.MemBytes
		} else {
			ms.DistributedBytes += t.MemBytes
		}
	}
	for _, bytes := range gwShared {
		ms.GatewayBytes += bytes
	}
	return ms
}
