package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/moea"
	"repro/internal/objective"
	"repro/internal/obs"
)

// Solution is one evaluated implementation in the result set.
type Solution struct {
	Impl       *model.Implementation
	Objectives objective.Vector
}

// Result is the outcome of an exploration run.
type Result struct {
	// Solutions is the Pareto-optimal set over (cost, −quality,
	// shut-off), sorted by ascending cost.
	Solutions []Solution
	// Evaluations counts decoded and evaluated implementations.
	Evaluations int
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// DecodeFailures counts genotypes the decoder could not turn into an
	// implementation (zero for the construct-by-design decoders).
	DecodeFailures int
}

// Explorer couples a decoder with the MOEA.
type Explorer struct {
	Spec    *model.Specification
	Decoder Decoder
	// Verify re-checks every decoded implementation against the model's
	// structural rules and surfaces the first violation as an error from
	// Run (cancelling the remaining workers). Enable in tests; costs
	// ~30 % throughput.
	Verify bool
	// Robust, when its ErrorRate is positive, adds the degraded-mode
	// transfer score as a fourth minimized objective (see
	// objective.EvaluateRobust). The zero value keeps the classic
	// three-objective exploration bit-identical.
	Robust objective.RobustConfig
	// Obs, when non-nil, times decode and objective evaluation per
	// worker and threads through to the optimizer's generation and
	// migration spans. Purely observational — it never touches RNG state
	// or evaluation order; nil costs one check per evaluation.
	Obs *obs.Tracer

	decodeFailures atomic.Int64

	// penalty caches the finite all-worst objective vector assigned to
	// decode failures (see objective.WorstCase).
	penaltyOnce sync.Once
	penalty     moea.Objectives
	hvRef       moea.Objectives

	// mu guards the first verification failure and the cancel hook that
	// stops the remaining evaluation workers when one occurs.
	mu        sync.Mutex
	verifyErr error
	cancelRun context.CancelFunc
}

// NewExplorer returns an explorer over the specification.
func NewExplorer(spec *model.Specification, dec Decoder) *Explorer {
	return &Explorer{Spec: spec, Decoder: dec}
}

// GenotypeLen implements moea.Problem.
func (e *Explorer) GenotypeLen() int { return e.Decoder.GenotypeLen() }

// Evaluate implements moea.Problem: decode, verify (optionally), and
// score. Decode failures are punished with a finite all-worst objective
// vector (objective.WorstCase) so the MOEA steers away from them
// without leaking ±Inf into crowding-distance or indicator
// normalization. Evaluate is safe for concurrent use when the decoder
// is (both built-in decoders are).
func (e *Explorer) Evaluate(genotype []float64) (moea.Objectives, any) {
	sp := e.Obs.StartW(0, obs.StageDecode)
	x, err := e.Decoder.Decode(genotype)
	sp.End()
	return e.score(0, x, err)
}

// EvaluateWorker implements moea.WorkerProblem: identical scoring to
// Evaluate, but decoded on the worker's pinned decoder state when the
// decoder supports it. Decoding is a pure function of the genotype, so
// the result never depends on the worker index — the property the
// byte-identical-fronts invariant rests on.
func (e *Explorer) EvaluateWorker(worker int, genotype []float64) (moea.Objectives, any) {
	sp := e.Obs.StartW(worker, obs.StageDecode)
	var (
		x   *model.Implementation
		err error
	)
	if wd, ok := e.Decoder.(WorkerDecoder); ok {
		x, err = wd.DecodeWorker(worker, genotype)
	} else {
		x, err = e.Decoder.Decode(genotype)
	}
	sp.End()
	return e.score(worker, x, err)
}

// score turns a decode outcome into the MOEA objective vector and
// Solution payload; shared by the plain and per-worker evaluation
// paths.
func (e *Explorer) score(worker int, x *model.Implementation, err error) (moea.Objectives, any) {
	if err != nil {
		e.decodeFailures.Add(1)
		return e.penaltyObjectives(), nil
	}
	if e.Verify {
		if errs := x.Check(); len(errs) != 0 {
			// A panic here would tear down the whole worker pool (and the
			// process) on one bad decode; record the first failure, cancel
			// the run, and let Run surface it as an error instead.
			e.failRun(fmt.Errorf("core: decoder produced infeasible implementation: %v", errs))
			return e.penaltyObjectives(), nil
		}
	}
	sp := e.Obs.StartW(worker, obs.StageObjective)
	v := objective.EvaluateRobust(x, e.Robust)
	sp.End()
	return moea.Objectives(v.Minimized()), Solution{Impl: x, Objectives: v}
}

// penaltyObjectives returns (a copy of) the finite worst-case penalty
// vector, computing it from the specification on first use.
func (e *Explorer) penaltyObjectives() moea.Objectives {
	e.initPenalty()
	return append(moea.Objectives(nil), e.penalty...)
}

// initPenalty derives the penalty and hypervolume reference vectors
// from the specification once.
func (e *Explorer) initPenalty() {
	e.penaltyOnce.Do(func() {
		w := objective.WorstCaseRobust(e.Spec, e.Robust)
		e.penalty = moea.Objectives(w.Minimized())
		// The hypervolume reference must strictly dominate-be-dominated by
		// every counted point, including the penalty corner.
		e.hvRef = make(moea.Objectives, len(e.penalty))
		for k, v := range e.penalty {
			e.hvRef[k] = v + 1 + 0.01*math.Abs(v)
		}
	})
}

// failRun records the first fatal evaluation failure and cancels the
// in-flight optimizer run (if any).
func (e *Explorer) failRun(err error) {
	e.mu.Lock()
	if e.verifyErr == nil {
		e.verifyErr = err
		if e.cancelRun != nil {
			e.cancelRun()
		}
	}
	e.mu.Unlock()
}

// takeRunError returns the recorded fatal failure of the current run.
func (e *Explorer) takeRunError() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.verifyErr
}

// Progress is one explorer telemetry sample, emitted per generation
// (NSGA-II) or per 256-evaluation chunk (random search).
type Progress struct {
	// Generation is the 0-based generation (or chunk) just completed;
	// Generations the configured total (0 for random search).
	Generation  int
	Generations int
	// Evaluations counts evaluated genotypes cumulatively across
	// resumes; EvalsPerSec is the throughput of this process.
	Evaluations int
	EvalsPerSec float64
	// ArchiveSize is the current Pareto-archive cardinality and
	// Hypervolume its dominated volume against the specification's
	// worst-case reference point.
	ArchiveSize int
	Hypervolume float64
	// DecodeFailures counts genotypes the decoder rejected so far.
	DecodeFailures int64
	// SolverConflicts/SolverPropagations are the cumulative
	// pseudo-Boolean solver counters of the SAT decoder (0 for decoders
	// without a solver).
	SolverConflicts    int64
	SolverPropagations int64
	// Elapsed is the wall-clock time since the run (or resume) started.
	Elapsed time.Duration
}

// SolverStatsReporter is implemented by decoders that track cumulative
// pseudo-Boolean solver work (the SAT decoder); the explorer includes
// the counters in telemetry when available.
type SolverStatsReporter interface {
	SolverStats() (conflicts, propagations int64)
}

// RunControl configures cancellation-adjacent run services:
// checkpointing and telemetry. The zero value (or a nil pointer)
// disables both.
type RunControl struct {
	// CheckpointPath, when non-empty, periodically writes optimizer
	// state to this file (atomically: tmp + rename) and once more when
	// the context is cancelled. Resume a run with Resume.
	CheckpointPath string
	// CheckpointEvery is the checkpoint period: generations for NSGA-II
	// (default 10), evaluations for random search (default 2560).
	CheckpointEvery int
	// Resume restores optimizer state from a previously written
	// checkpoint; the run continues to the configured end and produces a
	// byte-identical Pareto front to the uninterrupted run.
	Resume *moea.Checkpoint
	// ResumeIslands restores an island campaign from a previously
	// written island checkpoint (RunIslandsContext only).
	ResumeIslands *moea.IslandCheckpoint
	// OnProgress, when non-nil, receives a telemetry sample per
	// generation/chunk on the optimizer goroutine.
	OnProgress func(Progress)
}

// Run executes the exploration with the given MOEA options.
func (e *Explorer) Run(opt moea.Options) (*Result, error) {
	return e.RunContext(context.Background(), opt, nil)
}

// RunContext executes the exploration with cancellation, checkpointing
// and telemetry. On context cancellation the partial Result collected
// so far is returned together with ctx.Err(); the final checkpoint (if
// configured) is written before returning, and no worker goroutines
// outlive the call.
func (e *Explorer) RunContext(ctx context.Context, opt moea.Options, rc *RunControl) (*Result, error) {
	runCtx, cancel, start := e.beginRun(ctx)
	defer cancel()
	defer e.endRun()

	mopt := opt
	mopt.Obs = e.Obs
	if rc != nil {
		mopt.Resume = rc.Resume
		if rc.CheckpointPath != "" {
			path := rc.CheckpointPath
			mopt.OnCheckpoint = func(cp *moea.Checkpoint) error { return cp.WriteFile(path) }
			mopt.CheckpointEvery = rc.CheckpointEvery
			if mopt.CheckpointEvery <= 0 {
				mopt.CheckpointEvery = 10
			}
		}
		if rc.OnProgress != nil {
			cb := rc.OnProgress
			mopt.OnProgress = func(mp moea.Progress) { cb(e.progressSample(mp)) }
		}
	}
	mres, err := moea.Run(runCtx, e, mopt)
	return e.finishRun(mres, err, start)
}

// IslandConfig selects the island-model NSGA-II driver: Islands
// independent populations on derived seed streams, coupled by ring
// migration every MigrateEvery generations (see moea.RunIslands).
type IslandConfig struct {
	Islands      int
	MigrateEvery int
	Migrants     int
}

// RunIslandsContext executes an island-model exploration. The
// (seed, islands, migration) tuple pins the campaign: the merged front
// is byte-identical at any worker count, and a resumed campaign
// (RunControl.ResumeIslands) matches the uninterrupted one.
func (e *Explorer) RunIslandsContext(ctx context.Context, opt moea.Options, ic IslandConfig, rc *RunControl) (*Result, error) {
	runCtx, cancel, start := e.beginRun(ctx)
	defer cancel()
	defer e.endRun()

	opt.Obs = e.Obs
	iopt := moea.IslandOptions{
		Islands:      ic.Islands,
		MigrateEvery: ic.MigrateEvery,
		Migrants:     ic.Migrants,
	}
	if rc != nil {
		iopt.Resume = rc.ResumeIslands
		if rc.CheckpointPath != "" {
			path := rc.CheckpointPath
			iopt.OnCheckpoint = func(cp *moea.IslandCheckpoint) error { return cp.WriteFile(path) }
		}
		if rc.OnProgress != nil {
			cb := rc.OnProgress
			iopt.OnProgress = func(mp moea.Progress) { cb(e.progressSample(mp)) }
		}
	}
	mres, err := moea.RunIslands(runCtx, e, opt, iopt)
	return e.finishRun(mres, err, start)
}

// EpochStep advances the contiguous island subset [first, first+count)
// of an island campaign by exactly one migration epoch — the worker
// unit of the multi-process orchestrator (internal/shard). full is the
// campaign checkpoint to step from (nil bootstraps epoch 0); the
// returned shard holds the post-epoch state plus the objective vectors
// the orchestrator needs to migrate centrally. See moea.EpochStep.
func (e *Explorer) EpochStep(ctx context.Context, opt moea.Options, ic IslandConfig, full *moea.IslandCheckpoint, first, count int) (*moea.IslandShard, error) {
	runCtx, cancel, _ := e.beginRun(ctx)
	defer cancel()
	defer e.endRun()

	opt.Obs = e.Obs
	iopt := moea.IslandOptions{Islands: ic.Islands, MigrateEvery: ic.MigrateEvery, Migrants: ic.Migrants}
	sh, err := moea.EpochStep(runCtx, e, opt, iopt, full, first, count)
	if verr := e.takeRunError(); verr != nil {
		return nil, verr
	}
	return sh, err
}

// CollectIslands turns a full island-campaign checkpoint into the
// exploration Result without advancing any island: the per-island
// states are restored (re-evaluating their genotypes) and the archives
// fold in island order — the same merge the in-process driver performs,
// so a completed multi-process campaign reports a byte-identical front,
// and a mid-campaign checkpoint yields the partial front.
func (e *Explorer) CollectIslands(ctx context.Context, opt moea.Options, ic IslandConfig, cp *moea.IslandCheckpoint) (*Result, error) {
	runCtx, cancel, start := e.beginRun(ctx)
	defer cancel()
	defer e.endRun()

	iopt := moea.IslandOptions{Islands: ic.Islands, MigrateEvery: ic.MigrateEvery, Migrants: ic.Migrants}
	mres, err := moea.MergeIslandCheckpoint(runCtx, e, opt, iopt, cp)
	return e.finishRun(mres, err, start)
}

// RunRandom explores with uniform random sampling instead of NSGA-II —
// the optimizer ablation baseline (DESIGN.md A2 family).
func (e *Explorer) RunRandom(evals int, seed int64) (*Result, error) {
	return e.RunRandomContext(context.Background(), evals, seed, 0, nil)
}

// RunRandomContext is RunRandom with run control; see RunContext.
func (e *Explorer) RunRandomContext(ctx context.Context, evals int, seed int64, workers int, rc *RunControl) (*Result, error) {
	runCtx, cancel, start := e.beginRun(ctx)
	defer cancel()
	defer e.endRun()

	ropt := moea.RandomOptions{Evals: evals, Seed: seed, Workers: workers}
	if rc != nil {
		ropt.Resume = rc.Resume
		if rc.CheckpointPath != "" {
			path := rc.CheckpointPath
			ropt.OnCheckpoint = func(cp *moea.Checkpoint) error { return cp.WriteFile(path) }
			ropt.CheckpointEvery = rc.CheckpointEvery
			if ropt.CheckpointEvery <= 0 {
				ropt.CheckpointEvery = 2560
			}
		}
		if rc.OnProgress != nil {
			cb := rc.OnProgress
			ropt.OnProgress = func(mp moea.Progress) { cb(e.progressSample(mp)) }
		}
	}
	mres, err := moea.RandomSearchOpt(runCtx, e, ropt)
	return e.finishRun(mres, err, start)
}

// beginRun resets per-run state and installs the cancel hook used to
// stop workers on a fatal evaluation failure.
func (e *Explorer) beginRun(ctx context.Context) (context.Context, context.CancelFunc, time.Time) {
	if ctx == nil {
		ctx = context.Background()
	}
	e.decodeFailures.Store(0)
	runCtx, cancel := context.WithCancel(ctx)
	e.mu.Lock()
	e.verifyErr = nil
	e.cancelRun = cancel
	e.mu.Unlock()
	return runCtx, cancel, time.Now()
}

// endRun detaches the cancel hook installed by beginRun.
func (e *Explorer) endRun() {
	e.mu.Lock()
	e.cancelRun = nil
	e.mu.Unlock()
}

// finishRun translates an optimizer outcome into the exploration
// Result: fatal evaluation failures win over cancellation, and a
// cancelled run still yields the partial result alongside the error.
func (e *Explorer) finishRun(mres *moea.Result, err error, start time.Time) (*Result, error) {
	if verr := e.takeRunError(); verr != nil {
		return nil, verr
	}
	if mres == nil {
		return nil, err
	}
	return e.collect(mres, start), err
}

// progressSample enriches an optimizer telemetry sample with the
// explorer-level counters: throughput, hypervolume against the
// worst-case reference, decode failures and solver work.
func (e *Explorer) progressSample(mp moea.Progress) Progress {
	pr := Progress{
		Generation:     mp.Generation,
		Generations:    mp.Generations,
		Evaluations:    mp.Evaluations,
		ArchiveSize:    len(mp.Archive),
		DecodeFailures: e.decodeFailures.Load(),
		Elapsed:        mp.Elapsed,
	}
	if mp.Elapsed > 0 {
		pr.EvalsPerSec = float64(mp.RunEvaluations) / mp.Elapsed.Seconds()
	}
	if sr, ok := e.Decoder.(SolverStatsReporter); ok {
		pr.SolverConflicts, pr.SolverPropagations = sr.SolverStats()
	}
	e.initPenalty()
	// Hypervolume3D only handles three-dimensional points; a robust run
	// carries four objectives, so the telemetry indicator is the volume of
	// the (cost, −quality, shut-off) projection.
	front := make([]moea.Objectives, 0, len(mp.Archive))
	for _, ind := range mp.Archive {
		obj := ind.Objectives
		if len(obj) > 3 {
			obj = obj[:3]
		}
		front = append(front, obj)
	}
	ref := e.hvRef
	if len(ref) > 3 {
		ref = ref[:3]
	}
	pr.Hypervolume = moea.Hypervolume3D(front, ref)
	return pr
}

// collect turns an optimizer result into the exploration Result: it
// extracts the Solution payloads from the archive, sorts them by
// ascending cost, and stamps the throughput accounting. Both entry
// points (NSGA-II and random search) report through here so evaluation
// counts and timings mean the same thing everywhere.
func (e *Explorer) collect(mres *moea.Result, start time.Time) *Result {
	res := &Result{
		Evaluations:    mres.Evaluations,
		Elapsed:        time.Since(start),
		DecodeFailures: int(e.decodeFailures.Load()),
	}
	for _, ind := range mres.Archive {
		if sol, ok := ind.Payload.(Solution); ok {
			res.Solutions = append(res.Solutions, sol)
		}
	}
	sort.Slice(res.Solutions, func(i, j int) bool {
		return res.Solutions[i].Objectives.CostTotal < res.Solutions[j].Objectives.CostTotal
	})
	return res
}

// EvalsPerSec returns the evaluation throughput of the run, or 0 for an
// empty or unmeasured run.
func (r *Result) EvalsPerSec() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Evaluations) / r.Elapsed.Seconds()
}

// SplitByShutOff partitions the solutions at the given shut-off
// threshold in milliseconds — the ●/▲ marker split of the paper's
// Fig. 5 (20 s).
func (r *Result) SplitByShutOff(thresholdMS float64) (fast, slow []Solution) {
	for _, s := range r.Solutions {
		if s.Objectives.ShutOffMS <= thresholdMS {
			fast = append(fast, s)
		} else {
			slow = append(slow, s)
		}
	}
	return fast, slow
}

// BestQualityWithin returns the highest-test-quality solution whose
// cost stays within (1+maxCostOverhead)·baselineCost — the paper's
// headline query ("80.7 % test quality for <3.7 % extra cost").
func (r *Result) BestQualityWithin(baselineCost, maxCostOverhead float64) (Solution, bool) {
	var best Solution
	found := false
	limit := baselineCost * (1 + maxCostOverhead)
	for _, s := range r.Solutions {
		if s.Objectives.CostTotal <= limit && (!found || s.Objectives.TestQuality > best.Objectives.TestQuality) {
			best = s
			found = true
		}
	}
	return best, found
}

// BaselineCost returns the monetary cost of the cheapest exploration
// solution without any BIST, or, if the archive holds none, the
// cheapest solution's hardware cost (its BIST increment removed).
func (r *Result) BaselineCost() float64 {
	best := math.Inf(1)
	for _, s := range r.Solutions {
		if s.Objectives.TestQuality == 0 && s.Objectives.CostTotal < best {
			best = s.Objectives.CostTotal
		}
	}
	if !math.IsInf(best, 1) {
		return best
	}
	for _, s := range r.Solutions {
		c := objective.MonetaryCosts(s.Impl)
		hw := c.Hardware
		if hw < best {
			best = hw
		}
	}
	return best
}

// MemorySplit reports, for one solution, the diagnostic memory stored
// at the gateway versus distributed into the ECUs — the quantities of
// the paper's Fig. 6.
type MemorySplit struct {
	GatewayBytes     int64
	DistributedBytes int64
	ShutOffMS        float64
	CostTotal        float64
	TestQuality      float64
}

// MemorySplitOf computes the Fig. 6 quantities of a solution. Gateway
// entries of the same profile are stored once (the shared-pattern model
// of Section III-D), distributed entries once per ECU.
func MemorySplitOf(s Solution) MemorySplit {
	ms := MemorySplit{
		ShutOffMS:   s.Objectives.ShutOffMS,
		CostTotal:   s.Objectives.CostTotal,
		TestQuality: s.Objectives.TestQuality,
	}
	x := s.Impl
	gwShared := make(map[int]int64)
	for tid, r := range x.Binding {
		t := x.Spec.App.Task(tid)
		if t == nil || t.Kind != model.KindBISTData {
			continue
		}
		if r == x.Spec.Gateway {
			gwShared[t.Profile] = t.MemBytes
		} else {
			ms.DistributedBytes += t.MemBytes
		}
	}
	for _, bytes := range gwShared {
		ms.GatewayBytes += bytes
	}
	return ms
}
