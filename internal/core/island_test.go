package core

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/casestudy"
	"repro/internal/model"
	"repro/internal/moea"
)

func frontsEqual(t *testing.T, a, b *Result, label string) {
	t.Helper()
	if len(a.Solutions) != len(b.Solutions) {
		t.Fatalf("%s: front size %d vs %d", label, len(a.Solutions), len(b.Solutions))
	}
	for i := range a.Solutions {
		if a.Solutions[i].Objectives != b.Solutions[i].Objectives {
			t.Fatalf("%s: solution %d = %+v vs %+v",
				label, i, a.Solutions[i].Objectives, b.Solutions[i].Objectives)
		}
	}
}

// TestExplorerIslandsDeterministicAcrossWorkers is the end-to-end
// island acceptance gate on the real explorer + SAT decoder: a fixed
// (seed, islands, migration) tuple must produce the identical merged
// front at every worker count, exercising the per-worker pinned
// decoder states across distinct genotype streams.
func TestExplorerIslandsDeterministicAcrossWorkers(t *testing.T) {
	spec, err := casestudy.Small(3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := NewSATDecoder(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplorer(spec, dec)
	ex.Verify = true
	ic := IslandConfig{Islands: 3, MigrateEvery: 3, Migrants: 2}
	var ref *Result
	for _, w := range []int{1, 2, 4} {
		res, err := ex.RunIslandsContext(context.Background(),
			moea.Options{PopSize: 12, Generations: 9, Seed: 13, Workers: w}, ic, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if res.Evaluations == 0 {
			t.Fatalf("workers=%d: no evaluations recorded", w)
		}
		if ref == nil {
			ref = res
			continue
		}
		frontsEqual(t, ref, res, "island worker sweep")
	}
}

// TestExplorerIslandsSingleMatchesPlain: -islands 1 must be the classic
// exploration under another driver — same seed stream, same schedule.
func TestExplorerIslandsSingleMatchesPlain(t *testing.T) {
	spec := smallSpec(t)
	dec, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplorer(spec, dec)
	opt := moea.Options{PopSize: 16, Generations: 10, Seed: 21}
	plain, err := ex.Run(opt)
	if err != nil {
		t.Fatal(err)
	}
	isl, err := ex.RunIslandsContext(context.Background(), opt, IslandConfig{Islands: 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	frontsEqual(t, plain, isl, "islands=1 vs plain")
}

// TestExplorerIslandsCheckpointResume: an island campaign checkpointed
// through RunControl resumes byte-identically at a different worker
// count.
func TestExplorerIslandsCheckpointResume(t *testing.T) {
	spec := smallSpec(t)
	dec, err := NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	ex := NewExplorer(spec, dec)
	opt := moea.Options{PopSize: 16, Generations: 12, Seed: 5, Workers: 2}
	ic := IslandConfig{Islands: 2, MigrateEvery: 4, Migrants: 2}

	full, err := ex.RunIslandsContext(context.Background(), opt, ic, nil)
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "island.json")
	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	stop := &stopAfterDecoder{Decoder: dec, evals: &evals, cancelAt: 16 * 6, cancel: cancel}
	exCancel := NewExplorer(spec, stop)
	_, err = exCancel.RunIslandsContext(ctx, opt, ic, &RunControl{CheckpointPath: path})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	cp, err := moea.ReadIslandCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	resumeOpt := opt
	resumeOpt.Workers = 4
	res, err := ex.RunIslandsContext(context.Background(), resumeOpt, ic, &RunControl{ResumeIslands: cp})
	if err != nil {
		t.Fatal(err)
	}
	frontsEqual(t, full, res, "resumed island campaign")
	if res.Evaluations != full.Evaluations {
		t.Fatalf("resumed evaluations %d, want %d", res.Evaluations, full.Evaluations)
	}
}

// stopAfterDecoder cancels the run context after a fixed number of
// decodes, forcing a mid-campaign checkpoint.
type stopAfterDecoder struct {
	Decoder
	evals    *int
	cancelAt int
	cancel   context.CancelFunc
}

func (s *stopAfterDecoder) Decode(g []float64) (*model.Implementation, error) {
	*s.evals++
	if *s.evals == s.cancelAt {
		s.cancel()
	}
	return s.Decoder.Decode(g)
}

// TestSATDecodeWorkerMatchesDecode: the pinned-state decode path must
// be indistinguishable from the pooled path for the same genotypes.
func TestSATDecodeWorkerMatchesDecode(t *testing.T) {
	spec := smallSpec(t)
	dec, err := NewSATDecoder(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	g := make([]float64, dec.GenotypeLen())
	for i := range g {
		g[i] = float64((i*37)%101) / 101
	}
	a, err := dec.Decode(g)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 3, 1} { // out-of-order first sight grows the slice
		b, err := dec.DecodeWorker(w, g)
		if err != nil {
			t.Fatalf("worker %d: %v", w, err)
		}
		if len(a.Binding) != len(b.Binding) {
			t.Fatalf("worker %d: binding size differs", w)
		}
		for tid, r := range a.Binding {
			if b.Binding[tid] != r {
				t.Fatalf("worker %d: binding of %s differs from pooled decode", w, tid)
			}
		}
	}
}
