package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/moea"
	"repro/internal/obs"
)

// frontBytes serializes the full result — implementations, objective
// vectors, evaluation count — so the tracing-on/off comparison is
// byte-level, not just objective equality.
func frontBytes(t *testing.T, res *Result) []byte {
	t.Helper()
	b, err := json.Marshal(struct {
		Evaluations int
		Solutions   []Solution
	}{res.Evaluations, res.Solutions})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestExplorerObsNonIntrusive pins the observability invariant: with a
// live tracer (event recording on) the exploration produces a
// byte-identical front to the untraced run, at single- and
// multi-worker counts, because spans never touch RNG streams or
// evaluation order.
func TestExplorerObsNonIntrusive(t *testing.T) {
	spec := smallSpec(t)
	for _, w := range []int{1, 4} {
		opt := moea.Options{PopSize: 16, Generations: 6, Seed: 5, Workers: w}

		dec, err := NewGreedyDecoder(spec)
		if err != nil {
			t.Fatal(err)
		}
		plain := NewExplorer(spec, dec)
		want, err := plain.Run(opt)
		if err != nil {
			t.Fatalf("workers=%d plain: %v", w, err)
		}

		dec2, err := NewGreedyDecoder(spec)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		tracer := obs.NewTracer(reg, obs.TracerConfig{Record: true, BufferCap: 64})
		traced := NewExplorer(spec, dec2)
		traced.Obs = tracer
		got, err := traced.Run(opt)
		if err != nil {
			t.Fatalf("workers=%d traced: %v", w, err)
		}

		if !bytes.Equal(frontBytes(t, want), frontBytes(t, got)) {
			t.Fatalf("workers=%d: traced front differs from untraced front", w)
		}
		// Guard against a vacuous pass: the tracer must actually have
		// metered the run.
		if n := len(tracer.Drain(nil)); n == 0 {
			t.Fatalf("workers=%d: tracer recorded no events", w)
		}
	}
}

// TestExplorerIslandsObsNonIntrusive extends the invariant to the
// island model: generation, migration, decode and objective spans all
// fire, and the merged front stays byte-identical to the untraced
// campaign at every worker count.
func TestExplorerIslandsObsNonIntrusive(t *testing.T) {
	spec := smallSpec(t)
	ic := IslandConfig{Islands: 3, MigrateEvery: 2, Migrants: 2}
	opt := moea.Options{PopSize: 12, Generations: 6, Seed: 9}

	var want []byte
	for _, w := range []int{1, 4} {
		o := opt
		o.Workers = w

		dec, err := NewGreedyDecoder(spec)
		if err != nil {
			t.Fatal(err)
		}
		plain := NewExplorer(spec, dec)
		res, err := plain.RunIslandsContext(context.Background(), o, ic, nil)
		if err != nil {
			t.Fatalf("workers=%d plain: %v", w, err)
		}
		if want == nil {
			want = frontBytes(t, res)
		} else if !bytes.Equal(want, frontBytes(t, res)) {
			t.Fatalf("workers=%d: untraced island front not worker-invariant", w)
		}

		dec2, err := NewGreedyDecoder(spec)
		if err != nil {
			t.Fatal(err)
		}
		reg := obs.NewRegistry()
		tracer := obs.NewTracer(reg, obs.TracerConfig{Record: true})
		traced := NewExplorer(spec, dec2)
		traced.Obs = tracer
		tres, err := traced.RunIslandsContext(context.Background(), o, ic, nil)
		if err != nil {
			t.Fatalf("workers=%d traced: %v", w, err)
		}
		if !bytes.Equal(want, frontBytes(t, tres)) {
			t.Fatalf("workers=%d: traced island front differs from untraced", w)
		}

		stages := map[obs.Stage]bool{}
		for _, e := range tracer.Drain(nil) {
			stages[e.Stage] = true
		}
		for _, s := range []obs.Stage{obs.StageDecode, obs.StageObjective, obs.StageGeneration, obs.StageMigration} {
			if !stages[s] {
				t.Fatalf("workers=%d: no %s spans recorded", w, s)
			}
		}
	}
}
