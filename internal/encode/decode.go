package encode

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/pbsat"
)

// GenotypeLen returns the genotype length used by Branching: one gene
// per mapping edge.
func (e *Encoding) GenotypeLen() int { return len(e.mapOrder) }

// Branching turns a genotype (one gene in [0,1] per mapping edge, in
// specification order) into the SAT-decoding decision order: the gene
// magnitude is the priority, values ≥ 0.5 prefer binding the edge.
// Routing variables are left to propagation and the solver fallback.
func (e *Encoding) Branching(genotype []float64) (pbsat.Branching, error) {
	if len(genotype) != len(e.mapOrder) {
		return nil, fmt.Errorf("encode: genotype length %d, want %d", len(genotype), len(e.mapOrder))
	}
	prio := make(map[pbsat.Var]float64, len(genotype))
	pref := make(map[pbsat.Var]bool, len(genotype))
	for i, m := range e.mapOrder {
		v := e.mapVars[m]
		g := genotype[i]
		// Distance from 0.5 is decision confidence; decide confident
		// genes first so the decode follows the genotype closely.
		d := g - 0.5
		if d < 0 {
			d = -d
		}
		prio[v] = d
		pref[v] = g >= 0.5
	}
	return pbsat.NewPriorityBranching(prio, pref), nil
}

// Decode reconstructs the implementation from a satisfying assignment.
func (e *Encoding) Decode(a pbsat.Assignment) (*model.Implementation, error) {
	x := model.NewImplementation(e.Spec)
	for _, m := range e.mapOrder {
		if a.Get(e.mapVars[m]) {
			x.Bind(m.Task, m.Resource)
		}
	}
	for _, msg := range e.Spec.App.Messages() {
		if !x.Bound(msg.Src) {
			continue
		}
		dst := msg.Dst[0]
		if !x.Bound(dst) {
			continue
		}
		route, err := e.extractRoute(a, msg, x.Binding[msg.Src], x.Binding[dst])
		if err != nil {
			return nil, err
		}
		x.SetRoute(msg.ID, dst, route)
	}
	return x, nil
}

// extractRoute walks the c_rτ assignment from the sender resource until
// the receiver resource is reached.
func (e *Encoding) extractRoute(a pbsat.Assignment, msg *model.Message, srcRes, dstRes model.ResourceID) (model.Route, error) {
	byTau := make(map[int]model.ResourceID)
	maxTau := -1
	for key, v := range e.stepVar {
		if key.msg != msg.ID || !a.Get(v) {
			continue
		}
		if prev, dup := byTau[key.tau]; dup {
			return model.Route{}, fmt.Errorf("encode: message %q has two resources (%q,%q) at step %d", msg.ID, prev, key.res, key.tau)
		}
		byTau[key.tau] = key.res
		if key.tau > maxTau {
			maxTau = key.tau
		}
	}
	if byTau[0] != srcRes {
		return model.Route{}, fmt.Errorf("encode: message %q route starts at %q, sender at %q", msg.ID, byTau[0], srcRes)
	}
	var hops []model.ResourceID
	for tau := 0; tau <= maxTau; tau++ {
		r, ok := byTau[tau]
		if !ok {
			break // chain ended
		}
		hops = append(hops, r)
		if r == dstRes {
			return model.Route{Hops: hops}, nil
		}
	}
	return model.Route{}, fmt.Errorf("encode: message %q route %v never reaches receiver %q", msg.ID, hops, dstRes)
}

// Stats summarizes the encoding size.
type Stats struct {
	MappingVars int
	RouteVars   int
	StepVars    int
	Constraints int
	TMax        int
}

// Stats returns the encoding size summary.
func (e *Encoding) Stats() Stats {
	return Stats{
		MappingVars: len(e.mapVars),
		RouteVars:   len(e.routeVar),
		StepVars:    len(e.stepVar),
		Constraints: e.Problem.NumConstraints(),
		TMax:        e.TMax,
	}
}

// SolveWithGenotype runs the full SAT-decoding pipeline: genotype →
// branching → solver → implementation. maxConflicts bounds the search
// (0 = solver default).
func (e *Encoding) SolveWithGenotype(genotype []float64, maxConflicts int) (*model.Implementation, *pbsat.Result, error) {
	br, err := e.Branching(genotype)
	if err != nil {
		return nil, nil, err
	}
	s := pbsat.NewSolver(e.Problem)
	if maxConflicts > 0 {
		s.MaxConflicts = maxConflicts
	}
	res := s.Solve(br)
	if !res.SAT {
		return nil, &res, fmt.Errorf("encode: no feasible implementation found (aborted=%v, conflicts=%d)", res.Aborted, res.Conflicts)
	}
	x, err := e.Decode(res.Model)
	if err != nil {
		return nil, &res, err
	}
	return x, &res, nil
}

// MappingOrder exposes the deterministic mapping-edge order backing the
// genotype layout (read-only).
func (e *Encoding) MappingOrder() []model.Mapping {
	return append([]model.Mapping(nil), e.mapOrder...)
}

// sortedStepKeys is a test helper surface: deterministic iteration of
// step variables for a message.
func (e *Encoding) sortedStepKeys(msg model.MessageID) []stepKey {
	var keys []stepKey
	for k := range e.stepVar {
		if k.msg == msg {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tau != keys[j].tau {
			return keys[i].tau < keys[j].tau
		}
		return keys[i].res < keys[j].res
	})
	return keys
}
