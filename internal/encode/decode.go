package encode

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/pbsat"
)

// GenotypeLen returns the genotype length used by Branching: one gene
// per mapping edge.
func (e *Encoding) GenotypeLen() int { return len(e.mapOrder) }

// Branching turns a genotype (one gene in [0,1] per mapping edge, in
// specification order) into the SAT-decoding decision order: the gene
// magnitude is the priority, values ≥ 0.5 prefer binding the edge.
// Routing variables are left to propagation and the solver fallback.
// For the allocation-free per-worker path, use DecoderState instead.
func (e *Encoding) Branching(genotype []float64) (pbsat.Branching, error) {
	if len(genotype) != len(e.mapOrder) {
		return nil, fmt.Errorf("encode: genotype length %d, want %d", len(genotype), len(e.mapOrder))
	}
	prio := make(map[pbsat.Var]float64, len(genotype))
	pref := make(map[pbsat.Var]bool, len(genotype))
	for i, m := range e.mapOrder {
		v := e.mapVars[m]
		g := genotype[i]
		// Distance from 0.5 is decision confidence; decide confident
		// genes first so the decode follows the genotype closely.
		d := g - 0.5
		if d < 0 {
			d = -d
		}
		prio[v] = d
		pref[v] = g >= 0.5
	}
	return pbsat.NewPriorityBranching(prio, pref), nil
}

// DecoderState is the reusable per-worker decode pipeline: one PB
// solver, one dense branching and the route-extraction scratch, all
// retained across Decode calls so the steady-state decode→implementation
// path stops reconstructing solver indexes and priority maps per
// genotype. A DecoderState is not safe for concurrent use; give each
// MOEA worker its own (core.SATDecoder pools them).
type DecoderState struct {
	enc    *Encoding
	solver *pbsat.Solver
	branch *pbsat.PriorityBranching
	prio   []float64
	pref   []bool
	// Route-extraction scratch, indexed by time step τ.
	byTau  []model.ResourceID
	tauSet []bool
}

// NewDecoderState builds a decode pipeline for the encoding. The
// returned state owns its solver; Decode results remain valid after the
// next call except for Result.Model, which aliases solver memory.
func (e *Encoding) NewDecoderState() *DecoderState {
	// The dense branching addresses mapping variables as 1..len(mapOrder);
	// allocMappingVars allocates them first, so this holds by
	// construction — verify once rather than trusting it silently.
	for i, m := range e.mapOrder {
		if e.mapVars[m] != pbsat.Var(i+1) {
			panic(fmt.Sprintf("encode: mapping variable %v is x%d, want x%d", m, e.mapVars[m], i+1))
		}
	}
	return &DecoderState{
		enc:    e,
		solver: pbsat.NewSolver(e.Problem),
		branch: pbsat.NewDensePriorityBranching(len(e.mapOrder)),
		prio:   make([]float64, len(e.mapOrder)),
		pref:   make([]bool, len(e.mapOrder)),
		byTau:  make([]model.ResourceID, e.TMax),
		tauSet: make([]bool, e.TMax),
	}
}

// Decode runs the full SAT-decoding pipeline — genotype → branching →
// solver → implementation — reusing the state's solver and buffers.
// maxConflicts bounds the search (0 = solver default). The returned
// Result's Model aliases solver memory and is invalidated by the next
// Decode on the same state.
func (d *DecoderState) Decode(genotype []float64, maxConflicts int) (*model.Implementation, *pbsat.Result, error) {
	e := d.enc
	if len(genotype) != len(e.mapOrder) {
		return nil, nil, fmt.Errorf("encode: genotype length %d, want %d", len(genotype), len(e.mapOrder))
	}
	for i, g := range genotype {
		c := g - 0.5
		if c < 0 {
			c = -c
		}
		d.prio[i] = c
		d.pref[i] = g >= 0.5
	}
	d.branch.SetDense(d.prio, d.pref)
	d.solver.MaxConflicts = maxConflicts // 0 restores the solver default
	res := d.solver.Solve(d.branch)
	if !res.SAT {
		return nil, &res, fmt.Errorf("encode: no feasible implementation found (aborted=%v, conflicts=%d)", res.Aborted, res.Conflicts)
	}
	x, err := e.decodeAssignment(res.Model, d.byTau, d.tauSet)
	if err != nil {
		return nil, &res, err
	}
	return x, &res, nil
}

// Decode reconstructs the implementation from a satisfying assignment.
func (e *Encoding) Decode(a pbsat.Assignment) (*model.Implementation, error) {
	return e.decodeAssignment(a, make([]model.ResourceID, e.TMax), make([]bool, e.TMax))
}

// decodeAssignment reconstructs the implementation, routing every bound
// destination of each active message. The routing-chain encoding of
// [17] is unicast and Build rejects multicast messages, so the inner
// loop runs once per message — but each destination is still handled
// explicitly rather than silently assuming Dst[0].
func (e *Encoding) decodeAssignment(a pbsat.Assignment, byTau []model.ResourceID, tauSet []bool) (*model.Implementation, error) {
	x := model.NewImplementation(e.Spec)
	for _, m := range e.mapOrder {
		if a.Get(e.mapVars[m]) {
			x.Bind(m.Task, m.Resource)
		}
	}
	for _, msg := range e.Spec.App.Messages() {
		if !x.Bound(msg.Src) {
			continue
		}
		for _, dst := range msg.Dst {
			if !x.Bound(dst) {
				continue
			}
			route, err := e.extractRoute(a, msg, x.Binding[msg.Src], x.Binding[dst], byTau, tauSet)
			if err != nil {
				return nil, err
			}
			x.SetRoute(msg.ID, dst, route)
		}
	}
	return x, nil
}

// extractRoute walks the c_rτ assignment from the sender resource until
// the receiver resource is reached, reading the per-message step index
// (sorted by τ) instead of scanning the global step-variable map.
func (e *Encoding) extractRoute(a pbsat.Assignment, msg *model.Message, srcRes, dstRes model.ResourceID, byTau []model.ResourceID, tauSet []bool) (model.Route, error) {
	for i := range tauSet {
		tauSet[i] = false
	}
	maxTau := -1
	for _, se := range e.msgSteps[msg.ID] {
		if !a.Get(se.v) {
			continue
		}
		if se.tau == maxTau { // entries are τ-sorted: equal τ means duplicate
			return model.Route{}, fmt.Errorf("encode: message %q has two resources (%q,%q) at step %d", msg.ID, byTau[se.tau], se.res, se.tau)
		}
		byTau[se.tau] = se.res
		tauSet[se.tau] = true
		maxTau = se.tau
	}
	if maxTau < 0 || !tauSet[0] || byTau[0] != srcRes {
		start := model.ResourceID("")
		if maxTau >= 0 && tauSet[0] {
			start = byTau[0]
		}
		return model.Route{}, fmt.Errorf("encode: message %q route starts at %q, sender at %q", msg.ID, start, srcRes)
	}
	hops := make([]model.ResourceID, 0, maxTau+1)
	for tau := 0; tau <= maxTau; tau++ {
		if !tauSet[tau] {
			break // chain ended
		}
		r := byTau[tau]
		hops = append(hops, r)
		if r == dstRes {
			return model.Route{Hops: hops}, nil
		}
	}
	return model.Route{}, fmt.Errorf("encode: message %q route %v never reaches receiver %q", msg.ID, hops, dstRes)
}

// Stats summarizes the encoding size.
type Stats struct {
	MappingVars int
	RouteVars   int
	StepVars    int
	Constraints int
	TMax        int
}

// Stats returns the encoding size summary.
func (e *Encoding) Stats() Stats {
	return Stats{
		MappingVars: len(e.mapVars),
		RouteVars:   len(e.routeVar),
		StepVars:    len(e.stepVar),
		Constraints: e.Problem.NumConstraints(),
		TMax:        e.TMax,
	}
}

// SolveWithGenotype runs the full SAT-decoding pipeline: genotype →
// branching → solver → implementation. maxConflicts bounds the search
// (0 = solver default). It builds a fresh DecoderState per call; hot
// loops should hold a DecoderState (or core.SATDecoder, which pools
// them) instead.
func (e *Encoding) SolveWithGenotype(genotype []float64, maxConflicts int) (*model.Implementation, *pbsat.Result, error) {
	return e.NewDecoderState().Decode(genotype, maxConflicts)
}

// MappingOrder exposes the deterministic mapping-edge order backing the
// genotype layout (read-only).
func (e *Encoding) MappingOrder() []model.Mapping {
	return append([]model.Mapping(nil), e.mapOrder...)
}

// sortedStepKeys is a test helper surface: deterministic iteration of
// step variables for a message.
func (e *Encoding) sortedStepKeys(msg model.MessageID) []stepKey {
	var keys []stepKey
	for k := range e.stepVar {
		if k.msg == msg {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].tau != keys[j].tau {
			return keys[i].tau < keys[j].tau
		}
		return keys[i].res < keys[j].res
	})
	return keys
}
