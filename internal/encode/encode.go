// Package encode builds the pseudo-Boolean constraint system of the
// paper's Section III-C: the characteristic function Ψ over mapping
// variables m, routing variables c_r and timed routing variables c_rτ,
// with the functional constraints Ψ_F (every mandatory task bound,
// messages routed along adjacent resources) and the diagnostic
// constraints Eqs. (2a)–(2h), (3a), (3b).
//
// A satisfying assignment decodes into a feasible model.Implementation;
// combined with a genotype-driven pbsat.Branching this realizes
// SAT-decoding.
package encode

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/pbsat"
)

// Encoding holds the constraint problem and the variable maps needed to
// decode assignments back into implementations.
type Encoding struct {
	Spec    *model.Specification
	Problem *pbsat.Problem
	TMax    int // number of time steps τ ∈ {0, …, TMax−1}

	opts     buildOptions
	mapVars  map[model.Mapping]pbsat.Var
	mapOrder []model.Mapping // deterministic genotype order
	routeVar map[routeKey]pbsat.Var
	stepVar  map[stepKey]pbsat.Var

	// msgSteps groups the step variables of each message, sorted by
	// (tau, resource), so route extraction walks a short dense slice
	// instead of scanning the whole stepVar map per message.
	msgSteps map[model.MessageID][]stepEntry
}

// stepEntry is one (resource, time-step) routing variable of a message
// in the msgSteps index.
type stepEntry struct {
	res model.ResourceID
	tau int
	v   pbsat.Var
}

type routeKey struct {
	msg model.MessageID
	res model.ResourceID
}

type stepKey struct {
	msg model.MessageID
	res model.ResourceID
	tau int
}

// Option tweaks the constraint system, mainly for ablation studies.
type Option func(*buildOptions)

type buildOptions struct {
	disable2h bool
}

// Without2h drops Eq. (2h) — the rule forbidding resources allocated
// solely for diagnosis. The DESIGN.md A3 ablation shows what goes wrong
// without it: the optimizer may bind BIST tasks to otherwise idle
// resources to inflate the average coverage.
func Without2h() Option {
	return func(o *buildOptions) { o.disable2h = true }
}

// Build encodes the specification. tmax bounds route lengths in hops;
// tmax ≤ 0 uses the architecture graph diameter + 1. Multicast messages
// are rejected — the routing chain encoding of [17] used here is
// unicast (model multicast as one message per receiver).
func Build(spec *model.Specification, tmax int, opts ...Option) (*Encoding, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	for _, m := range spec.App.Messages() {
		if len(m.Dst) != 1 {
			return nil, fmt.Errorf("encode: message %q has %d receivers; encode unicast messages only", m.ID, len(m.Dst))
		}
	}
	if tmax <= 0 {
		tmax = diameter(spec.Arch) + 1
	}
	var bo buildOptions
	for _, opt := range opts {
		opt(&bo)
	}
	e := &Encoding{
		Spec:     spec,
		Problem:  pbsat.NewProblem(),
		TMax:     tmax,
		opts:     bo,
		mapVars:  make(map[model.Mapping]pbsat.Var),
		routeVar: make(map[routeKey]pbsat.Var),
		stepVar:  make(map[stepKey]pbsat.Var),
	}
	e.allocMappingVars()
	e.allocRoutingVars()
	e.indexSteps()
	e.addTaskConstraints()
	e.addRoutingConstraints()
	e.addDiagnosisConstraints()
	e.addMemoryConstraints()
	return e, nil
}

// diameter returns the longest shortest-path hop count of the graph.
func diameter(arch *model.ArchitectureGraph) int {
	d := 1
	res := arch.Resources()
	for _, a := range res {
		for _, b := range res {
			if a.ID >= b.ID {
				continue
			}
			if path, ok := arch.ShortestPath(a.ID, b.ID, nil); ok && len(path) > d {
				d = len(path)
			}
		}
	}
	return d
}

func (e *Encoding) allocMappingVars() {
	for _, m := range e.Spec.Mappings() {
		v := e.Problem.NewVar("m:" + m.String())
		e.mapVars[m] = v
		e.mapOrder = append(e.mapOrder, m)
	}
}

// allocRoutingVars creates c_r and c_rτ variables, pruned by
// reachability: (c, r, τ) exists only if r is within τ hops of some
// sender option and within TMax−1−τ hops of the receiver options.
func (e *Encoding) allocRoutingVars() {
	for _, msg := range e.Spec.App.Messages() {
		srcOpts := e.Spec.MappingTargets(msg.Src)
		dstOpts := e.Spec.MappingTargets(msg.Dst[0])
		distFromSrc := multiSourceDist(e.Spec.Arch, srcOpts)
		distToDst := multiSourceDist(e.Spec.Arch, dstOpts)
		for _, r := range e.Spec.Arch.Resources() {
			ds, okS := distFromSrc[r.ID]
			dd, okD := distToDst[r.ID]
			if !okS || !okD || ds+dd > e.TMax-1 {
				continue
			}
			e.routeVar[routeKey{msg.ID, r.ID}] = e.Problem.NewVar(fmt.Sprintf("c:%s@%s", msg.ID, r.ID))
			for tau := ds; tau <= e.TMax-1-dd; tau++ {
				e.stepVar[stepKey{msg.ID, r.ID, tau}] = e.Problem.NewVar(fmt.Sprintf("c:%s@%s.t%d", msg.ID, r.ID, tau))
			}
		}
	}
}

// indexSteps builds the per-message step-variable index from the
// allocated stepVar map, sorted by (tau, resource) so decode-time route
// walks are deterministic and allocation-free.
func (e *Encoding) indexSteps() {
	e.msgSteps = make(map[model.MessageID][]stepEntry, len(e.Spec.App.Messages()))
	for key, v := range e.stepVar {
		e.msgSteps[key.msg] = append(e.msgSteps[key.msg], stepEntry{res: key.res, tau: key.tau, v: v})
	}
	for _, entries := range e.msgSteps {
		sort.Slice(entries, func(i, j int) bool {
			if entries[i].tau != entries[j].tau {
				return entries[i].tau < entries[j].tau
			}
			return entries[i].res < entries[j].res
		})
	}
}

// multiSourceDist returns hop distances from the nearest of the given
// sources.
func multiSourceDist(arch *model.ArchitectureGraph, sources []model.ResourceID) map[model.ResourceID]int {
	dist := make(map[model.ResourceID]int)
	var queue []model.ResourceID
	for _, s := range sources {
		if _, seen := dist[s]; !seen {
			dist[s] = 0
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range arch.Neighbors(cur) {
			if _, seen := dist[n]; !seen {
				dist[n] = dist[cur] + 1
				queue = append(queue, n)
			}
		}
	}
	return dist
}

// MapVar returns the variable of a mapping edge.
func (e *Encoding) MapVar(m model.Mapping) (pbsat.Var, bool) {
	v, ok := e.mapVars[m]
	return v, ok
}

// addTaskConstraints binds mandatory tasks exactly once and optional
// diagnosis tasks at most once (Eq. 2a).
func (e *Encoding) addTaskConstraints() {
	for _, t := range e.Spec.App.Tasks() {
		var lits []pbsat.Lit
		for _, r := range e.Spec.MappingTargets(t.ID) {
			lits = append(lits, pbsat.Pos(e.mapVars[model.Mapping{Task: t.ID, Resource: r}]))
		}
		if t.Kind.Diagnostic() {
			e.Problem.AtMostOne("2a:"+string(t.ID), lits...)
		} else {
			e.Problem.ExactlyOne("bind:"+string(t.ID), lits...)
		}
	}
}

// boundLits returns the mapping literals of a task (their sum is the
// "task is bound" indicator).
func (e *Encoding) boundLits(t model.TaskID) []pbsat.Lit {
	var lits []pbsat.Lit
	for _, r := range e.Spec.MappingTargets(t) {
		lits = append(lits, pbsat.Pos(e.mapVars[model.Mapping{Task: t, Resource: r}]))
	}
	return lits
}

func (e *Encoding) addRoutingConstraints() {
	for _, msg := range e.Spec.App.Messages() {
		dst := msg.Dst[0]
		// Eq. 2b: the route starts at the sender's resource at τ = 0:
		// c_{r,0} = m_{src,r} for every sender option r, and c_{r,0} = 0
		// elsewhere (those variables simply do not exist or are forced).
		senderOpts := make(map[model.ResourceID]bool)
		for _, r := range e.Spec.MappingTargets(msg.Src) {
			senderOpts[r] = true
			sv, ok := e.stepVar[stepKey{msg.ID, r, 0}]
			if !ok {
				// Sender option pruned (receiver unreachable within TMax):
				// then the sender must not bind here together with a bound
				// receiver; handled by 2c below turning infeasible. Skip.
				continue
			}
			e.Problem.Equiv(pbsat.Pos(sv), pbsat.Pos(e.mapVars[model.Mapping{Task: msg.Src, Resource: r}]),
				"2b:"+string(msg.ID))
		}
		for key, v := range e.stepVar {
			if key.msg == msg.ID && key.tau == 0 && !senderOpts[key.res] {
				e.Problem.AddClause("2b0:"+string(msg.ID), pbsat.Not(v))
			}
		}

		// Eq. 2c (generalized to any receiver): if the sender is bound
		// and the receiver is bound to r, the message must arrive at r:
		// c_r − Σ m_{src,·} − m_{dst,r} ≥ −1.
		for _, r := range e.Spec.MappingTargets(dst) {
			terms := []pbsat.Term{}
			rv, ok := e.routeVar[routeKey{msg.ID, r}]
			if ok {
				terms = append(terms, pbsat.Term{Coef: 1, Lit: pbsat.Pos(rv)})
			}
			for _, l := range e.boundLits(msg.Src) {
				terms = append(terms, pbsat.Term{Coef: -1, Lit: l})
			}
			terms = append(terms, pbsat.Term{Coef: -1, Lit: pbsat.Pos(e.mapVars[model.Mapping{Task: dst, Resource: r}])})
			e.Problem.AddGE(terms, -1, "2c:"+string(msg.ID))
		}

		// Per-resource and per-step structure.
		for _, r := range e.Spec.Arch.Resources() {
			rv, ok := e.routeVar[routeKey{msg.ID, r.ID}]
			if !ok {
				continue
			}
			var stepLits []pbsat.Lit
			for tau := 0; tau < e.TMax; tau++ {
				if sv, ok := e.stepVar[stepKey{msg.ID, r.ID, tau}]; ok {
					stepLits = append(stepLits, pbsat.Pos(sv))
					// Eq. 2f: c_r ≥ c_rτ.
					e.Problem.Implies(pbsat.Pos(sv), pbsat.Pos(rv), "2f:"+string(msg.ID))
				}
			}
			// Eq. 2d: a resource appears at most once on the route.
			e.Problem.AtMostOne("2d:"+string(msg.ID), stepLits...)
			// Eq. 2e: c_r → some τ.
			terms := make([]pbsat.Term, 0, len(stepLits)+1)
			for _, l := range stepLits {
				terms = append(terms, pbsat.Term{Coef: 1, Lit: l})
			}
			terms = append(terms, pbsat.Term{Coef: -1, Lit: pbsat.Pos(rv)})
			e.Problem.AddGE(terms, 0, "2e:"+string(msg.ID))
		}

		// One resource per time step (unicast chain, from [17]).
		for tau := 0; tau < e.TMax; tau++ {
			var lits []pbsat.Lit
			for _, r := range e.Spec.Arch.Resources() {
				if sv, ok := e.stepVar[stepKey{msg.ID, r.ID, tau}]; ok {
					lits = append(lits, pbsat.Pos(sv))
				}
			}
			if len(lits) > 1 {
				e.Problem.AtMostOne("chain:"+string(msg.ID), lits...)
			}
		}

		// Eq. 2g: a step-τ+1 hop needs an adjacent step-τ hop.
		for key, sv := range e.stepVar {
			if key.msg != msg.ID || key.tau == 0 {
				continue
			}
			terms := []pbsat.Term{}
			for _, n := range e.Spec.Arch.Neighbors(key.res) {
				if pv, ok := e.stepVar[stepKey{msg.ID, n, key.tau - 1}]; ok {
					terms = append(terms, pbsat.Term{Coef: 1, Lit: pbsat.Pos(pv)})
				}
			}
			terms = append(terms, pbsat.Term{Coef: -1, Lit: pbsat.Pos(sv)})
			e.Problem.AddGE(terms, 0, "2g:"+string(msg.ID))
		}
	}
}

func (e *Encoding) addDiagnosisConstraints() {
	// Eq. 2h: a diagnosis task may only be mapped to a resource that
	// also hosts a mandatory task. Skipped under the Without2h ablation.
	if !e.opts.disable2h {
		for _, d := range e.Spec.App.Tasks() {
			if !d.Kind.Diagnostic() {
				continue
			}
			for _, r := range e.Spec.MappingTargets(d.ID) {
				terms := []pbsat.Term{{Coef: -1, Lit: pbsat.Pos(e.mapVars[model.Mapping{Task: d.ID, Resource: r}])}}
				for _, t := range e.Spec.MappableTasks(r) {
					task := e.Spec.App.Task(t)
					if task == nil || task.Kind.Diagnostic() {
						continue
					}
					terms = append(terms, pbsat.Term{Coef: 1, Lit: pbsat.Pos(e.mapVars[model.Mapping{Task: t, Resource: r}])})
				}
				e.Problem.AddGE(terms, 0, "2h:"+string(d.ID))
			}
		}
	}

	// Eq. 3a: at most one BIST test task per resource.
	perECU := make(map[model.ResourceID][]pbsat.Lit)
	for _, bT := range e.Spec.App.TasksOfKind(model.KindBISTTest) {
		for _, r := range e.Spec.MappingTargets(bT.ID) {
			perECU[r] = append(perECU[r], pbsat.Pos(e.mapVars[model.Mapping{Task: bT.ID, Resource: r}]))
		}
	}
	var ecus []model.ResourceID
	for r := range perECU {
		ecus = append(ecus, r)
	}
	sort.Slice(ecus, func(i, j int) bool { return ecus[i] < ecus[j] })
	for _, r := range ecus {
		e.Problem.AtMostOne("3a:"+string(r), perECU[r]...)
	}

	// Eq. 3b: b^D is bound iff its paired b^T is bound (moved below).
	e.add3b()
}

// addMemoryConstraints bounds the permanent memory of every resource
// with a finite capacity: Σ mem(t)·m_{t,r} ≤ cap(r), in KiB units to
// keep pseudo-Boolean coefficients small.
func (e *Encoding) addMemoryConstraints() {
	for _, r := range e.Spec.Arch.Resources() {
		if r.MemCapBytes <= 0 {
			continue
		}
		var terms []pbsat.Term
		for _, t := range e.Spec.MappableTasks(r.ID) {
			task := e.Spec.App.Task(t)
			if task == nil || task.MemBytes <= 0 {
				continue
			}
			kib := int((task.MemBytes + 1023) / 1024)
			if kib == 0 {
				kib = 1
			}
			terms = append(terms, pbsat.Term{Coef: kib, Lit: pbsat.Pos(e.mapVars[model.Mapping{Task: t, Resource: r.ID}])})
		}
		if len(terms) == 0 {
			continue
		}
		e.Problem.AddLE(terms, int(r.MemCapBytes/1024), "mem:"+string(r.ID))
	}
}

func (e *Encoding) add3b() {
	for _, bD := range e.Spec.App.TasksOfKind(model.KindBISTData) {
		bT := e.Spec.TestTaskFor(bD)
		if bT == nil {
			continue
		}
		terms := []pbsat.Term{}
		for _, l := range e.boundLits(bD.ID) {
			terms = append(terms, pbsat.Term{Coef: 1, Lit: l})
		}
		for _, l := range e.boundLits(bT.ID) {
			terms = append(terms, pbsat.Term{Coef: -1, Lit: l})
		}
		e.Problem.AddEQ(terms, 0, "3b:"+string(bD.ID))
	}
}
