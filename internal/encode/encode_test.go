package encode

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/model"
	"repro/internal/pbsat"
)

// buildSpec creates a small but complete diagnostic specification: two
// ECUs and a gateway on one bus, a functional chain t1→t2, two BIST
// profiles for ecu1 and one for ecu2, with data tasks mappable locally
// or to the gateway.
func buildSpec(t *testing.T) *model.Specification {
	t.Helper()
	app := model.NewApplicationGraph()
	tasks := []*model.Task{
		{ID: "t1", Kind: model.KindFunctional},
		{ID: "t2", Kind: model.KindFunctional},
		{ID: "bR", Kind: model.KindCollect},
		{ID: "bT1a", Kind: model.KindBISTTest, TestedECU: "ecu1", Coverage: 0.99, WCETms: 5, Profile: 1},
		{ID: "bT1b", Kind: model.KindBISTTest, TestedECU: "ecu1", Coverage: 0.95, WCETms: 2, Profile: 2},
		{ID: "bD1a", Kind: model.KindBISTData, TestedECU: "ecu1", MemBytes: 1 << 20},
		{ID: "bD1b", Kind: model.KindBISTData, TestedECU: "ecu1", MemBytes: 1 << 18},
		{ID: "bT2", Kind: model.KindBISTTest, TestedECU: "ecu2", Coverage: 0.98, WCETms: 3, Profile: 1},
		{ID: "bD2", Kind: model.KindBISTData, TestedECU: "ecu2", MemBytes: 1 << 19},
	}
	for _, task := range tasks {
		if err := app.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	msgs := []*model.Message{
		{ID: "c1", Src: "t1", Dst: []model.TaskID{"t2"}, SizeBytes: 8, PeriodMS: 10},
		{ID: "cD1a", Src: "bD1a", Dst: []model.TaskID{"bT1a"}, SizeBytes: 8, PeriodMS: 10},
		{ID: "cD1b", Src: "bD1b", Dst: []model.TaskID{"bT1b"}, SizeBytes: 8, PeriodMS: 10},
		{ID: "cD2", Src: "bD2", Dst: []model.TaskID{"bT2"}, SizeBytes: 8, PeriodMS: 10},
		{ID: "cR1a", Src: "bT1a", Dst: []model.TaskID{"bR"}, SizeBytes: 8, PeriodMS: 100},
		{ID: "cR1b", Src: "bT1b", Dst: []model.TaskID{"bR"}, SizeBytes: 8, PeriodMS: 100},
		{ID: "cR2", Src: "bT2", Dst: []model.TaskID{"bR"}, SizeBytes: 8, PeriodMS: 100},
	}
	for _, m := range msgs {
		if err := app.AddMessage(m); err != nil {
			t.Fatal(err)
		}
	}
	arch := model.NewArchitectureGraph()
	for _, r := range []*model.Resource{
		{ID: "ecu1", Kind: model.KindECU, Cost: 10, BISTCapable: true, BISTCost: 1, MemCostPerKB: 0.01},
		{ID: "ecu2", Kind: model.KindECU, Cost: 11, BISTCapable: true, BISTCost: 1, MemCostPerKB: 0.01},
		{ID: "bus1", Kind: model.KindBus, Cost: 1, BitRate: 500_000},
		{ID: "gw", Kind: model.KindGateway, Cost: 20, MemCostPerKB: 0.002},
	} {
		if err := arch.AddResource(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]model.ResourceID{{"ecu1", "bus1"}, {"ecu2", "bus1"}, {"gw", "bus1"}} {
		if err := arch.Connect(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	spec := model.NewSpecification(app, arch)
	spec.Gateway = "gw"
	maps := []model.Mapping{
		{Task: "t1", Resource: "ecu1"}, {Task: "t1", Resource: "ecu2"},
		{Task: "t2", Resource: "ecu2"}, {Task: "t2", Resource: "ecu1"},
		{Task: "bR", Resource: "gw"},
		{Task: "bT1a", Resource: "ecu1"}, {Task: "bT1b", Resource: "ecu1"},
		{Task: "bD1a", Resource: "ecu1"}, {Task: "bD1a", Resource: "gw"},
		{Task: "bD1b", Resource: "ecu1"}, {Task: "bD1b", Resource: "gw"},
		{Task: "bT2", Resource: "ecu2"},
		{Task: "bD2", Resource: "ecu2"}, {Task: "bD2", Resource: "gw"},
	}
	for _, m := range maps {
		if err := spec.AddMapping(m.Task, m.Resource); err != nil {
			t.Fatal(err)
		}
	}
	return spec
}

func TestBuildStats(t *testing.T) {
	e, err := Build(buildSpec(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.MappingVars != 14 {
		t.Fatalf("mapping vars = %d, want 14", st.MappingVars)
	}
	if st.RouteVars == 0 || st.StepVars == 0 || st.Constraints == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Longest shortest path in this topology visits 3 resources
	// (ecu → bus → gw); TMax = diameter+1 leaves one hop of slack.
	if st.TMax != 4 {
		t.Fatalf("TMax = %d, want 4", st.TMax)
	}
	if e.GenotypeLen() != 14 {
		t.Fatalf("genotype len = %d", e.GenotypeLen())
	}
}

// TestBuildRejectsMulticast pins the chosen multi-destination policy:
// the routing-chain encoding is unicast, so Build rejects multicast
// messages loudly at encoding time (naming the message) instead of
// Decode silently routing to the first destination only.
func TestBuildRejectsMulticast(t *testing.T) {
	spec := buildSpec(t)
	if err := spec.App.AddMessage(&model.Message{ID: "mc", Src: "t1", Dst: []model.TaskID{"t2", "bR"}, SizeBytes: 1, PeriodMS: 10}); err != nil {
		t.Fatal(err)
	}
	_, err := Build(spec, 0)
	if err == nil {
		t.Fatal("multicast accepted")
	}
	if !strings.Contains(err.Error(), "mc") || !strings.Contains(err.Error(), "unicast") {
		t.Fatalf("error %q does not name the multicast message and the unicast restriction", err)
	}
}

// TestDecodeRoutesEveryDestination pins the Decode side of the policy:
// the implementation carries one route per bound destination of every
// active message — none is silently skipped — and each route runs from
// the sender's resource to that destination's resource.
func TestDecodeRoutesEveryDestination(t *testing.T) {
	e, err := Build(buildSpec(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	g := make([]float64, e.GenotypeLen())
	for i := range g {
		g[i] = 0.5
	}
	x, _, err := e.SolveWithGenotype(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, msg := range e.Spec.App.Messages() {
		if !x.Bound(msg.Src) {
			continue
		}
		for _, dst := range msg.Dst {
			if !x.Bound(dst) {
				continue
			}
			route, ok := x.Routing[msg.ID][dst]
			if !ok {
				t.Fatalf("message %q has no route towards %q", msg.ID, dst)
			}
			if len(route.Hops) == 0 || route.Hops[0] != x.Binding[msg.Src] || route.Hops[len(route.Hops)-1] != x.Binding[dst] {
				t.Fatalf("message %q route %v does not run %q→%q", msg.ID, route, x.Binding[msg.Src], x.Binding[dst])
			}
		}
	}
}

// TestDecoderStateReuseMatchesFresh pins the per-worker reuse contract:
// one DecoderState decoding a stream of genotypes must produce exactly
// the implementations a fresh pipeline produces — state reuse is a
// throughput optimization, never a behavioral one.
func TestDecoderStateReuseMatchesFresh(t *testing.T) {
	e, err := Build(buildSpec(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	st := e.NewDecoderState()
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 50; round++ {
		g := make([]float64, e.GenotypeLen())
		for i := range g {
			g[i] = rng.Float64()
		}
		got, gotRes, err := st.Decode(g, 0)
		if err != nil {
			t.Fatalf("round %d: reused decode: %v", round, err)
		}
		want, wantRes, err := e.SolveWithGenotype(g, 0)
		if err != nil {
			t.Fatalf("round %d: fresh decode: %v", round, err)
		}
		if gotRes.Decisions != wantRes.Decisions || gotRes.Conflicts != wantRes.Conflicts {
			t.Fatalf("round %d: search stats (d=%d c=%d) vs fresh (d=%d c=%d)",
				round, gotRes.Decisions, gotRes.Conflicts, wantRes.Decisions, wantRes.Conflicts)
		}
		if !reflect.DeepEqual(got.Binding, want.Binding) {
			t.Fatalf("round %d: bindings differ:\n%v\n%v", round, got.Binding, want.Binding)
		}
		if !reflect.DeepEqual(got.Allocation, want.Allocation) {
			t.Fatalf("round %d: allocations differ", round)
		}
		if !reflect.DeepEqual(got.Routing, want.Routing) {
			t.Fatalf("round %d: routings differ", round)
		}
	}
}

func TestSolveNeutralGenotypeIsFeasible(t *testing.T) {
	e, err := Build(buildSpec(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	g := make([]float64, e.GenotypeLen())
	for i := range g {
		g[i] = 0.5
	}
	x, res, err := e.SolveWithGenotype(g, 0)
	if err != nil {
		t.Fatalf("solve: %v (res=%+v)", err, res)
	}
	// Cross-validate with the independent structural checker.
	if errs := x.Check(); len(errs) != 0 {
		t.Fatalf("decoded implementation infeasible: %v", errs)
	}
}

func TestGenotypeSteersBISTSelection(t *testing.T) {
	e, err := Build(buildSpec(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	order := e.MappingOrder()
	geneOf := func(task model.TaskID, res model.ResourceID) int {
		for i, m := range order {
			if m.Task == task && m.Resource == res {
				return i
			}
		}
		t.Fatalf("mapping %s->%s not found", task, res)
		return -1
	}

	// Force BIST profile b on ecu1 with gateway storage, no BIST on ecu2.
	g := make([]float64, e.GenotypeLen())
	for i := range g {
		g[i] = 0.1 // prefer off / low priority
	}
	g[geneOf("bT1b", "ecu1")] = 1.0
	g[geneOf("bD1b", "gw")] = 0.99
	g[geneOf("t1", "ecu1")] = 0.95
	g[geneOf("t2", "ecu2")] = 0.94

	x, _, err := e.SolveWithGenotype(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if errs := x.Check(); len(errs) != 0 {
		t.Fatalf("infeasible: %v", errs)
	}
	sel := x.SelectedBIST()
	if sel["ecu1"] == nil || sel["ecu1"].ID != "bT1b" {
		t.Fatalf("selected BIST = %v, want bT1b on ecu1", sel)
	}
	if sel["ecu2"] != nil {
		t.Fatalf("ecu2 unexpectedly has BIST: %v", sel["ecu2"])
	}
	if got := x.Binding["bD1b"]; got != "gw" {
		t.Fatalf("bD1b bound to %q, want gw", got)
	}
	// The test-pattern message must be routed gw -> bus1 -> ecu1.
	rt := x.Routing["cD1b"]["bT1b"]
	if rt.String() != "gw->bus1->ecu1" {
		t.Fatalf("route = %v", rt)
	}
}

// TestRandomGenotypesAlwaysFeasible is the SAT-decoding guarantee: any
// genotype decodes into an implementation satisfying all constraints of
// the independent model checker.
func TestRandomGenotypesAlwaysFeasible(t *testing.T) {
	e, err := Build(buildSpec(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 50; round++ {
		g := make([]float64, e.GenotypeLen())
		for i := range g {
			g[i] = rng.Float64()
		}
		x, _, err := e.SolveWithGenotype(g, 0)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if errs := x.Check(); len(errs) != 0 {
			t.Fatalf("round %d: decoded infeasible: %v", round, errs)
		}
	}
}

func TestEq3aAtMostOneProfile(t *testing.T) {
	e, err := Build(buildSpec(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	order := e.MappingOrder()
	g := make([]float64, e.GenotypeLen())
	// Try to force BOTH ecu1 profiles on.
	for i, m := range order {
		switch m.Task {
		case "bT1a", "bT1b":
			g[i] = 1.0
		default:
			g[i] = 0.5
		}
	}
	x, _, err := e.SolveWithGenotype(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, bt := range []model.TaskID{"bT1a", "bT1b"} {
		if x.Bound(bt) {
			n++
		}
	}
	if n > 1 {
		t.Fatalf("both profiles selected despite Eq. 3a")
	}
}

func TestBranchingLengthValidation(t *testing.T) {
	e, err := Build(buildSpec(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Branching([]float64{0.5}); err == nil {
		t.Fatal("wrong genotype length accepted")
	}
}

func TestVerifyModelSatisfiesEncoding(t *testing.T) {
	// The solver's model must satisfy every encoded constraint per the
	// problem's own Verify — a sanity loop between solver and encoder.
	e, err := Build(buildSpec(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	s := pbsat.NewSolver(e.Problem)
	res := s.Solve(nil)
	if !res.SAT {
		t.Fatal("encoding unsatisfiable")
	}
	if bad := e.Problem.Verify(res.Model); len(bad) != 0 {
		t.Fatalf("model violates %v", bad)
	}
}

func TestSortedStepKeysDeterministic(t *testing.T) {
	e, err := Build(buildSpec(t), 0)
	if err != nil {
		t.Fatal(err)
	}
	a := e.sortedStepKeys("c1")
	b := e.sortedStepKeys("c1")
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("step keys: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic iteration")
		}
	}
}

// TestMemoryCapacityEncoded: a gateway too small for the big profile's
// pattern data forces the solver to either store locally or pick the
// smaller profile — never to overflow the capacity.
func TestMemoryCapacityEncoded(t *testing.T) {
	spec := buildSpec(t)
	// Cap the gateway below bD1a's 1 MiB but above bD1b's 256 KiB.
	spec.Arch.Resource("gw").MemCapBytes = 512 * 1024
	e, err := Build(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	order := e.MappingOrder()
	g := make([]float64, e.GenotypeLen())
	for i, m := range order {
		switch {
		case m.Task == "bT1a":
			g[i] = 1.0 // want the big profile
		case m.Task == "bD1a" && m.Resource == "gw":
			g[i] = 0.99 // want it at the gateway — must be overridden
		default:
			g[i] = 0.5
		}
	}
	x, _, err := e.SolveWithGenotype(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if errs := x.Check(); len(errs) != 0 {
		t.Fatalf("infeasible: %v", errs)
	}
	// Wherever the solver landed, the gateway holds at most 512 KiB.
	var gwBytes int64
	for tid, r := range x.Binding {
		if r != "gw" {
			continue
		}
		if task := spec.App.Task(tid); task != nil {
			gwBytes += task.MemBytes
		}
	}
	if gwBytes > 512*1024 {
		t.Fatalf("gateway overflows: %d bytes", gwBytes)
	}
}

// TestAblationA3Without2h: dropping Eq. (2h) lets the solver bind a
// BIST task to an ECU hosting no mandatory task — exactly the defect
// the constraint prevents (verified via the independent checker, which
// always enforces 2h).
func TestAblationA3Without2h(t *testing.T) {
	spec := buildSpec(t)
	e, err := Build(spec, 0, Without2h())
	if err != nil {
		t.Fatal(err)
	}
	order := e.MappingOrder()
	g := make([]float64, e.GenotypeLen())
	for i, m := range order {
		switch {
		case m.Task == "t1" && m.Resource == "ecu2":
			g[i] = 0.99 // push both functional tasks onto ecu2
		case m.Task == "t2" && m.Resource == "ecu2":
			g[i] = 0.98
		case m.Task == "bT1a": // BIST on the now-idle ecu1
			g[i] = 1.0
		case m.Task == "bD1a" && m.Resource == "ecu1":
			g[i] = 0.97
		default:
			g[i] = 0.1
		}
	}
	x, _, err := e.SolveWithGenotype(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Bound("bT1a") || x.Binding["t1"] != "ecu2" {
		t.Skip("solver found a different model; ablation scenario not reached")
	}
	// The independent checker must flag the 2h violation.
	violated := false
	for _, cerr := range x.Check() {
		if ce, ok := cerr.(*model.CheckError); ok && ce.Rule == "2h" {
			violated = true
		}
	}
	if !violated {
		t.Fatal("Without2h produced no 2h violation — ablation ineffective")
	}
	// With the constraint on, the same genotype yields a feasible model.
	e2, err := Build(spec, 0)
	if err != nil {
		t.Fatal(err)
	}
	x2, _, err := e2.SolveWithGenotype(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if errs := x2.Check(); len(errs) != 0 {
		t.Fatalf("with 2h: %v", errs)
	}
}
