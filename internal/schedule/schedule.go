// Package schedule plans the periodic application of BIST sessions
// across vehicle parking events (the paper's Section I: tests run
// during operational shut-off, and under AUTOSAR partial networking the
// shut-off window is bounded). Pattern transfers are resumable across
// events; the BIST session itself is atomic and must fit one window
// together with whatever transfer remains.
package schedule

import (
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/objective"
)

// ECUPlan is the periodic-test plan of one ECU.
type ECUPlan struct {
	ECU     model.ResourceID
	Profile int
	// TransferMS is the total pattern transfer time (0 for local
	// storage), SessionMS the atomic session runtime.
	TransferMS float64
	SessionMS  float64
	// Events is the number of consecutive parking events needed to
	// complete one full test of this ECU; 0 when infeasible.
	Events int
	// Feasible is false when the session alone exceeds the window.
	Feasible bool
}

// Plan is the fleet-wide periodic test schedule.
type Plan struct {
	BudgetMS float64
	PerECU   []ECUPlan
	// LatencyEvents is the worst-case number of parking events between
	// a fault occurring and its detection (every ECU fully tested);
	// +Inf-like semantics are expressed by Complete == false.
	LatencyEvents int
	// Complete reports whether every selected BIST session is
	// schedulable within the window.
	Complete bool
}

// PeriodicTest derives the plan for an implementation under a
// per-parking-event shut-off budget.
//
// Per event an ECU may spend up to the full budget on pattern transfer;
// the session itself must run to completion within a single event, so
// the final event needs sessionMS plus the leftover transfer to fit
// the window. Local-storage sessions complete in one event iff
// sessionMS ≤ budget.
func PeriodicTest(x *model.Implementation, budgetMS float64) Plan {
	plan := Plan{BudgetMS: budgetMS, Complete: true}
	selected := x.SelectedBIST()
	var ecus []model.ResourceID
	for r := range selected {
		ecus = append(ecus, r)
	}
	sort.Slice(ecus, func(i, j int) bool { return ecus[i] < ecus[j] })
	for _, ecu := range ecus {
		bT := selected[ecu]
		p := ECUPlan{ECU: ecu, Profile: bT.Profile, SessionMS: bT.WCETms}
		if bD := x.Spec.DataTaskFor(bT); bD != nil {
			if storage, ok := x.Binding[bD.ID]; ok && storage != ecu {
				p.TransferMS = objective.TransferTimeMS(x, bD, ecu)
			}
		}
		p.Events, p.Feasible = eventsNeeded(p.TransferMS, p.SessionMS, budgetMS)
		if !p.Feasible {
			plan.Complete = false
		} else if p.Events > plan.LatencyEvents {
			plan.LatencyEvents = p.Events
		}
		plan.PerECU = append(plan.PerECU, p)
	}
	return plan
}

// eventsNeeded computes how many windows of length budget cover
// transfer (divisible) plus session (atomic, must share the last
// window with the remaining transfer).
func eventsNeeded(transferMS, sessionMS, budgetMS float64) (int, bool) {
	if budgetMS <= 0 || sessionMS > budgetMS || math.IsInf(transferMS, 1) {
		return 0, false
	}
	remaining := transferMS
	events := 0
	for {
		events++
		if remaining <= budgetMS-sessionMS {
			return events, true
		}
		remaining -= budgetMS
		if events > 1<<20 {
			return 0, false // pathological budget/transfer ratio
		}
	}
}

// Latency summarizes fault-detection latency in parking events for one
// ECU under continuously repeating test cycles of length Events: a
// fault is caught by the first test cycle that *starts* after the
// fault occurs (an in-flight cycle's patterns may already have passed
// the faulty logic), so with cycles back to back a fault at offset o
// within a cycle is detected 2·Events − 1 − o events later.
type Latency struct {
	ECU model.ResourceID
	// WorstEvents is the maximum detection latency (fault right at a
	// cycle start: the running cycle plus the full next one).
	WorstEvents int
	// ExpectedEvents is the mean over a uniformly random fault offset.
	ExpectedEvents float64
}

// DetectionLatencies derives per-ECU fault-detection latencies from a
// periodic test plan. Infeasible ECUs are omitted — they are never
// tested within this budget.
func DetectionLatencies(plan Plan) []Latency {
	var out []Latency
	for _, p := range plan.PerECU {
		if !p.Feasible || p.Events < 1 {
			continue
		}
		l := p.Events
		sum := 0
		for o := 0; o < l; o++ {
			sum += 2*l - 1 - o
		}
		out = append(out, Latency{
			ECU:            p.ECU,
			WorstEvents:    2*l - 1,
			ExpectedEvents: float64(sum) / float64(l),
		})
	}
	return out
}

// MinimumBudgetMS returns the smallest per-event budget under which the
// implementation completes within the given number of events, found by
// bisection over the plan (monotone in the budget). Returns +Inf when
// even an unbounded window cannot help (infinite transfer time).
func MinimumBudgetMS(x *model.Implementation, maxEvents int) float64 {
	if maxEvents < 1 {
		maxEvents = 1
	}
	feasibleAt := func(b float64) bool {
		p := PeriodicTest(x, b)
		return p.Complete && p.LatencyEvents <= maxEvents
	}
	hi := 1.0
	for ; hi < 1e12; hi *= 2 {
		if feasibleAt(hi) {
			break
		}
	}
	if hi >= 1e12 {
		return math.Inf(1)
	}
	lo := 0.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		if feasibleAt(mid) {
			hi = mid
		} else {
			lo = mid
		}
	}
	return hi
}
