package schedule

import (
	"math"
	"testing"

	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/model"
)

func fixture(t *testing.T, storage int) *model.Implementation {
	t.Helper()
	spec, err := casestudy.Small(3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	dec.StorageChoice = storage
	g := make([]float64, dec.GenotypeLen())
	for i := range g {
		g[i] = 0.9
	}
	x, err := dec.Decode(g)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestEventsNeeded(t *testing.T) {
	cases := []struct {
		transfer, session, budget float64
		events                    int
		ok                        bool
	}{
		{0, 5, 10, 1, true},            // local, fits
		{0, 15, 10, 0, false},          // session exceeds window
		{4, 5, 10, 1, true},            // transfer+session fit one event
		{6, 5, 10, 2, true},            // 6 > 10-5: spill into 2nd event
		{25, 5, 10, 4, true},           // 10+10+(5≤10-5): 3 transfers... checked below
		{math.Inf(1), 5, 10, 0, false}, // no bandwidth
		{100, 5, 0, 0, false},          // no window
	}
	for i, c := range cases {
		events, ok := eventsNeeded(c.transfer, c.session, c.budget)
		if ok != c.ok {
			t.Errorf("case %d: ok = %v", i, ok)
			continue
		}
		if !ok {
			continue
		}
		if i == 4 {
			// transfer 25 over windows of 10 with 5 session: events 1..3
			// remove 10 each until remaining ≤ 5; 25→15→5 ≤ 5 at event 3.
			if events != 3 {
				t.Errorf("case 4: events = %d, want 3", events)
			}
			continue
		}
		if events != c.events {
			t.Errorf("case %d: events = %d, want %d", i, events, c.events)
		}
	}
}

func TestPeriodicTestLocalIsOneEvent(t *testing.T) {
	x := fixture(t, 1)
	// Table I's longest session is 965 ms; a 2 s window fits every one.
	plan := PeriodicTest(x, 2000)
	if !plan.Complete {
		t.Fatalf("plan incomplete: %+v", plan)
	}
	if plan.LatencyEvents != 1 {
		t.Fatalf("latency = %d events", plan.LatencyEvents)
	}
	for _, p := range plan.PerECU {
		if p.TransferMS != 0 || p.Events != 1 || !p.Feasible {
			t.Fatalf("local plan = %+v", p)
		}
	}
}

func TestPeriodicTestGatewayNeedsManyEvents(t *testing.T) {
	x := fixture(t, -1)
	plan := PeriodicTest(x, 2000)
	if len(plan.PerECU) == 0 {
		t.Fatal("no sessions planned")
	}
	anyMulti := false
	for _, p := range plan.PerECU {
		if math.IsInf(p.TransferMS, 1) {
			continue
		}
		if p.Feasible && p.Events > 1 {
			anyMulti = true
		}
	}
	if plan.Complete && plan.LatencyEvents <= 1 {
		t.Fatalf("gateway transfer completed in one 2 s window: %+v", plan)
	}
	if !anyMulti && plan.Complete {
		t.Fatal("no multi-event transfer despite gateway storage")
	}
}

func TestPeriodicTestTinyWindowInfeasible(t *testing.T) {
	x := fixture(t, 1)
	// 1 ms window is below several Table I session runtimes.
	plan := PeriodicTest(x, 1)
	if plan.Complete {
		t.Fatalf("1 ms window reported complete: %+v", plan)
	}
}

func TestMinimumBudgetMonotone(t *testing.T) {
	x := fixture(t, -1)
	b1 := MinimumBudgetMS(x, 1)
	b5 := MinimumBudgetMS(x, 5)
	if math.IsInf(b1, 1) || math.IsInf(b5, 1) {
		t.Skip("infinite transfer on some ECU")
	}
	if b5 > b1 {
		t.Fatalf("more events must not need a larger window: %v vs %v", b5, b1)
	}
	// The found budget must actually work, and a slightly smaller one
	// must not.
	if p := PeriodicTest(x, b1*1.001); !p.Complete || p.LatencyEvents > 1 {
		t.Fatalf("budget %v insufficient: %+v", b1, p)
	}
	if p := PeriodicTest(x, b1*0.9); p.Complete && p.LatencyEvents <= 1 {
		t.Fatalf("budget %v unexpectedly sufficient", b1*0.9)
	}
}

func TestPeriodicTestNoBIST(t *testing.T) {
	spec, err := casestudy.Small(2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	x, err := dec.Decode(make([]float64, dec.GenotypeLen()))
	if err != nil {
		t.Fatal(err)
	}
	plan := PeriodicTest(x, 1000)
	if !plan.Complete || plan.LatencyEvents != 0 || len(plan.PerECU) != 0 {
		t.Fatalf("empty plan = %+v", plan)
	}
}

func TestDetectionLatencies(t *testing.T) {
	plan := Plan{PerECU: []ECUPlan{
		{ECU: "a", Events: 1, Feasible: true},
		{ECU: "b", Events: 4, Feasible: true},
		{ECU: "c", Feasible: false},
	}}
	lats := DetectionLatencies(plan)
	if len(lats) != 2 {
		t.Fatalf("latencies = %d", len(lats))
	}
	// L=1: fault at the only offset 0 -> detected 1 event later.
	if lats[0].WorstEvents != 1 || lats[0].ExpectedEvents != 1 {
		t.Fatalf("L=1 latency = %+v", lats[0])
	}
	// L=4: worst 7; expected = mean(7,6,5,4) = 5.5.
	if lats[1].WorstEvents != 7 || lats[1].ExpectedEvents != 5.5 {
		t.Fatalf("L=4 latency = %+v", lats[1])
	}
}

// TestLatencyStorageTradeoff: local storage (1-event cycles) detects
// faults within at most one drive cycle; gateway storage multiplies the
// latency by the transfer's event count.
func TestLatencyStorageTradeoff(t *testing.T) {
	local := DetectionLatencies(PeriodicTest(fixture(t, 1), 2000))
	gateway := DetectionLatencies(PeriodicTest(fixture(t, -1), 2000))
	if len(local) == 0 || len(gateway) == 0 {
		t.Skip("no latencies")
	}
	worst := func(ls []Latency) int {
		w := 0
		for _, l := range ls {
			if l.WorstEvents > w {
				w = l.WorstEvents
			}
		}
		return w
	}
	if worst(local) != 1 {
		t.Fatalf("local worst latency = %d events", worst(local))
	}
	if worst(gateway) <= worst(local) {
		t.Fatalf("gateway latency %d not above local %d", worst(gateway), worst(local))
	}
}
