// Package flexray models the static segment of a FlexRay bus as an
// alternative test access mechanism: the paper's mirroring concept
// ("extensible to other automotive field buses", Section III-B) maps to
// TDMA naturally — a test-data frame reuses exactly the static slots
// owned by the ECU's silent functional messages, so non-intrusiveness
// holds by construction and the Eq. (1) transfer time becomes exact.
package flexray

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Config describes the static segment of a FlexRay cycle.
type Config struct {
	CycleMS     float64 // communication cycle duration (typ. 5 ms)
	StaticSlots int     // number of static slots per cycle
	SlotPayload int     // payload bytes per static slot (typ. up to 254)
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.CycleMS <= 0 {
		return fmt.Errorf("flexray: non-positive cycle duration")
	}
	if c.StaticSlots < 1 {
		return fmt.Errorf("flexray: need at least one static slot")
	}
	if c.SlotPayload < 1 {
		return fmt.Errorf("flexray: need positive slot payload")
	}
	return nil
}

// Assignment gives one message a static slot in a subset of cycles:
// the message transmits in slot Slot whenever cycle mod Repetition ==
// BaseCycle (the FlexRay cycle multiplexing scheme).
type Assignment struct {
	Message    string
	Slot       int // 1-based static slot number
	BaseCycle  int // 0 ≤ BaseCycle < Repetition
	Repetition int // power-of-two in real FlexRay; any ≥ 1 here
}

// fires reports whether the assignment transmits in the given cycle.
func (a Assignment) fires(cycle int) bool {
	return cycle%a.Repetition == a.BaseCycle
}

// BandwidthBytesPerMS returns the long-run payload bandwidth of the
// assignment.
func (a Assignment) BandwidthBytesPerMS(cfg Config) float64 {
	return float64(cfg.SlotPayload) / (cfg.CycleMS * float64(a.Repetition))
}

// Schedule is a conflict-free static-segment schedule.
type Schedule struct {
	Cfg Config

	assignments []Assignment
	byMessage   map[string][]Assignment
}

// NewSchedule validates ranges and slot conflicts: two assignments
// conflict if they share a slot and their cycle sets intersect
// (BaseCycle congruent modulo gcd of the repetitions).
func NewSchedule(cfg Config, assignments []Assignment) (*Schedule, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Schedule{Cfg: cfg, byMessage: make(map[string][]Assignment)}
	for _, a := range assignments {
		if a.Message == "" {
			return nil, fmt.Errorf("flexray: assignment without message name")
		}
		if a.Slot < 1 || a.Slot > cfg.StaticSlots {
			return nil, fmt.Errorf("flexray: message %q: slot %d outside 1..%d", a.Message, a.Slot, cfg.StaticSlots)
		}
		if a.Repetition < 1 {
			return nil, fmt.Errorf("flexray: message %q: repetition %d < 1", a.Message, a.Repetition)
		}
		if a.BaseCycle < 0 || a.BaseCycle >= a.Repetition {
			return nil, fmt.Errorf("flexray: message %q: base cycle %d outside 0..%d", a.Message, a.BaseCycle, a.Repetition-1)
		}
	}
	for i := range assignments {
		for j := i + 1; j < len(assignments); j++ {
			if conflict(assignments[i], assignments[j]) {
				return nil, fmt.Errorf("flexray: %q and %q collide in slot %d",
					assignments[i].Message, assignments[j].Message, assignments[i].Slot)
			}
		}
	}
	s.assignments = append([]Assignment(nil), assignments...)
	for _, a := range s.assignments {
		s.byMessage[a.Message] = append(s.byMessage[a.Message], a)
	}
	return s, nil
}

// conflict reports whether two assignments ever share a (slot, cycle).
func conflict(a, b Assignment) bool {
	if a.Slot != b.Slot {
		return false
	}
	g := gcd(a.Repetition, b.Repetition)
	return a.BaseCycle%g == b.BaseCycle%g
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// Assignments returns the schedule's assignments (copy).
func (s *Schedule) Assignments() []Assignment {
	return append([]Assignment(nil), s.assignments...)
}

// Utilization returns the fraction of static slot instances in use
// over the hyperperiod.
func (s *Schedule) Utilization() float64 {
	used := 0.0
	for _, a := range s.assignments {
		used += 1 / float64(a.Repetition)
	}
	return used / float64(s.Cfg.StaticSlots)
}

// BandwidthBytesPerMS sums the bandwidth of the named messages.
func (s *Schedule) BandwidthBytesPerMS(messages []string) float64 {
	bw := 0.0
	for _, m := range messages {
		for _, a := range s.byMessage[m] {
			bw += a.BandwidthBytesPerMS(s.Cfg)
		}
	}
	return bw
}

// TransferTimeMS is Eq. (1) on FlexRay: time to ship dataBytes over the
// slots owned by the given (silent) functional messages. +Inf without
// owned slots.
func (s *Schedule) TransferTimeMS(dataBytes int64, messages []string) float64 {
	bw := s.BandwidthBytesPerMS(messages)
	if bw <= 0 {
		return math.Inf(1)
	}
	return float64(dataBytes) / bw
}

// SimulateTransfer walks cycles and slots explicitly and returns the
// completion time of shipping dataBytes over the owned slots, plus the
// number of slot instances used. It validates the fluid TransferTimeMS
// model to within one repetition period.
func (s *Schedule) SimulateTransfer(dataBytes int64, messages []string) (float64, int) {
	var own []Assignment
	for _, m := range messages {
		own = append(own, s.byMessage[m]...)
	}
	if len(own) == 0 {
		return math.Inf(1), 0
	}
	sort.Slice(own, func(i, j int) bool { return own[i].Slot < own[j].Slot })
	slotDur := s.Cfg.CycleMS / float64(s.Cfg.StaticSlots)
	remaining := dataBytes
	used := 0
	for cycle := 0; ; cycle++ {
		base := float64(cycle) * s.Cfg.CycleMS
		for _, a := range own {
			if !a.fires(cycle) {
				continue
			}
			remaining -= int64(s.Cfg.SlotPayload)
			used++
			if remaining <= 0 {
				return base + float64(a.Slot)*slotDur, used
			}
		}
	}
}

// Mirror returns the test-data twins of the named messages: identical
// slot/cycle assignments under suffixed names — the TDMA analogue of
// can.Mirror.
func (s *Schedule) Mirror(messages []string, suffix string) []Assignment {
	var out []Assignment
	for _, m := range messages {
		for _, a := range s.byMessage[m] {
			ma := a
			ma.Message = a.Message + suffix
			out = append(out, ma)
		}
	}
	return out
}

// VerifyNonIntrusive checks that replacing the named messages by their
// mirrors yields a valid schedule in which every third-party assignment
// is untouched. On TDMA this holds by construction; the check guards
// the construction.
func (s *Schedule) VerifyNonIntrusive(messages []string, suffix string) error {
	own := make(map[string]bool, len(messages))
	for _, m := range messages {
		own[m] = true
	}
	var rest []Assignment
	for _, a := range s.assignments {
		if !own[a.Message] {
			rest = append(rest, a)
		}
	}
	mirrored := s.Mirror(messages, suffix)
	swapped, err := NewSchedule(s.Cfg, append(rest, mirrored...))
	if err != nil {
		return fmt.Errorf("flexray: mirrored schedule invalid: %w", err)
	}
	// Third-party assignments must be bit-identical.
	for _, a := range rest {
		found := false
		for _, b := range swapped.byMessage[a.Message] {
			if a == b {
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("flexray: third-party assignment %+v perturbed", a)
		}
	}
	// Every mirror must occupy exactly its original's slots.
	for _, m := range messages {
		orig := s.byMessage[m]
		twin := swapped.byMessage[m+suffix]
		if len(orig) != len(twin) {
			return fmt.Errorf("flexray: mirror of %q lost assignments", m)
		}
		for i := range orig {
			if orig[i].Slot != twin[i].Slot || orig[i].BaseCycle != twin[i].BaseCycle || orig[i].Repetition != twin[i].Repetition {
				return fmt.Errorf("flexray: mirror of %q moved from %+v to %+v", m, orig[i], twin[i])
			}
		}
		if !strings.HasSuffix(twin[0].Message, suffix) {
			return fmt.Errorf("flexray: mirror of %q kept its identity", m)
		}
	}
	return nil
}
