package flexray

import (
	"math"
	"testing"
	"testing/quick"
)

var cfg = Config{CycleMS: 5, StaticSlots: 10, SlotPayload: 16}

func mustSchedule(t *testing.T, as []Assignment) *Schedule {
	t.Helper()
	s, err := NewSchedule(cfg, as)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{CycleMS: 0, StaticSlots: 1, SlotPayload: 1},
		{CycleMS: 5, StaticSlots: 0, SlotPayload: 1},
		{CycleMS: 5, StaticSlots: 1, SlotPayload: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNewScheduleValidation(t *testing.T) {
	cases := [][]Assignment{
		{{Message: "", Slot: 1, Repetition: 1}},
		{{Message: "a", Slot: 0, Repetition: 1}},
		{{Message: "a", Slot: 11, Repetition: 1}},
		{{Message: "a", Slot: 1, Repetition: 0}},
		{{Message: "a", Slot: 1, BaseCycle: 2, Repetition: 2}},
		// Direct collision: same slot, every cycle.
		{{Message: "a", Slot: 1, Repetition: 1}, {Message: "b", Slot: 1, Repetition: 1}},
		// Multiplexed collision: rep 2/4 with congruent bases.
		{{Message: "a", Slot: 2, BaseCycle: 1, Repetition: 2}, {Message: "b", Slot: 2, BaseCycle: 3, Repetition: 4}},
	}
	for i, as := range cases {
		if _, err := NewSchedule(cfg, as); err == nil {
			t.Errorf("case %d accepted: %+v", i, as)
		}
	}
	// Disjoint multiplexing on the same slot is legal.
	ok := []Assignment{
		{Message: "a", Slot: 2, BaseCycle: 0, Repetition: 2},
		{Message: "b", Slot: 2, BaseCycle: 1, Repetition: 2},
	}
	if _, err := NewSchedule(cfg, ok); err != nil {
		t.Fatalf("disjoint multiplexing rejected: %v", err)
	}
}

func TestUtilizationAndBandwidth(t *testing.T) {
	s := mustSchedule(t, []Assignment{
		{Message: "a", Slot: 1, Repetition: 1},               // every cycle
		{Message: "b", Slot: 2, BaseCycle: 0, Repetition: 2}, // every other
	})
	// (1 + 0.5) slot instances of 10 per cycle.
	if u := s.Utilization(); math.Abs(u-0.15) > 1e-12 {
		t.Fatalf("utilization = %v", u)
	}
	// a: 16 B / 5 ms; b: 16 B / 10 ms.
	bw := s.BandwidthBytesPerMS([]string{"a", "b"})
	want := 16.0/5 + 16.0/10
	if math.Abs(bw-want) > 1e-12 {
		t.Fatalf("bandwidth = %v, want %v", bw, want)
	}
}

func TestTransferTimeFluid(t *testing.T) {
	s := mustSchedule(t, []Assignment{{Message: "a", Slot: 1, Repetition: 1}})
	// 3200 bytes over 3.2 B/ms = 1000 ms.
	if q := s.TransferTimeMS(3200, []string{"a"}); math.Abs(q-1000) > 1e-9 {
		t.Fatalf("q = %v", q)
	}
	if !math.IsInf(s.TransferTimeMS(100, []string{"missing"}), 1) {
		t.Fatal("unknown message must give +Inf")
	}
}

func TestSimulateTransferMatchesFluid(t *testing.T) {
	s := mustSchedule(t, []Assignment{
		{Message: "a", Slot: 3, Repetition: 1},
		{Message: "b", Slot: 7, BaseCycle: 1, Repetition: 2},
	})
	f := func(kb uint8) bool {
		data := int64(kb)*64 + 1
		fluid := s.TransferTimeMS(data, []string{"a", "b"})
		sim, used := s.SimulateTransfer(data, []string{"a", "b"})
		if used <= 0 {
			return false
		}
		// Slot quantization: within one repetition period plus one cycle.
		return sim > 0 && math.Abs(sim-fluid) <= 2*cfg.CycleMS*2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
	if q, used := s.SimulateTransfer(100, nil); !math.IsInf(q, 1) || used != 0 {
		t.Fatal("transfer without slots must not complete")
	}
}

func TestMirrorKeepsSlots(t *testing.T) {
	s := mustSchedule(t, []Assignment{
		{Message: "a", Slot: 1, Repetition: 1},
		{Message: "b", Slot: 2, BaseCycle: 0, Repetition: 2},
	})
	m := s.Mirror([]string{"a", "b"}, "'")
	if len(m) != 2 {
		t.Fatalf("mirrors = %d", len(m))
	}
	for _, a := range m {
		if a.Message != "a'" && a.Message != "b'" {
			t.Fatalf("mirror name %q", a.Message)
		}
	}
}

func TestVerifyNonIntrusive(t *testing.T) {
	s := mustSchedule(t, []Assignment{
		{Message: "own1", Slot: 1, Repetition: 1},
		{Message: "own2", Slot: 2, BaseCycle: 0, Repetition: 2},
		{Message: "oth1", Slot: 2, BaseCycle: 1, Repetition: 2},
		{Message: "oth2", Slot: 5, Repetition: 1},
	})
	if err := s.VerifyNonIntrusive([]string{"own1", "own2"}, "'"); err != nil {
		t.Fatal(err)
	}
}

// TestFlexRayVsCANDeterminism: the FlexRay transfer-time model is exact
// (simulation within slot quantization), unlike CAN where Eq. (1) is a
// fluid approximation of arbitration — the property that makes TDMA
// buses attractive for predictable shut-off times.
func TestFlexRayTransferUpperBound(t *testing.T) {
	s := mustSchedule(t, []Assignment{{Message: "a", Slot: 1, Repetition: 1}})
	data := int64(10_000)
	fluid := s.TransferTimeMS(data, []string{"a"})
	sim, _ := s.SimulateTransfer(data, []string{"a"})
	if sim > fluid+cfg.CycleMS {
		t.Fatalf("simulated %v exceeds fluid %v by more than one cycle", sim, fluid)
	}
}
