package objective

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/model"
)

// A disabled robustness config must leave Evaluate untouched: same
// fields, same bits, three-element minimized form.
func TestEvaluateRobustDisabledBitIdentical(t *testing.T) {
	spec := buildSpec(t)
	for _, dataOn := range []string{"ecu1", "gw"} {
		x := bindAll(spec, model.ResourceID(dataOn), true)
		base := Evaluate(x)
		robust := EvaluateRobust(x, RobustConfig{})
		if !reflect.DeepEqual(base, robust) {
			t.Fatalf("dataOn=%s: disabled robust config changed the vector:\n%+v\n%+v", dataOn, base, robust)
		}
		if got := robust.Minimized(); len(got) != 3 {
			t.Fatalf("disabled robust vector minimizes to %d objectives", len(got))
		}
	}
}

// Gateway-stored pattern data rides the error-prone bus; local storage
// does not. The robustness score must separate the two mappings.
func TestRobustScoreGatewayPenalty(t *testing.T) {
	spec := buildSpec(t)
	cfg := RobustConfig{ErrorRate: 1e-4}
	local := EvaluateRobust(bindAll(spec, "ecu1", true), cfg)
	gw := EvaluateRobust(bindAll(spec, "gw", true), cfg)
	if !local.RobustOn || !gw.RobustOn {
		t.Fatal("robust objective not enabled")
	}
	if len(local.Minimized()) != 4 {
		t.Fatalf("robust vector minimizes to %d objectives, want 4", len(local.Minimized()))
	}
	// Local storage: no transfer, score is the session runtime alone.
	if local.RobustMS != 10 || local.RobustMissProb != 0 {
		t.Fatalf("local mapping scored %v/%v, want 10/0", local.RobustMS, local.RobustMissProb)
	}
	if gw.RobustMS <= local.RobustMS {
		t.Fatalf("gateway mapping (%v) not penalized over local (%v)", gw.RobustMS, local.RobustMS)
	}
	// The degraded transfer must take at least the ideal Eq. (1) time.
	if ideal := gw.ShutOffMS; gw.RobustMS < ideal {
		t.Fatalf("robust score %v below ideal shut-off %v", gw.RobustMS, ideal)
	}
}

// The robustness score grows monotonically with the error rate.
func TestRobustScoreMonotoneInErrorRate(t *testing.T) {
	spec := buildSpec(t)
	prev, prevMiss := 0.0, 0.0
	for _, ber := range []float64{1e-7, 1e-6, 1e-5, 1e-4, 1e-3} {
		v := EvaluateRobust(bindAll(spec, "gw", true), RobustConfig{ErrorRate: ber})
		if v.RobustMS < prev || v.RobustMissProb < prevMiss {
			t.Fatalf("score shrank at BER %g: %v/%v < %v/%v", ber, v.RobustMS, v.RobustMissProb, prev, prevMiss)
		}
		prev, prevMiss = v.RobustMS, v.RobustMissProb
	}
	// 1 MiB over ≤0.8 B/ms effective bandwidth cannot meet a 20 s
	// deadline: the miss probability must saturate.
	if prevMiss < 0.99 {
		t.Fatalf("miss probability %v for a hopeless transfer", prevMiss)
	}
}

// Deterministic: repeated evaluation yields identical bits (the score
// is closed-form; this guards against map-iteration leaking in).
func TestRobustScoreDeterministic(t *testing.T) {
	spec := buildSpec(t)
	cfg := RobustConfig{ErrorRate: 1e-5}
	a := EvaluateRobust(bindAll(spec, "gw", true), cfg)
	for i := 0; i < 50; i++ {
		b := EvaluateRobust(bindAll(spec, "gw", true), cfg)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("iteration %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

// The penalty corner must stay finite and weakly dominated-by-feasible.
func TestWorstCaseRobustFinite(t *testing.T) {
	spec := buildSpec(t)
	w := WorstCaseRobust(spec, RobustConfig{ErrorRate: 1e-4})
	if !w.RobustOn {
		t.Fatal("worst case not robust-enabled")
	}
	for i, v := range w.Minimized() {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("penalty objective %d is %v", i, v)
		}
	}
	feasible := EvaluateRobust(bindAll(spec, "ecu1", true), RobustConfig{ErrorRate: 1e-4})
	if feasible.RobustMS > w.RobustMS {
		t.Fatalf("feasible robust score %v exceeds penalty %v", feasible.RobustMS, w.RobustMS)
	}
	if off := WorstCaseRobust(spec, RobustConfig{}); off.RobustOn || len(off.Minimized()) != 3 {
		t.Fatal("disabled config produced a robust worst case")
	}
}
