package objective

import (
	"math"

	"repro/internal/can"
	"repro/internal/model"
)

// RobustConfig parameterizes the optional robustness objective: the
// expected BIST transfer completion under a CAN bit-error rate plus the
// probability of missing the diagnosis deadline. Zero values select the
// defaults; a zero ErrorRate disables the objective entirely, keeping
// evaluation bit-identical to the three-objective path.
type RobustConfig struct {
	// ErrorRate is the bit-error rate of the transfer bus. 0 disables the
	// robustness objective.
	ErrorRate float64
	// DeadlineMS is the diagnosis session deadline the miss probability
	// is measured against (default 20000 — the paper's 20 s shut-off
	// threshold).
	DeadlineMS float64
	// BitRate of the transfer bus in bit/s (default 500000).
	BitRate float64
	// ErrorFrameBits per error (default can.MaxErrorFrameBits).
	ErrorFrameBits int
}

// Enabled reports whether the robustness objective is active.
func (c RobustConfig) Enabled() bool { return c.ErrorRate > 0 }

func (c RobustConfig) withDefaults() RobustConfig {
	if c.DeadlineMS <= 0 {
		c.DeadlineMS = 20_000
	}
	if c.BitRate <= 0 {
		c.BitRate = 500_000
	}
	return c
}

// errorModel returns the can.ErrorModel view of the config.
func (c RobustConfig) errorModel() can.ErrorModel {
	return can.ErrorModel{BitErrorRate: c.ErrorRate, ErrorFrameBits: c.ErrorFrameBits}
}

// EvaluateRobust computes the three base objectives plus, when the
// config enables it, the robustness score. With a disabled config the
// result is exactly Evaluate(x) — same fields, same bits — so fronts
// explored at error rate 0 are identical to the three-objective fronts.
func EvaluateRobust(x *model.Implementation, cfg RobustConfig) Vector {
	v := Evaluate(x)
	if !cfg.Enabled() {
		return v
	}
	v.RobustOn = true
	v.RobustMS, v.RobustMissProb = robustScore(x, cfg.withDefaults())
	return v
}

// robustScore evaluates the robustness objective analytically — no
// Monte Carlo in the MOEA inner loop, so the score is smooth in the
// decision variables and trivially deterministic at any worker count.
//
// Per tested ECU r with remotely stored pattern data, the mirrored
// slots of each functional message c deliver s(c) bytes per period p(c)
// with probability 1−P_err(c); the transfer behaves as a sum of
// independent slot deliveries with
//
//	mean rate  μ̇(r) = Σ s(c)/p(c) · (1−P_err(c))          (Eq. 1, degraded)
//	var  rate  σ̇²(r) = Σ s(c)² · P_err(c)(1−P_err(c))/p(c)
//
// Expected completion is s(b^D)/μ̇; the deadline-miss probability is the
// normal-approximation tail P[delivered(D) < s(b^D)] at the deadline
// window D remaining after the session runtime. The scalar objective is
//
//	score = l(b^T) + E[transfer] + P_miss · DeadlineMS
//
// so a design that rarely misses pays its expected time, while one that
// misses often is pushed a full deadline's worth away — comparable
// units, no lexicographic tricks.
func robustScore(x *model.Implementation, cfg RobustConfig) (scoreMS, missProb float64) {
	idx := indexOf(x.Spec)
	m := cfg.errorModel()
	format := can.Standard
	bwEff := make(map[model.ResourceID]float64)
	varRate := make(map[model.ResourceID]float64)
	for _, fm := range idx.funcMsgs {
		r, ok := x.Binding[fm.src]
		if !ok {
			continue
		}
		payload := int(fm.size)
		if payload > can.MaxPayload {
			payload = can.MaxPayload
		}
		p := m.FrameErrorProb(can.FrameBits(payload, format))
		bwEff[r] += fm.bw * (1 - p)
		varRate[r] += float64(fm.size) * float64(fm.size) * p * (1 - p) / fm.period
	}
	sc := getScratch()
	sel := fillSelected(x, sc)
	worst, worstMiss := 0.0, 0.0
	for _, s := range sel {
		t := s.t.WCETms
		miss := 0.0
		if bD := x.Spec.DataTaskFor(s.t); bD != nil {
			if dataRes, ok := x.Binding[bD.ID]; ok && dataRes != s.r {
				if b := bwEff[s.r]; b > 0 {
					t += float64(bD.MemBytes) / b
					miss = transferMissProb(float64(bD.MemBytes), b, varRate[s.r], cfg.DeadlineMS-s.t.WCETms)
				} else {
					t = math.Inf(1)
					miss = 1
				}
			}
			// Locally stored data needs no bus transfer: immune to errors.
		}
		score := t + miss*cfg.DeadlineMS
		if score > worst {
			worst = score
		}
		if miss > worstMiss {
			worstMiss = miss
		}
	}
	putScratch(sc)
	return worst, worstMiss
}

// transferMissProb is the normal-approximation probability that fewer
// than mem bytes arrive within the window, given the effective delivery
// rate (bytes/ms) and the delivery variance rate (bytes²/ms).
func transferMissProb(mem, rateEff, varRate, windowMS float64) float64 {
	if windowMS <= 0 {
		return 1
	}
	mu := rateEff * windowMS
	sigma2 := varRate * windowMS
	if sigma2 <= 0 {
		if mu >= mem {
			return 0
		}
		return 1
	}
	return 0.5 * math.Erfc((mu-mem)/math.Sqrt(2*sigma2))
}

// WorstCaseRobust extends the WorstCase penalty vector with a finite
// robustness corner: the worst finite transfer stretched by the largest
// per-frame retransmission factor, plus one full deadline (the miss
// probability at its ceiling of 1). Every feasible implementation with
// a finite degraded transfer weakly dominates it, and no ±Inf leaks
// into crowding or indicator normalization.
func WorstCaseRobust(spec *model.Specification, cfg RobustConfig) Vector {
	v := WorstCase(spec)
	if !cfg.Enabled() {
		return v
	}
	cfg = cfg.withDefaults()
	v.RobustOn = true
	p := cfg.errorModel().FrameErrorProb(can.FrameBits(can.MaxPayload, can.Standard))
	den := 1 - p
	if den < 1e-12 {
		den = 1e-12
	}
	v.RobustMS = v.ShutOffMS/den + cfg.DeadlineMS
	v.RobustMissProb = 1
	return v
}
