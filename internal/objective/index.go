package objective

import (
	"sort"
	"sync"

	"repro/internal/model"
)

// specIndex is the static evaluation index of one specification: the
// parts of every objective that do not depend on the implementation,
// computed once and shared by all evaluations (and all MOEA workers).
// It removes the per-evaluation rescans that dominated the old
// objective code — the O(resources × bindings) hostsBoundTask walk and
// the O(ECUs × messages) functional-bandwidth scan.
type specIndex struct {
	// funcMsgs lists the bandwidth-carrying functional messages in the
	// deterministic application order (sorted by message ID) with the
	// quotient s(c)/p(c) of Eq. (1) precomputed. A single pass over this
	// slice yields every resource's mirrored bandwidth; each resource
	// accumulates exactly the subsequence it would have accumulated in
	// the old filtered rescan, in the same order, so the floating-point
	// sums are bit-identical.
	funcMsgs []funcMsg
	// bistData snapshots the BIST data tasks, sorted by task ID.
	bistData []*model.Task
	// isECU marks the resources of ECU kind, replacing a Resource()
	// lookup plus kind check per allocated resource.
	isECU map[model.ResourceID]bool
}

type funcMsg struct {
	src    model.TaskID
	bw     float64 // SizeBytes / PeriodMS, bytes per millisecond
	size   int64   // SizeBytes — the robustness objective derives per-slot error probabilities
	period float64 // PeriodMS
}

// indexCache maps *model.Specification → *specIndex. Specifications are
// immutable once evaluation starts (everywhere in this repository they
// are built up front and then explored), so the index is valid for the
// lifetime of the specification pointer.
var indexCache sync.Map

func indexOf(s *model.Specification) *specIndex {
	if v, ok := indexCache.Load(s); ok {
		return v.(*specIndex)
	}
	idx := &specIndex{isECU: make(map[model.ResourceID]bool)}
	for _, m := range s.App.Messages() {
		src := s.App.Task(m.Src)
		if src == nil || src.Kind != model.KindFunctional {
			continue
		}
		if m.PeriodMS <= 0 {
			continue // contributes no bandwidth
		}
		idx.funcMsgs = append(idx.funcMsgs, funcMsg{
			src:    m.Src,
			bw:     float64(m.SizeBytes) / m.PeriodMS,
			size:   m.SizeBytes,
			period: m.PeriodMS,
		})
	}
	idx.bistData = s.App.TasksOfKind(model.KindBISTData)
	for _, r := range s.Arch.Resources() {
		if r.Kind == model.KindECU {
			idx.isECU[r.ID] = true
		}
	}
	v, _ := indexCache.LoadOrStore(s, idx)
	return v.(*specIndex)
}

// bistSel is one selected BIST test task with the ECU it tests.
type bistSel struct {
	r model.ResourceID
	t *model.Task
}

// evalScratch holds the per-evaluation working memory, pooled so that
// concurrent evaluations neither share state nor reallocate it.
type evalScratch struct {
	bw       map[model.ResourceID]float64 // mirrored bandwidth per resource
	used     map[model.ResourceID]bool    // resources hosting ≥1 bound task
	gwShared map[int]int64                // gateway-stored bytes per profile
	alloc    []model.ResourceID
	sel      []bistSel
	profiles []int
}

var scratchPool = sync.Pool{New: func() any {
	return &evalScratch{
		bw:       make(map[model.ResourceID]float64),
		used:     make(map[model.ResourceID]bool),
		gwShared: make(map[int]int64),
	}
}}

func getScratch() *evalScratch { return scratchPool.Get().(*evalScratch) }

func putScratch(sc *evalScratch) {
	clear(sc.bw)
	clear(sc.used)
	clear(sc.gwShared)
	sc.alloc = sc.alloc[:0]
	sc.sel = sc.sel[:0]
	sc.profiles = sc.profiles[:0]
	scratchPool.Put(sc)
}

// fillBandwidths computes every resource's mirrored functional
// bandwidth in one pass over the index (see specIndex.funcMsgs for why
// the sums are bit-identical to per-resource rescans).
func fillBandwidths(x *model.Implementation, idx *specIndex, bw map[model.ResourceID]float64) {
	for _, fm := range idx.funcMsgs {
		if r, ok := x.Binding[fm.src]; ok {
			bw[r] += fm.bw
		}
	}
}

// fillSelected collects the selected BIST test tasks sorted by tested
// ECU — the deterministic iteration order the old SelectedBIST-plus-
// sorted-keys code established — without allocating a fresh map.
func fillSelected(x *model.Implementation, sc *evalScratch) []bistSel {
	for tid, r := range x.Binding {
		t := x.Spec.App.Task(tid)
		if t != nil && t.Kind == model.KindBISTTest {
			sc.sel = append(sc.sel, bistSel{r: r, t: t})
		}
	}
	sort.Slice(sc.sel, func(i, j int) bool {
		if sc.sel[i].r != sc.sel[j].r {
			return sc.sel[i].r < sc.sel[j].r
		}
		return sc.sel[i].t.ID < sc.sel[j].t.ID
	})
	// The encoding selects at most one test task per ECU; if an
	// unconstrained implementation carries more, keep the last per ECU
	// (deterministically, unlike the map-based code it replaces).
	out := sc.sel[:0]
	for i, s := range sc.sel {
		if i+1 < len(sc.sel) && sc.sel[i+1].r == s.r {
			continue
		}
		out = append(out, s)
	}
	sc.sel = out
	return out
}

// fillAllocated collects the allocated resources sorted by ID into the
// scratch slice — AllocatedResources without the per-call allocation.
func fillAllocated(x *model.Implementation, sc *evalScratch) []model.ResourceID {
	for r, on := range x.Allocation {
		if on {
			sc.alloc = append(sc.alloc, r)
		}
	}
	sort.Slice(sc.alloc, func(i, j int) bool { return sc.alloc[i] < sc.alloc[j] })
	return sc.alloc
}
