package objective

import (
	"math"
	"testing"

	"repro/internal/model"
)

// buildSpec creates two ECUs on a bus with a gateway; ecu1 has a BIST
// pair (coverage 0.9, 1 MiB data, 10 ms runtime), and t1 on ecu1 sends
// one functional message of 8 bytes every 10 ms (0.8 B/ms bandwidth).
func buildSpec(t *testing.T) *model.Specification {
	t.Helper()
	app := model.NewApplicationGraph()
	for _, task := range []*model.Task{
		{ID: "t1", Kind: model.KindFunctional},
		{ID: "t2", Kind: model.KindFunctional},
		{ID: "bR", Kind: model.KindCollect},
		{ID: "bT1", Kind: model.KindBISTTest, TestedECU: "ecu1", Coverage: 0.9, WCETms: 10, Profile: 1},
		{ID: "bD1", Kind: model.KindBISTData, TestedECU: "ecu1", MemBytes: 1 << 20},
	} {
		if err := app.AddTask(task); err != nil {
			t.Fatal(err)
		}
	}
	for _, m := range []*model.Message{
		{ID: "c1", Src: "t1", Dst: []model.TaskID{"t2"}, SizeBytes: 8, PeriodMS: 10, Priority: 3},
		{ID: "cD1", Src: "bD1", Dst: []model.TaskID{"bT1"}, SizeBytes: 8, PeriodMS: 10},
		{ID: "cR1", Src: "bT1", Dst: []model.TaskID{"bR"}, SizeBytes: 8, PeriodMS: 100},
	} {
		if err := app.AddMessage(m); err != nil {
			t.Fatal(err)
		}
	}
	arch := model.NewArchitectureGraph()
	for _, r := range []*model.Resource{
		{ID: "ecu1", Kind: model.KindECU, Cost: 10, BISTCost: 2, BISTCapable: true, MemCostPerKB: 0.01},
		{ID: "ecu2", Kind: model.KindECU, Cost: 12},
		{ID: "bus1", Kind: model.KindBus, Cost: 1, BitRate: 500_000},
		{ID: "gw", Kind: model.KindGateway, Cost: 20, MemCostPerKB: 0.002},
	} {
		if err := arch.AddResource(r); err != nil {
			t.Fatal(err)
		}
	}
	for _, pair := range [][2]model.ResourceID{{"ecu1", "bus1"}, {"ecu2", "bus1"}, {"gw", "bus1"}} {
		if err := arch.Connect(pair[0], pair[1]); err != nil {
			t.Fatal(err)
		}
	}
	spec := model.NewSpecification(app, arch)
	spec.Gateway = "gw"
	for _, m := range []model.Mapping{
		{Task: "t1", Resource: "ecu1"}, {Task: "t2", Resource: "ecu2"},
		{Task: "bR", Resource: "gw"}, {Task: "bT1", Resource: "ecu1"},
		{Task: "bD1", Resource: "ecu1"}, {Task: "bD1", Resource: "gw"},
	} {
		if err := spec.AddMapping(m.Task, m.Resource); err != nil {
			t.Fatal(err)
		}
	}
	return spec
}

func bindAll(spec *model.Specification, dataOn model.ResourceID, withBIST bool) *model.Implementation {
	x := model.NewImplementation(spec)
	x.Bind("t1", "ecu1")
	x.Bind("t2", "ecu2")
	x.Bind("bR", "gw")
	x.SetRoute("c1", "t2", model.Route{Hops: []model.ResourceID{"ecu1", "bus1", "ecu2"}})
	if withBIST {
		x.Bind("bT1", "ecu1")
		x.Bind("bD1", dataOn)
		if dataOn == "ecu1" {
			x.SetRoute("cD1", "bT1", model.Route{Hops: []model.ResourceID{"ecu1"}})
		} else {
			x.SetRoute("cD1", "bT1", model.Route{Hops: []model.ResourceID{"gw", "bus1", "ecu1"}})
		}
		x.SetRoute("cR1", "bR", model.Route{Hops: []model.ResourceID{"ecu1", "bus1", "gw"}})
	}
	return x
}

func TestMonetaryCostsLocalVsGateway(t *testing.T) {
	spec := buildSpec(t)
	local := MonetaryCosts(bindAll(spec, "ecu1", true))
	gw := MonetaryCosts(bindAll(spec, "gw", true))
	// Hardware identical (same allocation), BIST surcharge identical.
	if local.Hardware != gw.Hardware || local.BIST != gw.BIST {
		t.Fatalf("hardware/bist differ: %+v vs %+v", local, gw)
	}
	if local.BIST != 2 {
		t.Fatalf("BIST surcharge = %v, want 2", local.BIST)
	}
	// Gateway memory is 5x cheaper per KB here.
	wantLocal := float64(1<<20) / 1024 * 0.01
	wantGW := float64(1<<20) / 1024 * 0.002
	if math.Abs(local.Memory-wantLocal) > 1e-9 || math.Abs(gw.Memory-wantGW) > 1e-9 {
		t.Fatalf("memory costs: local %v (want %v), gw %v (want %v)", local.Memory, wantLocal, gw.Memory, wantGW)
	}
	if local.Total() <= gw.Total() {
		t.Fatal("local storage must cost more in this setup")
	}
}

func TestNoBISTCostsBaseline(t *testing.T) {
	spec := buildSpec(t)
	c := MonetaryCosts(bindAll(spec, "", false))
	if c.BIST != 0 || c.Memory != 0 {
		t.Fatalf("no-BIST costs: %+v", c)
	}
	if c.Hardware != 10+12+1+20 {
		t.Fatalf("hardware = %v", c.Hardware)
	}
}

func TestTestQuality(t *testing.T) {
	spec := buildSpec(t)
	// Two allocated ECUs, one with 0.9 coverage: Eq. 4 gives 0.45.
	q := TestQuality(bindAll(spec, "ecu1", true))
	if math.Abs(q-0.45) > 1e-12 {
		t.Fatalf("quality = %v, want 0.45", q)
	}
	if q := TestQuality(bindAll(spec, "", false)); q != 0 {
		t.Fatalf("no-BIST quality = %v", q)
	}
}

func TestShutOffTimeLocal(t *testing.T) {
	spec := buildSpec(t)
	// Local storage: just the session runtime.
	got := ShutOffTimeMS(bindAll(spec, "ecu1", true))
	if got != 10 {
		t.Fatalf("shut-off = %v, want 10", got)
	}
}

func TestShutOffTimeGateway(t *testing.T) {
	spec := buildSpec(t)
	got := ShutOffTimeMS(bindAll(spec, "gw", true))
	// Transfer: 1 MiB over 0.8 B/ms = 1310720 ms, plus 10 ms session.
	want := float64(1<<20)/0.8 + 10
	if math.Abs(got-want) > 1e-6 {
		t.Fatalf("shut-off = %v, want %v", got, want)
	}
}

func TestShutOffNoBISTIsZero(t *testing.T) {
	spec := buildSpec(t)
	if got := ShutOffTimeMS(bindAll(spec, "", false)); got != 0 {
		t.Fatalf("shut-off = %v", got)
	}
}

func TestShutOffInfiniteWithoutBandwidth(t *testing.T) {
	spec := buildSpec(t)
	x := bindAll(spec, "gw", true)
	// Move t1 off ecu1: no functional messages to mirror.
	x.Bind("t1", "ecu2")
	x.SetRoute("c1", "t2", model.Route{Hops: []model.ResourceID{"ecu2"}})
	if got := ShutOffTimeMS(x); !math.IsInf(got, 1) {
		t.Fatalf("shut-off = %v, want +Inf", got)
	}
}

func TestFunctionalFrames(t *testing.T) {
	spec := buildSpec(t)
	x := bindAll(spec, "gw", true)
	frames := FunctionalFrames(x, "ecu1")
	if len(frames) != 1 || frames[0].ID != "c1" || frames[0].Payload != 8 {
		t.Fatalf("frames = %+v", frames)
	}
	// Diagnostic messages (cR1 from bT1) must not count as functional.
	if frames := FunctionalFrames(x, "gw"); len(frames) != 0 {
		t.Fatalf("gateway frames = %+v", frames)
	}
}

func TestEvaluateAndMinimized(t *testing.T) {
	spec := buildSpec(t)
	v := Evaluate(bindAll(spec, "ecu1", true))
	if v.TestQuality <= 0 || v.CostTotal <= 0 || v.ShutOffMS != 10 {
		t.Fatalf("vector = %+v", v)
	}
	m := v.Minimized()
	if len(m) != 3 || m[0] != v.CostTotal || m[1] != -v.TestQuality || m[2] != v.ShutOffMS {
		t.Fatalf("minimized = %v", m)
	}
}

// TestShutOffMonotoneInDataSize: growing the stored pattern volume can
// only increase (never decrease) the gateway-storage shut-off time —
// the monotonicity Eq. (5) inherits from Eq. (1).
func TestShutOffMonotoneInDataSize(t *testing.T) {
	spec := buildSpec(t)
	prev := 0.0
	for i, bytes := range []int64{1 << 10, 1 << 15, 1 << 20, 1 << 24} {
		spec.App.Task("bD1").MemBytes = bytes
		got := ShutOffTimeMS(bindAll(spec, "gw", true))
		if got <= prev {
			t.Fatalf("step %d: shut-off %v not above %v", i, got, prev)
		}
		prev = got
	}
}

// TestQualityBoundedByBestCoverage: Eq. (4) can never exceed the best
// selected profile coverage.
func TestQualityBoundedByBestCoverage(t *testing.T) {
	spec := buildSpec(t)
	x := bindAll(spec, "ecu1", true)
	q := TestQuality(x)
	best := 0.0
	for _, bT := range x.SelectedBIST() {
		if bT.Coverage > best {
			best = bT.Coverage
		}
	}
	if q > best {
		t.Fatalf("quality %v above best coverage %v", q, best)
	}
}
