package objective

import "repro/internal/model"

// WorstCase returns a finite per-objective upper bound over every
// implementation of the specification:
//
//   - CostTotal: all resources allocated at their BIST-capable variant
//     price, plus every BIST data task stored at the most expensive
//     per-KB memory in the architecture (gateway sharing only lowers
//     this).
//   - TestQuality: 0, the true minimum of a maximized quantity.
//   - ShutOffMS: the longest BIST session runtime plus the slowest
//     possible finite pattern transfer — the largest data task shipped
//     over the thinnest single functional message bandwidth (any real
//     transfer bandwidth is a sum including at least one message).
//
// The bound serves as the decode-failure penalty vector of the
// exploration: unlike the former {+Inf, 0, +Inf} penalty it cannot leak
// Inf−Inf = NaN into crowding-distance or indicator normalization, yet
// it is weakly dominated by every feasible implementation with a finite
// shut-off time, so the MOEA still steers away from it.
func WorstCase(spec *model.Specification) Vector {
	v := Vector{TestQuality: 0}
	maxMemCost := 0.0
	for _, r := range spec.Arch.Resources() {
		v.CostTotal += r.Cost + r.BISTCost
		if r.MemCostPerKB > maxMemCost {
			maxMemCost = r.MemCostPerKB
		}
	}
	var memBytes, maxTaskBytes int64
	maxWCET := 0.0
	for _, t := range spec.App.Tasks() {
		switch t.Kind {
		case model.KindBISTData:
			memBytes += t.MemBytes
			if t.MemBytes > maxTaskBytes {
				maxTaskBytes = t.MemBytes
			}
		case model.KindBISTTest:
			if t.WCETms > maxWCET {
				maxWCET = t.WCETms
			}
		}
	}
	v.CostTotal += float64(memBytes) / 1024 * maxMemCost
	minBW := 0.0
	for _, m := range spec.App.Messages() {
		src := spec.App.Task(m.Src)
		if src == nil || src.Kind != model.KindFunctional || m.PeriodMS <= 0 {
			continue
		}
		bw := float64(m.SizeBytes) / m.PeriodMS
		if bw > 0 && (minBW == 0 || bw < minBW) {
			minBW = bw
		}
	}
	v.ShutOffMS = maxWCET
	if minBW > 0 {
		v.ShutOffMS += float64(maxTaskBytes) / minBW
	}
	return v
}
