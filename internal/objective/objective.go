// Package objective evaluates the paper's three design objectives
// (Section III-D) on an implementation: test quality (Eq. 4), shut-off
// time (Eq. 5) with the non-intrusive transfer time of Eq. (1), and
// monetary costs (hardware plus distributed pattern memory).
//
// Evaluation is the MOEA's inner loop, so the implementation-independent
// parts of every objective (functional message bandwidths, task-kind
// snapshots, resource kinds) live in a per-specification static index
// built once and shared by all workers, and the per-evaluation working
// memory is pooled (see index.go). The floating-point accumulation
// orders of the original per-objective rescans are preserved exactly, so
// identical implementations score bit-identical objective vectors.
package objective

import (
	"math"
	"sort"

	"repro/internal/can"
	"repro/internal/model"
)

// Vector bundles the objective values of one implementation: the three
// paper objectives, plus the optional robustness objective when the
// exploration runs with a CAN error model (see RobustConfig).
type Vector struct {
	// CostTotal is the monetary cost to minimize.
	CostTotal float64
	// TestQuality is the average stuck-at coverage over allocated ECUs,
	// in [0,1], to maximize.
	TestQuality float64
	// ShutOffMS is the maximum extra awake time in milliseconds, to
	// minimize. +Inf when a gateway-stored BIST has no mirrorable
	// functional message bandwidth.
	ShutOffMS float64

	// RobustMS is the degraded-mode score (expected transfer completion
	// plus deadline-miss penalty, see robustScore) — only meaningful when
	// RobustOn is set.
	RobustMS float64
	// RobustMissProb is the worst per-session deadline-miss probability.
	RobustMissProb float64
	// RobustOn marks the vector as four-dimensional.
	RobustOn bool
}

// Minimized returns the vector in all-minimized form for the MOEA:
// (cost, -quality, shut-off), extended by the robustness score when the
// vector carries one. Disabled-robustness vectors keep the exact
// three-element form, so fronts at error rate 0 are bit-identical to
// pre-robustness runs.
func (v Vector) Minimized() []float64 {
	if v.RobustOn {
		return []float64{v.CostTotal, -v.TestQuality, v.ShutOffMS, v.RobustMS}
	}
	return []float64{v.CostTotal, -v.TestQuality, v.ShutOffMS}
}

// Costs breaks the monetary objective into its components.
type Costs struct {
	Hardware float64 // allocated resources
	BIST     float64 // BIST-capable variant surcharges
	Memory   float64 // permanent memory for stored BIST data
}

// Total returns the summed monetary cost.
func (c Costs) Total() float64 { return c.Hardware + c.BIST + c.Memory }

// MonetaryCosts prices an implementation: every allocated resource at
// its base cost, the BIST-capable surcharge for each ECU with a
// selected test task, and the per-resource memory price for stored BIST
// data. Section III-D: storing the encoded information at the central
// gateway is less costly because "the same encoded patterns can be used
// for different ECUs" — gateway-stored data tasks of the same profile
// (same CUT type, identical pattern set) are therefore priced once,
// while ECU-local storage is paid per ECU.
func MonetaryCosts(x *model.Implementation) Costs {
	idx := indexOf(x.Spec)
	sc := getScratch()
	c := monetaryCosts(x, idx, fillAllocated(x, sc), fillSelected(x, sc), sc)
	putScratch(sc)
	return c
}

// monetaryCosts prices the implementation from pre-collected sorted
// views. Iteration stays in sorted orders throughout: floating-point
// accumulation must not depend on map iteration order, or identical
// implementations would score unequal costs between runs.
func monetaryCosts(x *model.Implementation, idx *specIndex, alloc []model.ResourceID, sel []bistSel, sc *evalScratch) Costs {
	var c Costs
	arch := x.Spec.Arch
	for _, r := range alloc {
		if res := arch.Resource(r); res != nil {
			c.Hardware += res.Cost
		}
	}
	for _, s := range sel {
		if res := arch.Resource(s.r); res != nil {
			c.BIST += res.BISTCost
		}
	}
	for _, t := range idx.bistData {
		r, bound := x.Binding[t.ID]
		if !bound {
			continue
		}
		if r == x.Spec.Gateway {
			sc.gwShared[t.Profile] = t.MemBytes // stored once per profile
			continue
		}
		if res := arch.Resource(r); res != nil {
			c.Memory += float64(t.MemBytes) / 1024 * res.MemCostPerKB
		}
	}
	if gw := arch.Resource(x.Spec.Gateway); gw != nil {
		for p := range sc.gwShared {
			sc.profiles = append(sc.profiles, p)
		}
		sort.Ints(sc.profiles)
		for _, p := range sc.profiles {
			c.Memory += float64(sc.gwShared[p]) / 1024 * gw.MemCostPerKB
		}
	}
	return c
}

// TestQuality implements Eq. (4): the summed coverage of the selected
// BIST test tasks divided by the number of allocated ECUs (the
// resources eligible for structural test). An implementation without
// allocated ECUs scores zero.
func TestQuality(x *model.Implementation) float64 {
	idx := indexOf(x.Spec)
	sc := getScratch()
	alloc := fillAllocated(x, sc)
	sel := fillSelected(x, sc)
	fillUsed(x, sc.used)
	q := testQuality(idx, alloc, sel, sc.used)
	putScratch(sc)
	return q
}

func testQuality(idx *specIndex, alloc []model.ResourceID, sel []bistSel, used map[model.ResourceID]bool) float64 {
	ecus := 0
	for _, r := range alloc {
		if idx.isECU[r] && used[r] {
			ecus++
		}
	}
	if ecus == 0 {
		return 0
	}
	// sel is sorted by ECU ID — the same accumulation order as the
	// map-plus-sorted-keys code this replaces.
	sum := 0.0
	for _, s := range sel {
		sum += s.t.Coverage
	}
	return sum / float64(ecus)
}

// fillUsed marks every resource hosting at least one bound task — one
// pass over the bindings instead of one pass per allocated resource.
func fillUsed(x *model.Implementation, used map[model.ResourceID]bool) {
	for _, r := range x.Binding {
		used[r] = true
	}
}

// FunctionalFrames returns the CAN frame view of the functional
// messages sent by tasks bound to ECU r — the message set I of Eq. (1)
// whose mirrored bandwidth carries the test patterns.
func FunctionalFrames(x *model.Implementation, r model.ResourceID) []can.Frame {
	var frames []can.Frame
	for _, m := range x.Spec.App.Messages() {
		src := x.Spec.App.Task(m.Src)
		if src == nil || src.Kind != model.KindFunctional {
			continue
		}
		if x.Binding[m.Src] != r {
			continue
		}
		payload := int(m.SizeBytes)
		if payload > can.MaxPayload {
			payload = can.MaxPayload // long messages are segmented
		}
		frames = append(frames, can.Frame{
			ID:       string(m.ID),
			Priority: m.Priority,
			Payload:  payload,
			PeriodMS: m.PeriodMS,
		})
	}
	return frames
}

// transferBandwidth returns Σ s(c)/p(c) in bytes per millisecond for
// Eq. (1), using the full message payloads (segmentation preserves the
// long-run bandwidth of the mirrored slots). The walk over the indexed
// functional messages visits r's messages in the same order as the old
// full-message rescan, so the sum is bit-identical.
func transferBandwidth(x *model.Implementation, r model.ResourceID) float64 {
	idx := indexOf(x.Spec)
	bw := 0.0
	for _, fm := range idx.funcMsgs {
		if x.Binding[fm.src] == r {
			bw += fm.bw
		}
	}
	return bw
}

// TransferTimeMS evaluates Eq. (1) for the BIST data task bD serving
// ECU r: the time to ship s(b^D) bytes over the mirrored functional
// messages of r. +Inf when the ECU sends no functional messages.
func TransferTimeMS(x *model.Implementation, bD *model.Task, r model.ResourceID) float64 {
	bw := transferBandwidth(x, r)
	if bw <= 0 {
		return math.Inf(1)
	}
	return float64(bD.MemBytes) / bw
}

// ShutOffTimeMS implements Eq. (5): the maximum over all selected BIST
// sessions of the session runtime l(b^T), plus the pattern transfer
// time q when the BIST data task is stored away from the tested ECU. An
// implementation without BIST has shut-off time 0.
func ShutOffTimeMS(x *model.Implementation) float64 {
	idx := indexOf(x.Spec)
	sc := getScratch()
	sel := fillSelected(x, sc)
	fillBandwidths(x, idx, sc.bw)
	worst := shutOffTimeMS(x, sel, sc.bw)
	putScratch(sc)
	return worst
}

func shutOffTimeMS(x *model.Implementation, sel []bistSel, bw map[model.ResourceID]float64) float64 {
	worst := 0.0
	for _, s := range sel {
		bD := x.Spec.DataTaskFor(s.t)
		t := s.t.WCETms
		if bD != nil {
			if dataRes, ok := x.Binding[bD.ID]; ok && dataRes != s.r {
				if b := bw[s.r]; b > 0 {
					t += float64(bD.MemBytes) / b
				} else {
					t = math.Inf(1)
				}
			}
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// Evaluate computes all three objectives, sharing one scratch checkout
// and the pre-collected sorted views across them.
func Evaluate(x *model.Implementation) Vector {
	idx := indexOf(x.Spec)
	sc := getScratch()
	alloc := fillAllocated(x, sc)
	sel := fillSelected(x, sc)
	fillUsed(x, sc.used)
	fillBandwidths(x, idx, sc.bw)
	v := Vector{
		CostTotal:   monetaryCosts(x, idx, alloc, sel, sc).Total(),
		TestQuality: testQuality(idx, alloc, sel, sc.used),
		ShutOffMS:   shutOffTimeMS(x, sel, sc.bw),
	}
	putScratch(sc)
	return v
}
