// Package objective evaluates the paper's three design objectives
// (Section III-D) on an implementation: test quality (Eq. 4), shut-off
// time (Eq. 5) with the non-intrusive transfer time of Eq. (1), and
// monetary costs (hardware plus distributed pattern memory).
package objective

import (
	"math"
	"sort"

	"repro/internal/can"
	"repro/internal/model"
)

// Vector bundles the three objective values of one implementation.
type Vector struct {
	// CostTotal is the monetary cost to minimize.
	CostTotal float64
	// TestQuality is the average stuck-at coverage over allocated ECUs,
	// in [0,1], to maximize.
	TestQuality float64
	// ShutOffMS is the maximum extra awake time in milliseconds, to
	// minimize. +Inf when a gateway-stored BIST has no mirrorable
	// functional message bandwidth.
	ShutOffMS float64
}

// Minimized returns the vector in all-minimized form
// (cost, -quality, shut-off) for the MOEA.
func (v Vector) Minimized() []float64 {
	return []float64{v.CostTotal, -v.TestQuality, v.ShutOffMS}
}

// Costs breaks the monetary objective into its components.
type Costs struct {
	Hardware float64 // allocated resources
	BIST     float64 // BIST-capable variant surcharges
	Memory   float64 // permanent memory for stored BIST data
}

// Total returns the summed monetary cost.
func (c Costs) Total() float64 { return c.Hardware + c.BIST + c.Memory }

// MonetaryCosts prices an implementation: every allocated resource at
// its base cost, the BIST-capable surcharge for each ECU with a
// selected test task, and the per-resource memory price for stored BIST
// data. Section III-D: storing the encoded information at the central
// gateway is less costly because "the same encoded patterns can be used
// for different ECUs" — gateway-stored data tasks of the same profile
// (same CUT type, identical pattern set) are therefore priced once,
// while ECU-local storage is paid per ECU.
func MonetaryCosts(x *model.Implementation) Costs {
	var c Costs
	arch := x.Spec.Arch
	for _, r := range x.AllocatedResources() {
		if res := arch.Resource(r); res != nil {
			c.Hardware += res.Cost
		}
	}
	// Iterate in sorted orders throughout: floating-point accumulation
	// must not depend on map iteration order, or identical
	// implementations would score unequal costs between runs.
	selected := x.SelectedBIST()
	var bistECUs []model.ResourceID
	for r := range selected {
		bistECUs = append(bistECUs, r)
	}
	sort.Slice(bistECUs, func(i, j int) bool { return bistECUs[i] < bistECUs[j] })
	for _, r := range bistECUs {
		if res := arch.Resource(r); res != nil {
			c.BIST += res.BISTCost
		}
	}
	gwShared := make(map[int]int64) // profile number -> bytes, stored once
	for _, t := range x.Spec.App.TasksOfKind(model.KindBISTData) {
		r, bound := x.Binding[t.ID]
		if !bound {
			continue
		}
		if r == x.Spec.Gateway {
			gwShared[t.Profile] = t.MemBytes
			continue
		}
		if res := arch.Resource(r); res != nil {
			c.Memory += float64(t.MemBytes) / 1024 * res.MemCostPerKB
		}
	}
	if gw := arch.Resource(x.Spec.Gateway); gw != nil {
		var profiles []int
		for p := range gwShared {
			profiles = append(profiles, p)
		}
		sort.Ints(profiles)
		for _, p := range profiles {
			c.Memory += float64(gwShared[p]) / 1024 * gw.MemCostPerKB
		}
	}
	return c
}

// TestQuality implements Eq. (4): the summed coverage of the selected
// BIST test tasks divided by the number of allocated ECUs (the
// resources eligible for structural test). An implementation without
// allocated ECUs scores zero.
func TestQuality(x *model.Implementation) float64 {
	ecus := 0
	for _, r := range x.AllocatedResources() {
		res := x.Spec.Arch.Resource(r)
		if res != nil && res.Kind == model.KindECU && hostsBoundTask(x, r) {
			ecus++
		}
	}
	if ecus == 0 {
		return 0
	}
	// Sorted accumulation for run-to-run determinism of the float sum.
	selected := x.SelectedBIST()
	var keys []model.ResourceID
	for r := range selected {
		keys = append(keys, r)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	sum := 0.0
	for _, r := range keys {
		sum += selected[r].Coverage
	}
	return sum / float64(ecus)
}

func hostsBoundTask(x *model.Implementation, r model.ResourceID) bool {
	for _, br := range x.Binding {
		if br == r {
			return true
		}
	}
	return false
}

// FunctionalFrames returns the CAN frame view of the functional
// messages sent by tasks bound to ECU r — the message set I of Eq. (1)
// whose mirrored bandwidth carries the test patterns.
func FunctionalFrames(x *model.Implementation, r model.ResourceID) []can.Frame {
	var frames []can.Frame
	for _, m := range x.Spec.App.Messages() {
		src := x.Spec.App.Task(m.Src)
		if src == nil || src.Kind != model.KindFunctional {
			continue
		}
		if x.Binding[m.Src] != r {
			continue
		}
		payload := int(m.SizeBytes)
		if payload > can.MaxPayload {
			payload = can.MaxPayload // long messages are segmented
		}
		frames = append(frames, can.Frame{
			ID:       string(m.ID),
			Priority: m.Priority,
			Payload:  payload,
			PeriodMS: m.PeriodMS,
		})
	}
	return frames
}

// transferBandwidth returns Σ s(c)/p(c) in bytes per millisecond for
// Eq. (1), using the full message payloads (segmentation preserves the
// long-run bandwidth of the mirrored slots).
func transferBandwidth(x *model.Implementation, r model.ResourceID) float64 {
	bw := 0.0
	for _, m := range x.Spec.App.Messages() {
		src := x.Spec.App.Task(m.Src)
		if src == nil || src.Kind != model.KindFunctional {
			continue
		}
		if x.Binding[m.Src] != r {
			continue
		}
		if m.PeriodMS > 0 {
			bw += float64(m.SizeBytes) / m.PeriodMS
		}
	}
	return bw
}

// TransferTimeMS evaluates Eq. (1) for the BIST data task bD serving
// ECU r: the time to ship s(b^D) bytes over the mirrored functional
// messages of r. +Inf when the ECU sends no functional messages.
func TransferTimeMS(x *model.Implementation, bD *model.Task, r model.ResourceID) float64 {
	bw := transferBandwidth(x, r)
	if bw <= 0 {
		return math.Inf(1)
	}
	return float64(bD.MemBytes) / bw
}

// ShutOffTimeMS implements Eq. (5): the maximum over all selected BIST
// sessions of the session runtime l(b^T), plus the pattern transfer
// time q when the BIST data task is stored away from the tested ECU. An
// implementation without BIST has shut-off time 0.
func ShutOffTimeMS(x *model.Implementation) float64 {
	worst := 0.0
	for r, bT := range x.SelectedBIST() {
		bD := x.Spec.DataTaskFor(bT)
		t := bT.WCETms
		if bD != nil {
			if dataRes, ok := x.Binding[bD.ID]; ok && dataRes != r {
				t += TransferTimeMS(x, bD, r)
			}
		}
		if t > worst {
			worst = t
		}
	}
	return worst
}

// Evaluate computes all three objectives.
func Evaluate(x *model.Implementation) Vector {
	return Vector{
		CostTotal:   MonetaryCosts(x).Total(),
		TestQuality: TestQuality(x),
		ShutOffMS:   ShutOffTimeMS(x),
	}
}
