package bistgen

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/atpg"
	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/reseed"
	"repro/internal/stumps"
)

// Options configure profile characterization.
type Options struct {
	// Scan is the STUMPS configuration (chains, chain length, clock,
	// seed, window size, restore cycles).
	Scan stumps.Config
	// MaxBacktracks bounds PODEM effort per fault (default 100).
	MaxBacktracks int
	// ReseedWidth, when positive, sizes the deterministic data with a
	// real LFSR-reseeding encoder of that seed width (package reseed)
	// instead of the best-of raw/sparse cube heuristic. Cubes the seed
	// cannot express are costed as raw patterns.
	ReseedWidth int
	// MeasureTransition additionally fault-simulates the pseudo-random
	// phase against the broadside transition fault universe and records
	// per-level coverage in Profile.TransitionCov.
	MeasureTransition bool
	// Workers shards every grading fault simulation (pseudo-random
	// phase, transition phase, and the fault dropping between PODEM
	// top-off targets) across this many goroutines. 0 means
	// runtime.GOMAXPROCS(0); 1 forces serial. Profiles are identical
	// for every worker count.
	Workers int
	// Context, when non-nil, cancels characterization at the next fault
	// simulation batch or top-off target boundary; Characterize then
	// returns ctx.Err(). nil disables cancellation.
	Context context.Context
}

// Generator characterizes BIST profiles for one circuit.
type Generator struct {
	circuit *netlist.Circuit
	opt     Options
	session *stumps.Session
	faults  []netlist.Fault
	reseedE *reseed.Encoder
}

// New validates the scan configuration against the circuit and returns
// a profile generator over the collapsed fault list.
func New(c *netlist.Circuit, opt Options) (*Generator, error) {
	s, err := stumps.NewSession(c, opt.Scan)
	if err != nil {
		return nil, err
	}
	if opt.MaxBacktracks <= 0 {
		opt.MaxBacktracks = 100
	}
	g := &Generator{
		circuit: c,
		opt:     opt,
		session: s,
		faults:  netlist.CollapsedFaults(c),
	}
	if opt.ReseedWidth > 0 {
		enc, err := reseed.NewEncoder(opt.ReseedWidth, opt.Scan.Chains, opt.Scan.ChainLen)
		if err != nil {
			return nil, err
		}
		g.reseedE = enc
	}
	return g, nil
}

// TotalFaults returns the collapsed fault population of the CUT.
func (g *Generator) TotalFaults() int { return len(g.faults) }

// cubeStep records the cumulative state after adding one top-off cube.
type cubeStep struct {
	cube        atpg.Cube
	careBits    int // care bits of this cube
	cumDetected int // total faults detected including random phase
}

// topoff runs PODEM with cross-detection dropping over the remaining
// faults and records the cumulative detection count after each cube.
func (g *Generator) topoff(remaining []netlist.Fault, alreadyDetected int, fillSeed int64) ([]cubeStep, error) {
	gen := atpg.NewGenerator(g.circuit, g.opt.MaxBacktracks)
	fs := faultsim.NewFaultSim(g.circuit, remaining).SetWorkers(g.opt.Workers).SetContext(g.opt.Context)
	rng := rand.New(rand.NewSource(fillSeed))
	detected := make(map[netlist.Fault]bool, len(remaining))
	var steps []cubeStep
	cum := alreadyDetected
	for _, target := range remaining {
		if detected[target] {
			continue
		}
		cube, status := gen.Generate(target)
		if status != atpg.Detected {
			continue
		}
		pattern := cube.Fill(func() bool { return rng.Intn(2) == 1 })
		batch, err := faultsim.BatchFromBools([][]bool{pattern})
		if err != nil {
			return nil, err
		}
		dets, err := fs.SimulateBatch(batch)
		if err != nil {
			return nil, err
		}
		for _, d := range dets {
			detected[d.Fault] = true
		}
		cum += len(dets)
		steps = append(steps, cubeStep{cube: cube, careBits: cube.CareBits(), cumDetected: cum})
	}
	return steps, nil
}

// Characterize measures one profile per (PRP level, target) pair and
// returns them numbered in Table I order: the profiles of the first PRP
// level first, each level ordered by the targets slice.
//
// The pseudo-random phase is fault-simulated once up to the largest PRP
// level; per-level remainders are reconstructed from first-detection
// indices, exactly as if each level were run separately (the LFSR
// sequence of a smaller level is a prefix of the larger one).
func (g *Generator) Characterize(prpLevels []int, targets []TargetSpec) ([]Profile, error) {
	if len(prpLevels) == 0 || len(targets) == 0 {
		return nil, fmt.Errorf("bistgen: need at least one PRP level and target")
	}
	levels := append([]int(nil), prpLevels...)
	sort.Ints(levels)
	maxLevel := levels[len(levels)-1]

	// Phase 1: one pseudo-random fault simulation run to the deepest
	// level, recording first-detection pattern indices.
	fs := faultsim.NewFaultSim(g.circuit, g.faults).SetWorkers(g.opt.Workers).SetContext(g.opt.Context)
	prpg, err := stumps.NewPRPG(g.opt.Scan)
	if err != nil {
		return nil, err
	}
	if _, err := fs.RunCoverage(prpg, maxLevel); err != nil {
		return nil, err
	}
	detIdx := make(map[netlist.Fault]int, len(g.faults))
	for _, d := range fs.Detections() {
		detIdx[d.Fault] = d.Pattern
	}

	// Optional transition coverage of the same pattern sequence,
	// reconstructed per level from first-detection capture indices.
	transDetIdx := make(map[faultsim.TransitionFault]int)
	transTotal := 0
	if g.opt.MeasureTransition {
		tfaults := faultsim.AllTransitionFaults(g.circuit)
		transTotal = len(tfaults)
		tsim := faultsim.NewTransitionSim(g.circuit, tfaults).SetWorkers(g.opt.Workers).SetContext(g.opt.Context)
		tprpg, err := stumps.NewPRPG(g.opt.Scan)
		if err != nil {
			return nil, err
		}
		seen := 0
		for seen < maxLevel {
			n := maxLevel - seen
			if n > 64 {
				n = 64
			}
			if _, err := tsim.SimulateBatch(tprpg.NextBatch(n)); err != nil {
				return nil, err
			}
			seen += n
		}
		for _, d := range tsim.Detections() {
			transDetIdx[d.Fault] = d.Pattern
		}
	}

	total := len(g.faults)
	var profiles []Profile
	num := 1
	for _, level := range prpLevels {
		// Remaining faults after `level` random patterns, in stable order.
		var remaining []netlist.Fault
		randDetected := 0
		for _, f := range g.faults {
			if idx, ok := detIdx[f]; ok && idx < level {
				randDetected++
			} else {
				remaining = append(remaining, f)
			}
		}
		// Phase 2: deterministic top-off, one run per distinct fill seed.
		stepsBySeed := make(map[int64][]cubeStep)
		for _, t := range targets {
			if _, done := stepsBySeed[t.FillSeed]; !done {
				steps, err := g.topoff(remaining, randDetected, t.FillSeed)
				if err != nil {
					return nil, err
				}
				stepsBySeed[t.FillSeed] = steps
			}
		}
		for _, t := range targets {
			steps := stepsBySeed[t.FillSeed]
			target := t.Coverage
			if t.Relative && target > 0 {
				final := randDetected
				if len(steps) > 0 {
					final = steps[len(steps)-1].cumDetected
				}
				target *= float64(final) / float64(total)
			}
			nCubes, careBits, detected := g.cutAtTarget(steps, randDetected, target, total)
			p, err := g.buildProfile(num, level, t, steps[:nCubes], careBits, detected, total)
			if err != nil {
				return nil, err
			}
			if g.opt.MeasureTransition && transTotal > 0 {
				hits := 0
				for _, idx := range transDetIdx {
					if idx < level {
						hits++
					}
				}
				p.TransitionCov = float64(hits) / float64(transTotal)
			}
			profiles = append(profiles, p)
			num++
		}
	}
	return profiles, nil
}

// cutAtTarget selects the shortest top-off prefix reaching the coverage
// target (or the full run for target 0 = max).
func (g *Generator) cutAtTarget(steps []cubeStep, randDetected int, target float64, total int) (nCubes, careBits, detected int) {
	detected = randDetected
	for i, s := range steps {
		if target > 0 && float64(detected)/float64(total) >= target {
			return i, careBits, detected
		}
		careBits += s.careBits
		detected = s.cumDetected
		nCubes = i + 1
	}
	return nCubes, careBits, detected
}

// buildProfile assembles the measured quantities into a Profile. The
// deterministic data volume comes from the real reseeding encoder when
// Options.ReseedWidth is set, and from the best-of raw/sparse per-cube
// heuristic otherwise.
func (g *Generator) buildProfile(num, prps int, t TargetSpec, steps []cubeStep, careBits, detected, total int) (Profile, error) {
	coverage := 1.0
	if total > 0 {
		coverage = float64(detected) / float64(total)
	}
	nCubes := len(steps)
	detBytes := 0
	switch {
	case nCubes == 0:
		// Random phase alone met the target.
	case g.reseedE != nil:
		cubes := make([]atpg.Cube, nCubes)
		for i, s := range steps {
			cubes[i] = s.cube
		}
		enc, err := g.reseedE.EncodeSet(cubes)
		if err != nil {
			return Profile{}, err
		}
		detBytes = enc.TotalBytes()
	default:
		avgCare := careBits / nCubes
		detBytes = nCubes * encodedCubeBytes(g.circuit.NumInputs(), avgCare)
	}
	totalPatterns := prps + nCubes
	return Profile{
		Number:      num,
		PRPs:        prps,
		Coverage:    coverage,
		RuntimeMS:   g.session.SessionTimeMS(totalPatterns),
		DataBytes:   int64(detBytes + g.session.ResponseDataBytes(totalPatterns)),
		DetPatterns: nCubes,
		CareBits:    careBits,
		Target:      t.Name,
	}, nil
}
