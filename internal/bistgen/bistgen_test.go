package bistgen

import (
	"testing"

	"repro/internal/netlist"
	"repro/internal/stumps"
)

func testGenerator(t *testing.T) *Generator {
	t.Helper()
	cfg := stumps.Config{Chains: 8, ChainLen: 10, Seed: 17, WindowPatterns: 32, RestoreCycles: 200, TestClockHz: 40e6}
	c := netlist.ScanCUT(5, cfg.Chains, cfg.ChainLen, 4)
	g, err := New(c, Options{Scan: cfg, MaxBacktracks: 150})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidatesScanShape(t *testing.T) {
	if _, err := New(netlist.C17(), Options{Scan: stumps.Config{Chains: 8, ChainLen: 10}}); err == nil {
		t.Fatal("mismatched circuit accepted")
	}
}

func TestCharacterizeTableShape(t *testing.T) {
	g := testGenerator(t)
	levels := []int{64, 256, 1024}
	targets := DefaultTargets()
	profiles, err := g.Characterize(levels, targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != len(levels)*len(targets) {
		t.Fatalf("got %d profiles, want %d", len(profiles), len(levels)*len(targets))
	}
	for i, p := range profiles {
		if p.Number != i+1 {
			t.Fatalf("profile numbering broken at %d: %+v", i, p)
		}
		if p.Coverage < 0 || p.Coverage > 1 {
			t.Fatalf("coverage out of range: %+v", p)
		}
		if p.RuntimeMS <= 0 || p.DataBytes <= 0 {
			t.Fatalf("non-positive cost: %+v", p)
		}
	}

	byLevel := func(level int) []Profile {
		var out []Profile
		for _, p := range profiles {
			if p.PRPs == level {
				out = append(out, p)
			}
		}
		return out
	}
	for _, level := range levels {
		ps := byLevel(level)
		// Within a level: max variants reach at least the 98% variant's
		// coverage, which reaches at least the 95% variant's.
		if ps[0].Coverage < ps[2].Coverage || ps[2].Coverage < ps[3].Coverage {
			t.Fatalf("coverage ordering violated at level %d: %+v", level, ps)
		}
		// Lower targets need at most as many deterministic patterns.
		if ps[3].DetPatterns > ps[2].DetPatterns || ps[2].DetPatterns > ps[0].DetPatterns {
			t.Fatalf("det pattern ordering violated at level %d: %+v", level, ps)
		}
	}

	// Across levels (Table I shape): more PRPs leave fewer faults for
	// ATPG, so the max-coverage deterministic pattern count must not
	// grow; runtime must grow with the pattern count.
	for i := 1; i < len(levels); i++ {
		prev, cur := byLevel(levels[i-1]), byLevel(levels[i])
		if cur[0].DetPatterns > prev[0].DetPatterns {
			t.Fatalf("det patterns grew with PRPs: %d->%d", prev[0].DetPatterns, cur[0].DetPatterns)
		}
		if cur[0].RuntimeMS <= prev[0].RuntimeMS {
			t.Fatalf("runtime did not grow with PRPs: %v -> %v", prev[0].RuntimeMS, cur[0].RuntimeMS)
		}
	}

	// The two max variants differ only in X-fill; both must reach the
	// same coverage ballpark (within 1%) like Table I rows 1 vs 2.
	for _, level := range levels {
		ps := byLevel(level)
		if d := ps[0].Coverage - ps[1].Coverage; d > 0.01 || d < -0.01 {
			t.Fatalf("max variants diverge at level %d: %v vs %v", level, ps[0].Coverage, ps[1].Coverage)
		}
	}
}

func TestCharacterizeDeterministic(t *testing.T) {
	a := testGenerator(t)
	b := testGenerator(t)
	pa, err := a.Characterize([]int{128}, DefaultTargets())
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Characterize([]int{128}, DefaultTargets())
	if err != nil {
		t.Fatal(err)
	}
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("profile %d differs between identical runs:\n%+v\n%+v", i, pa[i], pb[i])
		}
	}
}

// TestCharacterizeWorkersDeterministic: the whole characterization
// pipeline (pseudo-random grading, transition grading and the fault
// dropping inside PODEM top-off) must yield identical profiles for
// serial and sharded grading.
func TestCharacterizeWorkersDeterministic(t *testing.T) {
	cfg := stumps.Config{Chains: 8, ChainLen: 10, Seed: 17, WindowPatterns: 32, RestoreCycles: 200, TestClockHz: 40e6}
	c := netlist.ScanCUT(5, cfg.Chains, cfg.ChainLen, 4)
	run := func(workers int) []Profile {
		g, err := New(c, Options{Scan: cfg, MaxBacktracks: 150, MeasureTransition: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		ps, err := g.Characterize([]int{64, 256}, DefaultTargets())
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}
	serial := run(1)
	parallel := run(8)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("profile %d differs between Workers=1 and Workers=8:\n%+v\n%+v", i, serial[i], parallel[i])
		}
	}
}

func TestCharacterizeRejectsEmpty(t *testing.T) {
	g := testGenerator(t)
	if _, err := g.Characterize(nil, DefaultTargets()); err == nil {
		t.Fatal("empty levels accepted")
	}
	if _, err := g.Characterize([]int{100}, nil); err == nil {
		t.Fatal("empty targets accepted")
	}
}

func TestEncodedCubeBytes(t *testing.T) {
	// Dense cube: bitmap wins. 800 cells, 700 care bits:
	// raw = 1+100 = 101, sparse = 2+1400.
	if got := encodedCubeBytes(800, 700); got != 101 {
		t.Fatalf("dense = %d, want 101", got)
	}
	// Sparse cube: 800 cells, 5 care bits: sparse = 12 < raw 101.
	if got := encodedCubeBytes(800, 5); got != 12 {
		t.Fatalf("sparse = %d, want 12", got)
	}
}

func TestScaleToCUT(t *testing.T) {
	p := Profile{PRPs: 500, Coverage: 0.99, RuntimeMS: 10, DataBytes: 1000, DetPatterns: 10, CareBits: 400}
	from := CUTDims{ScanCells: 80, ChainLen: 10, Faults: 1000}
	scaled := ScaleToCUT(p, from, PaperCUT)
	if scaled.Coverage != p.Coverage || scaled.PRPs != p.PRPs {
		t.Fatal("scaling must not change coverage or PRPs")
	}
	if scaled.DataBytes <= p.DataBytes {
		t.Fatalf("scaling to the paper CUT must grow data: %d", scaled.DataBytes)
	}
	wantRuntime := 10 * float64(78) / 11
	if d := scaled.RuntimeMS - wantRuntime; d > 1e-9 || d < -1e-9 {
		t.Fatalf("runtime = %v, want %v", scaled.RuntimeMS, wantRuntime)
	}
	// Degenerate `from` dims: identity.
	if got := ScaleToCUT(p, CUTDims{}, PaperCUT); got != p {
		t.Fatal("degenerate dims must be identity")
	}
}

func TestProfileString(t *testing.T) {
	p := Profile{Number: 3, PRPs: 500, Coverage: 0.9817, RuntimeMS: 2.81, DataBytes: 994156, Target: "98%"}
	s := p.String()
	if s == "" || len(s) < 20 {
		t.Fatalf("String = %q", s)
	}
}

// TestCharacterizeWithReseeding sizes the deterministic data with the
// real LFSR-reseeding encoder and checks it undercuts raw storage while
// keeping the Table I shape.
func TestCharacterizeWithReseeding(t *testing.T) {
	cfg := stumps.Config{Chains: 8, ChainLen: 10, Seed: 17, WindowPatterns: 32, RestoreCycles: 200, TestClockHz: 40e6}
	c := netlist.ScanCUT(5, cfg.Chains, cfg.ChainLen, 4)
	heur, err := New(c, Options{Scan: cfg, MaxBacktracks: 150})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := New(c, Options{Scan: cfg, MaxBacktracks: 150, ReseedWidth: 96})
	if err != nil {
		t.Fatal(err)
	}
	levels := []int{64, 512}
	ph, err := heur.Characterize(levels, DefaultTargets())
	if err != nil {
		t.Fatal(err)
	}
	pr, err := rs.Characterize(levels, DefaultTargets())
	if err != nil {
		t.Fatal(err)
	}
	for i := range ph {
		// Same coverage/runtime/pattern counts; only data sizing differs.
		if ph[i].Coverage != pr[i].Coverage || ph[i].DetPatterns != pr[i].DetPatterns {
			t.Fatalf("profile %d diverged beyond data size:\n%+v\n%+v", i, ph[i], pr[i])
		}
		if pr[i].DataBytes <= 0 {
			t.Fatalf("profile %d: non-positive data", i)
		}
	}
	// Shape preserved under reseeding: within each level the 95%% profile
	// stores no more than max.
	for l := 0; l < len(levels); l++ {
		if pr[l*4+3].DataBytes > pr[l*4].DataBytes {
			t.Fatalf("level %d: reseeded 95%% (%d B) above max (%d B)", l, pr[l*4+3].DataBytes, pr[l*4].DataBytes)
		}
	}
}

func TestNewRejectsBadReseedWidth(t *testing.T) {
	cfg := stumps.Config{Chains: 4, ChainLen: 4, Seed: 1}
	c := netlist.ScanCUT(1, 4, 4, 2)
	if _, err := New(c, Options{Scan: cfg, ReseedWidth: 1}); err == nil {
		t.Fatal("reseed width 1 accepted")
	}
}

// TestMeasureTransitionCoverage: the optional transition-fault metric
// grows with the PRP count and stays below stuck-at coverage.
func TestMeasureTransitionCoverage(t *testing.T) {
	cfg := stumps.Config{Chains: 8, ChainLen: 10, Seed: 17, WindowPatterns: 32, TestClockHz: 40e6}
	c := netlist.ScanCUT(5, cfg.Chains, cfg.ChainLen, 4)
	g, err := New(c, Options{Scan: cfg, MaxBacktracks: 100, MeasureTransition: true})
	if err != nil {
		t.Fatal(err)
	}
	profiles, err := g.Characterize([]int{64, 512}, DefaultTargets())
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range profiles {
		if p.TransitionCov <= 0 || p.TransitionCov >= 1 {
			t.Fatalf("profile %d transition coverage = %v", p.Number, p.TransitionCov)
		}
		if p.TransitionCov >= p.Coverage {
			t.Fatalf("profile %d: transition %v not below stuck-at %v", p.Number, p.TransitionCov, p.Coverage)
		}
	}
	if profiles[4].TransitionCov <= profiles[0].TransitionCov {
		t.Fatalf("transition coverage did not grow with PRPs: %v -> %v",
			profiles[0].TransitionCov, profiles[4].TransitionCov)
	}
	// Without the option the field stays zero.
	g2, err := New(c, Options{Scan: cfg})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := g2.Characterize([]int{64}, DefaultTargets())
	if err != nil {
		t.Fatal(err)
	}
	if p2[0].TransitionCov != 0 {
		t.Fatalf("unsolicited transition coverage %v", p2[0].TransitionCov)
	}
}
