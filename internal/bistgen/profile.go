// Package bistgen characterizes mixed-mode BIST sessions into the test
// profiles of the paper's Table I: for a number of pseudo-random
// patterns (PRPs) and a fault-coverage target, it measures the achieved
// stuck-at coverage c(b), the session runtime l(b), and the size s(b)
// of the encoded deterministic test data plus response data.
//
// The paper derives 36 profiles (9 PRP levels × 4 coverage variants)
// for a proprietary Infineon automotive processor; this package
// reproduces the same characterization flow on synthetic scan circuits
// (see DESIGN.md substitution notes) with real LFSR fault simulation
// and PODEM top-off.
package bistgen

import "fmt"

// Profile is one selectable BIST program, matching a row of Table I.
type Profile struct {
	Number      int     // 1-based profile number
	PRPs        int     // pseudo-random patterns applied
	Coverage    float64 // achieved stuck-at fault coverage, in [0,1]
	RuntimeMS   float64 // session runtime l(b) in milliseconds
	DataBytes   int64   // s(b): encoded deterministic + response data
	DetPatterns int     // deterministic top-off patterns applied
	CareBits    int     // total specified bits over all top-off cubes
	Target      string  // "max", "98%", "95%"

	// TransitionCov is the broadside transition-fault coverage of the
	// pseudo-random phase, in [0,1]. Zero unless
	// Options.MeasureTransition is set; the paper notes its diagnosis is
	// "not limited to" the stuck-at model.
	TransitionCov float64
}

// String renders the profile like a Table I row.
func (p Profile) String() string {
	return fmt.Sprintf("profile %2d: %7d PRPs  c=%6.2f%%  l=%9.2f ms  s=%9d B (%s, %d det)",
		p.Number, p.PRPs, p.Coverage*100, p.RuntimeMS, p.DataBytes, p.Target, p.DetPatterns)
}

// TargetSpec selects one coverage variant per PRP level.
type TargetSpec struct {
	Name     string
	Coverage float64 // 0 means "maximum achievable"
	// Relative interprets Coverage as a fraction of the maximum
	// achievable coverage of the full top-off run rather than an
	// absolute value. The paper's 98 %/95 % targets are absolute because
	// its industrial CUT tops out near 99.9 %; synthetic random-logic
	// CUTs carry more redundancy, so relative targets preserve the
	// Table I shape independent of the CUT's testability ceiling.
	Relative bool
	FillSeed int64 // X-fill seed; distinct seeds give the paper's A/B max variants
}

// DefaultTargets reproduces Table I's four variants per PRP level: two
// maximum-coverage runs with different X-fill (rows like 1 and 2), a
// 98 % target and a 95 % target (relative to the achievable maximum).
func DefaultTargets() []TargetSpec {
	return []TargetSpec{
		{Name: "max", Coverage: 0, FillSeed: 101},
		{Name: "max", Coverage: 0, FillSeed: 202},
		{Name: "98%", Coverage: 0.98, Relative: true, FillSeed: 101},
		{Name: "95%", Coverage: 0.95, Relative: true, FillSeed: 101},
	}
}

// PaperPRPLevels are the nine pseudo-random pattern counts of Table I.
var PaperPRPLevels = []int{500, 1000, 5000, 10000, 20000, 50000, 100000, 200000, 500000}

// encodedCubeBytes returns the storage cost of one deterministic test
// cube of length nInputs with the given number of care bits. Two
// encodings compete and the smaller wins:
//
//   - raw bitmap: one bit per scan cell plus a one-byte header;
//   - sparse care-bit list: a two-byte count plus a two-byte
//     (position, value) record per care bit — profitable for the
//     lightly specified cubes late in a top-off run.
func encodedCubeBytes(nInputs, careBits int) int {
	raw := 1 + (nInputs+7)/8
	sparse := 2 + 2*careBits
	if sparse < raw {
		return sparse
	}
	return raw
}
