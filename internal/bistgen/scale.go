package bistgen

// CUTDims are the structural dimensions a profile is measured on or
// scaled to.
type CUTDims struct {
	ScanCells int // total scan cells (inputs of the full-scan core)
	ChainLen  int // longest chain, dominates per-pattern shift time
	Faults    int // collapsed fault population
}

// PaperCUT is the Infineon automotive processor of the case study:
// 371,900 collapsed faults, 100 scan chains with a maximum length of
// 77, tested at 40 MHz.
var PaperCUT = CUTDims{ScanCells: 100 * 77, ChainLen: 77, Faults: 371900}

// ScaleToCUT linearly extrapolates a profile measured on dimensions
// `from` to a CUT of dimensions `to`. The model keeps the pattern
// counts and coverage and scales the structure-dependent quantities:
//
//   - the deterministic cube count grows with the fault population, and
//     each cube's storage with the scan cell count, so the deterministic
//     data volume scales with both ratios;
//   - per-pattern scan time grows with the chain length.
//
// It is the documented substitution (DESIGN.md) that maps synthetic-CUT
// measurements onto the paper's proprietary processor; the qualitative
// PRP-vs-data tradeoff is preserved because only per-unit costs change.
func ScaleToCUT(p Profile, from, to CUTDims) Profile {
	if from.ScanCells <= 0 || from.Faults <= 0 || from.ChainLen <= 0 {
		return p
	}
	cellRatio := float64(to.ScanCells) / float64(from.ScanCells)
	faultRatio := float64(to.Faults) / float64(from.Faults)
	chainRatio := float64(to.ChainLen+1) / float64(from.ChainLen+1)

	out := p
	out.DataBytes = int64(float64(p.DataBytes) * cellRatio * faultRatio)
	out.RuntimeMS = p.RuntimeMS * chainRatio
	out.DetPatterns = int(float64(p.DetPatterns) * faultRatio)
	out.CareBits = int(float64(p.CareBits) * cellRatio * faultRatio)
	return out
}
