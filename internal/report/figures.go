package report

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/bistgen"
	"repro/internal/core"
)

// WriteTableI prints profiles in the layout of the paper's Table I.
func WriteTableI(w io.Writer, profiles []bistgen.Profile) {
	rows := make([][]string, len(profiles))
	for i, p := range profiles {
		rows[i] = []string{
			fmt.Sprintf("%d", p.Number),
			fmt.Sprintf("%d", p.PRPs),
			fmt.Sprintf("%.2f", p.Coverage*100),
			fmt.Sprintf("%.2f", p.RuntimeMS),
			fmt.Sprintf("%d", p.DataBytes),
			p.Target,
		}
	}
	Table(w, []string{"profile", "PRPs", "c [%]", "l [ms]", "s [Bytes]", "target"}, rows)
}

// WriteFig5 renders the cost-vs-quality Pareto front with the paper's
// marker convention: '*' for shut-off ≤ threshold, '^' beyond it
// (Fig. 5 uses ● and ▲ at 20 s).
func WriteFig5(w io.Writer, res *core.Result, thresholdMS float64) {
	fast, slow := res.SplitByShutOff(thresholdMS)
	var pts []Point
	for _, s := range fast {
		pts = append(pts, Point{X: s.Objectives.CostTotal, Y: s.Objectives.TestQuality * 100, Marker: '*'})
	}
	for _, s := range slow {
		pts = append(pts, Point{X: s.Objectives.CostTotal, Y: s.Objectives.TestQuality * 100, Marker: '^'})
	}
	title := fmt.Sprintf("Fig. 5: %d implementations — monetary costs vs test quality ('*' shut-off <= %.0f s, '^' above)",
		len(res.Solutions), thresholdMS/1000)
	Scatter(w, title, "monetary costs", "test quality [%]", pts, 72, 24)
	fmt.Fprintf(w, "\n  %d implementations with shut-off <= %.0f s, %d above\n",
		len(fast), thresholdMS/1000, len(slow))
}

// PickFig6 selects up to n representative Pareto solutions spanning the
// quality axis (akin to the seven marked implementations of Fig. 6),
// ordered by ascending test quality.
func PickFig6(res *core.Result, n int) []core.Solution {
	if n <= 0 {
		n = 7
	}
	sols := append([]core.Solution(nil), res.Solutions...)
	// Only diagnostic solutions are interesting here.
	var withBIST []core.Solution
	for _, s := range sols {
		if s.Objectives.TestQuality > 0 {
			withBIST = append(withBIST, s)
		}
	}
	sort.Slice(withBIST, func(i, j int) bool {
		return withBIST[i].Objectives.TestQuality < withBIST[j].Objectives.TestQuality
	})
	if len(withBIST) <= n {
		return withBIST
	}
	out := make([]core.Solution, 0, n)
	for k := 0; k < n; k++ {
		idx := k * (len(withBIST) - 1) / (n - 1)
		out = append(out, withBIST[idx])
	}
	return out
}

// WriteFig6 prints the gateway-vs-distributed memory table and the
// log-scale shut-off times of the selected implementations.
func WriteFig6(w io.Writer, sols []core.Solution) {
	rows := make([][]string, len(sols))
	for i, s := range sols {
		ms := core.MemorySplitOf(s)
		shut := "inf"
		if !math.IsInf(ms.ShutOffMS, 1) {
			shut = fmt.Sprintf("%.3f", ms.ShutOffMS/1000)
		}
		logShut := "inf"
		if ms.ShutOffMS > 0 && !math.IsInf(ms.ShutOffMS, 1) {
			logShut = fmt.Sprintf("%.2f", math.Log10(ms.ShutOffMS/1000))
		}
		rows[i] = []string{
			fmt.Sprintf("%d", i+1),
			fmt.Sprintf("%.1f", s.Objectives.TestQuality*100),
			fmt.Sprintf("%.0f", s.Objectives.CostTotal),
			fmt.Sprintf("%d", ms.GatewayBytes),
			fmt.Sprintf("%d", ms.DistributedBytes),
			shut,
			logShut,
		}
	}
	fmt.Fprintln(w, "Fig. 6: gateway vs distributed diagnosis memory of the marked implementations")
	Table(w, []string{"impl", "quality [%]", "costs", "gw mem [B]", "dist mem [B]", "shut-off [s]", "log10(s)"}, rows)
}

// WriteSummary prints the headline metrics of a run (Section IV-B).
func WriteSummary(w io.Writer, res *core.Result) {
	fmt.Fprintf(w, "evaluated implementations: %d in %v (%.1f evals/s)\n",
		res.Evaluations, res.Elapsed.Round(1_000_000), res.EvalsPerSec())
	fmt.Fprintf(w, "Pareto-optimal implementations: %d\n", len(res.Solutions))
	base := res.BaselineCost()
	fmt.Fprintf(w, "baseline (no-BIST) cost: %.1f\n", base)
	if sol, ok := res.BestQualityWithin(base, 0.037); ok {
		over := (sol.Objectives.CostTotal/base - 1) * 100
		fmt.Fprintf(w, "headline: %.1f%% test quality for %.1f%% extra cost (paper: 80.7%% for <3.7%%)\n",
			sol.Objectives.TestQuality*100, over)
	} else {
		fmt.Fprintln(w, "headline: no solution within 3.7% of baseline cost")
	}
}
