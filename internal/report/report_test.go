package report

import (
	"math"
	"strings"
	"testing"

	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/moea"
)

func TestTableAlignment(t *testing.T) {
	var b strings.Builder
	Table(&b, []string{"a", "long-header"}, [][]string{{"1", "2"}, {"333", "4"}})
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "a    long-header") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator = %q", lines[1])
	}
}

func TestScatterBasics(t *testing.T) {
	var b strings.Builder
	pts := []Point{{X: 0, Y: 0, Marker: '*'}, {X: 10, Y: 5, Marker: '^'}}
	Scatter(&b, "title", "xs", "ys", pts, 40, 10)
	out := b.String()
	if !strings.Contains(out, "title") || !strings.Contains(out, "*") || !strings.Contains(out, "^") {
		t.Fatalf("scatter output missing parts:\n%s", out)
	}
	// Infinite points must not crash or be plotted.
	var b2 strings.Builder
	Scatter(&b2, "t", "x", "y", []Point{{X: math.Inf(1), Y: 1, Marker: 'x'}}, 40, 10)
	if !strings.Contains(b2.String(), "no finite points") {
		t.Fatalf("inf handling:\n%s", b2.String())
	}
	var b3 strings.Builder
	Scatter(&b3, "t", "x", "y", nil, 40, 10)
	if !strings.Contains(b3.String(), "no points") {
		t.Fatal("empty handling")
	}
}

func TestWriteTableI(t *testing.T) {
	var b strings.Builder
	WriteTableI(&b, casestudy.TableI())
	out := b.String()
	if !strings.Contains(out, "2399185") || !strings.Contains(out, "99.83") {
		t.Fatalf("Table I output missing row 1 data:\n%s", out[:200])
	}
	if strings.Count(out, "\n") != 38 { // header + sep + 36 rows
		t.Fatalf("row count wrong:\n%s", out)
	}
}

func runSmall(t *testing.T) *core.Result {
	t.Helper()
	spec, err := casestudy.Small(3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.NewExplorer(spec, dec).Run(moea.Options{PopSize: 24, Generations: 15, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestWriteFig5AndSummary(t *testing.T) {
	res := runSmall(t)
	var b strings.Builder
	WriteFig5(&b, res, 20_000)
	if !strings.Contains(b.String(), "Fig. 5") {
		t.Fatal("missing title")
	}
	var s strings.Builder
	WriteSummary(&s, res)
	out := s.String()
	if !strings.Contains(out, "Pareto-optimal implementations") || !strings.Contains(out, "baseline") {
		t.Fatalf("summary:\n%s", out)
	}
}

func TestPickFig6AndWrite(t *testing.T) {
	res := runSmall(t)
	sols := PickFig6(res, 7)
	if len(sols) == 0 {
		t.Fatal("no Fig.6 solutions")
	}
	if len(sols) > 7 {
		t.Fatalf("picked %d > 7", len(sols))
	}
	for i := 1; i < len(sols); i++ {
		if sols[i].Objectives.TestQuality < sols[i-1].Objectives.TestQuality {
			t.Fatal("not ordered by quality")
		}
	}
	var b strings.Builder
	WriteFig6(&b, sols)
	if !strings.Contains(b.String(), "gw mem [B]") {
		t.Fatalf("Fig.6 output:\n%s", b.String())
	}
}

func TestPickFig6DefaultsAndSmallSets(t *testing.T) {
	res := runSmall(t)
	all := PickFig6(res, 0)
	if len(all) > 7 {
		t.Fatalf("default pick = %d", len(all))
	}
	// n larger than available: returns all with BIST.
	many := PickFig6(res, 1000)
	for _, s := range many {
		if s.Objectives.TestQuality == 0 {
			t.Fatal("no-BIST solution picked for Fig.6")
		}
	}
}

func TestWriteCSV(t *testing.T) {
	res := runSmall(t)
	var b strings.Builder
	if err := WriteCSV(&b, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != len(res.Solutions)+1 {
		t.Fatalf("rows = %d, want %d", len(lines), len(res.Solutions)+1)
	}
	if !strings.HasPrefix(lines[0], "cost_total,test_quality,shutoff_ms") {
		t.Fatalf("header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if n := strings.Count(line, ","); n != 4 {
			t.Fatalf("row %q has %d commas", line, n)
		}
	}
}

func TestFrontStatsAndKnee(t *testing.T) {
	res := runSmall(t)
	st := ComputeFrontStats(res)
	if st.N != len(res.Solutions) {
		t.Fatalf("N = %d", st.N)
	}
	if st.CostMin > st.CostMedian || st.CostMedian > st.CostMax {
		t.Fatalf("cost ordering: %+v", st)
	}
	if st.QualityMin > st.QualityMax || st.QualityMax > 1 {
		t.Fatalf("quality stats: %+v", st)
	}
	knee, ok := KneePoint(res)
	if !ok {
		t.Fatal("no knee")
	}
	// The knee must be a member of the front.
	found := false
	for _, s := range res.Solutions {
		if s.Objectives == knee.Objectives {
			found = true
		}
	}
	if !found {
		t.Fatal("knee not on the front")
	}
	var b strings.Builder
	WriteFrontStats(&b, res)
	if !strings.Contains(b.String(), "knee point") {
		t.Fatalf("stats output:\n%s", b.String())
	}
	// Empty result handled.
	var e strings.Builder
	WriteFrontStats(&e, &core.Result{})
	if !strings.Contains(e.String(), "0 solutions") {
		t.Fatal("empty handling")
	}
	if _, ok := KneePoint(&core.Result{}); ok {
		t.Fatal("knee on empty front")
	}
}
