package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
)

// WriteCSV exports the Pareto front for external plotting: one row per
// solution with the objectives and the Fig. 6 memory split. Infinite
// times are emitted as the string "inf". Robust runs (four objectives)
// gain the robust_ms and robust_miss_prob columns; classic runs keep
// the exact five-column format, so existing consumers and byte-level
// resume comparisons are unaffected.
func WriteCSV(w io.Writer, res *core.Result) error {
	robust := false
	for _, s := range res.Solutions {
		if s.Objectives.RobustOn {
			robust = true
			break
		}
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()
	header := []string{
		"cost_total", "test_quality", "shutoff_ms", "gateway_bytes", "distributed_bytes",
	}
	if robust {
		header = append(header, "robust_ms", "robust_miss_prob")
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, s := range res.Solutions {
		ms := core.MemorySplitOf(s)
		row := []string{
			fmt.Sprintf("%.6f", s.Objectives.CostTotal),
			fmt.Sprintf("%.6f", s.Objectives.TestQuality),
			finiteMS(s.Objectives.ShutOffMS),
			fmt.Sprintf("%d", ms.GatewayBytes),
			fmt.Sprintf("%d", ms.DistributedBytes),
		}
		if robust {
			row = append(row, finiteMS(s.Objectives.RobustMS), fmt.Sprintf("%.6g", s.Objectives.RobustMissProb))
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// finiteMS formats a millisecond value, mapping +Inf to "inf".
func finiteMS(v float64) string {
	if math.IsInf(v, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.6f", v)
}
