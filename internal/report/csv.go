package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"

	"repro/internal/core"
)

// WriteCSV exports the Pareto front for external plotting: one row per
// solution with the three objectives and the Fig. 6 memory split.
// Infinite shut-off times are emitted as the string "inf".
func WriteCSV(w io.Writer, res *core.Result) error {
	cw := csv.NewWriter(w)
	defer cw.Flush()
	if err := cw.Write([]string{
		"cost_total", "test_quality", "shutoff_ms", "gateway_bytes", "distributed_bytes",
	}); err != nil {
		return err
	}
	for _, s := range res.Solutions {
		ms := core.MemorySplitOf(s)
		shut := "inf"
		if !math.IsInf(s.Objectives.ShutOffMS, 1) {
			shut = fmt.Sprintf("%.6f", s.Objectives.ShutOffMS)
		}
		if err := cw.Write([]string{
			fmt.Sprintf("%.6f", s.Objectives.CostTotal),
			fmt.Sprintf("%.6f", s.Objectives.TestQuality),
			shut,
			fmt.Sprintf("%d", ms.GatewayBytes),
			fmt.Sprintf("%d", ms.DistributedBytes),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
