// Package report renders exploration results as text: aligned tables,
// ASCII scatter plots for the paper's Fig. 5 and Fig. 6, and the
// Table I profile listing.
package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table writes rows under headers with aligned columns.
func Table(w io.Writer, headers []string, rows [][]string) {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Point is one scatter mark.
type Point struct {
	X, Y   float64
	Marker rune
}

// Scatter renders an ASCII scatter plot of the points into a
// width×height character grid with axis annotations. Points sharing a
// cell keep the marker drawn last.
func Scatter(w io.Writer, title, xlabel, ylabel string, pts []Point, width, height int) {
	if width < 10 {
		width = 60
	}
	if height < 5 {
		height = 20
	}
	fmt.Fprintln(w, title)
	if len(pts) == 0 {
		fmt.Fprintln(w, "  (no points)")
		return
	}
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, p := range pts {
		if math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) || math.IsNaN(p.X) || math.IsNaN(p.Y) {
			continue
		}
		minX, maxX = math.Min(minX, p.X), math.Max(maxX, p.X)
		minY, maxY = math.Min(minY, p.Y), math.Max(maxY, p.Y)
	}
	if minX > maxX {
		fmt.Fprintln(w, "  (no finite points)")
		return
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]rune, height)
	for r := range grid {
		grid[r] = make([]rune, width)
		for c := range grid[r] {
			grid[r][c] = ' '
		}
	}
	for _, p := range pts {
		if math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) || math.IsNaN(p.X) || math.IsNaN(p.Y) {
			continue
		}
		col := int((p.X - minX) / (maxX - minX) * float64(width-1))
		row := height - 1 - int((p.Y-minY)/(maxY-minY)*float64(height-1))
		grid[row][col] = p.Marker
	}
	fmt.Fprintf(w, "  %s\n", ylabel)
	for r, line := range grid {
		label := "        "
		if r == 0 {
			label = fmt.Sprintf("%8.3g", maxY)
		} else if r == height-1 {
			label = fmt.Sprintf("%8.3g", minY)
		}
		fmt.Fprintf(w, "%s |%s\n", label, string(line))
	}
	fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", width))
	fmt.Fprintf(w, "%s  %-12.6g%s%12.6g  (%s)\n", strings.Repeat(" ", 8),
		minX, strings.Repeat(" ", max(0, width-26)), maxX, xlabel)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
