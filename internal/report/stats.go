package report

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/core"
)

// FrontStats summarizes the Pareto front per objective.
type FrontStats struct {
	N int
	// Min/Median/Max per objective.
	CostMin, CostMedian, CostMax          float64
	QualityMin, QualityMedian, QualityMax float64
	// Shut-off statistics are computed over finite values only.
	ShutMinMS, ShutMedianMS, ShutMaxMS float64
	InfiniteShutOff                    int
}

// ComputeFrontStats aggregates the solutions of a run.
func ComputeFrontStats(res *core.Result) FrontStats {
	st := FrontStats{N: len(res.Solutions)}
	if st.N == 0 {
		return st
	}
	var costs, quals, shuts []float64
	for _, s := range res.Solutions {
		costs = append(costs, s.Objectives.CostTotal)
		quals = append(quals, s.Objectives.TestQuality)
		if math.IsInf(s.Objectives.ShutOffMS, 1) {
			st.InfiniteShutOff++
		} else {
			shuts = append(shuts, s.Objectives.ShutOffMS)
		}
	}
	st.CostMin, st.CostMedian, st.CostMax = summarize(costs)
	st.QualityMin, st.QualityMedian, st.QualityMax = summarize(quals)
	if len(shuts) > 0 {
		st.ShutMinMS, st.ShutMedianMS, st.ShutMaxMS = summarize(shuts)
	}
	return st
}

func summarize(v []float64) (min, median, max float64) {
	sort.Float64s(v)
	return v[0], v[len(v)/2], v[len(v)-1]
}

// KneePoint returns the solution with the best marginal
// quality-per-cost tradeoff: the point maximizing the normalized
// distance to the (max cost, min quality) anti-ideal corner in the
// cost/quality plane — a standard single pick when the designer wants
// "the" compromise implementation.
func KneePoint(res *core.Result) (core.Solution, bool) {
	if len(res.Solutions) == 0 {
		return core.Solution{}, false
	}
	st := ComputeFrontStats(res)
	costSpan := st.CostMax - st.CostMin
	qualSpan := st.QualityMax - st.QualityMin
	if costSpan <= 0 {
		costSpan = 1
	}
	if qualSpan <= 0 {
		qualSpan = 1
	}
	best := -math.MaxFloat64
	var pick core.Solution
	for _, s := range res.Solutions {
		dc := (st.CostMax - s.Objectives.CostTotal) / costSpan
		dq := (s.Objectives.TestQuality - st.QualityMin) / qualSpan
		score := dc + dq
		if score > best {
			best = score
			pick = s
		}
	}
	return pick, true
}

// WriteFrontStats prints the aggregate view of a run.
func WriteFrontStats(w io.Writer, res *core.Result) {
	st := ComputeFrontStats(res)
	fmt.Fprintf(w, "front statistics over %d solutions:\n", st.N)
	if st.N == 0 {
		return
	}
	fmt.Fprintf(w, "  costs:        min %.1f  median %.1f  max %.1f\n", st.CostMin, st.CostMedian, st.CostMax)
	fmt.Fprintf(w, "  test quality: min %.1f%%  median %.1f%%  max %.1f%%\n",
		st.QualityMin*100, st.QualityMedian*100, st.QualityMax*100)
	fmt.Fprintf(w, "  shut-off:     min %.3fs  median %.3fs  max %.3fs  (+%d infinite)\n",
		st.ShutMinMS/1000, st.ShutMedianMS/1000, st.ShutMaxMS/1000, st.InfiniteShutOff)
	if knee, ok := KneePoint(res); ok {
		fmt.Fprintf(w, "  knee point:   %.1f%% quality at cost %.1f, shut-off %.3fs\n",
			knee.Objectives.TestQuality*100, knee.Objectives.CostTotal, knee.Objectives.ShutOffMS/1000)
	}
}
