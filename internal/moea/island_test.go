package moea

import (
	"context"
	"path/filepath"
	"testing"
)

func archivesEqual(t *testing.T, a, b []*Individual, label string) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: archive size %d vs %d", label, len(a), len(b))
	}
	for i := range a {
		if !equalObjectives(a[i].Objectives, b[i].Objectives) {
			t.Fatalf("%s: archive[%d] = %v vs %v", label, i, a[i].Objectives, b[i].Objectives)
		}
		for j := range a[i].Genotype {
			if a[i].Genotype[j] != b[i].Genotype[j] {
				t.Fatalf("%s: archive[%d] genotype differs at gene %d", label, i, j)
			}
		}
	}
}

// TestIslandsSingleIslandMatchesPlainRun: a 1-island campaign is the
// plain optimizer run under a different driver — same seed stream, same
// generation schedule — so the fronts must be bit-identical.
func TestIslandsSingleIslandMatchesPlainRun(t *testing.T) {
	p := zdt1{n: 10}
	opt := Options{PopSize: 24, Generations: 25, Seed: 9}
	plain, err := Run(context.Background(), p, opt)
	if err != nil {
		t.Fatal(err)
	}
	isl, err := RunIslands(context.Background(), p, opt, IslandOptions{Islands: 1, MigrateEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	archivesEqual(t, plain.Archive, isl.Archive, "islands=1 vs plain")
	if plain.Evaluations != isl.Evaluations {
		t.Fatalf("evaluations %d vs %d", plain.Evaluations, isl.Evaluations)
	}
}

// TestIslandsDeterministicAcrossWorkers is the island acceptance gate:
// for a fixed (seed, islands, migration) tuple the merged front must be
// bit-identical at every worker count.
func TestIslandsDeterministicAcrossWorkers(t *testing.T) {
	p := zdt1{n: 10}
	iopt := IslandOptions{Islands: 3, MigrateEvery: 5, Migrants: 3}
	var ref *Result
	for _, w := range []int{1, 2, 4, 8} {
		opt := Options{PopSize: 16, Generations: 20, Seed: 5, Workers: w}
		res, err := RunIslands(context.Background(), p, opt, iopt)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if ref == nil {
			ref = res
			continue
		}
		archivesEqual(t, ref.Archive, res.Archive, "worker sweep")
		if ref.Evaluations != res.Evaluations {
			t.Fatalf("workers=%d: evaluations %d, want %d", w, res.Evaluations, ref.Evaluations)
		}
	}
}

// TestIslandsMigrationChangesSearch: migration must actually couple the
// islands — disabling it (by pushing the epoch past the budget) must
// yield a different search trajectory than migrating every 5
// generations for at least one island count/seed combination.
func TestIslandsMigrationChangesSearch(t *testing.T) {
	p := zdt1{n: 10}
	opt := Options{PopSize: 16, Generations: 30, Seed: 3}
	with, err := RunIslands(context.Background(), p, opt, IslandOptions{Islands: 4, MigrateEvery: 5, Migrants: 4})
	if err != nil {
		t.Fatal(err)
	}
	without, err := RunIslands(context.Background(), p, opt, IslandOptions{Islands: 4, MigrateEvery: 30, Migrants: 4})
	if err != nil {
		t.Fatal(err)
	}
	same := len(with.Archive) == len(without.Archive)
	if same {
		for i := range with.Archive {
			if !equalObjectives(with.Archive[i].Objectives, without.Archive[i].Objectives) {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("migration had no effect on the merged front")
	}
}

// TestIslandCheckpointResume: resuming a campaign from any emitted
// island checkpoint must reproduce the uninterrupted merged front bit
// for bit, including across a worker-count change.
func TestIslandCheckpointResume(t *testing.T) {
	p := zdt1{n: 10}
	iopt := IslandOptions{Islands: 3, MigrateEvery: 5, Migrants: 2}
	opt := Options{PopSize: 16, Generations: 20, Seed: 11, Workers: 2}

	full, err := RunIslands(context.Background(), p, opt, iopt)
	if err != nil {
		t.Fatal(err)
	}

	var cps []*IslandCheckpoint
	capture := iopt
	capture.OnCheckpoint = func(cp *IslandCheckpoint) error { cps = append(cps, cp); return nil }
	if _, err := RunIslands(context.Background(), p, opt, capture); err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no island checkpoints emitted")
	}

	path := filepath.Join(t.TempDir(), "island-cp.json")
	for i, cp := range cps {
		if err := cp.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := ReadIslandCheckpointFile(path)
		if err != nil {
			t.Fatal(err)
		}
		resumeOpt := opt
		resumeOpt.Workers = 4 // resume on a different worker count
		resumeIopt := iopt
		resumeIopt.Resume = loaded
		res, err := RunIslands(context.Background(), p, resumeOpt, resumeIopt)
		if err != nil {
			t.Fatalf("resume from checkpoint %d: %v", i, err)
		}
		archivesEqual(t, full.Archive, res.Archive, "resumed campaign")
		if res.Evaluations != full.Evaluations {
			t.Fatalf("resume from checkpoint %d: evaluations %d, want %d", i, res.Evaluations, full.Evaluations)
		}
	}
}

// TestIslandCancellationCheckpointResume: a cancelled campaign emits a
// final checkpoint; resuming it completes to the uninterrupted front.
func TestIslandCancellationCheckpointResume(t *testing.T) {
	p := zdt1{n: 10}
	iopt := IslandOptions{Islands: 2, MigrateEvery: 4, Migrants: 2}
	opt := Options{PopSize: 16, Generations: 12, Seed: 7}

	full, err := RunIslands(context.Background(), p, opt, iopt)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	evals := 0
	counting := countingProblem{p: p, evals: &evals, cancelAt: 6 * 16, cancel: cancel}
	var final *IslandCheckpoint
	cancelIopt := iopt
	cancelIopt.OnCheckpoint = func(cp *IslandCheckpoint) error { final = cp; return nil }
	_, err = RunIslands(ctx, counting, opt, cancelIopt)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if final == nil {
		t.Fatal("no final checkpoint on cancellation")
	}

	resumeIopt := iopt
	resumeIopt.Resume = final
	res, err := RunIslands(context.Background(), p, opt, resumeIopt)
	if err != nil {
		t.Fatal(err)
	}
	archivesEqual(t, full.Archive, res.Archive, "resume after cancellation")
}

// countingProblem cancels its context after a fixed number of
// evaluations, forcing a mid-epoch stop at an uneven island position.
type countingProblem struct {
	p        Problem
	evals    *int
	cancelAt int
	cancel   context.CancelFunc
}

func (c countingProblem) GenotypeLen() int { return c.p.GenotypeLen() }

func (c countingProblem) Evaluate(g []float64) (Objectives, any) {
	*c.evals++
	if *c.evals == c.cancelAt {
		c.cancel()
	}
	return c.p.Evaluate(g)
}

func TestIslandSeedDerivation(t *testing.T) {
	if IslandSeed(42, 0) != 42 {
		t.Fatal("island 0 must keep the campaign seed")
	}
	seen := map[int64]bool{}
	for i := 0; i < 16; i++ {
		s := IslandSeed(42, i)
		if seen[s] {
			t.Fatalf("island seed collision at island %d", i)
		}
		seen[s] = true
	}
}

func TestSelectMigrantsSpansFront(t *testing.T) {
	var archive []*Individual
	for i := 0; i < 9; i++ {
		archive = append(archive, &Individual{Objectives: Objectives{float64(i), float64(8 - i)}})
	}
	m := selectMigrants(archive, 3)
	if len(m) != 3 {
		t.Fatalf("got %d migrants, want 3", len(m))
	}
	if m[0].Objectives[0] != 0 || m[1].Objectives[0] != 4 || m[2].Objectives[0] != 8 {
		t.Fatalf("migrants not evenly spaced: %v %v %v", m[0].Objectives, m[1].Objectives, m[2].Objectives)
	}
	if got := selectMigrants(archive, 1); len(got) != 1 || got[0].Objectives[0] != 0 {
		t.Fatalf("k=1 migrant = %v", got)
	}
	if got := selectMigrants(archive, 100); len(got) != len(archive) {
		t.Fatalf("k>len returned %d", len(got))
	}
	if got := selectMigrants(nil, 3); got != nil {
		t.Fatalf("empty archive returned %v", got)
	}
}

// TestIslandResumeValidation: topology mismatches are rejected instead
// of silently producing a different campaign.
func TestIslandResumeValidation(t *testing.T) {
	p := zdt1{n: 10}
	iopt := IslandOptions{Islands: 2, MigrateEvery: 4, Migrants: 2}
	opt := Options{PopSize: 16, Generations: 12, Seed: 7}
	var cp *IslandCheckpoint
	capture := iopt
	capture.OnCheckpoint = func(c *IslandCheckpoint) error { cp = c; return nil }
	if _, err := RunIslands(context.Background(), p, opt, capture); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}
	bad := []struct {
		name string
		opt  Options
		iopt IslandOptions
	}{
		{"islands", opt, IslandOptions{Islands: 3, MigrateEvery: 4, Migrants: 2}},
		{"migrate-every", opt, IslandOptions{Islands: 2, MigrateEvery: 5, Migrants: 2}},
		{"migrants", opt, IslandOptions{Islands: 2, MigrateEvery: 4, Migrants: 3}},
		{"seed", Options{PopSize: 16, Generations: 12, Seed: 8}, iopt},
	}
	for _, tc := range bad {
		ro := tc.iopt
		ro.Resume = cp
		if _, err := RunIslands(context.Background(), p, tc.opt, ro); err == nil {
			t.Fatalf("%s mismatch accepted", tc.name)
		}
	}
}
