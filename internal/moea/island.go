package moea

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/obs"
)

// ErrCheckpointCorrupt marks a checkpoint or shard file that exists
// but cannot be trusted — unparseable JSON, wrong format or version,
// or internally inconsistent state. Callers distinguish it (errors.Is)
// from a merely missing file: missing means start fresh, corrupt means
// stop and name the file rather than silently discarding progress.
var ErrCheckpointCorrupt = errors.New("checkpoint corrupt")

// Island checkpoint file format identifiers. The file embeds one
// standard Checkpoint (the PR 3 single-run format) per island, so every
// island's state is individually resumable with the existing machinery.
const (
	IslandCheckpointFormat  = "eedse-dse-island-checkpoint"
	IslandCheckpointVersion = 1
)

// IslandOptions configure an island-model NSGA-II campaign: N
// independent populations advancing in lock-step epochs of MigrateEvery
// generations, exchanging archive representatives on a fixed ring after
// every epoch, and merging their archives deterministically at the end.
type IslandOptions struct {
	// Islands is the number of independent populations (minimum 1). Each
	// island runs the base Options with a seed derived from (Seed,
	// island); island 0 uses the base seed unchanged, so a 1-island
	// campaign reproduces the plain Run front bit for bit.
	Islands int
	// MigrateEvery is the epoch length in generations between migrations
	// (default 10). Migration happens at every epoch boundary except the
	// final one.
	MigrateEvery int
	// Migrants is the number of archive representatives each island sends
	// to its ring successor per migration (default 4, capped at half the
	// receiving population).
	Migrants int
	// Resume restores the whole campaign from an island checkpoint. The
	// topology (islands, epoch length, migrant count) and every embedded
	// island state must match the options.
	Resume *IslandCheckpoint
	// OnCheckpoint, when non-nil, receives a campaign snapshot after
	// every migration barrier and once more when the context is
	// cancelled. A non-nil return aborts the run with that error.
	OnCheckpoint func(*IslandCheckpoint) error
	// OnProgress, when non-nil, receives one aggregated telemetry sample
	// per completed epoch: summed evaluation counts and the merged
	// archive of all islands.
	OnProgress func(Progress)
}

func (io IslandOptions) withDefaults() IslandOptions {
	if io.Islands < 1 {
		io.Islands = 1
	}
	if io.MigrateEvery <= 0 {
		io.MigrateEvery = 10
	}
	if io.Migrants <= 0 {
		io.Migrants = 4
	}
	return io
}

// IslandCheckpoint is a complete snapshot of an island campaign at a
// generation boundary. States holds each island's standard optimizer
// checkpoint in island order; a snapshot taken at a migration barrier
// stores the post-migration populations, so resuming proceeds straight
// into the next epoch without re-migrating.
type IslandCheckpoint struct {
	Format  string `json:"format"`
	Version int    `json:"version"`

	Seed         int64 `json:"seed"`
	Islands      int   `json:"islands"`
	MigrateEvery int   `json:"migrate_every"`
	Migrants     int   `json:"migrants"`

	States []*Checkpoint `json:"states"`
}

// check validates an island checkpoint against the campaign resuming it.
func (cp *IslandCheckpoint) check(opt Options, iopt IslandOptions) error {
	if cp.Format != IslandCheckpointFormat {
		return fmt.Errorf("moea: resume: not an island checkpoint file (format %q)", cp.Format)
	}
	if cp.Version != IslandCheckpointVersion {
		return fmt.Errorf("moea: resume: unsupported island checkpoint version %d (want %d)", cp.Version, IslandCheckpointVersion)
	}
	if cp.Islands != iopt.Islands {
		return fmt.Errorf("moea: resume: checkpoint has %d islands, run uses -islands %d", cp.Islands, iopt.Islands)
	}
	if cp.MigrateEvery != iopt.MigrateEvery {
		return fmt.Errorf("moea: resume: checkpoint migrates every %d generations, run every %d", cp.MigrateEvery, iopt.MigrateEvery)
	}
	if cp.Migrants != iopt.Migrants {
		return fmt.Errorf("moea: resume: checkpoint migrates %d individuals, run %d", cp.Migrants, iopt.Migrants)
	}
	if cp.Seed != opt.Seed {
		return fmt.Errorf("moea: resume: checkpoint seed %d does not match Seed %d", cp.Seed, opt.Seed)
	}
	if len(cp.States) != cp.Islands {
		return fmt.Errorf("moea: resume: corrupt island checkpoint: %d states for %d islands", len(cp.States), cp.Islands)
	}
	return nil
}

// WriteFile atomically writes the island checkpoint (see
// Checkpoint.WriteFile for the durability contract).
func (cp *IslandCheckpoint) WriteFile(path string) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("moea: island checkpoint: %w", err)
	}
	return writeFileAtomic(path, data)
}

// ReadIslandCheckpointFile loads an island checkpoint written by
// WriteFile.
func ReadIslandCheckpointFile(path string) (*IslandCheckpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("moea: island checkpoint: %w", err)
	}
	cp := &IslandCheckpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("moea: island checkpoint %s: %w: %v", path, ErrCheckpointCorrupt, err)
	}
	if cp.Format != IslandCheckpointFormat {
		return nil, fmt.Errorf("moea: island checkpoint %s: %w: not an island checkpoint file (format %q)", path, ErrCheckpointCorrupt, cp.Format)
	}
	if cp.Version != IslandCheckpointVersion {
		return nil, fmt.Errorf("moea: island checkpoint %s: %w: unsupported version %d (want %d)", path, ErrCheckpointCorrupt, cp.Version, IslandCheckpointVersion)
	}
	return cp, nil
}

// IslandSeed derives island i's PRNG seed from the campaign seed.
// Island 0 keeps the campaign seed, so a 1-island campaign is
// bit-identical to the plain run; the rest get decorrelated streams
// through a splitmix64 step.
func IslandSeed(seed int64, i int) int64 {
	if i == 0 {
		return seed
	}
	z := uint64(seed) + uint64(i)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// selectMigrants picks k representatives from an archive: the archive
// is ordered lexicographically by objective vector and sampled at
// evenly spaced positions, so the migrant set spans the front instead
// of clustering at one corner, and is a pure function of the archive
// contents (worker-count independent).
func selectMigrants(archive []*Individual, k int) []*Individual {
	if len(archive) == 0 || k <= 0 {
		return nil
	}
	sorted := append([]*Individual(nil), archive...)
	sort.SliceStable(sorted, func(a, b int) bool {
		oa, ob := sorted[a].Objectives, sorted[b].Objectives
		for i := range oa {
			if i >= len(ob) {
				break
			}
			if oa[i] != ob[i] {
				return oa[i] < ob[i]
			}
		}
		return len(oa) < len(ob)
	})
	if k >= len(sorted) {
		return sorted
	}
	if k == 1 {
		return sorted[:1]
	}
	out := make([]*Individual, 0, k)
	for j := 0; j < k; j++ {
		// Evenly spaced indices over [0, len-1], endpoints included;
		// strictly increasing because len(sorted) > k.
		out = append(out, sorted[j*(len(sorted)-1)/(k-1)])
	}
	return out
}

// migrateRing performs one synchronous ring migration over per-island
// population/archive slices: every island's migrant set is selected
// first (selectMigrants over its archive), then island i's migrants are
// injected into ring successor i+1 (injectMigrants worst-replacement),
// so the exchange is simultaneous and ring order cannot influence what
// is sent. Populations are mutated in place. The function is a pure
// transformation of (genotypes, objectives, order) — the in-process
// epoch loop and the orchestrator's central merge of worker shards call
// exactly this code, which is what keeps the multi-process campaign
// byte-identical to the in-process one.
func migrateRing(pops, archives [][]*Individual, migrants int) {
	n := len(pops)
	if n <= 1 {
		return
	}
	sel := make([][]*Individual, n)
	for i := range archives {
		sel[i] = selectMigrants(archives[i], migrants)
	}
	for i := range pops {
		injectMigrants(pops[i], sel[(i-1+n)%n])
	}
}

// mergeIslandArchives folds the island archives into one global
// non-dominated set. The fold visits islands in index order and each
// archive in its deterministic insertion order, so the merged front is
// a pure function of the per-island archives — independent of worker
// count and of which process hosted which island.
func mergeIslandArchives(states []*nsga2, eps []float64) []*Individual {
	var merged []*Individual
	for _, s := range states {
		merged = updateArchiveEps(merged, s.archive, eps)
	}
	return merged
}

// epochBoundary returns the generation every island advances to in the
// current epoch: the smallest MigrateEvery multiple strictly beyond the
// least-advanced island, capped at the generation budget. It is shared
// by the in-process driver and the process-sharded epoch step, so both
// compute identical epoch schedules from identical state.
func epochBoundary(minGen, migrateEvery, generations int) int {
	boundary := (minGen/migrateEvery + 1) * migrateEvery
	if boundary > generations {
		boundary = generations
	}
	return boundary
}

// buildIslandStates constructs the stepping optimizers for the
// contiguous island subset [first, first+count): each island runs the
// base options with its derived seed (IslandSeed) and no per-island
// callbacks — the campaign reports and checkpoints at the island level
// only. When resume is non-nil, island i restores from resume.States[i]
// (re-evaluating the stored genotypes exactly). opt must already carry
// defaults. Both the in-process campaign driver (RunIslands) and the
// process-sharded epoch step (EpochStep) build their islands here, so
// the two paths cannot drift apart.
func buildIslandStates(p Problem, opt Options, resume *IslandCheckpoint, first, count int, pool *evalPool) ([]*nsga2, error) {
	states := make([]*nsga2, count)
	for j := range states {
		i := first + j
		o := opt
		o.Seed = IslandSeed(opt.Seed, i)
		o.OnGeneration, o.OnProgress, o.OnCheckpoint = nil, nil, nil
		o.Resume = nil
		if resume != nil {
			o.Resume = resume.States[i]
		}
		s, err := newNSGA2(p, o, pool)
		if err != nil {
			return nil, fmt.Errorf("moea: island %d: %w", i, err)
		}
		states[j] = s
	}
	return states, nil
}

// snapshotIslands captures a full campaign checkpoint from in-memory
// island states (states must cover every island, in island order).
func snapshotIslands(states []*nsga2, opt Options, iopt IslandOptions) *IslandCheckpoint {
	cp := &IslandCheckpoint{
		Format:       IslandCheckpointFormat,
		Version:      IslandCheckpointVersion,
		Seed:         opt.Seed,
		Islands:      iopt.Islands,
		MigrateEvery: iopt.MigrateEvery,
		Migrants:     iopt.Migrants,
		States:       make([]*Checkpoint, len(states)),
	}
	for i, s := range states {
		cp.States[i] = s.snapshot()
	}
	return cp
}

// islandResult folds the island states into the campaign Result: merged
// archive (island order), summed evaluation counts, concatenated final
// populations.
func islandResult(states []*nsga2, eps []float64) *Result {
	res := &Result{Archive: mergeIslandArchives(states, eps)}
	for _, s := range states {
		res.Evaluations += s.evals
		res.FinalPopulation = append(res.FinalPopulation, s.pop...)
	}
	return res
}

// RunIslands executes an island-model NSGA-II campaign: iopt.Islands
// independent populations, each running the base Options with a derived
// seed, advancing in epochs of iopt.MigrateEvery generations. After
// every epoch (except the last) each island sends Migrants archive
// representatives to its ring successor, which replace the successor's
// worst individuals. All islands share one evaluation worker pool
// (opt.Workers goroutines total), so a campaign saturates the machine
// regardless of how generations distribute across islands.
//
// Determinism: for a fixed (Seed, Islands, MigrateEvery, Migrants)
// tuple the merged front is bit-identical at any worker count. Epoch
// barriers are synchronous and migration snapshots are taken before any
// injection, so ring order cannot leak into results.
//
// Cancellation is honored at generation boundaries: the campaign stops,
// emits a final island checkpoint through iopt.OnCheckpoint (if set),
// and returns the partial merged Result with ctx.Err(). Resuming from
// any emitted checkpoint continues to a byte-identical merged front.
func RunIslands(ctx context.Context, p Problem, opt Options, iopt IslandOptions) (*Result, error) {
	genLen := p.GenotypeLen()
	if genLen <= 0 {
		return nil, errEmptyGenotype
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults(genLen)
	iopt = iopt.withDefaults()
	if iopt.Resume != nil {
		if err := iopt.Resume.check(opt, iopt); err != nil {
			return nil, err
		}
	}

	pool := newEvalPool(p, opt.Workers)
	defer pool.close()

	states, err := buildIslandStates(p, opt, iopt.Resume, 0, iopt.Islands, pool)
	if err != nil {
		return nil, err
	}

	snapshot := func() *IslandCheckpoint { return snapshotIslands(states, opt, iopt) }
	result := func() *Result { return islandResult(states, opt.ArchiveEpsilon) }
	start := time.Now()

	for {
		// The epoch boundary: the smallest MigrateEvery multiple strictly
		// beyond the least-advanced island, capped at the generation budget.
		// After a mid-epoch resume islands may sit at different generations;
		// the inner loop advances only those short of the boundary, which
		// reproduces the uninterrupted schedule exactly.
		minGen := opt.Generations
		for _, s := range states {
			if s.gen < minGen {
				minGen = s.gen
			}
		}
		if minGen >= opt.Generations {
			break
		}
		boundary := epochBoundary(minGen, iopt.MigrateEvery, opt.Generations)
		for _, s := range states {
			for s.gen < boundary {
				if ctx.Err() != nil {
					if iopt.OnCheckpoint != nil {
						if err := iopt.OnCheckpoint(snapshot()); err != nil {
							return result(), err
						}
					}
					return result(), ctx.Err()
				}
				s.step()
			}
		}
		// Migration barrier: snapshot every island's migrant set first,
		// then inject, so the exchange is simultaneous and ring order
		// cannot influence what is sent. Skipped after the final epoch —
		// migrants could no longer influence any evaluation.
		if boundary < opt.Generations && iopt.Islands > 1 {
			sp := opt.Obs.Start(obs.StageMigration)
			pops := make([][]*Individual, len(states))
			archives := make([][]*Individual, len(states))
			for i, s := range states {
				pops[i], archives[i] = s.pop, s.archive
			}
			migrateRing(pops, archives, iopt.Migrants)
			sp.End()
		}
		if iopt.OnCheckpoint != nil && boundary < opt.Generations {
			if err := iopt.OnCheckpoint(snapshot()); err != nil {
				return result(), err
			}
		}
		if iopt.OnProgress != nil {
			evals, runEvals := 0, 0
			for _, s := range states {
				evals += s.evals
				runEvals += s.runEvals
			}
			iopt.OnProgress(Progress{
				Generation:     boundary - 1,
				Generations:    opt.Generations,
				Evaluations:    evals,
				RunEvaluations: runEvals,
				Archive:        mergeIslandArchives(states, opt.ArchiveEpsilon),
				Elapsed:        time.Since(start),
			})
		}
	}
	return result(), nil
}
