package moea

import "errors"

// prng is xoshiro256**: a small, fast generator whose entire state is
// four uint64 words, so optimizer runs can be checkpointed and resumed
// byte-identically (math/rand's default source hides its state). It
// implements math/rand.Source64 and is seeded through splitmix64, which
// maps every int64 seed to a full-entropy non-zero state.
type prng struct {
	s [4]uint64
}

// errZeroPRNGState rejects the one state xoshiro cannot leave.
var errZeroPRNGState = errors.New("moea: invalid PRNG state (all zero)")

// newPRNG returns a generator seeded from the given seed.
func newPRNG(seed int64) *prng {
	p := &prng{}
	p.Seed(seed)
	return p
}

// Seed implements math/rand.Source by expanding the seed with
// splitmix64.
func (p *prng) Seed(seed int64) {
	x := uint64(seed)
	for i := range p.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		p.s[i] = z ^ (z >> 31)
	}
	if p.s[0]|p.s[1]|p.s[2]|p.s[3] == 0 {
		p.s[0] = 1
	}
}

func rotl64(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 implements math/rand.Source64.
func (p *prng) Uint64() uint64 {
	result := rotl64(p.s[1]*5, 7) * 9
	t := p.s[1] << 17
	p.s[2] ^= p.s[0]
	p.s[3] ^= p.s[1]
	p.s[1] ^= p.s[2]
	p.s[0] ^= p.s[3]
	p.s[2] ^= t
	p.s[3] = rotl64(p.s[3], 45)
	return result
}

// Int63 implements math/rand.Source.
func (p *prng) Int63() int64 { return int64(p.Uint64() >> 1) }

// state snapshots the generator for a checkpoint.
func (p *prng) state() [4]uint64 { return p.s }

// setState restores a checkpointed generator state.
func (p *prng) setState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errZeroPRNGState
	}
	p.s = s
	return nil
}
