package moea

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// Island shard checkpoint file format identifiers. A shard checkpoint
// is the output of one epoch-step worker: the post-epoch state of a
// contiguous island subset, carried between processes of one campaign.
// Unlike the full island checkpoint it also serializes the objective
// vectors of every population and archive member, so the orchestrator
// can perform the ring migration centrally — lexicographic migrant
// selection and worst-replacement injection need objectives — without
// re-evaluating a single genotype.
const (
	IslandShardFormat  = "eedse-dse-island-shard"
	IslandShardVersion = 1
)

// IslandShard is the partial campaign snapshot one epoch-step worker
// emits: islands [First, First+Count) advanced to generation Boundary.
// States holds the standard per-island checkpoints in island order;
// PopObjectives/ArchiveObjectives are aligned element-for-element with
// each state's Population/Archive genotype matrices. Objective values
// survive the JSON round trip exactly (Go encodes float64 with the
// shortest representation that parses back to the same bits), so
// central migration on deserialized shards is bit-identical to
// in-process migration.
type IslandShard struct {
	Format  string `json:"format"`
	Version int    `json:"version"`

	Seed         int64 `json:"seed"`
	Islands      int   `json:"islands"`
	MigrateEvery int   `json:"migrate_every"`
	Migrants     int   `json:"migrants"`

	// First/Count identify the contiguous island range of this shard;
	// Boundary is the generation every island in the shard reached.
	First    int `json:"first"`
	Count    int `json:"count"`
	Boundary int `json:"boundary"`

	States            []*Checkpoint  `json:"states"`
	PopObjectives     [][]Objectives `json:"pop_objectives"`
	ArchiveObjectives [][]Objectives `json:"archive_objectives"`
}

// check validates a shard's internal consistency.
func (sh *IslandShard) check() error {
	if sh.Format != IslandShardFormat {
		return fmt.Errorf("moea: shard: not an island shard file (format %q)", sh.Format)
	}
	if sh.Version != IslandShardVersion {
		return fmt.Errorf("moea: shard: unsupported island shard version %d (want %d)", sh.Version, IslandShardVersion)
	}
	if sh.Count < 1 || sh.First < 0 || sh.First+sh.Count > sh.Islands {
		return fmt.Errorf("moea: shard: island range [%d,%d) outside campaign of %d islands", sh.First, sh.First+sh.Count, sh.Islands)
	}
	if len(sh.States) != sh.Count || len(sh.PopObjectives) != sh.Count || len(sh.ArchiveObjectives) != sh.Count {
		return fmt.Errorf("moea: shard: %d states / %d pop objectives / %d archive objectives for %d islands",
			len(sh.States), len(sh.PopObjectives), len(sh.ArchiveObjectives), sh.Count)
	}
	for j, st := range sh.States {
		if st == nil {
			return fmt.Errorf("moea: shard: island %d: missing state", sh.First+j)
		}
		if st.NextGeneration != sh.Boundary {
			return fmt.Errorf("moea: shard: island %d at generation %d, shard boundary %d", sh.First+j, st.NextGeneration, sh.Boundary)
		}
		if len(sh.PopObjectives[j]) != len(st.Population) {
			return fmt.Errorf("moea: shard: island %d: %d population objectives for %d genotypes", sh.First+j, len(sh.PopObjectives[j]), len(st.Population))
		}
		if len(sh.ArchiveObjectives[j]) != len(st.Archive) {
			return fmt.Errorf("moea: shard: island %d: %d archive objectives for %d genotypes", sh.First+j, len(sh.ArchiveObjectives[j]), len(st.Archive))
		}
	}
	return nil
}

// WriteFile atomically writes the shard checkpoint (see
// Checkpoint.WriteFile for the durability contract). Workers always
// write atomically so the orchestrator never reads a torn shard, even
// across a mid-epoch kill and re-run.
func (sh *IslandShard) WriteFile(path string) error {
	data, err := json.Marshal(sh)
	if err != nil {
		return fmt.Errorf("moea: island shard: %w", err)
	}
	return writeFileAtomic(path, data)
}

// ReadIslandShardFile loads a shard checkpoint written by WriteFile.
func ReadIslandShardFile(path string) (*IslandShard, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("moea: island shard: %w", err)
	}
	sh := &IslandShard{}
	if err := json.Unmarshal(data, sh); err != nil {
		return nil, fmt.Errorf("moea: island shard %s: %w: %v", path, ErrCheckpointCorrupt, err)
	}
	if err := sh.check(); err != nil {
		return nil, fmt.Errorf("moea: island shard %s: %w: %v", path, ErrCheckpointCorrupt, err)
	}
	return sh, nil
}

// ShardRange partitions `islands` islands into `procs` contiguous
// shards as evenly as possible and returns shard k's range
// [first, first+count). Every island lands in exactly one shard and
// shard sizes differ by at most one. The partition never influences
// results (islands are independent within an epoch); it only balances
// work, so the orchestrator and any worker invoked by hand agree on it
// by construction.
func ShardRange(islands, procs, k int) (first, count int) {
	first = k * islands / procs
	end := (k + 1) * islands / procs
	return first, end - first
}

// EpochStep advances the contiguous island subset [first, first+count)
// of a campaign by exactly one migration epoch and returns the shard
// checkpoint holding the post-epoch, pre-migration state. full is the
// campaign-wide checkpoint to step from; nil bootstraps epoch 0 (the
// subset's islands sample their initial populations from the derived
// seed streams, exactly as RunIslands would). The epoch boundary is
// computed from the full checkpoint's least-advanced island — the same
// schedule the in-process driver follows — so shards produced by
// different processes agree on it without coordination.
//
// Cancellation is honored at generation boundaries and returns
// ctx.Err() without emitting a shard: the orchestrator's recovery point
// is the last full checkpoint, and a re-run of the epoch reproduces the
// same shard bit for bit.
func EpochStep(ctx context.Context, p Problem, opt Options, iopt IslandOptions, full *IslandCheckpoint, first, count int) (*IslandShard, error) {
	genLen := p.GenotypeLen()
	if genLen <= 0 {
		return nil, errEmptyGenotype
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults(genLen)
	iopt = iopt.withDefaults()
	if count < 1 || first < 0 || first+count > iopt.Islands {
		return nil, fmt.Errorf("moea: epoch step: island range [%d,%d) outside campaign of %d islands", first, first+count, iopt.Islands)
	}

	minGen := 0
	if full != nil {
		if err := full.check(opt, iopt); err != nil {
			return nil, err
		}
		minGen = opt.Generations
		for _, st := range full.States {
			if st.NextGeneration < minGen {
				minGen = st.NextGeneration
			}
		}
	}
	if minGen >= opt.Generations {
		return nil, fmt.Errorf("moea: epoch step: campaign already complete (generation %d of %d)", minGen, opt.Generations)
	}
	boundary := epochBoundary(minGen, iopt.MigrateEvery, opt.Generations)

	pool := newEvalPool(p, opt.Workers)
	defer pool.close()
	states, err := buildIslandStates(p, opt, full, first, count, pool)
	if err != nil {
		return nil, err
	}
	for _, s := range states {
		for s.gen < boundary {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			s.step()
		}
	}

	sh := &IslandShard{
		Format:            IslandShardFormat,
		Version:           IslandShardVersion,
		Seed:              opt.Seed,
		Islands:           iopt.Islands,
		MigrateEvery:      iopt.MigrateEvery,
		Migrants:          iopt.Migrants,
		First:             first,
		Count:             count,
		Boundary:          boundary,
		States:            make([]*Checkpoint, count),
		PopObjectives:     make([][]Objectives, count),
		ArchiveObjectives: make([][]Objectives, count),
	}
	for j, s := range states {
		sh.States[j] = s.snapshot()
		sh.PopObjectives[j] = objectiveVectors(s.pop)
		sh.ArchiveObjectives[j] = objectiveVectors(s.archive)
	}
	return sh, nil
}

// objectiveVectors extracts the objective matrix of a population,
// aligned with genotypes() for shard serialization.
func objectiveVectors(pop []*Individual) []Objectives {
	out := make([]Objectives, len(pop))
	for i, ind := range pop {
		out[i] = ind.Objectives
	}
	return out
}

// MergeShards assembles one epoch's worker shards into the next full
// campaign checkpoint, performing the synchronous ring migration
// centrally: migrant selection (selectMigrants — lexicographic,
// evenly spaced over each archive) and worst-replacement injection
// (injectMigrants) run on individuals rebuilt from the shards'
// serialized genotype/objective pairs — exactly the code the in-process
// driver runs, on exactly the values it would see, so the merged
// checkpoint is byte-identical to the in-process snapshot at the same
// boundary. Migration is skipped after the final epoch (done=true),
// matching RunIslands.
//
// The shards must cover every island of the campaign exactly once and
// agree on (seed, islands, migrate-every, migrants, boundary); iopt
// cross-checks the orchestrator's own topology. Shards may be passed in
// any order.
func MergeShards(shards []*IslandShard, iopt IslandOptions) (cp *IslandCheckpoint, done bool, err error) {
	if len(shards) == 0 {
		return nil, false, fmt.Errorf("moea: merge: no shards")
	}
	iopt = iopt.withDefaults()
	for _, sh := range shards {
		if sh == nil {
			return nil, false, fmt.Errorf("moea: merge: missing shard")
		}
	}
	sorted := append([]*IslandShard(nil), shards...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].First < sorted[b].First })

	ref := sorted[0]
	for _, sh := range sorted {
		if err := sh.check(); err != nil {
			return nil, false, err
		}
		if sh.Islands != iopt.Islands || sh.MigrateEvery != iopt.MigrateEvery || sh.Migrants != iopt.Migrants {
			return nil, false, fmt.Errorf("moea: merge: shard [%d,%d) topology (%d islands, migrate %d, migrants %d) does not match campaign (%d, %d, %d)",
				sh.First, sh.First+sh.Count, sh.Islands, sh.MigrateEvery, sh.Migrants, iopt.Islands, iopt.MigrateEvery, iopt.Migrants)
		}
		if sh.Seed != ref.Seed {
			return nil, false, fmt.Errorf("moea: merge: shard [%d,%d) seed %d does not match %d", sh.First, sh.First+sh.Count, sh.Seed, ref.Seed)
		}
		if sh.Boundary != ref.Boundary {
			return nil, false, fmt.Errorf("moea: merge: shard [%d,%d) at boundary %d, expected %d (stale shard from an earlier epoch?)",
				sh.First, sh.First+sh.Count, sh.Boundary, ref.Boundary)
		}
	}
	next := 0
	for _, sh := range sorted {
		if sh.First != next {
			return nil, false, fmt.Errorf("moea: merge: shards do not cover island %d exactly once", next)
		}
		next = sh.First + sh.Count
	}
	if next != iopt.Islands {
		return nil, false, fmt.Errorf("moea: merge: shards cover %d of %d islands", next, iopt.Islands)
	}

	// Reassemble per-island state and rebuild (genotype, objectives)
	// individuals for the central migration.
	states := make([]*Checkpoint, iopt.Islands)
	pops := make([][]*Individual, iopt.Islands)
	archives := make([][]*Individual, iopt.Islands)
	generations := 0
	for _, sh := range sorted {
		for j := 0; j < sh.Count; j++ {
			i := sh.First + j
			states[i] = sh.States[j]
			pops[i] = rebuildIndividuals(sh.States[j].Population, sh.PopObjectives[j])
			archives[i] = rebuildIndividuals(sh.States[j].Archive, sh.ArchiveObjectives[j])
			generations = sh.States[j].Generations
		}
	}
	done = ref.Boundary >= generations

	if !done {
		migrateRing(pops, archives, iopt.Migrants)
		// Write the post-migration populations back into the per-island
		// checkpoints; injection only replaces whole genotypes, so this is
		// a pure reshuffle of already-serialized vectors.
		for i := range states {
			states[i].Population = genotypes(pops[i])
		}
	}

	return &IslandCheckpoint{
		Format:       IslandCheckpointFormat,
		Version:      IslandCheckpointVersion,
		Seed:         ref.Seed,
		Islands:      iopt.Islands,
		MigrateEvery: iopt.MigrateEvery,
		Migrants:     iopt.Migrants,
		States:       states,
	}, done, nil
}

// rebuildIndividuals zips serialized genotypes and objective vectors
// back into individuals (no payloads — migration never reads them).
func rebuildIndividuals(genos [][]float64, objs []Objectives) []*Individual {
	out := make([]*Individual, len(genos))
	for i := range genos {
		out[i] = &Individual{Genotype: genos[i], Objectives: objs[i]}
	}
	return out
}

// CampaignDone reports whether every island of the checkpoint has
// reached its generation budget — the orchestrator's loop condition.
func CampaignDone(cp *IslandCheckpoint) bool {
	for _, st := range cp.States {
		if st == nil || st.NextGeneration < st.Generations {
			return false
		}
	}
	return len(cp.States) > 0
}

// MergeIslandCheckpoint turns a full campaign checkpoint into the
// campaign Result without advancing any island: every island's state is
// restored (re-evaluating its genotypes, exactly as resume does) and
// the archives fold in island order — the same merge RunIslands
// performs at the end of an uninterrupted run, so a completed
// multi-process campaign reports a byte-identical front. On a
// checkpoint taken mid-campaign it yields the partial front.
func MergeIslandCheckpoint(ctx context.Context, p Problem, opt Options, iopt IslandOptions, cp *IslandCheckpoint) (*Result, error) {
	genLen := p.GenotypeLen()
	if genLen <= 0 {
		return nil, errEmptyGenotype
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults(genLen)
	iopt = iopt.withDefaults()
	if err := cp.check(opt, iopt); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	pool := newEvalPool(p, opt.Workers)
	defer pool.close()
	states, err := buildIslandStates(p, opt, cp, 0, iopt.Islands, pool)
	if err != nil {
		return nil, err
	}
	return islandResult(states, opt.ArchiveEpsilon), nil
}
