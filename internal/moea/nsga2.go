package moea

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/obs"
)

// errEmptyGenotype rejects problems whose genotype has no genes.
var errEmptyGenotype = errors.New("moea: problem has empty genotype")

// Problem is the optimization problem seen by NSGA-II: a genotype
// length and an evaluation function mapping a genotype to (minimized)
// objectives plus an optional payload.
type Problem interface {
	GenotypeLen() int
	Evaluate(genotype []float64) (Objectives, any)
}

// Options configure an NSGA-II run.
type Options struct {
	PopSize     int
	Generations int
	// CrossoverRate is the per-pair probability of uniform crossover
	// (default 0.9); MutationRate the per-gene probability of resampling
	// (default 1/len).
	CrossoverRate float64
	MutationRate  float64
	// MutationStep is the stddev-like half-width of the polynomial-ish
	// perturbation (default 0.15); with probability ½ a mutated gene is
	// resampled uniformly instead, keeping global exploration alive.
	MutationStep float64
	Seed         int64
	// Workers > 1 evaluates each generation's individuals concurrently
	// on that many goroutines. Problem.Evaluate must then be safe for
	// concurrent use. Results are deterministic: genotype generation
	// stays sequential and evaluation order does not influence it.
	Workers int
	// ArchiveEpsilon, when non-empty, thins the all-time archive by
	// ε-dominance: objective k is quantized to boxes of width
	// ArchiveEpsilon[k] (0 = no quantization for that objective) and at
	// most one representative per non-dominated box is kept. Bounds the
	// archive the way practical DSE tools do; the paper reports 176
	// Pareto implementations from 100,000 evaluations.
	ArchiveEpsilon []float64
	// OnGeneration, when non-nil, is called after every generation with
	// the generation index and the current archive.
	OnGeneration func(gen int, archive []*Individual)
	// OnProgress, when non-nil, receives a telemetry sample after every
	// generation. It runs on the optimizer goroutine; keep it cheap.
	OnProgress func(Progress)
	// Resume, when non-nil, restores the optimizer state from a
	// checkpoint instead of sampling a fresh initial population. The
	// checkpoint must match the problem and options (algorithm, genotype
	// length, population size, generation count, seed, ε-archive).
	Resume *Checkpoint
	// OnCheckpoint, when non-nil, receives a state snapshot every
	// CheckpointEvery generations and once more when the context is
	// cancelled. A non-nil return aborts the run with that error.
	OnCheckpoint func(*Checkpoint) error
	// CheckpointEvery is the generation period of OnCheckpoint calls
	// (0 = only on cancellation).
	CheckpointEvery int
	// Obs, when non-nil, times each generation step (and, via the
	// problem, finer stages) on the observability tracer. Purely
	// observational: it never touches RNG state or evaluation order, and
	// a nil tracer costs one nil check per generation.
	Obs *obs.Tracer
}

func (o Options) withDefaults(genLen int) Options {
	if o.PopSize <= 0 {
		o.PopSize = 64
	}
	if o.PopSize%2 == 1 {
		o.PopSize++
	}
	if o.Generations <= 0 {
		o.Generations = 50
	}
	if o.CrossoverRate == 0 {
		o.CrossoverRate = 0.9
	}
	if o.MutationRate == 0 && genLen > 0 {
		o.MutationRate = 1.0 / float64(genLen)
	}
	if o.MutationStep == 0 {
		o.MutationStep = 0.15
	}
	return o
}

// Result carries the outcome of a run.
type Result struct {
	// Archive is the all-time non-dominated set.
	Archive []*Individual
	// FinalPopulation is the last generation.
	FinalPopulation []*Individual
	// Evaluations counts Problem.Evaluate calls.
	Evaluations int
}

// nsga2 is the stepping form of the optimizer: construction samples (or
// resumes) the initial population, step() advances one generation, and
// snapshot() captures resumable state. Run drives one instance to
// completion; RunIslands drives several in migration epochs over a
// shared evaluation pool.
type nsga2 struct {
	p      Problem
	opt    Options
	genLen int
	src    *prng
	rng    *rand.Rand
	pool   *evalPool

	pop, archive []*Individual
	gen          int // next generation index
	evals        int // cumulative Problem.Evaluate count (across resumes)
	runEvals     int // evaluations performed by this process
}

// newNSGA2 builds a stepping optimizer. The pool is borrowed, not
// owned: the caller creates it for the run and closes it afterwards,
// which is what hoists worker-pool construction out of the per-batch
// (per-generation) loop. opt must already carry defaults.
func newNSGA2(p Problem, opt Options, pool *evalPool) (*nsga2, error) {
	genLen := p.GenotypeLen()
	if genLen <= 0 {
		return nil, errEmptyGenotype
	}
	s := &nsga2{p: p, opt: opt, genLen: genLen, src: newPRNG(opt.Seed), pool: pool}
	s.rng = rand.New(s.src)

	if cp := opt.Resume; cp != nil {
		if err := cp.check(AlgorithmNSGA2, genLen); err != nil {
			return nil, err
		}
		if cp.PopSize != opt.PopSize {
			return nil, fmt.Errorf("moea: resume: checkpoint population size %d does not match PopSize %d", cp.PopSize, opt.PopSize)
		}
		if cp.Generations != opt.Generations {
			return nil, fmt.Errorf("moea: resume: checkpoint targets %d generations, run targets %d", cp.Generations, opt.Generations)
		}
		if cp.Seed != opt.Seed {
			return nil, fmt.Errorf("moea: resume: checkpoint seed %d does not match Seed %d", cp.Seed, opt.Seed)
		}
		if !equalEpsilon(cp.ArchiveEpsilon, opt.ArchiveEpsilon) {
			return nil, fmt.Errorf("moea: resume: checkpoint ε-archive %v does not match ArchiveEpsilon %v", cp.ArchiveEpsilon, opt.ArchiveEpsilon)
		}
		if err := s.src.setState(cp.RNG); err != nil {
			return nil, err
		}
		// Rebuild objectives and payloads by re-evaluating the stored
		// genotypes (deterministic, so the state is exact). The archive is
		// re-inserted in checkpoint order without re-filtering: its entries
		// are mutually non-dominated by construction. Rebuild evaluations
		// are not counted — Evaluations continues from the checkpoint.
		s.pop = pool.evaluate(cp.Population)
		s.archive = pool.evaluate(cp.Archive)
		s.evals = cp.Evaluations
		s.gen = cp.NextGeneration
		return s, nil
	}

	initial := make([][]float64, opt.PopSize)
	for i := range initial {
		g := make([]float64, genLen)
		for j := range g {
			g[j] = s.rng.Float64()
		}
		initial[i] = g
	}
	s.pop = s.evaluateBatch(initial)
	s.archive = updateArchiveEps(nil, s.pop, opt.ArchiveEpsilon)
	return s, nil
}

func (s *nsga2) evaluateBatch(genos [][]float64) []*Individual {
	out := s.pool.evaluate(genos)
	s.evals += len(genos)
	s.runEvals += len(genos)
	return out
}

// step advances the optimizer by one generation: tournament breeding
// (sequential, one PRNG stream), batch evaluation on the pool,
// environmental selection and the serial archive fold. The archive is
// touched only here, on the stepping goroutine, in offspring index
// order — workers never contend on it.
func (s *nsga2) step() {
	opt := s.opt
	sp := opt.Obs.Start(obs.StageGeneration)
	defer sp.End()
	// Rank parents for tournament selection.
	fronts := sortFronts(s.pop)
	for _, f := range fronts {
		assignCrowding(f)
	}
	// Breed the whole offspring batch sequentially (rng order), then
	// evaluate it, possibly in parallel.
	genos := make([][]float64, 0, opt.PopSize)
	for len(genos) < opt.PopSize {
		p1 := tournament(s.rng, s.pop)
		p2 := tournament(s.rng, s.pop)
		c1, c2 := crossover(s.rng, p1.Genotype, p2.Genotype, opt.CrossoverRate)
		mutate(s.rng, c1, opt.MutationRate, opt.MutationStep)
		mutate(s.rng, c2, opt.MutationRate, opt.MutationStep)
		genos = append(genos, c1)
		if len(genos) < opt.PopSize {
			genos = append(genos, c2)
		}
	}
	offspring := s.evaluateBatch(genos)
	// Environmental selection over parents ∪ offspring.
	union := append(append([]*Individual(nil), s.pop...), offspring...)
	fronts = sortFronts(union)
	next := make([]*Individual, 0, opt.PopSize)
	for _, f := range fronts {
		assignCrowding(f)
		if len(next)+len(f) <= opt.PopSize {
			next = append(next, f...)
			continue
		}
		// Partial front: take the most crowded-distant first.
		sortByCrowdingDesc(f)
		next = append(next, f[:opt.PopSize-len(next)]...)
		break
	}
	s.pop = next
	s.archive = updateArchiveEps(s.archive, offspring, opt.ArchiveEpsilon)
	s.gen++
}

// snapshot captures the resumable optimizer state; the run continues at
// generation s.gen.
func (s *nsga2) snapshot() *Checkpoint {
	return &Checkpoint{
		Format:         CheckpointFormat,
		Version:        CheckpointVersion,
		Algorithm:      AlgorithmNSGA2,
		Seed:           s.opt.Seed,
		GenotypeLen:    s.genLen,
		RNG:            s.src.state(),
		Evaluations:    s.evals,
		PopSize:        s.opt.PopSize,
		Generations:    s.opt.Generations,
		NextGeneration: s.gen,
		ArchiveEpsilon: s.opt.ArchiveEpsilon,
		Population:     genotypes(s.pop),
		Archive:        genotypes(s.archive),
	}
}

// result packages the current state as a Result.
func (s *nsga2) result() *Result {
	return &Result{Archive: s.archive, FinalPopulation: s.pop, Evaluations: s.evals}
}

// inject replaces the worst individuals of the population with copies
// of the migrants (island-model migration).
func (s *nsga2) inject(migrants []*Individual) {
	injectMigrants(s.pop, migrants)
}

// injectMigrants replaces the worst individuals of pop with copies of
// the migrants (island-model migration). "Worst" is the inverse of the
// crowded-comparison order — highest rank first, lowest crowding first,
// ties broken by population index — so the replacement set is a pure
// function of (genotypes, objectives, population order): the in-process
// epoch loop and the multi-process orchestrator performing the same
// migration on deserialized state produce identical populations. At
// most half the population is replaced.
func injectMigrants(pop, migrants []*Individual) {
	k := len(migrants)
	if k > len(pop)/2 {
		k = len(pop) / 2
	}
	if k == 0 {
		return
	}
	fronts := sortFronts(pop)
	for _, f := range fronts {
		assignCrowding(f)
	}
	idx := make([]int, len(pop))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ia, ib := pop[idx[a]], pop[idx[b]]
		if ia.rank != ib.rank {
			return ia.rank > ib.rank
		}
		return ia.crowding < ib.crowding
	})
	for j := 0; j < k; j++ {
		m := migrants[j]
		pop[idx[j]] = &Individual{
			Genotype:   append([]float64(nil), m.Genotype...),
			Objectives: append(Objectives(nil), m.Objectives...),
			Payload:    m.Payload,
		}
	}
}

// Run executes NSGA-II on the problem. Cancellation of ctx is honored
// at generation boundaries: the run stops before starting the next
// generation, emits a final checkpoint through Options.OnCheckpoint (if
// set), and returns the partial Result together with ctx.Err(). No
// goroutines outlive the call — the evaluation worker pool is created
// once for the run and released before returning.
func Run(ctx context.Context, p Problem, opt Options) (*Result, error) {
	genLen := p.GenotypeLen()
	if genLen <= 0 {
		return nil, errEmptyGenotype
	}
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults(genLen)
	pool := newEvalPool(p, opt.Workers)
	defer pool.close()
	s, err := newNSGA2(p, opt, pool)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	finish := func(err error) (*Result, error) { return s.result(), err }

	for s.gen < opt.Generations {
		if ctx.Err() != nil {
			if opt.OnCheckpoint != nil {
				if err := opt.OnCheckpoint(s.snapshot()); err != nil {
					return finish(err)
				}
			}
			return finish(ctx.Err())
		}
		s.step()
		if opt.OnGeneration != nil {
			opt.OnGeneration(s.gen-1, s.archive)
		}
		if opt.OnProgress != nil {
			opt.OnProgress(Progress{
				Generation:     s.gen - 1,
				Generations:    opt.Generations,
				Evaluations:    s.evals,
				RunEvaluations: s.runEvals,
				Archive:        s.archive,
				Elapsed:        time.Since(start),
			})
		}
		if opt.OnCheckpoint != nil && opt.CheckpointEvery > 0 &&
			s.gen%opt.CheckpointEvery == 0 && s.gen < opt.Generations {
			if err := opt.OnCheckpoint(s.snapshot()); err != nil {
				return finish(err)
			}
		}
	}
	return finish(nil)
}

// tournament returns the better of two random individuals by
// (rank, crowding) — the standard crowded comparison operator.
func tournament(rng *rand.Rand, pop []*Individual) *Individual {
	a := pop[rng.Intn(len(pop))]
	b := pop[rng.Intn(len(pop))]
	if a.rank != b.rank {
		if a.rank < b.rank {
			return a
		}
		return b
	}
	if a.crowding > b.crowding {
		return a
	}
	return b
}

// crossover performs uniform crossover with the given probability;
// otherwise both children are copies.
func crossover(rng *rand.Rand, a, b []float64, rate float64) ([]float64, []float64) {
	c1 := append([]float64(nil), a...)
	c2 := append([]float64(nil), b...)
	if rng.Float64() < rate {
		for i := range c1 {
			if rng.Intn(2) == 0 {
				c1[i], c2[i] = c2[i], c1[i]
			}
		}
	}
	return c1, c2
}

// mutate perturbs genes in place: with probability rate per gene, the
// gene is either jittered by ±step (clamped to [0,1]) or resampled
// uniformly (50/50).
func mutate(rng *rand.Rand, g []float64, rate, step float64) {
	for i := range g {
		if rng.Float64() >= rate {
			continue
		}
		if rng.Intn(2) == 0 {
			g[i] = rng.Float64()
		} else {
			g[i] += (rng.Float64()*2 - 1) * step
			if g[i] < 0 {
				g[i] = 0
			}
			if g[i] > 1 {
				g[i] = 1
			}
		}
	}
}

// updateArchive merges new individuals into the all-time non-dominated
// archive incrementally: each candidate is compared against the current
// archive only (O(|batch|·|archive|) instead of re-filtering the whole
// union), dropping dominated or duplicate candidates and evicting
// archive entries the candidate dominates.
func updateArchive(archive, batch []*Individual) []*Individual {
	for _, cand := range batch {
		dominated := false
		for _, a := range archive {
			if Dominates(a.Objectives, cand.Objectives) || equalObjectives(a.Objectives, cand.Objectives) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		kept := archive[:0]
		for _, a := range archive {
			if !Dominates(cand.Objectives, a.Objectives) {
				kept = append(kept, a)
			}
		}
		archive = append(kept, cand)
	}
	return archive
}

// updateArchiveEps applies ε-dominance when eps is set: candidates and
// archive entries are compared on box coordinates, so at most one
// representative survives per non-dominated ε-box.
func updateArchiveEps(archive, batch []*Individual, eps []float64) []*Individual {
	if len(eps) == 0 {
		return updateArchive(archive, batch)
	}
	box := func(obj Objectives) Objectives {
		out := make(Objectives, len(obj))
		for k, v := range obj {
			out[k] = v
			if k < len(eps) && eps[k] > 0 {
				out[k] = epsFloor(v, eps[k])
			}
		}
		return out
	}
	for _, cand := range batch {
		cb := box(cand.Objectives)
		dominated := false
		for _, a := range archive {
			ab := box(a.Objectives)
			if Dominates(ab, cb) || equalObjectives(ab, cb) {
				dominated = true
				break
			}
		}
		if dominated {
			continue
		}
		kept := archive[:0]
		for _, a := range archive {
			if !Dominates(cb, box(a.Objectives)) {
				kept = append(kept, a)
			}
		}
		archive = append(kept, cand)
	}
	return archive
}

// epsFloor quantizes v down to a multiple of eps, mapping non-finite
// values to themselves.
func epsFloor(v, eps float64) float64 {
	if v != v || v > 1e300 || v < -1e300 {
		return v
	}
	return eps * float64(int64(v/eps))
}

func sortByCrowdingDesc(f []*Individual) {
	for i := 1; i < len(f); i++ {
		for j := i; j > 0 && f[j].crowding > f[j-1].crowding; j-- {
			f[j], f[j-1] = f[j-1], f[j]
		}
	}
}
