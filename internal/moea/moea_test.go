package moea

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b Objectives
		want bool
	}{
		{Objectives{1, 1}, Objectives{2, 2}, true},
		{Objectives{1, 2}, Objectives{2, 1}, false},
		{Objectives{1, 1}, Objectives{1, 1}, false},
		{Objectives{1, 1}, Objectives{1, 2}, true},
		{Objectives{2, 2}, Objectives{1, 1}, false},
	}
	for _, c := range cases {
		if got := Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(%v,%v) = %v", c.a, c.b, got)
		}
	}
}

// TestParetoFilterProperties: the filtered set is mutually
// non-dominated and every removed point is dominated by (or duplicates)
// a kept point.
func TestParetoFilterProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		pop := make([]*Individual, n)
		for i := range pop {
			pop[i] = &Individual{Objectives: Objectives{
				math.Floor(rng.Float64() * 5), math.Floor(rng.Float64() * 5),
			}}
		}
		front := ParetoFilter(pop)
		if len(front) == 0 {
			return false
		}
		for i, a := range front {
			for j, b := range front {
				if i != j && Dominates(a.Objectives, b.Objectives) {
					return false
				}
			}
		}
		for _, p := range pop {
			kept := false
			covered := false
			for _, f := range front {
				if f == p {
					kept = true
					break
				}
				if Dominates(f.Objectives, p.Objectives) || equalObjectives(f.Objectives, p.Objectives) {
					covered = true
				}
			}
			if !kept && !covered {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSortFrontsRanks(t *testing.T) {
	pop := []*Individual{
		{Objectives: Objectives{0, 0}}, // front 0
		{Objectives: Objectives{1, 1}}, // front 1
		{Objectives: Objectives{2, 2}}, // front 2
		{Objectives: Objectives{0, 3}}, // front 0 (incomparable with {0,0}? no: {0,0} dominates {0,3})
	}
	fronts := sortFronts(pop)
	if len(fronts) < 2 {
		t.Fatalf("fronts = %d", len(fronts))
	}
	if pop[0].Rank() != 0 {
		t.Fatal("best individual not rank 0")
	}
	if pop[2].Rank() <= pop[1].Rank() {
		t.Fatal("rank ordering broken")
	}
}

func TestAssignCrowdingBoundariesInfinite(t *testing.T) {
	front := []*Individual{
		{Objectives: Objectives{0, 2}},
		{Objectives: Objectives{1, 1}},
		{Objectives: Objectives{2, 0}},
	}
	assignCrowding(front)
	if !math.IsInf(front[0].crowding, 1) || !math.IsInf(front[2].crowding, 1) {
		t.Fatal("boundary crowding not infinite")
	}
	if math.IsInf(front[1].crowding, 1) || front[1].crowding <= 0 {
		t.Fatalf("middle crowding = %v", front[1].crowding)
	}
}

// zdt1 is the classic two-objective benchmark with Pareto front
// f2 = 1 - sqrt(f1) at g == 1 (all tail genes zero).
type zdt1 struct{ n int }

func (z zdt1) GenotypeLen() int { return z.n }

func (z zdt1) Evaluate(g []float64) (Objectives, any) {
	f1 := g[0]
	sum := 0.0
	for _, v := range g[1:] {
		sum += v
	}
	gg := 1 + 9*sum/float64(z.n-1)
	f2 := gg * (1 - math.Sqrt(f1/gg))
	return Objectives{f1, f2}, nil
}

func TestNSGA2ConvergesOnZDT1(t *testing.T) {
	res, err := Run(context.Background(), zdt1{n: 12}, Options{PopSize: 60, Generations: 80, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 60+60*80 {
		t.Fatalf("evaluations = %d", res.Evaluations)
	}
	if len(res.Archive) < 10 {
		t.Fatalf("archive too small: %d", len(res.Archive))
	}
	// Every archive point must be near the true front: f2 ≈ 1-sqrt(f1).
	worst := 0.0
	for _, ind := range res.Archive {
		f1, f2 := ind.Objectives[0], ind.Objectives[1]
		gap := f2 - (1 - math.Sqrt(f1))
		if gap > worst {
			worst = gap
		}
	}
	if worst > 0.35 {
		t.Fatalf("archive up to %.3f above the true front", worst)
	}
	// Hypervolume must beat a random population's by a clear margin.
	var frontObjs []Objectives
	for _, ind := range res.Archive {
		frontObjs = append(frontObjs, ind.Objectives)
	}
	hv := Hypervolume2D(frontObjs, Objectives{1.1, 11})
	if hv < 9 {
		t.Fatalf("hypervolume = %v", hv)
	}
}

func TestRunRejectsEmptyGenotype(t *testing.T) {
	if _, err := Run(context.Background(), zdt1{n: 0}, Options{}); err == nil {
		t.Fatal("empty genotype accepted")
	}
}

func TestOnGenerationCallback(t *testing.T) {
	calls := 0
	_, err := Run(context.Background(), zdt1{n: 5}, Options{PopSize: 10, Generations: 7, Seed: 1,
		OnGeneration: func(gen int, archive []*Individual) {
			if gen != calls {
				t.Fatalf("generation %d out of order", gen)
			}
			if len(archive) == 0 {
				t.Fatal("empty archive in callback")
			}
			calls++
		}})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 7 {
		t.Fatalf("callback called %d times", calls)
	}
}

func TestRunDeterministicForSeed(t *testing.T) {
	a, err := Run(context.Background(), zdt1{n: 6}, Options{PopSize: 16, Generations: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Run(context.Background(), zdt1{n: 6}, Options{PopSize: 16, Generations: 10, Seed: 42})
	if len(a.Archive) != len(b.Archive) {
		t.Fatalf("archive sizes differ: %d vs %d", len(a.Archive), len(b.Archive))
	}
	for i := range a.Archive {
		if !equalObjectives(a.Archive[i].Objectives, b.Archive[i].Objectives) {
			t.Fatal("same seed produced different archives")
		}
	}
}

func TestHypervolume2D(t *testing.T) {
	front := []Objectives{{0.25, 0.75}, {0.5, 0.5}, {0.75, 0.25}}
	hv := Hypervolume2D(front, Objectives{1, 1})
	// Column decomposition of the dominated region:
	// x∈[0.25,0.5): 0.25·0.25 + x∈[0.5,0.75): 0.25·0.5 + x∈[0.75,1]: 0.25·0.75.
	if math.Abs(hv-0.375) > 1e-12 {
		t.Fatalf("hv = %v, want 0.375", hv)
	}
	if Hypervolume2D(nil, Objectives{1, 1}) != 0 {
		t.Fatal("empty front must have hv 0")
	}
	if Hypervolume2D([]Objectives{{2, 2}}, Objectives{1, 1}) != 0 {
		t.Fatal("points beyond ref must not contribute")
	}
}

func TestHypervolume3D(t *testing.T) {
	// Single point {0,0,0} with ref {1,1,1}: unit cube.
	hv := Hypervolume3D([]Objectives{{0, 0, 0}}, Objectives{1, 1, 1})
	if math.Abs(hv-1) > 1e-12 {
		t.Fatalf("hv = %v, want 1", hv)
	}
	// Two points splitting along z.
	hv = Hypervolume3D([]Objectives{{0, 0.5, 0}, {0.5, 0, 0.5}}, Objectives{1, 1, 1})
	// Slab z∈[0,0.5): area of {0,0.5} = 1*0.5 = 0.5 → 0.25.
	// Slab z∈[0.5,1): area of union {0,0.5},{0.5,0} = 0.5+0.25 = 0.75 → 0.375.
	if math.Abs(hv-0.625) > 1e-12 {
		t.Fatalf("hv = %v, want 0.625", hv)
	}
}

func TestAdditiveEpsilon(t *testing.T) {
	ref := []Objectives{{0, 1}, {1, 0}}
	// Perfect cover.
	if eps := AdditiveEpsilon(ref, ref); eps != 0 {
		t.Fatalf("eps = %v, want 0", eps)
	}
	// Approximation shifted by 0.2.
	approx := []Objectives{{0.2, 1.2}, {1.2, 0.2}}
	if eps := AdditiveEpsilon(approx, ref); math.Abs(eps-0.2) > 1e-12 {
		t.Fatalf("eps = %v, want 0.2", eps)
	}
}

func TestMutateStaysInBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := make([]float64, 100)
	for i := range g {
		g[i] = rng.Float64()
	}
	for round := 0; round < 100; round++ {
		mutate(rng, g, 0.5, 0.3)
		for _, v := range g {
			if v < 0 || v > 1 {
				t.Fatalf("gene out of bounds: %v", v)
			}
		}
	}
}

func TestCrossoverPreservesGenePool(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := []float64{1, 2, 3, 4}
	b := []float64{5, 6, 7, 8}
	c1, c2 := crossover(rng, a, b, 1.0)
	for i := range a {
		ok := (c1[i] == a[i] && c2[i] == b[i]) || (c1[i] == b[i] && c2[i] == a[i])
		if !ok {
			t.Fatalf("gene %d lost: %v %v", i, c1, c2)
		}
	}
	// Parents untouched.
	if a[0] != 1 || b[0] != 5 {
		t.Fatal("crossover mutated parents")
	}
}

// TestNSGA2BeatsRandomSearch: with equal evaluation budgets on ZDT1,
// NSGA-II's archive hypervolume must clearly exceed random search's —
// the optimizer ablation.
func TestNSGA2BeatsRandomSearch(t *testing.T) {
	const budget = 60 + 60*40
	nsga, err := Run(context.Background(), zdt1{n: 12}, Options{PopSize: 60, Generations: 40, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rnd, err := RandomSearch(zdt1{n: 12}, budget, 7)
	if err != nil {
		t.Fatal(err)
	}
	if rnd.Evaluations != budget || nsga.Evaluations != budget {
		t.Fatalf("budgets: nsga %d rnd %d", nsga.Evaluations, rnd.Evaluations)
	}
	ref := Objectives{1.1, 11}
	hvN := Hypervolume2D(frontOf(nsga), ref)
	hvR := Hypervolume2D(frontOf(rnd), ref)
	if hvN <= hvR {
		t.Fatalf("NSGA-II hv %.3f not above random search hv %.3f", hvN, hvR)
	}
}

func frontOf(r *Result) []Objectives {
	var out []Objectives
	for _, ind := range r.Archive {
		out = append(out, ind.Objectives)
	}
	return out
}

func TestRandomSearchArchiveNonDominated(t *testing.T) {
	res, err := RandomSearch(zdt1{n: 6}, 500, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range res.Archive {
		for j, b := range res.Archive {
			if i != j && Dominates(a.Objectives, b.Objectives) {
				t.Fatalf("archive entry %d dominates %d", i, j)
			}
		}
	}
	if _, err := RandomSearch(zdt1{n: 0}, 10, 1); err == nil {
		t.Fatal("empty genotype accepted")
	}
}

// TestParallelEvaluationDeterministic: Workers > 1 must reproduce the
// sequential run exactly (genotype generation is sequential; evaluation
// is pure).
func TestParallelEvaluationDeterministic(t *testing.T) {
	seq, err := Run(context.Background(), zdt1{n: 8}, Options{PopSize: 20, Generations: 12, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(context.Background(), zdt1{n: 8}, Options{PopSize: 20, Generations: 12, Seed: 9, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Evaluations != par.Evaluations {
		t.Fatalf("evaluations differ: %d vs %d", seq.Evaluations, par.Evaluations)
	}
	if len(seq.Archive) != len(par.Archive) {
		t.Fatalf("archive sizes differ: %d vs %d", len(seq.Archive), len(par.Archive))
	}
	for i := range seq.Archive {
		if !equalObjectives(seq.Archive[i].Objectives, par.Archive[i].Objectives) {
			t.Fatalf("archive entry %d differs", i)
		}
	}
}

// TestEpsilonArchiveThinsFront: with ε-dominance the archive is much
// smaller than the exact archive but still mutually non-dominated and
// still near the true ZDT1 front.
func TestEpsilonArchiveThinsFront(t *testing.T) {
	exact, err := Run(context.Background(), zdt1{n: 10}, Options{PopSize: 40, Generations: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	eps, err := Run(context.Background(), zdt1{n: 10}, Options{PopSize: 40, Generations: 40, Seed: 5,
		ArchiveEpsilon: []float64{0.05, 0.05}})
	if err != nil {
		t.Fatal(err)
	}
	if len(eps.Archive) >= len(exact.Archive) {
		t.Fatalf("ε-archive %d not below exact %d", len(eps.Archive), len(exact.Archive))
	}
	if len(eps.Archive) < 5 {
		t.Fatalf("ε-archive degenerate: %d", len(eps.Archive))
	}
	for i, a := range eps.Archive {
		for j, b := range eps.Archive {
			if i != j && Dominates(a.Objectives, b.Objectives) {
				t.Fatalf("ε-archive entry %d dominates %d", i, j)
			}
		}
		if gap := a.Objectives[1] - (1 - math.Sqrt(a.Objectives[0])); gap > 0.4 {
			t.Fatalf("ε-archive point %.3f above the front", gap)
		}
	}
}

func TestEpsFloor(t *testing.T) {
	if math.Abs(epsFloor(0.37, 0.1)-0.3) > 1e-12 {
		t.Fatalf("epsFloor = %v", epsFloor(0.37, 0.1))
	}
	if epsFloor(0.42, 0.1) >= 0.42 || epsFloor(0.42, 0.1) < 0.3999 {
		t.Fatalf("epsFloor(0.42) = %v", epsFloor(0.42, 0.1))
	}
	inf := math.Inf(1)
	if epsFloor(inf, 0.1) != inf {
		t.Fatal("inf not preserved")
	}
}
