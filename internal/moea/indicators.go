package moea

import (
	"math"
	"sort"
)

// Hypervolume2D returns the hypervolume (area) dominated by the given
// 2-objective minimization front relative to the reference point. Points
// not dominating the reference contribute nothing.
func Hypervolume2D(front []Objectives, ref Objectives) float64 {
	pts := make([]Objectives, 0, len(front))
	for _, p := range front {
		if len(p) == 2 && p[0] < ref[0] && p[1] < ref[1] {
			pts = append(pts, p)
		}
	}
	if len(pts) == 0 {
		return 0
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i][0] < pts[j][0] })
	hv := 0.0
	prevY := ref[1]
	for _, p := range pts {
		if p[1] < prevY {
			hv += (ref[0] - p[0]) * (prevY - p[1])
			prevY = p[1]
		}
	}
	return hv
}

// Hypervolume3D returns the hypervolume of a 3-objective minimization
// front by slicing along the third objective (exact, O(n² log n)).
func Hypervolume3D(front []Objectives, ref Objectives) float64 {
	pts := make([]Objectives, 0, len(front))
	for _, p := range front {
		if len(p) == 3 && p[0] < ref[0] && p[1] < ref[1] && p[2] < ref[2] {
			pts = append(pts, p)
		}
	}
	if len(pts) == 0 {
		return 0
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i][2] < pts[j][2] })
	hv := 0.0
	for i := range pts {
		var zTop float64
		if i+1 < len(pts) {
			zTop = pts[i+1][2]
		} else {
			zTop = ref[2]
		}
		dz := zTop - pts[i][2]
		if dz <= 0 {
			continue
		}
		// 2D hypervolume of the points active in this slab.
		slab := make([]Objectives, 0, i+1)
		for j := 0; j <= i; j++ {
			slab = append(slab, Objectives{pts[j][0], pts[j][1]})
		}
		hv += Hypervolume2D(slab, Objectives{ref[0], ref[1]}) * dz
	}
	return hv
}

// AdditiveEpsilon returns the smallest ε such that every point of the
// reference front is weakly dominated by some point of the approximation
// front shifted by ε (all objectives minimized). Smaller is better; 0
// means the approximation covers the reference.
func AdditiveEpsilon(approx, reference []Objectives) float64 {
	eps := math.Inf(-1)
	for _, r := range reference {
		best := math.Inf(1)
		for _, a := range approx {
			worst := math.Inf(-1)
			for k := range r {
				// Equal coordinates shift by 0 even when both are ±Inf
				// (Inf−Inf would otherwise inject NaN into the indicator).
				d := 0.0
				if a[k] != r[k] {
					d = a[k] - r[k]
				}
				if d > worst {
					worst = d
				}
			}
			if worst < best {
				best = worst
			}
		}
		if best > eps {
			eps = best
		}
	}
	return eps
}
