package moea

import "math/rand"

// RandomSearch evaluates `evals` uniformly random genotypes and keeps
// the non-dominated archive — the null-hypothesis optimizer against
// which NSGA-II's selection pressure is measured (optimizer ablation).
func RandomSearch(p Problem, evals int, seed int64) (*Result, error) {
	genLen := p.GenotypeLen()
	if genLen <= 0 {
		return nil, errEmptyGenotype
	}
	if evals < 1 {
		evals = 1
	}
	rng := rand.New(rand.NewSource(seed))
	res := &Result{}
	var batch []*Individual
	for i := 0; i < evals; i++ {
		g := make([]float64, genLen)
		for j := range g {
			g[j] = rng.Float64()
		}
		obj, payload := p.Evaluate(g)
		res.Evaluations++
		batch = append(batch, &Individual{Genotype: g, Objectives: obj, Payload: payload})
		// Fold into the archive in chunks to bound the quadratic filter.
		if len(batch) >= 256 {
			res.Archive = updateArchive(res.Archive, batch)
			batch = batch[:0]
		}
	}
	res.Archive = updateArchive(res.Archive, batch)
	res.FinalPopulation = res.Archive
	return res, nil
}
