package moea

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// randomChunk is the archive-fold granularity of random search: genotype
// generation stays sequential (one PRNG stream), evaluation of each
// chunk may run on Workers goroutines, and the non-dominated filter runs
// once per chunk to bound its quadratic cost. Chunk boundaries are also
// the cancellation and checkpoint boundaries.
const randomChunk = 256

// RandomOptions configure a random-search run.
type RandomOptions struct {
	// Evals is the evaluation budget (minimum 1).
	Evals int
	Seed  int64
	// Workers > 1 evaluates each chunk's genotypes concurrently; results
	// are identical for any worker count.
	Workers int
	// OnProgress, when non-nil, receives a telemetry sample after every
	// chunk.
	OnProgress func(Progress)
	// Resume restores state from a checkpoint (see Options.Resume).
	Resume *Checkpoint
	// OnCheckpoint receives a snapshot every CheckpointEvery evaluations
	// (rounded up to chunk boundaries) and once more on cancellation.
	OnCheckpoint func(*Checkpoint) error
	// CheckpointEvery is the evaluation period of OnCheckpoint calls
	// (0 = only on cancellation).
	CheckpointEvery int
}

// RandomSearch evaluates `evals` uniformly random genotypes and keeps
// the non-dominated archive — the null-hypothesis optimizer against
// which NSGA-II's selection pressure is measured (optimizer ablation).
func RandomSearch(p Problem, evals int, seed int64) (*Result, error) {
	return RandomSearchOpt(context.Background(), p, RandomOptions{Evals: evals, Seed: seed})
}

// RandomSearchOpt is RandomSearch with run control: context
// cancellation, parallel chunk evaluation, checkpoint/resume, and
// telemetry. Cancellation is honored at chunk boundaries and returns
// the partial Result with ctx.Err() after emitting a final checkpoint.
func RandomSearchOpt(ctx context.Context, p Problem, opt RandomOptions) (*Result, error) {
	genLen := p.GenotypeLen()
	if genLen <= 0 {
		return nil, errEmptyGenotype
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.Evals < 1 {
		opt.Evals = 1
	}
	src := newPRNG(opt.Seed)
	rng := rand.New(src)
	res := &Result{}
	start := time.Now()
	runEvals := 0
	pool := newEvalPool(p, opt.Workers)
	defer pool.close()

	var archive []*Individual
	done := 0
	if cp := opt.Resume; cp != nil {
		if err := cp.check(AlgorithmRandom, genLen); err != nil {
			return nil, err
		}
		if cp.TotalEvals != opt.Evals {
			return nil, fmt.Errorf("moea: resume: checkpoint targets %d evaluations, run targets %d", cp.TotalEvals, opt.Evals)
		}
		if cp.Seed != opt.Seed {
			return nil, fmt.Errorf("moea: resume: checkpoint seed %d does not match Seed %d", cp.Seed, opt.Seed)
		}
		if err := src.setState(cp.RNG); err != nil {
			return nil, err
		}
		archive = pool.evaluate(cp.Archive)
		res.Evaluations = cp.Evaluations
		done = cp.NextEval
	}

	snapshot := func(nextEval int) *Checkpoint {
		return &Checkpoint{
			Format:      CheckpointFormat,
			Version:     CheckpointVersion,
			Algorithm:   AlgorithmRandom,
			Seed:        opt.Seed,
			GenotypeLen: genLen,
			RNG:         src.state(),
			Evaluations: res.Evaluations,
			TotalEvals:  opt.Evals,
			NextEval:    nextEval,
			Archive:     genotypes(archive),
		}
	}
	finish := func(err error) (*Result, error) {
		res.Archive = archive
		res.FinalPopulation = archive
		return res, err
	}

	chunk := 0
	lastCheckpoint := done
	for done < opt.Evals {
		if ctx.Err() != nil {
			if opt.OnCheckpoint != nil {
				if err := opt.OnCheckpoint(snapshot(done)); err != nil {
					return finish(err)
				}
			}
			return finish(ctx.Err())
		}
		n := opt.Evals - done
		if n > randomChunk {
			n = randomChunk
		}
		genos := make([][]float64, n)
		for i := range genos {
			g := make([]float64, genLen)
			for j := range g {
				g[j] = rng.Float64()
			}
			genos[i] = g
		}
		batch := pool.evaluate(genos)
		res.Evaluations += n
		runEvals += n
		archive = updateArchive(archive, batch)
		done += n
		if opt.OnProgress != nil {
			opt.OnProgress(Progress{
				Generation:     chunk,
				Evaluations:    res.Evaluations,
				RunEvaluations: runEvals,
				Archive:        archive,
				Elapsed:        time.Since(start),
			})
		}
		chunk++
		if opt.OnCheckpoint != nil && opt.CheckpointEvery > 0 &&
			done-lastCheckpoint >= opt.CheckpointEvery && done < opt.Evals {
			if err := opt.OnCheckpoint(snapshot(done)); err != nil {
				return finish(err)
			}
			lastCheckpoint = done
		}
	}
	return finish(nil)
}
