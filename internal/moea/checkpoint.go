package moea

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// Checkpoint file format identifiers. Version is bumped on any change
// to the serialized layout; readers reject unknown versions instead of
// silently misinterpreting state.
const (
	CheckpointFormat  = "eedse-dse-checkpoint"
	CheckpointVersion = 1
)

// Optimizer algorithm tags recorded in checkpoints.
const (
	AlgorithmNSGA2  = "nsga2"
	AlgorithmRandom = "random"
)

// Checkpoint is a complete snapshot of optimizer state at a generation
// (NSGA-II) or chunk (random search) boundary. Only genotypes are
// stored: objectives and payloads are rebuilt on resume by re-evaluating
// them, which is exact because decoders and objective evaluation are
// deterministic. Together with the serialized PRNG state this makes a
// resumed run byte-identical to the uninterrupted one, at any worker
// count.
type Checkpoint struct {
	Format    string `json:"format"`
	Version   int    `json:"version"`
	Algorithm string `json:"algorithm"` // "nsga2" or "random"

	Seed        int64     `json:"seed"`
	GenotypeLen int       `json:"genotype_len"`
	RNG         [4]uint64 `json:"rng"`
	// Evaluations is the cumulative Problem.Evaluate count of the run so
	// far (resume restores it; rebuild evaluations are not counted).
	Evaluations int `json:"evaluations"`

	// NSGA-II state: the run continues at NextGeneration.
	PopSize        int         `json:"pop_size,omitempty"`
	Generations    int         `json:"generations,omitempty"`
	NextGeneration int         `json:"next_generation,omitempty"`
	ArchiveEpsilon []float64   `json:"archive_epsilon,omitempty"`
	Population     [][]float64 `json:"population,omitempty"`

	// Random-search state: the run continues at evaluation NextEval.
	TotalEvals int `json:"total_evals,omitempty"`
	NextEval   int `json:"next_eval,omitempty"`

	// Archive holds the all-time non-dominated genotypes in insertion
	// order; re-inserting them in order reproduces the archive exactly.
	Archive [][]float64 `json:"archive"`
}

// check validates a checkpoint against the run it is resuming.
func (cp *Checkpoint) check(alg string, genLen int) error {
	if cp.Format != CheckpointFormat {
		return fmt.Errorf("moea: resume: not a checkpoint file (format %q)", cp.Format)
	}
	if cp.Version != CheckpointVersion {
		return fmt.Errorf("moea: resume: unsupported checkpoint version %d (want %d)", cp.Version, CheckpointVersion)
	}
	if cp.Algorithm != alg {
		return fmt.Errorf("moea: resume: checkpoint is for optimizer %q, run uses %q", cp.Algorithm, alg)
	}
	if cp.GenotypeLen != genLen {
		return fmt.Errorf("moea: resume: checkpoint genotype length %d does not match problem length %d", cp.GenotypeLen, genLen)
	}
	for _, g := range cp.Population {
		if len(g) != genLen {
			return fmt.Errorf("moea: resume: corrupt checkpoint: population genotype length %d != %d", len(g), genLen)
		}
	}
	for _, g := range cp.Archive {
		if len(g) != genLen {
			return fmt.Errorf("moea: resume: corrupt checkpoint: archive genotype length %d != %d", len(g), genLen)
		}
	}
	return nil
}

// WriteFile atomically writes the checkpoint to path: the state is
// marshalled to a temporary file in the same directory, synced, and
// renamed over the target, so a crash mid-write never destroys the
// previous checkpoint.
func (cp *Checkpoint) WriteFile(path string) error {
	data, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("moea: checkpoint: %w", err)
	}
	return writeFileAtomic(path, data)
}

// writeFileAtomic writes data to path via tmp-file + fsync + rename —
// the durability contract shared by the single-run and island
// checkpoint formats.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("moea: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("moea: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("moea: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("moea: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("moea: checkpoint: %w", err)
	}
	return nil
}

// ReadCheckpointFile loads a checkpoint written by WriteFile.
func ReadCheckpointFile(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("moea: checkpoint: %w", err)
	}
	cp := &Checkpoint{}
	if err := json.Unmarshal(data, cp); err != nil {
		return nil, fmt.Errorf("moea: checkpoint %s: %w", path, err)
	}
	if cp.Format != CheckpointFormat {
		return nil, fmt.Errorf("moea: checkpoint %s: not a checkpoint file (format %q)", path, cp.Format)
	}
	if cp.Version != CheckpointVersion {
		return nil, fmt.Errorf("moea: checkpoint %s: unsupported version %d (want %d)", path, cp.Version, CheckpointVersion)
	}
	return cp, nil
}

// genotypes extracts the genotype matrix of a population for a
// checkpoint snapshot.
func genotypes(pop []*Individual) [][]float64 {
	out := make([][]float64, len(pop))
	for i, ind := range pop {
		out[i] = ind.Genotype
	}
	return out
}

// equalEpsilon compares ε-archive configurations for resume validation.
func equalEpsilon(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
