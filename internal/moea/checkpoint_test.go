package moea

import (
	"context"
	"math"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

// flatFront flattens an archive into (genotype, objectives) for exact
// comparison; payloads are nil for the test problems.
func flatFront(archive []*Individual) [][]float64 {
	out := make([][]float64, 0, 2*len(archive))
	for _, ind := range archive {
		out = append(out, ind.Genotype, ind.Objectives)
	}
	return out
}

func TestPRNGStateRoundTrip(t *testing.T) {
	src := newPRNG(42)
	for i := 0; i < 1000; i++ {
		src.Uint64()
	}
	st := src.state()
	var want [16]uint64
	for i := range want {
		want[i] = src.Uint64()
	}
	dup := newPRNG(0)
	if err := dup.setState(st); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got := dup.Uint64(); got != want[i] {
			t.Fatalf("draw %d after restore = %d, want %d", i, got, want[i])
		}
	}
	if err := dup.setState([4]uint64{}); err == nil {
		t.Fatal("all-zero PRNG state accepted")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp.json")
	cp := &Checkpoint{
		Format:      CheckpointFormat,
		Version:     CheckpointVersion,
		Algorithm:   AlgorithmNSGA2,
		Seed:        7,
		GenotypeLen: 3,
		RNG:         [4]uint64{1, 2, 3, 4},
		Evaluations: 640,
		PopSize:     64, Generations: 10, NextGeneration: 5,
		Population: [][]float64{{0.1, 0.2, 0.3}},
		Archive:    [][]float64{{0.4, 0.5, 0.6}},
	}
	if err := cp.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCheckpointFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, cp) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, cp)
	}

	bad := *cp
	bad.Version = CheckpointVersion + 99
	if err := bad.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadCheckpointFile(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("future version accepted: %v", err)
	}
}

func TestResumeValidation(t *testing.T) {
	p := zdt1{n: 6}
	var cp *Checkpoint
	_, err := Run(context.Background(), p, Options{
		PopSize: 16, Generations: 6, Seed: 3,
		CheckpointEvery: 2,
		OnCheckpoint:    func(c *Checkpoint) error { cp = c; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no periodic checkpoint emitted")
	}
	cases := []struct {
		name string
		opt  Options
	}{
		{"seed", Options{PopSize: 16, Generations: 6, Seed: 4}},
		{"popsize", Options{PopSize: 32, Generations: 6, Seed: 3}},
		{"generations", Options{PopSize: 16, Generations: 8, Seed: 3}},
		{"epsilon", Options{PopSize: 16, Generations: 6, Seed: 3, ArchiveEpsilon: []float64{0.1, 0.1}}},
	}
	for _, c := range cases {
		opt := c.opt
		opt.Resume = cp
		if _, err := Run(context.Background(), p, opt); err == nil {
			t.Errorf("%s mismatch accepted on resume", c.name)
		}
	}
	if _, err := RandomSearchOpt(context.Background(), p, RandomOptions{Evals: 100, Seed: 3, Resume: cp}); err == nil {
		t.Error("nsga2 checkpoint accepted by random search")
	}
}

// TestNSGA2ResumeByteIdentical is the headline determinism property: a
// run checkpointed mid-flight and resumed — at any worker count —
// produces the same final front, byte for byte, as the uninterrupted
// run.
func TestNSGA2ResumeByteIdentical(t *testing.T) {
	p := zdt1{n: 10}
	base := Options{PopSize: 32, Generations: 12, Seed: 11}

	ref, err := Run(context.Background(), p, base)
	if err != nil {
		t.Fatal(err)
	}
	want := flatFront(ref.Archive)

	for _, workers := range []int{1, 4} {
		var mid *Checkpoint
		opt := base
		opt.Workers = workers
		opt.CheckpointEvery = 5
		opt.OnCheckpoint = func(c *Checkpoint) error {
			if mid == nil {
				mid = c // keep the first (generation 5) snapshot
			}
			return nil
		}
		if _, err := Run(context.Background(), p, opt); err != nil {
			t.Fatal(err)
		}
		if mid == nil || mid.NextGeneration != 5 {
			t.Fatalf("workers=%d: expected a checkpoint at generation 5, got %+v", workers, mid)
		}

		res := base
		res.Workers = workers
		res.Resume = mid
		got, err := Run(context.Background(), p, res)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(flatFront(got.Archive), want) {
			t.Errorf("workers=%d: resumed front differs from uninterrupted run", workers)
		}
		if got.Evaluations != ref.Evaluations {
			t.Errorf("workers=%d: resumed evaluations = %d, want %d (rebuild must not count)",
				workers, got.Evaluations, ref.Evaluations)
		}
	}
}

func TestRandomResumeByteIdentical(t *testing.T) {
	p := zdt1{n: 10}
	const evals, seed = 1200, 5

	ref, err := RandomSearch(p, evals, seed)
	if err != nil {
		t.Fatal(err)
	}
	want := flatFront(ref.Archive)

	for _, workers := range []int{1, 4} {
		var mid *Checkpoint
		_, err := RandomSearchOpt(context.Background(), p, RandomOptions{
			Evals: evals, Seed: seed, Workers: workers,
			CheckpointEvery: 512,
			OnCheckpoint: func(c *Checkpoint) error {
				if mid == nil {
					mid = c
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		if mid == nil || mid.NextEval != 512 {
			t.Fatalf("workers=%d: expected a checkpoint at evaluation 512, got %+v", workers, mid)
		}
		got, err := RandomSearchOpt(context.Background(), p, RandomOptions{
			Evals: evals, Seed: seed, Workers: workers, Resume: mid,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(flatFront(got.Archive), want) {
			t.Errorf("workers=%d: resumed front differs from uninterrupted run", workers)
		}
		if got.Evaluations != evals {
			t.Errorf("workers=%d: resumed evaluations = %d, want %d", workers, got.Evaluations, evals)
		}
	}
}

// TestCancellationPartialResult: cancelling mid-run stops at the next
// generation boundary, emits a final checkpoint, returns the partial
// archive with ctx.Err(), and leaks no worker goroutines.
func TestCancellationPartialResult(t *testing.T) {
	p := zdt1{n: 10}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var final *Checkpoint
	opt := Options{
		PopSize: 32, Generations: 1000, Seed: 2, Workers: 4,
		OnGeneration: func(gen int, _ []*Individual) {
			if gen == 3 {
				cancel()
			}
		},
		OnCheckpoint: func(c *Checkpoint) error { final = c; return nil },
	}
	res, err := Run(ctx, p, opt)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Archive) == 0 {
		t.Fatal("no partial result on cancellation")
	}
	if final == nil {
		t.Fatal("no final checkpoint on cancellation")
	}
	if final.NextGeneration != 4 {
		t.Fatalf("final checkpoint resumes at generation %d, want 4", final.NextGeneration)
	}
	// The cancelled run must be resumable to the full-run front.
	res2 := Options{PopSize: 32, Generations: 1000, Seed: 2}
	res2.Resume = final
	// Resuming 996 more generations is slow; instead verify the snapshot
	// is self-consistent and accepted.
	res2.Generations = 1000
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := Run(ctx2, p, res2); err != context.Canceled {
		t.Fatalf("resume from cancellation checkpoint rejected: %v", err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("goroutine leak after cancellation: %d > %d", n, before)
	}
}

func TestRandomCancellation(t *testing.T) {
	p := zdt1{n: 8}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var final *Checkpoint
	n := 0
	res, err := RandomSearchOpt(ctx, p, RandomOptions{
		Evals: 1 << 30, Seed: 9, Workers: 4,
		OnProgress: func(Progress) {
			if n++; n == 3 {
				cancel()
			}
		},
		OnCheckpoint: func(c *Checkpoint) error { final = c; return nil },
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Archive) == 0 {
		t.Fatal("no partial result on cancellation")
	}
	if final == nil || final.NextEval != 3*randomChunk {
		t.Fatalf("final checkpoint = %+v, want NextEval %d", final, 3*randomChunk)
	}
}

func TestProgressTelemetry(t *testing.T) {
	p := zdt1{n: 8}
	var samples []Progress
	_, err := Run(context.Background(), p, Options{
		PopSize: 16, Generations: 5, Seed: 1,
		OnProgress: func(pr Progress) { samples = append(samples, pr) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 5 {
		t.Fatalf("got %d progress samples, want 5", len(samples))
	}
	for i, s := range samples {
		if s.Generation != i || s.Generations != 5 {
			t.Fatalf("sample %d: generation %d/%d", i, s.Generation, s.Generations)
		}
		if s.Evaluations != 16+16*(i+1) {
			t.Fatalf("sample %d: evaluations = %d", i, s.Evaluations)
		}
		if s.RunEvaluations != s.Evaluations {
			t.Fatalf("sample %d: run evaluations %d != %d on a fresh run", i, s.RunEvaluations, s.Evaluations)
		}
		if len(s.Archive) == 0 || s.Elapsed < 0 {
			t.Fatalf("sample %d: empty archive or negative elapsed", i)
		}
	}
}

// TestCrowdingRejectsNonFiniteSpan guards the Inf−Inf fix: a front
// containing the penalty corner (formerly ±Inf objectives) must not
// poison crowding distances with NaN.
func TestCrowdingRejectsNonFiniteSpan(t *testing.T) {
	front := []*Individual{
		{Objectives: Objectives{0, math.Inf(1)}},
		{Objectives: Objectives{1, 5}},
		{Objectives: Objectives{2, 1}},
	}
	assignCrowding(front)
	for i, ind := range front {
		if math.IsNaN(ind.crowding) {
			t.Fatalf("individual %d: crowding is NaN", i)
		}
	}
}

func TestAdditiveEpsilonInfSafe(t *testing.T) {
	inf := math.Inf(1)
	approx := []Objectives{{inf, 0}}
	ref := []Objectives{{inf, 0}}
	if d := AdditiveEpsilon(approx, ref); math.IsNaN(d) {
		t.Fatal("AdditiveEpsilon produced NaN on matching Inf coordinates")
	}
}
