package moea_test

import (
	"context"
	"fmt"

	"repro/internal/moea"
)

// oneMax is a toy problem: minimize (1 − mean(g), mean(g)) — the front
// is the whole diagonal.
type oneMax struct{}

func (oneMax) GenotypeLen() int { return 8 }

func (oneMax) Evaluate(g []float64) (moea.Objectives, any) {
	sum := 0.0
	for _, v := range g {
		sum += v
	}
	m := sum / float64(len(g))
	return moea.Objectives{1 - m, m}, nil
}

func ExampleRun() {
	res, err := moea.Run(context.Background(), oneMax{}, moea.Options{PopSize: 16, Generations: 10, Seed: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("evaluations:", res.Evaluations)
	fmt.Println("archive non-empty:", len(res.Archive) > 0)
	// Output:
	// evaluations: 176
	// archive non-empty: true
}
