// Package moea provides the multi-objective evolutionary optimizer of
// the design space exploration: NSGA-II (non-dominated sorting, crowding
// distance, binary tournament) over real-valued genotypes, an unbounded
// Pareto archive, and quality indicators (hypervolume, additive
// epsilon) for comparing runs.
//
// Genotypes are priority vectors in [0,1]; in SAT-decoding they steer
// the pseudo-Boolean solver's decision order, so every evaluated
// individual corresponds to a feasible implementation.
package moea

import "math"

// Objectives is a vector of objective values, all minimized. Maximized
// quantities (like test quality) are negated by the problem definition.
type Objectives []float64

// Dominates reports Pareto dominance: a is nowhere worse and somewhere
// strictly better than b.
func Dominates(a, b Objectives) bool {
	strictly := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strictly = true
		}
	}
	return strictly
}

// Individual couples a genotype with its evaluation.
type Individual struct {
	Genotype   []float64
	Objectives Objectives
	// Payload carries problem-specific decode results (e.g. the decoded
	// implementation) so archive entries stay self-describing.
	Payload any

	rank     int
	crowding float64
}

// Rank returns the non-domination rank assigned by the last sort
// (0 = first front).
func (ind *Individual) Rank() int { return ind.rank }

// ParetoFilter returns the non-dominated subset of the individuals
// (first front only), preserving order.
func ParetoFilter(pop []*Individual) []*Individual {
	var out []*Individual
	for i, a := range pop {
		dominated := false
		for j, b := range pop {
			if i == j {
				continue
			}
			if Dominates(b.Objectives, a.Objectives) {
				dominated = true
				break
			}
			// Resolve duplicates: keep the first occurrence only.
			if j < i && equalObjectives(a.Objectives, b.Objectives) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, a)
		}
	}
	return out
}

func equalObjectives(a, b Objectives) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// sortFronts performs the fast non-dominated sort, assigning ranks and
// returning the fronts in order.
func sortFronts(pop []*Individual) [][]*Individual {
	n := len(pop)
	dominatedBy := make([][]int, n) // i dominates these
	domCount := make([]int, n)      // number of individuals dominating i
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			if Dominates(pop[i].Objectives, pop[j].Objectives) {
				dominatedBy[i] = append(dominatedBy[i], j)
			} else if Dominates(pop[j].Objectives, pop[i].Objectives) {
				domCount[i]++
			}
		}
	}
	var fronts [][]*Individual
	var current []int
	for i := 0; i < n; i++ {
		if domCount[i] == 0 {
			pop[i].rank = 0
			current = append(current, i)
		}
	}
	for len(current) > 0 {
		front := make([]*Individual, len(current))
		for k, i := range current {
			front[k] = pop[i]
		}
		fronts = append(fronts, front)
		var next []int
		for _, i := range current {
			for _, j := range dominatedBy[i] {
				domCount[j]--
				if domCount[j] == 0 {
					pop[j].rank = len(fronts)
					next = append(next, j)
				}
			}
		}
		current = next
	}
	return fronts
}

// assignCrowding computes the crowding distance within one front.
func assignCrowding(front []*Individual) {
	n := len(front)
	if n == 0 {
		return
	}
	for _, ind := range front {
		ind.crowding = 0
	}
	m := len(front[0].Objectives)
	idx := make([]int, n)
	for k := 0; k < m; k++ {
		for i := range idx {
			idx[i] = i
		}
		// Insertion sort by objective k (fronts are small).
		for i := 1; i < n; i++ {
			for j := i; j > 0 && front[idx[j]].Objectives[k] < front[idx[j-1]].Objectives[k]; j-- {
				idx[j], idx[j-1] = idx[j-1], idx[j]
			}
		}
		lo, hi := front[idx[0]].Objectives[k], front[idx[n-1]].Objectives[k]
		front[idx[0]].crowding = math.Inf(1)
		front[idx[n-1]].crowding = math.Inf(1)
		span := hi - lo
		// A non-finite span (an objective holding ±Inf, or Inf−Inf = NaN)
		// would leak NaN into every crowding sum and silently corrupt the
		// selection ordering; skip the objective instead — the boundary
		// individuals keep their Inf crowding either way.
		if span <= 0 || math.IsInf(span, 0) || math.IsNaN(span) {
			continue
		}
		for i := 1; i < n-1; i++ {
			front[idx[i]].crowding += (front[idx[i+1]].Objectives[k] - front[idx[i-1]].Objectives[k]) / span
		}
	}
}
