package moea

import (
	"sync"
	"sync/atomic"
)

// WorkerProblem is an optional extension of Problem for per-worker
// evaluation state. When the problem implements it, the evaluation pool
// calls EvaluateWorker with a stable worker index in [0, workers), so
// the problem can pin expensive scratch (a decoder state, a solver) to
// the worker for the lifetime of the run instead of paying a pool
// checkout per evaluation — and instead of re-allocating the scratch
// whenever a GC cycle empties a sync.Pool mid-campaign.
//
// EvaluateWorker must be a pure function of the genotype: the result
// must not depend on the worker index, on which worker evaluates which
// genotype, or on evaluation order. That contract is what keeps fronts
// byte-identical at every worker count.
type WorkerProblem interface {
	Problem
	EvaluateWorker(worker int, genotype []float64) (Objectives, any)
}

// evalChunk is the number of consecutive indices a worker claims per
// cursor bump: large enough to amortize the atomic and avoid false
// sharing on neighboring result slots, small enough to keep the tail of
// a batch load-balanced.
const evalChunk = 8

// evalJob is one evaluation batch handed to the pool. Workers claim
// disjoint chunks of the index space from the atomic cursor and write
// results into the slots they claimed — per-worker result buffers that
// merge into input order by construction. There is no result channel
// and no per-item synchronization: slot i is a pure function of
// genos[i], so the output is deterministic no matter which worker
// claims which chunk.
type evalJob struct {
	genos [][]float64
	out   []*Individual
	next  atomic.Int64
	wg    sync.WaitGroup
}

// evalPool is the per-run evaluation worker pool. Its goroutines are
// started once per optimizer run and fed batches for the run's
// lifetime, replacing the old per-batch pool construction (one
// goroutine spawn per worker per generation) and the unbuffered
// per-item dispatch channel that serialized every evaluation through
// the optimizer goroutine. close() releases the workers; the owning
// run does so before returning, keeping runs leak-free.
type evalPool struct {
	p       Problem
	wp      WorkerProblem // non-nil when p implements the extension
	workers int
	jobs    chan *evalJob // nil in serial mode
}

// newEvalPool starts a pool of `workers` evaluation goroutines for the
// problem. workers <= 1 selects the serial mode: no goroutines, every
// evaluation runs inline on the caller with worker index 0.
func newEvalPool(p Problem, workers int) *evalPool {
	pl := &evalPool{p: p, workers: workers}
	pl.wp, _ = p.(WorkerProblem)
	if workers > 1 {
		pl.jobs = make(chan *evalJob, workers)
		for w := 0; w < workers; w++ {
			go pl.worker(w, pl.jobs)
		}
	}
	return pl
}

// close releases the worker goroutines. The pool must be idle (no
// evaluate in flight); subsequent evaluate calls run serially.
func (pl *evalPool) close() {
	if pl.jobs != nil {
		close(pl.jobs)
		pl.jobs = nil
	}
}

// worker drains batches until the pool closes. The worker index is
// stable for the pool's lifetime, so WorkerProblem implementations can
// key per-worker state on it. The channel is passed explicitly: close()
// nils the field, and a worker whose goroutine is scheduled late must
// still see the (closed) channel, not a nil field, to exit.
func (pl *evalPool) worker(w int, jobs <-chan *evalJob) {
	for job := range jobs {
		pl.drain(w, job)
		job.wg.Done()
	}
}

// drain claims and evaluates index chunks until the batch cursor is
// exhausted.
func (pl *evalPool) drain(w int, job *evalJob) {
	n := len(job.genos)
	for {
		end := int(job.next.Add(evalChunk))
		i := end - evalChunk
		if i >= n {
			return
		}
		if end > n {
			end = n
		}
		for ; i < end; i++ {
			job.out[i] = pl.eval(w, job.genos[i])
		}
	}
}

// eval evaluates one genotype on the given worker.
func (pl *evalPool) eval(w int, g []float64) *Individual {
	var obj Objectives
	var payload any
	if pl.wp != nil {
		obj, payload = pl.wp.EvaluateWorker(w, g)
	} else {
		obj, payload = pl.p.Evaluate(g)
	}
	return &Individual{Genotype: g, Objectives: obj, Payload: payload}
}

// evaluate runs one batch through the pool and blocks until every
// result slot is filled. Output order matches input order for any
// worker count. Steady-state cost per batch is the output slice, the
// job header and one Individual per genotype — no goroutine creation,
// no channel per item.
func (pl *evalPool) evaluate(genos [][]float64) []*Individual {
	out := make([]*Individual, len(genos))
	if pl.jobs == nil || len(genos) == 1 {
		for i, g := range genos {
			out[i] = pl.eval(0, g)
		}
		return out
	}
	job := &evalJob{genos: genos, out: out}
	job.wg.Add(pl.workers)
	for w := 0; w < pl.workers; w++ {
		pl.jobs <- job
	}
	job.wg.Wait()
	return out
}
