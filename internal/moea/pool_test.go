package moea

import (
	"testing"
)

// flatProblem is an allocation-free evaluation: objectives live in a
// fixed array per call. Used to isolate the pool's own allocation
// behavior from the problem's.
type flatProblem struct{ n int }

func (f flatProblem) GenotypeLen() int { return f.n }

func (f flatProblem) Evaluate(g []float64) (Objectives, any) {
	s := 0.0
	for _, v := range g {
		s += v
	}
	return Objectives{s, -s}, nil
}

// workerTag records which worker evaluated each genotype, proving the
// WorkerProblem extension receives stable worker indices.
type workerTag struct {
	flatProblem
	seen []int32
}

func (w *workerTag) EvaluateWorker(worker int, g []float64) (Objectives, any) {
	return Objectives{g[0], -g[0]}, worker
}

// TestPoolSteadyStateAllocs pins the per-batch cost of the persistent
// pool: after warm-up, a batch must cost only the output slice, the job
// header and one Individual (+ one Objectives) per genotype — no
// goroutine creation, no per-item channel traffic. The old per-batch
// pool construction spawned `workers` goroutines per call, which shows
// up in this assertion as several extra allocations per batch.
func TestPoolSteadyStateAllocs(t *testing.T) {
	const n = 64
	genos := make([][]float64, n)
	for i := range genos {
		genos[i] = []float64{float64(i), 1}
	}
	for _, workers := range []int{1, 4} {
		pl := newEvalPool(flatProblem{n: 2}, workers)
		pl.evaluate(genos) // warm up
		avg := testing.AllocsPerRun(20, func() {
			out := pl.evaluate(genos)
			if len(out) != n {
				t.Fatalf("batch size %d", len(out))
			}
		})
		pl.close()
		// out slice + job + n Individuals + n Objectives slices, plus a
		// little headroom for runtime noise. Goroutine spawning (old
		// behavior: workers goroutines + sync.WaitGroup churn per batch)
		// would push this well past the bound.
		limit := float64(2*n + 8)
		if avg > limit {
			t.Fatalf("workers=%d: %v allocs per batch, want <= %v", workers, avg, limit)
		}
	}
}

// TestPoolOutputOrderDeterministic: the merged result order equals the
// input order for every worker count — per-worker buffers are the
// claimed slots of one output slice, so the merge is positional, not
// arrival-ordered.
func TestPoolOutputOrderDeterministic(t *testing.T) {
	const n = 257 // deliberately not a multiple of evalChunk
	genos := make([][]float64, n)
	for i := range genos {
		genos[i] = []float64{float64(i), 0}
	}
	for _, workers := range []int{1, 2, 3, 8, 32} {
		pl := newEvalPool(flatProblem{n: 2}, workers)
		for rep := 0; rep < 3; rep++ {
			out := pl.evaluate(genos)
			if len(out) != n {
				t.Fatalf("workers=%d: %d results", workers, len(out))
			}
			for i, ind := range out {
				if ind.Objectives[0] != float64(i) {
					t.Fatalf("workers=%d rep=%d: slot %d holds objective %v", workers, rep, i, ind.Objectives[0])
				}
			}
		}
		pl.close()
	}
}

// TestPoolWorkerProblemIndices: every worker index handed to
// EvaluateWorker is in [0, workers), and the serial path uses index 0.
func TestPoolWorkerProblemIndices(t *testing.T) {
	genos := make([][]float64, 128)
	for i := range genos {
		genos[i] = []float64{float64(i), 0}
	}
	for _, workers := range []int{1, 4} {
		wt := &workerTag{}
		pl := newEvalPool(wt, workers)
		out := pl.evaluate(genos)
		pl.close()
		for i, ind := range out {
			w, ok := ind.Payload.(int)
			if !ok {
				t.Fatalf("workers=%d: EvaluateWorker not used for slot %d", workers, i)
			}
			if w < 0 || w >= workers {
				t.Fatalf("workers=%d: slot %d evaluated on worker %d", workers, i, w)
			}
		}
	}
}
