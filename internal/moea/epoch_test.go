package moea

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestShardRangePartition: the shard partition must cover every island
// exactly once, contiguously, with shard sizes differing by at most one
// — for every (islands, procs) combination the orchestrator can form.
func TestShardRangePartition(t *testing.T) {
	for islands := 1; islands <= 9; islands++ {
		for procs := 1; procs <= islands; procs++ {
			next, min, max := 0, islands, 0
			for k := 0; k < procs; k++ {
				first, count := ShardRange(islands, procs, k)
				if first != next {
					t.Fatalf("islands=%d procs=%d shard %d starts at %d, want %d", islands, procs, k, first, next)
				}
				next = first + count
				if count < min {
					min = count
				}
				if count > max {
					max = count
				}
			}
			if next != islands {
				t.Fatalf("islands=%d procs=%d: shards cover %d islands", islands, procs, next)
			}
			if max-min > 1 {
				t.Fatalf("islands=%d procs=%d: shard sizes range %d..%d", islands, procs, min, max)
			}
		}
	}
}

// stepEpochSharded runs one migration epoch the way the orchestrator
// does: procs EpochStep calls over the shard partition, each shard
// JSON-round-tripped (modelling the file hop between processes), then
// MergeShards. opt.Workers may differ per call — it must not matter.
func stepEpochSharded(t *testing.T, p Problem, opt Options, iopt IslandOptions, cur *IslandCheckpoint, procs int) (*IslandCheckpoint, bool) {
	t.Helper()
	if procs > iopt.Islands {
		procs = iopt.Islands
	}
	shards := make([]*IslandShard, procs)
	for k := 0; k < procs; k++ {
		first, count := ShardRange(iopt.Islands, procs, k)
		sh, err := EpochStep(context.Background(), p, opt, iopt, cur, first, count)
		if err != nil {
			t.Fatalf("epoch step %d/%d: %v", k, procs, err)
		}
		data, err := json.Marshal(sh)
		if err != nil {
			t.Fatal(err)
		}
		rt := &IslandShard{}
		if err := json.Unmarshal(data, rt); err != nil {
			t.Fatal(err)
		}
		shards[k] = rt
	}
	merged, done, err := MergeShards(shards, iopt)
	if err != nil {
		t.Fatalf("merge at procs=%d: %v", procs, err)
	}
	return merged, done
}

// TestShardedCampaignMatchesInProcess is the process-sharding
// acceptance gate: stepping the campaign epoch by epoch through
// EpochStep + MergeShards — with the process count AND the worker count
// changing every epoch — must reproduce the in-process RunIslands
// checkpoint trajectory byte for byte, and the final merged front plus
// evaluation count exactly.
func TestShardedCampaignMatchesInProcess(t *testing.T) {
	p := zdt1{n: 10}
	opt := Options{PopSize: 16, Generations: 20, Seed: 5, Workers: 2}
	iopt := IslandOptions{Islands: 3, MigrateEvery: 5, Migrants: 3}

	full, err := RunIslands(context.Background(), p, opt, iopt)
	if err != nil {
		t.Fatal(err)
	}
	var cps [][]byte
	capture := iopt
	capture.OnCheckpoint = func(cp *IslandCheckpoint) error {
		data, err := json.Marshal(cp)
		if err != nil {
			return err
		}
		cps = append(cps, data)
		return nil
	}
	if _, err := RunIslands(context.Background(), p, opt, capture); err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no in-process checkpoints captured")
	}

	procsSeq := []int{1, 2, 3, 4}
	workerSeq := []int{4, 1, 8, 2}
	var cur *IslandCheckpoint
	merges := 0
	for epoch := 0; ; epoch++ {
		o := opt
		o.Workers = workerSeq[epoch%len(workerSeq)]
		merged, done := stepEpochSharded(t, p, o, iopt, cur, procsSeq[epoch%len(procsSeq)])
		cur = merged
		if done {
			break
		}
		// Every non-final merge corresponds to one in-process
		// post-migration checkpoint; they must be byte-identical.
		if merges >= len(cps) {
			t.Fatalf("sharded run produced more epochs than in-process (%d checkpoints)", len(cps))
		}
		data, err := json.Marshal(merged)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(data, cps[merges]) {
			t.Fatalf("epoch %d: merged checkpoint differs from in-process checkpoint", epoch)
		}
		merges++
	}
	if merges != len(cps) {
		t.Fatalf("sharded run merged %d non-final epochs, in-process emitted %d checkpoints", merges, len(cps))
	}

	if !CampaignDone(cur) {
		t.Fatal("final merged checkpoint not complete")
	}
	res, err := MergeIslandCheckpoint(context.Background(), p, opt, iopt, cur)
	if err != nil {
		t.Fatal(err)
	}
	archivesEqual(t, full.Archive, res.Archive, "sharded campaign front")
	if res.Evaluations != full.Evaluations {
		t.Fatalf("evaluations %d, want %d", res.Evaluations, full.Evaluations)
	}
}

// TestShardedResumeFromInProcessCheckpoint: the two drivers share one
// checkpoint format in both directions — a campaign started in-process
// can be finished sharded (and the front stays identical).
func TestShardedResumeFromInProcessCheckpoint(t *testing.T) {
	p := zdt1{n: 10}
	opt := Options{PopSize: 16, Generations: 20, Seed: 11, Workers: 2}
	iopt := IslandOptions{Islands: 3, MigrateEvery: 5, Migrants: 2}

	full, err := RunIslands(context.Background(), p, opt, iopt)
	if err != nil {
		t.Fatal(err)
	}
	var first *IslandCheckpoint
	capture := iopt
	capture.OnCheckpoint = func(cp *IslandCheckpoint) error {
		if first == nil {
			first = cp
		}
		return nil
	}
	if _, err := RunIslands(context.Background(), p, opt, capture); err != nil {
		t.Fatal(err)
	}
	if first == nil {
		t.Fatal("no checkpoint captured")
	}

	cur := first
	for {
		merged, done := stepEpochSharded(t, p, opt, iopt, cur, 2)
		cur = merged
		if done {
			break
		}
	}
	res, err := MergeIslandCheckpoint(context.Background(), p, opt, iopt, cur)
	if err != nil {
		t.Fatal(err)
	}
	archivesEqual(t, full.Archive, res.Archive, "in-process start, sharded finish")
	if res.Evaluations != full.Evaluations {
		t.Fatalf("evaluations %d, want %d", res.Evaluations, full.Evaluations)
	}
}

// TestEpochStepErrors: invalid shard ranges, topology mismatches and
// stepping a finished campaign are rejected with errors, not silently
// mangled state.
func TestEpochStepErrors(t *testing.T) {
	p := zdt1{n: 10}
	opt := Options{PopSize: 8, Generations: 4, Seed: 1}
	iopt := IslandOptions{Islands: 2, MigrateEvery: 2, Migrants: 1}

	for _, tc := range []struct{ first, count int }{
		{-1, 1}, {0, 0}, {0, 3}, {2, 1},
	} {
		if _, err := EpochStep(context.Background(), p, opt, iopt, nil, tc.first, tc.count); err == nil {
			t.Fatalf("range [%d,%d) accepted", tc.first, tc.first+tc.count)
		}
	}

	// Drive the campaign to completion, then ask for one more epoch.
	var cur *IslandCheckpoint
	for {
		merged, done := stepEpochSharded(t, p, opt, iopt, cur, 2)
		cur = merged
		if done {
			break
		}
	}
	if _, err := EpochStep(context.Background(), p, opt, iopt, cur, 0, 1); err == nil || !strings.Contains(err.Error(), "complete") {
		t.Fatalf("stepping a complete campaign: err = %v", err)
	}

	// Checkpoint topology must match the requesting campaign.
	bad := iopt
	bad.Islands = 3
	if _, err := EpochStep(context.Background(), p, opt, bad, cur, 0, 1); err == nil {
		t.Fatal("topology mismatch accepted")
	}

	// Cancellation aborts without emitting a shard.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EpochStep(ctx, p, opt, iopt, nil, 0, 1); err != context.Canceled {
		t.Fatalf("cancelled epoch step: err = %v, want context.Canceled", err)
	}
}

// TestMergeShardsErrors: incomplete, inconsistent or stale shard sets
// must be rejected — in particular a shard left over from an earlier
// epoch (the mid-epoch-kill recovery hazard).
func TestMergeShardsErrors(t *testing.T) {
	p := zdt1{n: 10}
	opt := Options{PopSize: 8, Generations: 8, Seed: 3}
	iopt := IslandOptions{Islands: 2, MigrateEvery: 2, Migrants: 1}

	step := func(cur *IslandCheckpoint, k int, seed int64) *IslandShard {
		o := opt
		o.Seed = seed
		first, count := ShardRange(iopt.Islands, 2, k)
		sh, err := EpochStep(context.Background(), p, o, iopt, cur, first, count)
		if err != nil {
			t.Fatal(err)
		}
		return sh
	}

	// Epoch 0 shards, merged; then epoch 1 shards.
	e0s0, e0s1 := step(nil, 0, 3), step(nil, 1, 3)
	merged, done, err := MergeShards([]*IslandShard{e0s0, e0s1}, iopt)
	if err != nil || done {
		t.Fatalf("epoch 0 merge: done=%v err=%v", done, err)
	}
	e1s0, e1s1 := step(merged, 0, 3), step(merged, 1, 3)

	cases := []struct {
		name   string
		shards []*IslandShard
		iopt   IslandOptions
		want   string
	}{
		{"empty", nil, iopt, "no shards"},
		{"nil shard", []*IslandShard{e1s0, nil}, iopt, "missing shard"},
		{"stale epoch", []*IslandShard{e0s0, e1s1}, iopt, "stale shard"},
		{"duplicate coverage", []*IslandShard{e1s0, e1s0}, iopt, "cover"},
		{"partial coverage", []*IslandShard{e1s1}, iopt, "cover"},
		{"seed mismatch", []*IslandShard{e1s0, step(nil, 1, 4)}, iopt, "seed"},
		{"topology mismatch", []*IslandShard{e1s0, e1s1}, IslandOptions{Islands: 2, MigrateEvery: 3, Migrants: 1}, "topology"},
	}
	for _, tc := range cases {
		if _, _, err := MergeShards(tc.shards, tc.iopt); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}

	// The untouched epoch-1 set still merges (the error paths above must
	// not have mutated the shards).
	if _, _, err := MergeShards([]*IslandShard{e1s1, e1s0}, iopt); err != nil {
		t.Fatalf("epoch 1 merge after error cases: %v", err)
	}
}

// TestReadIslandCheckpointFileErrors: corrupt or foreign checkpoint
// files fail loudly with a diagnostic naming the problem.
func TestReadIslandCheckpointFileErrors(t *testing.T) {
	p := zdt1{n: 10}
	opt := Options{PopSize: 8, Generations: 8, Seed: 2}
	iopt := IslandOptions{Islands: 2, MigrateEvery: 4, Migrants: 1}
	var cp *IslandCheckpoint
	capture := iopt
	capture.OnCheckpoint = func(c *IslandCheckpoint) error { cp = c; return nil }
	if _, err := RunIslands(context.Background(), p, opt, capture); err != nil {
		t.Fatal(err)
	}
	if cp == nil {
		t.Fatal("no checkpoint captured")
	}
	valid, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}

	mutate := func(f func(c *IslandCheckpoint)) []byte {
		c := &IslandCheckpoint{}
		if err := json.Unmarshal(valid, c); err != nil {
			t.Fatal(err)
		}
		f(c)
		data, err := json.Marshal(c)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"wrong format", mutate(func(c *IslandCheckpoint) { c.Format = CheckpointFormat }), "not an island checkpoint"},
		{"wrong version", mutate(func(c *IslandCheckpoint) { c.Version = 99 }), "unsupported version"},
		{"truncated json", valid[:len(valid)/2], "unexpected end of JSON"},
		{"not json", []byte("generation 12 of 40\n"), "invalid character"},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "-")+".json")
		if err := os.WriteFile(path, tc.data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadIslandCheckpointFile(path); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
	if _, err := ReadIslandCheckpointFile(filepath.Join(dir, "does-not-exist.json")); err == nil {
		t.Fatal("missing file accepted")
	}

	// check() catches an island-count/states mismatch that survives the
	// file-level validation.
	c := &IslandCheckpoint{}
	if err := json.Unmarshal(valid, c); err != nil {
		t.Fatal(err)
	}
	c.States = c.States[:1]
	if err := c.check(opt, iopt); err == nil || !strings.Contains(err.Error(), "states") {
		t.Fatalf("states/islands mismatch: err = %v", err)
	}
}

// TestReadIslandShardFileErrors mirrors the checkpoint error paths for
// the worker shard format the orchestrator merges.
func TestReadIslandShardFileErrors(t *testing.T) {
	p := zdt1{n: 10}
	opt := Options{PopSize: 8, Generations: 8, Seed: 2}
	iopt := IslandOptions{Islands: 2, MigrateEvery: 4, Migrants: 1}
	sh, err := EpochStep(context.Background(), p, opt, iopt, nil, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	valid, err := json.Marshal(sh)
	if err != nil {
		t.Fatal(err)
	}
	mutate := func(f func(s *IslandShard)) []byte {
		s := &IslandShard{}
		if err := json.Unmarshal(valid, s); err != nil {
			t.Fatal(err)
		}
		f(s)
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"wrong format", mutate(func(s *IslandShard) { s.Format = IslandCheckpointFormat }), "not an island shard"},
		{"wrong version", mutate(func(s *IslandShard) { s.Version = 7 }), "unsupported island shard version"},
		{"range outside campaign", mutate(func(s *IslandShard) { s.First = 1 }), "outside campaign"},
		{"objective misalignment", mutate(func(s *IslandShard) { s.PopObjectives[0] = s.PopObjectives[0][:1] }), "population objectives"},
		{"boundary mismatch", mutate(func(s *IslandShard) { s.Boundary++ }), "shard boundary"},
		{"truncated json", valid[:len(valid)-1], "unexpected end of JSON"},
	}
	dir := t.TempDir()
	for _, tc := range cases {
		path := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "-")+".json")
		if err := os.WriteFile(path, tc.data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadIslandShardFile(path); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: err = %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

// FuzzIslandCheckpointRoundTrip: any JSON that decodes into an island
// checkpoint must re-encode stably (marshal → unmarshal → marshal is a
// fixed point). Byte-stable serialization is what makes "the checkpoint
// trajectory is byte-identical" a meaningful cross-process contract.
func FuzzIslandCheckpointRoundTrip(f *testing.F) {
	seed := &IslandCheckpoint{
		Format:  IslandCheckpointFormat,
		Version: IslandCheckpointVersion,
		Seed:    5, Islands: 1, MigrateEvery: 5, Migrants: 2,
		States: []*Checkpoint{{
			Format: CheckpointFormat, Version: CheckpointVersion, Algorithm: "nsga2",
			Seed: 5, GenotypeLen: 2, RNG: [4]uint64{1, 2, 3, 4}, Evaluations: 40,
			PopSize: 4, Generations: 10, NextGeneration: 5,
			Population: [][]float64{{0.25, 0.5}, {0.1, 1e-9}},
			Archive:    [][]float64{{0.125, 1}},
		}},
	}
	data, err := json.Marshal(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(data)
	f.Add([]byte(fmt.Sprintf(`{"format":%q,"version":1,"states":[null]}`, IslandCheckpointFormat)))
	f.Add([]byte(`{"seed":-1,"islands":1000000}`))
	f.Add([]byte(`{`))
	f.Fuzz(func(t *testing.T, data []byte) {
		cp := &IslandCheckpoint{}
		if err := json.Unmarshal(data, cp); err != nil {
			return // not a checkpoint; nothing to round-trip
		}
		out, err := json.Marshal(cp)
		if err != nil {
			t.Fatalf("marshal decoded checkpoint: %v", err)
		}
		cp2 := &IslandCheckpoint{}
		if err := json.Unmarshal(out, cp2); err != nil {
			t.Fatalf("re-decode own encoding: %v", err)
		}
		out2, err := json.Marshal(cp2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round trip unstable:\n%s\n%s", out, out2)
		}
	})
}
