package moea

import (
	"time"
)

// Progress is one telemetry sample, emitted after every completed
// generation (NSGA-II) or archive-fold chunk (random search). The
// Archive slice is the optimizer's live archive: it is valid for the
// duration of the callback and must be copied to retain.
type Progress struct {
	// Generation is the 0-based index of the generation (NSGA-II) or
	// chunk (random search) that just completed.
	Generation int
	// Generations is the configured total generation count (NSGA-II) or
	// 0 for random search.
	Generations int
	// Evaluations counts Problem.Evaluate calls cumulatively, including
	// evaluations performed before a resume.
	Evaluations int
	// RunEvaluations counts only evaluations performed by this process —
	// the basis for throughput (evals/s) accounting across resumes.
	RunEvaluations int
	// Archive is the current all-time non-dominated set (read-only).
	Archive []*Individual
	// Elapsed is the wall-clock time since this run (or resume) started.
	Elapsed time.Duration
}
