package moea

import (
	"sync"
	"time"
)

// Progress is one telemetry sample, emitted after every completed
// generation (NSGA-II) or archive-fold chunk (random search). The
// Archive slice is the optimizer's live archive: it is valid for the
// duration of the callback and must be copied to retain.
type Progress struct {
	// Generation is the 0-based index of the generation (NSGA-II) or
	// chunk (random search) that just completed.
	Generation int
	// Generations is the configured total generation count (NSGA-II) or
	// 0 for random search.
	Generations int
	// Evaluations counts Problem.Evaluate calls cumulatively, including
	// evaluations performed before a resume.
	Evaluations int
	// RunEvaluations counts only evaluations performed by this process —
	// the basis for throughput (evals/s) accounting across resumes.
	RunEvaluations int
	// Archive is the current all-time non-dominated set (read-only).
	Archive []*Individual
	// Elapsed is the wall-clock time since this run (or resume) started.
	Elapsed time.Duration
}

// evalConcurrent evaluates the genotypes into fresh individuals, on
// `workers` goroutines when workers > 1. Output order matches input
// order, so results are deterministic for any worker count. The worker
// pool is per-batch: all goroutines exit before the call returns, which
// keeps cancellation and shutdown leak-free.
func evalConcurrent(p Problem, genos [][]float64, workers int) []*Individual {
	out := make([]*Individual, len(genos))
	eval := func(i int) {
		obj, payload := p.Evaluate(genos[i])
		out[i] = &Individual{Genotype: genos[i], Objectives: obj, Payload: payload}
	}
	if workers <= 1 || len(genos) == 1 {
		for i := range genos {
			eval(i)
		}
		return out
	}
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				eval(i)
			}
		}()
	}
	for i := range genos {
		work <- i
	}
	close(work)
	wg.Wait()
	return out
}
