// Package shard orchestrates one island-model DSE campaign across
// multiple worker processes. Each migration epoch it spawns P epoch-step
// workers (eedse -epoch-step -island-shard k/P), every worker advancing
// a contiguous island subset by exactly one epoch from the same full
// campaign checkpoint; it then collects the partial shard checkpoints,
// performs the synchronous ring migration centrally (moea.MergeShards —
// the same lexicographic migrant selection, worst-replacement injection
// and island-order merge the in-process driver uses), atomically writes
// the next full checkpoint as the recovery point, and loops.
//
// Determinism: for a fixed (seed, islands, migrate-every, migrants)
// tuple the campaign's checkpoint trajectory — and therefore the final
// merged front — is byte-identical to the in-process moea.RunIslands
// run, at any process count and any per-process worker count. Killing
// the orchestrator mid-epoch loses nothing: the last written full
// checkpoint is the recovery point, a resumed run recomputes the
// interrupted epoch bit for bit, and workers write shards atomically so
// a stale or torn file can never be merged (shards carry their epoch
// boundary and are rejected on mismatch).
package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/moea"
	"repro/internal/obs"
)

// WorkerSpec describes one epoch-step worker invocation.
type WorkerSpec struct {
	// Shard/Procs are the worker's shard index and the epoch's total
	// shard count (the -island-shard k/P argument).
	Shard, Procs int
	// First/Count are the worker's contiguous island range, derived via
	// moea.ShardRange — informational for custom spawners.
	First, Count int
	// ResumePath is the full campaign checkpoint to step from; empty on
	// the epoch-0 bootstrap.
	ResumePath string
	// OutPath is where the worker must atomically write its shard.
	OutPath string
}

// Epoch is the per-epoch telemetry sample passed to Config.OnEpoch
// after the epoch's shards merged and the recovery checkpoint hit disk.
type Epoch struct {
	// Index is the 0-based epoch count of this orchestrator run (resumed
	// runs count from 0 again).
	Index int
	// Boundary is the generation every island reached; Generations the
	// campaign budget.
	Boundary    int
	Generations int
	// Evaluations is the campaign-cumulative evaluation count.
	Evaluations int
	// Procs is the number of worker processes spawned for the epoch.
	Procs int
	// Elapsed is the wall-clock duration of the epoch (spawn to merge).
	Elapsed time.Duration
}

// Config configures an orchestrated campaign.
type Config struct {
	// Binary is the eedse executable to spawn workers from (typically
	// os.Executable()). Unused when Spawn is set.
	Binary string
	// Args are the campaign arguments every worker shares (spec,
	// decoder, budget, seed, island topology, -workers); the
	// orchestrator appends the worker-mode flags per shard.
	Args []string
	// Procs is the number of worker processes per epoch; it is capped at
	// Islands (an empty shard has nothing to step). The process count
	// never influences results, only wall-clock time.
	Procs int
	// Islands, MigrateEvery, Migrants mirror the campaign topology; they
	// cross-check every merged shard.
	Islands      int
	MigrateEvery int
	Migrants     int
	// WorkDir holds the per-epoch input checkpoint and shard files.
	WorkDir string
	// CheckpointPath is the full-campaign recovery point, atomically
	// rewritten after every merged epoch.
	CheckpointPath string
	// Resume, when non-nil, continues a campaign from a previously
	// written full checkpoint instead of bootstrapping epoch 0.
	Resume *moea.IslandCheckpoint
	// MaxEpochs stops the run after that many merged epochs (0 = run to
	// completion) — deterministic campaign chunking: the written
	// checkpoint resumes exactly where the run stopped.
	MaxEpochs int
	// Stderr receives the workers' stderr (nil discards it).
	Stderr io.Writer
	// OnEpoch, when non-nil, receives one telemetry sample per merged
	// epoch.
	OnEpoch func(Epoch)
	// Spawn runs one epoch-step worker and blocks until its shard is on
	// disk. Nil selects the default: exec Binary with Args plus the
	// worker-mode flags. Tests inject an in-process stepper here, and it
	// is the seam for launching workers on remote machines.
	Spawn func(ctx context.Context, w WorkerSpec) error
	// Obs, when non-nil, times each worker spawn and the central merge on
	// the observability tracer. Purely observational.
	Obs *obs.Tracer
}

// Run drives the campaign to completion (or MaxEpochs, or
// cancellation), returning the last full checkpoint and whether every
// island reached its generation budget. On cancellation it returns the
// last merged checkpoint (possibly nil if no epoch completed) together
// with ctx.Err(); the on-disk recovery point is always consistent.
func Run(ctx context.Context, cfg Config) (*moea.IslandCheckpoint, bool, error) {
	if cfg.Procs < 1 {
		return nil, false, fmt.Errorf("shard: procs must be positive, got %d", cfg.Procs)
	}
	if cfg.Islands < 1 {
		return nil, false, fmt.Errorf("shard: islands must be positive, got %d", cfg.Islands)
	}
	if cfg.WorkDir == "" || cfg.CheckpointPath == "" {
		return nil, false, errors.New("shard: WorkDir and CheckpointPath are required")
	}
	spawn := cfg.Spawn
	if spawn == nil {
		if cfg.Binary == "" {
			return nil, false, errors.New("shard: Binary is required without a custom Spawn")
		}
		spawn = cfg.spawnProcess
	}
	procs := cfg.Procs
	if procs > cfg.Islands {
		procs = cfg.Islands
	}
	if ctx == nil {
		ctx = context.Background()
	}

	cur := cfg.Resume
	for epoch := 0; ; epoch++ {
		if cur != nil && moea.CampaignDone(cur) {
			return cur, true, nil
		}
		if cfg.MaxEpochs > 0 && epoch >= cfg.MaxEpochs {
			return cur, false, nil
		}
		if err := ctx.Err(); err != nil {
			return cur, false, err
		}
		start := time.Now()

		resumePath := ""
		if cur != nil {
			resumePath = filepath.Join(cfg.WorkDir, "epoch-in.json")
			if err := cur.WriteFile(resumePath); err != nil {
				return cur, false, err
			}
		}

		specs := make([]WorkerSpec, procs)
		for k := range specs {
			first, count := moea.ShardRange(cfg.Islands, procs, k)
			specs[k] = WorkerSpec{
				Shard: k, Procs: procs,
				First: first, Count: count,
				ResumePath: resumePath,
				OutPath:    filepath.Join(cfg.WorkDir, fmt.Sprintf("shard-%d.json", k)),
			}
		}
		// One epoch, P workers: any failure cancels the siblings through
		// the shared context and surfaces the first error.
		epochCtx, cancel := context.WithCancel(ctx)
		var (
			wg   sync.WaitGroup
			mu   sync.Mutex
			werr error
		)
		for _, w := range specs {
			wg.Add(1)
			go func(w WorkerSpec) {
				defer wg.Done()
				sp := cfg.Obs.StartW(w.Shard, obs.StageShardSpawn)
				defer sp.End()
				if err := spawn(epochCtx, w); err != nil {
					mu.Lock()
					if werr == nil {
						werr = fmt.Errorf("shard: worker %d/%d (islands [%d,%d)): %w", w.Shard, w.Procs, w.First, w.First+w.Count, err)
					}
					mu.Unlock()
					cancel()
				}
			}(w)
		}
		wg.Wait()
		cancel()
		if werr != nil {
			if err := ctx.Err(); err != nil {
				// The run was cancelled; report that, not the collateral
				// worker kill.
				return cur, false, err
			}
			return cur, false, werr
		}

		msp := cfg.Obs.Start(obs.StageShardMerge)
		shards := make([]*moea.IslandShard, procs)
		for k, w := range specs {
			sh, err := moea.ReadIslandShardFile(w.OutPath)
			if err != nil {
				return cur, false, err
			}
			shards[k] = sh
		}
		merged, done, err := moea.MergeShards(shards, moea.IslandOptions{
			Islands: cfg.Islands, MigrateEvery: cfg.MigrateEvery, Migrants: cfg.Migrants,
		})
		if err != nil {
			return cur, false, err
		}
		if err := merged.WriteFile(cfg.CheckpointPath); err != nil {
			return cur, false, err
		}
		msp.End()
		cur = merged

		if cfg.OnEpoch != nil {
			ep := Epoch{
				Index:   epoch,
				Procs:   procs,
				Elapsed: time.Since(start),
			}
			for _, st := range merged.States {
				ep.Evaluations += st.Evaluations
				ep.Generations = st.Generations
				if st.NextGeneration > ep.Boundary {
					ep.Boundary = st.NextGeneration
				}
			}
			cfg.OnEpoch(ep)
		}
		if done {
			return cur, true, nil
		}
	}
}

// spawnProcess is the default worker launcher: one eedse subprocess in
// epoch-step mode. The worker's stdout is discarded (worker mode prints
// nothing there); stderr forwards to Config.Stderr for diagnostics.
// Context cancellation kills the subprocess.
func (cfg Config) spawnProcess(ctx context.Context, w WorkerSpec) error {
	args := append([]string(nil), cfg.Args...)
	args = append(args,
		"-epoch-step",
		"-island-shard", fmt.Sprintf("%d/%d", w.Shard, w.Procs),
		"-shard-out", w.OutPath,
	)
	if w.ResumePath != "" {
		args = append(args, "-resume", w.ResumePath)
	}
	cmd := exec.CommandContext(ctx, cfg.Binary, args...)
	cmd.Stdout = io.Discard
	cmd.Stderr = cfg.Stderr
	if cmd.Stderr == nil {
		cmd.Stderr = io.Discard
	}
	if err := cmd.Run(); err != nil {
		return fmt.Errorf("%s: %w", cfg.Binary, err)
	}
	return nil
}

// Bootstrap returns a Config with WorkDir defaulted to a fresh
// temporary directory when unset, plus the cleanup function for it.
// A mid-epoch kill leaks at most one temp directory; recovery never
// depends on WorkDir contents.
func Bootstrap(cfg Config) (Config, func(), error) {
	if cfg.WorkDir != "" {
		return cfg, func() {}, nil
	}
	dir, err := os.MkdirTemp("", "eedse-shard-*")
	if err != nil {
		return cfg, nil, err
	}
	cfg.WorkDir = dir
	return cfg, func() { os.RemoveAll(dir) }, nil
}
