package shard

import (
	"context"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/moea"
)

// zdt1 is the standard two-objective benchmark (local copy — the moea
// test fixtures are package-private).
type zdt1 struct{ n int }

func (z zdt1) GenotypeLen() int { return z.n }

func (z zdt1) Evaluate(g []float64) (moea.Objectives, any) {
	f1 := g[0]
	s := 0.0
	for _, v := range g[1:] {
		s += v
	}
	gg := 1 + 9*s/float64(z.n-1)
	return moea.Objectives{f1, gg * (1 - math.Sqrt(f1/gg))}, nil
}

// inProcessSpawn returns a Spawn hook that performs the epoch step in
// this process — the worker body without the exec — so orchestrator
// logic is testable without building the binary.
func inProcessSpawn(p moea.Problem, opt moea.Options, iopt moea.IslandOptions) func(context.Context, WorkerSpec) error {
	return func(ctx context.Context, w WorkerSpec) error {
		var full *moea.IslandCheckpoint
		if w.ResumePath != "" {
			var err error
			if full, err = moea.ReadIslandCheckpointFile(w.ResumePath); err != nil {
				return err
			}
		}
		sh, err := moea.EpochStep(ctx, p, opt, iopt, full, w.First, w.Count)
		if err != nil {
			return err
		}
		return sh.WriteFile(w.OutPath)
	}
}

func campaignConfig(t *testing.T, p moea.Problem, opt moea.Options, iopt moea.IslandOptions, procs int) Config {
	t.Helper()
	dir := t.TempDir()
	return Config{
		Procs:          procs,
		Islands:        iopt.Islands,
		MigrateEvery:   iopt.MigrateEvery,
		Migrants:       iopt.Migrants,
		WorkDir:        dir,
		CheckpointPath: filepath.Join(dir, "campaign.json"),
		Spawn:          inProcessSpawn(p, opt, iopt),
	}
}

func frontOf(t *testing.T, p moea.Problem, opt moea.Options, iopt moea.IslandOptions, cp *moea.IslandCheckpoint) *moea.Result {
	t.Helper()
	res, err := moea.MergeIslandCheckpoint(context.Background(), p, opt, iopt, cp)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func frontsEqual(t *testing.T, a, b *moea.Result, label string) {
	t.Helper()
	if a.Evaluations != b.Evaluations {
		t.Fatalf("%s: evaluations %d vs %d", label, a.Evaluations, b.Evaluations)
	}
	if len(a.Archive) != len(b.Archive) {
		t.Fatalf("%s: front size %d vs %d", label, len(a.Archive), len(b.Archive))
	}
	for i := range a.Archive {
		ga, gb := a.Archive[i].Genotype, b.Archive[i].Genotype
		for j := range ga {
			if ga[j] != gb[j] {
				t.Fatalf("%s: archive[%d] genotype differs at gene %d", label, i, j)
			}
		}
	}
}

// TestRunMatchesInProcess: the orchestrated campaign must complete and
// reproduce the in-process RunIslands front exactly — at every process
// count, including procs > islands (capped to islands).
func TestRunMatchesInProcess(t *testing.T) {
	p := zdt1{n: 10}
	opt := moea.Options{PopSize: 16, Generations: 20, Seed: 5, Workers: 2}
	iopt := moea.IslandOptions{Islands: 3, MigrateEvery: 5, Migrants: 3}

	ref, err := moea.RunIslands(context.Background(), p, opt, iopt)
	if err != nil {
		t.Fatal(err)
	}
	for _, procs := range []int{1, 2, 3, 8} {
		cfg := campaignConfig(t, p, opt, iopt, procs)
		var epochs []Epoch
		cfg.OnEpoch = func(ep Epoch) { epochs = append(epochs, ep) }
		final, done, err := Run(context.Background(), cfg)
		if err != nil || !done {
			t.Fatalf("procs=%d: done=%v err=%v", procs, done, err)
		}
		frontsEqual(t, ref, frontOf(t, p, opt, iopt, final), "orchestrated front")
		wantProcs := procs
		if wantProcs > iopt.Islands {
			wantProcs = iopt.Islands
		}
		for i, ep := range epochs {
			if ep.Index != i || ep.Procs != wantProcs || ep.Generations != opt.Generations {
				t.Fatalf("procs=%d epoch %d: telemetry %+v", procs, i, ep)
			}
			if i > 0 && (ep.Boundary <= epochs[i-1].Boundary || ep.Evaluations <= epochs[i-1].Evaluations) {
				t.Fatalf("procs=%d epoch %d: boundary/evals not monotone: %+v after %+v", procs, i, ep, epochs[i-1])
			}
		}
		if len(epochs) == 0 || epochs[len(epochs)-1].Boundary != opt.Generations {
			t.Fatalf("procs=%d: final epoch telemetry missing or short: %+v", procs, epochs)
		}
		// The on-disk recovery point is the completed campaign.
		loaded, err := moea.ReadIslandCheckpointFile(cfg.CheckpointPath)
		if err != nil {
			t.Fatal(err)
		}
		if !moea.CampaignDone(loaded) {
			t.Fatalf("procs=%d: written checkpoint not complete", procs)
		}
	}
}

// TestRunMaxEpochsResume: MaxEpochs stops deterministically; resuming
// from the written checkpoint — at a different process count — finishes
// the campaign to the identical front. This is the programmatic version
// of the kill-and-resume smoke test.
func TestRunMaxEpochsResume(t *testing.T) {
	p := zdt1{n: 10}
	opt := moea.Options{PopSize: 16, Generations: 20, Seed: 9, Workers: 2}
	iopt := moea.IslandOptions{Islands: 3, MigrateEvery: 5, Migrants: 2}

	ref, err := moea.RunIslands(context.Background(), p, opt, iopt)
	if err != nil {
		t.Fatal(err)
	}

	cfg := campaignConfig(t, p, opt, iopt, 2)
	cfg.MaxEpochs = 2
	mid, done, err := Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if done || mid == nil {
		t.Fatalf("done=%v mid=%v after MaxEpochs=2", done, mid)
	}

	resumed, err := moea.ReadIslandCheckpointFile(cfg.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := campaignConfig(t, p, opt, iopt, 3)
	cfg2.Resume = resumed
	final, done, err := Run(context.Background(), cfg2)
	if err != nil || !done {
		t.Fatalf("resume: done=%v err=%v", done, err)
	}
	frontsEqual(t, ref, frontOf(t, p, opt, iopt, final), "resumed campaign")

	// Resuming a finished campaign is a no-op returning it unchanged.
	cfg3 := campaignConfig(t, p, opt, iopt, 2)
	cfg3.Resume = final
	again, done, err := Run(context.Background(), cfg3)
	if err != nil || !done || again != final {
		t.Fatalf("re-run of finished campaign: done=%v err=%v", done, err)
	}
}

// TestRunCancellation: cancelling the orchestrator surfaces ctx.Err()
// and keeps the last merged checkpoint consistent; resuming completes
// to the identical front (kill-mid-campaign recovery).
func TestRunCancellation(t *testing.T) {
	p := zdt1{n: 10}
	opt := moea.Options{PopSize: 16, Generations: 20, Seed: 13, Workers: 2}
	iopt := moea.IslandOptions{Islands: 2, MigrateEvery: 5, Migrants: 2}

	ref, err := moea.RunIslands(context.Background(), p, opt, iopt)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cfg := campaignConfig(t, p, opt, iopt, 2)
	cfg.OnEpoch = func(ep Epoch) {
		if ep.Index == 0 {
			cancel() // cancel between epochs: next loop iteration must stop
		}
	}
	mid, done, err := Run(ctx, cfg)
	if !errors.Is(err, context.Canceled) || done {
		t.Fatalf("cancelled run: done=%v err=%v", done, err)
	}
	if mid == nil {
		t.Fatal("cancelled run lost the merged checkpoint")
	}

	cfg2 := campaignConfig(t, p, opt, iopt, 2)
	cfg2.Resume = mid
	final, done, err := Run(context.Background(), cfg2)
	if err != nil || !done {
		t.Fatalf("resume after cancel: done=%v err=%v", done, err)
	}
	frontsEqual(t, ref, frontOf(t, p, opt, iopt, final), "resume after cancellation")

	// Cancelling mid-epoch (inside the workers) must also surface
	// ctx.Err(), not the collateral worker failure.
	ctx2, cancel2 := context.WithCancel(context.Background())
	var spawned atomic.Int32
	cfg3 := campaignConfig(t, p, opt, iopt, 2)
	inner := cfg3.Spawn
	cfg3.Spawn = func(ctx context.Context, w WorkerSpec) error {
		if spawned.Add(1) == 2 {
			cancel2()
		}
		return inner(ctx, w)
	}
	_, done, err = Run(ctx2, cfg3)
	if !errors.Is(err, context.Canceled) || done {
		t.Fatalf("mid-epoch cancel: done=%v err=%v", done, err)
	}
	cancel2()
}

// TestRunWorkerFailure: a failing worker aborts the epoch with a
// diagnostic naming the shard, and the campaign state stays at the last
// merged checkpoint.
func TestRunWorkerFailure(t *testing.T) {
	p := zdt1{n: 10}
	opt := moea.Options{PopSize: 8, Generations: 8, Seed: 1}
	iopt := moea.IslandOptions{Islands: 2, MigrateEvery: 4, Migrants: 1}

	boom := errors.New("boom")
	cfg := campaignConfig(t, p, opt, iopt, 2)
	inner := cfg.Spawn
	cfg.Spawn = func(ctx context.Context, w WorkerSpec) error {
		if w.Shard == 1 {
			return boom
		}
		return inner(ctx, w)
	}
	cur, done, err := Run(context.Background(), cfg)
	if !errors.Is(err, boom) || done || cur != nil {
		t.Fatalf("worker failure: cur=%v done=%v err=%v", cur, done, err)
	}
	if !strings.Contains(err.Error(), "worker 1/2") {
		t.Fatalf("error does not name the failing shard: %v", err)
	}
}

// TestRunValidation: misconfiguration is rejected before any worker is
// spawned.
func TestRunValidation(t *testing.T) {
	base := Config{
		Procs: 1, Islands: 1, MigrateEvery: 5, Migrants: 1,
		WorkDir: t.TempDir(), CheckpointPath: filepath.Join(t.TempDir(), "cp.json"),
		Spawn: func(ctx context.Context, w WorkerSpec) error { return nil },
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"procs", func(c *Config) { c.Procs = 0 }},
		{"islands", func(c *Config) { c.Islands = 0 }},
		{"workdir", func(c *Config) { c.WorkDir = "" }},
		{"checkpoint path", func(c *Config) { c.CheckpointPath = "" }},
		{"binary", func(c *Config) { c.Spawn = nil }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, _, err := Run(context.Background(), cfg); err == nil {
			t.Fatalf("%s: invalid config accepted", tc.name)
		}
	}
}

// TestBootstrapWorkDir: Bootstrap leaves an explicit WorkDir alone and
// creates (then removes) a temporary one otherwise.
func TestBootstrapWorkDir(t *testing.T) {
	dir := t.TempDir()
	cfg, cleanup, err := Bootstrap(Config{WorkDir: dir})
	if err != nil || cfg.WorkDir != dir {
		t.Fatalf("explicit workdir: %q err=%v", cfg.WorkDir, err)
	}
	cleanup()
	if _, err := os.Stat(dir); err != nil {
		t.Fatal("cleanup removed an explicit workdir")
	}

	cfg, cleanup, err = Bootstrap(Config{})
	if err != nil || cfg.WorkDir == "" {
		t.Fatalf("default workdir: %q err=%v", cfg.WorkDir, err)
	}
	if _, err := os.Stat(cfg.WorkDir); err != nil {
		t.Fatalf("default workdir missing: %v", err)
	}
	cleanup()
	if _, err := os.Stat(cfg.WorkDir); !os.IsNotExist(err) {
		t.Fatalf("cleanup left the temp workdir: %v", err)
	}
}

// TestCorruptWorkerOutput: a worker that reports success but leaves a
// torn or garbage shard file must fail the epoch with the typed
// corruption error naming the file — never a JSON panic, never a
// silent restart from scratch.
func TestCorruptWorkerOutput(t *testing.T) {
	p := zdt1{n: 10}
	opt := moea.Options{PopSize: 8, Generations: 8, Seed: 1}
	iopt := moea.IslandOptions{Islands: 2, MigrateEvery: 4, Migrants: 1}

	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"garbage", []byte("\x00\xff not json at all")},
		{"truncated", []byte(`{"format":"eedse-dse-island-shard","vers`)},
		{"empty", nil},
		{"wrong type", []byte(`{"format":"something-else","version":1}`)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := campaignConfig(t, p, opt, iopt, 2)
			inner := cfg.Spawn
			var corrupted string
			cfg.Spawn = func(ctx context.Context, w WorkerSpec) error {
				if w.Shard == 1 {
					corrupted = w.OutPath
					return os.WriteFile(w.OutPath, tc.data, 0o644)
				}
				return inner(ctx, w)
			}
			cur, done, err := Run(context.Background(), cfg)
			if err == nil || done || cur != nil {
				t.Fatalf("corrupt shard accepted: cur=%v done=%v err=%v", cur, done, err)
			}
			if !errors.Is(err, moea.ErrCheckpointCorrupt) {
				t.Fatalf("not typed as checkpoint corruption: %v", err)
			}
			if !strings.Contains(err.Error(), corrupted) {
				t.Fatalf("error does not name the corrupt file %q: %v", corrupted, err)
			}
		})
	}
}

// TestCorruptResumeCheckpoint: the campaign-level resume file gets the
// same treatment — corrupt is a typed, file-naming error distinct from
// missing (which the readers surface as fs.ErrNotExist, the signal to
// start fresh).
func TestCorruptResumeCheckpoint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "campaign.json")
	if _, err := moea.ReadIslandCheckpointFile(path); err == nil || errors.Is(err, moea.ErrCheckpointCorrupt) {
		t.Fatalf("missing file must not read as corrupt: %v", err)
	}
	for _, data := range [][]byte{
		[]byte("{"),
		[]byte("\x7f\x45\x4c\x46"),
		{},
		[]byte(`{"format":"eedse-dse-checkpoint","version":1}`), // single-run format, not island
		[]byte(`{"format":"eedse-dse-island-checkpoint","version":99}`),
	} {
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err := moea.ReadIslandCheckpointFile(path)
		if !errors.Is(err, moea.ErrCheckpointCorrupt) {
			t.Fatalf("%q: not typed as corruption: %v", data, err)
		}
		if !strings.Contains(err.Error(), path) {
			t.Fatalf("error does not name the file: %v", err)
		}
	}
}
