package casestudy

import (
	"fmt"
	"math/rand"

	"repro/internal/bistgen"
	"repro/internal/model"
)

// Options parameterize case study construction.
type Options struct {
	// ProfilesPerECU selects how many Table I profiles are offered per
	// ECU (1..36, default 36). Smaller values shrink the design space
	// for fast tests.
	ProfilesPerECU int
	// Profiles overrides the profile set (default: TableI()).
	Profiles []bistgen.Profile
	// Measured, when non-nil and Profiles is nil, characterizes the
	// profile set on a synthetic scan CUT with real fault simulation
	// (MeasuredProfiles) instead of using the embedded Table I. Its
	// Workers field shards the grading simulations.
	Measured *MeasuredOptions
	// Seed drives the deterministic pseudo-random assignment of mapping
	// options and message periods.
	Seed int64
	// IncludeSBST adds the software-based self-test alternatives of
	// SBSTProfiles as further per-ECU options (related-work comparison).
	IncludeSBST bool
	// ExcludeBIST drops the hardware BIST profiles, leaving SBST as the
	// only diagnosis option (requires IncludeSBST) — the [14] baseline.
	ExcludeBIST bool
	// FDPayload > 0 models the future-architecture variant the paper
	// alludes to ("existing and future automotive architectures"): the
	// buses run CAN FD at 2 Mbit/s and functional messages carry
	// FDPayload-byte container PDUs (typically 64) at unchanged periods,
	// multiplying the mirrored Eq. (1) bandwidth accordingly.
	FDPayload int
}

func (o Options) withDefaults() Options {
	if o.Profiles == nil {
		o.Profiles = TableI()
	}
	if o.ProfilesPerECU <= 0 || o.ProfilesPerECU > len(o.Profiles) {
		o.ProfilesPerECU = len(o.Profiles)
	}
	if o.Seed == 0 {
		o.Seed = 2014
	}
	return o
}

// appShape describes one control application tree: how many sensor
// tasks feed its processing chain and how many actuator tasks hang off
// its tail.
type appShape struct {
	name      string
	sensors   int
	procs     int
	actuators int
	bus       int // home bus index 0..2
}

// The four applications: 9 sensor tasks + 31 processing tasks +
// 5 actuator tasks = 45 tasks; each application is a tree, so the
// message count is 45 − 4 = 41.
var appShapes = [4]appShape{
	{name: "powertrain", sensors: 3, procs: 8, actuators: 1, bus: 0},
	{name: "chassis", sensors: 2, procs: 8, actuators: 2, bus: 1},
	{name: "adas", sensors: 2, procs: 8, actuators: 1, bus: 2},
	{name: "body", sensors: 2, procs: 7, actuators: 1, bus: 2},
}

var messagePeriods = []float64{10, 20, 50, 100}

// Build constructs the specification of the paper's case study.
func Build(opt Options) (*model.Specification, error) {
	if opt.Profiles == nil && opt.Measured != nil {
		profiles, err := MeasuredProfiles(*opt.Measured)
		if err != nil {
			return nil, err
		}
		opt.Profiles = profiles
	}
	opt = opt.withDefaults()
	rng := rand.New(rand.NewSource(opt.Seed))

	app := model.NewApplicationGraph()
	arch := model.NewArchitectureGraph()

	// --- Architecture: 3 CAN buses, 15 ECUs (5 per bus), 9 sensors,
	// 5 actuators, central gateway on all buses.
	busRate := 500_000.0
	msgPayload := int64(8)
	if opt.FDPayload > 0 {
		busRate = 2_000_000
		msgPayload = int64(opt.FDPayload)
		if msgPayload > 64 {
			msgPayload = 64
		}
	}
	buses := make([]model.ResourceID, 3)
	for b := range buses {
		buses[b] = model.ResourceID(fmt.Sprintf("can%d", b))
		if err := arch.AddResource(&model.Resource{
			ID: buses[b], Kind: model.KindBus, Cost: 5, BitRate: busRate,
		}); err != nil {
			return nil, err
		}
	}
	gw := model.ResourceID("gateway")
	if err := arch.AddResource(&model.Resource{
		ID: gw, Kind: model.KindGateway, Cost: 80, MemCostPerKB: 0.004,
	}); err != nil {
		return nil, err
	}
	for _, b := range buses {
		if err := arch.Connect(gw, b); err != nil {
			return nil, err
		}
	}
	ecus := make([]model.ResourceID, 15)
	for i := range ecus {
		ecus[i] = model.ResourceID(fmt.Sprintf("ecu%02d", i+1))
		cost := 50 + float64(rng.Intn(80)) // 50..129
		if err := arch.AddResource(&model.Resource{
			ID: ecus[i], Kind: model.KindECU, Cost: cost,
			BISTCapable: true, BISTCost: cost * 0.005, MemCostPerKB: 0.02,
		}); err != nil {
			return nil, err
		}
		if err := arch.Connect(ecus[i], buses[i/5]); err != nil {
			return nil, err
		}
	}
	sensors := make([]model.ResourceID, 9)
	for i := range sensors {
		sensors[i] = model.ResourceID(fmt.Sprintf("sensor%d", i+1))
		if err := arch.AddResource(&model.Resource{
			ID: sensors[i], Kind: model.KindSensor, Cost: 8,
		}); err != nil {
			return nil, err
		}
	}
	actuators := make([]model.ResourceID, 5)
	for i := range actuators {
		actuators[i] = model.ResourceID(fmt.Sprintf("actuator%d", i+1))
		if err := arch.AddResource(&model.Resource{
			ID: actuators[i], Kind: model.KindActuator, Cost: 12,
		}); err != nil {
			return nil, err
		}
	}

	spec := model.NewSpecification(app, arch)
	spec.Gateway = gw

	// --- Functional applications.
	if err := app.AddTask(&model.Task{ID: "bR", Kind: model.KindCollect}); err != nil {
		return nil, err
	}
	if err := spec.AddMapping("bR", gw); err != nil {
		return nil, err
	}

	sensorIdx, actuatorIdx := 0, 0
	prio := 1
	for _, shape := range appShapes {
		bus := buses[shape.bus]
		busECUs := ecus[shape.bus*5 : shape.bus*5+5]
		// Attach this app's sensors and actuators to its home bus.
		var sensorTasks []model.TaskID
		for s := 0; s < shape.sensors; s++ {
			res := sensors[sensorIdx]
			sensorIdx++
			if err := arch.Connect(res, bus); err != nil {
				return nil, err
			}
			tid := model.TaskID(fmt.Sprintf("%s.s%d", shape.name, s))
			if err := app.AddTask(&model.Task{ID: tid, Kind: model.KindFunctional, WCETms: 0.5}); err != nil {
				return nil, err
			}
			if err := spec.AddMapping(tid, res); err != nil {
				return nil, err
			}
			sensorTasks = append(sensorTasks, tid)
		}
		// Processing chain with 2–3 ECU mapping options each.
		var procTasks []model.TaskID
		for p := 0; p < shape.procs; p++ {
			tid := model.TaskID(fmt.Sprintf("%s.p%d", shape.name, p))
			if err := app.AddTask(&model.Task{ID: tid, Kind: model.KindFunctional, WCETms: 1, MemBytes: 4096}); err != nil {
				return nil, err
			}
			nOpts := 2 + rng.Intn(2)
			perm := rng.Perm(len(busECUs))
			for k := 0; k < nOpts; k++ {
				if err := spec.AddMapping(tid, busECUs[perm[k]]); err != nil {
					return nil, err
				}
			}
			procTasks = append(procTasks, tid)
		}
		var actuatorTasks []model.TaskID
		for a := 0; a < shape.actuators; a++ {
			res := actuators[actuatorIdx]
			actuatorIdx++
			if err := arch.Connect(res, bus); err != nil {
				return nil, err
			}
			tid := model.TaskID(fmt.Sprintf("%s.a%d", shape.name, a))
			if err := app.AddTask(&model.Task{ID: tid, Kind: model.KindFunctional, WCETms: 0.5}); err != nil {
				return nil, err
			}
			if err := spec.AddMapping(tid, res); err != nil {
				return nil, err
			}
			actuatorTasks = append(actuatorTasks, tid)
		}

		// Tree edges: sensors fan into the first processing task, the
		// processing tasks form a chain, the actuators hang off the tail.
		addMsg := func(src, dst model.TaskID) error {
			id := model.MessageID(fmt.Sprintf("c.%s.%s", src, dst))
			err := app.AddMessage(&model.Message{
				ID: id, Src: src, Dst: []model.TaskID{dst},
				SizeBytes: msgPayload,
				PeriodMS:  messagePeriods[rng.Intn(len(messagePeriods))],
				Priority:  prio,
			})
			prio++
			return err
		}
		for _, s := range sensorTasks {
			if err := addMsg(s, procTasks[0]); err != nil {
				return nil, err
			}
		}
		for p := 1; p < len(procTasks); p++ {
			if err := addMsg(procTasks[p-1], procTasks[p]); err != nil {
				return nil, err
			}
		}
		for _, a := range actuatorTasks {
			if err := addMsg(procTasks[len(procTasks)-1], a); err != nil {
				return nil, err
			}
		}
	}

	// --- Diagnostic tasks: per ECU, one (b^T, b^D, c^D, c^R) family per
	// selectable profile.
	if !opt.ExcludeBIST {
		if err := AddBIST(spec, ecus, opt.Profiles[:opt.ProfilesPerECU]); err != nil {
			return nil, err
		}
	}
	if opt.IncludeSBST {
		if err := AddSBST(spec, ecus, SBSTProfiles()); err != nil {
			return nil, err
		}
	}
	if opt.ExcludeBIST && !opt.IncludeSBST {
		return nil, fmt.Errorf("casestudy: ExcludeBIST without IncludeSBST leaves no diagnosis options")
	}

	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("casestudy: built an invalid specification: %w", err)
	}
	return spec, nil
}

// BISTShare returns the fraction of ECU r's total IC fault population
// that lives in its BIST-testable microprocessor. The paper maximizes
// "the average stuck-at fault coverage achieved for all the ICs in the
// ECUs", but BIST exercises only the main µC — transceivers, power
// ASICs and peripherals stay untested, which caps per-ECU quality below
// 1 (the ≈85 % ceiling visible in the paper's Fig. 5). The share is a
// deterministic per-ECU value in [0.78, 0.92].
func BISTShare(r model.ResourceID) float64 {
	h := uint32(2166136261)
	for _, b := range []byte(r) {
		h = (h ^ uint32(b)) * 16777619
	}
	return 0.78 + 0.14*float64(h%1000)/999
}

// AddBIST augments a specification with the BIST task families of the
// given profiles for each listed ECU: the test task b^T (bindable only
// to its ECU, its coverage derated by BISTShare), the data task b^D
// (bindable to the ECU or the gateway), the pattern message c^D, and
// the fail-data message c^R to the mandatory collector bR (Fig. 3 of
// the paper).
func AddBIST(spec *model.Specification, ecus []model.ResourceID, profiles []bistgen.Profile) error {
	app := spec.App
	if app.Task("bR") == nil {
		return fmt.Errorf("casestudy: specification has no collector task bR")
	}
	for _, ecu := range ecus {
		for _, p := range profiles {
			bT := model.TaskID(fmt.Sprintf("bT.%s.%d", ecu, p.Number))
			bD := model.TaskID(fmt.Sprintf("bD.%s.%d", ecu, p.Number))
			if err := app.AddTask(&model.Task{
				ID: bT, Kind: model.KindBISTTest, TestedECU: ecu,
				Coverage: p.Coverage * BISTShare(ecu), WCETms: p.RuntimeMS, Profile: p.Number,
			}); err != nil {
				return err
			}
			if err := app.AddTask(&model.Task{
				ID: bD, Kind: model.KindBISTData, TestedECU: ecu,
				MemBytes: p.DataBytes, Profile: p.Number,
			}); err != nil {
				return err
			}
			if err := app.AddMessage(&model.Message{
				ID: model.MessageID("cD." + string(bT)), Src: bD, Dst: []model.TaskID{bT},
				SizeBytes: 8, PeriodMS: 10,
			}); err != nil {
				return err
			}
			if err := app.AddMessage(&model.Message{
				ID: model.MessageID("cR." + string(bT)), Src: bT, Dst: []model.TaskID{"bR"},
				SizeBytes: 8, PeriodMS: 100,
			}); err != nil {
				return err
			}
			if err := spec.AddMapping(bT, ecu); err != nil {
				return err
			}
			if err := spec.AddMapping(bD, ecu); err != nil {
				return err
			}
			if err := spec.AddMapping(bD, spec.Gateway); err != nil {
				return err
			}
		}
	}
	return nil
}
