// Package casestudy builds the automotive E/E-architecture subnet of
// the paper's Section IV: four control-centric applications with 45
// tasks and 41 messages over 15 ECUs, 9 sensors and 5 actuators on
// three CAN buses joined by a central gateway — plus, per ECU, the 36
// selectable BIST profiles of Table I as optional diagnostic tasks.
package casestudy

import "repro/internal/bistgen"

// tableIRow is one row of the paper's Table I.
type tableIRow struct {
	prps     int
	coverage float64 // percent
	runtime  float64 // ms
	bytes    int64
}

// tableI reproduces Table I verbatim: BIST profiles measured on the
// Infineon automotive processor (371,900 collapsed faults, 100 scan
// chains × ≤77 cells, 40 MHz).
var tableI = [36]tableIRow{
	{500, 99.83, 4.87, 2_399_185},
	{500, 99.84, 4.87, 2_401_554},
	{500, 98.17, 2.81, 994_156},
	{500, 95.73, 1.71, 455_061},
	{1000, 99.84, 5.79, 2_370_883},
	{1000, 99.84, 5.74, 2_340_080},
	{1000, 98.15, 3.66, 918_895},
	{1000, 96.13, 2.67, 455_193},
	{5000, 99.87, 13.37, 2_300_488},
	{5000, 99.87, 13.31, 2_263_762},
	{5000, 98.21, 11.23, 772_886},
	{5000, 95.61, 10.25, 311_258},
	{10000, 99.87, 22.93, 2_261_705},
	{10000, 99.87, 22.85, 2_210_762},
	{10000, 98.06, 20.61, 834_119},
	{10000, 95.97, 19.75, 304_549},
	{20000, 99.88, 42.11, 2_216_126},
	{20000, 99.88, 42.05, 2_180_585},
	{20000, 97.62, 39.74, 757_737},
	{20000, 95.16, 38.88, 229_353},
	{50000, 99.87, 99.59, 2_054_510},
	{50000, 99.87, 99.53, 2_018_968},
	{50000, 97.93, 97.24, 610_337},
	{50000, 96.11, 96.63, 231_227},
	{100000, 99.87, 195.84, 2_054_081},
	{100000, 99.87, 195.74, 1_994_845},
	{100000, 98.10, 193.49, 611_093},
	{100000, 95.36, 192.76, 158_531},
	{200000, 99.89, 388.06, 1_888_552},
	{200000, 99.89, 387.99, 1_843_533},
	{200000, 98.13, 385.87, 540_342},
	{200000, 95.99, 385.26, 162_417},
	{500000, 99.89, 965.35, 1_767_609},
	{500000, 99.89, 965.31, 1_741_544},
	{500000, 98.28, 963.25, 475_080},
	{500000, 96.69, 962.76, 171_792},
}

// targetNames labels the four variants of each PRP level in Table I
// order: two maximum-coverage runs, a 98 % run and a 95 % run.
var targetNames = [4]string{"max", "max", "98%", "95%"}

// TableI returns the paper's 36 BIST profiles as bistgen.Profile values
// (coverage in [0,1]). The fail data per session is fixed at roughly
// 638 bytes and transferred to the central gateway regardless of
// profile, so it is not part of s(b).
func TableI() []bistgen.Profile {
	out := make([]bistgen.Profile, len(tableI))
	for i, r := range tableI {
		out[i] = bistgen.Profile{
			Number:    i + 1,
			PRPs:      r.prps,
			Coverage:  r.coverage / 100,
			RuntimeMS: r.runtime,
			DataBytes: r.bytes,
			Target:    targetNames[i%4],
		}
	}
	return out
}

// FailDataBytes is the fixed fail-data volume per BIST session shipped
// to the gateway (Section IV-A).
const FailDataBytes = 638
