package casestudy

import (
	"testing"

	"repro/internal/model"
)

func TestTableIContents(t *testing.T) {
	profiles := TableI()
	if len(profiles) != 36 {
		t.Fatalf("len = %d", len(profiles))
	}
	// Spot-check rows 1, 3 and 36 against the paper.
	p1 := profiles[0]
	if p1.PRPs != 500 || p1.Coverage != 0.9983 || p1.RuntimeMS != 4.87 || p1.DataBytes != 2_399_185 {
		t.Fatalf("row 1 = %+v", p1)
	}
	p3 := profiles[2]
	if p3.Target != "98%" || p3.DataBytes != 994_156 {
		t.Fatalf("row 3 = %+v", p3)
	}
	p36 := profiles[35]
	if p36.PRPs != 500_000 || p36.Coverage != 0.9669 || p36.DataBytes != 171_792 {
		t.Fatalf("row 36 = %+v", p36)
	}
	for i, p := range profiles {
		if p.Number != i+1 {
			t.Fatalf("numbering broken at %d", i)
		}
		if p.Coverage < 0.95 || p.Coverage > 1 {
			t.Fatalf("coverage out of range: %+v", p)
		}
		if p.RuntimeMS <= 0 || p.DataBytes <= 0 {
			t.Fatalf("non-positive attributes: %+v", p)
		}
	}
}

// TestTableIShape verifies the qualitative structure the DSE exploits:
// within a PRP level the 95% profile stores less than the 98% profile,
// which stores less than both max profiles; and runtime grows with the
// pattern count.
func TestTableIShape(t *testing.T) {
	profiles := TableI()
	for level := 0; level < 9; level++ {
		ps := profiles[level*4 : level*4+4]
		if ps[3].DataBytes >= ps[2].DataBytes {
			t.Fatalf("level %d: 95%% stores %d, 98%% stores %d", level, ps[3].DataBytes, ps[2].DataBytes)
		}
		if ps[2].DataBytes >= ps[0].DataBytes || ps[2].DataBytes >= ps[1].DataBytes {
			t.Fatalf("level %d: 98%% not below max", level)
		}
		for i := 1; i < 4; i++ {
			if ps[i].PRPs != ps[0].PRPs {
				t.Fatalf("level %d mixes PRP counts", level)
			}
		}
	}
	for level := 1; level < 9; level++ {
		if profiles[level*4].RuntimeMS <= profiles[(level-1)*4].RuntimeMS {
			t.Fatal("runtime not increasing with PRPs")
		}
	}
}

func TestBuildPaperCounts(t *testing.T) {
	spec, err := Build(Options{})
	if err != nil {
		t.Fatal(err)
	}
	app := spec.App
	arch := spec.Arch

	if n := len(app.TasksOfKind(model.KindFunctional)); n != 45 {
		t.Fatalf("functional tasks = %d, want 45", n)
	}
	functionalMsgs := 0
	for _, m := range app.Messages() {
		if src := app.Task(m.Src); src != nil && src.Kind == model.KindFunctional {
			functionalMsgs++
		}
	}
	if functionalMsgs != 41 {
		t.Fatalf("functional messages = %d, want 41", functionalMsgs)
	}
	if n := len(arch.ResourcesOfKind(model.KindECU)); n != 15 {
		t.Fatalf("ECUs = %d, want 15", n)
	}
	if n := len(arch.ResourcesOfKind(model.KindSensor)); n != 9 {
		t.Fatalf("sensors = %d, want 9", n)
	}
	if n := len(arch.ResourcesOfKind(model.KindActuator)); n != 5 {
		t.Fatalf("actuators = %d, want 5", n)
	}
	if n := len(arch.ResourcesOfKind(model.KindBus)); n != 3 {
		t.Fatalf("buses = %d, want 3", n)
	}
	if n := len(app.TasksOfKind(model.KindBISTTest)); n != 15*36 {
		t.Fatalf("BIST test tasks = %d, want 540", n)
	}
	if n := len(app.TasksOfKind(model.KindBISTData)); n != 15*36 {
		t.Fatalf("BIST data tasks = %d, want 540", n)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(Options{ProfilesPerECU: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(Options{ProfilesPerECU: 2})
	if err != nil {
		t.Fatal(err)
	}
	am, bm := a.Mappings(), b.Mappings()
	if len(am) != len(bm) {
		t.Fatalf("mapping counts differ: %d vs %d", len(am), len(bm))
	}
	for i := range am {
		if am[i] != bm[i] {
			t.Fatalf("mapping %d differs: %v vs %v", i, am[i], bm[i])
		}
	}
}

func TestBuildProfilesSubset(t *testing.T) {
	spec, err := Build(Options{ProfilesPerECU: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, ecu := range spec.Arch.ResourcesOfKind(model.KindECU) {
		if n := len(spec.BISTTasksForECU(ecu.ID)); n != 4 {
			t.Fatalf("ECU %s has %d profiles, want 4", ecu.ID, n)
		}
	}
}

func TestBISTPairingComplete(t *testing.T) {
	spec, err := Build(Options{ProfilesPerECU: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, bT := range spec.App.TasksOfKind(model.KindBISTTest) {
		bD := spec.DataTaskFor(bT)
		if bD == nil {
			t.Fatalf("test task %s has no data task", bT.ID)
		}
		if bD.TestedECU != bT.TestedECU || bD.Profile != bT.Profile {
			t.Fatalf("pairing mismatch: %v vs %v", bT, bD)
		}
		// The data task must be mappable to the ECU and the gateway.
		targets := spec.MappingTargets(bD.ID)
		if len(targets) != 2 {
			t.Fatalf("data task %s targets = %v", bD.ID, targets)
		}
	}
}

func TestSmallSpec(t *testing.T) {
	spec, err := Small(3, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(spec.Arch.ResourcesOfKind(model.KindECU)); n != 3 {
		t.Fatalf("ECUs = %d", n)
	}
	if n := len(spec.App.TasksOfKind(model.KindBISTTest)); n != 12 {
		t.Fatalf("BIST tasks = %d, want 12", n)
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSmallRejectsTinyFleet(t *testing.T) {
	if _, err := Small(1, 4, 1); err == nil {
		t.Fatal("1-ECU subnet accepted")
	}
}

func TestSBSTProfiles(t *testing.T) {
	ps := SBSTProfiles()
	if len(ps) != 3 {
		t.Fatalf("profiles = %d", len(ps))
	}
	for i, p := range ps {
		if p.Coverage <= 0.4 || p.Coverage >= 0.8 {
			t.Fatalf("SBST coverage out of literature range: %+v", p)
		}
		if i > 0 && (p.Coverage <= ps[i-1].Coverage || p.RuntimeMS <= ps[i-1].RuntimeMS) {
			t.Fatal("SBST profiles not ordered by effort")
		}
	}
	// SBST coverage must stay below the worst hardware BIST profile.
	worstBIST := 1.0
	for _, p := range TableI() {
		if p.Coverage < worstBIST {
			worstBIST = p.Coverage
		}
	}
	for _, p := range ps {
		if p.Coverage >= worstBIST {
			t.Fatalf("SBST profile %d out-covers hardware BIST", p.Number)
		}
	}
}

func TestBuildWithSBST(t *testing.T) {
	spec, err := Build(Options{ProfilesPerECU: 2, IncludeSBST: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, ecu := range spec.Arch.ResourcesOfKind(model.KindECU) {
		tasks := spec.BISTTasksForECU(ecu.ID)
		if len(tasks) != 5 { // 2 BIST + 3 SBST
			t.Fatalf("ECU %s offers %d tests, want 5", ecu.ID, len(tasks))
		}
	}
	// SBST data tasks are bindable locally only.
	for _, bD := range spec.App.TasksOfKind(model.KindBISTData) {
		targets := spec.MappingTargets(bD.ID)
		if bD.Profile >= 37 {
			if len(targets) != 1 || targets[0] != bD.TestedECU {
				t.Fatalf("SBST data task %s targets %v", bD.ID, targets)
			}
		}
	}
}

func TestBuildSBSTOnly(t *testing.T) {
	spec, err := Build(Options{IncludeSBST: true, ExcludeBIST: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, bT := range spec.App.TasksOfKind(model.KindBISTTest) {
		if bT.Profile < 37 {
			t.Fatalf("hardware BIST %s present in SBST-only build", bT.ID)
		}
	}
	if _, err := Build(Options{ExcludeBIST: true}); err == nil {
		t.Fatal("ExcludeBIST without IncludeSBST accepted")
	}
}
