package casestudy

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// Small builds a reduced subnet for examples and fast tests: nECUs on a
// single CAN bus plus a gateway, one sensor → processing chain →
// actuator application whose processing tasks have two mapping options
// each, and profilesPerECU Table I profiles per ECU.
func Small(nECUs, profilesPerECU int, seed int64) (*model.Specification, error) {
	if nECUs < 2 {
		return nil, fmt.Errorf("casestudy: Small needs at least 2 ECUs")
	}
	if profilesPerECU <= 0 || profilesPerECU > 36 {
		profilesPerECU = 4
	}
	rng := rand.New(rand.NewSource(seed))

	app := model.NewApplicationGraph()
	arch := model.NewArchitectureGraph()
	bus := model.ResourceID("can0")
	if err := arch.AddResource(&model.Resource{ID: bus, Kind: model.KindBus, Cost: 5, BitRate: 500_000}); err != nil {
		return nil, err
	}
	gw := model.ResourceID("gateway")
	if err := arch.AddResource(&model.Resource{ID: gw, Kind: model.KindGateway, Cost: 80, MemCostPerKB: 0.004}); err != nil {
		return nil, err
	}
	if err := arch.Connect(gw, bus); err != nil {
		return nil, err
	}
	ecus := make([]model.ResourceID, nECUs)
	for i := range ecus {
		ecus[i] = model.ResourceID(fmt.Sprintf("ecu%02d", i+1))
		cost := 50 + float64(rng.Intn(80))
		if err := arch.AddResource(&model.Resource{
			ID: ecus[i], Kind: model.KindECU, Cost: cost,
			BISTCapable: true, BISTCost: cost * 0.005, MemCostPerKB: 0.02,
		}); err != nil {
			return nil, err
		}
		if err := arch.Connect(ecus[i], bus); err != nil {
			return nil, err
		}
	}
	sensor := model.ResourceID("sensor1")
	if err := arch.AddResource(&model.Resource{ID: sensor, Kind: model.KindSensor, Cost: 8}); err != nil {
		return nil, err
	}
	if err := arch.Connect(sensor, bus); err != nil {
		return nil, err
	}
	act := model.ResourceID("actuator1")
	if err := arch.AddResource(&model.Resource{ID: act, Kind: model.KindActuator, Cost: 12}); err != nil {
		return nil, err
	}
	if err := arch.Connect(act, bus); err != nil {
		return nil, err
	}

	spec := model.NewSpecification(app, arch)
	spec.Gateway = gw
	if err := app.AddTask(&model.Task{ID: "bR", Kind: model.KindCollect}); err != nil {
		return nil, err
	}
	if err := spec.AddMapping("bR", gw); err != nil {
		return nil, err
	}

	// One chain: sensor → p0 → p1 → … → actuator, one processing task
	// per ECU pair.
	if err := app.AddTask(&model.Task{ID: "read", Kind: model.KindFunctional, WCETms: 0.5}); err != nil {
		return nil, err
	}
	if err := spec.AddMapping("read", sensor); err != nil {
		return nil, err
	}
	prev := model.TaskID("read")
	prio := 1
	addMsg := func(src, dst model.TaskID) error {
		err := app.AddMessage(&model.Message{
			ID: model.MessageID(fmt.Sprintf("c.%s.%s", src, dst)), Src: src,
			Dst: []model.TaskID{dst}, SizeBytes: 8,
			PeriodMS: messagePeriods[rng.Intn(len(messagePeriods))], Priority: prio,
		})
		prio++
		return err
	}
	nProc := nECUs
	for p := 0; p < nProc; p++ {
		tid := model.TaskID(fmt.Sprintf("p%d", p))
		if err := app.AddTask(&model.Task{ID: tid, Kind: model.KindFunctional, WCETms: 1, MemBytes: 4096}); err != nil {
			return nil, err
		}
		if err := spec.AddMapping(tid, ecus[p%nECUs]); err != nil {
			return nil, err
		}
		if err := spec.AddMapping(tid, ecus[(p+1)%nECUs]); err != nil {
			return nil, err
		}
		if err := addMsg(prev, tid); err != nil {
			return nil, err
		}
		prev = tid
	}
	if err := app.AddTask(&model.Task{ID: "drive", Kind: model.KindFunctional, WCETms: 0.5}); err != nil {
		return nil, err
	}
	if err := spec.AddMapping("drive", act); err != nil {
		return nil, err
	}
	if err := addMsg(prev, "drive"); err != nil {
		return nil, err
	}

	if err := AddBIST(spec, ecus, TableI()[:profilesPerECU]); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, fmt.Errorf("casestudy: Small built an invalid specification: %w", err)
	}
	return spec, nil
}
