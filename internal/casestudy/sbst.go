package casestudy

import (
	"fmt"

	"repro/internal/bistgen"
	"repro/internal/model"
)

// SBSTProfiles models the software-based self-test alternative the
// paper contrasts with in Section II ([14], Eberl et al., DAC'12):
// test programs executed by the CPU itself in functional mode. Compared
// to logic BIST they reach lower structural coverage, run much longer
// (instruction-level stimuli), and keep their code in local flash —
// but they need no test mode, no scan infrastructure and no pattern
// transfer.
//
// Coverage/runtime/size figures follow the ranges reported in the SBST
// literature for embedded processors (50–70 % stuck-at coverage, tens
// of kilobytes of code).
func SBSTProfiles() []bistgen.Profile {
	return []bistgen.Profile{
		{Number: 37, PRPs: 0, Coverage: 0.52, RuntimeMS: 60, DataBytes: 16 * 1024, Target: "sbst-s"},
		{Number: 38, PRPs: 0, Coverage: 0.61, RuntimeMS: 180, DataBytes: 32 * 1024, Target: "sbst-m"},
		{Number: 39, PRPs: 0, Coverage: 0.70, RuntimeMS: 450, DataBytes: 64 * 1024, Target: "sbst-l"},
	}
}

// AddSBST augments a specification with SBST task families: like
// AddBIST, but the test-program storage task is bindable only to the
// tested ECU (the code executes from local flash; streaming
// instructions over CAN is not an option).
func AddSBST(spec *model.Specification, ecus []model.ResourceID, profiles []bistgen.Profile) error {
	app := spec.App
	if app.Task("bR") == nil {
		return fmt.Errorf("casestudy: specification has no collector task bR")
	}
	for _, ecu := range ecus {
		for _, p := range profiles {
			bT := model.TaskID(fmt.Sprintf("sT.%s.%d", ecu, p.Number))
			bD := model.TaskID(fmt.Sprintf("sD.%s.%d", ecu, p.Number))
			if err := app.AddTask(&model.Task{
				ID: bT, Kind: model.KindBISTTest, TestedECU: ecu,
				Coverage: p.Coverage * BISTShare(ecu), WCETms: p.RuntimeMS, Profile: p.Number,
			}); err != nil {
				return err
			}
			if err := app.AddTask(&model.Task{
				ID: bD, Kind: model.KindBISTData, TestedECU: ecu,
				MemBytes: p.DataBytes, Profile: p.Number,
			}); err != nil {
				return err
			}
			if err := app.AddMessage(&model.Message{
				ID: model.MessageID("cD." + string(bT)), Src: bD, Dst: []model.TaskID{bT},
				SizeBytes: 8, PeriodMS: 10,
			}); err != nil {
				return err
			}
			if err := app.AddMessage(&model.Message{
				ID: model.MessageID("cR." + string(bT)), Src: bT, Dst: []model.TaskID{"bR"},
				SizeBytes: 8, PeriodMS: 100,
			}); err != nil {
				return err
			}
			if err := spec.AddMapping(bT, ecu); err != nil {
				return err
			}
			if err := spec.AddMapping(bD, ecu); err != nil {
				return err
			}
		}
	}
	return nil
}
