package casestudy

import (
	"context"
	"fmt"

	"repro/internal/bistgen"
	"repro/internal/netlist"
	"repro/internal/stumps"
)

// MeasuredOptions parameterize on-the-fly BIST profile characterization
// for a case study: instead of the paper's embedded Table I, the
// profiles are measured on a synthetic full-scan CUT with real LFSR
// fault simulation and PODEM top-off (package bistgen).
type MeasuredOptions struct {
	// Chains, ChainLen, GatesPerFF size the synthetic CUT (defaults
	// 8 scan chains × 10 cells, 4 gates per cell).
	Chains, ChainLen, GatesPerFF int
	// Seed drives circuit generation (default 5).
	Seed int64
	// PRPLevels are the pseudo-random pattern counts to characterize
	// (default {64, 256, 1024}); each level yields the four Table I
	// target variants.
	PRPLevels []int
	// Workers shards the grading fault simulations (see
	// bistgen.Options.Workers): 0 = GOMAXPROCS, 1 = serial.
	Workers int
	// Context, when non-nil, cancels characterization at the next fault
	// simulation batch boundary (see bistgen.Options.Context).
	Context context.Context
}

func (m MeasuredOptions) withDefaults() MeasuredOptions {
	if m.Chains <= 0 {
		m.Chains = 8
	}
	if m.ChainLen <= 0 {
		m.ChainLen = 10
	}
	if m.GatesPerFF <= 0 {
		m.GatesPerFF = 4
	}
	if m.Seed == 0 {
		m.Seed = 5
	}
	if len(m.PRPLevels) == 0 {
		m.PRPLevels = []int{64, 256, 1024}
	}
	return m
}

// MeasuredProfiles characterizes BIST profiles on a synthetic scan CUT
// and returns them in Table I order, ready for Options.Profiles. The
// result is deterministic for fixed options, independent of Workers.
func MeasuredProfiles(m MeasuredOptions) ([]bistgen.Profile, error) {
	m = m.withDefaults()
	cfg := stumps.Config{
		Chains: m.Chains, ChainLen: m.ChainLen, Seed: 17,
		WindowPatterns: 32, RestoreCycles: 200, TestClockHz: 40e6,
	}
	cut := netlist.ScanCUT(m.Seed, m.Chains, m.ChainLen, m.GatesPerFF)
	gen, err := bistgen.New(cut, bistgen.Options{
		Scan: cfg, MaxBacktracks: 150, Workers: m.Workers, Context: m.Context,
	})
	if err != nil {
		return nil, fmt.Errorf("casestudy: measured profiles: %w", err)
	}
	profiles, err := gen.Characterize(m.PRPLevels, bistgen.DefaultTargets())
	if err != nil {
		return nil, fmt.Errorf("casestudy: measured profiles: %w", err)
	}
	return profiles, nil
}
