package simulate

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/can"
	"repro/internal/casestudy"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/objective"
)

var simBus = can.Bus{BitRate: 500_000}

func TestSimulateBusSingleFrame(t *testing.T) {
	frames := []can.Frame{{ID: "a", Priority: 1, Payload: 8, PeriodMS: 10}}
	trace, err := SimulateBus(simBus, frames, 35)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 4 { // releases at 0, 10, 20, 30
		t.Fatalf("instances = %d", len(trace))
	}
	tx := simBus.TxTimeMS(8)
	for i, r := range trace {
		if r.Release != float64(i)*10 {
			t.Fatalf("release %d = %v", i, r.Release)
		}
		if r.Start != r.Release || math.Abs(r.ResponseMS()-tx) > 1e-12 {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
}

func TestSimulateBusArbitration(t *testing.T) {
	// Two frames released together: the higher priority goes first, the
	// lower one waits out the transmission.
	frames := []can.Frame{
		{ID: "lo", Priority: 5, Payload: 8, PeriodMS: 100},
		{ID: "hi", Priority: 1, Payload: 8, PeriodMS: 100},
	}
	trace, err := SimulateBus(simBus, frames, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(trace) != 2 || trace[0].Frame != "hi" || trace[1].Frame != "lo" {
		t.Fatalf("trace = %+v", trace)
	}
	if trace[1].Start != trace[0].Finish {
		t.Fatal("no back-to-back arbitration")
	}
}

func TestSimulateBusValidation(t *testing.T) {
	if _, err := SimulateBus(simBus, []can.Frame{{ID: "x", Payload: 8}}, 10); err == nil {
		t.Fatal("invalid frame accepted")
	}
	if _, err := SimulateBus(simBus, nil, -1); err == nil {
		t.Fatal("negative horizon accepted")
	}
}

// TestSimulatedWCRTWithinAnalyticBound: observed response times never
// exceed the response-time analysis bound.
func TestSimulatedWCRTWithinAnalyticBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	periods := []float64{5, 10, 20, 50}
	for round := 0; round < 20; round++ {
		var frames []can.Frame
		n := 3 + rng.Intn(6)
		for i := 0; i < n; i++ {
			frames = append(frames, can.Frame{
				ID: string(rune('a' + i)), Priority: 1 + i,
				Payload:  1 + rng.Intn(8),
				PeriodMS: periods[rng.Intn(len(periods))],
			})
		}
		bounds, err := can.ResponseTimesByID(simBus, frames)
		if err != nil {
			t.Fatal(err)
		}
		trace, err := SimulateBus(simBus, frames, 500)
		if err != nil {
			t.Fatal(err)
		}
		for frame, worst := range WorstResponse(trace) {
			b := bounds[frame]
			if b.Schedulable && worst > b.WCRTms+1e-9 {
				t.Fatalf("round %d: frame %s observed %.4f > bound %.4f", round, frame, worst, b.WCRTms)
			}
		}
	}
}

// TestMirrorTraceEquivalence is the Section III-B claim at its
// strongest: swapping an ECU's functional frames for mirrors yields a
// slot-for-slot identical bus schedule.
func TestMirrorTraceEquivalence(t *testing.T) {
	own := []can.Frame{
		{ID: "c1", Priority: 2, Payload: 8, PeriodMS: 10},
		{ID: "c2", Priority: 6, Payload: 4, PeriodMS: 20},
	}
	others := []can.Frame{
		{ID: "o1", Priority: 1, Payload: 8, PeriodMS: 10},
		{ID: "o2", Priority: 4, Payload: 8, PeriodMS: 20},
		{ID: "o3", Priority: 9, Payload: 8, PeriodMS: 50},
	}
	before, err := SimulateBus(simBus, append(append([]can.Frame(nil), own...), others...), 400)
	if err != nil {
		t.Fatal(err)
	}
	mirrored := can.Mirror(own, "'")
	after, err := SimulateBus(simBus, append(append([]can.Frame(nil), mirrored...), others...), 400)
	if err != nil {
		t.Fatal(err)
	}
	if i := TraceEquivalent(before, after, "'"); i != -1 {
		t.Fatalf("traces diverge at slot %d: %+v vs %+v", i, before[i], after[i])
	}
}

func TestTraceEquivalentDetectsDifference(t *testing.T) {
	a := []TxRecord{{Frame: "x", Start: 0, Finish: 1}}
	b := []TxRecord{{Frame: "x", Start: 0, Finish: 2}}
	if TraceEquivalent(a, b, "'") != 0 {
		t.Fatal("timing difference missed")
	}
	c := []TxRecord{{Frame: "y", Start: 0, Finish: 1}}
	if TraceEquivalent(a, c, "'") != 0 {
		t.Fatal("identity difference missed")
	}
	if TraceEquivalent(a, append(a, a...), "'") != 1 {
		t.Fatal("length difference missed")
	}
	if TraceEquivalent(a, []TxRecord{{Frame: "x'", Start: 0, Finish: 1}}, "'") != -1 {
		t.Fatal("mirror identity rejected")
	}
}

// shutOffFixture builds a small implementation with all BIST on and
// the chosen storage mode.
func shutOffFixture(t *testing.T, storage int) *model.Implementation {
	t.Helper()
	spec, err := casestudy.Small(3, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	dec.StorageChoice = storage
	g := make([]float64, dec.GenotypeLen())
	for i := range g {
		g[i] = 0.9
	}
	x, err := dec.Decode(g)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

func TestShutOffLocalMatchesAnalytic(t *testing.T) {
	x := shutOffFixture(t, 1)
	rep, err := ShutOff(x)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Traces) == 0 {
		t.Fatal("no BIST sessions simulated")
	}
	// Local storage: simulation equals Eq. (5) exactly (no transfer).
	if math.Abs(rep.ShutOffMS-rep.AnalyticMS) > 1e-9 {
		t.Fatalf("sim %.3f vs analytic %.3f", rep.ShutOffMS, rep.AnalyticMS)
	}
	for _, tr := range rep.Traces {
		if tr.TransferMS != 0 || tr.FramesUsed != 0 {
			t.Fatalf("local trace has transfer: %+v", tr)
		}
	}
}

// TestShutOffGatewayWithinQuantization: the simulated transfer may
// exceed the fluid Eq. (1) time by at most one slot period per message,
// and can also complete slightly early (the last frame carries a full
// payload even if fewer bytes remain).
func TestShutOffGatewayWithinQuantization(t *testing.T) {
	x := shutOffFixture(t, -1)
	rep, err := ShutOff(x)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(rep.AnalyticMS, 1) {
		t.Skip("no mirrored bandwidth on some ECU")
	}
	for _, tr := range rep.Traces {
		if tr.TransferMS == 0 {
			continue
		}
		lo, hi := 0.5*tr.AnalyticMS, 1.5*tr.AnalyticMS+200
		if tr.CompleteMS < lo || tr.CompleteMS > hi {
			t.Fatalf("ECU %s: simulated %.1f ms outside [%.1f, %.1f] around analytic %.1f",
				tr.ECU, tr.CompleteMS, lo, hi, tr.AnalyticMS)
		}
		if tr.FramesUsed == 0 {
			t.Fatalf("ECU %s: transfer without frames", tr.ECU)
		}
	}
	// System shut-off dominated by the slowest ECU.
	worst := 0.0
	for _, tr := range rep.Traces {
		if tr.CompleteMS > worst {
			worst = tr.CompleteMS
		}
	}
	if rep.ShutOffMS != worst {
		t.Fatalf("ShutOffMS %.1f != max trace %.1f", rep.ShutOffMS, worst)
	}
}

// TestShutOffValidatesEq5Ordering: gateway storage simulates strictly
// slower than local storage on the same genotype — the executable
// counterpart of the Eq. (5) case split.
func TestShutOffValidatesEq5Ordering(t *testing.T) {
	local, err := ShutOff(shutOffFixture(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	gateway, err := ShutOff(shutOffFixture(t, -1))
	if err != nil {
		t.Fatal(err)
	}
	if gateway.ShutOffMS <= local.ShutOffMS {
		t.Fatalf("gateway %.1f not slower than local %.1f", gateway.ShutOffMS, local.ShutOffMS)
	}
}

func TestShutOffNoBIST(t *testing.T) {
	spec, err := casestudy.Small(2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := core.NewGreedyDecoder(spec)
	if err != nil {
		t.Fatal(err)
	}
	g := make([]float64, dec.GenotypeLen())
	x, err := dec.Decode(g) // all genes 0: no BIST anywhere
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ShutOff(x)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShutOffMS != 0 || len(rep.Traces) != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if objective.ShutOffTimeMS(x) != 0 {
		t.Fatal("analytic disagrees")
	}
}

// TestBusyPeriodRTAUpperBoundsHighUtilization: with the exact
// multi-instance analysis, simulated response times stay below the
// analytic bound even when some frames are pushed past their period
// (utilization near but under 1).
func TestBusyPeriodRTAUpperBoundsHighUtilization(t *testing.T) {
	// 0.27 ms frames: three at 1 ms + one at 4 ms ≈ 0.88 utilization;
	// the low-priority frame's WCRT exceeds its own transmission window.
	frames := []can.Frame{
		{ID: "a", Priority: 1, Payload: 8, PeriodMS: 1},
		{ID: "b", Priority: 2, Payload: 8, PeriodMS: 1},
		{ID: "c", Priority: 3, Payload: 8, PeriodMS: 1},
		{ID: "d", Priority: 4, Payload: 8, PeriodMS: 4},
	}
	bounds, err := can.ResponseTimesByID(simBus, frames)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(bounds["d"].WCRTms, 1) {
		t.Fatalf("busy period diverged at utilization < 1: %+v", bounds["d"])
	}
	trace, err := SimulateBus(simBus, frames, 2000)
	if err != nil {
		t.Fatal(err)
	}
	for frame, worst := range WorstResponse(trace) {
		if worst > bounds[frame].WCRTms+1e-9 {
			t.Fatalf("frame %s observed %.4f > exact bound %.4f", frame, worst, bounds[frame].WCRTms)
		}
	}
	// The bound must be tight-ish for d: within 3 frame times of the
	// observation (the trace releases everything synchronously, which is
	// the critical instant here).
	if bounds["d"].WCRTms > WorstResponse(trace)["d"]+3*simBus.TxTimeMS(8) {
		t.Fatalf("bound %.4f far above observed %.4f", bounds["d"].WCRTms, WorstResponse(trace)["d"])
	}
}

// TestRTADivergesAtOverUtilization: utilization > 1 must yield an
// infinite WCRT rather than a bogus finite bound.
func TestRTADivergesAtOverUtilization(t *testing.T) {
	var frames []can.Frame
	for i := 0; i < 5; i++ {
		frames = append(frames, can.Frame{
			ID: string(rune('a' + i)), Priority: i + 1, Payload: 8, PeriodMS: 1,
		})
	}
	bounds, err := can.ResponseTimesByID(simBus, frames)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(bounds["e"].WCRTms, 1) {
		t.Fatalf("lowest priority at 135%% utilization got finite WCRT %v", bounds["e"].WCRTms)
	}
	if bounds["e"].Schedulable {
		t.Fatal("overloaded frame schedulable")
	}
}
