// Package simulate provides discrete-event simulation of the shut-off
// phase: CAN frame arbitration at trace granularity (to show that
// message mirroring reproduces the certified schedule slot for slot)
// and the pattern-transfer/BIST-session timeline of an implementation
// (to validate the analytic Eq. (1)/Eq. (5) values of package
// objective against an executable model).
package simulate

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"

	"repro/internal/can"
)

// TxRecord is one completed frame transmission.
type TxRecord struct {
	Frame   string
	Release float64 // activation instant [ms]
	Start   float64 // arbitration win [ms]
	Finish  float64 // end of frame [ms]
}

// ResponseMS returns the response time of this instance.
func (r TxRecord) ResponseMS() float64 { return r.Finish - r.Release }

// release is a pending frame instance.
type release struct {
	frame *can.Frame
	txMS  float64
	at    float64
	seq   int // tie-break for determinism
}

// releaseHeap orders by (priority, release time, sequence).
type releaseHeap []release

func (h releaseHeap) Len() int { return len(h) }
func (h releaseHeap) Less(i, j int) bool {
	if h[i].frame.Priority != h[j].frame.Priority {
		return h[i].frame.Priority < h[j].frame.Priority
	}
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h releaseHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *releaseHeap) Push(x any)   { *h = append(*h, x.(release)) }
func (h *releaseHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// SimulateBus runs non-preemptive fixed-priority arbitration of the
// periodic frame set over the horizon and returns every transmission in
// start order. Frame instances released while the bus is busy queue up;
// arbitration picks the highest-priority queued instance at each idle
// instant (ties by release time, then input order — CAN IDs are unique
// in practice).
func SimulateBus(bus can.Bus, frames []can.Frame, horizonMS float64) ([]TxRecord, error) {
	for _, f := range frames {
		if err := f.Validate(); err != nil {
			return nil, err
		}
	}
	if horizonMS <= 0 {
		return nil, fmt.Errorf("simulate: non-positive horizon")
	}
	// Generate all releases within the horizon, ordered by time; the
	// arbitration loop feeds them into a ready heap keyed by priority.
	var byTime []release
	seq := 0
	for i := range frames {
		f := &frames[i]
		tx := bus.TxTimeMS(f.Payload)
		for t := 0.0; t < horizonMS; t += f.PeriodMS {
			byTime = append(byTime, release{frame: f, txMS: tx, at: t, seq: seq})
			seq++
		}
	}
	sort.Slice(byTime, func(i, j int) bool {
		if byTime[i].at != byTime[j].at {
			return byTime[i].at < byTime[j].at
		}
		return byTime[i].seq < byTime[j].seq
	})

	var ready releaseHeap
	heap.Init(&ready)
	var out []TxRecord
	now := 0.0
	idx := 0
	for idx < len(byTime) || ready.Len() > 0 {
		// Admit everything released by now.
		for idx < len(byTime) && byTime[idx].at <= now {
			heap.Push(&ready, byTime[idx])
			idx++
		}
		if ready.Len() == 0 {
			// Idle until the next release.
			now = byTime[idx].at
			continue
		}
		r := heap.Pop(&ready).(release)
		start := now
		finish := start + r.txMS
		out = append(out, TxRecord{Frame: r.frame.ID, Release: r.at, Start: start, Finish: finish})
		now = finish
	}
	return out, nil
}

// WorstResponse returns the maximum observed response time per frame.
func WorstResponse(trace []TxRecord) map[string]float64 {
	out := make(map[string]float64)
	for _, r := range trace {
		if rt := r.ResponseMS(); rt > out[r.Frame] {
			out[r.Frame] = rt
		}
	}
	return out
}

// TraceEquivalent checks the Section III-B claim at trace granularity:
// two simulations are slot-equivalent if every transmission occupies
// the same bus interval and carries the same frame identity modulo the
// mirror suffix. It returns the index of the first differing slot, or
// -1 when equivalent.
func TraceEquivalent(a, b []TxRecord, mirrorSuffix string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i].Start != b[i].Start || a[i].Finish != b[i].Finish {
			return i
		}
		if strings.TrimSuffix(a[i].Frame, mirrorSuffix) != strings.TrimSuffix(b[i].Frame, mirrorSuffix) {
			return i
		}
	}
	if len(a) != len(b) {
		return n
	}
	return -1
}
