package simulate

import (
	"container/heap"
	"fmt"
	"math"
	"sort"

	"repro/internal/model"
	"repro/internal/objective"
)

// ECUTrace is the simulated shut-off timeline of one ECU's BIST
// session.
type ECUTrace struct {
	ECU     model.ResourceID
	Profile int

	// TransferMS is the simulated time to ship the pattern data over
	// the ECU's mirrored functional message slots (0 for local storage).
	TransferMS float64
	// FramesUsed counts the mirrored frame instances consumed.
	FramesUsed int
	// SessionMS is the BIST session runtime l(b^T).
	SessionMS float64
	// CompleteMS = TransferMS + SessionMS.
	CompleteMS float64

	// AnalyticMS is the Eq. (5) contribution of this ECU for
	// comparison.
	AnalyticMS float64
}

// Report is the shut-off simulation of a whole implementation.
type Report struct {
	Traces []ECUTrace
	// ShutOffMS is the simulated system shut-off time (max over ECUs).
	ShutOffMS float64
	// AnalyticMS is objective.ShutOffTimeMS for comparison.
	AnalyticMS float64
}

// frameSlot is one periodic mirrored slot source.
type frameSlot struct {
	next     float64
	periodMS float64
	bytes    int64
	seq      int
}

type slotHeap []frameSlot

func (h slotHeap) Len() int { return len(h) }
func (h slotHeap) Less(i, j int) bool {
	if h[i].next != h[j].next {
		return h[i].next < h[j].next
	}
	return h[i].seq < h[j].seq
}
func (h slotHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *slotHeap) Push(x any)   { *h = append(*h, x.(frameSlot)) }
func (h *slotHeap) Pop() any     { old := *h; n := len(old); v := old[n-1]; *h = old[:n-1]; return v }

// ShutOff plays out the operational shut-off of the vehicle for the
// given implementation: every selected BIST session starts at t = 0;
// gateway-stored pattern data streams in over the ECU's mirrored
// functional message slots (each slot instance carries that message's
// payload bytes); the session itself runs after the data is complete.
//
// The result cross-validates the analytic model: the simulated shut-off
// can exceed Eq. (5)'s value by at most one slot period per ECU
// (quantization — Eq. (1) assumes fluid bandwidth).
func ShutOff(x *model.Implementation) (Report, error) {
	rep := Report{AnalyticMS: objective.ShutOffTimeMS(x)}
	spec := x.Spec
	var ecus []model.ResourceID
	selected := x.SelectedBIST()
	for r := range selected {
		ecus = append(ecus, r)
	}
	sort.Slice(ecus, func(i, j int) bool { return ecus[i] < ecus[j] })

	for _, ecu := range ecus {
		bT := selected[ecu]
		bD := spec.DataTaskFor(bT)
		if bD == nil {
			return Report{}, fmt.Errorf("simulate: BIST task %s has no data task", bT.ID)
		}
		tr := ECUTrace{
			ECU:        ecu,
			Profile:    bT.Profile,
			SessionMS:  bT.WCETms,
			AnalyticMS: bT.WCETms,
		}
		if storage, ok := x.Binding[bD.ID]; ok && storage != ecu {
			q := objective.TransferTimeMS(x, bD, ecu)
			tr.AnalyticMS += q
			transfer, frames, err := simulateTransfer(x, ecu, bD.MemBytes)
			if err != nil {
				return Report{}, err
			}
			tr.TransferMS = transfer
			tr.FramesUsed = frames
		}
		tr.CompleteMS = tr.TransferMS + tr.SessionMS
		rep.Traces = append(rep.Traces, tr)
		if tr.CompleteMS > rep.ShutOffMS {
			rep.ShutOffMS = tr.CompleteMS
		}
	}
	return rep, nil
}

// simulateTransfer streams dataBytes over the mirrored slots of the
// ECU's functional messages and returns the completion time and slot
// count. The first instance of each slot fires one period after t = 0
// (the slot the functional message would have used next).
func simulateTransfer(x *model.Implementation, ecu model.ResourceID, dataBytes int64) (float64, int, error) {
	var slots slotHeap
	seq := 0
	for _, m := range x.Spec.App.Messages() {
		src := x.Spec.App.Task(m.Src)
		if src == nil || src.Kind != model.KindFunctional {
			continue
		}
		if x.Binding[m.Src] != ecu {
			continue
		}
		if m.PeriodMS <= 0 || m.SizeBytes <= 0 {
			continue
		}
		slots = append(slots, frameSlot{next: m.PeriodMS, periodMS: m.PeriodMS, bytes: m.SizeBytes, seq: seq})
		seq++
	}
	if len(slots) == 0 {
		return math.Inf(1), 0, nil
	}
	heap.Init(&slots)
	remaining := dataBytes
	used := 0
	for remaining > 0 {
		s := heap.Pop(&slots).(frameSlot)
		remaining -= s.bytes
		used++
		now := s.next
		s.next += s.periodMS
		heap.Push(&slots, s)
		if remaining <= 0 {
			return now, used, nil
		}
	}
	return 0, used, nil
}
