package fleet

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/obs"
)

// TestFleetObsNonIntrusive pins the observability invariant on the
// ingest side: with a live tracer (event recording on) a seeded
// population produces byte-identical summary JSON and an identical
// sender-side result at every shard and worker count, because spans
// only time work that already happened — the transfer clock stays
// simulated and the assembly order untouched.
func TestFleetObsNonIntrusive(t *testing.T) {
	cfg := PopulationConfig{
		Vehicles: 24, ECUs: []string{"ecuA", "ecuB"}, SessionsPerECU: 2,
		FailProb: 0.3, Seed: 11, ErrorRate: 1e-5,
	}
	type run struct{ shards, workers int }
	runs := []run{{1, 1}, {4, 4}, {3, 8}}

	var wantJSON []byte
	var wantRes PopulationResult
	for i, r := range runs {
		for _, traced := range []bool{false, true} {
			srv := New(Config{Shards: r.shards})
			c := cfg
			c.Workers = r.workers
			var tracer *obs.Tracer
			if traced {
				reg := obs.NewRegistry()
				tracer = obs.NewTracer(reg, obs.TracerConfig{Record: true})
				srv.SetObs(tracer)
				c.Obs = tracer
			}
			res, err := RunPopulation(context.Background(), srv, c)
			if err != nil {
				t.Fatal(err)
			}
			js, err := srv.SummaryJSON()
			if err != nil {
				t.Fatal(err)
			}
			if wantJSON == nil {
				wantJSON, wantRes = js, res
				continue
			}
			if res != wantRes {
				t.Fatalf("run %d traced=%v: result %+v != %+v", i, traced, res, wantRes)
			}
			if !bytes.Equal(js, wantJSON) {
				t.Fatalf("run %d (shards=%d workers=%d traced=%v) summary differs:\n%s\nvs\n%s",
					i, r.shards, r.workers, traced, js, wantJSON)
			}
			if traced {
				stages := map[obs.Stage]bool{}
				for _, e := range tracer.Drain(nil) {
					stages[e.Stage] = true
				}
				for _, s := range []obs.Stage{obs.StageChunkAccept, obs.StageSessionAssembly, obs.StageGatewaySession} {
					if !stages[s] {
						t.Fatalf("run %d: no %s spans recorded", i, s)
					}
				}
			}
		}
	}
}

// TestFleetObsBackpressureMark checks that a cap-rejected session
// surfaces as a backpressure mark without changing the typed error the
// sender sees.
func TestFleetObsBackpressureMark(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(reg, obs.TracerConfig{Record: true})
	srv := New(Config{Shards: 1, PerShardSessions: 1})
	srv.SetObs(tracer)

	a := chunksFor(t, "ecuA", 1, failData(2))
	// First stream occupies the only reassembly slot; the second open
	// must bounce with the same error it would without tracing.
	if err := srv.IngestChunk("v1", "ecuA", a[0]); err != nil {
		t.Fatal(err)
	}
	if err := srv.IngestChunk("v2", "ecuA", a[0]); !errors.Is(err, ErrSessionsFull) {
		t.Fatalf("second open: %v", err)
	}
	marks := 0
	for _, e := range tracer.Drain(nil) {
		if e.Stage == obs.StageBackpressure {
			marks++
		}
	}
	if marks != 1 {
		t.Fatalf("backpressure marks = %d, want 1", marks)
	}
	if got := srv.Stats().SessionsRejected; got != 1 {
		t.Fatalf("sessions rejected = %d, want 1", got)
	}
}
