// Package fleet scales the paper's central collection task b^R from
// one vehicle to a fleet: a long-running multi-tenant diagnosis
// service into which many vehicles concurrently stream their ECUs'
// BIST fail data over the reliable chunked sessions of the gateway
// package (SDVDiag's ingest-analyze-report shape).
//
// Per-vehicle session state is sharded across N lock-striped shards
// (vehicle-ID hash selects the shard); each shard owns its reassembly
// Assemblers, its bounded fail-memory Collector, and its session
// counters, so ingest from different vehicles contends only within a
// shard. Memory is bounded end to end: the per-shard Collector is a
// ring of PerShardRecords slots, the number of concurrently open
// reassembly sessions and tracked vehicles is capped, and hitting a
// cap rejects the session with a typed error — the sending vehicle
// falls back to the session layer's degraded mode (fail data stays in
// local b^D storage) and retries later, exactly as it would on a
// degraded bus.
package fleet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"time"

	"repro/internal/dtc"
	"repro/internal/gateway"
	"repro/internal/obs"
)

// Config sizes the service. Zero values select the defaults.
type Config struct {
	// Shards is the number of lock stripes (default 8).
	Shards int
	// PerShardRecords bounds each shard's fail-memory ring
	// (gateway.Collector Capacity; default 4096).
	PerShardRecords int
	// PerShardSessions bounds the concurrently open reassembly sessions
	// per shard (default 1024). Opening one beyond the cap is rejected
	// with ErrSessionsFull.
	PerShardSessions int
	// PerShardVehicles bounds the vehicles tracked per shard
	// (0 = unbounded). A new vehicle beyond the cap is rejected with
	// ErrVehiclesFull.
	PerShardVehicles int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.PerShardRecords <= 0 {
		c.PerShardRecords = 4096
	}
	if c.PerShardSessions <= 0 {
		c.PerShardSessions = 1024
	}
	return c
}

// Typed ingest errors, distinguishable with errors.Is. The
// backpressure pair (ErrSessionsFull, ErrVehiclesFull) tells the
// sender to degrade into local storage and retry later; the protocol
// errors mark streams that can never complete.
var (
	// ErrSessionsFull rejects a new session on a shard whose reassembly
	// slots are exhausted — backpressure, not failure.
	ErrSessionsFull = errors.New("fleet: shard reassembly sessions exhausted")
	// ErrVehiclesFull rejects the first session of a vehicle on a shard
	// whose vehicle table is full.
	ErrVehiclesFull = errors.New("fleet: shard vehicle table full")
	// ErrUnknownSession marks a non-initial chunk for a stream with no
	// open session (never opened, or already completed).
	ErrUnknownSession = errors.New("fleet: chunk for unknown session")
	// ErrStaleSession marks a session number at or below the last
	// completed one of its (vehicle, ECU) stream — a replay.
	ErrStaleSession = errors.New("fleet: stale session number")
	// ErrECUMismatch marks a completed record whose embedded ECU name
	// differs from the stream it arrived on.
	ErrECUMismatch = errors.New("fleet: record names a different ECU than its stream")
)

// Server is the fleet-scale diagnosis service. All methods are safe
// for concurrent use.
type Server struct {
	cfg    Config
	shards []*shard

	// arch, when set, grounds the DTC repair rollup of Summary in an
	// E/E-architecture's trouble codes. Set before serving.
	arch *Arch

	// obs, when set, times chunk accepts and session assembly and marks
	// backpressure rejections. Set before serving.
	obs *obs.Tracer
}

// New builds a server with cfg's shard layout.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range s.shards {
		s.shards[i] = &shard{
			cfg:       cfg,
			collector: gateway.Collector{Capacity: cfg.PerShardRecords},
			open:      make(map[streamKey]*gateway.Assembler),
			vehicles:  make(map[string]*vehicleState),
		}
	}
	return s
}

// Arch is the architectural context of the fleet's DTC rollup: the
// trouble codes of the E/E-architecture's functional applications
// (dtc.DeriveCodes), whose ambiguity sets the structural fail data is
// compared against.
type Arch struct {
	Codes []dtc.TroubleCode
}

// SetArch attaches the architectural context. Call before serving;
// the field is read without synchronization.
func (s *Server) SetArch(a *Arch) { s.arch = a }

// SetObs attaches the observability tracer. Call before serving; the
// field is read without synchronization. Purely observational: ingest
// outcomes and summaries are byte-identical with or without a tracer.
func (s *Server) SetObs(t *obs.Tracer) {
	s.obs = t
	for _, sh := range s.shards {
		sh.obs = t
	}
}

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// ShardOf returns the shard index owning a vehicle (FNV-1a of the ID).
func (s *Server) ShardOf(vehicle string) int {
	h := fnv.New32a()
	h.Write([]byte(vehicle))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// streamKey identifies one (vehicle, ECU) chunk stream. An ECU streams
// its sessions sequentially, so at most one session per stream is open
// at a time.
type streamKey struct {
	vehicle, ecu string
}

// shard is one lock stripe: a bounded fail memory, the open reassembly
// sessions, and the per-vehicle session bookkeeping of its vehicles.
type shard struct {
	mu        sync.Mutex
	cfg       Config
	collector gateway.Collector
	open      map[streamKey]*gateway.Assembler
	free      []*gateway.Assembler // recycled assemblers (pool discipline)
	vehicles  map[string]*vehicleState
	stats     counters

	// obs and openedAt exist only when tracing: openedAt remembers when
	// each open session started so completion can emit the
	// session_assembly duration. Untraced servers never allocate the map.
	obs      *obs.Tracer
	openedAt map[streamKey]time.Time
}

// vehicleState is the per-vehicle session bookkeeping.
type vehicleState struct {
	ecus map[string]*ecuState
}

// ecuState tracks one (vehicle, ECU) stream.
type ecuState struct {
	// Sessions counts completed (stored) sessions.
	Sessions uint32
	// LastSession is the highest completed session number.
	LastSession uint32
	// FailSessions counts completed sessions with non-empty fail data.
	FailSessions uint32
	// Failing mirrors the most recent session's verdict.
	Failing bool
	// LastEntries/LastWindows describe the most recent fail data.
	LastEntries int
	LastWindows int
}

// counters are one shard's monotonic ingest statistics.
type counters struct {
	Chunks            uint64 // chunks offered to the shard
	ChunkErrors       uint64 // chunks rejected by the assembler (CRC, gap, duplicate)
	SessionsOpened    uint64
	SessionsCompleted uint64
	SessionsRejected  uint64 // backpressure rejections (either cap)
	StaleSessions     uint64
	CorruptRecords    uint64 // completed sessions whose record failed to parse
}

func (c *counters) add(o counters) {
	c.Chunks += o.Chunks
	c.ChunkErrors += o.ChunkErrors
	c.SessionsOpened += o.SessionsOpened
	c.SessionsCompleted += o.SessionsCompleted
	c.SessionsRejected += o.SessionsRejected
	c.StaleSessions += o.StaleSessions
	c.CorruptRecords += o.CorruptRecords
}

// IngestChunk processes one delivered chunk of a (vehicle, ECU)
// stream. A chunk with Seq 0 opens the stream's session (subject to
// the shard's backpressure caps); the chunk completing a session
// parses and stores the record and retires the assembler. Errors are
// typed: backpressure (ErrSessionsFull, ErrVehiclesFull) means "retry
// later", assembler errors (gateway.ErrChunkCRC, ErrChunkGap,
// ErrChunkDuplicate) mean "retransmit", the rest are protocol
// violations.
func (s *Server) IngestChunk(vehicle, ecu string, c gateway.Chunk) error {
	sp := s.obs.Start(obs.StageChunkAccept)
	err := s.shards[s.ShardOf(vehicle)].ingest(vehicle, ecu, c)
	sp.End()
	if err != nil && s.obs != nil && (errors.Is(err, ErrSessionsFull) || errors.Is(err, ErrVehiclesFull)) {
		s.obs.Mark(obs.StageBackpressure)
	}
	return err
}

func (sh *shard) ingest(vehicle, ecu string, c gateway.Chunk) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.Chunks++

	vs := sh.vehicles[vehicle]
	if vs == nil {
		if sh.cfg.PerShardVehicles > 0 && len(sh.vehicles) >= sh.cfg.PerShardVehicles {
			sh.stats.SessionsRejected++
			return fmt.Errorf("%w: %d tracked", ErrVehiclesFull, len(sh.vehicles))
		}
		vs = &vehicleState{ecus: make(map[string]*ecuState)}
		sh.vehicles[vehicle] = vs
	}
	es := vs.ecus[ecu]
	if es == nil {
		es = &ecuState{}
		vs.ecus[ecu] = es
	}

	key := streamKey{vehicle: vehicle, ecu: ecu}
	asm := sh.open[key]
	if asm != nil && c.Session != asm.Session && c.Seq == 0 {
		// The sender abandoned the open session (degraded-mode fallback)
		// and opened a fresh one with a bumped counter: the new session
		// supersedes the half-assembled old one instead of wedging the
		// stream. Replays still bounce off the stale check below.
		delete(sh.open, key)
		delete(sh.openedAt, key)
		sh.recycleAssembler(asm)
		asm = nil
	}
	if asm == nil {
		if c.Seq != 0 {
			return fmt.Errorf("%w: %s/%s seq %d", ErrUnknownSession, vehicle, ecu, c.Seq)
		}
		if es.LastSession > 0 && c.Session <= es.LastSession {
			sh.stats.StaleSessions++
			return fmt.Errorf("%w: %s/%s session %d, last completed %d",
				ErrStaleSession, vehicle, ecu, c.Session, es.LastSession)
		}
		if len(sh.open) >= sh.cfg.PerShardSessions {
			sh.stats.SessionsRejected++
			return fmt.Errorf("%w: %d open", ErrSessionsFull, len(sh.open))
		}
		var err error
		if asm, err = sh.takeAssembler(c.Session, c.Total); err != nil {
			return err
		}
		sh.open[key] = asm
		sh.stats.SessionsOpened++
		if sh.obs != nil {
			if sh.openedAt == nil {
				sh.openedAt = make(map[streamKey]time.Time)
			}
			sh.openedAt[key] = time.Now()
		}
	}

	if err := asm.Accept(c); err != nil {
		sh.stats.ChunkErrors++
		return err
	}
	if !asm.Complete() {
		return nil
	}

	// Session complete: retire the assembler, parse, store.
	delete(sh.open, key)
	if sh.obs != nil {
		if t0, ok := sh.openedAt[key]; ok {
			delete(sh.openedAt, key)
			sh.obs.ObserveSince(obs.StageSessionAssembly, t0)
		}
	}
	defer sh.recycleAssembler(asm)
	blob, err := asm.Bytes()
	if err != nil {
		return err // unreachable: Complete() held
	}
	rec, err := gateway.Unmarshal(blob)
	if err != nil {
		sh.stats.CorruptRecords++
		return fmt.Errorf("fleet: reassembled record corrupt: %w", err)
	}
	if rec.ECU != ecu {
		sh.stats.CorruptRecords++
		return fmt.Errorf("%w: stream %s/%s carries record of %q", ErrECUMismatch, vehicle, ecu, rec.ECU)
	}
	stored := rec
	stored.ECU = vehicle + "/" + ecu
	sh.collector.Store(stored)

	es.Sessions++
	es.LastSession = rec.Session
	es.Failing = !rec.Fail.Pass()
	es.LastEntries = len(rec.Fail.Entries)
	es.LastWindows = rec.Fail.Windows
	if es.Failing {
		es.FailSessions++
	}
	sh.stats.SessionsCompleted++
	return nil
}

// takeAssembler arms an assembler from the shard's free list, or a
// fresh one.
func (sh *shard) takeAssembler(session uint32, total uint16) (*gateway.Assembler, error) {
	if n := len(sh.free); n > 0 {
		a := sh.free[n-1]
		sh.free = sh.free[:n-1]
		if err := a.Reset(session, total); err != nil {
			sh.free = append(sh.free, a)
			return nil, err
		}
		return a, nil
	}
	return gateway.NewAssembler(session, total)
}

// recycleAssembler returns a retired assembler to the free list,
// keeping its buffer capacity for the next session.
func (sh *shard) recycleAssembler(a *gateway.Assembler) {
	if len(sh.free) < 64 {
		sh.free = append(sh.free, a)
	}
}
