// Package fleet scales the paper's central collection task b^R from
// one vehicle to a fleet: a long-running multi-tenant diagnosis
// service into which many vehicles concurrently stream their ECUs'
// BIST fail data over the reliable chunked sessions of the gateway
// package (SDVDiag's ingest-analyze-report shape).
//
// Per-vehicle session state is sharded across N lock-striped shards
// (vehicle-ID hash selects the shard); each shard owns its reassembly
// Assemblers, its bounded fail-memory Collector, and its session
// counters, so ingest from different vehicles contends only within a
// shard. Memory is bounded end to end: the per-shard Collector is a
// ring of PerShardRecords slots, the number of concurrently open
// reassembly sessions and tracked vehicles is capped, and hitting a
// cap rejects the session with a typed error — the sending vehicle
// falls back to the session layer's degraded mode (fail data stays in
// local b^D storage) and retries later, exactly as it would on a
// degraded bus.
package fleet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dtc"
	"repro/internal/durable"
	"repro/internal/gateway"
	"repro/internal/obs"
)

// Config sizes the service. Zero values select the defaults.
type Config struct {
	// Shards is the number of lock stripes (default 8).
	Shards int
	// PerShardRecords bounds each shard's fail-memory ring
	// (gateway.Collector Capacity; default 4096).
	PerShardRecords int
	// PerShardSessions bounds the concurrently open reassembly sessions
	// per shard (default 1024). Opening one beyond the cap is rejected
	// with ErrSessionsFull.
	PerShardSessions int
	// PerShardVehicles bounds the vehicles tracked per shard
	// (0 = unbounded). A new vehicle beyond the cap is rejected with
	// ErrVehiclesFull.
	PerShardVehicles int
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.PerShardRecords <= 0 {
		c.PerShardRecords = 4096
	}
	if c.PerShardSessions <= 0 {
		c.PerShardSessions = 1024
	}
	return c
}

// Typed ingest errors, distinguishable with errors.Is. The
// backpressure pair (ErrSessionsFull, ErrVehiclesFull) tells the
// sender to degrade into local storage and retry later; the protocol
// errors mark streams that can never complete.
var (
	// ErrSessionsFull rejects a new session on a shard whose reassembly
	// slots are exhausted — backpressure, not failure.
	ErrSessionsFull = errors.New("fleet: shard reassembly sessions exhausted")
	// ErrVehiclesFull rejects the first session of a vehicle on a shard
	// whose vehicle table is full.
	ErrVehiclesFull = errors.New("fleet: shard vehicle table full")
	// ErrUnknownSession marks a non-initial chunk for a stream with no
	// open session (never opened, or already completed).
	ErrUnknownSession = errors.New("fleet: chunk for unknown session")
	// ErrStaleSession marks a session number at or below the last
	// completed one of its (vehicle, ECU) stream — a replay.
	ErrStaleSession = errors.New("fleet: stale session number")
	// ErrECUMismatch marks a completed record whose embedded ECU name
	// differs from the stream it arrived on.
	ErrECUMismatch = errors.New("fleet: record names a different ECU than its stream")
)

// Server is the fleet-scale diagnosis service. All methods are safe
// for concurrent use.
type Server struct {
	cfg    Config
	shards []*shard

	// arch, when set, grounds the DTC repair rollup of Summary in an
	// E/E-architecture's trouble codes. Set before serving.
	arch *Arch

	// obs, when set, times chunk accepts and session assembly and marks
	// backpressure rejections. Set before serving.
	obs *obs.Tracer

	// store, when set via OpenDurable, write-ahead-logs every committed
	// session before it is applied, making acknowledged evidence
	// crash-durable. nil keeps the original in-RAM semantics.
	store *durable.Store
	// committed mirrors the counters already folded into commit entries
	// — the only counters a snapshot persists. Live shard stats also
	// count in-flight wire activity that a crash legitimately loses
	// (the senders redo it identically on resume).
	committed committedCounters
	// storageRejects counts ingest calls bounced by degraded storage.
	storageRejects atomic.Uint64
}

// committedCounters aggregates the durably committed portion of the
// ingest counters. Atomics, because commits happen under different
// shard locks concurrently.
type committedCounters struct {
	chunks      atomic.Uint64
	chunkErrors atomic.Uint64
	opened      atomic.Uint64
	completed   atomic.Uint64
	corrupt     atomic.Uint64
}

// New builds a server with cfg's shard layout.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, shards: make([]*shard, cfg.Shards)}
	for i := range s.shards {
		s.shards[i] = &shard{
			srv:       s,
			cfg:       cfg,
			collector: gateway.Collector{Capacity: cfg.PerShardRecords},
			open:      make(map[streamKey]*openSession),
			vehicles:  make(map[string]*vehicleState),
		}
	}
	return s
}

// Arch is the architectural context of the fleet's DTC rollup: the
// trouble codes of the E/E-architecture's functional applications
// (dtc.DeriveCodes), whose ambiguity sets the structural fail data is
// compared against.
type Arch struct {
	Codes []dtc.TroubleCode
}

// SetArch attaches the architectural context. Call before serving;
// the field is read without synchronization.
func (s *Server) SetArch(a *Arch) { s.arch = a }

// SetObs attaches the observability tracer. Call before serving; the
// field is read without synchronization. Purely observational: ingest
// outcomes and summaries are byte-identical with or without a tracer.
func (s *Server) SetObs(t *obs.Tracer) {
	s.obs = t
	for _, sh := range s.shards {
		sh.obs = t
	}
}

// NumShards returns the shard count.
func (s *Server) NumShards() int { return len(s.shards) }

// ShardOf returns the shard index owning a vehicle (FNV-1a of the ID).
func (s *Server) ShardOf(vehicle string) int {
	h := fnv.New32a()
	h.Write([]byte(vehicle))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// streamKey identifies one (vehicle, ECU) chunk stream. An ECU streams
// its sessions sequentially, so at most one session per stream is open
// at a time.
type streamKey struct {
	vehicle, ecu string
}

// shard is one lock stripe: a bounded fail memory, the open reassembly
// sessions, and the per-vehicle session bookkeeping of its vehicles.
type shard struct {
	mu        sync.Mutex
	srv       *Server
	cfg       Config
	collector gateway.Collector
	open      map[streamKey]*openSession
	free      []*openSession // recycled sessions (pool discipline)
	vehicles  map[string]*vehicleState
	stats     counters

	// entryBuf is the reused WAL-entry scratch buffer of the durable
	// commit path.
	entryBuf []byte

	obs *obs.Tracer
}

// openSession is one in-flight reassembly: the assembler plus the wire
// deltas this session has accrued. The deltas are folded into the
// session's durable commit entry on completion — state that was never
// committed simply never happened as far as recovery is concerned, and
// the sender redoes it identically on resume.
type openSession struct {
	asm         *gateway.Assembler
	chunks      uint64 // chunks offered while this session was open
	chunkErrors uint64 // assembler rejections among them
	openedAt    time.Time
}

// vehicleState is the per-vehicle session bookkeeping.
type vehicleState struct {
	ecus map[string]*ecuState
}

// ecuState tracks one (vehicle, ECU) stream.
type ecuState struct {
	// Sessions counts completed (stored) sessions.
	Sessions uint32
	// LastSession is the highest completed session number.
	LastSession uint32
	// LastCommitted is the highest session number whose outcome —
	// stored or corrupt — was committed. The stale check dedups on it,
	// so a session replayed after a crash-recovery (or a sender resume)
	// can never be double-counted.
	LastCommitted uint32
	// FailSessions counts completed sessions with non-empty fail data.
	FailSessions uint32
	// Failing mirrors the most recent session's verdict.
	Failing bool
	// LastEntries/LastWindows describe the most recent fail data.
	LastEntries int
	LastWindows int
}

// counters are one shard's monotonic ingest statistics.
type counters struct {
	Chunks            uint64 // chunks offered to the shard
	ChunkErrors       uint64 // chunks rejected by the assembler (CRC, gap, duplicate)
	SessionsOpened    uint64
	SessionsCompleted uint64
	SessionsRejected  uint64 // backpressure rejections (either cap)
	StaleSessions     uint64
	CorruptRecords    uint64 // completed sessions whose record failed to parse
}

func (c *counters) add(o counters) {
	c.Chunks += o.Chunks
	c.ChunkErrors += o.ChunkErrors
	c.SessionsOpened += o.SessionsOpened
	c.SessionsCompleted += o.SessionsCompleted
	c.SessionsRejected += o.SessionsRejected
	c.StaleSessions += o.StaleSessions
	c.CorruptRecords += o.CorruptRecords
}

// IngestChunk processes one delivered chunk of a (vehicle, ECU)
// stream. A chunk with Seq 0 opens the stream's session (subject to
// the shard's backpressure caps); the chunk completing a session
// parses and stores the record and retires the assembler. Errors are
// typed: backpressure (ErrSessionsFull, ErrVehiclesFull) means "retry
// later", assembler errors (gateway.ErrChunkCRC, ErrChunkGap,
// ErrChunkDuplicate) mean "retransmit", the rest are protocol
// violations.
func (s *Server) IngestChunk(vehicle, ecu string, c gateway.Chunk) error {
	if s.store != nil && s.store.Degraded() {
		// Degraded read-only mode: the WAL can no longer honor the
		// ack-durability contract, so nothing new is accepted. Surfaced
		// as backpressure — senders fall back to local storage exactly
		// as they would on a full shard.
		s.storageRejects.Add(1)
		s.obs.Mark(obs.StageBackpressure)
		return fmt.Errorf("fleet: %w", durable.ErrStorageDegraded)
	}
	sp := s.obs.Start(obs.StageChunkAccept)
	err := s.shards[s.ShardOf(vehicle)].ingest(vehicle, ecu, c)
	sp.End()
	if err != nil && s.obs != nil && (errors.Is(err, ErrSessionsFull) || errors.Is(err, ErrVehiclesFull) ||
		errors.Is(err, durable.ErrStorageDegraded)) {
		s.obs.Mark(obs.StageBackpressure)
	}
	return err
}

func (sh *shard) ingest(vehicle, ecu string, c gateway.Chunk) error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.stats.Chunks++

	vs := sh.vehicles[vehicle]
	if vs == nil {
		if sh.cfg.PerShardVehicles > 0 && len(sh.vehicles) >= sh.cfg.PerShardVehicles {
			sh.stats.SessionsRejected++
			return fmt.Errorf("%w: %d tracked", ErrVehiclesFull, len(sh.vehicles))
		}
		vs = &vehicleState{ecus: make(map[string]*ecuState)}
		sh.vehicles[vehicle] = vs
	}
	es := vs.ecus[ecu]
	if es == nil {
		es = &ecuState{}
		vs.ecus[ecu] = es
	}

	key := streamKey{vehicle: vehicle, ecu: ecu}
	os := sh.open[key]
	if os != nil && c.Session != os.asm.Session && c.Seq == 0 {
		// The sender abandoned the open session (degraded-mode fallback)
		// and opened a fresh one with a bumped counter: the new session
		// supersedes the half-assembled old one instead of wedging the
		// stream. Its uncommitted deltas die with it. Replays still
		// bounce off the stale check below.
		delete(sh.open, key)
		sh.recycleSession(os)
		os = nil
	}
	if os == nil {
		if c.Seq != 0 {
			return fmt.Errorf("%w: %s/%s seq %d", ErrUnknownSession, vehicle, ecu, c.Seq)
		}
		if es.LastCommitted > 0 && c.Session <= es.LastCommitted {
			sh.stats.StaleSessions++
			return fmt.Errorf("%w: %s/%s session %d, last committed %d",
				ErrStaleSession, vehicle, ecu, c.Session, es.LastCommitted)
		}
		if len(sh.open) >= sh.cfg.PerShardSessions {
			sh.stats.SessionsRejected++
			return fmt.Errorf("%w: %d open", ErrSessionsFull, len(sh.open))
		}
		var err error
		if os, err = sh.takeSession(c.Session, c.Total); err != nil {
			return err
		}
		sh.open[key] = os
		sh.stats.SessionsOpened++
		if sh.obs != nil {
			os.openedAt = time.Now()
		}
	}

	os.chunks++
	if err := os.asm.Accept(c); err != nil {
		sh.stats.ChunkErrors++
		os.chunkErrors++
		return err
	}
	if !os.asm.Complete() {
		return nil
	}

	// Session complete: decide the outcome, commit it to the WAL (when
	// durable), then apply it. State mutations happen strictly after a
	// successful commit, so RAM never gets ahead of the log.
	blob, err := os.asm.Bytes()
	if err != nil {
		return err // unreachable: Complete() held
	}
	rec, uerr := gateway.Unmarshal(blob)
	outcome := entryStored
	var retErr error
	switch {
	case uerr != nil:
		outcome = entryCorrupt
		retErr = fmt.Errorf("fleet: reassembled record corrupt: %w", uerr)
	case rec.ECU != ecu:
		outcome = entryCorrupt
		retErr = fmt.Errorf("%w: stream %s/%s carries record of %q", ErrECUMismatch, vehicle, ecu, rec.ECU)
	}

	if sh.srv.store != nil {
		entryBlob := blob
		if outcome == entryCorrupt {
			entryBlob = nil
		}
		sh.entryBuf = appendCommitEntry(sh.entryBuf[:0], outcome, vehicle, ecu, c.Session, os.chunks, os.chunkErrors, entryBlob)
		if _, err := sh.srv.store.Append(sh.entryBuf); err != nil {
			// Nothing was applied: the session is retired unacked and
			// the sender's retries hit the degraded fast path above.
			delete(sh.open, key)
			sh.recycleSession(os)
			return fmt.Errorf("fleet: commit %s/%s session %d: %w", vehicle, ecu, c.Session, err)
		}
	}

	delete(sh.open, key)
	if sh.obs != nil && !os.openedAt.IsZero() {
		sh.obs.ObserveSince(obs.StageSessionAssembly, os.openedAt)
	}
	sh.applyCommit(es, outcome, c.Session, os.chunks, os.chunkErrors, rec, vehicle, ecu)
	sh.recycleSession(os)
	return retErr
}

// applyCommit folds one committed session outcome into the shard —
// the single mutation point shared by live ingest and WAL replay, so
// both roads lead to identical state.
func (sh *shard) applyCommit(es *ecuState, outcome byte, session uint32, chunks, chunkErrors uint64, rec gateway.Record, vehicle, ecu string) {
	cc := &sh.srv.committed
	cc.chunks.Add(chunks)
	cc.chunkErrors.Add(chunkErrors)
	cc.opened.Add(1)
	es.LastCommitted = session
	if outcome == entryCorrupt {
		sh.stats.CorruptRecords++
		cc.corrupt.Add(1)
		return
	}
	stored := rec
	stored.ECU = vehicle + "/" + ecu
	sh.collector.Store(stored)

	es.Sessions++
	es.LastSession = rec.Session
	es.Failing = !rec.Fail.Pass()
	es.LastEntries = len(rec.Fail.Entries)
	es.LastWindows = rec.Fail.Windows
	if es.Failing {
		es.FailSessions++
	}
	sh.stats.SessionsCompleted++
	cc.completed.Add(1)
}

// takeSession arms a pooled open session, or a fresh one.
func (sh *shard) takeSession(session uint32, total uint16) (*openSession, error) {
	if n := len(sh.free); n > 0 {
		os := sh.free[n-1]
		sh.free = sh.free[:n-1]
		if err := os.asm.Reset(session, total); err != nil {
			sh.free = append(sh.free, os)
			return nil, err
		}
		os.chunks, os.chunkErrors, os.openedAt = 0, 0, time.Time{}
		return os, nil
	}
	asm, err := gateway.NewAssembler(session, total)
	if err != nil {
		return nil, err
	}
	return &openSession{asm: asm}, nil
}

// recycleSession returns a retired session to the free list, keeping
// its assembler's buffer capacity for the next session.
func (sh *shard) recycleSession(os *openSession) {
	if len(sh.free) < 64 {
		sh.free = append(sh.free, os)
	}
}
