package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/can"
	"repro/internal/dtc"
	"repro/internal/gateway"
	"repro/internal/model"
	"repro/internal/stumps"
)

// captureSink records delivered chunks — a perfect channel's receiver.
type captureSink struct{ chunks []gateway.Chunk }

func (c *captureSink) Accept(ch gateway.Chunk) error {
	c.chunks = append(c.chunks, ch)
	return nil
}

var testBus = can.Bus{Name: "diag", BitRate: 500_000, Format: can.Standard}

// chunksFor splits one record into wire chunks via the real session
// machinery over a lossless channel.
func chunksFor(t *testing.T, ecu string, sid uint32, fd stumps.FailData) []gateway.Chunk {
	t.Helper()
	sess, err := gateway.NewSession(ecu, sid, fd, gateway.SessionConfig{ChunkBytes: 16})
	if err != nil {
		t.Fatal(err)
	}
	sink := &captureSink{}
	if res := sess.Run(gateway.NewFaultyChannel(testBus, can.ErrorModel{}, sink)); !res.Delivered {
		t.Fatalf("lossless transfer not delivered: %+v", res)
	}
	return sink.chunks
}

func failData(entries int) stumps.FailData {
	fd := stumps.FailData{Windows: 64}
	for i := 0; i < entries; i++ {
		fd.Entries = append(fd.Entries, stumps.FailEntry{Window: i, Got: uint64(i), Want: uint64(i) ^ 1})
	}
	return fd
}

func ingestAll(t *testing.T, srv *Server, vehicle, ecu string, chunks []gateway.Chunk) {
	t.Helper()
	for _, c := range chunks {
		if err := srv.IngestChunk(vehicle, ecu, c); err != nil {
			t.Fatalf("ingest %s/%s seq %d: %v", vehicle, ecu, c.Seq, err)
		}
	}
}

func TestIngestRoundTrip(t *testing.T) {
	srv := New(Config{Shards: 2})
	ingestAll(t, srv, "veh00001", "ecuA", chunksFor(t, "ecuA", 1, failData(3)))
	ingestAll(t, srv, "veh00001", "ecuB", chunksFor(t, "ecuB", 1, failData(0)))
	ingestAll(t, srv, "veh00002", "ecuA", chunksFor(t, "ecuA", 1, failData(0)))

	sum := srv.Summary()
	if sum.Vehicles != 2 || sum.Streams != 3 {
		t.Fatalf("vehicles/streams = %d/%d", sum.Vehicles, sum.Streams)
	}
	if sum.SessionsCompleted != 3 || sum.RecordsStored != 3 || sum.OpenSessions != 0 {
		t.Fatalf("completed/stored/open = %d/%d/%d", sum.SessionsCompleted, sum.RecordsStored, sum.OpenSessions)
	}
	if sum.FailingVehicles != 1 || sum.FailingStreams != 1 || sum.FailingECUs["ecuA"] != 1 {
		t.Fatalf("failing rollup: %+v", sum)
	}

	v, ok := srv.Vehicle("veh00001")
	if !ok || !v.Failing || len(v.ECUs) != 2 {
		t.Fatalf("vehicle status: %+v ok=%v", v, ok)
	}
	if v.ECUs[0].ECU != "ecuA" || !v.ECUs[0].Failing || v.ECUs[0].LastEntries != 3 {
		t.Fatalf("ecuA status: %+v", v.ECUs[0])
	}
	if _, ok := srv.Vehicle("veh99999"); ok {
		t.Fatal("unknown vehicle found")
	}

	failing := srv.Failing()
	if len(failing) != 1 || failing[0].Vehicle != "veh00001" || failing[0].ECU != "ecuA" {
		t.Fatalf("failing list: %+v", failing)
	}
}

func TestIngestProtocolErrors(t *testing.T) {
	srv := New(Config{Shards: 1})
	chunks := chunksFor(t, "ecuA", 1, failData(2))
	if len(chunks) < 2 {
		t.Fatalf("want multi-chunk session, got %d", len(chunks))
	}

	// Mid-session chunk with no open session.
	if err := srv.IngestChunk("v1", "ecuA", chunks[1]); !errors.Is(err, ErrUnknownSession) {
		t.Fatalf("orphan chunk: %v", err)
	}
	ingestAll(t, srv, "v1", "ecuA", chunks)

	// Replaying the completed session is stale.
	if err := srv.IngestChunk("v1", "ecuA", chunks[0]); !errors.Is(err, ErrStaleSession) {
		t.Fatalf("replay: %v", err)
	}

	// A record claiming a different ECU than its stream.
	if err := srv.IngestChunk("v1", "ecuB", chunks[0]); err != nil {
		t.Fatalf("open on ecuB: %v", err)
	}
	var last error
	for _, c := range chunks[1:] {
		last = srv.IngestChunk("v1", "ecuB", c)
	}
	if !errors.Is(last, ErrECUMismatch) {
		t.Fatalf("mismatched ECU: %v", last)
	}

	// Corrupted chunk bounces off the assembler with its typed error.
	if err := srv.IngestChunk("v2", "ecuA", chunks[0]); len(chunks[0].Data) > 0 && err != nil {
		t.Fatalf("open v2: %v", err)
	}
	bad := chunks[1]
	bad.Data = append([]byte(nil), bad.Data...)
	bad.Data[0] ^= 0xFF
	if err := srv.IngestChunk("v2", "ecuA", bad); !errors.Is(err, gateway.ErrChunkCRC) {
		t.Fatalf("corrupt chunk: %v", err)
	}
	if got := srv.Summary().ChunkErrors; got != 1 {
		t.Fatalf("chunk errors = %d", got)
	}
}

func TestBackpressureTypedErrors(t *testing.T) {
	srv := New(Config{Shards: 1, PerShardSessions: 1, PerShardVehicles: 2})
	a := chunksFor(t, "ecuA", 1, failData(2))

	// First stream occupies the only reassembly slot.
	if err := srv.IngestChunk("v1", "ecuA", a[0]); err != nil {
		t.Fatal(err)
	}
	if err := srv.IngestChunk("v2", "ecuA", a[0]); !errors.Is(err, ErrSessionsFull) {
		t.Fatalf("second open: %v", err)
	}
	// Completing the first frees the slot.
	for _, c := range a[1:] {
		if err := srv.IngestChunk("v1", "ecuA", c); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.IngestChunk("v2", "ecuA", a[0]); err != nil {
		t.Fatalf("open after drain: %v", err)
	}

	// Vehicle cap: v1, v2 tracked; v3 rejected.
	if err := srv.IngestChunk("v3", "ecuA", a[0]); !errors.Is(err, ErrVehiclesFull) {
		t.Fatalf("third vehicle: %v", err)
	}
	if got := srv.Summary().SessionsRejected; got != 2 {
		t.Fatalf("rejected = %d", got)
	}
}

// TestSessionSupersedesAbandoned: a fresh session (bumped counter, seq
// 0) on a stream with a half-assembled abandoned session must replace
// it rather than wedge the stream.
func TestSessionSupersedesAbandoned(t *testing.T) {
	srv := New(Config{Shards: 1})
	s1 := chunksFor(t, "ecuA", 1, failData(2))
	if err := srv.IngestChunk("v1", "ecuA", s1[0]); err != nil {
		t.Fatal(err)
	}
	// Sender aborts into degraded mode, later retries as session 2.
	s2 := chunksFor(t, "ecuA", 2, failData(1))
	ingestAll(t, srv, "v1", "ecuA", s2)
	sum := srv.Summary()
	if sum.SessionsCompleted != 1 || sum.OpenSessions != 0 {
		t.Fatalf("completed/open = %d/%d", sum.SessionsCompleted, sum.OpenSessions)
	}
	v, _ := srv.Vehicle("v1")
	if v.ECUs[0].LastSession != 2 {
		t.Fatalf("last session = %d, want 2", v.ECUs[0].LastSession)
	}
}

// TestRecordsBounded: sustained ingest holds the resident record count
// at the shard rings' capacity while sessions keep completing.
func TestRecordsBounded(t *testing.T) {
	srv := New(Config{Shards: 2, PerShardRecords: 8})
	res, err := RunPopulation(context.Background(), srv, PopulationConfig{
		Vehicles: 50, ECUs: []string{"ecuA"}, SessionsPerECU: 5,
		FailProb: 0.2, Seed: 1, Workers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum := srv.Summary()
	if res.Delivered != 250 || sum.SessionsCompleted != 250 {
		t.Fatalf("delivered/completed = %d/%d", res.Delivered, sum.SessionsCompleted)
	}
	if sum.RecordsStored > 2*8 {
		t.Fatalf("resident records %d exceed ring capacity %d", sum.RecordsStored, 2*8)
	}
}

// TestConcurrentIngest exercises the sharded path under the race
// detector: many workers, few shards, a lossy bus, concurrent summary
// reads.
func TestConcurrentIngest(t *testing.T) {
	srv := New(Config{Shards: 4})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			srv.Summary()
			srv.Failing()
			srv.Vehicle("veh00003")
		}
	}()
	res, err := RunPopulation(context.Background(), srv, PopulationConfig{
		Vehicles: 64, ECUs: []string{"ecuA", "ecuB"}, SessionsPerECU: 3,
		FailProb: 0.3, Seed: 42, ErrorRate: 2e-5, Workers: 8,
	})
	<-done
	if err != nil {
		t.Fatal(err)
	}
	sum := srv.Summary()
	if want := uint64(res.Delivered); sum.SessionsCompleted != want {
		t.Fatalf("completed %d, sender delivered %d", sum.SessionsCompleted, want)
	}
	if sum.Vehicles != 64 || sum.Streams != 128 {
		t.Fatalf("vehicles/streams = %d/%d", sum.Vehicles, sum.Streams)
	}
}

// TestSummaryDeterministic pins the seeded-population contract: with
// caps never hit, the summary JSON is byte-identical at any shard and
// worker count, and the sender-side result is equal too.
func TestSummaryDeterministic(t *testing.T) {
	cfg := PopulationConfig{
		Vehicles: 40, ECUs: []string{"ecuA", "ecuB", "ecuC"}, SessionsPerECU: 2,
		FailProb: 0.3, Seed: 7, ErrorRate: 1e-5,
	}
	type run struct{ shards, workers int }
	runs := []run{{1, 1}, {7, 4}, {3, 8}}
	var wantJSON []byte
	var wantRes PopulationResult
	for i, r := range runs {
		srv := New(Config{Shards: r.shards})
		c := cfg
		c.Workers = r.workers
		res, err := RunPopulation(context.Background(), srv, c)
		if err != nil {
			t.Fatal(err)
		}
		if srv.Summary().SessionsRejected != 0 {
			t.Fatalf("run %d hit backpressure; caps too small for the test", i)
		}
		js, err := srv.SummaryJSON()
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			wantJSON, wantRes = js, res
			continue
		}
		if res != wantRes {
			t.Fatalf("run %d result %+v != %+v", i, res, wantRes)
		}
		if !bytes.Equal(js, wantJSON) {
			t.Fatalf("run %d (shards=%d workers=%d) summary differs:\n%s\nvs\n%s",
				i, r.shards, r.workers, js, wantJSON)
		}
	}
}

// TestRepairRollup checks the DTC-vs-structural comparison with a
// hand-built architectural context.
func TestRepairRollup(t *testing.T) {
	srv := New(Config{Shards: 2})
	srv.SetArch(&Arch{Codes: []dtc.TroubleCode{
		{Code: "P0001", Suspects: []model.ResourceID{"ecuA", "ecuB"}},
		{Code: "P0002", Suspects: []model.ResourceID{"ecuB", "ecuC", "ecuD"}},
	}})
	// ecuA fails on v1 (ambiguity {A,B} = 2), ecuC on v2 (ambiguity
	// {B,C,D} = 3), ecuX on v3 (no code suspects it).
	ingestAll(t, srv, "v1", "ecuA", chunksFor(t, "ecuA", 1, failData(1)))
	ingestAll(t, srv, "v2", "ecuC", chunksFor(t, "ecuC", 1, failData(1)))
	ingestAll(t, srv, "v3", "ecuX", chunksFor(t, "ecuX", 1, failData(1)))

	r := srv.Summary().Repair
	if r == nil {
		t.Fatal("no rollup despite arch")
	}
	if r.FailingECUs != 3 || r.StructuralReplacements != 3 || r.MissedByDTC != 1 {
		t.Fatalf("rollup: %+v", r)
	}
	if want := (2.0 + 3.0) / 2; r.AvgDTCAmbiguity != want {
		t.Fatalf("ambiguity %v, want %v", r.AvgDTCAmbiguity, want)
	}
	if want := (0.5 + 1.0) / 2; r.AvgFaultFreeDiscarded != want {
		t.Fatalf("discarded %v, want %v", r.AvgFaultFreeDiscarded, want)
	}
	if want := (1.0/2 + 1.0/3) / 2; math.Abs(r.FirstTryRate-want) > 1e-12 {
		t.Fatalf("first-try %v, want %v", r.FirstTryRate, want)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	srv := New(Config{Shards: 2})
	ingestAll(t, srv, "veh00001", "ecuA", chunksFor(t, "ecuA", 1, failData(2)))
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) (int, []byte) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	code, body := get("/fleet/summary")
	var sum Summary
	if code != http.StatusOK || json.Unmarshal(body, &sum) != nil {
		t.Fatalf("summary: %d %s", code, body)
	}
	if sum.Vehicles != 1 || sum.FailingStreams != 1 {
		t.Fatalf("summary payload: %+v", sum)
	}

	code, body = get("/fleet/vehicle/veh00001")
	var v VehicleStatus
	if code != http.StatusOK || json.Unmarshal(body, &v) != nil || !v.Failing {
		t.Fatalf("vehicle: %d %s", code, body)
	}
	if code, _ = get("/fleet/vehicle/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown vehicle: %d", code)
	}

	code, body = get("/fleet/failing")
	var failing []FailingECU
	if code != http.StatusOK || json.Unmarshal(body, &failing) != nil || len(failing) != 1 {
		t.Fatalf("failing: %d %s", code, body)
	}
}

// TestSteadyStateAllocs pins the per-session allocation budget of the
// hot ingest path once the server is warm: recycled assemblers, a full
// ring overwriting in place, and no per-chunk garbage beyond the
// record parse itself.
func TestSteadyStateAllocs(t *testing.T) {
	srv := New(Config{Shards: 1, PerShardRecords: 4})
	const runs = 200
	// Pre-build the chunk streams outside the measurement; sessions must
	// keep increasing to pass the stale check.
	warm := 16
	// runs+1 measured calls (AllocsPerRun adds a warm-up run) plus the
	// manual warm-up sessions.
	all := make([][]gateway.Chunk, runs+warm+2)
	for i := range all {
		all[i] = chunksFor(t, "ecuA", uint32(i+1), stumps.FailData{Windows: 64})
	}
	for i := 0; i < warm; i++ {
		ingestAll(t, srv, "v1", "ecuA", all[i])
	}
	n := warm
	avg := testing.AllocsPerRun(runs, func() {
		for _, c := range all[n] {
			if err := srv.IngestChunk("v1", "ecuA", c); err != nil {
				t.Error(err)
			}
		}
		n++
	})
	// The budget covers the record parse (reader, name bytes, string,
	// entry slice) plus map bookkeeping — pinned so a regression back to
	// per-session buffer churn fails loudly.
	if avg > 24 {
		t.Fatalf("steady-state ingest allocates %.1f allocs/session, want ≤ 24", avg)
	}
}

func TestPopulationNoECUs(t *testing.T) {
	if _, err := RunPopulation(context.Background(), New(Config{}), PopulationConfig{Vehicles: 1}); err == nil {
		t.Fatal("population without ECUs accepted")
	}
}

func TestPopulationCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunPopulation(ctx, New(Config{}), PopulationConfig{
		Vehicles: 4, ECUs: []string{"ecuA"}, SessionsPerECU: 100, Seed: 1,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled run: %v", err)
	}
}

func TestShardOfStable(t *testing.T) {
	srv := New(Config{Shards: 8})
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("veh%05d", i)
		if a, b := srv.ShardOf(id), srv.ShardOf(id); a != b || a < 0 || a >= 8 {
			t.Fatalf("ShardOf(%q) unstable: %d %d", id, a, b)
		}
	}
}
