package fleet

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/durable"
	"repro/internal/gateway"
	"repro/internal/obs"
)

// Durability model. The unit of commitment is one completed session:
// when the chunk completing a reassembly arrives, the session's
// outcome (the record, or a corrupt verdict) plus its wire deltas are
// framed into one WAL entry and fsynced before any server state
// mutates or the final chunk is acknowledged. Everything recovery can
// see was therefore acked, and everything acked is seen — the sender
// resume protocol (skip sessions at or below LastCommitted, redo the
// rest with per-session-seeded wire behavior) makes a crashed-and-
// recovered run converge on byte-identical SummaryJSON with an
// uninterrupted one.
//
// Commit entry layout (little-endian):
//
//	u8 outcome | u32 session | u32 chunks | u32 chunkErrors |
//	u16 len(vehicle) | vehicle | u16 len(ecu) | ecu |
//	u32 len(blob) | blob
//
// where blob is the reassembled record (gateway wire format) for
// entryStored and empty for entryCorrupt.
const (
	entryStored  byte = 1 // session completed, record parsed and stored
	entryCorrupt byte = 2 // session completed, record corrupt or mismatched
)

// commitEntry is one decoded WAL entry.
type commitEntry struct {
	outcome      byte
	session      uint32
	chunks       uint64
	chunkErrors  uint64
	vehicle, ecu string
	blob         []byte
}

func appendCommitEntry(buf []byte, outcome byte, vehicle, ecu string, session uint32, chunks, chunkErrors uint64, blob []byte) []byte {
	buf = append(buf, outcome)
	buf = binary.LittleEndian.AppendUint32(buf, session)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(chunks))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(chunkErrors))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(vehicle)))
	buf = append(buf, vehicle...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(ecu)))
	buf = append(buf, ecu...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(blob)))
	return append(buf, blob...)
}

func decodeCommitEntry(b []byte) (commitEntry, error) {
	var e commitEntry
	bad := func() (commitEntry, error) {
		return e, fmt.Errorf("fleet: truncated commit entry (%d bytes)", len(b))
	}
	if len(b) < 13 {
		return bad()
	}
	e.outcome = b[0]
	e.session = binary.LittleEndian.Uint32(b[1:])
	e.chunks = uint64(binary.LittleEndian.Uint32(b[5:]))
	e.chunkErrors = uint64(binary.LittleEndian.Uint32(b[9:]))
	b = b[13:]
	if len(b) < 2 {
		return bad()
	}
	n := int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return bad()
	}
	e.vehicle, b = string(b[:n]), b[n:]
	if len(b) < 2 {
		return bad()
	}
	n = int(binary.LittleEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return bad()
	}
	e.ecu, b = string(b[:n]), b[n:]
	if len(b) < 4 {
		return bad()
	}
	n = int(binary.LittleEndian.Uint32(b))
	b = b[4:]
	if len(b) != n {
		return bad()
	}
	if e.outcome != entryStored && e.outcome != entryCorrupt {
		return e, fmt.Errorf("fleet: unknown commit entry outcome %d", e.outcome)
	}
	e.blob = b
	return e, nil
}

// snapECU / snapState are the snapshot codec: the committed counters,
// per-stream bookkeeping, and resident records (gateway wire blobs, in
// ring order shard by shard). encoding/json sorts map keys, so equal
// state serializes to equal bytes.
type snapECU struct {
	Sessions      uint32 `json:"s"`
	LastSession   uint32 `json:"ls"`
	LastCommitted uint32 `json:"lc"`
	FailSessions  uint32 `json:"fs"`
	Failing       bool   `json:"f,omitempty"`
	LastEntries   int    `json:"le,omitempty"`
	LastWindows   int    `json:"lw,omitempty"`
}

type snapState struct {
	// Counters: chunks, chunkErrors, opened, completed, corrupt — the
	// committed portion only. Wire-noise counters that were never part
	// of a commit (stale replays, backpressure rejections) are volatile
	// by design: a crash loses them along with the unacked traffic that
	// caused them, and the senders' resumed traffic recreates neither.
	Counters [5]uint64                     `json:"counters"`
	Vehicles map[string]map[string]snapECU `json:"vehicles"`
	Records  [][]byte                      `json:"records"`
}

// DurableConfig wires a Server to a durable.Store.
type DurableConfig struct {
	// Dir is the data directory (WAL segments + snapshots).
	Dir string
	// FS overrides the filesystem (fault injection in tests).
	FS durable.FS
	// SnapshotEvery / SnapshotInterval / KeepSnapshots tune the
	// snapshot cadence (durable.Options semantics).
	SnapshotEvery    int
	SnapshotInterval time.Duration
	KeepSnapshots    int
	// OnCommit, when set, observes every durable commit LSN. Called
	// with a shard lock held — keep it trivial (the chaos harness's
	// kill switch).
	OnCommit func(lsn uint64)
	// Obs times wal_append / snapshot / recover stages.
	Obs *obs.Tracer
}

// OpenDurable attaches crash-safe persistence: recover the pre-crash
// state from dir, then WAL every subsequent session commit. Call
// before serving, like SetArch/SetObs; the server must still be empty.
func (s *Server) OpenDurable(cfg DurableConfig) (durable.Recovery, error) {
	if s.store != nil {
		return durable.Recovery{}, errors.New("fleet: durable store already open")
	}
	st, rec, err := durable.Open(cfg.Dir, durable.Options{
		FS:               cfg.FS,
		SnapshotEvery:    cfg.SnapshotEvery,
		SnapshotInterval: cfg.SnapshotInterval,
		KeepSnapshots:    cfg.KeepSnapshots,
		State:            s.captureState,
		Restore:          s.restoreState,
		Apply:            s.applyEntry,
		OnCommit:         cfg.OnCommit,
		Obs:              cfg.Obs,
	})
	if err != nil {
		return rec, err
	}
	s.store = st
	st.Start()
	return rec, nil
}

// CloseDurable snapshots and closes the store. Nil-safe.
func (s *Server) CloseDurable() error {
	if s.store == nil {
		return nil
	}
	return s.store.Close()
}

// KillDurable abandons the store without flushing — the in-process
// crash simulation used by the chaos tests.
func (s *Server) KillDurable() {
	if s.store != nil {
		s.store.Kill()
	}
}

// StorageDegraded reports whether the durable store has turned the
// service read-only.
func (s *Server) StorageDegraded() bool {
	return s.store != nil && s.store.Degraded()
}

// StorageRejects counts ingest calls refused because storage was
// degraded.
func (s *Server) StorageRejects() uint64 { return s.storageRejects.Load() }

// DurableStats exposes the store's activity counters (zero when the
// server runs without persistence).
func (s *Server) DurableStats() durable.Stats {
	if s.store == nil {
		return durable.Stats{}
	}
	return s.store.StatsSnapshot()
}

// SnapshotNow forces a snapshot (test and shutdown hook). Nil-safe.
func (s *Server) SnapshotNow() error {
	if s.store == nil {
		return nil
	}
	return s.store.Snapshot()
}

// LastCommitted returns the highest committed session number of one
// (vehicle, ECU) stream — the sender resume protocol: sessions at or
// below it were durably counted and must not be re-sent.
func (s *Server) LastCommitted(vehicle, ecu string) uint32 {
	sh := s.shards[s.ShardOf(vehicle)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if vs := sh.vehicles[vehicle]; vs != nil {
		if es := vs.ecus[ecu]; es != nil {
			return es.LastCommitted
		}
	}
	return 0
}

// captureState serializes the committed state under a full freeze:
// every shard lock is held, so no commit (and therefore no Append) is
// in flight and store.LastLSN() is exactly the captured cover.
func (s *Server) captureState() ([]byte, uint64, error) {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	defer func() {
		for i := len(s.shards) - 1; i >= 0; i-- {
			s.shards[i].mu.Unlock()
		}
	}()

	st := snapState{
		Counters: [5]uint64{
			s.committed.chunks.Load(),
			s.committed.chunkErrors.Load(),
			s.committed.opened.Load(),
			s.committed.completed.Load(),
			s.committed.corrupt.Load(),
		},
		Vehicles: make(map[string]map[string]snapECU),
	}
	for _, sh := range s.shards {
		for id, vs := range sh.vehicles {
			ecus := make(map[string]snapECU, len(vs.ecus))
			for name, es := range vs.ecus {
				ecus[name] = snapECU{
					Sessions:      es.Sessions,
					LastSession:   es.LastSession,
					LastCommitted: es.LastCommitted,
					FailSessions:  es.FailSessions,
					Failing:       es.Failing,
					LastEntries:   es.LastEntries,
					LastWindows:   es.LastWindows,
				}
			}
			st.Vehicles[id] = ecus
		}
		for _, rec := range sh.collector.Records() {
			blob, err := gateway.Marshal(rec)
			if err != nil {
				return nil, 0, fmt.Errorf("fleet: snapshot record: %w", err)
			}
			st.Records = append(st.Records, blob)
		}
	}
	data, err := json.Marshal(st)
	if err != nil {
		return nil, 0, err
	}
	return data, s.store.LastLSN(), nil
}

// restoreState resets the server to a snapshot. Runs inside
// durable.Open, before any concurrent ingest exists.
func (s *Server) restoreState(data []byte) error {
	var st snapState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("fleet: decode snapshot: %w", err)
	}
	s.committed.chunks.Store(st.Counters[0])
	s.committed.chunkErrors.Store(st.Counters[1])
	s.committed.opened.Store(st.Counters[2])
	s.committed.completed.Store(st.Counters[3])
	s.committed.corrupt.Store(st.Counters[4])

	for _, sh := range s.shards {
		sh.mu.Lock()
		sh.vehicles = make(map[string]*vehicleState)
		sh.collector.Clear()
		sh.stats = counters{}
		sh.mu.Unlock()
	}
	// Seed the live counters from the committed ones: the recovered
	// server starts exactly where the committed history ends. Shard 0
	// carries the recovered sums — Summary and Stats sum across shards.
	sh0 := s.shards[0]
	sh0.mu.Lock()
	sh0.stats.Chunks = st.Counters[0]
	sh0.stats.ChunkErrors = st.Counters[1]
	sh0.stats.SessionsOpened = st.Counters[2]
	sh0.stats.SessionsCompleted = st.Counters[3]
	sh0.stats.CorruptRecords = st.Counters[4]
	sh0.mu.Unlock()

	for vehicle, ecus := range st.Vehicles {
		sh := s.shards[s.ShardOf(vehicle)]
		sh.mu.Lock()
		vs := &vehicleState{ecus: make(map[string]*ecuState, len(ecus))}
		for name, se := range ecus {
			vs.ecus[name] = &ecuState{
				Sessions:      se.Sessions,
				LastSession:   se.LastSession,
				LastCommitted: se.LastCommitted,
				FailSessions:  se.FailSessions,
				Failing:       se.Failing,
				LastEntries:   se.LastEntries,
				LastWindows:   se.LastWindows,
			}
		}
		sh.vehicles[vehicle] = vs
		sh.mu.Unlock()
	}
	for _, blob := range st.Records {
		rec, err := gateway.Unmarshal(blob)
		if err != nil {
			return fmt.Errorf("fleet: snapshot record: %w", err)
		}
		vehicle, _, ok := strings.Cut(rec.ECU, "/")
		if !ok {
			return fmt.Errorf("fleet: snapshot record %q has no vehicle prefix", rec.ECU)
		}
		sh := s.shards[s.ShardOf(vehicle)]
		sh.mu.Lock()
		sh.collector.Store(rec)
		sh.mu.Unlock()
	}
	return nil
}

// applyEntry replays one WAL commit entry: the offer-time counter
// increments a live ingest would have made, then the shared commit
// fold. Both roads — live ingest and replay — land on identical state.
func (s *Server) applyEntry(lsn uint64, entry []byte) error {
	e, err := decodeCommitEntry(entry)
	if err != nil {
		return err
	}
	sh := s.shards[s.ShardOf(e.vehicle)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	vs := sh.vehicles[e.vehicle]
	if vs == nil {
		vs = &vehicleState{ecus: make(map[string]*ecuState)}
		sh.vehicles[e.vehicle] = vs
	}
	es := vs.ecus[e.ecu]
	if es == nil {
		es = &ecuState{}
		vs.ecus[e.ecu] = es
	}
	sh.stats.Chunks += e.chunks
	sh.stats.ChunkErrors += e.chunkErrors
	sh.stats.SessionsOpened++
	var rec gateway.Record
	if e.outcome == entryStored {
		if rec, err = gateway.Unmarshal(e.blob); err != nil {
			return fmt.Errorf("fleet: commit entry record: %w", err)
		}
	}
	sh.applyCommit(es, e.outcome, e.session, e.chunks, e.chunkErrors, rec, e.vehicle, e.ecu)
	return nil
}
