package fleet

import "repro/internal/obs"

// IngestStats is the service's cheap counter block: the monotonic
// per-shard ingest counters summed, plus the live open-session and
// stored-record gauges. Unlike Summary it never walks per-vehicle
// state, so it is safe to read on every metrics scrape.
type IngestStats struct {
	Chunks            uint64
	ChunkErrors       uint64
	SessionsOpened    uint64
	SessionsCompleted uint64
	SessionsRejected  uint64
	StaleSessions     uint64
	CorruptRecords    uint64

	OpenSessions  int
	RecordsStored int
}

// Stats sums the shard counters.
func (s *Server) Stats() IngestStats {
	var st IngestStats
	for _, sh := range s.shards {
		sh.mu.Lock()
		st.Chunks += sh.stats.Chunks
		st.ChunkErrors += sh.stats.ChunkErrors
		st.SessionsOpened += sh.stats.SessionsOpened
		st.SessionsCompleted += sh.stats.SessionsCompleted
		st.SessionsRejected += sh.stats.SessionsRejected
		st.StaleSessions += sh.stats.StaleSessions
		st.CorruptRecords += sh.stats.CorruptRecords
		st.OpenSessions += len(sh.open)
		st.RecordsStored += sh.collector.Len()
		sh.mu.Unlock()
	}
	return st
}

// RegisterMetrics exposes the service's ingest counters on the
// registry as pull-style series: values are read from the shard
// counters at scrape time, so the hot path keeps its single
// (per-shard mutex) accounting and the registry adds zero ingest cost.
func RegisterMetrics(reg *obs.Registry, s *Server) {
	if reg == nil || s == nil {
		return
	}
	reg.CounterFunc("fleet_chunks_total", "chunks offered to the ingest path",
		func() float64 { return float64(s.Stats().Chunks) })
	reg.CounterFunc("fleet_chunk_errors_total", "chunks rejected by reassembly (CRC, gap, duplicate)",
		func() float64 { return float64(s.Stats().ChunkErrors) })
	reg.CounterFunc("fleet_sessions_opened_total", "reassembly sessions opened",
		func() float64 { return float64(s.Stats().SessionsOpened) })
	reg.CounterFunc("fleet_sessions_completed_total", "sessions fully assembled and stored",
		func() float64 { return float64(s.Stats().SessionsCompleted) })
	reg.CounterFunc("fleet_sessions_rejected_total", "sessions rejected by backpressure caps",
		func() float64 { return float64(s.Stats().SessionsRejected) })
	reg.CounterFunc("fleet_stale_sessions_total", "replayed session numbers rejected",
		func() float64 { return float64(s.Stats().StaleSessions) })
	reg.CounterFunc("fleet_corrupt_records_total", "completed sessions whose record failed to parse",
		func() float64 { return float64(s.Stats().CorruptRecords) })
	reg.GaugeFunc("fleet_open_sessions", "reassembly sessions currently in flight",
		func() float64 { return float64(s.Stats().OpenSessions) })
	reg.GaugeFunc("fleet_records_stored", "records resident in the bounded shard rings",
		func() float64 { return float64(s.Stats().RecordsStored) })
	reg.GaugeFunc("fleet_storage_degraded", "1 when the durable store is degraded read-only, else 0",
		func() float64 {
			if s.StorageDegraded() {
				return 1
			}
			return 0
		})
	reg.CounterFunc("fleet_storage_rejects_total", "ingest calls refused because storage was degraded",
		func() float64 { return float64(s.StorageRejects()) })
	if s.store != nil {
		s.store.RegisterMetrics(reg)
	}
}
