package fleet

import (
	"encoding/json"
	"sort"

	"repro/internal/dtc"
	"repro/internal/model"
)

// Summary is the fleet-level view served at /fleet/summary. It is
// computed from per-vehicle state and monotonic counters only — never
// from shard-local artifacts like ring-eviction interleavings — so a
// fixed seeded population produces byte-identical summaries at any
// shard or worker count.
type Summary struct {
	// Vehicles and Streams count the tracked vehicles and their
	// (vehicle, ECU) chunk streams.
	Vehicles int `json:"vehicles"`
	Streams  int `json:"streams"`

	// Ingest counters, summed across shards.
	Chunks            uint64 `json:"chunks"`
	ChunkErrors       uint64 `json:"chunk_errors"`
	SessionsOpened    uint64 `json:"sessions_opened"`
	SessionsCompleted uint64 `json:"sessions_completed"`
	SessionsRejected  uint64 `json:"sessions_rejected"`
	StaleSessions     uint64 `json:"stale_sessions"`
	CorruptRecords    uint64 `json:"corrupt_records"`

	// OpenSessions and RecordsStored describe the live state: reassembly
	// sessions in flight and records resident in the bounded shard rings.
	OpenSessions  int `json:"open_sessions"`
	RecordsStored int `json:"records_stored"`

	// FailingVehicles counts vehicles whose latest session on at least
	// one ECU failed; FailingStreams the failing (vehicle, ECU) streams;
	// FailingECUs histograms them by ECU name — the fleet-wide answer to
	// "which ECU type is failing out there".
	FailingVehicles int            `json:"failing_vehicles"`
	FailingStreams  int            `json:"failing_streams"`
	FailingECUs     map[string]int `json:"failing_ecus"`

	// Repair compares the workshop cost of the fleet's current failures
	// under the DTC baseline vs. structural localization. Present only
	// when an Arch was attached.
	Repair *RepairRollup `json:"repair,omitempty"`
}

// RepairRollup is the fleet-wide repair-cost comparison of Section I:
// for every failing (vehicle, ECU) stream, the functional baseline
// presents the DTC ambiguity set while the structural fail data names
// the ECU directly.
type RepairRollup struct {
	// Codes is the number of trouble codes in the architectural context.
	Codes int `json:"codes"`
	// FailingECUs is the number of failing streams rolled up.
	FailingECUs int `json:"failing_ecus"`
	// StructuralReplacements is the units replaced with structural
	// localization: one per failing ECU.
	StructuralReplacements int `json:"structural_replacements"`
	// AvgDTCAmbiguity is the mean candidate-set size the DTC baseline
	// presents per failing ECU (over ECUs the codes can see at all).
	AvgDTCAmbiguity float64 `json:"avg_dtc_ambiguity"`
	// AvgFaultFreeDiscarded is the expected fault-free units replaced per
	// repair under replace-until-clear with uniformly random order:
	// (k−1)/2 for an ambiguity set of k.
	AvgFaultFreeDiscarded float64 `json:"avg_fault_free_discarded"`
	// FirstTryRate is the probability the first replaced unit is the
	// faulty one under the DTC baseline (structural localization is 1.0
	// by construction).
	FirstTryRate float64 `json:"first_try_rate"`
	// MissedByDTC counts failing ECUs no trouble code suspects — faults
	// only the structural BIST route surfaces.
	MissedByDTC int `json:"missed_by_dtc"`
}

// ECUStatus is one (vehicle, ECU) stream's state.
type ECUStatus struct {
	ECU          string `json:"ecu"`
	Sessions     uint32 `json:"sessions"`
	LastSession  uint32 `json:"last_session"`
	FailSessions uint32 `json:"fail_sessions"`
	Failing      bool   `json:"failing"`
	LastEntries  int    `json:"last_entries"`
	LastWindows  int    `json:"last_windows"`
}

// VehicleStatus is one vehicle's view served at /fleet/vehicle/{id}.
type VehicleStatus struct {
	Vehicle string      `json:"vehicle"`
	Failing bool        `json:"failing"`
	ECUs    []ECUStatus `json:"ecus"`
}

// FailingECU is one row of the /fleet/failing listing.
type FailingECU struct {
	Vehicle      string `json:"vehicle"`
	ECU          string `json:"ecu"`
	LastSession  uint32 `json:"last_session"`
	FailSessions uint32 `json:"fail_sessions"`
	LastEntries  int    `json:"last_entries"`
}

// vehicleSnapshot is one vehicle's state copied out under its shard's
// lock.
type vehicleSnapshot struct {
	vehicle string
	ecus    []ECUStatus
}

// snapshot copies the per-vehicle state of every shard, sorted by
// vehicle ID (and ECU within a vehicle) so downstream float
// accumulation is order-deterministic.
func (s *Server) snapshot() (vehicles []vehicleSnapshot, stats counters, open, stored int) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		stats.add(sh.stats)
		open += len(sh.open)
		stored += sh.collector.Len()
		for id, vs := range sh.vehicles {
			snap := vehicleSnapshot{vehicle: id}
			for name, es := range vs.ecus {
				snap.ecus = append(snap.ecus, ECUStatus{
					ECU:          name,
					Sessions:     es.Sessions,
					LastSession:  es.LastSession,
					FailSessions: es.FailSessions,
					Failing:      es.Failing,
					LastEntries:  es.LastEntries,
					LastWindows:  es.LastWindows,
				})
			}
			sort.Slice(snap.ecus, func(i, j int) bool { return snap.ecus[i].ECU < snap.ecus[j].ECU })
			vehicles = append(vehicles, snap)
		}
		sh.mu.Unlock()
	}
	sort.Slice(vehicles, func(i, j int) bool { return vehicles[i].vehicle < vehicles[j].vehicle })
	return vehicles, stats, open, stored
}

// Summary aggregates the fleet-level statistics.
func (s *Server) Summary() Summary {
	vehicles, stats, open, stored := s.snapshot()
	sum := Summary{
		Vehicles:          len(vehicles),
		Chunks:            stats.Chunks,
		ChunkErrors:       stats.ChunkErrors,
		SessionsOpened:    stats.SessionsOpened,
		SessionsCompleted: stats.SessionsCompleted,
		SessionsRejected:  stats.SessionsRejected,
		StaleSessions:     stats.StaleSessions,
		CorruptRecords:    stats.CorruptRecords,
		OpenSessions:      open,
		RecordsStored:     stored,
		FailingECUs:       make(map[string]int),
	}
	var failingStreams []ECUStatus
	for _, v := range vehicles {
		sum.Streams += len(v.ecus)
		failing := false
		for _, e := range v.ecus {
			if e.Failing {
				failing = true
				sum.FailingStreams++
				sum.FailingECUs[e.ECU]++
				failingStreams = append(failingStreams, e)
			}
		}
		if failing {
			sum.FailingVehicles++
		}
	}
	if s.arch != nil {
		sum.Repair = rollup(s.arch.Codes, failingStreams)
	}
	return sum
}

// rollup computes the DTC-vs-structural repair comparison over the
// failing streams, which arrive sorted by (vehicle, ECU) so the float
// sums accumulate in a fixed order.
func rollup(codes []dtc.TroubleCode, failing []ECUStatus) *RepairRollup {
	r := &RepairRollup{
		Codes:                  len(codes),
		FailingECUs:            len(failing),
		StructuralReplacements: len(failing),
	}
	seen := 0
	for _, e := range failing {
		triggered := dtc.TriggeredBy(codes, model.ResourceID(e.ECU))
		k := len(dtc.Candidates(codes, triggered))
		if k == 0 {
			r.MissedByDTC++
			continue
		}
		seen++
		r.AvgDTCAmbiguity += float64(k)
		r.AvgFaultFreeDiscarded += float64(k-1) / 2
		r.FirstTryRate += 1 / float64(k)
	}
	if seen > 0 {
		n := float64(seen)
		r.AvgDTCAmbiguity /= n
		r.AvgFaultFreeDiscarded /= n
		r.FirstTryRate /= n
	}
	return r
}

// SummaryJSON renders the summary as indented JSON. encoding/json
// sorts map keys, so equal summaries render to equal bytes.
func (s *Server) SummaryJSON() ([]byte, error) {
	return json.MarshalIndent(s.Summary(), "", "  ")
}

// Vehicle returns one vehicle's status.
func (s *Server) Vehicle(id string) (VehicleStatus, bool) {
	sh := s.shards[s.ShardOf(id)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	vs := sh.vehicles[id]
	if vs == nil {
		return VehicleStatus{}, false
	}
	out := VehicleStatus{Vehicle: id}
	for name, es := range vs.ecus {
		st := ECUStatus{
			ECU:          name,
			Sessions:     es.Sessions,
			LastSession:  es.LastSession,
			FailSessions: es.FailSessions,
			Failing:      es.Failing,
			LastEntries:  es.LastEntries,
			LastWindows:  es.LastWindows,
		}
		if st.Failing {
			out.Failing = true
		}
		out.ECUs = append(out.ECUs, st)
	}
	sort.Slice(out.ECUs, func(i, j int) bool { return out.ECUs[i].ECU < out.ECUs[j].ECU })
	return out, true
}

// Failing lists the currently failing (vehicle, ECU) streams, sorted by
// (vehicle, ECU).
func (s *Server) Failing() []FailingECU {
	vehicles, _, _, _ := s.snapshot()
	var out []FailingECU
	for _, v := range vehicles {
		for _, e := range v.ecus {
			if e.Failing {
				out = append(out, FailingECU{
					Vehicle:      v.vehicle,
					ECU:          e.ECU,
					LastSession:  e.LastSession,
					FailSessions: e.FailSessions,
					LastEntries:  e.LastEntries,
				})
			}
		}
	}
	return out
}
