package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/durable"
)

// chaosPopulation is the shared load profile of the durability tests:
// small enough to iterate over many seeds, lossy enough (1e-5) that
// the retry machinery actually fires, and clean enough that every
// session eventually commits — the regime where a recovered run must
// be byte-identical to an uninterrupted one.
func chaosPopulation(workers int) PopulationConfig {
	return PopulationConfig{
		Vehicles: 12, ECUs: []string{"ecuA", "ecuB"}, SessionsPerECU: 3,
		FailProb: 0.4, Seed: 99, ErrorRate: 1e-5, Workers: workers,
	}
}

// referenceJSON runs cfg against a plain in-RAM server and returns its
// summary — the oracle every durable run is compared against.
func referenceJSON(t *testing.T, shards int, cfg PopulationConfig) []byte {
	t.Helper()
	srv := New(Config{Shards: shards})
	if _, err := RunPopulation(context.Background(), srv, cfg); err != nil {
		t.Fatal(err)
	}
	js, err := srv.SummaryJSON()
	if err != nil {
		t.Fatal(err)
	}
	return js
}

func openDurable(t *testing.T, shards int, fs durable.FS, cfg DurableConfig) (*Server, durable.Recovery) {
	t.Helper()
	srv := New(Config{Shards: shards})
	cfg.Dir = "data"
	cfg.FS = fs
	rec, err := srv.OpenDurable(cfg)
	if err != nil {
		t.Fatalf("OpenDurable: %v", err)
	}
	return srv, rec
}

func summaryJSON(t *testing.T, srv *Server) []byte {
	t.Helper()
	js, err := srv.SummaryJSON()
	if err != nil {
		t.Fatal(err)
	}
	return js
}

// TestDurableOnVsOff: turning the WAL on must not change a single byte
// of the summary, and a clean close/reopen must restore it exactly.
func TestDurableOnVsOff(t *testing.T) {
	cfg := chaosPopulation(4)
	want := referenceJSON(t, 4, cfg)

	fs := durable.NewMemFS()
	srv, _ := openDurable(t, 4, fs, DurableConfig{SnapshotEvery: 16})
	if _, err := RunPopulation(context.Background(), srv, cfg); err != nil {
		t.Fatal(err)
	}
	if got := summaryJSON(t, srv); !bytes.Equal(got, want) {
		t.Fatalf("durable-on summary differs:\n%s\nvs\n%s", got, want)
	}
	if err := srv.CloseDurable(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// Clean reopen: everything came through the final snapshot.
	srv2, rec := openDurable(t, 4, fs, DurableConfig{})
	if rec.LastLSN == 0 {
		t.Fatal("reopen recovered nothing")
	}
	if got := summaryJSON(t, srv2); !bytes.Equal(got, want) {
		t.Fatalf("reopened summary differs:\n%s\nvs\n%s", got, want)
	}
	if err := srv2.CloseDurable(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRecoveryShardWorkerMatrix: recovery lands on the identical
// summary no matter the shard count or worker count on either side of
// the restart — shard routing is recomputed, not persisted.
func TestDurableRecoveryShardWorkerMatrix(t *testing.T) {
	cfg := chaosPopulation(1)
	want := referenceJSON(t, 1, cfg)

	type side struct{ shards, workers int }
	pairs := []struct{ before, after side }{
		{side{1, 1}, side{8, 4}},
		{side{8, 4}, side{3, 2}},
		{side{5, 8}, side{1, 1}},
	}
	for _, p := range pairs {
		fs := durable.NewMemFS()
		run := cfg
		run.Workers = p.before.workers
		srv, _ := openDurable(t, p.before.shards, fs, DurableConfig{SnapshotEvery: 8})
		if _, err := RunPopulation(context.Background(), srv, run); err != nil {
			t.Fatal(err)
		}
		// Crash without the final snapshot: recovery must rebuild from
		// an intermediate snapshot plus the WAL tail.
		srv.KillDurable()
		fs.Crash(1)

		srv2, _ := openDurable(t, p.after.shards, fs, DurableConfig{})
		if got := summaryJSON(t, srv2); !bytes.Equal(got, want) {
			t.Fatalf("%+v: recovered summary differs:\n%s\nvs\n%s", p, got, want)
		}
		// All sessions committed, so a resumed population skips all.
		run.Workers = p.after.workers
		run.Resume = true
		res, err := RunPopulation(context.Background(), srv2, run)
		if err != nil {
			t.Fatal(err)
		}
		if res.Sessions != 0 || res.Skipped != cfg.Vehicles*len(cfg.ECUs)*cfg.SessionsPerECU {
			t.Fatalf("%+v: resume sent %d sessions, skipped %d", p, res.Sessions, res.Skipped)
		}
		if got := summaryJSON(t, srv2); !bytes.Equal(got, want) {
			t.Fatalf("%+v: summary changed after no-op resume", p)
		}
		srv2.CloseDurable()
	}
}

// TestSeededCrashRecovery is the in-process chaos harness: interrupt
// the ingest at a seeded commit count, simulate the power cut
// (Kill + MemFS.Crash with a seeded partial tail), restart, resume the
// senders, and require the summary byte-identical to an uninterrupted
// run. Seeds sweep the crash point across the whole ingest and the
// torn-tail length across frames.
func TestSeededCrashRecovery(t *testing.T) {
	cfg := chaosPopulation(4)
	want := referenceJSON(t, 4, cfg)
	total := cfg.Vehicles * len(cfg.ECUs) * cfg.SessionsPerECU

	for seed := uint64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fs := durable.NewMemFS()
			killAt := 1 + seed*uint64(total)/13 // crash points spread over the run

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			srv, _ := openDurable(t, 4, fs, DurableConfig{
				SnapshotEvery: 8,
				OnCommit: func(lsn uint64) {
					if lsn == killAt {
						cancel()
					}
				},
			})
			_, err := RunPopulation(ctx, srv, cfg)
			if err != nil && !errors.Is(err, context.Canceled) {
				t.Fatal(err)
			}
			srv.KillDurable()
			fs.Crash(seed)

			// Some crashes leave trailing garbage instead of a clean cut:
			// simulate by appending junk to every WAL segment.
			if seed%3 == 0 {
				names, err := fs.ReadDir("data")
				if err != nil {
					t.Fatal(err)
				}
				for _, name := range names {
					if bytes.HasPrefix([]byte(name), []byte("wal-")) {
						data, err := fs.ReadFile("data/" + name)
						if err != nil {
							t.Fatal(err)
						}
						fs.WriteFile("data/"+name, append(data, 0xde, 0xad, 0xbe, 0xef))
					}
				}
			}

			srv2, rec := openDurable(t, 4, fs, DurableConfig{SnapshotEvery: 8})
			if rec.LastLSN < killAt {
				t.Fatalf("recovered LSN %d below acked commit %d", rec.LastLSN, killAt)
			}
			resume := cfg
			resume.Resume = true
			res, err := RunPopulation(context.Background(), srv2, resume)
			if err != nil {
				t.Fatal(err)
			}
			if res.Skipped < int(killAt) {
				t.Fatalf("resume skipped %d < %d acked sessions", res.Skipped, killAt)
			}
			if got := summaryJSON(t, srv2); !bytes.Equal(got, want) {
				t.Fatalf("recovered summary differs after crash at commit %d:\n%s\nvs\n%s", killAt, got, want)
			}
			if err := srv2.CloseDurable(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPartialSessionCrash: a session cut down mid-reassembly is not
// committed — recovery must not see half a session, and redelivering
// it from scratch must land it exactly once.
func TestPartialSessionCrash(t *testing.T) {
	fs := durable.NewMemFS()
	srv, _ := openDurable(t, 2, fs, DurableConfig{})

	full := chunksFor(t, "ecuA", 1, failData(3))
	if len(full) < 3 {
		t.Fatalf("want ≥3 chunks, got %d", len(full))
	}
	ingestAll(t, srv, "veh00001", "ecuA", chunksFor(t, "ecuA", 1, failData(2))[:]) // committed stream
	for _, c := range full[:len(full)-1] {                                         // partial stream
		if err := srv.IngestChunk("veh00002", "ecuA", c); err != nil {
			t.Fatal(err)
		}
	}
	srv.KillDurable()
	fs.Crash(7)

	srv2, rec := openDurable(t, 2, fs, DurableConfig{})
	if rec.Entries != 1 && rec.LastLSN != 1 {
		t.Fatalf("want exactly the committed session recovered, got %+v", rec)
	}
	sum := srv2.Summary()
	if sum.SessionsCompleted != 1 || sum.OpenSessions != 0 {
		t.Fatalf("completed/open = %d/%d after recovery", sum.SessionsCompleted, sum.OpenSessions)
	}
	if got := srv2.LastCommitted("veh00002", "ecuA"); got != 0 {
		t.Fatalf("partial session committed: LastCommitted=%d", got)
	}
	// Redeliver the interrupted session in full.
	ingestAll(t, srv2, "veh00002", "ecuA", full)
	if got := srv2.LastCommitted("veh00002", "ecuA"); got != 1 {
		t.Fatalf("redelivered session not committed: LastCommitted=%d", got)
	}
	if sum := srv2.Summary(); sum.SessionsCompleted != 2 {
		t.Fatalf("completed = %d, want 2", sum.SessionsCompleted)
	}
	srv2.CloseDurable()
}

// TestStorageDegradedReadOnly: when the disk starts failing mid-run the
// service must turn read-only — typed backpressure to senders, summary
// still serveable, zero panics — and a restart on the surviving prefix
// must come back clean.
func TestStorageDegradedReadOnly(t *testing.T) {
	cfg := chaosPopulation(4)
	fs := durable.NewMemFS()
	var syncs atomic.Uint64
	diskDead := errors.New("disk failed")
	fs.Fault = func(op, name string) error {
		if op == "sync" && syncs.Add(1) > 10 {
			return diskDead
		}
		return nil
	}
	srv, _ := openDurable(t, 4, fs, DurableConfig{SnapshotEvery: 4})
	res, err := RunPopulation(context.Background(), srv, cfg)
	if err != nil {
		t.Fatalf("population must complete degraded, not fail: %v", err)
	}
	if !srv.StorageDegraded() {
		t.Fatal("store not degraded after fsync failures")
	}
	if res.Degraded == 0 {
		t.Fatal("no sessions fell back to local storage")
	}
	if srv.StorageRejects() == 0 {
		t.Fatal("degraded fast-fail gate never fired")
	}
	// The summary must still serve (read path unaffected).
	if _, err := srv.SummaryJSON(); err != nil {
		t.Fatal(err)
	}
	if err := srv.CloseDurable(); !errors.Is(err, durable.ErrStorageDegraded) {
		t.Fatalf("close on degraded store: %v", err)
	}

	// Disk replaced: recovery of the surviving prefix, then a resumed
	// population must complete fully and commit everything.
	fs.Fault = nil
	srv2, _ := openDurable(t, 4, fs, DurableConfig{SnapshotEvery: 16})
	resume := cfg
	resume.Resume = true
	res2, err := RunPopulation(context.Background(), srv2, resume)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Degraded != 0 {
		t.Fatalf("%d sessions degraded after disk replacement", res2.Degraded)
	}
	want := referenceJSON(t, 4, cfg)
	if got := summaryJSON(t, srv2); !bytes.Equal(got, want) {
		t.Fatalf("post-replacement summary differs:\n%s\nvs\n%s", got, want)
	}
	if err := srv2.CloseDurable(); err != nil {
		t.Fatal(err)
	}
}

// TestDegradedIngestTyped: once degraded, IngestChunk fails fast with
// ErrStorageDegraded (wrapped, errors.Is-able) and marks backpressure.
func TestDegradedIngestTyped(t *testing.T) {
	fs := durable.NewMemFS()
	srv, _ := openDurable(t, 1, fs, DurableConfig{})
	fs.Fault = func(op, name string) error {
		if op == "sync" {
			return errors.New("no space left on device")
		}
		return nil
	}
	chunks := chunksFor(t, "ecuA", 1, failData(1))
	var last error
	for _, c := range chunks {
		if last = srv.IngestChunk("v1", "ecuA", c); last != nil {
			break
		}
	}
	if !errors.Is(last, durable.ErrStorageDegraded) {
		t.Fatalf("want ErrStorageDegraded, got %v", last)
	}
	// Every later chunk fails fast the same way.
	if err := srv.IngestChunk("v2", "ecuA", chunks[0]); !errors.Is(err, durable.ErrStorageDegraded) {
		t.Fatalf("fast-fail gate: %v", err)
	}
	if srv.StorageRejects() == 0 {
		t.Fatal("rejects not counted")
	}
	if sum := srv.Summary(); sum.SessionsCompleted != 0 {
		t.Fatalf("session committed on a dead disk: %+v", sum)
	}
}

// TestCommitEntryCodec round-trips both outcomes and rejects
// truncations at every length.
func TestCommitEntryCodec(t *testing.T) {
	blob := []byte("record-bytes")
	buf := appendCommitEntry(nil, entryStored, "veh00042", "ecuB", 7, 9, 2, blob)
	e, err := decodeCommitEntry(buf)
	if err != nil {
		t.Fatal(err)
	}
	if e.outcome != entryStored || e.vehicle != "veh00042" || e.ecu != "ecuB" ||
		e.session != 7 || e.chunks != 9 || e.chunkErrors != 2 || !bytes.Equal(e.blob, blob) {
		t.Fatalf("round trip: %+v", e)
	}
	corrupt := appendCommitEntry(nil, entryCorrupt, "v", "e", 1, 3, 1, nil)
	if e, err := decodeCommitEntry(corrupt); err != nil || e.outcome != entryCorrupt || len(e.blob) != 0 {
		t.Fatalf("corrupt entry: %+v err=%v", e, err)
	}
	for n := 0; n < len(buf); n++ {
		if _, err := decodeCommitEntry(buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded", n)
		}
	}
	if _, err := decodeCommitEntry(appendCommitEntry(nil, 9, "v", "e", 1, 1, 0, nil)); err == nil {
		t.Fatal("unknown outcome decoded")
	}
}
