package fleet

import (
	"encoding/json"
	"net/http"
)

// Handler serves the fleet JSON API:
//
//	GET /fleet/summary           — fleet-level Summary
//	GET /fleet/vehicle/{id}      — one vehicle's status (404 if unknown)
//	GET /fleet/failing           — currently failing (vehicle, ECU) streams
//	GET /fleet/resume/{id}/{ecu} — highest durably committed session of
//	                               one stream (0 when unknown); senders
//	                               reconnecting after a server restart
//	                               skip everything at or below it
//
// It extends the expvar telemetry endpoint of cmd/eedse with the
// fleet's own aggregates; cmd/fleetd mounts both on one mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fleet/summary", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, s.Summary())
	})
	mux.HandleFunc("GET /fleet/vehicle/{id}", func(w http.ResponseWriter, r *http.Request) {
		v, ok := s.Vehicle(r.PathValue("id"))
		if !ok {
			http.Error(w, "unknown vehicle", http.StatusNotFound)
			return
		}
		writeJSON(w, v)
	})
	mux.HandleFunc("GET /fleet/resume/{id}/{ecu}", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Vehicle       string `json:"vehicle"`
			ECU           string `json:"ecu"`
			LastCommitted uint32 `json:"last_committed"`
			Degraded      bool   `json:"degraded"`
		}{
			Vehicle:       r.PathValue("id"),
			ECU:           r.PathValue("ecu"),
			LastCommitted: s.LastCommitted(r.PathValue("id"), r.PathValue("ecu")),
			Degraded:      s.StorageDegraded(),
		})
	})
	mux.HandleFunc("GET /fleet/failing", func(w http.ResponseWriter, r *http.Request) {
		failing := s.Failing()
		if failing == nil {
			failing = []FailingECU{} // render [] rather than null
		}
		writeJSON(w, failing)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}
