package fleet

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/can"
	"repro/internal/gateway"
	"repro/internal/obs"
	"repro/internal/stumps"
)

// PopulationConfig describes a simulated vehicle population streaming
// BIST sessions into a Server. Everything is derived from Seed and the
// vehicle index, so a population's outcome is a pure function of its
// config — independent of worker count, shard count, and goroutine
// interleaving (as long as the server's caps are not hit).
type PopulationConfig struct {
	// Vehicles is the population size; IDs are "veh00000"….
	Vehicles int
	// ECUs are the per-vehicle ECU names reporting BIST sessions.
	ECUs []string
	// SessionsPerECU is the number of BIST sessions each (vehicle, ECU)
	// stream reports (default 1).
	SessionsPerECU int
	// FailProb is the probability a session carries fail data.
	FailProb float64
	// Windows is the BIST window count per session (default 64);
	// MaxEntries the largest fail-entry count of a failing session
	// (default 8).
	Windows    int
	MaxEntries int
	// Seed roots every vehicle's deterministic streams.
	Seed uint64
	// Bus and ErrorRate describe each vehicle's CAN segment to the
	// gateway; Session tunes the sender's retry machinery.
	Bus       can.Bus
	ErrorRate float64
	Session   gateway.SessionConfig
	// Workers is the ingest concurrency (default 1). Vehicles are
	// claimed whole, so results are identical at any worker count.
	Workers int
	// Resume skips every session the server has already durably
	// committed (Server.LastCommitted) instead of re-sending it — the
	// sender side of crash recovery. Safe on a fresh server: nothing is
	// committed, so nothing is skipped.
	Resume bool
	// Obs, when non-nil, is threaded into every sender session so
	// gateway transfers show up as gateway_session spans and degraded
	// marks. Purely observational.
	Obs *obs.Tracer
}

func (c PopulationConfig) withDefaults() PopulationConfig {
	if c.SessionsPerECU <= 0 {
		c.SessionsPerECU = 1
	}
	if c.Windows <= 0 {
		c.Windows = 64
	}
	if c.MaxEntries <= 0 {
		c.MaxEntries = 8
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.Bus.BitRate == 0 {
		c.Bus = can.Bus{Name: "diag", BitRate: 500_000, Format: can.Standard}
	}
	if c.Obs != nil {
		c.Session.Obs = c.Obs
	}
	return c
}

// PopulationResult aggregates the sender-side outcome of a population
// run.
type PopulationResult struct {
	// Sessions is the number of transfer sessions attempted; Delivered
	// the fully acknowledged ones; Degraded the local-fallback aborts
	// (bus degradation or server backpressure).
	Sessions  int
	Delivered int
	Degraded  int
	// Skipped counts sessions not re-sent on a Resume run because the
	// server had already committed them.
	Skipped int
	// ChunksSent and Retries count wire activity; BusMS the simulated
	// bus time consumed across all vehicles.
	ChunksSent int
	Retries    int
	BusMS      float64
}

func (r *PopulationResult) add(o PopulationResult) {
	r.Sessions += o.Sessions
	r.Delivered += o.Delivered
	r.Degraded += o.Degraded
	r.Skipped += o.Skipped
	r.ChunksSent += o.ChunksSent
	r.Retries += o.Retries
	r.BusMS += o.BusMS
}

// serverSink adapts one (vehicle, ECU) stream onto the server's
// sharded ingest, satisfying gateway.ChunkSink so FaultyChannel's wire
// and error-confinement machinery is reused verbatim.
type serverSink struct {
	srv          *Server
	vehicle, ecu string
}

func (s serverSink) Accept(c gateway.Chunk) error {
	return s.srv.IngestChunk(s.vehicle, s.ecu, c)
}

// splitmix-style seed derivation: vehicle and ECU indices select
// disjoint deterministic streams from one root seed.
func deriveSeed(root uint64, v, e int) uint64 {
	return root ^ (uint64(v)+1)*0x9E3779B97F4A7C15 ^ (uint64(e)+1)*0xBF58476D1CE4E5B9
}

// sessionSeed narrows a stream seed to one session. Seeding each
// session independently (instead of threading one rng through the
// stream) makes a session's payload and wire behavior a pure function
// of (root, vehicle, ecu, n) — so a crashed-and-resumed run redelivers
// the exact bytes the uninterrupted run would have sent, no matter how
// many earlier sessions were skipped as already committed.
func sessionSeed(root uint64, v, e, n int) uint64 {
	return deriveSeed(root, v, e) ^ (uint64(n)+1)*0xD6E8FEB86659FD93
}

// genFail draws one session's fail data from the stream.
func genFail(rng *can.ErrorStream, cfg PopulationConfig) stumps.FailData {
	fd := stumps.FailData{Windows: cfg.Windows}
	if rng.Float64() >= cfg.FailProb {
		return fd
	}
	n := 1 + int(rng.Uint64()%uint64(cfg.MaxEntries))
	for i := 0; i < n; i++ {
		got := rng.Uint64()
		fd.Entries = append(fd.Entries, stumps.FailEntry{
			Window: int(rng.Uint64() % uint64(cfg.Windows)),
			Got:    got,
			Want:   got ^ 1, // a fail entry is a signature mismatch by definition
		})
	}
	return fd
}

// runVehicle streams one vehicle's sessions into the server. Each
// session gets its own seeded rng and FaultyChannel, so every
// session's payload and wire fault pattern is independently
// reproducible — the property crash-recovery redelivery rests on. (A
// real controller would carry TEC state across sessions; the model
// resets it per session, trading that nuance for exact replayability.)
func runVehicle(ctx context.Context, srv *Server, cfg PopulationConfig, v int) (PopulationResult, error) {
	var res PopulationResult
	vehicle := fmt.Sprintf("veh%05d", v)
	for e, ecu := range cfg.ECUs {
		sink := serverSink{srv: srv, vehicle: vehicle, ecu: ecu}
		var committed uint32
		if cfg.Resume {
			committed = srv.LastCommitted(vehicle, ecu)
		}
		for n := 0; n < cfg.SessionsPerECU; n++ {
			if err := ctx.Err(); err != nil {
				return res, err
			}
			sid := uint32(n) + 1
			if sid <= committed {
				res.Skipped++
				continue
			}
			seed := sessionSeed(cfg.Seed, v, e, n)
			rng := can.NewErrorStream(seed)
			ch := gateway.NewFaultyChannel(cfg.Bus,
				can.ErrorModel{BitErrorRate: cfg.ErrorRate, Seed: seed ^ 0x94D049BB133111EB},
				sink)
			sess, err := gateway.NewSession(ecu, sid, genFail(rng, cfg), cfg.Session)
			if err != nil {
				return res, err
			}
			out := sess.Run(ch)
			res.Sessions++
			res.ChunksSent += out.ChunksSent
			res.Retries += out.Retries
			res.BusMS += out.ElapsedMS
			if out.Delivered {
				res.Delivered++
			} else {
				res.Degraded++
			}
		}
	}
	return res, nil
}

// RunPopulation streams the whole population into srv with
// cfg.Workers concurrent vehicles. Workers claim vehicles whole and
// per-vehicle results are folded in vehicle order, so the result (and
// the server's Summary, caps permitting) is byte-identical at any
// worker count. The context cancels between sessions — a drain point
// for graceful shutdown.
func RunPopulation(ctx context.Context, srv *Server, cfg PopulationConfig) (PopulationResult, error) {
	cfg = cfg.withDefaults()
	if len(cfg.ECUs) == 0 {
		return PopulationResult{}, fmt.Errorf("fleet: population has no ECUs")
	}
	results := make([]PopulationResult, cfg.Vehicles)
	errs := make([]error, cfg.Vehicles)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v := int(next.Add(1)) - 1
				if v >= cfg.Vehicles {
					return
				}
				results[v], errs[v] = runVehicle(ctx, srv, cfg, v)
			}
		}()
	}
	wg.Wait()
	var total PopulationResult
	for v := 0; v < cfg.Vehicles; v++ {
		total.add(results[v])
		if errs[v] != nil {
			return total, errs[v]
		}
	}
	return total, nil
}
