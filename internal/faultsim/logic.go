// Package faultsim provides 64-way parallel-pattern logic simulation
// and single stuck-at fault simulation with fault dropping and
// cone-limited faulty-machine resimulation. It is the engine behind the
// fault-coverage estimation c(b) of the paper's BIST profiles.
package faultsim

import (
	"fmt"

	"repro/internal/netlist"
)

// Batch carries up to 64 input patterns in bit-parallel form: Words[i]
// holds the values of input i across the patterns, pattern p in bit p.
type Batch struct {
	Words []uint64
	N     int // number of valid patterns, 1..64
}

// ValidMask returns the bit mask covering the valid patterns.
func (b Batch) ValidMask() uint64 {
	if b.N >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(b.N)) - 1
}

// BatchFromBools packs up to 64 single patterns (each a []bool per
// input) into a batch.
func BatchFromBools(patterns [][]bool) (Batch, error) {
	if len(patterns) == 0 || len(patterns) > 64 {
		return Batch{}, fmt.Errorf("faultsim: need 1..64 patterns, got %d", len(patterns))
	}
	nIn := len(patterns[0])
	words := make([]uint64, nIn)
	for p, pat := range patterns {
		if len(pat) != nIn {
			return Batch{}, fmt.Errorf("faultsim: pattern %d has %d inputs, want %d", p, len(pat), nIn)
		}
		for i, v := range pat {
			if v {
				words[i] |= 1 << uint(p)
			}
		}
	}
	return Batch{Words: words, N: len(patterns)}, nil
}

// LogicSim is a levelized 64-way parallel good-machine simulator.
type LogicSim struct {
	c       *netlist.Circuit
	values  []uint64
	scratch []uint64 // fanin staging buffer
}

// NewLogicSim returns a simulator for the circuit.
func NewLogicSim(c *netlist.Circuit) *LogicSim {
	return &LogicSim{
		c:       c,
		values:  make([]uint64, c.NumGates()),
		scratch: make([]uint64, 8),
	}
}

// Apply loads the batch onto the inputs and evaluates the whole circuit.
func (s *LogicSim) Apply(b Batch) error {
	if len(b.Words) != s.c.NumInputs() {
		return fmt.Errorf("faultsim: batch has %d input words, circuit has %d inputs", len(b.Words), s.c.NumInputs())
	}
	for i, id := range s.c.Inputs {
		s.values[id] = b.Words[i]
	}
	for _, id := range s.c.Order() {
		s.values[id] = s.evalGate(id, s.values)
	}
	return nil
}

func (s *LogicSim) evalGate(id int, vals []uint64) uint64 {
	g := &s.c.Gates[id]
	if len(g.Fanin) > len(s.scratch) {
		s.scratch = make([]uint64, len(g.Fanin))
	}
	in := s.scratch[:len(g.Fanin)]
	for i, f := range g.Fanin {
		in[i] = vals[f]
	}
	return g.Type.EvalWords(in)
}

// Value returns the 64-pattern value word of gate id after Apply.
func (s *LogicSim) Value(id int) uint64 { return s.values[id] }

// OutputWords returns the value words of the circuit outputs in
// declaration order.
func (s *LogicSim) OutputWords() []uint64 {
	out := make([]uint64, len(s.c.Outputs))
	for i, id := range s.c.Outputs {
		out[i] = s.values[id]
	}
	return out
}

// ApplyBools simulates a single pattern and returns the output values.
func (s *LogicSim) ApplyBools(pattern []bool) ([]bool, error) {
	b, err := BatchFromBools([][]bool{pattern})
	if err != nil {
		return nil, err
	}
	if err := s.Apply(b); err != nil {
		return nil, err
	}
	out := make([]bool, len(s.c.Outputs))
	for i, id := range s.c.Outputs {
		out[i] = s.values[id]&1 == 1
	}
	return out, nil
}
