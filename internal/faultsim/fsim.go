package faultsim

import (
	"math/bits"

	"repro/internal/netlist"
)

// Detection records the first detection of a fault.
type Detection struct {
	Fault   netlist.Fault
	Pattern int // global pattern index across all batches fed so far
}

// FaultSim runs serial-fault, parallel-pattern stuck-at simulation with
// fault dropping: each batch first simulates the good machine, then
// resimulates only the fanout cone of each still-undetected fault.
type FaultSim struct {
	c    *netlist.Circuit
	good *LogicSim

	remaining []netlist.Fault
	detected  []Detection
	seen      int // total patterns consumed

	// faulty is the overlay value array reused across faults; touched
	// tracks which entries are valid for the current fault.
	faulty  []uint64
	touched []int
	isSet   []bool
	scratch []uint64
}

// NewFaultSim returns a fault simulator over the given target fault
// list (typically netlist.CollapsedFaults).
func NewFaultSim(c *netlist.Circuit, faults []netlist.Fault) *FaultSim {
	return &FaultSim{
		c:         c,
		good:      NewLogicSim(c),
		remaining: append([]netlist.Fault(nil), faults...),
		faulty:    make([]uint64, c.NumGates()),
		isSet:     make([]bool, c.NumGates()),
		scratch:   make([]uint64, 8),
	}
}

// TotalFaults returns the size of the target fault list.
func (fs *FaultSim) TotalFaults() int { return len(fs.remaining) + len(fs.detected) }

// DetectedCount returns the number of faults detected so far.
func (fs *FaultSim) DetectedCount() int { return len(fs.detected) }

// Coverage returns detected / total fault coverage in [0,1].
func (fs *FaultSim) Coverage() float64 {
	total := fs.TotalFaults()
	if total == 0 {
		return 1
	}
	return float64(len(fs.detected)) / float64(total)
}

// Remaining returns the still-undetected faults.
func (fs *FaultSim) Remaining() []netlist.Fault {
	return append([]netlist.Fault(nil), fs.remaining...)
}

// Detections returns all recorded first detections in detection order.
func (fs *FaultSim) Detections() []Detection {
	return append([]Detection(nil), fs.detected...)
}

// PatternsSeen returns the number of patterns consumed so far.
func (fs *FaultSim) PatternsSeen() int { return fs.seen }

// SimulateBatch fault-simulates one pattern batch and returns the
// detections it produced. Detected faults are dropped from the target
// list.
func (fs *FaultSim) SimulateBatch(b Batch) ([]Detection, error) {
	if err := fs.good.Apply(b); err != nil {
		return nil, err
	}
	valid := b.ValidMask()
	var newDet []Detection
	kept := fs.remaining[:0]
	for _, f := range fs.remaining {
		diff := fs.outputDiff(f, valid)
		if diff != 0 {
			d := Detection{Fault: f, Pattern: fs.seen + bits.TrailingZeros64(diff)}
			newDet = append(newDet, d)
			fs.detected = append(fs.detected, d)
		} else {
			kept = append(kept, f)
		}
	}
	fs.remaining = kept
	fs.seen += b.N
	return newDet, nil
}

// outputDiff returns the OR over all outputs of good-vs-faulty
// difference masks for fault f under the currently applied batch.
func (fs *FaultSim) outputDiff(f netlist.Fault, valid uint64) uint64 {
	per := fs.perOutputDiff(f, valid)
	var acc uint64
	for _, d := range per {
		acc |= d
	}
	return acc
}

// perOutputDiff computes, for each circuit output, the pattern mask on
// which fault f flips that output, under the currently applied batch.
func (fs *FaultSim) perOutputDiff(f netlist.Fault, valid uint64) []uint64 {
	stuckWord := uint64(0)
	if f.Stuck {
		stuckWord = ^uint64(0)
	}
	// Reset overlay from the previous fault.
	for _, id := range fs.touched {
		fs.isSet[id] = false
	}
	fs.touched = fs.touched[:0]

	set := func(id int, v uint64) {
		if !fs.isSet[id] {
			fs.isSet[id] = true
			fs.touched = append(fs.touched, id)
		}
		fs.faulty[id] = v
	}
	get := func(id int) uint64 {
		if fs.isSet[id] {
			return fs.faulty[id]
		}
		return fs.good.Value(id)
	}

	var coneRoot int
	if f.Pin == netlist.StemPin {
		set(f.Gate, stuckWord)
		coneRoot = f.Gate
	} else {
		// Only the reader gate sees the stuck value on one pin.
		g := &fs.c.Gates[f.Gate]
		if len(g.Fanin) > len(fs.scratch) {
			fs.scratch = make([]uint64, len(g.Fanin))
		}
		in := fs.scratch[:len(g.Fanin)]
		for i, src := range g.Fanin {
			if i == f.Pin {
				in[i] = stuckWord
			} else {
				in[i] = fs.good.Value(src)
			}
		}
		set(f.Gate, g.Type.EvalWords(in))
		coneRoot = f.Gate
	}

	// Propagate through the fanout cone in topological order.
	for _, id := range fs.c.Cone(coneRoot) {
		g := &fs.c.Gates[id]
		if len(g.Fanin) > len(fs.scratch) {
			fs.scratch = make([]uint64, len(g.Fanin))
		}
		in := fs.scratch[:len(g.Fanin)]
		changed := false
		for i, src := range g.Fanin {
			in[i] = get(src)
			if fs.isSet[src] {
				changed = true
			}
		}
		if !changed {
			continue
		}
		set(id, g.Type.EvalWords(in))
	}

	out := make([]uint64, len(fs.c.Outputs))
	for i, id := range fs.c.Outputs {
		out[i] = (get(id) ^ fs.good.Value(id)) & valid
	}
	return out
}

// OutputResponse returns, for fault f, the per-output difference masks
// under batch b (without mutating detection state). It is used to build
// diagnosis dictionaries: bit p of entry i says pattern p flips output
// i.
func (fs *FaultSim) OutputResponse(f netlist.Fault, b Batch) ([]uint64, error) {
	if err := fs.good.Apply(b); err != nil {
		return nil, err
	}
	return fs.perOutputDiff(f, b.ValidMask()), nil
}

// RunCoverage feeds batches from gen until limit patterns are consumed
// or the fault list is exhausted, recording coverage after every batch.
// It returns (patternsConsumed, coverage) pairs at batch granularity.
type CoveragePoint struct {
	Patterns int
	Coverage float64
}

// PatternSource produces successive batches of input patterns.
type PatternSource interface {
	// NextBatch returns the next batch of up to n patterns.
	NextBatch(n int) Batch
}

// RunCoverage consumes patterns from src until limit patterns have been
// simulated (rounded up to batch size) or every fault is detected.
func (fs *FaultSim) RunCoverage(src PatternSource, limit int) ([]CoveragePoint, error) {
	var pts []CoveragePoint
	for fs.seen < limit && len(fs.remaining) > 0 {
		n := limit - fs.seen
		if n > 64 {
			n = 64
		}
		if _, err := fs.SimulateBatch(src.NextBatch(n)); err != nil {
			return nil, err
		}
		pts = append(pts, CoveragePoint{Patterns: fs.seen, Coverage: fs.Coverage()})
	}
	return pts, nil
}
